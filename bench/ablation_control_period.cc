// Ablation A3: control-period sensitivity.
//
// The paper's daemon samples once per second and argues a hardware
// implementation would want a much shorter period (Section 5: "the policy
// should be implemented in hardware ... to provide a low sampling overhead
// and have a fast response").  This bench sweeps the daemon period from
// 100 ms to 4 s on the frequency-shares policy and reports convergence
// time and steady-state quality.

#include <cmath>
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/experiments/scenarios.h"
#include "src/msr/msr.h"
#include "src/policy/daemon.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/workload.h"

namespace papd {
namespace {

struct PeriodResult {
  Seconds convergence_s{-1.0};  // First time power stays within 1.5 W.
  Watts steady_err_w{0.0};     // RMS power error after convergence.
  double steady_ratio = 0.0;     // Achieved LD/HD frequency ratio.
};

PeriodResult Measure(Seconds period) {
  const PlatformSpec spec = SkylakeXeon4114();
  constexpr Watts kLimit{45.0};
  Package pkg(spec);
  MsrFile msr(&pkg);

  std::vector<std::unique_ptr<Process>> procs;
  std::vector<ManagedApp> apps;
  const auto mix = ShareSplitMix(10, 70, 30).apps;
  for (size_t i = 0; i < mix.size(); i++) {
    procs.push_back(std::make_unique<Process>(GetProfile(mix[i].profile), 10 + i));
    pkg.AttachWork(static_cast<int>(i), procs.back().get());
    apps.push_back(ManagedApp{.name = mix[i].profile,
                              .cpu = static_cast<int>(i),
                              .shares = mix[i].shares});
  }

  PowerDaemon daemon(&msr, apps,
                     {.kind = PolicyKind::kFrequencyShares,
                      .power_limit_w = kLimit,
                      .period_s = period});
  daemon.Start();

  PeriodResult result;
  Accumulator steady_sq_err;
  int within = 0;
  Simulator sim(&pkg);
  sim.AddPeriodic(period, [&](Seconds now) {
    daemon.Step();
    const Watts pkg_w{daemon.history().back().sample.pkg_w};
    const double err = (pkg_w - kLimit).value();
    if (std::abs(err) < 1.5) {
      within++;
      if (within >= 3 && result.convergence_s < Seconds{0.0}) {
        result.convergence_s = now;
      }
    } else if (result.convergence_s < Seconds{0.0}) {
      within = 0;
    }
    if (result.convergence_s >= Seconds{0.0}) {
      steady_sq_err.Add(err * err);
    }
  });
  sim.Run(Seconds{120.0});

  result.steady_err_w = Watts{std::sqrt(steady_sq_err.mean())};
  Mhz ld_mhz{0.0};
  Mhz hd_mhz{0.0};
  const auto& last = daemon.history().back();
  for (size_t i = 0; i < apps.size(); i++) {
    (apps[i].name == "leela" ? ld_mhz : hd_mhz) +=
        last.sample.cores[static_cast<size_t>(apps[i].cpu)].active_mhz / 5.0;
  }
  result.steady_ratio = hd_mhz > Mhz{0.0} ? ld_mhz / hd_mhz : 0.0;
  return result;
}

void Run() {
  PrintBenchHeader("Ablation A3",
                   "Daemon control-period sweep (frequency shares, 70/30, 45 W)");

  TextTable t;
  t.SetHeader({"period", "convergence s", "steady RMS err W", "LD/HD MHz ratio"});
  for (Seconds period : {Seconds{0.1}, Seconds{0.25}, Seconds{0.5}, Seconds{1.0}, Seconds{2.0}, Seconds{4.0}}) {
    const PeriodResult r = Measure(period);
    t.AddRow({TextTable::Num(period.value(), 2) + "s",
              r.convergence_s >= Seconds{0} ? TextTable::Num(r.convergence_s.value(), 1) : "never",
              TextTable::Num(r.steady_err_w.value(), 2), TextTable::Num(r.steady_ratio, 2)});
  }
  t.Print(std::cout);
  std::cout << "\nReading: shorter periods converge proportionally faster with no\n"
               "stability penalty (the deadband prevents dithering), supporting the\n"
               "paper's argument that the policy belongs in hardware/firmware at\n"
               "millisecond periods; 1 s is adequate for steady workloads.\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
