// Ablation A9: telemetry fault injection and daemon graceful degradation.
//
// Real MSR telemetry fails in ways a clean simulation never shows: stale
// reads, counter resets across hotplug, energy-counter wrap storms,
// transient garbage reads, and firmware-dropped P-state writes.  This bench
// replays the standard fault schedules (FaultSchedules) against a
// frequency-share mix twice per schedule:
//
//   naive     the pre-hardening daemon — raw turbostat output, no sample
//             validation, unconditional rewrites (degrade = false);
//   hardened  validated telemetry plus the degradation ladder
//             (nominal/hold/fallback, write verification with backoff,
//             RAPL safety net).
//
// The headline column is ground-truth overshoot: worst 1-second package
// power minus the limit, measured from the energy counter itself so
// corrupted telemetry cannot hide it.  The naive daemon blows through the
// budget whenever a fault makes power look low (a stale sample reads as
// zero watts = infinite headroom); the hardened daemon holds the ceiling
// under every schedule, at a small cost in delivered performance.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/experiments/batch.h"
#include "src/experiments/harness.h"
#include "src/experiments/scenarios.h"

namespace papd {
namespace {

constexpr Watts kLimitW{55.0};
constexpr Seconds kWarmupS{20.0};
constexpr Seconds kMeasureS{120.0};

ScenarioConfig MakeConfig(const FaultPlan& faults, bool degrade) {
  ScenarioConfig c{.platform = SkylakeXeon4114()};
  c.apps = {
      {.profile = "cactusBSSN", .shares = 2.0},
      {.profile = "leela", .shares = 1.0},
      {.profile = "gcc", .shares = 1.0},
      {.profile = "deepsjeng", .shares = 1.0},
      {.profile = "exchange2", .shares = 1.0},
      {.profile = "omnetpp", .shares = 1.0},
  };
  c.policy = PolicyKind::kFrequencyShares;
  c.limit_w = kLimitW;
  c.warmup_s = kWarmupS;
  c.measure_s = kMeasureS;
  c.run.daemon.faults = faults;
  c.run.daemon.degrade = degrade;
  // The naive baseline deliberately violates the power ceiling; the fatal
  // auditor would (correctly) abort it.  Hardened runs keep the audit on —
  // surviving it under every schedule is the point.
  c.run.daemon.audit = degrade;
  return c;
}

double TotalPerf(const ScenarioResult& r) {
  double total = 0.0;
  for (const AppResult& app : r.apps) {
    total += app.norm_perf;
  }
  return total;
}

void Run() {
  PrintBenchHeader("Ablation A9",
                   "Telemetry faults: naive daemon vs degradation ladder");

  // Faults active for the middle of the measurement window.
  std::vector<FaultScenario> schedules = FaultSchedules(
      /*start_s=*/kWarmupS + Seconds{20.0}, /*end_s=*/kWarmupS + Seconds{80.0}, /*seed=*/1234);
  schedules.insert(schedules.begin(), FaultScenario{.label = "clean", .plan = {}});

  std::vector<ScenarioConfig> configs;
  for (const FaultScenario& s : schedules) {
    configs.push_back(MakeConfig(s.plan, /*degrade=*/false));
    configs.push_back(MakeConfig(s.plan, /*degrade=*/true));
  }
  const std::vector<ScenarioResult> results = RunScenarios(configs);

  TextTable t;
  t.SetHeader({"schedule", "mode", "perf", "avg W", "max W", "overshoot W", "invalid", "held",
               "fallback", "bad writes"});
  for (size_t i = 0; i < schedules.size(); i++) {
    const ScenarioResult& naive = results[2 * i];
    const ScenarioResult& hard = results[2 * i + 1];
    for (const auto* mode : {&naive, &hard}) {
      const ScenarioResult& r = *mode;
      t.AddRow({schedules[i].label, mode == &naive ? "naive" : "hardened",
                TextTable::Num(TotalPerf(r), 2), TextTable::Num(r.avg_pkg_w.value(), 1),
                TextTable::Num(r.max_pkg_w.value(), 1),
                TextTable::Num(std::max(0.0, (r.max_pkg_w - kLimitW).value()), 1),
                TextTable::Num(r.fault_stats.invalid_samples, 0),
                TextTable::Num(r.fault_stats.held_periods, 0),
                TextTable::Num(r.fault_stats.fallback_periods, 0),
                TextTable::Num(r.fault_stats.failed_programs, 0)});
    }
  }
  t.Print(std::cout);

  TextTable inj;
  inj.SetHeader({"schedule", "stales", "resets", "wraps", "spikes", "dropped writes"});
  for (size_t i = 0; i < schedules.size(); i++) {
    const FaultCounts& c = results[2 * i + 1].fault_counts;
    inj.AddRow({schedules[i].label, TextTable::Num(c.stale_samples, 0),
                TextTable::Num(c.counter_resets, 0), TextTable::Num(c.energy_wraps, 0),
                TextTable::Num(c.read_spikes, 0), TextTable::Num(c.dropped_writes, 0)});
  }
  std::cout << "\nInjected fault counts (hardened runs):\n";
  inj.Print(std::cout);

  std::cout << "\nReading: under stale bursts and wrap storms the naive daemon reads\n"
               "garbage power (zero or ~2^32 RAPL units), misjudges headroom, and its\n"
               "worst 1-second package power blows past the limit.  The hardened\n"
               "daemon flags those samples, holds last-known-good targets, falls back\n"
               "to the floor when telemetry stays dark, verifies P-state writes, and\n"
               "keeps ground-truth power inside limit + audit slack for every\n"
               "schedule — with the invariant auditor fatal the whole way.\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
