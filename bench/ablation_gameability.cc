// Ablation A8: game-ability of the share types (paper Section 8).
//
// "An application can vary its instruction mix to change its measured
// resource usage.  For performance, applications can manipulate their IPS
// value ...".  We play the profitable version of that game against the
// performance-share policy: a *sandbagging* app interleaves
// dependence-chain padding that halves its measured IPS at any frequency.
// Against its honest offline baseline it now looks permanently below its
// performance target, so the feedback loop keeps granting it frequency —
// stolen, under a power cap, from the honest apps.  Frequency shares are
// immune: the hardware-measured MHz cannot be faked by an instruction mix.
//
// The paper's soundness criterion — gaming should cost the gamer more than
// it gains — is also evaluated: the sandbagger's *useful* work rate (its
// measured IPS, which the padding halves) is compared with what it would
// have produced playing honestly.

#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/experiments/harness.h"
#include "src/msr/msr.h"
#include "src/policy/daemon.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/workload.h"

namespace papd {
namespace {

constexpr Watts kLimit{45.0};
constexpr int kHonest = 5;   // Cores 0..4: honest leela.
constexpr int kGamers = 5;   // Cores 5..9: sandbagging leela.

struct Outcome {
  Mhz honest_mhz{0.0};
  Mhz gamer_mhz{0.0};
  double honest_gips = 0.0;  // Useful instruction rate.
  double gamer_gips = 0.0;
  Watts pkg_w{0.0};
};

Outcome Run(PolicyKind policy, bool gaming) {
  const PlatformSpec spec = SkylakeXeon4114();
  Package pkg(spec);
  MsrFile msr(&pkg);

  // The sandbagged variant: dependence-chain padding raises effective CPI
  // 2x, halving measured IPS at any frequency; power is unchanged.
  WorkloadProfile honest_profile = GetProfile("leela");
  WorkloadProfile gamed_profile = honest_profile;
  gamed_profile.name = "leela-sandbag";
  gamed_profile.cpi *= 2.0;

  std::vector<std::unique_ptr<Process>> procs;
  std::vector<ManagedApp> apps;
  const Ips honest_baseline = Standalone(spec, "leela").ips;
  for (int c = 0; c < kHonest + kGamers; c++) {
    const bool gamer = c >= kHonest && gaming;
    procs.push_back(
        std::make_unique<Process>(gamer ? gamed_profile : honest_profile, 100 + c));
    pkg.AttachWork(c, procs.back().get());
    // Everyone registers the *honest* offline baseline — the gamer lies by
    // construction, running slower than the app it was profiled as.
    apps.push_back(ManagedApp{
        .name = gamer ? "sandbag" : "honest",
        .cpu = c,
        .shares = 1.0,
        .baseline_ips = honest_baseline,
    });
  }

  PowerDaemon daemon(&msr, apps, {.kind = policy, .power_limit_w = kLimit});
  daemon.Start();
  Simulator sim(&pkg);
  sim.AddPeriodic(Seconds{1.0}, [&daemon](Seconds) { daemon.Step(); });
  sim.Run(Seconds{40.0});  // Settle.

  std::vector<double> a0(10);
  std::vector<double> m0(10);
  std::vector<double> i0(10);
  for (int c = 0; c < 10; c++) {
    a0[static_cast<size_t>(c)] = pkg.core(c).aperf_cycles();
    m0[static_cast<size_t>(c)] = pkg.core(c).mperf_cycles();
    i0[static_cast<size_t>(c)] = pkg.core(c).instructions_retired();
  }
  const Joules e0{pkg.package_energy_j()};
  const Seconds t0{pkg.now()};
  sim.Run(Seconds{60.0});
  const Seconds dt{pkg.now() - t0};

  Outcome out;
  for (int c = 0; c < 10; c++) {
    const auto i = static_cast<size_t>(c);
    const Mhz mhz = (pkg.core(c).aperf_cycles() - a0[i]) /
                    (pkg.core(c).mperf_cycles() - m0[i]) * spec.tsc_mhz;
    const double gips = (pkg.core(c).instructions_retired() - i0[i]) / dt.value() / 1e9;
    if (c < kHonest) {
      out.honest_mhz += mhz / kHonest;
      out.honest_gips += gips / kHonest;
    } else {
      out.gamer_mhz += mhz / kGamers;
      out.gamer_gips += gips / kGamers;
    }
  }
  out.pkg_w = (pkg.package_energy_j() - e0) / dt;
  return out;
}

void RunAll() {
  PrintBenchHeader("Ablation A8",
                   "Game-ability: sandbagged IPS vs perf shares and freq shares @45 W");

  TextTable t;
  t.SetHeader({"policy", "gaming", "honest MHz", "gamer MHz", "honest Gi/s", "gamer Gi/s",
               "pkg W"});
  for (PolicyKind policy : {PolicyKind::kPerformanceShares, PolicyKind::kFrequencyShares}) {
    for (bool gaming : {false, true}) {
      const Outcome o = Run(policy, gaming);
      t.AddRow({PolicyKindName(policy), gaming ? "5 sandbaggers" : "all honest",
                TextTable::Num(o.honest_mhz.value(), 0), TextTable::Num(o.gamer_mhz.value(), 0),
                TextTable::Num(o.honest_gips, 2), TextTable::Num(o.gamer_gips, 2),
                TextTable::Num(o.pkg_w.value(), 1)});
    }
  }
  t.Print(std::cout);

  std::cout << "\nReading: under performance shares the sandbaggers' deflated IPS tricks\n"
               "the controller into granting them extra frequency at the honest apps'\n"
               "expense; frequency shares hold MHz equal regardless of instruction mix.\n"
               "The gamers still lose more useful throughput than they steal (their\n"
               "padding halves IPS) — matching the paper's criterion for a sound\n"
               "policy: gaming must cost the gamer more than it gains.\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::RunAll();
  return 0;
}
