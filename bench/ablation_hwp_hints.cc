// Ablation A4: HWP-style "highest useful frequency" hints.
//
// Paper Section 4.4: policies "can be modified to try to run applications
// at the highest useful frequency rather than the highest possible
// frequency.  Hardware support such as Intel's HWP can help identify this
// point."  This bench runs a mix containing an AVX-capped app (cam4) and a
// memory-bound app (omnetpp) under frequency shares with saturation hints
// off and on, at the same power limit.  With hints, frequency (and hence
// power) that the saturated apps could not convert into performance is
// redistributed to the apps that can — total throughput rises at equal
// package power.

#include <iostream>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/experiments/batch.h"
#include "src/experiments/harness.h"

namespace papd {
namespace {

struct Row {
  double total_perf = 0.0;
  Watts pkg_w{0.0};
  ScenarioResult result;
};

ScenarioConfig MakeConfig(bool hints, Watts limit) {
  ScenarioConfig c{.platform = SkylakeXeon4114()};
  c.apps = {
      {.profile = "cam4", .shares = 1.0},     // AVX frequency-capped.
      {.profile = "omnetpp", .shares = 1.0},  // Memory-bound (flat IPS).
      {.profile = "leela", .shares = 1.0},
      {.profile = "exchange2", .shares = 1.0},
      {.profile = "gcc", .shares = 1.0},
      {.profile = "deepsjeng", .shares = 1.0},
  };
  c.policy = PolicyKind::kFrequencyShares;
  c.limit_w = limit;
  c.warmup_s = Seconds{60};  // Probing needs periods to map the IPS/frequency curves.
  c.measure_s = Seconds{60};
  c.run.daemon.hwp_hints = hints;
  return c;
}

Row ToRow(ScenarioResult result) {
  Row row;
  row.result = std::move(result);
  row.pkg_w = row.result.avg_pkg_w;
  for (const AppResult& app : row.result.apps) {
    row.total_perf += app.norm_perf;
  }
  return row;
}

void Run() {
  PrintBenchHeader("Ablation A4",
                   "HWP hints: highest-useful-frequency caps under frequency shares");

  const std::vector<double> limits = {45.0, 55.0, 85.0};
  std::vector<ScenarioConfig> configs;
  for (double limit : limits) {
    configs.push_back(MakeConfig(false, Watts{limit}));
    configs.push_back(MakeConfig(true, Watts{limit}));
  }
  const std::vector<ScenarioResult> results = RunScenarios(configs);

  for (size_t li = 0; li < limits.size(); li++) {
    const double limit = limits[li];
    const Row off = ToRow(results[2 * li]);
    const Row on = ToRow(results[2 * li + 1]);
    PrintBanner(std::cout, "limit " + TextTable::Num(limit, 0) + " W");
    TextTable t;
    t.SetHeader({"app", "MHz (off)", "MHz (on)", "perf (off)", "perf (on)"});
    for (size_t i = 0; i < off.result.apps.size(); i++) {
      const AppResult& a = off.result.apps[i];
      const AppResult& b = on.result.apps[i];
      t.AddRow({a.name, TextTable::Num(a.avg_active_mhz.value(), 0),
                TextTable::Num(b.avg_active_mhz.value(), 0), TextTable::Num(a.norm_perf, 2),
                TextTable::Num(b.norm_perf, 2)});
    }
    t.AddRow({"TOTAL (sum perf / pkg W)", TextTable::Num(off.pkg_w.value(), 1) + "W",
              TextTable::Num(on.pkg_w.value(), 1) + "W", TextTable::Num(off.total_perf, 2),
              TextTable::Num(on.total_perf, 2)});
    t.Print(std::cout);
  }
  std::cout << "\nReading: hints cap the AVX app (cam4) at its refused-grant frequency\n"
               "and the memory-bound app (omnetpp) at the lowest frequency preserving\n"
               "~92% of its peak IPS.  Unconstrained (85 W), that saves package power\n"
               "at near-identical total performance; under tight limits the saved\n"
               "power flows to the frequency-sensitive apps.\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
