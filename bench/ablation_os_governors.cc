// Ablation A5: OS frequency governors as a baseline.
//
// Paper Section 2.2 surveys the incumbent software consumers of DVFS — the
// Linux cpufreq governors.  This bench runs the unfair-throttling scenario
// (leela next to a cpuburn power virus under a 40 W RAPL cap) with each
// governor steering per-core DVFS at 100 ms, and compares against the
// frequency-shares policy.  Utilization-driven governors give the 100%-
// utilized virus the maximum frequency — the same treatment as the useful
// app — so they inherit RAPL's unfairness; only the share policy
// differentiates.

#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/experiments/harness.h"
#include "src/governor/governor_daemon.h"
#include "src/msr/msr.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/workload.h"

namespace papd {
namespace {

struct Row {
  Mhz app_mhz{0.0};
  Mhz virus_mhz{0.0};
  double app_perf = 0.0;  // Normalized to standalone.
  Watts pkg_w{0.0};
};

Row MeasureGovernor(GovernorKind kind, Watts limit) {
  const PlatformSpec spec = SkylakeXeon4114();
  Package pkg(spec);
  MsrFile msr(&pkg);
  Process app(GetProfile("leela"), 1);
  Process virus(GetProfile("cpuburn"), 2);
  pkg.AttachWork(0, &app);
  pkg.AttachWork(1, &virus);
  for (int c = 2; c < pkg.num_cores(); c++) {
    pkg.SetRequestedMhz(c, spec.min_mhz);
  }
  pkg.SetRaplLimit(limit);

  GovernorDaemon governor(&msr, kind);
  Simulator sim(&pkg);
  sim.AddPeriodic(Seconds{0.1}, [&governor](Seconds) { governor.Step(); });
  sim.Run(Seconds{20.0});  // Settle.

  const double i0 = pkg.core(0).instructions_retired();
  const double a0 = pkg.core(0).aperf_cycles();
  const double m0 = pkg.core(0).mperf_cycles();
  const double av0 = pkg.core(1).aperf_cycles();
  const double mv0 = pkg.core(1).mperf_cycles();
  const Joules e0{pkg.package_energy_j()};
  const Seconds t0{pkg.now()};
  sim.Run(Seconds{60.0});
  const Seconds dt{pkg.now() - t0};

  Row row;
  row.app_mhz = (pkg.core(0).aperf_cycles() - a0) / (pkg.core(0).mperf_cycles() - m0) *
                spec.tsc_mhz;
  row.virus_mhz = (pkg.core(1).aperf_cycles() - av0) /
                  (pkg.core(1).mperf_cycles() - mv0) * spec.tsc_mhz;
  row.app_perf = (pkg.core(0).instructions_retired() - i0) / dt /
                 Standalone(spec, "leela").ips;
  row.pkg_w = (pkg.package_energy_j() - e0) / dt;
  return row;
}

Row MeasureShares(Watts limit) {
  ScenarioConfig c{.platform = SkylakeXeon4114()};
  c.apps = {{.profile = "leela", .shares = 90.0}, {.profile = "cpuburn", .shares = 10.0}};
  c.policy = PolicyKind::kFrequencyShares;
  c.limit_w = limit;
  c.warmup_s = Seconds{20};
  c.measure_s = Seconds{60};
  const ScenarioResult r = RunScenario(c);
  return Row{.app_mhz = r.apps[0].avg_active_mhz,
             .virus_mhz = r.apps[1].avg_active_mhz,
             .app_perf = r.apps[0].norm_perf,
             .pkg_w = r.avg_pkg_w};
}

void Run() {
  PrintBenchHeader("Ablation A5",
                   "cpufreq governors vs frequency shares: leela + cpuburn @ 40 W");

  TextTable t;
  t.SetHeader({"controller", "leela MHz", "virus MHz", "leela perf", "pkg W"});
  for (GovernorKind kind :
       {GovernorKind::kPerformance, GovernorKind::kOndemand, GovernorKind::kConservative,
        GovernorKind::kPowersave}) {
    const Row r = MeasureGovernor(kind, Watts{40.0});
    t.AddRow({std::string(GovernorKindName(kind)) + " + RAPL",
              TextTable::Num(r.app_mhz.value(), 0), TextTable::Num(r.virus_mhz.value(), 0),
              TextTable::Num(r.app_perf, 2), TextTable::Num(r.pkg_w.value(), 1)});
  }
  const Row share = MeasureShares(Watts{40.0});
  t.AddRow({"freq-shares 90/10", TextTable::Num(share.app_mhz.value(), 0),
            TextTable::Num(share.virus_mhz.value(), 0), TextTable::Num(share.app_perf, 2),
            TextTable::Num(share.pkg_w.value(), 1)});
  t.Print(std::cout);

  std::cout << "\nReading: every utilization-driven governor gives the virus the same\n"
               "frequency as the useful app (both 100% utilized), so RAPL throttles\n"
               "them together; powersave avoids the cap by crippling both.  The share\n"
               "policy alone keeps leela at full standalone performance, handing the\n"
               "virus only the power left over once leela is satisfied.\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
