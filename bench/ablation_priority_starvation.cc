// Ablation A1: the priority policy's starvation choice.
//
// Section 5.1 of the paper chooses to *starve* LP applications when power
// is short, so HP applications can use opportunistic scaling; the
// alternative it discusses first allocates the minimum P-state to every
// core.  This bench runs both variants on the Table 2 mixes at 50/40 W and
// reports the trade: the starvation variant buys HP frequency/performance
// at the cost of LP progress.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/experiments/batch.h"
#include "src/experiments/harness.h"
#include "src/experiments/scenarios.h"

namespace papd {
namespace {

void Run() {
  PrintBenchHeader("Ablation A1",
                   "Priority policy: starve LP apps vs guarantee minimum P-state");

  std::vector<ScenarioConfig> configs;
  for (double limit : {50.0, 40.0}) {
    for (const WorkloadMix& mix : SkylakePriorityMixes()) {
      for (bool starve : {true, false}) {
        ScenarioConfig c{.platform = SkylakeXeon4114()};
        c.apps = mix.apps;
        c.policy = PolicyKind::kPriority;
        c.limit_w = Watts{limit};
        c.priority.starve_lp = starve;
        c.warmup_s = Seconds{30};
        c.measure_s = Seconds{60};
        configs.push_back(c);
      }
    }
  }
  const std::vector<ScenarioResult> results = RunScenarios(configs);

  TextTable t;
  t.SetHeader({"limit", "mix", "variant", "HP perf", "LP perf", "LP starved", "pkg W"});
  size_t idx = 0;
  for (double limit : {50.0, 40.0}) {
    for (const WorkloadMix& mix : SkylakePriorityMixes()) {
      for (bool starve : {true, false}) {
        const ScenarioResult& r = results[idx++];

        double hp_perf = 0.0;
        double lp_perf = 0.0;
        int hp_n = 0;
        int lp_n = 0;
        int starved = 0;
        for (const AppResult& app : r.apps) {
          if (app.high_priority) {
            hp_perf += app.norm_perf;
            hp_n++;
          } else {
            lp_perf += app.norm_perf;
            lp_n++;
            starved += app.starved ? 1 : 0;
          }
        }
        t.AddRow({TextTable::Num(limit, 0) + "W", mix.label,
                  starve ? "starve (paper)" : "min-pstate",
                  TextTable::Num(hp_n ? hp_perf / hp_n : 0, 2),
                  TextTable::Num(lp_n ? lp_perf / lp_n : 0, 2), std::to_string(starved),
                  TextTable::Num(r.avg_pkg_w.value(), 1)});
      }
    }
  }
  t.Print(std::cout);
  std::cout << "\nReading: with many HP apps at low limits, the min-pstate variant keeps\n"
               "LP apps crawling but costs the HP class performance; the paper's\n"
               "starvation variant maximizes HP performance (including turbo headroom\n"
               "from offlined cores).\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
