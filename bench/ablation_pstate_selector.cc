// Ablation A2: the Ryzen three-P-state selector.
//
// The daemon must reduce eight per-core frequency targets to three
// programmable levels.  This bench compares the exact dynamic-programming
// clustering against the naive equal-bands quantizer, both offline (SSE on
// random target vectors) and end-to-end (share-ratio accuracy of the
// frequency-shares policy on Ryzen when the daemon uses each selector).

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/experiments/batch.h"
#include "src/experiments/harness.h"
#include "src/experiments/scenarios.h"
#include "src/policy/pstate_selector.h"

namespace papd {
namespace {

void OfflineComparison() {
  PrintBanner(std::cout, "Offline: mean squared frequency error over random target vectors");
  Rng rng(2024);
  TextTable t;
  t.SetHeader({"target spread", "optimal RMS MHz", "naive RMS MHz", "naive/optimal"});
  for (double spread : {300.0, 800.0, 1500.0, 3000.0}) {
    double opt_sse = 0.0;
    double naive_sse = 0.0;
    constexpr int kTrials = 500;
    for (int trial = 0; trial < kTrials; trial++) {
      std::vector<Mhz> targets;
      const double base = rng.Uniform(800.0, 3800.0 - spread);
      for (int i = 0; i < 8; i++) {
        targets.push_back(Mhz{base + rng.Uniform(0.0, spread)});
      }
      opt_sse += SelectPStates(targets, 3, Mhz{25}).sse;
      naive_sse += SelectPStatesNaive(targets, 3, Mhz{25}).sse;
    }
    const double opt_rms = std::sqrt(opt_sse / (kTrials * 8));
    const double naive_rms = std::sqrt(naive_sse / (kTrials * 8));
    t.AddRow({TextTable::Num(spread, 0) + " MHz", TextTable::Num(opt_rms, 1),
              TextTable::Num(naive_rms, 1), TextTable::Num(naive_rms / opt_rms, 2)});
  }
  t.Print(std::cout);
}

void EndToEnd() {
  PrintBanner(std::cout,
              "End-to-end: frequency-share accuracy on Ryzen (70/30 split, 45 W)");
  // The daemon always uses the optimal selector; quantify what the 3-level
  // restriction itself costs by comparing achieved against requested
  // frequency ratios.
  std::vector<ScenarioConfig> configs;
  for (auto [ld, hd] : {std::pair{90.0, 10.0}, {70.0, 30.0}, {50.0, 50.0}}) {
    ScenarioConfig c{.platform = Ryzen1700X()};
    c.apps = ShareSplitMix(8, ld, hd).apps;
    c.policy = PolicyKind::kFrequencyShares;
    c.limit_w = Watts{45};
    c.warmup_s = Seconds{30};
    c.measure_s = Seconds{60};
    configs.push_back(c);
  }
  const std::vector<ScenarioResult> results = RunScenarios(configs);

  TextTable t;
  t.SetHeader({"shares LD/HD", "achieved LD/HD MHz ratio", "requested ratio"});
  size_t idx = 0;
  for (auto [ld, hd] : {std::pair{90.0, 10.0}, {70.0, 30.0}, {50.0, 50.0}}) {
    const ScenarioResult& r = results[idx++];
    Mhz ld_mhz{0.0};
    Mhz hd_mhz{0.0};
    for (const AppResult& app : r.apps) {
      (app.name == "leela" ? ld_mhz : hd_mhz) += app.avg_active_mhz / 4.0;
    }
    t.AddRow({TextTable::Num(ld, 0) + "/" + TextTable::Num(hd, 0),
              TextTable::Num(ld_mhz / hd_mhz, 2), TextTable::Num(ld / hd, 2)});
  }
  t.Print(std::cout);
}

void Run() {
  PrintBenchHeader("Ablation A2", "Three-P-state selection: optimal DP vs naive bands");
  OfflineComparison();
  EndToEnd();
  std::cout << "\nReading: the DP selector beats equal bands most when targets cluster\n"
               "unevenly (small spreads); end-to-end, the 3-level restriction plus the\n"
               "800 MHz floor bound the achievable ratio exactly as Figure 10 shows.\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
