// Ablation A6: the single-core sharing policy (paper Section 4.3).
//
// cactusBSSN (HD) and gcc (LD) time-share one Ryzen core under a per-core
// power budget.  Three controllers are compared:
//   - frequency only (residencies fixed at the share split),
//   - the full policy (scenario 2: the LD app's residency grows to
//     compensate for throttling),
//   - the full policy in a mixed-priority setup (scenario 3: the HD LP app
//     is evicted when the LD HP app cannot otherwise reach full speed).

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/cpusim/timeshare.h"
#include "src/policy/daemon.h"
#include "src/policy/single_core.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/workload.h"

namespace papd {
namespace {

struct Outcome {
  Mhz freq{0.0};
  double hd_residency = 0.0;
  double ld_residency = 0.0;
  double hd_gips = 0.0;
  double ld_gips = 0.0;
  Watts core_w{0.0};
};

Outcome Run(Watts budget, bool compensate, bool ld_high_priority) {
  Package pkg(Ryzen1700X());
  Process hd(GetProfile("cactusBSSN"), 1);
  Process ld(GetProfile("gcc"), 2);
  TimeSharedCore shared({{.work = &hd, .residency = 0.5}, {.work = &ld, .residency = 0.5}});
  pkg.AttachWork(0, &shared);

  SingleCoreSharing policy(
      MakePolicyPlatform(Ryzen1700X()),
      {{.name = "cactusBSSN", .shares = 1.0, .high_priority = false, .demand = 1.4},
       {.name = "gcc", .shares = 1.0, .high_priority = ld_high_priority, .demand = 1.0}});
  auto d = policy.Initial(budget);
  pkg.SetRequestedMhz(0, d.freq_mhz);

  Simulator sim(&pkg);
  Joules last_energy{0.0};
  sim.AddPeriodic(Seconds{1.0}, [&](Seconds) {
    const Watts core_w = (pkg.core(0).energy_j() - last_energy) / Seconds{1.0};
    last_energy = pkg.core(0).energy_j();
    d = policy.Step(budget, core_w);
    pkg.SetRequestedMhz(0, d.freq_mhz);
    if (compensate) {
      shared.SetResidency(0, d.residencies[0]);
      shared.SetResidency(1, d.residencies[1]);
    }
  });
  const Seconds duration{90.0};
  sim.Run(duration);

  Outcome out;
  out.freq = pkg.core(0).effective_mhz();
  out.hd_residency = shared.residency(0);
  out.ld_residency = shared.residency(1);
  out.hd_gips = shared.member_instructions()[0] / duration.value() / 1e9;
  out.ld_gips = shared.member_instructions()[1] / duration.value() / 1e9;
  out.core_w = pkg.core(0).energy_j() / pkg.now();
  return out;
}

void Print(TextTable* t, const std::string& label, const Outcome& o) {
  t->AddRow({label, TextTable::Num(o.freq.value(), 0), TextTable::Num(o.hd_residency, 2),
             TextTable::Num(o.ld_residency, 2), TextTable::Num(o.hd_gips, 2),
             TextTable::Num(o.ld_gips, 2), TextTable::Num(o.core_w.value(), 1)});
}

void RunAll() {
  PrintBenchHeader("Ablation A6",
                   "Single-core sharing: cactusBSSN (HD) + gcc (LD) on one Ryzen core");

  for (Watts budget : {Watts{4.0}, Watts{6.0}, Watts{9.0}}) {
    PrintBanner(std::cout, "core budget " + TextTable::Num(budget.value(), 0) + " W");
    TextTable t;
    t.SetHeader({"controller", "MHz", "HD res", "LD res", "HD Gi/s", "LD Gi/s", "core W"});
    Print(&t, "frequency only", Run(budget, false, false));
    Print(&t, "scenario 2 (compensate LD)", Run(budget, true, false));
    Print(&t, "scenario 3 (LD is HP)", Run(budget, true, true));
    t.Print(std::cout);
  }
  std::cout << "\nReading: at tight budgets the compensating policy shifts runtime to the\n"
               "LD app, preserving its throughput at the HD app's expense; with the LD\n"
               "app high-priority the HD LP app is evicted entirely and the core runs\n"
               "at the LD app's attainable frequency (paper Section 4.3, case 3).\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::RunAll();
  return 0;
}
