// Ablation A7: thermal limiting — local DVFS vs global RAPL (thermald).
//
// Paper Section 2.2 notes thermald's mechanisms "can be both global (RAPL)
// or local (clock cycle gating, DVFS)", and that local mechanisms "may be
// helpful in building a per-application power delivery system."  This bench
// quantifies the difference: a cpuburn hotspot next to well-behaved apps
// under a 75 C limit, with thermald in each mode.  Local throttling
// confines the penalty to the hot core; global RAPL taxes everyone.

#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/governor/thermald.h"
#include "src/msr/msr.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/workload.h"

namespace papd {
namespace {

struct Outcome {
  Celsius burn_temp = 0.0;
  Celsius max_other_temp = 0.0;
  Mhz burn_mhz{0.0};
  Mhz others_mhz{0.0};
  Watts pkg_w{0.0};
};

Outcome Run(ThermalDaemon::Mode mode) {
  const PlatformSpec spec = SkylakeXeon4114();
  Package pkg(spec);
  MsrFile msr(&pkg);
  Process burn(GetProfile("cpuburn"), 1);
  pkg.AttachWork(0, &burn);
  std::vector<std::unique_ptr<Process>> others;
  for (int c = 1; c <= 5; c++) {
    others.push_back(std::make_unique<Process>(GetProfile("leela"), 10 + c));
    pkg.AttachWork(c, others.back().get());
    msr.WritePerfTargetMhz(c, Mhz{3000});
  }
  msr.WritePerfTargetMhz(0, Mhz{3000});

  ThermalDaemon daemon(&msr, {.limit_c = 75.0, .mode = mode});
  Simulator sim(&pkg);
  sim.AddPeriodic(Seconds{1.0}, [&daemon](Seconds) { daemon.Step(); });
  sim.Run(Seconds{60.0});  // Settle.

  std::vector<double> a0(6);
  std::vector<double> m0(6);
  for (int c = 0; c < 6; c++) {
    a0[static_cast<size_t>(c)] = pkg.core(c).aperf_cycles();
    m0[static_cast<size_t>(c)] = pkg.core(c).mperf_cycles();
  }
  const Joules e0{pkg.package_energy_j()};
  const Seconds t0{pkg.now()};
  sim.Run(Seconds{120.0});

  Outcome out;
  out.burn_temp = pkg.thermal().core_temp_c(0);
  out.burn_mhz = (pkg.core(0).aperf_cycles() - a0[0]) /
                 (pkg.core(0).mperf_cycles() - m0[0]) * spec.tsc_mhz;
  for (int c = 1; c <= 5; c++) {
    const auto i = static_cast<size_t>(c);
    out.max_other_temp = std::max(out.max_other_temp, pkg.thermal().core_temp_c(c));
    out.others_mhz += (pkg.core(c).aperf_cycles() - a0[i]) /
                      (pkg.core(c).mperf_cycles() - m0[i]) * spec.tsc_mhz / 5.0;
  }
  out.pkg_w = (pkg.package_energy_j() - e0) / (pkg.now() - t0);
  return out;
}

void RunAll() {
  PrintBenchHeader("Ablation A7",
                   "thermald: local per-core DVFS vs global RAPL at a 75 C limit");

  TextTable t;
  t.SetHeader({"mode", "virus temp C", "virus MHz", "others MHz", "hottest other C",
               "pkg W"});
  const Outcome local = Run(ThermalDaemon::Mode::kPerCoreDvfs);
  t.AddRow({"per-core DVFS (local)", TextTable::Num(local.burn_temp, 1),
            TextTable::Num(local.burn_mhz.value(), 0), TextTable::Num(local.others_mhz.value(), 0),
            TextTable::Num(local.max_other_temp, 1), TextTable::Num(local.pkg_w.value(), 1)});
  const Outcome global = Run(ThermalDaemon::Mode::kGlobalRapl);
  t.AddRow({"RAPL (global)", TextTable::Num(global.burn_temp, 1),
            TextTable::Num(global.burn_mhz.value(), 0), TextTable::Num(global.others_mhz.value(), 0),
            TextTable::Num(global.max_other_temp, 1), TextTable::Num(global.pkg_w.value(), 1)});
  t.Print(std::cout);

  std::cout << "\nReading: both modes hold the hotspot at the limit, but global RAPL\n"
               "drags the five innocent leela cores down with the virus, while local\n"
               "DVFS leaves them at full speed — the same local-vs-global distinction\n"
               "that motivates per-application power delivery.\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::RunAll();
  return 0;
}
