// Shared helpers for the bench binaries.
//
// Every bench prints (a) a header identifying the paper table/figure it
// regenerates and (b) TextTables with the same rows/series the paper
// reports.  Absolute values come from the simulator, so the expectation is
// shape fidelity, not number fidelity (see EXPERIMENTS.md).

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <iostream>
#include <string>

#include "src/common/table.h"

namespace papd {

inline void PrintBenchHeader(const std::string& id, const std::string& title) {
  std::cout << "==========================================================================\n";
  std::cout << id << ": " << title << "\n";
  std::cout << "(Per-Application Power Delivery, EuroSys'19 — simulator reproduction)\n";
  std::cout << "==========================================================================\n";
}

inline std::string Pct(double fraction, int precision = 1) {
  return TextTable::Num(fraction * 100.0, precision) + "%";
}

}  // namespace papd

#endif  // BENCH_BENCH_UTIL_H_
