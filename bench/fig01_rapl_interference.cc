// Figure 1: performance interference between applications under RAPL,
// normalized to standalone execution at 85 W.
//
// Five copies of gcc (low demand) and five of cam4 (high demand, AVX) run
// concurrently on the ten Skylake cores under progressively lower RAPL
// limits.  The paper's observations to reproduce:
//   - cam4 is pinned near its AVX frequency cap regardless of the limit;
//   - as the limit drops, RAPL's global ceiling throttles gcc *first* and
//     *harder* in relative terms, even though gcc draws less power;
//   - at the lowest limit both run at the same frequency, which costs gcc a
//     far larger fraction of its standalone performance.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/experiments/batch.h"
#include "src/experiments/harness.h"

namespace papd {
namespace {

void Run() {
  PrintBenchHeader("Figure 1",
                   "RAPL interference: 5x gcc (LD) + 5x cam4 (HD/AVX) on Skylake");

  const std::vector<double> limits = {85.0, 60.0, 50.0, 40.0};
  std::vector<ScenarioConfig> configs;
  for (double limit : limits) {
    ScenarioConfig c{.platform = SkylakeXeon4114()};
    for (int i = 0; i < 5; i++) {
      c.apps.push_back({.profile = "gcc"});
    }
    for (int i = 0; i < 5; i++) {
      c.apps.push_back({.profile = "cam4"});
    }
    c.policy = PolicyKind::kRaplOnly;
    c.limit_w = Watts{limit};
    c.warmup_s = Seconds{20};
    c.measure_s = Seconds{60};
    configs.push_back(c);
  }
  const std::vector<ScenarioResult> results = RunScenarios(configs);

  TextTable t;
  t.SetHeader({"limit", "pkg W", "gcc MHz", "gcc perf", "cam4 MHz", "cam4 perf",
               "gcc loss", "cam4 loss"});
  for (size_t i = 0; i < limits.size(); i++) {
    const double limit = limits[i];
    const ScenarioResult& r = results[i];

    Mhz gcc_mhz{0.0};
    double gcc_perf = 0.0;
    Mhz cam_mhz{0.0};
    double cam_perf = 0.0;
    for (const AppResult& app : r.apps) {
      if (app.name == "gcc") {
        gcc_mhz += app.avg_active_mhz / 5.0;
        gcc_perf += app.norm_perf / 5.0;
      } else {
        cam_mhz += app.avg_active_mhz / 5.0;
        cam_perf += app.norm_perf / 5.0;
      }
    }
    t.AddRow({TextTable::Num(limit, 0) + "W", TextTable::Num(r.avg_pkg_w.value(), 1),
              TextTable::Num(gcc_mhz.value(), 0), TextTable::Num(gcc_perf, 2),
              TextTable::Num(cam_mhz.value(), 0), TextTable::Num(cam_perf, 2),
              Pct(1.0 - gcc_perf), Pct(1.0 - cam_perf)});
  }
  t.Print(std::cout);
  std::cout << "\nPaper shape check: gcc's relative loss exceeds cam4's at every limit\n"
               "below 85 W, and both converge to the same frequency at 40 W.\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
