// Figure 2: effects of DVFS on Skylake for the SPEC CPU2017 subset.
//
// Every benchmark runs pinned to an isolated core with all cores set to the
// same P-state; we report the distribution (median, quartiles, p1/p99)
// across the 11 benchmarks of (a) performance normalized to 2.2 GHz and
// (b) average package power — the two panels of the paper's box plots.
// Shape features to reproduce: AVX apps (lbm, imagick, cam4) are power
// outliers whose performance saturates near 1.9 GHz, and package power
// jumps by ~5 W entering the turbo region above 2.2 GHz.

#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/experiments/batch.h"
#include "src/experiments/harness.h"
#include "src/specsim/spec2017.h"

namespace papd {
namespace {

struct SweepPoint {
  double norm_perf = 0.0;
  Watts pkg_w{0.0};
  Mhz active_mhz{0.0};
};

ScenarioConfig ConfigAt(const PlatformSpec& platform, const std::string& profile, Mhz freq) {
  ScenarioConfig c{.platform = platform};
  c.apps = {{.profile = profile}};
  c.policy = PolicyKind::kStatic;
  c.static_mhz = freq;
  c.warmup_s = Seconds{5};
  c.measure_s = Seconds{20};
  return c;
}

void Run() {
  PrintBenchHeader("Figure 2", "Effects of DVFS on Skylake for SPEC CPU2017 workloads");
  const PlatformSpec platform = SkylakeXeon4114();
  const Mhz ref_freq{2200};  // Paper normalizes Skylake performance to 2.2 GHz.

  std::vector<Mhz> freqs;
  for (Mhz f{800}; f <= Mhz{3000}; f += Mhz{100}) {
    freqs.push_back(f);
  }

  // The full 11-benchmark x 23-frequency grid fans out across the pool.
  std::vector<ScenarioConfig> configs;
  for (const std::string& name : SpecBenchmarkNames()) {
    for (Mhz f : freqs) {
      configs.push_back(ConfigAt(platform, name, f));
    }
  }
  const std::vector<ScenarioResult> results = RunScenarios(configs);

  // benchmark -> freq -> point.
  std::map<std::string, std::map<double, SweepPoint>> sweep;
  size_t idx = 0;
  for (const std::string& name : SpecBenchmarkNames()) {
    for (Mhz f : freqs) {
      const ScenarioResult& r = results[idx++];
      sweep[name][f.value()] = SweepPoint{.norm_perf = r.apps[0].avg_ips.value(),  // Normalized later.
                                  .pkg_w = r.avg_pkg_w,
                                  .active_mhz = r.apps[0].avg_active_mhz};
    }
  }

  PrintBanner(std::cout, "(a) Performance normalized to 2.2 GHz (box stats over benchmarks)");
  TextTable perf;
  perf.SetHeader({"MHz", "p1", "q1", "median", "q3", "p99"});
  for (Mhz f : freqs) {
    std::vector<double> values;
    for (const std::string& name : SpecBenchmarkNames()) {
      values.push_back(sweep[name][f.value()].norm_perf / sweep[name][ref_freq.value()].norm_perf);
    }
    const BoxStats s = Summarize(values);
    perf.AddRow({TextTable::Num(f.value(), 0), TextTable::Num(s.p1, 2), TextTable::Num(s.q1, 2),
                 TextTable::Num(s.median, 2), TextTable::Num(s.q3, 2),
                 TextTable::Num(s.p99, 2)});
  }
  perf.Print(std::cout);

  PrintBanner(std::cout, "(b) Average package power in watts (box stats over benchmarks)");
  TextTable power;
  power.SetHeader({"MHz", "p1", "q1", "median", "q3", "p99"});
  for (Mhz f : freqs) {
    std::vector<double> values;
    for (const std::string& name : SpecBenchmarkNames()) {
      values.push_back(sweep[name][f.value()].pkg_w.value());
    }
    const BoxStats s = Summarize(values);
    power.AddRow({TextTable::Num(f.value(), 0), TextTable::Num(s.p1, 1), TextTable::Num(s.q1, 1),
                  TextTable::Num(s.median, 1), TextTable::Num(s.q3, 1),
                  TextTable::Num(s.p99, 1)});
  }
  power.Print(std::cout);

  PrintBanner(std::cout, "Per-benchmark detail at the range ends (AVX saturation visible)");
  TextTable detail;
  detail.SetHeader({"benchmark", "perf@3000/perf@2200", "active MHz @3000", "pkg W @3000",
                    "AVX"});
  for (const std::string& name : SpecBenchmarkNames()) {
    const SweepPoint& hi = sweep[name][3000];
    const SweepPoint& ref = sweep[name][ref_freq.value()];
    detail.AddRow({name, TextTable::Num(hi.norm_perf / ref.norm_perf, 2),
                   TextTable::Num(hi.active_mhz.value(), 0), TextTable::Num(hi.pkg_w.value(), 1),
                   GetProfile(name).UsesAvx() ? "yes" : "no"});
  }
  detail.Print(std::cout);
  std::cout << "\nPaper shape check: AVX benchmarks saturate near 1.9 GHz (perf ratio ~1)\n"
               "and show outlier power; non-AVX apps keep scaling into the turbo range.\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
