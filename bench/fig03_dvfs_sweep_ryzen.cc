// Figure 3: effects of DVFS on Ryzen for the SPEC CPU2017 subset.
//
// Same methodology as Figure 2 on the Ryzen 1700X; performance is
// normalized to 3.0 GHz as in the paper.  Shape features to reproduce:
// near-linear performance scaling (smaller anomalies than Skylake), and a
// package power jump entering the XFR/boost region above 3.4 GHz.

#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/experiments/batch.h"
#include "src/experiments/harness.h"
#include "src/specsim/spec2017.h"

namespace papd {
namespace {

struct SweepPoint {
  Ips ips{0.0};
  Watts pkg_w{0.0};
  Mhz active_mhz{0.0};
};

ScenarioConfig ConfigAt(const PlatformSpec& platform, const std::string& profile, Mhz freq) {
  ScenarioConfig c{.platform = platform};
  c.apps = {{.profile = profile}};
  c.policy = PolicyKind::kStatic;
  c.static_mhz = freq;
  c.warmup_s = Seconds{5};
  c.measure_s = Seconds{20};
  return c;
}

SweepPoint ToPoint(const ScenarioResult& r) {
  return SweepPoint{
      .ips = r.apps[0].avg_ips, .pkg_w = r.avg_pkg_w, .active_mhz = r.apps[0].avg_active_mhz};
}

void Run() {
  PrintBenchHeader("Figure 3", "Effects of DVFS on Ryzen for SPEC CPU2017 workloads");
  const PlatformSpec platform = Ryzen1700X();
  const Mhz ref_freq{3000};  // Paper normalizes Ryzen performance to 3.0 GHz.

  std::vector<Mhz> freqs;
  for (Mhz f{800}; f <= Mhz{3800}; f += Mhz{250}) {
    freqs.push_back(platform.PStates().QuantizeDown(f));
  }
  if (freqs.back() != Mhz{3800}) {
    freqs.push_back(Mhz{3800});
  }

  std::vector<ScenarioConfig> configs;
  for (const std::string& name : SpecBenchmarkNames()) {
    for (Mhz f : freqs) {
      configs.push_back(ConfigAt(platform, name, f));
    }
    configs.push_back(ConfigAt(platform, name, ref_freq));
  }
  const std::vector<ScenarioResult> results = RunScenarios(configs);

  std::map<std::string, std::map<double, SweepPoint>> sweep;
  size_t idx = 0;
  for (const std::string& name : SpecBenchmarkNames()) {
    for (Mhz f : freqs) {
      sweep[name][f.value()] = ToPoint(results[idx++]);
    }
    sweep[name][ref_freq.value()] = ToPoint(results[idx++]);
  }

  PrintBanner(std::cout, "(a) Performance normalized to 3.0 GHz (box stats over benchmarks)");
  TextTable perf;
  perf.SetHeader({"MHz", "p1", "q1", "median", "q3", "p99"});
  for (Mhz f : freqs) {
    std::vector<double> values;
    for (const std::string& name : SpecBenchmarkNames()) {
      values.push_back(sweep[name][f.value()].ips / sweep[name][ref_freq.value()].ips);
    }
    const BoxStats s = Summarize(values);
    perf.AddRow({TextTable::Num(f.value(), 0), TextTable::Num(s.p1, 2), TextTable::Num(s.q1, 2),
                 TextTable::Num(s.median, 2), TextTable::Num(s.q3, 2),
                 TextTable::Num(s.p99, 2)});
  }
  perf.Print(std::cout);

  PrintBanner(std::cout, "(b) Average package power in watts (box stats over benchmarks)");
  TextTable power;
  power.SetHeader({"MHz", "p1", "q1", "median", "q3", "p99"});
  for (Mhz f : freqs) {
    std::vector<double> values;
    for (const std::string& name : SpecBenchmarkNames()) {
      values.push_back(sweep[name][f.value()].pkg_w.value());
    }
    const BoxStats s = Summarize(values);
    power.AddRow({TextTable::Num(f.value(), 0), TextTable::Num(s.p1, 1), TextTable::Num(s.q1, 1),
                  TextTable::Num(s.median, 1), TextTable::Num(s.q3, 1),
                  TextTable::Num(s.p99, 1)});
  }
  power.Print(std::cout);
  std::cout << "\nPaper shape check: performance rises nearly linearly with frequency\n"
               "(no Skylake-style saturation plateau), and power steps up in the boost\n"
               "region above 3.4 GHz.\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
