// Figure 4: impact of RAPL on per-core DVFS with the gcc benchmark.
//
// Ten copies of gcc on Skylake: five cores are unconstrained (request the
// maximum P-state) and five are throttled to the frequency on the X axis,
// under RAPL limits from 85 W down to 40 W.  The paper's observations:
//   (a) power saved by the throttled cores is spent by the unconstrained
//       cores, whose performance rises above the all-at-2.5GHz baseline;
//   (b) RAPL finds a global maximum frequency — it throttles only the
//       unconstrained (fastest) cores; already-throttled cores keep their
//       requested frequency.

#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/workload.h"

namespace papd {
namespace {

struct Point {
  double unconstrained_perf = 0.0;  // Mean IPS of the unconstrained half.
  Mhz unconstrained_mhz{0.0};
  Mhz throttled_mhz{0.0};
  Watts pkg_w{0.0};
};

// This experiment needs raw per-core frequency requests *plus* a hardware
// RAPL limit — a combination no daemon policy expresses — so it drives the
// simulator directly, like the paper's scripts drive the MSRs.

Point MeasureDirect(Watts limit, Mhz throttle_mhz) {
  const PlatformSpec spec = SkylakeXeon4114();
  Package pkg(spec);
  std::vector<std::unique_ptr<Process>> procs;
  for (int i = 0; i < 10; i++) {
    procs.push_back(std::make_unique<Process>(GetProfile("gcc"), 1 + i));
    pkg.AttachWork(i, procs[static_cast<size_t>(i)].get());
    pkg.SetRequestedMhz(i, i < 5 ? spec.turbo_max_mhz : throttle_mhz);
  }
  pkg.SetRaplLimit(limit);
  Simulator sim(&pkg);
  sim.Run(Seconds{10.0});  // Warmup/settling.
  std::vector<double> instr0(10);
  std::vector<double> aperf0(10);
  std::vector<double> mperf0(10);
  for (int i = 0; i < 10; i++) {
    instr0[static_cast<size_t>(i)] = pkg.core(i).instructions_retired();
    aperf0[static_cast<size_t>(i)] = pkg.core(i).aperf_cycles();
    mperf0[static_cast<size_t>(i)] = pkg.core(i).mperf_cycles();
  }
  const Joules e0{pkg.package_energy_j()};
  const Seconds t0{pkg.now()};
  sim.Run(Seconds{40.0});
  const Seconds dt{pkg.now() - t0};

  Point p;
  for (int i = 0; i < 10; i++) {
    const auto idx = static_cast<size_t>(i);
    const double ips = (pkg.core(i).instructions_retired() - instr0[idx]) / dt.value();
    const double dm = pkg.core(i).mperf_cycles() - mperf0[idx];
    const Mhz mhz = dm > 0 ? (pkg.core(i).aperf_cycles() - aperf0[idx]) / dm * spec.tsc_mhz : Mhz{0};
    if (i < 5) {
      p.unconstrained_perf += ips / 5.0;
      p.unconstrained_mhz += mhz / 5.0;
    } else {
      p.throttled_mhz += mhz / 5.0;
    }
  }
  p.pkg_w = (pkg.package_energy_j() - e0) / dt;
  return p;
}

void Run() {
  PrintBenchHeader("Figure 4",
                   "RAPL x per-core DVFS: 5 unconstrained + 5 throttled cores of gcc");

  // Baseline: all limits satisfied, everything at the all-core turbo
  // ("2.5 GHz" in the paper); performance is normalized to this point.
  const Point base = MeasureDirect(Watts{85.0}, SkylakeXeon4114().turbo_max_mhz);

  for (double limit : {85.0, 60.0, 50.0, 40.0}) {
    PrintBanner(std::cout, "RAPL limit " + TextTable::Num(limit, 0) + " W");
    TextTable t;
    t.SetHeader({"throttled-to", "unconstrained MHz", "throttled MHz",
                 "unconstrained perf vs base", "pkg W"});
    for (Mhz throttle : {Mhz{2500.0}, Mhz{2200.0}, Mhz{1900.0}, Mhz{1600.0}, Mhz{1300.0}, Mhz{1000.0}, Mhz{800.0}}) {
      const Point p = MeasureDirect(Watts{limit}, throttle);
      t.AddRow({TextTable::Num(throttle.value(), 0), TextTable::Num(p.unconstrained_mhz.value(), 0),
                TextTable::Num(p.throttled_mhz.value(), 0),
                Pct(p.unconstrained_perf / base.unconstrained_perf),
                TextTable::Num(p.pkg_w.value(), 1)});
    }
    t.Print(std::cout);
  }
  std::cout << "\nPaper shape check: (a) throttling half the cores lets the other half\n"
               "run above the baseline (e.g. at 50 W, throttled@800 pushes the\n"
               "unconstrained cores past 100%); (b) the throttled cores' frequency\n"
               "always equals their request — RAPL reduces only the fastest cores.\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
