// Figure 5: effect of co-location under RAPL on a latency-sensitive
// application.
//
// websearch (300 users, 9 cores, high priority in later experiments) runs
// with and without a cpuburn power virus on the tenth core, under
// progressively lower RAPL limits with all cores requesting 3 GHz.  The
// paper reports 90th-percentile latency; the shape to reproduce is a
// dramatic degradation (worse than 2x of running alone) once the limit
// drops toward 40 W, caused by the virus dragging the global RAPL ceiling
// down.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/experiments/batch.h"
#include "src/experiments/harness.h"

namespace papd {
namespace {

void Run() {
  PrintBenchHeader("Figure 5",
                   "websearch p90 latency with/without cpuburn under RAPL (Skylake)");

  const std::vector<double> limits = {85.0, 65.0, 55.0, 50.0, 45.0, 40.0, 35.0};
  std::vector<WebsearchConfig> configs;
  for (double limit : limits) {
    WebsearchConfig alone{.platform = SkylakeXeon4114()};
    alone.policy = PolicyKind::kRaplOnly;
    alone.limit_w = Watts{limit};
    alone.with_cpuburn = false;
    alone.warmup_s = Seconds{20};
    alone.measure_s = Seconds{240};
    WebsearchConfig colo = alone;
    colo.with_cpuburn = true;
    configs.push_back(alone);
    configs.push_back(colo);
  }
  const std::vector<WebsearchResult> results = RunWebsearches(configs);

  TextTable t;
  t.SetHeader({"limit", "alone p90 ms", "colocated p90 ms", "alone=1.0 rel.",
               "alone pkg W", "colo pkg W"});
  for (size_t i = 0; i < limits.size(); i++) {
    const double limit = limits[i];
    const WebsearchResult& a = results[2 * i];
    const WebsearchResult& c = results[2 * i + 1];
    t.AddRow({TextTable::Num(limit, 0) + "W", TextTable::Num(a.p90_latency.value() * 1e3, 1),
              TextTable::Num(c.p90_latency.value() * 1e3, 1),
              TextTable::Num(c.p90_latency / a.p90_latency, 2),
              TextTable::Num(a.avg_pkg_w.value(), 1), TextTable::Num(c.avg_pkg_w.value(), 1)});
  }
  t.Print(std::cout);
  std::cout << "\nPaper shape check: co-location is nearly free at high limits, but below\n"
               "~45 W the power virus more than doubles websearch's p90 latency\n"
               "(the paper reports >2x degradation under 40 W).\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
