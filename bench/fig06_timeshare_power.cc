// Figure 6: time-shared power consumption for cactusBSSN (HD) and gcc (LD)
// on a single Ryzen core at 3.4 GHz.
//
// One application is fixed at 50% CPU share while the other's share sweeps
// 10%..50% (the docker --cpu-shares experiment of Section 4.3); both
// standalone (100% share) power draws are shown as references.  The result
// to reproduce: average core power is the residency-weighted sum of the
// two applications' standalone draws.

#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/cpusim/timeshare.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/workload.h"

namespace papd {
namespace {

Watts CorePowerWithShares(double hd_share, double ld_share) {
  Package pkg(Ryzen1700X());
  Process hd(GetProfile("cactusBSSN"), 1);
  Process ld(GetProfile("gcc"), 2);
  std::vector<TimeSharedCore::Member> members;
  if (hd_share > 0.0) {
    members.push_back({.work = &hd, .residency = hd_share});
  }
  if (ld_share > 0.0) {
    members.push_back({.work = &ld, .residency = ld_share});
  }
  TimeSharedCore shared(std::move(members));
  pkg.AttachWork(0, &shared);
  pkg.SetRequestedMhz(0, Mhz{3400});
  Simulator sim(&pkg);
  sim.Run(Seconds{5.0});
  const Joules e0{pkg.core(0).energy_j()};
  const Seconds t0{pkg.now()};
  sim.Run(Seconds{20.0});
  return (pkg.core(0).energy_j() - e0) / (pkg.now() - t0);
}

void Run() {
  PrintBenchHeader("Figure 6",
                   "Time-shared core power, cactusBSSN (HD) / gcc (LD), Ryzen @3.4 GHz");

  const Watts hd_alone{CorePowerWithShares(1.0, 0.0)};
  const Watts ld_alone{CorePowerWithShares(0.0, 1.0)};
  std::cout << "standalone @100% share:  cactusBSSN " << TextTable::Num(hd_alone.value(), 2)
            << " W,  gcc " << TextTable::Num(ld_alone.value(), 2) << " W\n";

  PrintBanner(std::cout, "(a) HD fixed at 50%, LD share varied");
  TextTable a;
  a.SetHeader({"LD share", "core W", "residency-weighted model W"});
  for (double ld : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    const Watts measured{CorePowerWithShares(0.5, ld)};
    const Watts modeled{0.5 * hd_alone + ld * ld_alone};  // Idle remainder ~0 W.
    a.AddRow({Pct(ld, 0), TextTable::Num(measured.value(), 2), TextTable::Num(modeled.value(), 2)});
  }
  a.Print(std::cout);

  PrintBanner(std::cout, "(b) LD fixed at 50%, HD share varied");
  TextTable b;
  b.SetHeader({"HD share", "core W", "residency-weighted model W"});
  for (double hd : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    const Watts measured{CorePowerWithShares(hd, 0.5)};
    const Watts modeled{hd * hd_alone + 0.5 * ld_alone};
    b.AddRow({Pct(hd, 0), TextTable::Num(measured.value(), 2), TextTable::Num(modeled.value(), 2)});
  }
  b.Print(std::cout);
  std::cout << "\nPaper shape check: core power rises linearly with the varied share and\n"
               "matches the time-weighted sum of the standalone draws.\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
