// Figure 7 (and Table 2): priority-policy experiments on Skylake.
//
// The Table 2 workload mixes (cactusBSSN = HD, leela = LD; 10H0L .. 1H9L)
// run under the priority policy and under bare RAPL at 85/50/40 W.  For
// each run we report, per priority class, the mean normalized performance
// and mean active frequency — the two panels of Figure 7.  Shapes to
// reproduce:
//   - priority protects HP performance; RAPL treats both classes alike;
//   - at 50/40 W with many HP apps, LP apps starve;
//   - at 40 W with few HP apps they run *faster* than at 85 W thanks to
//     opportunistic scaling over the offlined LP cores.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/experiments/batch.h"
#include "src/experiments/harness.h"
#include "src/experiments/scenarios.h"

namespace papd {
namespace {

struct ClassStats {
  double hp_perf = 0.0;
  double lp_perf = 0.0;
  Mhz hp_mhz{0.0};
  Mhz lp_mhz{0.0};
  int lp_starved = 0;
  Watts pkg_w{0.0};
};

ScenarioConfig MakeConfig(const WorkloadMix& mix, PolicyKind policy, Watts limit) {
  ScenarioConfig c{.platform = SkylakeXeon4114()};
  c.apps = mix.apps;
  c.policy = policy;
  c.limit_w = limit;
  c.warmup_s = Seconds{30};
  c.measure_s = Seconds{60};
  return c;
}

ClassStats Reduce(const ScenarioResult& r) {
  ClassStats s;
  s.pkg_w = r.avg_pkg_w;
  int hp_n = 0;
  int lp_n = 0;
  for (const AppResult& app : r.apps) {
    if (app.high_priority) {
      s.hp_perf += app.norm_perf;
      s.hp_mhz += app.avg_active_mhz;
      hp_n++;
    } else {
      s.lp_perf += app.norm_perf;
      s.lp_mhz += app.avg_active_mhz;
      lp_n++;
      if (app.starved) {
        s.lp_starved++;
      }
    }
  }
  if (hp_n > 0) {
    s.hp_perf /= hp_n;
    s.hp_mhz /= hp_n;
  }
  if (lp_n > 0) {
    s.lp_perf /= lp_n;
    s.lp_mhz /= lp_n;
  }
  return s;
}

void PrintTable2() {
  PrintBanner(std::cout, "Table 2: workload mixes (columns: count of each app kind)");
  TextTable t;
  t.SetHeader({"mix", "cactusBSSN-HP", "leela-HP", "cactusBSSN-LP", "leela-LP"});
  for (const WorkloadMix& mix : SkylakePriorityMixes()) {
    int chp = 0;
    int lhp = 0;
    int clp = 0;
    int llp = 0;
    for (const AppSetup& a : mix.apps) {
      if (a.profile == "cactusBSSN") {
        (a.high_priority ? chp : clp)++;
      } else {
        (a.high_priority ? lhp : llp)++;
      }
    }
    t.AddRow({mix.label, std::to_string(chp), std::to_string(lhp), std::to_string(clp),
              std::to_string(llp)});
  }
  t.Print(std::cout);
}

void Run() {
  PrintBenchHeader("Figure 7 / Table 2", "Priority policy vs RAPL on Skylake");
  PrintTable2();

  for (PolicyKind policy : {PolicyKind::kPriority, PolicyKind::kRaplOnly}) {
    PrintBanner(std::cout, std::string("policy: ") + PolicyKindName(policy));
    std::vector<ScenarioConfig> configs;
    for (double limit : {85.0, 50.0, 40.0}) {
      for (const WorkloadMix& mix : SkylakePriorityMixes()) {
        configs.push_back(MakeConfig(mix, policy, Watts{limit}));
      }
    }
    const std::vector<ScenarioResult> results = RunScenarios(configs);

    TextTable t;
    t.SetHeader({"limit", "mix", "HP perf", "LP perf", "HP MHz", "LP MHz", "LP starved",
                 "pkg W"});
    size_t idx = 0;
    for (double limit : {85.0, 50.0, 40.0}) {
      for (const WorkloadMix& mix : SkylakePriorityMixes()) {
        const ClassStats s = Reduce(results[idx++]);
        t.AddRow({TextTable::Num(limit, 0) + "W", mix.label, TextTable::Num(s.hp_perf, 2),
                  TextTable::Num(s.lp_perf, 2), TextTable::Num(s.hp_mhz.value(), 0),
                  TextTable::Num(s.lp_mhz.value(), 0), std::to_string(s.lp_starved),
                  TextTable::Num(s.pkg_w.value(), 1)});
      }
    }
    t.Print(std::cout);
  }
  std::cout << "\nPaper shape check: under the priority policy HP perf stays near its 85 W\n"
               "level at every limit (rising above it at 40 W for 3H7L/1H9L via turbo),\n"
               "while LP apps starve when residual power runs out; under RAPL both\n"
               "classes degrade together.\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
