// Figure 8: priority-policy experiments on Ryzen 1700X.
//
// Same structure as Figure 7 but on the 8-core Ryzen (which has no RAPL
// limiting, so only the policy runs), with the additional middle panel the
// paper shows: per-class core power, available through Ryzen's per-core
// energy counters.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/experiments/batch.h"
#include "src/experiments/harness.h"
#include "src/experiments/scenarios.h"

namespace papd {
namespace {

void Run() {
  PrintBenchHeader("Figure 8", "Priority policy on Ryzen (8 cores, per-core power)");

  std::vector<ScenarioConfig> configs;
  for (double limit : {85.0, 50.0, 40.0}) {
    for (const WorkloadMix& mix : RyzenPriorityMixes()) {
      ScenarioConfig c{.platform = Ryzen1700X()};
      c.apps = mix.apps;
      c.policy = PolicyKind::kPriority;
      c.limit_w = Watts{limit};
      c.warmup_s = Seconds{30};
      c.measure_s = Seconds{60};
      configs.push_back(c);
    }
  }
  const std::vector<ScenarioResult> results = RunScenarios(configs);

  TextTable t;
  t.SetHeader({"limit", "mix", "HP perf", "LP perf", "HP core W", "LP core W", "HP MHz",
               "LP MHz", "LP starved", "pkg W"});
  size_t idx = 0;
  for (double limit : {85.0, 50.0, 40.0}) {
    for (const WorkloadMix& mix : RyzenPriorityMixes()) {
      const ScenarioResult& r = results[idx++];

      double hp_perf = 0.0;
      double lp_perf = 0.0;
      Watts hp_w{0.0};
      Watts lp_w{0.0};
      Mhz hp_mhz{0.0};
      Mhz lp_mhz{0.0};
      int hp_n = 0;
      int lp_n = 0;
      int starved = 0;
      for (const AppResult& app : r.apps) {
        if (app.high_priority) {
          hp_perf += app.norm_perf;
          hp_w += app.avg_core_w;
          hp_mhz += app.avg_active_mhz;
          hp_n++;
        } else {
          lp_perf += app.norm_perf;
          lp_w += app.avg_core_w;
          lp_mhz += app.avg_active_mhz;
          lp_n++;
          starved += app.starved ? 1 : 0;
        }
      }
      t.AddRow({TextTable::Num(limit, 0) + "W", mix.label,
                TextTable::Num(hp_n ? hp_perf / hp_n : 0, 2),
                TextTable::Num(lp_n ? lp_perf / lp_n : 0, 2),
                TextTable::Num(hp_n ? (hp_w / hp_n).value() : 0, 2),
                TextTable::Num(lp_n ? (lp_w / lp_n).value() : 0, 2),
                TextTable::Num(hp_n ? (hp_mhz / hp_n).value() : 0, 0),
                TextTable::Num(lp_n ? (lp_mhz / lp_n).value() : 0, 0), std::to_string(starved),
                TextTable::Num(r.avg_pkg_w.value(), 1)});
    }
  }
  t.Print(std::cout);
  std::cout << "\nPaper shape check: nearly identical behaviour to Skylake — at 50 W LP\n"
               "apps run only when few HP apps exist; at 40 W only the 2H6L mix leaves\n"
               "room for LP work.  HP core power exceeds LP core power whenever both run\n"
               "(4H4L's all-HD HP class draws more than 2H6L's mixed HP class).\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
