// Figure 9: proportional-share policy experiments on Skylake.
//
// Five copies of leela (LD) and five of cactusBSSN (HD) run with share
// splits 90/10, 70/30 and 50/50 under 40 W and 50 W limits, once with
// frequency shares and once with performance shares; bare RAPL is included
// as the no-policy reference.  Shapes to reproduce:
//   - low dynamic range: at 90/10 the low-share apps keep more than 10% of
//     the resource (the 800 MHz floor);
//   - frequency and performance shares produce very similar outcomes;
//   - under RAPL the HD app wins slightly (it is AVX-free here, so both run
//     at the ceiling and cactusBSSN's higher IPC-per-MHz demand shows).

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/experiments/batch.h"
#include "src/experiments/harness.h"
#include "src/experiments/scenarios.h"

namespace papd {
namespace {

void Run() {
  PrintBenchHeader("Figure 9",
                   "Proportional shares on Skylake: 5x leela (LD) vs 5x cactusBSSN (HD)");

  for (PolicyKind policy : {PolicyKind::kFrequencyShares, PolicyKind::kPerformanceShares,
                            PolicyKind::kRaplOnly}) {
    PrintBanner(std::cout, std::string("policy: ") + PolicyKindName(policy));
    std::vector<ScenarioConfig> configs;
    for (double limit : {40.0, 50.0}) {
      for (auto [ld, hd] : {std::pair{90.0, 10.0}, {70.0, 30.0}, {50.0, 50.0}}) {
        ScenarioConfig c{.platform = SkylakeXeon4114()};
        c.apps = ShareSplitMix(10, ld, hd).apps;
        c.policy = policy;
        c.limit_w = Watts{limit};
        c.warmup_s = Seconds{30};
        c.measure_s = Seconds{60};
        configs.push_back(c);
      }
    }
    std::vector<ScenarioResult> results = RunScenarios(configs);

    TextTable t;
    t.SetHeader({"limit", "shares LD/HD", "LD MHz", "HD MHz", "LD perf", "HD perf",
                 "LD freq%", "HD freq%", "pkg W"});
    size_t idx = 0;
    for (double limit : {40.0, 50.0}) {
      for (auto [ld, hd] : {std::pair{90.0, 10.0}, {70.0, 30.0}, {50.0, 50.0}}) {
        ScenarioResult& r = results[idx++];
        AddResourceShares(&r);

        Mhz ld_mhz{0.0};
        Mhz hd_mhz{0.0};
        double ld_perf = 0.0;
        double hd_perf = 0.0;
        double ld_fshare = 0.0;
        double hd_fshare = 0.0;
        for (const AppResult& app : r.apps) {
          if (app.name == "leela") {
            ld_mhz += app.avg_active_mhz / 5.0;
            ld_perf += app.norm_perf / 5.0;
            ld_fshare += app.share_of_freq;
          } else {
            hd_mhz += app.avg_active_mhz / 5.0;
            hd_perf += app.norm_perf / 5.0;
            hd_fshare += app.share_of_freq;
          }
        }
        t.AddRow({TextTable::Num(limit, 0) + "W",
                  TextTable::Num(ld, 0) + "/" + TextTable::Num(hd, 0),
                  TextTable::Num(ld_mhz.value(), 0), TextTable::Num(hd_mhz.value(), 0),
                  TextTable::Num(ld_perf, 2), TextTable::Num(hd_perf, 2), Pct(ld_fshare),
                  Pct(hd_fshare), TextTable::Num(r.avg_pkg_w.value(), 1)});
      }
    }
    t.Print(std::cout);
  }
  std::cout << "\nPaper shape check: frequency and performance shares track each other\n"
               "closely; the 90/10 split cannot push the HD apps below the minimum\n"
               "P-state (they keep >20% of total frequency); RAPL ignores shares.\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
