// Figure 10: proportional-share policy experiments on Ryzen.
//
// Four copies of leela (LD) and four of cactusBSSN (HD) at share splits
// 90/10, 70/30, 50/50 and 30/70 under 40 W and 50 W, for all three share
// types — frequency, performance, and power shares (the last possible only
// here, where per-core power telemetry exists).  The paper visualizes the
// *percent of total resource used* by each application for each of the
// three measured resources; shapes to reproduce:
//   - the daemon tracks 30/70..70/30 splits accurately but cannot push an
//     app below ~20% (minimum-frequency floor);
//   - frequency shares give the most accurate performance control;
//   - power shares equalize power but isolate performance poorly.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/experiments/batch.h"
#include "src/experiments/harness.h"
#include "src/experiments/scenarios.h"

namespace papd {
namespace {

void Run() {
  PrintBenchHeader("Figure 10",
                   "Proportional shares on Ryzen: 4x leela (LD) vs 4x cactusBSSN (HD)");

  for (PolicyKind policy : {PolicyKind::kFrequencyShares, PolicyKind::kPerformanceShares,
                            PolicyKind::kPowerShares}) {
    PrintBanner(std::cout, std::string("policy: ") + PolicyKindName(policy));
    std::vector<ScenarioConfig> configs;
    for (double limit : {40.0, 50.0}) {
      for (auto [ld, hd] :
           {std::pair{90.0, 10.0}, {70.0, 30.0}, {50.0, 50.0}, {30.0, 70.0}}) {
        ScenarioConfig c{.platform = Ryzen1700X()};
        c.apps = ShareSplitMix(8, ld, hd).apps;
        c.policy = policy;
        c.limit_w = Watts{limit};
        c.warmup_s = Seconds{30};
        c.measure_s = Seconds{60};
        configs.push_back(c);
      }
    }
    std::vector<ScenarioResult> results = RunScenarios(configs);

    TextTable t;
    t.SetHeader({"limit", "shares LD/HD", "LD freq%", "HD freq%", "LD perf%", "HD perf%",
                 "LD power%", "HD power%", "pkg W"});
    size_t idx = 0;
    for (double limit : {40.0, 50.0}) {
      for (auto [ld, hd] :
           {std::pair{90.0, 10.0}, {70.0, 30.0}, {50.0, 50.0}, {30.0, 70.0}}) {
        ScenarioResult& r = results[idx++];
        AddResourceShares(&r);

        double fshare[2] = {0, 0};
        double pshare[2] = {0, 0};
        double wshare[2] = {0, 0};
        for (const AppResult& app : r.apps) {
          const int k = app.name == "leela" ? 0 : 1;
          fshare[k] += app.share_of_freq;
          pshare[k] += app.share_of_perf;
          wshare[k] += app.share_of_power;
        }
        t.AddRow({TextTable::Num(limit, 0) + "W",
                  TextTable::Num(ld, 0) + "/" + TextTable::Num(hd, 0), Pct(fshare[0]),
                  Pct(fshare[1]), Pct(pshare[0]), Pct(pshare[1]), Pct(wshare[0]),
                  Pct(wshare[1]), TextTable::Num(r.avg_pkg_w.value(), 1)});
      }
    }
    t.Print(std::cout);
  }
  std::cout << "\nPaper shape check: all policies are accurate for 30/70..70/30; none can\n"
               "drive an app class below ~20% of the resource; under power shares the\n"
               "power split matches the ratio while the performance split does not\n"
               "(poor performance isolation).\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
