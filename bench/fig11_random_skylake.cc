// Figure 11 (and Table 3): random-mix proportional-share experiments on
// Skylake.
//
// Two randomly drawn application sets (Table 3).  Two copies of each of the
// five applications run on the ten cores, with share levels
// {20, 40, 60, 80, 100} by application index; frequency and performance
// shares at 40/50/85 W.  Shapes to reproduce:
//   - set A: resource use rises with share level for both policies;
//     exchange2 (A3) under-performs and perlbench (A1) over-performs their
//     frequency allocations under performance shares (frequency
//     sensitivity);
//   - set B: cam4 (B3) and lbm (B4) are AVX-capped and cannot use their
//     full share at 85 W;
//   - at 40 W the frequency dynamic range left is small, so allocations
//     compress.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/experiments/batch.h"
#include "src/experiments/harness.h"
#include "src/experiments/scenarios.h"

namespace papd {
namespace {

void PrintTable3() {
  PrintBanner(std::cout, "Table 3: applications for random experiments");
  TextTable t;
  t.SetHeader({"set", "app0", "app1", "app2", "app3", "app4"});
  for (const RandomSet& set : RandomSets()) {
    std::vector<std::string> row = {set.label};
    for (const std::string& app : set.apps) {
      row.push_back(app);
    }
    t.AddRow(row);
  }
  t.Print(std::cout);
  std::cout << "share levels by app index: 20, 40, 60, 80, 100 (both copies alike)\n";
}

void Run() {
  PrintBenchHeader("Figure 11 / Table 3", "Random-mix share experiments on Skylake");
  PrintTable3();

  for (const RandomSet& set : RandomSets()) {
    for (PolicyKind policy :
         {PolicyKind::kFrequencyShares, PolicyKind::kPerformanceShares}) {
      PrintBanner(std::cout, "set " + set.label + ", policy " + PolicyKindName(policy));
      TextTable t;
      std::vector<std::string> header = {"limit"};
      for (size_t i = 0; i < set.apps.size(); i++) {
        header.push_back(set.label + std::to_string(i) + ":" + set.apps[i] + " freq%/perf%");
      }
      header.push_back("pkg W");
      t.SetHeader(header);

      std::vector<ScenarioConfig> configs;
      for (double limit : {40.0, 50.0, 85.0}) {
        ScenarioConfig c{.platform = SkylakeXeon4114()};
        c.apps = RandomSetApps(set);
        c.policy = policy;
        c.limit_w = Watts{limit};
        c.warmup_s = Seconds{30};
        c.measure_s = Seconds{60};
        configs.push_back(c);
      }
      std::vector<ScenarioResult> results = RunScenarios(configs);

      size_t idx = 0;
      for (double limit : {40.0, 50.0, 85.0}) {
        ScenarioResult& r = results[idx++];
        AddResourceShares(&r);

        std::vector<std::string> row = {TextTable::Num(limit, 0) + "W"};
        // Aggregate the two copies of each application (copies sit at
        // indices 2i and 2i+1).
        for (size_t i = 0; i < set.apps.size(); i++) {
          const double f =
              r.apps[2 * i].share_of_freq + r.apps[2 * i + 1].share_of_freq;
          const double p =
              r.apps[2 * i].share_of_perf + r.apps[2 * i + 1].share_of_perf;
          row.push_back(Pct(f) + "/" + Pct(p));
        }
        row.push_back(TextTable::Num(r.avg_pkg_w.value(), 1));
        t.AddRow(row);
      }
      t.Print(std::cout);
    }
  }
  std::cout << "\nPaper shape check: resource use increases with share level in set A;\n"
               "in set B the AVX apps (cam4, lbm) saturate below their allocation at\n"
               "85 W; at 40 W allocations compress toward equality.\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
