// Figure 12: latency-sensitive experiment with the share policies.
//
// The Figure 5 scenario re-run with the daemon policies: websearch on nine
// cores with 90 shares per core (high priority), cpuburn on one core with
// 10 shares.  For each limit we report p90 latency relative to websearch
// running alone at the same limit (the paper's baseline, noted above its
// bars), for bare RAPL and for frequency/performance shares.  Shape to
// reproduce: the policies recover most of the loss RAPL inflicts,
// approaching (sometimes matching) the alone baseline.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/experiments/batch.h"
#include "src/experiments/harness.h"

namespace papd {
namespace {

void Run() {
  PrintBenchHeader("Figure 12",
                   "websearch p90 with policies vs RAPL, relative to running alone");

  const std::vector<double> limits = {65.0, 55.0, 50.0, 45.0, 40.0, 35.0};
  const PolicyKind kColocated[] = {PolicyKind::kRaplOnly, PolicyKind::kFrequencyShares,
                                   PolicyKind::kPerformanceShares, PolicyKind::kPriority};
  // Per limit: the alone baseline followed by the four co-located policies.
  std::vector<WebsearchConfig> configs;
  for (double limit : limits) {
    WebsearchConfig base{.platform = SkylakeXeon4114()};
    base.limit_w = Watts{limit};
    base.warmup_s = Seconds{20};
    base.measure_s = Seconds{240};

    WebsearchConfig alone = base;
    alone.policy = PolicyKind::kRaplOnly;
    alone.with_cpuburn = false;
    configs.push_back(alone);
    for (PolicyKind policy : kColocated) {
      WebsearchConfig c = base;
      c.policy = policy;
      c.with_cpuburn = true;
      configs.push_back(c);
    }
  }
  const std::vector<WebsearchResult> results = RunWebsearches(configs);

  TextTable t;
  t.SetHeader({"limit", "alone p90 ms", "rapl rel.", "freq-shares rel.",
               "perf-shares rel.", "priority rel."});
  const size_t stride = 1 + std::size(kColocated);
  for (size_t i = 0; i < limits.size(); i++) {
    const WebsearchResult& r_alone = results[stride * i];
    auto rel = [&](size_t k) {
      return results[stride * i + 1 + k].p90_latency / r_alone.p90_latency;
    };
    t.AddRow({TextTable::Num(limits[i], 0) + "W",
              TextTable::Num(r_alone.p90_latency.value() * 1e3, 1), TextTable::Num(rel(0), 2),
              TextTable::Num(rel(1), 2), TextTable::Num(rel(2), 2),
              TextTable::Num(rel(3), 2)});
  }
  t.Print(std::cout);
  std::cout << "\nPaper shape check: relative p90 under the policies stays near 1.0 at\n"
               "every limit (occasionally below 1.0 within run-to-run variance), while\n"
               "RAPL degrades sharply below 45 W.  Performance shares track frequency\n"
               "shares closely, as the paper notes.\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
