// Figure 13: active-frequency measurements for the latency-sensitive
// experiment under the proportional frequency policy.
//
// For the Figure 12 frequency-shares runs we report the mean active
// frequency of the websearch cores and of the cpuburn core at each power
// limit, next to the same measurement under RAPL.  Shape to reproduce: the
// policy holds websearch's frequency high and pins the virus near the
// minimum P-state; the improvement over RAPL is bounded by the platform's
// low frequency dynamic range (the paper's explanation for the ~10%
// latency gain).

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/experiments/harness.h"

namespace papd {
namespace {

void Run() {
  PrintBenchHeader("Figure 13",
                   "Active frequencies for the latency-sensitive experiment");

  TextTable t;
  t.SetHeader({"limit", "policy ws MHz", "policy burn MHz", "rapl ws MHz", "rapl burn MHz",
               "alone ws MHz"});
  for (double limit : {65.0, 55.0, 50.0, 45.0, 40.0, 35.0}) {
    WebsearchConfig base{.platform = SkylakeXeon4114()};
    base.limit_w = limit;
    base.warmup_s = 20;
    base.measure_s = 180;

    WebsearchConfig share = base;
    share.policy = PolicyKind::kFrequencyShares;
    const WebsearchResult r_share = RunWebsearch(share);

    WebsearchConfig rapl = base;
    rapl.policy = PolicyKind::kRaplOnly;
    const WebsearchResult r_rapl = RunWebsearch(rapl);

    WebsearchConfig alone = base;
    alone.policy = PolicyKind::kRaplOnly;
    alone.with_cpuburn = false;
    const WebsearchResult r_alone = RunWebsearch(alone);

    t.AddRow({TextTable::Num(limit, 0) + "W", TextTable::Num(r_share.websearch_avg_mhz, 0),
              TextTable::Num(r_share.cpuburn_avg_mhz, 0),
              TextTable::Num(r_rapl.websearch_avg_mhz, 0),
              TextTable::Num(r_rapl.cpuburn_avg_mhz, 0),
              TextTable::Num(r_alone.websearch_avg_mhz, 0)});
  }
  t.Print(std::cout);
  std::cout << "\nPaper shape check: under the policy the cpuburn core sits at/near the\n"
               "800 MHz floor at every limit while websearch tracks the alone-run\n"
               "frequency; under RAPL both classes share one declining ceiling.\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
