// Figure 13: active-frequency measurements for the latency-sensitive
// experiment under the proportional frequency policy.
//
// For the Figure 12 frequency-shares runs we report the mean active
// frequency of the websearch cores and of the cpuburn core at each power
// limit, next to the same measurement under RAPL.  Shape to reproduce: the
// policy holds websearch's frequency high and pins the virus near the
// minimum P-state; the improvement over RAPL is bounded by the platform's
// low frequency dynamic range (the paper's explanation for the ~10%
// latency gain).

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/experiments/batch.h"
#include "src/experiments/harness.h"

namespace papd {
namespace {

void Run() {
  PrintBenchHeader("Figure 13",
                   "Active frequencies for the latency-sensitive experiment");

  const std::vector<double> limits = {65.0, 55.0, 50.0, 45.0, 40.0, 35.0};
  // Per limit: frequency shares, RAPL co-located, RAPL alone.
  std::vector<WebsearchConfig> configs;
  for (double limit : limits) {
    WebsearchConfig base{.platform = SkylakeXeon4114()};
    base.limit_w = Watts{limit};
    base.warmup_s = Seconds{20};
    base.measure_s = Seconds{180};

    WebsearchConfig share = base;
    share.policy = PolicyKind::kFrequencyShares;
    configs.push_back(share);

    WebsearchConfig rapl = base;
    rapl.policy = PolicyKind::kRaplOnly;
    configs.push_back(rapl);

    WebsearchConfig alone = base;
    alone.policy = PolicyKind::kRaplOnly;
    alone.with_cpuburn = false;
    configs.push_back(alone);
  }
  const std::vector<WebsearchResult> results = RunWebsearches(configs);

  TextTable t;
  t.SetHeader({"limit", "policy ws MHz", "policy burn MHz", "rapl ws MHz", "rapl burn MHz",
               "alone ws MHz"});
  for (size_t i = 0; i < limits.size(); i++) {
    const WebsearchResult& r_share = results[3 * i];
    const WebsearchResult& r_rapl = results[3 * i + 1];
    const WebsearchResult& r_alone = results[3 * i + 2];

    t.AddRow({TextTable::Num(limits[i], 0) + "W", TextTable::Num(r_share.websearch_avg_mhz.value(), 0),
              TextTable::Num(r_share.cpuburn_avg_mhz.value(), 0),
              TextTable::Num(r_rapl.websearch_avg_mhz.value(), 0),
              TextTable::Num(r_rapl.cpuburn_avg_mhz.value(), 0),
              TextTable::Num(r_alone.websearch_avg_mhz.value(), 0)});
  }
  t.Print(std::cout);
  std::cout << "\nPaper shape check: under the policy the cpuburn core sits at/near the\n"
               "800 MHz floor at every limit while websearch tracks the alone-run\n"
               "frequency; under RAPL both classes share one declining ceiling.\n";
}

}  // namespace
}  // namespace papd

int main() {
  papd::Run();
  return 0;
}
