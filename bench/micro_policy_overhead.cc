// Micro-benchmarks: compute cost of the policy machinery.
//
// The paper notes its userspace daemon is not production-grade and that the
// policy "should be implemented in hardware ... to provide a low sampling
// overhead" (Section 5).  These measurements quantify the
// per-iteration cost of each policy's redistribution, the 3-P-state
// selector, a full daemon step (telemetry read + policy + MSR writes), and
// a simulator tick.  Timing uses the perf_util calibration/warmup
// discipline shared with bench/perf_harness.

#include "bench/perf_util.h"

#include <memory>
#include <vector>

#include "src/cpusim/package.h"
#include "src/cpusim/thermal.h"
#include "src/governor/governor.h"
#include "src/msr/msr.h"
#include "src/policy/daemon.h"
#include "src/policy/frequency_shares.h"
#include "src/policy/hwp.h"
#include "src/policy/min_funding.h"
#include "src/policy/performance_shares.h"
#include "src/policy/power_shares.h"
#include "src/policy/priority_policy.h"
#include "src/policy/pstate_selector.h"
#include "src/policy/single_core.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/spinlock.h"
#include "src/specsim/websearch.h"
#include "src/specsim/workload.h"

namespace papd {
namespace {

std::vector<ManagedApp> TenApps() {
  std::vector<ManagedApp> apps;
  for (int i = 0; i < 10; i++) {
    apps.push_back(ManagedApp{.name = "app",
                              .cpu = i,
                              .shares = 10.0 + 9.0 * i,
                              .high_priority = i % 2 == 0,
                              .baseline_ips = Ips{2e9}});
  }
  return apps;
}

TelemetrySample FakeSample(int cores, bool per_core_power) {
  TelemetrySample s;
  s.t = Seconds{1.0};
  s.dt = Seconds{1.0};
  s.pkg_w = Watts{52.0};
  for (int i = 0; i < cores; i++) {
    CoreTelemetry ct;
    ct.cpu = i;
    ct.active_mhz = Mhz{1500.0 + 100.0 * i};
    ct.ips = Ips{1.5e9};
    ct.busy = 1.0;
    if (per_core_power) {
      ct.core_w = Watts{4.0};
    }
    s.cores.push_back(ct);
  }
  return s;
}

PolicyPlatform Platform() { return MakePolicyPlatform(SkylakeXeon4114()); }

void BM_MinFundingDistribute(perf::State& state) {
  std::vector<ShareRequest> req;
  for (int i = 0; i < 10; i++) {
    req.push_back(ShareRequest{.shares = 1.0 + i, .minimum = 800, .maximum = 3000});
  }
  for (auto _ : state) {
    perf::DoNotOptimize(DistributeProportional(18000.0, req));
  }
}
PAPD_PERF_BENCH(BM_MinFundingDistribute);

void BM_FrequencySharesRedistribute(perf::State& state) {
  FrequencyShares policy(Platform());
  const auto apps = TenApps();
  policy.InitialDistribution(apps, Watts{45.0});
  const TelemetrySample sample = FakeSample(10, false);
  for (auto _ : state) {
    perf::DoNotOptimize(policy.Redistribute(apps, sample, Watts{45.0}));
  }
}
PAPD_PERF_BENCH(BM_FrequencySharesRedistribute);

void BM_PerformanceSharesRedistribute(perf::State& state) {
  PerformanceShares policy(Platform());
  const auto apps = TenApps();
  policy.InitialDistribution(apps, Watts{45.0});
  const TelemetrySample sample = FakeSample(10, false);
  for (auto _ : state) {
    perf::DoNotOptimize(policy.Redistribute(apps, sample, Watts{45.0}));
  }
}
PAPD_PERF_BENCH(BM_PerformanceSharesRedistribute);

void BM_PowerSharesRedistribute(perf::State& state) {
  PowerShares policy(Platform());
  const auto apps = TenApps();
  policy.InitialDistribution(apps, Watts{45.0});
  const TelemetrySample sample = FakeSample(10, true);
  for (auto _ : state) {
    perf::DoNotOptimize(policy.Redistribute(apps, sample, Watts{45.0}));
  }
}
PAPD_PERF_BENCH(BM_PowerSharesRedistribute);

void BM_PriorityRedistribute(perf::State& state) {
  PriorityPolicy policy(Platform(), {});
  const auto apps = TenApps();
  policy.InitialDistribution(apps, Watts{45.0});
  const TelemetrySample sample = FakeSample(10, false);
  for (auto _ : state) {
    perf::DoNotOptimize(policy.Redistribute(apps, sample, Watts{45.0}));
  }
}
PAPD_PERF_BENCH(BM_PriorityRedistribute);

void BM_SelectPStates(perf::State& state) {
  const std::vector<Mhz> targets = {Mhz{3400}, Mhz{3000}, Mhz{2600}, Mhz{2200}, Mhz{1800}, Mhz{1400}, Mhz{1000}, Mhz{800}};
  for (auto _ : state) {
    perf::DoNotOptimize(SelectPStates(targets, 3, Mhz{25}));
  }
}
PAPD_PERF_BENCH(BM_SelectPStates);

void BM_SelectPStatesNaive(perf::State& state) {
  const std::vector<Mhz> targets = {Mhz{3400}, Mhz{3000}, Mhz{2600}, Mhz{2200}, Mhz{1800}, Mhz{1400}, Mhz{1000}, Mhz{800}};
  for (auto _ : state) {
    perf::DoNotOptimize(SelectPStatesNaive(targets, 3, Mhz{25}));
  }
}
PAPD_PERF_BENCH(BM_SelectPStatesNaive);

void BM_SaturationDetectorObserve(perf::State& state) {
  SaturationDetector det(Platform(), 10);
  const auto apps = TenApps();
  const TelemetrySample sample = FakeSample(10, false);
  const std::vector<Mhz> requested(10, Mhz{2600.0});
  for (auto _ : state) {
    det.Observe(apps, sample, requested);
  }
}
PAPD_PERF_BENCH(BM_SaturationDetectorObserve);

void BM_SingleCoreSharingStep(perf::State& state) {
  SingleCoreSharing policy(Platform(), {{.name = "hd", .shares = 1.0, .demand = 1.4},
                                        {.name = "ld", .shares = 1.0, .demand = 1.0}});
  policy.Initial(Watts{6.0});
  for (auto _ : state) {
    perf::DoNotOptimize(policy.Step(Watts{6.0}, Watts{6.5}));
  }
}
PAPD_PERF_BENCH(BM_SingleCoreSharingStep);

void BM_ThermalModelUpdate(perf::State& state) {
  ThermalModel model(SkylakeXeon4114().thermal, 10);
  const std::vector<Watts> power(10, Watts{6.0});
  for (auto _ : state) {
    model.Update(power, Watts{8.0}, Seconds{0.001});
  }
}
PAPD_PERF_BENCH(BM_ThermalModelUpdate);

void BM_GovernorOndemandDecide(perf::State& state) {
  OndemandGovernor gov(GovernorLimits{});
  double util = 0.3;
  for (auto _ : state) {
    util = util < 0.9 ? util + 0.01 : 0.1;
    perf::DoNotOptimize(gov.Decide(util, Mhz{2000.0}));
  }
}
PAPD_PERF_BENCH(BM_GovernorOndemandDecide);

void BM_SpinLockTick(perf::State& state) {
  SpinLockWork work({0, 1, 2, 3}, SpinLockWork::Params{});
  const std::vector<Mhz> freqs = {Mhz{3000}, Mhz{3000}, Mhz{3000}, Mhz{800}};
  for (auto _ : state) {
    perf::DoNotOptimize(work.Run(Seconds{0.001}, freqs));
  }
}
PAPD_PERF_BENCH(BM_SpinLockTick);

void BM_WebSearchTick(perf::State& state) {
  WebSearch ws({0, 1, 2, 3, 4, 5, 6, 7, 8}, WebSearch::Params{}, 1);
  const std::vector<Mhz> freqs(9, Mhz{2600.0});
  for (auto _ : state) {
    perf::DoNotOptimize(ws.Run(Seconds{0.001}, freqs));
  }
}
PAPD_PERF_BENCH(BM_WebSearchTick);

void BM_PackageTick(perf::State& state) {
  Package pkg(SkylakeXeon4114());
  std::vector<std::unique_ptr<Process>> procs;
  for (int i = 0; i < 10; i++) {
    procs.push_back(std::make_unique<Process>(GetProfile("gcc"), 1 + i));
    pkg.AttachWork(i, procs.back().get());
  }
  for (auto _ : state) {
    pkg.Tick(Seconds{0.001});
  }
}
PAPD_PERF_BENCH(BM_PackageTick);

void BM_DaemonFullStep(perf::State& state) {
  Package pkg(SkylakeXeon4114());
  MsrFile msr(&pkg);
  std::vector<std::unique_ptr<Process>> procs;
  auto apps = TenApps();
  for (int i = 0; i < 10; i++) {
    procs.push_back(std::make_unique<Process>(GetProfile("gcc"), 1 + i));
    pkg.AttachWork(i, procs.back().get());
  }
  PowerDaemon daemon(&msr, apps,
                     {.kind = PolicyKind::kFrequencyShares, .power_limit_w = Watts{45.0}});
  daemon.Start();
  for (auto _ : state) {
    pkg.Tick(Seconds{0.001});  // Advance so each sample covers a nonzero window.
    daemon.Step();
  }
}
PAPD_PERF_BENCH(BM_DaemonFullStep);

}  // namespace
}  // namespace papd

int main(int argc, char** argv) { return papd::perf::PerfMain(argc, argv); }
