// Perf-tracking harness: times representative scenarios serially and in
// parallel and emits machine-readable BENCH_scenarios.json for CI trending.
//
// Five sections:
//   - micro:           hot-loop timings (Package::Tick, full daemon step)
//                      using the perf_util calibration discipline;
//   - scaling:         Package::Tick at 8/64/128 cores (SoA tick engine
//                      cost growth), one 4-socket Rack control period, and
//                      the steady-state allocations-per-tick count, which
//                      must be zero — the harness exits non-zero otherwise;
//   - scenarios:       wall time of one representative scenario per policy,
//                      with simulated-seconds-per-wall-second as the figure
//                      of merit;
//   - batch:           the same scenario list run serially (loop over
//                      RunScenario) and through RunScenarios on a thread
//                      pool; reports the speedup;
//   - cluster:         one BudgetTree control period at datacenter scale
//                      (rows x racks x many-core sockets, >= 2048 simulated
//                      cores), reporting sim-core-ticks/s, the hierarchical
//                      arbiter's per-period overhead, and the worst
//                      cap-invariant slack — the harness exits non-zero if
//                      any grant sum ever exceeds its parent grant;
//   - cluster_100k:    one >= 128k-core homogeneous BudgetTree stepped with
//                      multi-rate ticking, socket-level steady-state hold
//                      and replica memoization — reports sim-core-ticks/s
//                      (must be >= 1e9), the replica-class hit rate, peak
//                      RSS, and the steady-state allocations per step,
//                      which must be zero — the harness exits non-zero
//                      otherwise;
//   - fleet:           the SLO-aware serving fleet: >= 256 open-loop
//                      websearch sockets under one BudgetTree at >= 1M
//                      simulated users, the policy axis (static shares vs
//                      priority vs SLO feedback) expanded through the
//                      declarative SweepSpec API — reports per-policy SLO
//                      violations, p90s, and sockets-stepped/s; the harness
//                      exits non-zero unless SLO feedback beats static
//                      shares on violations at the same cap;
//   - fault_tolerance: representative fault schedules (telemetry faults,
//                      dropped writes) run naive vs hardened — ground-truth
//                      power overshoot and degradation counters, so CI
//                      archives the fault-robustness numbers alongside the
//                      timings;
//   - obs:             tracing overhead (daemon step with tracing off vs on,
//                      overhead percent), the disabled-tracer zero-event
//                      guarantee, and a sample of the metrics registry from
//                      a traced scenario run.
//
// Timing numbers are environment-dependent; CI validates the JSON shape and
// archives the numbers rather than asserting on them (see
// tools/check_bench_json.py).
//
// Flags:
//   --quick       short measurement windows (CI smoke)
//   --jobs=N      worker count for the parallel section (default:
//                 ThreadPool::DefaultJobs(), i.e. PAPD_JOBS or hardware)
//   --out=PATH    JSON output path (default: BENCH_scenarios.json)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <atomic>
#include <cstdlib>
#include <new>

#include <sys/resource.h>

#include "bench/perf_util.h"
#include "src/cluster/budget_tree.h"
#include "src/cluster/fleet.h"
#include "src/cluster/rack.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/common/thread_pool.h"
#include "src/cpusim/package.h"
#include "src/experiments/batch.h"
#include "src/experiments/harness.h"
#include "src/experiments/scenarios.h"
#include "src/experiments/sweep.h"
#include "src/msr/msr.h"
#include "src/policy/daemon.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/workload.h"

// Global allocation counter for the steady-state zero-alloc assertion.
// Counting is cheap enough to leave on for the whole binary; only the
// scaling section reads deltas.
namespace {
std::atomic<long> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace papd {
namespace {

struct Options {
  bool quick = false;
  int jobs = 0;  // 0 = ThreadPool::DefaultJobs().
  std::string out = "BENCH_scenarios.json";
};

struct MicroResult {
  std::string name;
  double ns_per_iter = 0.0;
};

struct ScenarioTiming {
  std::string policy;
  Seconds wall_s{0.0};
  Seconds sim_s{0.0};
};

// The representative scenario: the paper's middle priority mix, which
// exercises every layer (all cores busy, RAPL, thermal, policy daemon).
// Power shares needs per-core power telemetry, so it runs on Ryzen.
ScenarioConfig RepresentativeConfig(PolicyKind policy, bool quick) {
  const bool ryzen = policy == PolicyKind::kPowerShares;
  const auto mixes = ryzen ? RyzenPriorityMixes() : SkylakePriorityMixes();
  ScenarioConfig c{.platform = ryzen ? Ryzen1700X() : SkylakeXeon4114()};
  c.apps = mixes[mixes.size() / 2].apps;
  c.policy = policy;
  c.limit_w = Watts{50.0};
  c.warmup_s = quick ? Seconds{2.0} : Seconds{10.0};
  c.measure_s = quick ? Seconds{4.0} : Seconds{30.0};
  c.seed = 42;
  return c;
}

std::vector<MicroResult> RunMicro(bool quick) {
  const Seconds min_time{quick ? 0.05 : 0.3};
  std::vector<MicroResult> out;

  {
    Package pkg(SkylakeXeon4114());
    std::vector<std::unique_ptr<Process>> procs;
    for (int i = 0; i < 10; i++) {
      procs.push_back(std::make_unique<Process>(GetProfile("gcc"), 1 + i));
      pkg.AttachWork(i, procs.back().get());
    }
    const perf::Result r = perf::MeasureLoop([&pkg] { pkg.Tick(Seconds{0.001}); }, min_time);
    out.push_back({"package_tick_10core_gcc", r.ns_per_iter});
  }

  {
    Package pkg(SkylakeXeon4114());
    MsrFile msr(&pkg);
    std::vector<std::unique_ptr<Process>> procs;
    std::vector<ManagedApp> apps;
    for (int i = 0; i < 10; i++) {
      procs.push_back(std::make_unique<Process>(GetProfile("gcc"), 1 + i));
      pkg.AttachWork(i, procs.back().get());
      apps.push_back(ManagedApp{.name = "gcc",
                                .cpu = i,
                                .shares = 10.0 + 9.0 * i,
                                .high_priority = i % 2 == 0,
                                .baseline_ips = Ips{2e9}});
    }
    PowerDaemon daemon(&msr, apps,
                       {.kind = PolicyKind::kFrequencyShares, .power_limit_w = Watts{45.0}});
    daemon.Start();
    const perf::Result r = perf::MeasureLoop(
        [&pkg, &daemon] {
          pkg.Tick(Seconds{0.001});
          daemon.Step();
        },
        min_time);
    out.push_back({"daemon_full_step", r.ns_per_iter});
  }

  return out;
}

// --- Scaling section ---------------------------------------------------------

struct ScalingRow {
  int cores = 0;
  double ns_per_iter = 0.0;
  double ns_per_core = 0.0;
};

struct RackTiming {
  int sockets = 0;
  // Wall seconds for one control period (1 simulated second across all
  // sockets) and the resulting simulated core-ticks per wall second.
  double wall_s_per_step = 0.0;
  double sim_core_ticks_per_s = 0.0;
};

// One 128-core tick-engine configuration: forced-scalar reference,
// dispatched SIMD kernels, or SIMD + multi-rate.  Speedups are same-run
// ratios against the forced-scalar row, so they are host- and
// build-consistent by construction.
struct TickEngineRow {
  std::string name;
  std::string kernel;  // Kernel table actually driving the run.
  double ns_per_iter = 0.0;
  double ns_per_core = 0.0;
  double speedup_vs_scalar = 0.0;
};

struct ScalingResult {
  std::vector<ScalingRow> package_tick;
  std::vector<TickEngineRow> tick_engine;
  RackTiming rack_tick;
  RackTiming rack_tick_multirate;
  long steady_allocs_per_tick = 0;
};

ScalingResult RunScaling(bool quick) {
  const Seconds min_time{quick ? 0.05 : 0.3};
  ScalingResult out;

  // BM_PackageTick at 8 / 64 / 128 cores, every core running gcc.
  PlatformSpec eight = SkylakeXeon4114();
  eight.num_cores = 8;
  const PlatformSpec specs[] = {eight, ManyCoreXeon64(), ManyCoreEpyc128()};
  for (const PlatformSpec& spec : specs) {
    Package pkg(spec);
    std::vector<std::unique_ptr<Process>> procs;
    for (int i = 0; i < spec.num_cores; i++) {
      procs.push_back(std::make_unique<Process>(GetProfile("gcc"), 1 + static_cast<uint64_t>(i)));
      pkg.AttachWork(i, procs.back().get());
    }
    const perf::Result r = perf::MeasureLoop([&pkg] { pkg.Tick(Seconds{0.001}); }, min_time);
    out.package_tick.push_back(
        {spec.num_cores, r.ns_per_iter, r.ns_per_iter / spec.num_cores});

    // The steady-state tick must not allocate (checked on the 8-core
    // package; the loop above doubles as warmup for caches and memos).
    if (spec.num_cores == 8) {
      const long before = g_alloc_count.load(std::memory_order_relaxed);
      for (int t = 0; t < 1000; t++) {
        pkg.Tick(Seconds{0.001});
      }
      out.steady_allocs_per_tick =
          (g_alloc_count.load(std::memory_order_relaxed) - before + 999) / 1000;
    }
  }

  // Tick-engine comparison at 128 cores: the forced-scalar every-tick
  // reference, the dispatched SIMD kernels, and SIMD + multi-rate ticking.
  {
    const PlatformSpec spec = ManyCoreEpyc128();
    const auto measure = [&](const char* kernel, TickPolicy policy,
                             TickEngineRow* row) {
      if (!simd::ForceKernelsForTest(kernel)) {
        return false;  // Requested kernel table unavailable on this host.
      }
      Package pkg(spec);
      pkg.SetTickPolicy(policy);
      std::vector<std::unique_ptr<Process>> procs;
      for (int i = 0; i < spec.num_cores; i++) {
        procs.push_back(
            std::make_unique<Process>(GetProfile("gcc"), 1 + static_cast<uint64_t>(i)));
        pkg.AttachWork(i, procs.back().get());
      }
      const perf::Result r =
          perf::MeasureLoop([&pkg] { pkg.Tick(Seconds{0.001}); }, min_time);
      row->kernel = pkg.tick_kernel_name();
      row->ns_per_iter = r.ns_per_iter;
      row->ns_per_core = r.ns_per_iter / spec.num_cores;
      simd::ForceKernelsForTest(nullptr);
      return true;
    };
    TickEngineRow scalar{.name = "package_tick_128core_scalar"};
    TickEngineRow simd_row{.name = "package_tick_128core_simd"};
    TickEngineRow multirate{.name = "package_tick_128core_multirate"};
    measure("scalar", TickPolicy::kEveryTick, &scalar);
    measure("auto", TickPolicy::kEveryTick, &simd_row);
    measure("auto", TickPolicy::kMultiRate, &multirate);
    scalar.speedup_vs_scalar = 1.0;
    simd_row.speedup_vs_scalar =
        simd_row.ns_per_iter > 0.0 ? scalar.ns_per_iter / simd_row.ns_per_iter : 0.0;
    multirate.speedup_vs_scalar =
        multirate.ns_per_iter > 0.0 ? scalar.ns_per_iter / multirate.ns_per_iter : 0.0;
    out.tick_engine = {scalar, simd_row, multirate};
  }

  // BM_RackTick: one arbiter period of a 4-socket Skylake rack, every-tick
  // and multi-rate.
  const auto measure_rack = [&](const TickOptions& tick, RackTiming* timing) {
    RackConfig cfg;
    for (int s = 0; s < 4; s++) {
      RackSocketConfig socket{.platform = SkylakeXeon4114()};
      socket.apps = ManyCoreSpreadMix(socket.platform.num_cores, s).apps;
      socket.policy = PolicyKind::kFrequencyShares;
      socket.shares = 1.0;
      socket.seed = 42 + 100 * static_cast<uint64_t>(s);
      socket.use_baseline_ips = false;
      cfg.sockets.push_back(socket);
    }
    cfg.budget_w = Watts{200.0};
    cfg.tick = tick;
    Rack rack(cfg);
    rack.Step();  // Warmup period.
    const int steps = quick ? 3 : 10;
    const Seconds start = perf::NowS();
    for (int s = 0; s < steps; s++) {
      rack.Step();
    }
    const double wall = (perf::NowS() - start).value();
    timing->sockets = 4;
    timing->wall_s_per_step = wall / steps;
    const double core_ticks_per_step =
        4.0 * 10.0 * (cfg.control_period_s / cfg.tick_s);
    timing->sim_core_ticks_per_s =
        wall > 0.0 ? steps * core_ticks_per_step / wall : 0.0;
  };
  measure_rack(TickOptions{}, &out.rack_tick);
  measure_rack(TickOptions{.policy = TickPolicy::kMultiRate},
               &out.rack_tick_multirate);

  return out;
}

// --- Cluster section ---------------------------------------------------------

// One BudgetTree control period at datacenter scale.
struct ClusterTiming {
  int rows = 0;
  int racks_per_row = 0;
  int sockets_per_rack = 0;
  int cores = 0;   // Total simulated cores across all leaves.
  int levels = 0;  // Tree depth (dc -> row -> rack -> socket = 4).
  int nodes = 0;
  std::string tick_policy;
  double wall_s_per_step = 0.0;
  double sim_core_ticks_per_s = 0.0;
  // Control-plane cost: the aggregate+ladder+arbitrate pass per period.
  double arbiter_us_per_period = 0.0;
  double arbiter_overhead_pct = 0.0;
  // Worst (sum of child grants) - (parent grant) over the run; must be ~0.
  Watts max_grant_overrun_w{0.0};
};

ClusterTiming RunCluster(bool quick, int jobs) {
  ClusterTiming out;
  out.rows = 2;
  out.racks_per_row = quick ? 4 : 8;
  out.sockets_per_rack = 4;

  RackSocketConfig proto{.platform = ManyCoreXeon64()};
  proto.apps = ManyCoreSpreadMix(proto.platform.num_cores, /*rotate=*/0).apps;
  proto.policy = PolicyKind::kFrequencyShares;
  proto.seed = 42;
  proto.use_baseline_ips = false;

  const int leaves = out.rows * out.racks_per_row * out.sockets_per_rack;
  // Budget at 60% of the way between the cluster floor and ceiling: tight
  // enough that the arbiter genuinely revokes, loose enough to stay above
  // the floors.
  const Watts socket_floor = SocketFloorW(proto);
  const Watts socket_ceiling = SocketCeilingW(proto);
  const Watts budget_w{(socket_floor + (socket_ceiling - socket_floor) * 0.6) *
                       static_cast<double>(leaves)};

  BudgetTreeConfig cfg =
      MakeUniformCluster(out.rows, out.racks_per_row, out.sockets_per_rack, proto, budget_w);
  cfg.arbiter = RackArbiterKind::kDemand;
  // Every-tick simulation of thousands of cores is wasteful; the multi-rate
  // engine is how the roadmap reaches cluster scale.
  cfg.tick.policy = TickPolicy::kMultiRate;

  BudgetTree tree(cfg);
  out.cores = leaves * proto.platform.num_cores;
  out.levels = tree.num_levels();
  out.nodes = tree.num_nodes();
  out.tick_policy = "multirate";

  ThreadPool pool(jobs);
  tree.Step(&pool);  // Warmup period (caches, memo tables, daemon spin-up).
  out.max_grant_overrun_w = tree.max_grant_overrun_w();

  const int steps = quick ? 2 : 5;
  Seconds arbiter_wall_s{0.0};
  const Seconds start = perf::NowS();
  for (int s = 0; s < steps; s++) {
    tree.Step(&pool);
    arbiter_wall_s += tree.last_arbitrate_wall_s();
    out.max_grant_overrun_w =
        std::max(out.max_grant_overrun_w, tree.max_grant_overrun_w());
  }
  const double wall = (perf::NowS() - start).value();
  out.wall_s_per_step = wall / steps;
  const double core_ticks_per_step =
      static_cast<double>(out.cores) * (cfg.control_period_s / cfg.tick_s);
  out.sim_core_ticks_per_s = wall > 0.0 ? steps * core_ticks_per_step / wall : 0.0;
  out.arbiter_us_per_period = arbiter_wall_s.value() / steps * 1e6;
  out.arbiter_overhead_pct =
      out.wall_s_per_step > 0.0 ? arbiter_wall_s.value() / steps / out.wall_s_per_step * 100.0
                                : 0.0;
  return out;
}

// --- 100k-core cluster section -----------------------------------------------

// The tentpole scale point: a >= 128k-core homogeneous fleet stepped through
// full control periods with every fast path engaged at once — multi-rate
// ticking, socket-level steady-state hold, replica memoization, and the
// hoisted-scratch control plane — so one leaf simulation (the class
// representative) serves the whole cluster and the steady-state step
// touches no heap at all.
struct Cluster100kTiming {
  int rows = 0;
  int racks_per_row = 0;
  int sockets_per_rack = 0;
  int cores = 0;
  int nodes = 0;
  int replica_classes = 0;
  int live_leaves = 0;
  double replica_hit_rate = 0.0;
  int measured_steps = 0;
  double wall_s_per_step = 0.0;
  double sim_core_ticks_per_s = 0.0;
  long allocs_per_step = 0;
  double peak_rss_mb = 0.0;
  Watts max_grant_overrun_w{0.0};
};

Cluster100kTiming RunCluster100k(bool quick) {
  Cluster100kTiming out;
  out.rows = 4;
  out.racks_per_row = 16;
  out.sockets_per_rack = 16;  // 1024 sockets x 128 cores = 131072 cores.

  RackSocketConfig proto{.platform = ManyCoreEpyc128()};
  proto.apps = ManyCoreSpreadMix(proto.platform.num_cores, /*rotate=*/0).apps;
  proto.policy = PolicyKind::kFrequencyShares;
  proto.seed = 42;
  proto.use_baseline_ips = false;

  const int leaves = out.rows * out.racks_per_row * out.sockets_per_rack;
  const Watts socket_floor = SocketFloorW(proto);
  const Watts socket_ceiling = SocketCeilingW(proto);
  const Watts budget_w{(socket_floor + (socket_ceiling - socket_floor) * 0.6) *
                       static_cast<double>(leaves)};

  // Identical seeds + the shares arbiter: grants are measurement-
  // independent and bitwise-stable, so the whole fleet collapses into one
  // replica class and every socket daemon reaches steady-state hold.
  BudgetTreeConfig cfg = MakeUniformCluster(out.rows, out.racks_per_row, out.sockets_per_rack,
                                            proto, budget_w, /*decorrelate_seeds=*/false);
  cfg.arbiter = RackArbiterKind::kShares;
  cfg.tick.policy = TickPolicy::kMultiRate;
  cfg.tick.socket_hold = true;
  cfg.tick.memoize_replicas = true;
  cfg.record_history = false;

  BudgetTree tree(cfg);
  out.cores = leaves * proto.platform.num_cores;
  out.nodes = tree.num_nodes();
  out.replica_classes = tree.num_replica_classes();

  // Warmup: the daemon takes ~6 periods to converge its P-state targets
  // (epoch movements stop), then the hold predicate needs
  // kQuietPeriodsToHold consecutive quiet periods before skipping steps.
  const int warmup = 12;
  for (int s = 0; s < warmup; s++) {
    tree.Step();
  }
  out.max_grant_overrun_w = tree.max_grant_overrun_w();

  const int steps = quick ? 4 : 16;
  out.measured_steps = steps;
  const long allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const Seconds start = perf::NowS();
  for (int s = 0; s < steps; s++) {
    tree.Step();
    out.max_grant_overrun_w = std::max(out.max_grant_overrun_w, tree.max_grant_overrun_w());
  }
  const double wall = (perf::NowS() - start).value();
  const long allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  out.allocs_per_step = (allocs + steps - 1) / steps;
  out.live_leaves = tree.num_live_leaves();
  out.replica_hit_rate = tree.replica_hit_rate();
  out.wall_s_per_step = wall / steps;
  const double core_ticks_per_step =
      static_cast<double>(out.cores) * (cfg.control_period_s / cfg.tick_s);
  out.sim_core_ticks_per_s = wall > 0.0 ? steps * core_ticks_per_step / wall : 0.0;

  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    out.peak_rss_mb = static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB.
  }
  return out;
}

// --- Serving-fleet section ---------------------------------------------------

// The flagship serving demonstration (ROADMAP item 2): 256 open-loop
// websearch sockets under one BudgetTree, 1e8 simulated users (2e9
// requests/day) with a hot-shard skew, compared across the fleet policy
// axis at the same cluster cap.  The policy axis is expanded through the
// declarative SweepSpec API — this section is also the sweep machinery's
// integration bench.
struct FleetBenchRow {
  std::string policy;
  size_t slo_violations = 0;
  size_t measured_periods = 0;  // Socket-periods with enough samples.
  size_t completed = 0;
  Watts avg_pkg_w{0.0};
  Seconds fleet_p90{0.0};
  Seconds hot_p90{0.0};  // Worst per-socket cumulative p90 among hot shards.
  Watts max_grant_overrun_w{0.0};
  double wall_s_per_step = 0.0;
  double sockets_stepped_per_s = 0.0;
};

struct FleetBenchResult {
  int sockets = 0;
  double simulated_users = 0.0;
  double requests_per_day = 0.0;
  Seconds slo_p90{0.0};
  std::vector<FleetBenchRow> rows;
};

FleetBenchResult RunFleetBench(bool quick, int jobs) {
  FleetBenchResult out;

  FleetConfig base;  // 4 x 8 x 8 = 256 sockets; defaults are the calibrated
                     // hot-shard regime (see FleetConfig).
  base.seed = 42;

  SweepSpec spec;
  spec.name = "fleet-bench";
  spec.target = SweepTarget::kFleet;
  spec.fleet_base = base;
  spec.axes.fleet_policies = {FleetPolicyStatic(), FleetPolicyPriority(),
                              FleetPolicySloFeedback()};
  spec.fleet_warmup_s = Seconds{quick ? 6.0 : 10.0};
  spec.fleet_measure_s = Seconds{quick ? 14.0 : 40.0};

  out.sockets = FleetSockets(base);
  out.simulated_users = base.users;
  out.requests_per_day = base.users * base.requests_per_user_per_day;
  out.slo_p90 = base.slo.slo_p90;

  const int total_periods =
      static_cast<int>((spec.fleet_warmup_s + spec.fleet_measure_s) / base.control_period_s);
  ThreadPool pool(jobs);
  for (const SweepPoint& p : ExpandSweep(spec)) {
    const Seconds start = perf::NowS();
    const FleetResult r =
        RunFleet(p.fleet, spec.fleet_warmup_s, spec.fleet_measure_s, &pool);
    const double wall = (perf::NowS() - start).value();

    FleetBenchRow row;
    row.policy = p.plotkey;
    row.slo_violations = r.total_slo_violations;
    row.measured_periods = r.total_measured_periods;
    row.completed = r.summary.completed_requests;
    row.avg_pkg_w = r.summary.avg_pkg_w;
    row.fleet_p90 = r.summary.p90_latency;
    for (const FleetSocketResult& s : r.sockets) {
      if (s.hot) {
        row.hot_p90 = std::max(row.hot_p90, s.p90);
      }
    }
    row.max_grant_overrun_w = r.max_grant_overrun_w;
    row.wall_s_per_step = total_periods > 0 ? wall / total_periods : 0.0;
    row.sockets_stepped_per_s =
        wall > 0.0 ? static_cast<double>(out.sockets) * total_periods / wall : 0.0;
    out.rows.push_back(row);
  }
  return out;
}

struct FaultRow {
  std::string schedule;
  bool hardened = false;
  Watts avg_pkg_w{0.0};
  Watts max_pkg_w{0.0};
  Watts overshoot_w{0.0};
  int invalid_samples = 0;
  int fallback_periods = 0;
  int failed_programs = 0;
  int dropped_writes = 0;
};

std::vector<FaultRow> RunFaultTolerance(bool quick) {
  constexpr Watts kLimitW{55.0};
  ScenarioConfig base{.platform = SkylakeXeon4114()};
  base.apps = SkylakePriorityMixes()[2].apps;
  base.policy = PolicyKind::kFrequencyShares;
  base.limit_w = kLimitW;
  base.warmup_s = quick ? Seconds{5.0} : Seconds{20.0};
  base.measure_s = quick ? Seconds{30.0} : Seconds{90.0};
  base.seed = 42;

  std::vector<FaultScenario> schedules =
      FaultSchedules(base.warmup_s + Seconds{4.0}, base.warmup_s + base.measure_s - Seconds{4.0}, /*seed=*/1234);
  // Representative subset: the schedule the naive daemon fails hardest on,
  // the garbage-power storm, and the everything-at-once mix.
  const char* kKeep[] = {"stale-burst", "wrap-storm", "mixed-storm"};
  std::vector<ScenarioConfig> configs;
  std::vector<FaultRow> rows;
  for (const char* keep : kKeep) {
    for (const FaultScenario& s : schedules) {
      if (s.label != keep) {
        continue;
      }
      for (bool hardened : {false, true}) {
        ScenarioConfig c = base;
        c.run.daemon.faults = s.plan;
        c.run.daemon.degrade = hardened;
        // The naive baseline violates the power ceiling by design; only the
        // hardened runs keep the fatal auditor on.
        c.run.daemon.audit = hardened;
        configs.push_back(c);
        rows.push_back(FaultRow{.schedule = s.label, .hardened = hardened});
      }
    }
  }
  const std::vector<ScenarioResult> results = RunScenarios(configs);
  for (size_t i = 0; i < rows.size(); i++) {
    const ScenarioResult& r = results[i];
    rows[i].avg_pkg_w = r.avg_pkg_w;
    rows[i].max_pkg_w = r.max_pkg_w;
    rows[i].overshoot_w = std::max(Watts{0.0}, r.max_pkg_w - kLimitW);
    rows[i].invalid_samples = r.fault_stats.invalid_samples;
    rows[i].fallback_periods = r.fault_stats.fallback_periods;
    rows[i].failed_programs = r.fault_stats.failed_programs;
    rows[i].dropped_writes = r.fault_counts.dropped_writes;
  }
  return rows;
}

// --- Observability section ---------------------------------------------------

struct ObsResult {
  // Full daemon step (tick + Step) with no sink vs a bound TraceRecorder.
  double step_off_ns = 0.0;
  double step_on_ns = 0.0;
  double overhead_pct = 0.0;
  // Events recorded by the bound recorder (> 0) and by an unbound recorder
  // alive during the tracing-off run (must stay 0 — the disabled-tracer
  // guarantee the obs tests also assert).
  uint64_t trace_events = 0;
  uint64_t trace_disabled_events = 0;
  // Scalar metrics (counters + gauges) from a traced scenario run.
  std::vector<std::pair<std::string, double>> metrics;
};

ObsResult RunObs(bool quick) {
  const Seconds min_time{quick ? 0.05 : 0.3};
  ObsResult out;

  auto step_ns = [&](ObsSink* sink, int16_t shard) {
    Package pkg(SkylakeXeon4114());
    MsrFile msr(&pkg);
    std::vector<std::unique_ptr<Process>> procs;
    std::vector<ManagedApp> apps;
    for (int i = 0; i < 10; i++) {
      procs.push_back(std::make_unique<Process>(GetProfile("gcc"), 1 + static_cast<uint64_t>(i)));
      pkg.AttachWork(i, procs.back().get());
      apps.push_back(ManagedApp{.name = "gcc",
                                .cpu = i,
                                .shares = 10.0 + 9.0 * i,
                                .high_priority = i % 2 == 0,
                                .baseline_ips = Ips{2e9}});
    }
    DaemonConfig dcfg{.kind = PolicyKind::kFrequencyShares, .power_limit_w = Watts{45.0}};
    dcfg.obs = DaemonObs{.sink = sink, .shard = shard};
    PowerDaemon daemon(&msr, apps, dcfg);
    daemon.Start();
    const perf::Result r = perf::MeasureLoop(
        [&pkg, &daemon] {
          pkg.Tick(Seconds{0.001});
          daemon.Step();
        },
        min_time);
    return r.ns_per_iter;
  };

  // An unbound recorder stays alive through the tracing-off run; any event
  // leaking into it would break the branch-on-null contract.
  obs::TraceRecorder disabled_recorder;
  out.step_off_ns = step_ns(nullptr, 0);
  out.trace_disabled_events = disabled_recorder.recorded();

  obs::TraceRecorder recorder;
  out.step_on_ns = step_ns(&recorder, 0);
  out.trace_events = recorder.recorded();
  out.overhead_pct =
      out.step_off_ns > 0.0 ? 100.0 * (out.step_on_ns - out.step_off_ns) / out.step_off_ns : 0.0;

  // Scalar metrics from a short traced scenario, so CI archives the metric
  // names the registry exports alongside the timings.
  ScenarioConfig c = RepresentativeConfig(PolicyKind::kFrequencyShares, /*quick=*/true);
  c.run.obs.trace = true;
  const ScenarioResult r = RunScenario(c);
  for (const obs::MetricValue& m : r.metrics) {
    if (m.kind != obs::MetricValue::Kind::kHistogram) {
      out.metrics.emplace_back(m.name, m.value);
    }
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

int WriteJson(const Options& opt, int jobs, const std::vector<MicroResult>& micro,
              const ScalingResult& scaling, const std::vector<ScenarioTiming>& scenarios,
              size_t batch_count, Seconds serial_s, Seconds parallel_s,
              const ClusterTiming& cluster, const Cluster100kTiming& cluster_100k,
              const FleetBenchResult& fleet, const std::vector<FaultRow>& faults,
              const ObsResult& obs) {
  FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", opt.out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"host\": {\n");
  std::fprintf(f, "    \"hardware_concurrency\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(f, "    \"jobs\": %d,\n", jobs);
  std::fprintf(f, "    \"quick\": %s\n", opt.quick ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"micro\": [\n");
  for (size_t i = 0; i < micro.size(); i++) {
    std::fprintf(f, "    {\"name\": \"%s\", \"ns_per_iter\": %.1f}%s\n",
                 JsonEscape(micro[i].name).c_str(), micro[i].ns_per_iter,
                 i + 1 < micro.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"scaling\": {\n");
  std::fprintf(f, "    \"package_tick\": [\n");
  for (size_t i = 0; i < scaling.package_tick.size(); i++) {
    const ScalingRow& r = scaling.package_tick[i];
    std::fprintf(f,
                 "      {\"cores\": %d, \"ns_per_iter\": %.1f, \"ns_per_core\": %.2f}%s\n",
                 r.cores, r.ns_per_iter, r.ns_per_core,
                 i + 1 < scaling.package_tick.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f, "    \"tick_engine\": [\n");
  for (size_t i = 0; i < scaling.tick_engine.size(); i++) {
    const TickEngineRow& r = scaling.tick_engine[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"kernel\": \"%s\", \"ns_per_iter\": %.1f, "
                 "\"ns_per_core\": %.2f, \"speedup_vs_scalar\": %.2f}%s\n",
                 JsonEscape(r.name).c_str(), JsonEscape(r.kernel).c_str(),
                 r.ns_per_iter, r.ns_per_core, r.speedup_vs_scalar,
                 i + 1 < scaling.tick_engine.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f,
               "    \"rack_tick\": {\"sockets\": %d, \"wall_s_per_step\": %.4f, "
               "\"sim_core_ticks_per_s\": %.0f},\n",
               scaling.rack_tick.sockets, scaling.rack_tick.wall_s_per_step,
               scaling.rack_tick.sim_core_ticks_per_s);
  std::fprintf(f,
               "    \"rack_tick_multirate\": {\"sockets\": %d, \"wall_s_per_step\": %.4f, "
               "\"sim_core_ticks_per_s\": %.0f},\n",
               scaling.rack_tick_multirate.sockets,
               scaling.rack_tick_multirate.wall_s_per_step,
               scaling.rack_tick_multirate.sim_core_ticks_per_s);
  std::fprintf(f, "    \"steady_allocs_per_tick\": %ld\n", scaling.steady_allocs_per_tick);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"scenarios\": [\n");
  for (size_t i = 0; i < scenarios.size(); i++) {
    const ScenarioTiming& s = scenarios[i];
    const double rate = s.wall_s > Seconds{0.0} ? s.sim_s / s.wall_s : 0.0;
    std::fprintf(f,
                 "    {\"policy\": \"%s\", \"wall_s\": %.4f, \"sim_s\": %.1f, "
                 "\"sim_s_per_wall_s\": %.1f}%s\n",
                 JsonEscape(s.policy).c_str(), s.wall_s, s.sim_s, rate,
                 i + 1 < scenarios.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"batch\": {\n");
  std::fprintf(f, "    \"count\": %zu,\n", batch_count);
  std::fprintf(f, "    \"serial_wall_s\": %.4f,\n", serial_s);
  std::fprintf(f, "    \"parallel_wall_s\": %.4f,\n", parallel_s);
  std::fprintf(f, "    \"speedup\": %.2f\n", parallel_s > Seconds{0.0} ? serial_s / parallel_s : 0.0);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"cluster\": {\n");
  std::fprintf(f, "    \"rows\": %d,\n", cluster.rows);
  std::fprintf(f, "    \"racks_per_row\": %d,\n", cluster.racks_per_row);
  std::fprintf(f, "    \"sockets_per_rack\": %d,\n", cluster.sockets_per_rack);
  std::fprintf(f, "    \"cores\": %d,\n", cluster.cores);
  std::fprintf(f, "    \"levels\": %d,\n", cluster.levels);
  std::fprintf(f, "    \"nodes\": %d,\n", cluster.nodes);
  std::fprintf(f, "    \"tick_policy\": \"%s\",\n", JsonEscape(cluster.tick_policy).c_str());
  std::fprintf(f, "    \"wall_s_per_step\": %.4f,\n", cluster.wall_s_per_step);
  std::fprintf(f, "    \"sim_core_ticks_per_s\": %.0f,\n", cluster.sim_core_ticks_per_s);
  std::fprintf(f, "    \"arbiter_us_per_period\": %.1f,\n", cluster.arbiter_us_per_period);
  std::fprintf(f, "    \"arbiter_overhead_pct\": %.4f,\n", cluster.arbiter_overhead_pct);
  std::fprintf(f, "    \"max_grant_overrun_w\": %.9f\n", cluster.max_grant_overrun_w.value());
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"cluster_100k\": {\n");
  std::fprintf(f, "    \"rows\": %d,\n", cluster_100k.rows);
  std::fprintf(f, "    \"racks_per_row\": %d,\n", cluster_100k.racks_per_row);
  std::fprintf(f, "    \"sockets_per_rack\": %d,\n", cluster_100k.sockets_per_rack);
  std::fprintf(f, "    \"cores\": %d,\n", cluster_100k.cores);
  std::fprintf(f, "    \"nodes\": %d,\n", cluster_100k.nodes);
  std::fprintf(f, "    \"replica_classes\": %d,\n", cluster_100k.replica_classes);
  std::fprintf(f, "    \"live_leaves\": %d,\n", cluster_100k.live_leaves);
  std::fprintf(f, "    \"replica_hit_rate\": %.6f,\n", cluster_100k.replica_hit_rate);
  std::fprintf(f, "    \"measured_steps\": %d,\n", cluster_100k.measured_steps);
  std::fprintf(f, "    \"wall_s_per_step\": %.6f,\n", cluster_100k.wall_s_per_step);
  std::fprintf(f, "    \"sim_core_ticks_per_s\": %.0f,\n", cluster_100k.sim_core_ticks_per_s);
  std::fprintf(f, "    \"allocs_per_step\": %ld,\n", cluster_100k.allocs_per_step);
  std::fprintf(f, "    \"peak_rss_mb\": %.1f,\n", cluster_100k.peak_rss_mb);
  std::fprintf(f, "    \"max_grant_overrun_w\": %.9f\n",
               cluster_100k.max_grant_overrun_w.value());
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fleet\": {\n");
  std::fprintf(f, "    \"sockets\": %d,\n", fleet.sockets);
  std::fprintf(f, "    \"simulated_users\": %g,\n", fleet.simulated_users);
  std::fprintf(f, "    \"requests_per_day\": %g,\n", fleet.requests_per_day);
  std::fprintf(f, "    \"slo_p90_s\": %.6f,\n", fleet.slo_p90.value());
  std::fprintf(f, "    \"rows\": [\n");
  for (size_t i = 0; i < fleet.rows.size(); i++) {
    const FleetBenchRow& r = fleet.rows[i];
    std::fprintf(f,
                 "      {\"policy\": \"%s\", \"slo_violations\": %zu, "
                 "\"measured_periods\": %zu, \"completed\": %zu, \"avg_pkg_w\": %.2f, "
                 "\"fleet_p90_s\": %.6f, \"hot_p90_s\": %.6f, "
                 "\"max_grant_overrun_w\": %.9f, \"wall_s_per_step\": %.4f, "
                 "\"sockets_stepped_per_s\": %.0f}%s\n",
                 JsonEscape(r.policy).c_str(), r.slo_violations, r.measured_periods,
                 r.completed, r.avg_pkg_w.value(), r.fleet_p90.value(), r.hot_p90.value(),
                 r.max_grant_overrun_w.value(), r.wall_s_per_step,
                 r.sockets_stepped_per_s, i + 1 < fleet.rows.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fault_tolerance\": [\n");
  for (size_t i = 0; i < faults.size(); i++) {
    const FaultRow& r = faults[i];
    std::fprintf(f,
                 "    {\"schedule\": \"%s\", \"mode\": \"%s\", \"avg_pkg_w\": %.2f, "
                 "\"max_pkg_w\": %.2f, \"overshoot_w\": %.2f, \"invalid_samples\": %d, "
                 "\"fallback_periods\": %d, \"failed_programs\": %d, \"dropped_writes\": %d}%s\n",
                 JsonEscape(r.schedule).c_str(), r.hardened ? "hardened" : "naive", r.avg_pkg_w,
                 r.max_pkg_w, r.overshoot_w, r.invalid_samples, r.fallback_periods,
                 r.failed_programs, r.dropped_writes, i + 1 < faults.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"obs\": {\n");
  std::fprintf(f, "    \"daemon_step_off_ns\": %.1f,\n", obs.step_off_ns);
  std::fprintf(f, "    \"daemon_step_on_ns\": %.1f,\n", obs.step_on_ns);
  std::fprintf(f, "    \"overhead_pct\": %.2f,\n", obs.overhead_pct);
  std::fprintf(f, "    \"trace_events\": %llu,\n",
               static_cast<unsigned long long>(obs.trace_events));
  std::fprintf(f, "    \"trace_disabled_events\": %llu,\n",
               static_cast<unsigned long long>(obs.trace_disabled_events));
  std::fprintf(f, "    \"metrics\": {\n");
  for (size_t i = 0; i < obs.metrics.size(); i++) {
    std::fprintf(f, "      \"%s\": %g%s\n", JsonEscape(obs.metrics[i].first).c_str(),
                 obs.metrics[i].second, i + 1 < obs.metrics.size() ? "," : "");
  }
  std::fprintf(f, "    }\n");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  return 0;
}

int Main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      opt.quick = true;
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      opt.jobs = static_cast<int>(std::strtol(arg + 7, nullptr, 10));
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      opt.out = arg + 6;
    } else {
      std::fprintf(stderr, "usage: perf_harness [--quick] [--jobs=N] [--out=PATH]\n");
      return 2;
    }
  }
  const int jobs = opt.jobs > 0 ? opt.jobs : ThreadPool::DefaultJobs();

  std::printf("perf_harness: micro timings\n");
  const std::vector<MicroResult> micro = RunMicro(opt.quick);
  for (const MicroResult& m : micro) {
    std::printf("  %-28s %10.1f ns\n", m.name.c_str(), m.ns_per_iter);
  }

  std::printf("perf_harness: scaling (SoA tick engine)\n");
  const ScalingResult scaling = RunScaling(opt.quick);
  for (const ScalingRow& r : scaling.package_tick) {
    std::printf("  package_tick %3d cores  %10.1f ns  (%6.2f ns/core)\n", r.cores, r.ns_per_iter,
                r.ns_per_core);
  }
  for (const TickEngineRow& r : scaling.tick_engine) {
    std::printf("  %-32s %10.1f ns  (kernel=%s, %.2fx vs scalar)\n",
                r.name.c_str(), r.ns_per_iter, r.kernel.c_str(),
                r.speedup_vs_scalar);
  }
  std::printf("  rack_tick %d sockets    %8.4f s/step  (%.0f core-ticks/s)\n",
              scaling.rack_tick.sockets, scaling.rack_tick.wall_s_per_step,
              scaling.rack_tick.sim_core_ticks_per_s);
  std::printf("  rack_tick_multirate %d sockets %8.4f s/step  (%.0f core-ticks/s)\n",
              scaling.rack_tick_multirate.sockets,
              scaling.rack_tick_multirate.wall_s_per_step,
              scaling.rack_tick_multirate.sim_core_ticks_per_s);
  std::printf("  steady_allocs_per_tick %ld\n", scaling.steady_allocs_per_tick);
  if (scaling.steady_allocs_per_tick != 0) {
    std::fprintf(stderr,
                 "perf_harness: FAIL — steady-state Package::Tick performed %ld allocations "
                 "per tick (expected 0)\n",
                 scaling.steady_allocs_per_tick);
    return 1;
  }

  const PolicyKind kPolicies[] = {PolicyKind::kRaplOnly, PolicyKind::kPriority,
                                  PolicyKind::kFrequencyShares, PolicyKind::kPerformanceShares,
                                  PolicyKind::kPowerShares};

  // Warm the Standalone() baseline cache so per-policy wall times measure the
  // scenario itself, not the shared one-time baselines.
  (void)RunScenario(RepresentativeConfig(PolicyKind::kStatic, /*quick=*/true));

  std::printf("perf_harness: per-policy scenarios\n");
  std::vector<ScenarioTiming> scenarios;
  std::vector<ScenarioConfig> batch_configs;
  for (PolicyKind policy : kPolicies) {
    const ScenarioConfig config = RepresentativeConfig(policy, opt.quick);
    const Seconds start = perf::NowS();
    const ScenarioResult result = RunScenario(config);
    const Seconds wall = perf::NowS() - start;
    perf::DoNotOptimize(result);
    scenarios.push_back(
        {PolicyKindName(policy), wall, config.warmup_s + config.measure_s});
    std::printf("  %-20s %8.3f s wall for %5.1f sim-s\n", PolicyKindName(policy), wall.value(),
                (config.warmup_s + config.measure_s).value());
    batch_configs.push_back(config);
    batch_configs.push_back(config);  // Two per policy so the batch has depth.
  }

  std::printf("perf_harness: batch of %zu scenarios, jobs=%d\n", batch_configs.size(), jobs);
  Seconds serial_s{0.0};
  {
    const Seconds start = perf::NowS();
    for (const ScenarioConfig& config : batch_configs) {
      perf::DoNotOptimize(RunScenario(config));
    }
    serial_s = perf::NowS() - start;
  }
  Seconds parallel_s{0.0};
  {
    ThreadPool pool(jobs);
    const Seconds start = perf::NowS();
    perf::DoNotOptimize(RunScenarios(batch_configs, &pool));
    parallel_s = perf::NowS() - start;
  }
  std::printf("  serial %.3f s, parallel %.3f s, speedup %.2fx\n", serial_s.value(),
              parallel_s.value(), parallel_s > Seconds{0.0} ? serial_s / parallel_s : 0.0);

  std::printf("perf_harness: cluster budget tree\n");
  const ClusterTiming cluster = RunCluster(opt.quick, jobs);
  std::printf(
      "  %dx%dx%d topology, %d cores, %d nodes  %8.4f s/step  (%.0f core-ticks/s)\n",
      cluster.rows, cluster.racks_per_row, cluster.sockets_per_rack, cluster.cores,
      cluster.nodes, cluster.wall_s_per_step, cluster.sim_core_ticks_per_s);
  std::printf("  arbiter %8.1f us/period (%.4f%% of step), max_grant_overrun %.9f W\n",
              cluster.arbiter_us_per_period, cluster.arbiter_overhead_pct,
              cluster.max_grant_overrun_w.value());
  if (cluster.max_grant_overrun_w > Watts{1e-6}) {
    std::fprintf(stderr,
                 "perf_harness: FAIL — cluster grant sums exceeded a parent grant by %.9f W "
                 "(cap invariant violated)\n",
                 cluster.max_grant_overrun_w.value());
    return 1;
  }

  std::printf("perf_harness: 100k-core cluster (hold + memoization + sharding)\n");
  const Cluster100kTiming cluster_100k = RunCluster100k(opt.quick);
  std::printf(
      "  %dx%dx%d topology, %d cores, %d replica classes, %d live leaves\n",
      cluster_100k.rows, cluster_100k.racks_per_row, cluster_100k.sockets_per_rack,
      cluster_100k.cores, cluster_100k.replica_classes, cluster_100k.live_leaves);
  std::printf("  %8.6f s/step  %.3g core-ticks/s  hit_rate %.4f  rss %.1f MB  allocs/step %ld\n",
              cluster_100k.wall_s_per_step, cluster_100k.sim_core_ticks_per_s,
              cluster_100k.replica_hit_rate, cluster_100k.peak_rss_mb,
              cluster_100k.allocs_per_step);
  if (cluster_100k.allocs_per_step != 0) {
    std::fprintf(stderr,
                 "perf_harness: FAIL — 100k-core steady-state Step performed %ld allocations "
                 "per step (expected 0)\n",
                 cluster_100k.allocs_per_step);
    return 1;
  }
  if (cluster_100k.sim_core_ticks_per_s < 1e9) {
    std::fprintf(stderr,
                 "perf_harness: FAIL — 100k-core cluster stepped at %.3g sim-core-ticks/s "
                 "(floor 1e9)\n",
                 cluster_100k.sim_core_ticks_per_s);
    return 1;
  }
  if (cluster_100k.max_grant_overrun_w > Watts{1e-6}) {
    std::fprintf(stderr,
                 "perf_harness: FAIL — 100k-core cluster grant sums exceeded a parent grant "
                 "by %.9f W (cap invariant violated)\n",
                 cluster_100k.max_grant_overrun_w.value());
    return 1;
  }

  std::printf("perf_harness: serving fleet (open-loop websearch, SLO feedback)\n");
  const FleetBenchResult fleet = RunFleetBench(opt.quick, jobs);
  std::printf("  %d sockets, %.3g simulated users (%.3g requests/day), SLO p90 %.0f ms\n",
              fleet.sockets, fleet.simulated_users, fleet.requests_per_day,
              fleet.slo_p90.value() * 1e3);
  for (const FleetBenchRow& r : fleet.rows) {
    std::printf(
        "  %-14s violations %5zu/%5zu  fleet_p90 %7.1f ms  hot_p90 %7.1f ms  "
        "avg %7.0f W  %6.0f sockets-stepped/s\n",
        r.policy.c_str(), r.slo_violations, r.measured_periods,
        r.fleet_p90.value() * 1e3, r.hot_p90.value() * 1e3, r.avg_pkg_w.value(),
        r.sockets_stepped_per_s);
  }
  {
    const FleetBenchRow* st = nullptr;
    const FleetBenchRow* fb = nullptr;
    for (const FleetBenchRow& r : fleet.rows) {
      if (r.policy == "static") {
        st = &r;
      } else if (r.policy == "slo-feedback") {
        fb = &r;
      }
      if (r.max_grant_overrun_w > Watts{1e-6}) {
        std::fprintf(stderr,
                     "perf_harness: FAIL — fleet policy %s violated the cap invariant "
                     "by %.9f W\n",
                     r.policy.c_str(), r.max_grant_overrun_w.value());
        return 1;
      }
    }
    if (st == nullptr || fb == nullptr) {
      std::fprintf(stderr, "perf_harness: FAIL — fleet sweep missing a policy row\n");
      return 1;
    }
    if (fleet.sockets < 256 || fleet.simulated_users < 1e6) {
      std::fprintf(stderr,
                   "perf_harness: FAIL — fleet below the flagship scale "
                   "(%d sockets, %.3g users)\n",
                   fleet.sockets, fleet.simulated_users);
      return 1;
    }
    if (fb->slo_violations >= st->slo_violations) {
      std::fprintf(stderr,
                   "perf_harness: FAIL — SLO feedback recorded %zu violations vs %zu "
                   "for static shares (expected strictly fewer at the same cap)\n",
                   fb->slo_violations, st->slo_violations);
      return 1;
    }
  }

  std::printf("perf_harness: fault-tolerance schedules\n");
  const std::vector<FaultRow> faults = RunFaultTolerance(opt.quick);
  for (const FaultRow& r : faults) {
    std::printf("  %-12s %-8s max %5.1f W overshoot %4.1f W invalid %3d fallback %3d\n",
                r.schedule.c_str(), r.hardened ? "hardened" : "naive", r.max_pkg_w, r.overshoot_w,
                r.invalid_samples, r.fallback_periods);
  }

  std::printf("perf_harness: observability overhead\n");
  const ObsResult obs = RunObs(opt.quick);
  std::printf("  daemon_step tracing off %10.1f ns, on %10.1f ns  (%+.2f%%)\n", obs.step_off_ns,
              obs.step_on_ns, obs.overhead_pct);
  std::printf("  trace_events %llu, trace_disabled_events %llu\n",
              static_cast<unsigned long long>(obs.trace_events),
              static_cast<unsigned long long>(obs.trace_disabled_events));
  if (obs.trace_disabled_events != 0) {
    std::fprintf(stderr,
                 "perf_harness: FAIL — %llu events recorded with tracing disabled (expected 0)\n",
                 static_cast<unsigned long long>(obs.trace_disabled_events));
    return 1;
  }

  return WriteJson(opt, jobs, micro, scaling, scenarios, batch_configs.size(), serial_s,
                   parallel_s, cluster, cluster_100k, fleet, faults, obs);
}

}  // namespace
}  // namespace papd

int main(int argc, char** argv) { return papd::Main(argc, argv); }
