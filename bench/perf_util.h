// Minimal benchmark timing utilities shared by perf_harness and the micro
// benchmarks.  Replaces the google-benchmark dependency with the same
// discipline: steady-clock timing, one discarded warmup batch, and batch
// sizes calibrated until a run lasts at least min_time seconds.
//
// Two entry points:
//   - perf::MeasureLoop(body, min_time_s): time a callable representing one
//     iteration; returns ns/iter.
//   - PAPD_PERF_BENCH(fn) + perf::PerfMain(argc, argv): register
//     `void fn(perf::State&)` benchmarks written in the
//     `for (auto _ : state)` style and run them from main().

#ifndef BENCH_PERF_UTIL_H_
#define BENCH_PERF_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/common/units.h"

namespace papd {
namespace perf {

// Keeps `value` observable so the optimizer cannot delete the computation
// that produced it.
template <class T>
inline void DoNotOptimize(T&& value) {
  asm volatile("" : : "g"(value) : "memory");
}

inline Seconds NowS() {
  return Seconds{
      std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
          .count()};
}

struct Result {
  double ns_per_iter = 0.0;
  uint64_t iters = 0;
  Seconds elapsed_s{0.0};
};

// Times `body` (one iteration per call).  Runs one small warmup batch, then
// grows the batch size until a timed batch lasts at least min_time_s.
template <class F>
Result MeasureLoop(F&& body, Seconds min_time_s = Seconds{0.2}) {
  // Warmup: touch caches, fault in pages, settle branch predictors.
  for (int i = 0; i < 3; i++) {
    body();
  }
  uint64_t iters = 16;
  for (;;) {
    const Seconds start = NowS();
    for (uint64_t i = 0; i < iters; i++) {
      body();
    }
    const Seconds elapsed = NowS() - start;
    if (elapsed >= min_time_s) {
      return Result{elapsed.value() * 1e9 / static_cast<double>(iters), iters, elapsed};
    }
    // Grow towards the target with headroom; cap the growth factor so one
    // noisy fast batch cannot overshoot by orders of magnitude.
    double factor = elapsed > Seconds{0.0} ? 1.4 * (min_time_s / elapsed) : 10.0;
    if (factor > 10.0) {
      factor = 10.0;
    }
    iters = static_cast<uint64_t>(static_cast<double>(iters) * factor) + 1;
  }
}

// Iteration state for registered benchmarks, google-benchmark style:
//
//   void BM_Foo(perf::State& state) {
//     ... setup ...
//     for (auto _ : state) { ... one iteration ... }
//   }
//   PAPD_PERF_BENCH(BM_Foo);
//
// Timing covers exactly the range-for loop; setup before it is free.
class State {
 public:
  explicit State(uint64_t iters) : iters_(iters), remaining_(iters) {}

  // Non-trivial lifecycle so `for (auto _ : state)` trips neither
  // -Wunused-variable nor -Wunused-but-set-variable.
  struct Tick {
    Tick() {}
    ~Tick() {}
  };

  class iterator {
   public:
    explicit iterator(State* s) : s_(s) {}
    bool operator!=(const iterator&) {
      if (s_->remaining_ > 0) {
        return true;
      }
      s_->stop_s_ = NowS();
      return false;
    }
    void operator++() { s_->remaining_--; }
    Tick operator*() const { return Tick(); }

   private:
    State* s_;
  };

  iterator begin() {
    remaining_ = iters_;
    start_s_ = NowS();
    return iterator(this);
  }
  iterator end() { return iterator(this); }

  uint64_t iterations() const { return iters_; }
  Seconds elapsed_s() const { return stop_s_ - start_s_; }

 private:
  uint64_t iters_;
  uint64_t remaining_;
  Seconds start_s_{0.0};
  Seconds stop_s_{0.0};
};

using BenchFn = void (*)(State&);

struct Registration {
  const char* name;
  BenchFn fn;
};

inline std::vector<Registration>& Registry() {
  static std::vector<Registration> registry;
  return registry;
}

struct Registrar {
  Registrar(const char* name, BenchFn fn) { Registry().push_back({name, fn}); }
};

#define PAPD_PERF_BENCH(fn) \
  static const ::papd::perf::Registrar papd_perf_reg_##fn(#fn, fn)

// Runs one registered benchmark with warmup + calibration (same discipline
// as MeasureLoop, batching whole State runs).
inline Result RunBench(BenchFn fn, Seconds min_time_s = Seconds{0.2}) {
  {
    State warmup(8);
    fn(warmup);
  }
  uint64_t iters = 16;
  for (;;) {
    State state(iters);
    fn(state);
    const Seconds elapsed = state.elapsed_s();
    if (elapsed >= min_time_s) {
      return Result{elapsed.value() * 1e9 / static_cast<double>(iters), iters, elapsed};
    }
    double factor = elapsed > Seconds{0.0} ? 1.4 * (min_time_s / elapsed) : 10.0;
    if (factor > 10.0) {
      factor = 10.0;
    }
    iters = static_cast<uint64_t>(static_cast<double>(iters) * factor) + 1;
  }
}

// Driver for binaries consisting of registered benchmarks.
// Flags: --filter=<substring>  --min_time=<seconds>
inline int PerfMain(int argc, char** argv) {
  std::string filter;
  Seconds min_time_s{0.2};
  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--filter=", 9) == 0) {
      filter = arg + 9;
    } else if (std::strncmp(arg, "--min_time=", 11) == 0) {
      min_time_s = Seconds{std::strtod(arg + 11, nullptr)};
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    }
  }
  std::printf("%-36s %14s %12s\n", "Benchmark", "Time (ns)", "Iterations");
  std::printf("%s\n", std::string(64, '-').c_str());
  for (const Registration& reg : Registry()) {
    if (!filter.empty() && std::string(reg.name).find(filter) == std::string::npos) {
      continue;
    }
    const Result r = RunBench(reg.fn, min_time_s);
    std::printf("%-36s %14.1f %12llu\n", reg.name, r.ns_per_iter,
                static_cast<unsigned long long>(r.iters));
  }
  return 0;
}

}  // namespace perf
}  // namespace papd

#endif  // BENCH_PERF_UTIL_H_
