// Table 1: summary of power-management features (mechanisms) available on
// the two evaluation platforms.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/platform/platform_spec.h"

namespace papd {
namespace {

void PrintPlatform(const PlatformSpec& spec) {
  PrintBanner(std::cout, spec.name);
  TextTable t;
  t.SetHeader({"feature", "value"});
  t.AddRow({"cores", std::to_string(spec.num_cores)});
  t.AddRow({"frequency range",
            TextTable::Num(spec.min_mhz.value() / 1000.0, 1) + "-" +
                TextTable::Num(spec.base_max_mhz.value() / 1000.0, 1) + " GHz + " +
                TextTable::Num(spec.turbo_max_mhz.value() / 1000.0, 1) + " GHz boost"});
  t.AddRow({"DVFS increments", TextTable::Num(spec.step_mhz.value(), 0) + " MHz"});
  t.AddRow({"per-core DVFS", spec.max_simultaneous_pstates == 0
                                 ? "yes (independent per core)"
                                 : "yes (" + std::to_string(spec.max_simultaneous_pstates) +
                                       " simultaneous P-states)"});
  t.AddRow({"RAPL power capping",
            spec.has_rapl_limit ? TextTable::Num(spec.rapl_min_w.value(), 0) + "-" +
                                      TextTable::Num(spec.rapl_max_w.value(), 0) + " W"
                                : "not available"});
  t.AddRow({"platform power measurement", "yes (package energy counter)"});
  t.AddRow({"per-core power measurement", spec.has_per_core_power ? "yes" : "no"});
  t.AddRow({"TDP", TextTable::Num(spec.tdp_w.value(), 0) + " W"});
  t.AddRow({"AVX frequency caps",
            TextTable::Num(spec.avx_max_mhz_light.value(), 0) + " MHz (<=" +
                std::to_string(spec.avx_light_cores) + " AVX cores), " +
                TextTable::Num(spec.avx_max_mhz_heavy.value(), 0) + " MHz (more)"});
  t.Print(std::cout);
}

}  // namespace
}  // namespace papd

int main() {
  papd::PrintBenchHeader("Table 1", "Summary of power management features available");
  papd::PrintPlatform(papd::SkylakeXeon4114());
  papd::PrintPlatform(papd::Ryzen1700X());
  return 0;
}
