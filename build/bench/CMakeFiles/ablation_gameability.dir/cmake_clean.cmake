file(REMOVE_RECURSE
  "CMakeFiles/ablation_gameability.dir/ablation_gameability.cc.o"
  "CMakeFiles/ablation_gameability.dir/ablation_gameability.cc.o.d"
  "ablation_gameability"
  "ablation_gameability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gameability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
