# Empty compiler generated dependencies file for ablation_gameability.
# This may be replaced when dependencies are built.
