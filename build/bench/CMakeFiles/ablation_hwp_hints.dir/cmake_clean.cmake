file(REMOVE_RECURSE
  "CMakeFiles/ablation_hwp_hints.dir/ablation_hwp_hints.cc.o"
  "CMakeFiles/ablation_hwp_hints.dir/ablation_hwp_hints.cc.o.d"
  "ablation_hwp_hints"
  "ablation_hwp_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hwp_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
