# Empty dependencies file for ablation_hwp_hints.
# This may be replaced when dependencies are built.
