file(REMOVE_RECURSE
  "CMakeFiles/ablation_os_governors.dir/ablation_os_governors.cc.o"
  "CMakeFiles/ablation_os_governors.dir/ablation_os_governors.cc.o.d"
  "ablation_os_governors"
  "ablation_os_governors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_os_governors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
