# Empty dependencies file for ablation_os_governors.
# This may be replaced when dependencies are built.
