file(REMOVE_RECURSE
  "CMakeFiles/ablation_priority_starvation.dir/ablation_priority_starvation.cc.o"
  "CMakeFiles/ablation_priority_starvation.dir/ablation_priority_starvation.cc.o.d"
  "ablation_priority_starvation"
  "ablation_priority_starvation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_priority_starvation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
