# Empty compiler generated dependencies file for ablation_priority_starvation.
# This may be replaced when dependencies are built.
