file(REMOVE_RECURSE
  "CMakeFiles/ablation_pstate_selector.dir/ablation_pstate_selector.cc.o"
  "CMakeFiles/ablation_pstate_selector.dir/ablation_pstate_selector.cc.o.d"
  "ablation_pstate_selector"
  "ablation_pstate_selector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pstate_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
