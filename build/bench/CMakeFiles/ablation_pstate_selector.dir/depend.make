# Empty dependencies file for ablation_pstate_selector.
# This may be replaced when dependencies are built.
