file(REMOVE_RECURSE
  "CMakeFiles/ablation_single_core.dir/ablation_single_core.cc.o"
  "CMakeFiles/ablation_single_core.dir/ablation_single_core.cc.o.d"
  "ablation_single_core"
  "ablation_single_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_single_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
