# Empty compiler generated dependencies file for ablation_single_core.
# This may be replaced when dependencies are built.
