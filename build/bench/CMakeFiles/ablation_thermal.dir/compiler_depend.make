# Empty compiler generated dependencies file for ablation_thermal.
# This may be replaced when dependencies are built.
