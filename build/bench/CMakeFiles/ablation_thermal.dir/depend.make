# Empty dependencies file for ablation_thermal.
# This may be replaced when dependencies are built.
