file(REMOVE_RECURSE
  "CMakeFiles/fig01_rapl_interference.dir/fig01_rapl_interference.cc.o"
  "CMakeFiles/fig01_rapl_interference.dir/fig01_rapl_interference.cc.o.d"
  "fig01_rapl_interference"
  "fig01_rapl_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_rapl_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
