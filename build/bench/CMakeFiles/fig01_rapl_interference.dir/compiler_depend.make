# Empty compiler generated dependencies file for fig01_rapl_interference.
# This may be replaced when dependencies are built.
