file(REMOVE_RECURSE
  "CMakeFiles/fig02_dvfs_sweep_skylake.dir/fig02_dvfs_sweep_skylake.cc.o"
  "CMakeFiles/fig02_dvfs_sweep_skylake.dir/fig02_dvfs_sweep_skylake.cc.o.d"
  "fig02_dvfs_sweep_skylake"
  "fig02_dvfs_sweep_skylake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_dvfs_sweep_skylake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
