# Empty dependencies file for fig02_dvfs_sweep_skylake.
# This may be replaced when dependencies are built.
