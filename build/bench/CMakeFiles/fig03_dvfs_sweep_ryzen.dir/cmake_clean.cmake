file(REMOVE_RECURSE
  "CMakeFiles/fig03_dvfs_sweep_ryzen.dir/fig03_dvfs_sweep_ryzen.cc.o"
  "CMakeFiles/fig03_dvfs_sweep_ryzen.dir/fig03_dvfs_sweep_ryzen.cc.o.d"
  "fig03_dvfs_sweep_ryzen"
  "fig03_dvfs_sweep_ryzen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_dvfs_sweep_ryzen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
