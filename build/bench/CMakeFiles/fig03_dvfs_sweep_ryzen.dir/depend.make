# Empty dependencies file for fig03_dvfs_sweep_ryzen.
# This may be replaced when dependencies are built.
