# Empty dependencies file for fig04_rapl_percore_dvfs.
# This may be replaced when dependencies are built.
