file(REMOVE_RECURSE
  "CMakeFiles/fig05_websearch_rapl.dir/fig05_websearch_rapl.cc.o"
  "CMakeFiles/fig05_websearch_rapl.dir/fig05_websearch_rapl.cc.o.d"
  "fig05_websearch_rapl"
  "fig05_websearch_rapl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_websearch_rapl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
