# Empty dependencies file for fig05_websearch_rapl.
# This may be replaced when dependencies are built.
