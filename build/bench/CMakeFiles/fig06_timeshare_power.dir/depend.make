# Empty dependencies file for fig06_timeshare_power.
# This may be replaced when dependencies are built.
