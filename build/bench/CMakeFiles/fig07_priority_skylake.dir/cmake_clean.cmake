file(REMOVE_RECURSE
  "CMakeFiles/fig07_priority_skylake.dir/fig07_priority_skylake.cc.o"
  "CMakeFiles/fig07_priority_skylake.dir/fig07_priority_skylake.cc.o.d"
  "fig07_priority_skylake"
  "fig07_priority_skylake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_priority_skylake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
