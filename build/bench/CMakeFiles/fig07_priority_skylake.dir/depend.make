# Empty dependencies file for fig07_priority_skylake.
# This may be replaced when dependencies are built.
