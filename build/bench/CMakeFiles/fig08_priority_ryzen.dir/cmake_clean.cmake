file(REMOVE_RECURSE
  "CMakeFiles/fig08_priority_ryzen.dir/fig08_priority_ryzen.cc.o"
  "CMakeFiles/fig08_priority_ryzen.dir/fig08_priority_ryzen.cc.o.d"
  "fig08_priority_ryzen"
  "fig08_priority_ryzen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_priority_ryzen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
