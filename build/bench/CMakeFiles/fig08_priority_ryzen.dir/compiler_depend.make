# Empty compiler generated dependencies file for fig08_priority_ryzen.
# This may be replaced when dependencies are built.
