file(REMOVE_RECURSE
  "CMakeFiles/fig09_shares_skylake.dir/fig09_shares_skylake.cc.o"
  "CMakeFiles/fig09_shares_skylake.dir/fig09_shares_skylake.cc.o.d"
  "fig09_shares_skylake"
  "fig09_shares_skylake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_shares_skylake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
