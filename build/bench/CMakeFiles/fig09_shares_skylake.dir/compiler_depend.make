# Empty compiler generated dependencies file for fig09_shares_skylake.
# This may be replaced when dependencies are built.
