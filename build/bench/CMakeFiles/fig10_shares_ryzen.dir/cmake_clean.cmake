file(REMOVE_RECURSE
  "CMakeFiles/fig10_shares_ryzen.dir/fig10_shares_ryzen.cc.o"
  "CMakeFiles/fig10_shares_ryzen.dir/fig10_shares_ryzen.cc.o.d"
  "fig10_shares_ryzen"
  "fig10_shares_ryzen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_shares_ryzen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
