# Empty compiler generated dependencies file for fig10_shares_ryzen.
# This may be replaced when dependencies are built.
