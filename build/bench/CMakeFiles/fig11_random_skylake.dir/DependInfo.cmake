
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_random_skylake.cc" "bench/CMakeFiles/fig11_random_skylake.dir/fig11_random_skylake.cc.o" "gcc" "bench/CMakeFiles/fig11_random_skylake.dir/fig11_random_skylake.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/papd_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/governor/CMakeFiles/papd_governor.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/papd_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/msr/CMakeFiles/papd_msr.dir/DependInfo.cmake"
  "/root/repo/build/src/cpusim/CMakeFiles/papd_cpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/specsim/CMakeFiles/papd_specsim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/papd_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/papd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
