file(REMOVE_RECURSE
  "CMakeFiles/fig11_random_skylake.dir/fig11_random_skylake.cc.o"
  "CMakeFiles/fig11_random_skylake.dir/fig11_random_skylake.cc.o.d"
  "fig11_random_skylake"
  "fig11_random_skylake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_random_skylake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
