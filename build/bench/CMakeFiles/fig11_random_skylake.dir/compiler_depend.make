# Empty compiler generated dependencies file for fig11_random_skylake.
# This may be replaced when dependencies are built.
