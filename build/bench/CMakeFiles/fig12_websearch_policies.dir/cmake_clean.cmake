file(REMOVE_RECURSE
  "CMakeFiles/fig12_websearch_policies.dir/fig12_websearch_policies.cc.o"
  "CMakeFiles/fig12_websearch_policies.dir/fig12_websearch_policies.cc.o.d"
  "fig12_websearch_policies"
  "fig12_websearch_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_websearch_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
