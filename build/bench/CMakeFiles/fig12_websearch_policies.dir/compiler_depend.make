# Empty compiler generated dependencies file for fig12_websearch_policies.
# This may be replaced when dependencies are built.
