file(REMOVE_RECURSE
  "CMakeFiles/fig13_websearch_frequency.dir/fig13_websearch_frequency.cc.o"
  "CMakeFiles/fig13_websearch_frequency.dir/fig13_websearch_frequency.cc.o.d"
  "fig13_websearch_frequency"
  "fig13_websearch_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_websearch_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
