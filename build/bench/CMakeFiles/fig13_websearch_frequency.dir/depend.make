# Empty dependencies file for fig13_websearch_frequency.
# This may be replaced when dependencies are built.
