file(REMOVE_RECURSE
  "CMakeFiles/table01_platform_features.dir/table01_platform_features.cc.o"
  "CMakeFiles/table01_platform_features.dir/table01_platform_features.cc.o.d"
  "table01_platform_features"
  "table01_platform_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_platform_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
