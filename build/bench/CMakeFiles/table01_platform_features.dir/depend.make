# Empty dependencies file for table01_platform_features.
# This may be replaced when dependencies are built.
