file(REMOVE_RECURSE
  "CMakeFiles/colocate_latency_batch.dir/colocate_latency_batch.cpp.o"
  "CMakeFiles/colocate_latency_batch.dir/colocate_latency_batch.cpp.o.d"
  "colocate_latency_batch"
  "colocate_latency_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocate_latency_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
