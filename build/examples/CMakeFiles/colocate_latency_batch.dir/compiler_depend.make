# Empty compiler generated dependencies file for colocate_latency_batch.
# This may be replaced when dependencies are built.
