file(REMOVE_RECURSE
  "CMakeFiles/datacenter_power_cap.dir/datacenter_power_cap.cpp.o"
  "CMakeFiles/datacenter_power_cap.dir/datacenter_power_cap.cpp.o.d"
  "datacenter_power_cap"
  "datacenter_power_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_power_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
