# Empty dependencies file for datacenter_power_cap.
# This may be replaced when dependencies are built.
