file(REMOVE_RECURSE
  "CMakeFiles/lp_timeslicing.dir/lp_timeslicing.cpp.o"
  "CMakeFiles/lp_timeslicing.dir/lp_timeslicing.cpp.o.d"
  "lp_timeslicing"
  "lp_timeslicing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_timeslicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
