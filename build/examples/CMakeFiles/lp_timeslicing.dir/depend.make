# Empty dependencies file for lp_timeslicing.
# This may be replaced when dependencies are built.
