file(REMOVE_RECURSE
  "CMakeFiles/papd_common.dir/logging.cc.o"
  "CMakeFiles/papd_common.dir/logging.cc.o.d"
  "CMakeFiles/papd_common.dir/rng.cc.o"
  "CMakeFiles/papd_common.dir/rng.cc.o.d"
  "CMakeFiles/papd_common.dir/stats.cc.o"
  "CMakeFiles/papd_common.dir/stats.cc.o.d"
  "CMakeFiles/papd_common.dir/table.cc.o"
  "CMakeFiles/papd_common.dir/table.cc.o.d"
  "libpapd_common.a"
  "libpapd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
