file(REMOVE_RECURSE
  "libpapd_common.a"
)
