# Empty dependencies file for papd_common.
# This may be replaced when dependencies are built.
