
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpusim/core.cc" "src/cpusim/CMakeFiles/papd_cpusim.dir/core.cc.o" "gcc" "src/cpusim/CMakeFiles/papd_cpusim.dir/core.cc.o.d"
  "/root/repo/src/cpusim/package.cc" "src/cpusim/CMakeFiles/papd_cpusim.dir/package.cc.o" "gcc" "src/cpusim/CMakeFiles/papd_cpusim.dir/package.cc.o.d"
  "/root/repo/src/cpusim/power_model.cc" "src/cpusim/CMakeFiles/papd_cpusim.dir/power_model.cc.o" "gcc" "src/cpusim/CMakeFiles/papd_cpusim.dir/power_model.cc.o.d"
  "/root/repo/src/cpusim/rapl.cc" "src/cpusim/CMakeFiles/papd_cpusim.dir/rapl.cc.o" "gcc" "src/cpusim/CMakeFiles/papd_cpusim.dir/rapl.cc.o.d"
  "/root/repo/src/cpusim/simulator.cc" "src/cpusim/CMakeFiles/papd_cpusim.dir/simulator.cc.o" "gcc" "src/cpusim/CMakeFiles/papd_cpusim.dir/simulator.cc.o.d"
  "/root/repo/src/cpusim/thermal.cc" "src/cpusim/CMakeFiles/papd_cpusim.dir/thermal.cc.o" "gcc" "src/cpusim/CMakeFiles/papd_cpusim.dir/thermal.cc.o.d"
  "/root/repo/src/cpusim/timeshare.cc" "src/cpusim/CMakeFiles/papd_cpusim.dir/timeshare.cc.o" "gcc" "src/cpusim/CMakeFiles/papd_cpusim.dir/timeshare.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/papd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/papd_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/specsim/CMakeFiles/papd_specsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
