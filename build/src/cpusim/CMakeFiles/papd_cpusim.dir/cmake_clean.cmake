file(REMOVE_RECURSE
  "CMakeFiles/papd_cpusim.dir/core.cc.o"
  "CMakeFiles/papd_cpusim.dir/core.cc.o.d"
  "CMakeFiles/papd_cpusim.dir/package.cc.o"
  "CMakeFiles/papd_cpusim.dir/package.cc.o.d"
  "CMakeFiles/papd_cpusim.dir/power_model.cc.o"
  "CMakeFiles/papd_cpusim.dir/power_model.cc.o.d"
  "CMakeFiles/papd_cpusim.dir/rapl.cc.o"
  "CMakeFiles/papd_cpusim.dir/rapl.cc.o.d"
  "CMakeFiles/papd_cpusim.dir/simulator.cc.o"
  "CMakeFiles/papd_cpusim.dir/simulator.cc.o.d"
  "CMakeFiles/papd_cpusim.dir/thermal.cc.o"
  "CMakeFiles/papd_cpusim.dir/thermal.cc.o.d"
  "CMakeFiles/papd_cpusim.dir/timeshare.cc.o"
  "CMakeFiles/papd_cpusim.dir/timeshare.cc.o.d"
  "libpapd_cpusim.a"
  "libpapd_cpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papd_cpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
