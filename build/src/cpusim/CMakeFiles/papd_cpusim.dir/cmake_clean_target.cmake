file(REMOVE_RECURSE
  "libpapd_cpusim.a"
)
