# Empty compiler generated dependencies file for papd_cpusim.
# This may be replaced when dependencies are built.
