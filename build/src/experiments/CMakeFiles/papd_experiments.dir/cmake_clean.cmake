file(REMOVE_RECURSE
  "CMakeFiles/papd_experiments.dir/harness.cc.o"
  "CMakeFiles/papd_experiments.dir/harness.cc.o.d"
  "CMakeFiles/papd_experiments.dir/scenarios.cc.o"
  "CMakeFiles/papd_experiments.dir/scenarios.cc.o.d"
  "libpapd_experiments.a"
  "libpapd_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papd_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
