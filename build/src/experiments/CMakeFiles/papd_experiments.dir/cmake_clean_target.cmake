file(REMOVE_RECURSE
  "libpapd_experiments.a"
)
