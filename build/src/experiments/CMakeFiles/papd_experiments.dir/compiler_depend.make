# Empty compiler generated dependencies file for papd_experiments.
# This may be replaced when dependencies are built.
