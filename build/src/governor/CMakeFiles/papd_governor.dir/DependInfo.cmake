
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/governor/governor.cc" "src/governor/CMakeFiles/papd_governor.dir/governor.cc.o" "gcc" "src/governor/CMakeFiles/papd_governor.dir/governor.cc.o.d"
  "/root/repo/src/governor/governor_daemon.cc" "src/governor/CMakeFiles/papd_governor.dir/governor_daemon.cc.o" "gcc" "src/governor/CMakeFiles/papd_governor.dir/governor_daemon.cc.o.d"
  "/root/repo/src/governor/thermald.cc" "src/governor/CMakeFiles/papd_governor.dir/thermald.cc.o" "gcc" "src/governor/CMakeFiles/papd_governor.dir/thermald.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/papd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/msr/CMakeFiles/papd_msr.dir/DependInfo.cmake"
  "/root/repo/build/src/cpusim/CMakeFiles/papd_cpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/specsim/CMakeFiles/papd_specsim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/papd_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
