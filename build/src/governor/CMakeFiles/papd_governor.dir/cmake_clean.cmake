file(REMOVE_RECURSE
  "CMakeFiles/papd_governor.dir/governor.cc.o"
  "CMakeFiles/papd_governor.dir/governor.cc.o.d"
  "CMakeFiles/papd_governor.dir/governor_daemon.cc.o"
  "CMakeFiles/papd_governor.dir/governor_daemon.cc.o.d"
  "CMakeFiles/papd_governor.dir/thermald.cc.o"
  "CMakeFiles/papd_governor.dir/thermald.cc.o.d"
  "libpapd_governor.a"
  "libpapd_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papd_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
