file(REMOVE_RECURSE
  "libpapd_governor.a"
)
