# Empty compiler generated dependencies file for papd_governor.
# This may be replaced when dependencies are built.
