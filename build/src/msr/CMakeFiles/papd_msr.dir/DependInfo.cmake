
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msr/msr.cc" "src/msr/CMakeFiles/papd_msr.dir/msr.cc.o" "gcc" "src/msr/CMakeFiles/papd_msr.dir/msr.cc.o.d"
  "/root/repo/src/msr/turbostat.cc" "src/msr/CMakeFiles/papd_msr.dir/turbostat.cc.o" "gcc" "src/msr/CMakeFiles/papd_msr.dir/turbostat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/papd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cpusim/CMakeFiles/papd_cpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/specsim/CMakeFiles/papd_specsim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/papd_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
