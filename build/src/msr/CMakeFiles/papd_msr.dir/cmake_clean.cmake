file(REMOVE_RECURSE
  "CMakeFiles/papd_msr.dir/msr.cc.o"
  "CMakeFiles/papd_msr.dir/msr.cc.o.d"
  "CMakeFiles/papd_msr.dir/turbostat.cc.o"
  "CMakeFiles/papd_msr.dir/turbostat.cc.o.d"
  "libpapd_msr.a"
  "libpapd_msr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papd_msr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
