file(REMOVE_RECURSE
  "libpapd_msr.a"
)
