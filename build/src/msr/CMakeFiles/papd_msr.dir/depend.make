# Empty dependencies file for papd_msr.
# This may be replaced when dependencies are built.
