
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/platform_spec.cc" "src/platform/CMakeFiles/papd_platform.dir/platform_spec.cc.o" "gcc" "src/platform/CMakeFiles/papd_platform.dir/platform_spec.cc.o.d"
  "/root/repo/src/platform/pstate.cc" "src/platform/CMakeFiles/papd_platform.dir/pstate.cc.o" "gcc" "src/platform/CMakeFiles/papd_platform.dir/pstate.cc.o.d"
  "/root/repo/src/platform/voltage_curve.cc" "src/platform/CMakeFiles/papd_platform.dir/voltage_curve.cc.o" "gcc" "src/platform/CMakeFiles/papd_platform.dir/voltage_curve.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/papd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
