file(REMOVE_RECURSE
  "CMakeFiles/papd_platform.dir/platform_spec.cc.o"
  "CMakeFiles/papd_platform.dir/platform_spec.cc.o.d"
  "CMakeFiles/papd_platform.dir/pstate.cc.o"
  "CMakeFiles/papd_platform.dir/pstate.cc.o.d"
  "CMakeFiles/papd_platform.dir/voltage_curve.cc.o"
  "CMakeFiles/papd_platform.dir/voltage_curve.cc.o.d"
  "libpapd_platform.a"
  "libpapd_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papd_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
