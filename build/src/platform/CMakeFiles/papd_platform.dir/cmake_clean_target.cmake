file(REMOVE_RECURSE
  "libpapd_platform.a"
)
