# Empty dependencies file for papd_platform.
# This may be replaced when dependencies are built.
