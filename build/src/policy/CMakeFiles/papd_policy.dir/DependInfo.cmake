
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/daemon.cc" "src/policy/CMakeFiles/papd_policy.dir/daemon.cc.o" "gcc" "src/policy/CMakeFiles/papd_policy.dir/daemon.cc.o.d"
  "/root/repo/src/policy/frequency_shares.cc" "src/policy/CMakeFiles/papd_policy.dir/frequency_shares.cc.o" "gcc" "src/policy/CMakeFiles/papd_policy.dir/frequency_shares.cc.o.d"
  "/root/repo/src/policy/hwp.cc" "src/policy/CMakeFiles/papd_policy.dir/hwp.cc.o" "gcc" "src/policy/CMakeFiles/papd_policy.dir/hwp.cc.o.d"
  "/root/repo/src/policy/min_funding.cc" "src/policy/CMakeFiles/papd_policy.dir/min_funding.cc.o" "gcc" "src/policy/CMakeFiles/papd_policy.dir/min_funding.cc.o.d"
  "/root/repo/src/policy/performance_shares.cc" "src/policy/CMakeFiles/papd_policy.dir/performance_shares.cc.o" "gcc" "src/policy/CMakeFiles/papd_policy.dir/performance_shares.cc.o.d"
  "/root/repo/src/policy/power_shares.cc" "src/policy/CMakeFiles/papd_policy.dir/power_shares.cc.o" "gcc" "src/policy/CMakeFiles/papd_policy.dir/power_shares.cc.o.d"
  "/root/repo/src/policy/priority_policy.cc" "src/policy/CMakeFiles/papd_policy.dir/priority_policy.cc.o" "gcc" "src/policy/CMakeFiles/papd_policy.dir/priority_policy.cc.o.d"
  "/root/repo/src/policy/pstate_selector.cc" "src/policy/CMakeFiles/papd_policy.dir/pstate_selector.cc.o" "gcc" "src/policy/CMakeFiles/papd_policy.dir/pstate_selector.cc.o.d"
  "/root/repo/src/policy/single_core.cc" "src/policy/CMakeFiles/papd_policy.dir/single_core.cc.o" "gcc" "src/policy/CMakeFiles/papd_policy.dir/single_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/papd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/msr/CMakeFiles/papd_msr.dir/DependInfo.cmake"
  "/root/repo/build/src/cpusim/CMakeFiles/papd_cpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/specsim/CMakeFiles/papd_specsim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/papd_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
