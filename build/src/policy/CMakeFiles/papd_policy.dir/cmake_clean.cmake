file(REMOVE_RECURSE
  "CMakeFiles/papd_policy.dir/daemon.cc.o"
  "CMakeFiles/papd_policy.dir/daemon.cc.o.d"
  "CMakeFiles/papd_policy.dir/frequency_shares.cc.o"
  "CMakeFiles/papd_policy.dir/frequency_shares.cc.o.d"
  "CMakeFiles/papd_policy.dir/hwp.cc.o"
  "CMakeFiles/papd_policy.dir/hwp.cc.o.d"
  "CMakeFiles/papd_policy.dir/min_funding.cc.o"
  "CMakeFiles/papd_policy.dir/min_funding.cc.o.d"
  "CMakeFiles/papd_policy.dir/performance_shares.cc.o"
  "CMakeFiles/papd_policy.dir/performance_shares.cc.o.d"
  "CMakeFiles/papd_policy.dir/power_shares.cc.o"
  "CMakeFiles/papd_policy.dir/power_shares.cc.o.d"
  "CMakeFiles/papd_policy.dir/priority_policy.cc.o"
  "CMakeFiles/papd_policy.dir/priority_policy.cc.o.d"
  "CMakeFiles/papd_policy.dir/pstate_selector.cc.o"
  "CMakeFiles/papd_policy.dir/pstate_selector.cc.o.d"
  "CMakeFiles/papd_policy.dir/single_core.cc.o"
  "CMakeFiles/papd_policy.dir/single_core.cc.o.d"
  "libpapd_policy.a"
  "libpapd_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papd_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
