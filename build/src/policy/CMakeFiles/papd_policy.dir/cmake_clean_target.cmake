file(REMOVE_RECURSE
  "libpapd_policy.a"
)
