# Empty compiler generated dependencies file for papd_policy.
# This may be replaced when dependencies are built.
