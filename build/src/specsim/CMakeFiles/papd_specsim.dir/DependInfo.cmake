
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/specsim/spec2017.cc" "src/specsim/CMakeFiles/papd_specsim.dir/spec2017.cc.o" "gcc" "src/specsim/CMakeFiles/papd_specsim.dir/spec2017.cc.o.d"
  "/root/repo/src/specsim/spinlock.cc" "src/specsim/CMakeFiles/papd_specsim.dir/spinlock.cc.o" "gcc" "src/specsim/CMakeFiles/papd_specsim.dir/spinlock.cc.o.d"
  "/root/repo/src/specsim/websearch.cc" "src/specsim/CMakeFiles/papd_specsim.dir/websearch.cc.o" "gcc" "src/specsim/CMakeFiles/papd_specsim.dir/websearch.cc.o.d"
  "/root/repo/src/specsim/workload.cc" "src/specsim/CMakeFiles/papd_specsim.dir/workload.cc.o" "gcc" "src/specsim/CMakeFiles/papd_specsim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/papd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/papd_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
