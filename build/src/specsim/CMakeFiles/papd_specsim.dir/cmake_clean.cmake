file(REMOVE_RECURSE
  "CMakeFiles/papd_specsim.dir/spec2017.cc.o"
  "CMakeFiles/papd_specsim.dir/spec2017.cc.o.d"
  "CMakeFiles/papd_specsim.dir/spinlock.cc.o"
  "CMakeFiles/papd_specsim.dir/spinlock.cc.o.d"
  "CMakeFiles/papd_specsim.dir/websearch.cc.o"
  "CMakeFiles/papd_specsim.dir/websearch.cc.o.d"
  "CMakeFiles/papd_specsim.dir/workload.cc.o"
  "CMakeFiles/papd_specsim.dir/workload.cc.o.d"
  "libpapd_specsim.a"
  "libpapd_specsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papd_specsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
