file(REMOVE_RECURSE
  "libpapd_specsim.a"
)
