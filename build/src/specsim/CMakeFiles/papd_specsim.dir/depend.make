# Empty dependencies file for papd_specsim.
# This may be replaced when dependencies are built.
