file(REMOVE_RECURSE
  "CMakeFiles/hwp_test.dir/hwp_test.cc.o"
  "CMakeFiles/hwp_test.dir/hwp_test.cc.o.d"
  "hwp_test"
  "hwp_test.pdb"
  "hwp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
