# Empty dependencies file for hwp_test.
# This may be replaced when dependencies are built.
