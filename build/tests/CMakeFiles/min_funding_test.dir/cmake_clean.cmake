file(REMOVE_RECURSE
  "CMakeFiles/min_funding_test.dir/min_funding_test.cc.o"
  "CMakeFiles/min_funding_test.dir/min_funding_test.cc.o.d"
  "min_funding_test"
  "min_funding_test.pdb"
  "min_funding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/min_funding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
