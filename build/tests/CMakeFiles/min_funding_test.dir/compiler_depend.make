# Empty compiler generated dependencies file for min_funding_test.
# This may be replaced when dependencies are built.
