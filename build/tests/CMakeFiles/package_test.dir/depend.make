# Empty dependencies file for package_test.
# This may be replaced when dependencies are built.
