file(REMOVE_RECURSE
  "CMakeFiles/power_model_test.dir/power_model_test.cc.o"
  "CMakeFiles/power_model_test.dir/power_model_test.cc.o.d"
  "power_model_test"
  "power_model_test.pdb"
  "power_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
