file(REMOVE_RECURSE
  "CMakeFiles/priority_policy_test.dir/priority_policy_test.cc.o"
  "CMakeFiles/priority_policy_test.dir/priority_policy_test.cc.o.d"
  "priority_policy_test"
  "priority_policy_test.pdb"
  "priority_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
