# Empty dependencies file for priority_policy_test.
# This may be replaced when dependencies are built.
