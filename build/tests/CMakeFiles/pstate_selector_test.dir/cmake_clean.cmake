file(REMOVE_RECURSE
  "CMakeFiles/pstate_selector_test.dir/pstate_selector_test.cc.o"
  "CMakeFiles/pstate_selector_test.dir/pstate_selector_test.cc.o.d"
  "pstate_selector_test"
  "pstate_selector_test.pdb"
  "pstate_selector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstate_selector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
