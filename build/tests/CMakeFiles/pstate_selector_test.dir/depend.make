# Empty dependencies file for pstate_selector_test.
# This may be replaced when dependencies are built.
