file(REMOVE_RECURSE
  "CMakeFiles/random_mix_test.dir/random_mix_test.cc.o"
  "CMakeFiles/random_mix_test.dir/random_mix_test.cc.o.d"
  "random_mix_test"
  "random_mix_test.pdb"
  "random_mix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_mix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
