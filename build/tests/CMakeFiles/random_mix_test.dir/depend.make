# Empty dependencies file for random_mix_test.
# This may be replaced when dependencies are built.
