file(REMOVE_RECURSE
  "CMakeFiles/rapl_test.dir/rapl_test.cc.o"
  "CMakeFiles/rapl_test.dir/rapl_test.cc.o.d"
  "rapl_test"
  "rapl_test.pdb"
  "rapl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
