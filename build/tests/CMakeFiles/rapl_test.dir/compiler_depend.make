# Empty compiler generated dependencies file for rapl_test.
# This may be replaced when dependencies are built.
