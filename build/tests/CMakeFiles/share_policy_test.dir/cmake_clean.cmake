file(REMOVE_RECURSE
  "CMakeFiles/share_policy_test.dir/share_policy_test.cc.o"
  "CMakeFiles/share_policy_test.dir/share_policy_test.cc.o.d"
  "share_policy_test"
  "share_policy_test.pdb"
  "share_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/share_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
