file(REMOVE_RECURSE
  "CMakeFiles/single_core_test.dir/single_core_test.cc.o"
  "CMakeFiles/single_core_test.dir/single_core_test.cc.o.d"
  "single_core_test"
  "single_core_test.pdb"
  "single_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
