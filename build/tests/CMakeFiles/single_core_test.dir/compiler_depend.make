# Empty compiler generated dependencies file for single_core_test.
# This may be replaced when dependencies are built.
