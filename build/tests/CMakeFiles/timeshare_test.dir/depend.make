# Empty dependencies file for timeshare_test.
# This may be replaced when dependencies are built.
