file(REMOVE_RECURSE
  "CMakeFiles/turbostat_test.dir/turbostat_test.cc.o"
  "CMakeFiles/turbostat_test.dir/turbostat_test.cc.o.d"
  "turbostat_test"
  "turbostat_test.pdb"
  "turbostat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbostat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
