# Empty dependencies file for turbostat_test.
# This may be replaced when dependencies are built.
