file(REMOVE_RECURSE
  "CMakeFiles/websearch_test.dir/websearch_test.cc.o"
  "CMakeFiles/websearch_test.dir/websearch_test.cc.o.d"
  "websearch_test"
  "websearch_test.pdb"
  "websearch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/websearch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
