# Empty dependencies file for websearch_test.
# This may be replaced when dependencies are built.
