# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/websearch_test[1]_include.cmake")
include("/root/repo/build/tests/power_model_test[1]_include.cmake")
include("/root/repo/build/tests/rapl_test[1]_include.cmake")
include("/root/repo/build/tests/package_test[1]_include.cmake")
include("/root/repo/build/tests/timeshare_test[1]_include.cmake")
include("/root/repo/build/tests/msr_test[1]_include.cmake")
include("/root/repo/build/tests/turbostat_test[1]_include.cmake")
include("/root/repo/build/tests/min_funding_test[1]_include.cmake")
include("/root/repo/build/tests/pstate_selector_test[1]_include.cmake")
include("/root/repo/build/tests/share_policy_test[1]_include.cmake")
include("/root/repo/build/tests/priority_policy_test[1]_include.cmake")
include("/root/repo/build/tests/daemon_test[1]_include.cmake")
include("/root/repo/build/tests/governor_test[1]_include.cmake")
include("/root/repo/build/tests/hwp_test[1]_include.cmake")
include("/root/repo/build/tests/single_core_test[1]_include.cmake")
include("/root/repo/build/tests/thermal_test[1]_include.cmake")
include("/root/repo/build/tests/spinlock_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/random_mix_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
