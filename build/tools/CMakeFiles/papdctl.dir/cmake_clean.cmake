file(REMOVE_RECURSE
  "CMakeFiles/papdctl.dir/papdctl.cc.o"
  "CMakeFiles/papdctl.dir/papdctl.cc.o.d"
  "papdctl"
  "papdctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papdctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
