# Empty compiler generated dependencies file for papdctl.
# This may be replaced when dependencies are built.
