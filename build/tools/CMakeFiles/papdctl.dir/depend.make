# Empty dependencies file for papdctl.
# This may be replaced when dependencies are built.
