# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(papdctl_freq_shares "/root/repo/build/tools/papdctl" "--policy" "freq-shares" "--limit" "40" "--duration" "20" "--app" "leela:shares=90" "--app" "cpuburn:shares=10")
set_tests_properties(papdctl_freq_shares PROPERTIES  PASS_REGULAR_EXPRESSION "final second of telemetry" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(papdctl_priority_ryzen "/root/repo/build/tools/papdctl" "--platform" "ryzen" "--policy" "priority" "--limit" "40" "--duration" "20" "--app" "cactusBSSN:hp" "--app" "leela:hp" "--app" "cactusBSSN:lp" "--app" "leela:lp")
set_tests_properties(papdctl_priority_ryzen PROPERTIES  PASS_REGULAR_EXPRESSION "final second of telemetry" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(papdctl_rejects_bad_profile "/root/repo/build/tools/papdctl" "--app" "no-such-benchmark")
set_tests_properties(papdctl_rejects_bad_profile PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
