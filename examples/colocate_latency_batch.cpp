// Co-locating a latency-sensitive service with a batch power hog.
//
// The scenario that motivates the paper (Section 3, "unfair throttling"):
// websearch serves 300 users on nine cores while a cpuburn power virus
// occupies the tenth, under a 40 W power cap.  With hardware RAPL capping
// alone the virus drags every core's frequency down and websearch's tail
// latency collapses; with the frequency-shares policy (90 shares per
// websearch core vs 10 for the virus) the virus is pinned at the minimum
// P-state and the service keeps its latency.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/colocate_latency_batch

#include <cstdio>

#include "src/experiments/harness.h"

int main() {
  using namespace papd;

  WebsearchConfig base{.platform = SkylakeXeon4114()};
  base.limit_w = Watts{40.0};
  base.warmup_s = Seconds{20.0};
  base.measure_s = Seconds{120.0};

  std::printf("websearch (9 cores, 300 users) + cpuburn, 40 W cap on Skylake\n\n");
  std::printf("%-28s %12s %12s %12s\n", "configuration", "p90 (ms)", "ws MHz", "virus MHz");

  WebsearchConfig alone = base;
  alone.policy = PolicyKind::kRaplOnly;
  alone.with_cpuburn = false;
  const WebsearchResult r_alone = RunWebsearch(alone);
  std::printf("%-28s %12.1f %12.0f %12s\n", "websearch alone (RAPL)",
              r_alone.p90_latency * 1e3, r_alone.websearch_avg_mhz, "-");

  WebsearchConfig rapl = base;
  rapl.policy = PolicyKind::kRaplOnly;
  const WebsearchResult r_rapl = RunWebsearch(rapl);
  std::printf("%-28s %12.1f %12.0f %12.0f\n", "+ cpuburn, RAPL only",
              r_rapl.p90_latency * 1e3, r_rapl.websearch_avg_mhz, r_rapl.cpuburn_avg_mhz);

  WebsearchConfig share = base;
  share.policy = PolicyKind::kFrequencyShares;  // 90/10 shares by default.
  const WebsearchResult r_share = RunWebsearch(share);
  std::printf("%-28s %12.1f %12.0f %12.0f\n", "+ cpuburn, freq shares 90/10",
              r_share.p90_latency * 1e3, r_share.websearch_avg_mhz,
              r_share.cpuburn_avg_mhz);

  std::printf(
      "\nRAPL alone lets the virus inflate websearch's p90 by %.1fx; the share\n"
      "policy recovers it to %.2fx of running alone.\n",
      r_rapl.p90_latency / r_alone.p90_latency, r_share.p90_latency / r_alone.p90_latency);
  return 0;
}
