// Writing a custom power-delivery policy.
//
// The daemon accepts any ShareResource implementation, so the paper's
// three share types are not a closed set.  This example implements
// "efficiency shares": each application's share is scaled by its measured
// instructions per cycle, so frequency flows toward the applications that
// convert cycles into retired work — a policy direction the paper's
// conclusion hints at ("one rewards low power use while others reward
// efficient processor use").  Memory-bound apps, which waste cycles
// stalling, are throttled first (their stalls don't get slower); the
// throttling *raises* their IPC, a negative feedback that keeps the
// weights stable.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/custom_policy

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/msr/msr.h"
#include "src/policy/daemon.h"
#include "src/policy/min_funding.h"
#include "src/policy/share_policy.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/workload.h"

namespace {

using namespace papd;

// Frequency shares whose effective share weight is the configured share
// times the application's measured instructions per cycle, renormalized
// every period.  Apps that stall on memory lose frequency to apps that
// retire work with every cycle they are given.
class EfficiencyShares : public ShareResource {
 public:
  explicit EfficiencyShares(PolicyPlatform platform) : platform_(platform) {}

  std::string Name() const override { return "efficiency-shares"; }

  std::vector<Mhz> InitialDistribution(const std::vector<ManagedApp>& apps,
                                       Watts limit_w) override {
    (void)limit_w;
    targets_.assign(apps.size(), platform_.max_mhz);
    return targets_;
  }

  std::vector<Mhz> Redistribute(const std::vector<ManagedApp>& apps,
                                const TelemetrySample& sample, Watts limit_w) override {
    const Watts power_delta{limit_w - sample.pkg_w};
    if (Abs(power_delta) <= kPowerToleranceW) {
      return targets_;
    }
    // Effective weight: configured share x measured instructions per cycle.
    std::vector<ShareRequest> req;
    for (const ManagedApp& app : apps) {
      const auto& core = sample.cores[static_cast<size_t>(app.cpu)];
      const double ipc =
          core.active_mhz > Mhz{0.0} ? core.ips / IpsAtMhz(core.active_mhz, /*ipc=*/1.0) : 0.0;
      req.push_back(ShareRequest{
          .shares = app.shares * std::max(ipc, 0.05),
          .minimum = AsResourceUnits(platform_.min_mhz),
          .maximum = AsResourceUnits(platform_.max_mhz),
      });
    }
    const double alpha = AlphaOf(power_delta, platform_.max_power_w);
    ResourceUnits total =
        alpha * AsResourceUnits(platform_.max_mhz) * static_cast<double>(apps.size());
    for (Mhz f : targets_) {
      total += AsResourceUnits(f);
    }
    targets_.clear();
    for (ResourceUnits u : DistributeProportional(total, req)) {
      targets_.push_back(Mhz{u});
    }
    return targets_;
  }

 private:
  PolicyPlatform platform_;
  std::vector<Mhz> targets_;
};

}  // namespace

int main() {
  Package package(Ryzen1700X());  // Per-core power telemetry available.
  MsrFile msr(&package);

  // Equal configured shares; efficiency decides.  exchange2 is
  // compute-efficient, omnetpp is memory-bound, cam4 burns AVX power.
  const std::vector<std::string> names = {"exchange2", "leela", "omnetpp", "cam4"};
  std::vector<std::unique_ptr<Process>> procs;
  std::vector<ManagedApp> apps;
  for (size_t i = 0; i < names.size(); i++) {
    procs.push_back(std::make_unique<Process>(GetProfile(names[i]), 1 + i));
    package.AttachWork(static_cast<int>(i), procs.back().get());
    apps.push_back(ManagedApp{.name = names[i], .cpu = static_cast<int>(i), .shares = 1.0});
  }

  PowerDaemon daemon(&msr, apps, {.power_limit_w = Watts{30.0}},
                     std::make_unique<EfficiencyShares>(MakePolicyPlatform(package.spec())));
  daemon.Start();

  Simulator sim(&package);
  sim.AddPeriodic(Seconds{1.0}, [&daemon](papd::Seconds) { daemon.Step(); });
  sim.Run(Seconds{60.0});

  const auto& rec = daemon.history().back();
  std::printf("efficiency shares under a 30 W limit (equal configured shares):\n");
  std::printf("  package power %5.1f W\n", rec.sample.pkg_w.value());
  for (const auto& app : apps) {
    const auto& core = rec.sample.cores[static_cast<size_t>(app.cpu)];
    const Watts core_w = core.core_w.value_or(Watts{0.0});
    std::printf("  %-10s %5.0f MHz  %5.2f Ginstr/s  %4.1f W  %5.2f Ginstr/J\n",
                app.name.c_str(), core.active_mhz.value(), core.ips.value() / 1e9, core_w.value(),
                core_w > Watts{0.0} ? core.ips.value() / core_w.value() / 1e9 : 0.0);
  }
  std::printf(
      "\nThe high-IPC apps (exchange2, leela) hold high frequencies while the\n"
      "memory-bound app (omnetpp) is throttled toward the floor.\n");
  return 0;
}
