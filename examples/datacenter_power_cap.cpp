// Riding out a datacenter power emergency with the priority policy.
//
// Cluster managers (Dynamo, SmoothOperator — both cited by the paper)
// lower per-node power caps when the datacenter nears its provisioned
// limit.  This example runs a mixed-priority job set on the simulated
// Skylake node and steps the cap 85 W -> 60 W -> 40 W -> 85 W at runtime
// through PowerDaemon::SetPowerLimit, printing a timeline of how the
// priority policy sheds low-priority work first and restores it when the
// emergency passes.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/datacenter_power_cap

#include <cstdio>
#include <memory>
#include <vector>

#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/msr/msr.h"
#include "src/policy/daemon.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/workload.h"

int main() {
  using namespace papd;

  Package package(SkylakeXeon4114());
  MsrFile msr(&package);

  // A mixed fleet: four high-priority service shards, six low-priority
  // batch jobs of varying demand.
  struct Job {
    const char* profile;
    bool high_priority;
  };
  const std::vector<Job> jobs = {
      {"perlbench", true}, {"leela", true},    {"deepsjeng", true}, {"gcc", true},
      {"cactusBSSN", false}, {"cam4", false},  {"lbm", false},      {"omnetpp", false},
      {"exchange2", false},  {"povray", false},
  };

  std::vector<std::unique_ptr<Process>> procs;
  std::vector<ManagedApp> apps;
  for (size_t i = 0; i < jobs.size(); i++) {
    procs.push_back(std::make_unique<Process>(GetProfile(jobs[i].profile), 100 + i));
    package.AttachWork(static_cast<int>(i), procs.back().get());
    apps.push_back(ManagedApp{.name = jobs[i].profile,
                              .cpu = static_cast<int>(i),
                              .high_priority = jobs[i].high_priority});
  }

  PowerDaemon daemon(&msr, apps, {.kind = PolicyKind::kPriority, .power_limit_w = Watts{85.0}});
  daemon.Start();

  Simulator sim(&package);
  sim.AddPeriodic(Seconds{1.0}, [&daemon](Seconds) { daemon.Step(); });

  // Cap schedule: (time, cap).
  const std::vector<std::pair<Seconds, Watts>> schedule = {{Seconds{0}, Watts{85}},
                                                           {Seconds{30}, Watts{60}},
                                                           {Seconds{60}, Watts{40}},
                                                           {Seconds{90}, Watts{85}}};

  std::printf("%6s %6s %8s %10s %10s %10s\n", "t(s)", "cap W", "pkg W", "HP MHz", "LP MHz",
              "LP running");
  size_t next_cap = 0;
  for (Seconds t{0.0}; t < Seconds{120.0}; t += Seconds{10.0}) {
    while (next_cap < schedule.size() && schedule[next_cap].first <= t + Seconds{1e-9}) {
      daemon.SetPowerLimit(schedule[next_cap].second);
      next_cap++;
    }
    sim.Run(Seconds{10.0});

    const auto& rec = daemon.history().back();
    Mhz hp_mhz{0.0};
    Mhz lp_mhz{0.0};
    int hp_n = 0;
    int lp_running = 0;
    for (size_t i = 0; i < apps.size(); i++) {
      const auto& core = rec.sample.cores[static_cast<size_t>(apps[i].cpu)];
      if (apps[i].high_priority) {
        hp_mhz += core.active_mhz;
        hp_n++;
      } else if (core.online && core.busy > 0.01) {
        lp_mhz += core.active_mhz;
        lp_running++;
      }
    }
    std::printf("%6.0f %6.0f %8.1f %10.0f %10.0f %7d/6\n", sim.now().value(),
                daemon.config().power_limit_w.value(), rec.sample.pkg_w.value(),
                (hp_mhz / hp_n).value(),
                lp_running ? (lp_mhz / lp_running).value() : 0.0, lp_running);
  }

  std::printf(
      "\nThe cap drop to 40 W sheds batch jobs (LP running falls) while the four\n"
      "service shards keep their frequency; restoring the cap re-admits them.\n");
  return 0;
}
