// Rescuing starved low-priority jobs by time-slicing them on one core.
//
// Paper Section 4.4: "these simple policies can lead to starvation under
// space sharing even when a subset of applications could still run ...
// the policy should disable cores (put them in a sleep state) and let the
// OS scheduler time-slice applications on the remaining cores."
//
// This example demonstrates that remedy.  Three high-priority cactusBSSN
// shards plus four low-priority batch jobs run under a 40 W cap:
//
//   phase 1 — space sharing: the priority policy starves all four LP jobs
//             (no residual power for four extra cores);
//   phase 2 — consolidation: the operator packs the four LP jobs onto ONE
//             core as a TimeSharedCore with equal CPU shares, costing only
//             a single minimum-P-state core of power.
//
// The LP jobs go from zero progress to a quarter-share each of one slow
// core — while the HP shards keep their frequency.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/lp_timeslicing

#include <cstdio>
#include <memory>
#include <vector>

#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/cpusim/timeshare.h"
#include "src/msr/msr.h"
#include "src/policy/daemon.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/workload.h"

int main() {
  using namespace papd;

  const PlatformSpec spec = SkylakeXeon4114();
  Package pkg(spec);
  MsrFile msr(&pkg);

  // High-priority shards on cores 0-2.
  std::vector<std::unique_ptr<Process>> hp;
  std::vector<ManagedApp> apps;
  for (int c = 0; c < 3; c++) {
    hp.push_back(std::make_unique<Process>(GetProfile("cactusBSSN"), 1 + c));
    pkg.AttachWork(c, hp.back().get());
    apps.push_back(ManagedApp{.name = "cactusBSSN", .cpu = c, .high_priority = true});
  }
  // Low-priority batch jobs, initially pinned to cores 3-6 (space sharing).
  const std::vector<std::string> lp_names = {"gcc", "leela", "deepsjeng", "perlbench"};
  std::vector<std::unique_ptr<Process>> lp;
  for (int i = 0; i < 4; i++) {
    lp.push_back(std::make_unique<Process>(GetProfile(lp_names[static_cast<size_t>(i)]),
                                           10 + i));
    pkg.AttachWork(3 + i, lp.back().get());
    apps.push_back(
        ManagedApp{.name = lp_names[static_cast<size_t>(i)], .cpu = 3 + i,
                   .high_priority = false});
  }

  DaemonConfig dcfg;
  dcfg.kind = PolicyKind::kPriority;
  dcfg.power_limit_w = Watts{40.0};
  PowerDaemon daemon(&msr, apps, dcfg);
  daemon.Start();

  Simulator sim(&pkg);
  sim.AddPeriodic(Seconds{1.0}, [&daemon](Seconds) { daemon.Step(); });

  // --- Phase 1: space sharing --------------------------------------------
  sim.Run(Seconds{60.0});
  std::printf("phase 1 (space sharing, 40 W): pkg %.1f W\n",
              daemon.history().back().sample.pkg_w.value());
  std::vector<double> instr_phase1;
  for (int i = 0; i < 4; i++) {
    instr_phase1.push_back(lp[static_cast<size_t>(i)]->instructions_retired());
    std::printf("  LP %-10s core %d: %s, %6.2f Ginstr total\n",
                lp_names[static_cast<size_t>(i)].c_str(), 3 + i,
                msr.CoreOnline(3 + i) ? "running" : "starved (core offline)",
                instr_phase1.back() / 1e9);
  }

  // --- Phase 2: consolidate the starved LP jobs on core 3 -----------------
  // The operator detaches the four batch jobs and re-attaches them as one
  // time-shared occupant of core 3 with equal CPU shares at the minimum
  // P-state, then hands the daemon an updated app list (3 HP apps + one
  // "batch" slot with the standard minimum guarantee).
  for (int i = 0; i < 4; i++) {
    pkg.DetachWork(3 + i);
    msr.SetCoreOnline(3 + i, true);
    msr.WritePerfTargetMhz(3 + i, spec.min_mhz);
  }
  std::vector<TimeSharedCore::Member> members;
  for (int i = 0; i < 4; i++) {
    members.push_back({.work = lp[static_cast<size_t>(i)].get(), .residency = 0.25});
  }
  TimeSharedCore batch(std::move(members));
  pkg.AttachWork(3, &batch);
  for (int c = 4; c < 7; c++) {
    msr.SetCoreOnline(c, false);  // The freed cores go to deep sleep.
  }
  std::vector<ManagedApp> apps2(apps.begin(), apps.begin() + 3);
  apps2.push_back(ManagedApp{.name = "batch(x4)", .cpu = 3, .high_priority = false});
  DaemonConfig dcfg2 = dcfg;
  dcfg2.priority.starve_lp = false;  // The consolidated slot keeps min P-state.
  PowerDaemon daemon2(&msr, apps2, dcfg2);
  daemon2.Start();
  Simulator sim2(&pkg);
  sim2.AddPeriodic(Seconds{1.0}, [&daemon2](Seconds) { daemon2.Step(); });
  sim2.Run(Seconds{60.0});

  std::printf("\nphase 2 (LP jobs time-sliced on core 3, 40 W): pkg %.1f W\n",
              daemon2.history().back().sample.pkg_w.value());
  const auto& rec = daemon2.history().back();
  std::printf("  HP cores at %4.0f MHz (was %4.0f at phase 1 end)\n",
              rec.sample.cores[0].active_mhz.value(),
              daemon.history().back().sample.cores[0].active_mhz.value());
  for (int i = 0; i < 4; i++) {
    const double delta =
        lp[static_cast<size_t>(i)]->instructions_retired() - instr_phase1[static_cast<size_t>(i)];
    std::printf("  LP %-10s: +%5.2f Ginstr this phase (%s)\n",
                lp_names[static_cast<size_t>(i)].c_str(), delta / 1e9,
                delta > 0 ? "progressing" : "still starved");
  }
  std::printf(
      "\nConsolidation turns four starved batch jobs into four slowly progressing\n"
      "ones for the price of one minimum-P-state core, without touching the\n"
      "high-priority shards' frequency.\n");
  return 0;
}
