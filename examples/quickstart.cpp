// Quickstart: differential power delivery in ~60 lines.
//
// Builds the simulated Skylake package, pins two SPEC-like applications to
// cores, and runs the frequency-shares policy daemon under a tight 22 W
// package limit.  The budget cannot run both cores fast, so the high-share
// app (leela, 80 shares) keeps most of its performance while the low-share
// app (cactusBSSN, 20 shares) is throttled toward the minimum P-state —
// all the while the package stays at the limit.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/msr/msr.h"
#include "src/policy/daemon.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/workload.h"

int main() {
  using namespace papd;

  // 1. The platform: a simulated Intel Xeon SP 4114 (10 cores, per-core
  //    DVFS, RAPL).  Ryzen1700X() works identically.
  Package package(SkylakeXeon4114());
  MsrFile msr(&package);

  // 2. The workloads: leela (low demand) on core 0, cactusBSSN (high
  //    demand) on core 1.  Process loops a calibrated SPEC CPU2017 profile.
  Process leela(GetProfile("leela"), /*seed=*/1);
  Process cactus(GetProfile("cactusBSSN"), /*seed=*/2);
  package.AttachWork(0, &leela);
  package.AttachWork(1, &cactus);

  // 3. The policy: frequency shares, 80/20, under a 22 W package limit.
  std::vector<ManagedApp> apps = {
      {.name = "leela", .cpu = 0, .shares = 80.0},
      {.name = "cactusBSSN", .cpu = 1, .shares = 20.0},
  };
  PowerDaemon daemon(&msr, apps,
                     {.kind = PolicyKind::kFrequencyShares, .power_limit_w = Watts{22.0}});
  daemon.Start();

  // 4. Run: the daemon samples turbostat-style telemetry once per second
  //    and reprograms P-states.
  Simulator sim(&package);
  sim.AddPeriodic(/*period_s=*/Seconds{1.0}, [&daemon](Seconds) { daemon.Step(); });
  sim.Run(/*duration_s=*/Seconds{30.0});

  // 5. Inspect the outcome through the daemon's telemetry history.
  const auto& record = daemon.history().back();
  std::printf("after %2.0f s under a 22 W limit:\n", sim.now());
  std::printf("  package power      %5.1f W\n", record.sample.pkg_w);
  for (const ManagedApp& app : apps) {
    const auto& core = record.sample.cores[static_cast<size_t>(app.cpu)];
    std::printf("  %-11s (%2.0f shares)  %4.0f MHz  %5.2f Ginstr/s\n", app.name.c_str(),
                app.shares, core.active_mhz, core.ips / 1e9);
  }
  return 0;
}
