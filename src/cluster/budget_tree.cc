#include "src/cluster/budget_tree.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iterator>
#include <utility>

#include "src/common/check.h"
#include "src/policy/min_funding.h"

namespace papd {

namespace {

// Handler table for ClusterFaultKind — the registry the papd_lint
// registry-completeness rule checks against the enum: every enumerator in
// budget_tree.h must have a row here.
struct ClusterFaultHandler {
  ClusterFaultKind kind;
  const char* name;
};

constexpr ClusterFaultHandler kClusterFaultHandlers[] = {
    {ClusterFaultKind::kTelemetryStale, "telemetry-stale"},
    {ClusterFaultKind::kBreakerTrip, "breaker-trip"},
};

static_assert(std::size(kClusterFaultHandlers) == kNumClusterFaultKinds,
              "every ClusterFaultKind needs a handler row");

bool FaultActive(const ClusterFault& fault, int64_t period) {
  return period >= fault.start_period && period < fault.start_period + fault.periods;
}

}  // namespace

const char* ClusterFaultKindName(ClusterFaultKind kind) {
  for (const ClusterFaultHandler& handler : kClusterFaultHandlers) {
    if (handler.kind == kind) {
      return handler.name;
    }
  }
  return "?";
}

struct BudgetTree::Node {
  std::string path;
  int parent = -1;
  int level = 0;
  std::vector<int> children;
  double shares = 1.0;
  int leaf_count = 0;  // Leaves in this node's subtree (1 for a leaf).

  // Effective bounds (bubbled up at construction; see DeriveBounds).
  Watts floor_w{0.0};
  Watts ceiling_w{0.0};

  std::unique_ptr<SocketStack> stack;  // Leaves only.
  const RackSocketConfig* socket_cfg = nullptr;
  const BudgetNodeConfig* cfg = nullptr;

  Watts grant_w{0.0};
  Watts measured_w{0.0};
  Watts reported_w{0.0};
  Watts last_good_w{0.0};
  int stale_streak = 0;
  bool stale = false;
  bool breaker = false;
};

void BudgetTree::Flatten(const BudgetNodeConfig& cfg, int parent, int level) {
  const int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  Node& node = nodes_.back();
  node.path = parent < 0 ? cfg.name : nodes_[static_cast<size_t>(parent)].path + "/" + cfg.name;
  node.parent = parent;
  node.level = level;
  node.shares = cfg.shares;
  node.cfg = &cfg;
  num_levels_ = std::max(num_levels_, level + 1);
  if (parent >= 0) {
    nodes_[static_cast<size_t>(parent)].children.push_back(index);
  }
  if (cfg.children.empty()) {
    PAPD_CHECK(cfg.socket.has_value()) << " leaf node " << node.path << " has no socket config";
    node.socket_cfg = &*cfg.socket;
    leaves_.push_back(index);
  } else {
    for (const BudgetNodeConfig& child : cfg.children) {
      // Recursion may reallocate nodes_; `node` is not used past here.
      Flatten(child, index, level + 1);
    }
  }
}

void BudgetTree::DeriveBounds() {
  // Pre-order flattening puts every child after its parent, so one reverse
  // pass sees all children before the node they roll up into.
  for (size_t k = nodes_.size(); k-- > 0;) {
    Node& node = nodes_[k];
    Watts floor{0.0};
    Watts ceiling{0.0};
    if (node.children.empty()) {
      ValidateSocketBudgetBounds(*node.socket_cfg);
      floor = SocketFloorW(*node.socket_cfg);
      ceiling = SocketCeilingW(*node.socket_cfg);
      node.leaf_count = 1;
    } else {
      for (int c : node.children) {
        floor += nodes_[static_cast<size_t>(c)].floor_w;
        ceiling += nodes_[static_cast<size_t>(c)].ceiling_w;
        node.leaf_count += nodes_[static_cast<size_t>(c)].leaf_count;
      }
    }
    // Configured bounds tighten the derived ones: floors only rise (so a
    // node's grant always covers its children's minimums — the structural
    // basis of the cap invariant), ceilings only drop.
    node.floor_w = std::max(node.cfg->min_budget_w, floor);
    node.ceiling_w =
        node.cfg->max_budget_w > Watts{0.0} ? std::min(node.cfg->max_budget_w, ceiling) : ceiling;
    PAPD_CHECK_LE(node.floor_w, node.ceiling_w)
        << " budget bounds inverted at tree node " << node.path
        << "; raise max_budget_w or lower min_budget_w";
  }
}

BudgetTree::BudgetTree(BudgetTreeConfig config) : config_(std::move(config)) {
  Flatten(config_.root, /*parent=*/-1, /*level=*/0);
  PAPD_CHECK(!leaves_.empty());
  PAPD_CHECK_LT(nodes_.size(), size_t{1} << 15);  // Shards are int16_t.
  DeriveBounds();

  for (const ClusterFault& fault : config_.faults) {
    const int node = FindNode(fault.node_path);
    PAPD_CHECK_GE(node, 0) << " cluster fault targets unknown node " << fault.node_path;
    PAPD_CHECK_GE(fault.start_period, 0);
    PAPD_CHECK_GE(fault.periods, 1);
    fault_nodes_.push_back(node);
  }

  // Initial top-down split — pure shares between floors and ceilings, no
  // measurements yet — so every leaf daemon starts under its real grant.
  Arbitrate(/*initial=*/true);
  for (int leaf : leaves_) {
    Node& node = nodes_[static_cast<size_t>(leaf)];
    node.stack = std::make_unique<SocketStack>(*node.socket_cfg, config_.control_period_s,
                                               config_.tick_s, node.grant_w, config_.obs,
                                               static_cast<int16_t>(leaf), config_.tick);
  }
}

BudgetTree::~BudgetTree() = default;

int BudgetTree::num_nodes() const { return static_cast<int>(nodes_.size()); }

const std::string& BudgetTree::node_path(int node) const {
  return nodes_[static_cast<size_t>(node)].path;
}
int BudgetTree::parent(int node) const { return nodes_[static_cast<size_t>(node)].parent; }
int BudgetTree::level(int node) const { return nodes_[static_cast<size_t>(node)].level; }
const std::vector<int>& BudgetTree::children(int node) const {
  return nodes_[static_cast<size_t>(node)].children;
}
bool BudgetTree::is_leaf(int node) const {
  return nodes_[static_cast<size_t>(node)].children.empty();
}

int BudgetTree::FindNode(const std::string& path) const {
  for (size_t i = 0; i < nodes_.size(); i++) {
    if (nodes_[i].path == path) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Watts BudgetTree::grant_w(int node) const { return nodes_[static_cast<size_t>(node)].grant_w; }
Watts BudgetTree::measured_w(int node) const {
  return nodes_[static_cast<size_t>(node)].measured_w;
}
Watts BudgetTree::reported_w(int node) const {
  return nodes_[static_cast<size_t>(node)].reported_w;
}
Watts BudgetTree::floor_w(int node) const { return nodes_[static_cast<size_t>(node)].floor_w; }
Watts BudgetTree::ceiling_w(int node) const {
  return nodes_[static_cast<size_t>(node)].ceiling_w;
}
int BudgetTree::stale_streak(int node) const {
  return nodes_[static_cast<size_t>(node)].stale_streak;
}
bool BudgetTree::breaker_tripped(int node) const {
  return nodes_[static_cast<size_t>(node)].breaker;
}

Watts BudgetTree::grant_sum_w(int node) const {
  Watts sum{0.0};
  for (int c : nodes_[static_cast<size_t>(node)].children) {
    sum += nodes_[static_cast<size_t>(c)].grant_w;
  }
  return sum;
}

Watts BudgetTree::max_grant_overrun_w() const {
  Watts worst{0.0};
  for (size_t i = 0; i < nodes_.size(); i++) {
    if (nodes_[i].children.empty()) {
      continue;
    }
    const Watts slack{grant_sum_w(static_cast<int>(i)) - nodes_[i].grant_w};
    worst = std::max(worst, slack);
  }
  return worst;
}

Package& BudgetTree::package(int node) {
  Node& n = nodes_[static_cast<size_t>(node)];
  PAPD_CHECK(n.stack != nullptr) << " node " << n.path << " is not a leaf";
  return n.stack->pkg;
}

const PowerDaemon& BudgetTree::daemon(int node) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  PAPD_CHECK(n.stack != nullptr) << " node " << n.path << " is not a leaf";
  return *n.stack->daemon;
}

Seconds BudgetTree::now() const {
  return nodes_[static_cast<size_t>(leaves_.front())].stack->pkg.now();
}

Watts BudgetTree::EffectiveCeiling(int node, bool use_demand) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  if (n.breaker) {
    // Breaker tripped: everything above the guaranteed minimums is revoked.
    // Feasible by construction — the floor covers the subtree's floors.
    return n.floor_w;
  }
  Watts ceiling = n.ceiling_w;
  if (use_demand && config_.arbiter == RackArbiterKind::kDemand) {
    // Claim only slightly more than the (ladder-filtered) subtree draw, so
    // idle subtrees release headroom; the +2 W/socket matches what a flat
    // per-rack demand arbiter would claim for the same sockets.
    const Watts demand{n.reported_w * 1.10 + Watts{2.0} * static_cast<double>(n.leaf_count)};
    ceiling = std::clamp(demand, n.floor_w, ceiling);
  }
  return ceiling;
}

void BudgetTree::Arbitrate(bool initial) {
  // Root: clamp the cluster budget into the root's effective range.  (A
  // budget below the root floor grants the floor — minimums are honored
  // over the cap, exactly like DistributeProportional's min_sum clamp.)
  const bool use_demand = !initial;
  Node& root = nodes_.front();
  root.grant_w = std::clamp(config_.budget_w, root.floor_w, EffectiveCeiling(0, use_demand));

  // Pre-order: every parent's grant is final before its children split it.
  for (size_t i = 0; i < nodes_.size(); i++) {
    Node& node = nodes_[i];
    if (!node.children.empty()) {
      std::vector<ShareRequest> req(node.children.size());
      for (size_t k = 0; k < node.children.size(); k++) {
        const Node& child = nodes_[static_cast<size_t>(node.children[k])];
        req[k] = ShareRequest{
            .shares = child.shares,
            .minimum = AsResourceUnits(child.floor_w),
            .maximum = AsResourceUnits(EffectiveCeiling(node.children[k], use_demand))};
      }
      const std::vector<ResourceUnits> split =
          DistributeProportional(AsResourceUnits(node.grant_w), req);
      for (size_t k = 0; k < node.children.size(); k++) {
        nodes_[static_cast<size_t>(node.children[k])].grant_w = Watts{split[k]};
      }
      // The cap invariant, enforced at every level of every arbitration:
      // the split can undershoot the grant (ceilings bind) but never
      // overshoot it (the grant covers the floors, so min_sum can't bind).
      PAPD_CHECK_LE(grant_sum_w(static_cast<int>(i)), node.grant_w + Watts{1e-6})
          << " child grants exceed parent grant at " << node.path;
    }
    if (!initial) {
      if (node.stack != nullptr) {
        node.stack->daemon->SetPowerLimit(node.grant_w);
      }
      if (config_.obs != nullptr) {
        obs::TraceEvent event;
        event.t = now();
        event.type = obs::TraceEventType::kClusterGrant;
        event.shard = static_cast<int16_t>(i);
        event.index = static_cast<int32_t>(i);
        event.code = node.level;
        event.a = obs::ToPayload(node.grant_w);
        event.b = obs::ToPayload(node.reported_w);
        config_.obs->OnEvent(event);
      }
    }
  }
}

void BudgetTree::RunFaultLadder() {
  // Which nodes are directly faulted this period?
  std::vector<uint8_t> stale_here(nodes_.size(), 0);
  std::vector<uint8_t> breaker_here(nodes_.size(), 0);
  for (size_t f = 0; f < config_.faults.size(); f++) {
    if (!FaultActive(config_.faults[f], period_)) {
      continue;
    }
    const size_t node = static_cast<size_t>(fault_nodes_[f]);
    switch (config_.faults[f].kind) {
      case ClusterFaultKind::kTelemetryStale:
        stale_here[node] = 1;
        break;
      case ClusterFaultKind::kBreakerTrip:
        breaker_here[node] = 1;
        break;
    }
  }

  // Forward pass (parents first): staleness covers the whole subtree — a
  // dead rack aggregator blinds the arbiter to every socket beneath it.
  for (size_t i = 0; i < nodes_.size(); i++) {
    Node& node = nodes_[i];
    node.breaker = breaker_here[i] != 0;
    node.stale = stale_here[i] != 0 ||
                 (node.parent >= 0 && nodes_[static_cast<size_t>(node.parent)].stale);
    if (!node.stale) {
      node.stale_streak = 0;
      node.last_good_w = node.measured_w;
      node.reported_w = node.measured_w;
      continue;
    }
    // The daemon's ladder, mirrored: kHold (trust the last-good value for a
    // bounded number of periods), then kFallback (decay geometrically
    // toward the floor, so a frozen sensor cannot hold a high claim).
    node.stale_streak++;
    if (node.stale_streak <= config_.stale_hold_periods) {
      node.reported_w = node.last_good_w;
    } else {
      const double decay =
          std::pow(config_.stale_decay, node.stale_streak - config_.stale_hold_periods);
      node.reported_w = std::max(node.floor_w, node.last_good_w * decay);
    }
  }
}

void BudgetTree::Step(ThreadPool* pool) {
  const size_t num_leaves = leaves_.size();
  if (pool != nullptr) {
    pool->ParallelFor(num_leaves, [this](size_t k) {
      nodes_[static_cast<size_t>(leaves_[k])].stack->AdvancePeriod(config_.control_period_s);
    });
  } else {
    for (size_t k = 0; k < num_leaves; k++) {
      nodes_[static_cast<size_t>(leaves_[k])].stack->AdvancePeriod(config_.control_period_s);
    }
  }

  // Everything below is the tree's control plane; time it separately from
  // the (dominant) leaf simulation cost.
  const auto wall_start = std::chrono::steady_clock::now();

  // Measured power aggregates bottom-up (children flattened after parents,
  // so the reverse pass sees leaves first).
  for (size_t k = nodes_.size(); k-- > 0;) {
    Node& node = nodes_[k];
    if (node.children.empty()) {
      node.measured_w = node.stack->last_measured_w;
    } else {
      node.measured_w = Watts{0.0};
      for (int c : node.children) {
        node.measured_w += nodes_[static_cast<size_t>(c)].measured_w;
      }
    }
  }

  RunFaultLadder();

  PeriodRecord record;
  record.end_s = now();
  record.grants_w.reserve(nodes_.size());
  record.measured_w.reserve(nodes_.size());
  record.reported_w.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    record.grants_w.push_back(node.grant_w);
    record.measured_w.push_back(node.measured_w);
    record.reported_w.push_back(node.reported_w);
  }
  history_.push_back(std::move(record));

  Arbitrate(/*initial=*/false);
  last_arbitrate_wall_s_ = Seconds{
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count()};
  period_++;
}

BudgetTreeResult RunBudgetTree(const BudgetTreeConfig& config, Seconds warmup_s,
                               Seconds measure_s, ThreadPool* pool) {
  BudgetTree tree(config);
  const auto periods = [&](Seconds span) {
    return static_cast<int>(span / config.control_period_s + 0.5);
  };
  for (int p = 0; p < periods(warmup_s); p++) {
    tree.Step(pool);
  }

  BudgetTreeResult result;
  const int measure_periods = std::max(1, periods(measure_s));
  const Seconds start_s{tree.now()};
  // Grants in force when the window opens, and after every arbitration
  // inside it — including the one closing the final period.
  result.max_grant_overrun_w = tree.max_grant_overrun_w();
  for (int p = 0; p < measure_periods; p++) {
    tree.Step(pool);
    result.max_grant_overrun_w = std::max(result.max_grant_overrun_w, tree.max_grant_overrun_w());
    result.avg_root_w += tree.measured_w(0);
    result.avg_arbiter_wall_s += tree.last_arbitrate_wall_s();
  }
  result.avg_root_w /= measure_periods;
  result.avg_arbiter_wall_s /= measure_periods;
  result.measured_s = tree.now() - start_s;
  return result;
}

BudgetTreeConfig MakeUniformCluster(int rows, int racks_per_row, int sockets_per_rack,
                                    const RackSocketConfig& socket_proto, Watts budget_w) {
  PAPD_CHECK_GE(rows, 1);
  PAPD_CHECK_GE(racks_per_row, 1);
  PAPD_CHECK_GE(sockets_per_rack, 1);
  BudgetTreeConfig config;
  config.budget_w = budget_w;
  config.root.name = "dc";
  int leaf = 0;
  for (int r = 0; r < rows; r++) {
    BudgetNodeConfig row;
    row.name = "row" + std::to_string(r);
    for (int k = 0; k < racks_per_row; k++) {
      BudgetNodeConfig rack;
      rack.name = "rack" + std::to_string(k);
      for (int s = 0; s < sockets_per_rack; s++) {
        BudgetNodeConfig socket;
        socket.name = "socket" + std::to_string(s);
        socket.socket = socket_proto;
        // Decorrelate the cloned workloads: same mix, different phase.
        socket.socket->seed = socket_proto.seed + 7919ULL * static_cast<uint64_t>(leaf++);
        rack.children.push_back(std::move(socket));
      }
      row.children.push_back(std::move(rack));
    }
    config.root.children.push_back(std::move(row));
  }
  return config;
}

}  // namespace papd
