#include "src/cluster/budget_tree.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iterator>
#include <unordered_map>
#include <utility>

#include "src/common/check.h"
#include "src/policy/invariants.h"
#include "src/policy/min_funding.h"

namespace papd {

namespace {

// Handler table for ClusterFaultKind — the registry the papd_lint
// registry-completeness rule checks against the enum: every enumerator in
// budget_tree.h must have a row here.
struct ClusterFaultHandler {
  ClusterFaultKind kind;
  const char* name;
};

constexpr ClusterFaultHandler kClusterFaultHandlers[] = {
    {ClusterFaultKind::kTelemetryStale, "telemetry-stale"},
    {ClusterFaultKind::kBreakerTrip, "breaker-trip"},
};

static_assert(std::size(kClusterFaultHandlers) == kNumClusterFaultKinds,
              "every ClusterFaultKind needs a handler row");

bool FaultActive(const ClusterFault& fault, int64_t period) {
  return period >= fault.start_period && period < fault.start_period + fault.periods;
}

// Bitwise grant comparison for replica divergence checks: memoization must
// resync on *any* representational change, so this is memcmp, not ==, and
// is immune to -0.0 and NaN surprises.
bool SameBits(Watts a, Watts b) { return std::memcmp(&a, &b, sizeof a) == 0; }

}  // namespace

const char* ClusterFaultKindName(ClusterFaultKind kind) {
  for (const ClusterFaultHandler& handler : kClusterFaultHandlers) {
    if (handler.kind == kind) {
      return handler.name;
    }
  }
  return "?";
}

struct BudgetTree::Node {
  std::string path;
  int parent = -1;
  int level = 0;
  std::vector<int> children;
  double shares = 1.0;
  int leaf_count = 0;  // Leaves in this node's subtree (1 for a leaf).

  // Effective bounds (bubbled up at construction; see DeriveBounds).
  Watts floor_w{0.0};
  Watts ceiling_w{0.0};

  std::unique_ptr<SocketStack> stack;  // Leaves only.
  const RackSocketConfig* socket_cfg = nullptr;
  const BudgetNodeConfig* cfg = nullptr;

  Watts grant_w{0.0};
  Watts measured_w{0.0};
  Watts reported_w{0.0};
  Watts last_good_w{0.0};
  int stale_streak = 0;
  bool stale = false;
  bool breaker = false;
};

void BudgetTree::Flatten(const BudgetNodeConfig& cfg, int parent, int level) {
  const int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  Node& node = nodes_.back();
  node.path = parent < 0 ? cfg.name : nodes_[static_cast<size_t>(parent)].path + "/" + cfg.name;
  node.parent = parent;
  node.level = level;
  node.shares = cfg.shares;
  node.cfg = &cfg;
  num_levels_ = std::max(num_levels_, level + 1);
  if (parent >= 0) {
    nodes_[static_cast<size_t>(parent)].children.push_back(index);
  }
  if (cfg.children.empty()) {
    PAPD_CHECK(cfg.socket.has_value()) << " leaf node " << node.path << " has no socket config";
    node.socket_cfg = &*cfg.socket;
    leaves_.push_back(index);
  } else {
    for (const BudgetNodeConfig& child : cfg.children) {
      // Recursion may reallocate nodes_; `node` is not used past here.
      Flatten(child, index, level + 1);
    }
  }
}

void BudgetTree::DeriveBounds() {
  // Pre-order flattening puts every child after its parent, so one reverse
  // pass sees all children before the node they roll up into.
  for (size_t k = nodes_.size(); k-- > 0;) {
    Node& node = nodes_[k];
    Watts floor{0.0};
    Watts ceiling{0.0};
    if (node.children.empty()) {
      ValidateSocketBudgetBounds(*node.socket_cfg);
      floor = SocketFloorW(*node.socket_cfg);
      ceiling = SocketCeilingW(*node.socket_cfg);
      node.leaf_count = 1;
    } else {
      for (int c : node.children) {
        floor += nodes_[static_cast<size_t>(c)].floor_w;
        ceiling += nodes_[static_cast<size_t>(c)].ceiling_w;
        node.leaf_count += nodes_[static_cast<size_t>(c)].leaf_count;
      }
    }
    // Configured bounds tighten the derived ones: floors only rise (so a
    // node's grant always covers its children's minimums — the structural
    // basis of the cap invariant), ceilings only drop.
    node.floor_w = std::max(node.cfg->min_budget_w, floor);
    node.ceiling_w =
        node.cfg->max_budget_w > Watts{0.0} ? std::min(node.cfg->max_budget_w, ceiling) : ceiling;
    PAPD_CHECK_LE(node.floor_w, node.ceiling_w)
        << " budget bounds inverted at tree node " << node.path
        << "; raise max_budget_w or lower min_budget_w";
  }
}

BudgetTree::BudgetTree(BudgetTreeConfig config) : config_(std::move(config)) {
  Flatten(config_.root, /*parent=*/-1, /*level=*/0);
  PAPD_CHECK(!leaves_.empty());
  PAPD_CHECK_LT(nodes_.size(), size_t{1} << 15);  // Shards are int16_t.
  DeriveBounds();
  share_bias_.assign(nodes_.size(), 1.0);

  for (const ClusterFault& fault : config_.faults) {
    const int node = FindNode(fault.node_path);
    PAPD_CHECK_GE(node, 0) << " cluster fault targets unknown node " << fault.node_path;
    PAPD_CHECK_GE(fault.start_period, 0);
    PAPD_CHECK_GE(fault.periods, 1);
    fault_nodes_.push_back(node);
  }

  // Initial top-down split — pure shares between floors and ceilings, no
  // measurements yet — so every leaf daemon starts under its real grant.
  Arbitrate(/*initial=*/true);
  BuildReplicaClasses();
  for (int leaf : leaves_) {
    Node& node = nodes_[static_cast<size_t>(leaf)];
    const int cls = node_class_[static_cast<size_t>(leaf)];
    if (cls >= 0 && classes_[static_cast<size_t>(cls)].rep != leaf) {
      continue;  // Memoized replica: no stack until its grant diverges.
    }
    node.stack = std::make_unique<SocketStack>(*node.socket_cfg, config_.control_period_s,
                                               config_.tick_s, node.grant_w, config_.obs,
                                               static_cast<int16_t>(leaf), config_.tick);
  }
  // now() and measurement fan-out rely on the first leaf being live; the
  // first leaf in pre-order is the representative of its own class.
  PAPD_CHECK(nodes_[static_cast<size_t>(leaves_.front())].stack != nullptr);

  leaf_live_.assign(leaves_.size(), 0);
  for (size_t k = 0; k < leaves_.size(); k++) {
    leaf_live_[k] = nodes_[static_cast<size_t>(leaves_[k])].stack != nullptr ? 1 : 0;
  }

  // Pre-size the hoisted arbitration scratch so even the first Step's
  // control plane never touches the heap.
  size_t max_children = 0;
  for (const Node& node : nodes_) {
    max_children = std::max(max_children, node.children.size());
  }
  scratch_req_.reserve(max_children);
  scratch_split_.alloc.reserve(max_children);
  scratch_split_.pinned.reserve(max_children);
  scratch_stale_here_.reserve(nodes_.size());
  scratch_breaker_here_.reserve(nodes_.size());
}

void BudgetTree::BuildReplicaClasses() {
  node_class_.assign(nodes_.size(), -1);
  if (!config_.tick.memoize_replicas) {
    return;
  }
  // Key: the full socket-configuration hash plus the initial grant bits.
  // Two leaves with equal keys run bit-identical simulations for as long as
  // their grants stay bitwise equal, so one representative (the lowest
  // pre-order member) can stand in for the whole class each period.
  std::unordered_map<uint64_t, int> by_key;
  for (int leaf : leaves_) {
    const Node& node = nodes_[static_cast<size_t>(leaf)];
    uint64_t key = HashSocketConfig(*node.socket_cfg);
    const double grant = AsResourceUnits(node.grant_w);
    uint64_t grant_bits = 0;
    static_assert(sizeof grant_bits == sizeof grant);
    std::memcpy(&grant_bits, &grant, sizeof grant_bits);
    key = (key ^ grant_bits) * 1099511628211ULL;  // FNV-1a fold.
    const auto [it, fresh] = by_key.emplace(key, static_cast<int>(classes_.size()));
    if (fresh) {
      classes_.emplace_back();
      classes_.back().rep = leaf;
      classes_.back().grant_log.reserve(4);
    }
    classes_[static_cast<size_t>(it->second)].members.push_back(leaf);
    node_class_[static_cast<size_t>(leaf)] = it->second;
  }
}

BudgetTree::~BudgetTree() = default;

int BudgetTree::num_nodes() const { return static_cast<int>(nodes_.size()); }

const std::string& BudgetTree::node_path(int node) const {
  return nodes_[static_cast<size_t>(node)].path;
}
int BudgetTree::parent(int node) const { return nodes_[static_cast<size_t>(node)].parent; }
int BudgetTree::level(int node) const { return nodes_[static_cast<size_t>(node)].level; }
const std::vector<int>& BudgetTree::children(int node) const {
  return nodes_[static_cast<size_t>(node)].children;
}
bool BudgetTree::is_leaf(int node) const {
  return nodes_[static_cast<size_t>(node)].children.empty();
}

int BudgetTree::FindNode(const std::string& path) const {
  for (size_t i = 0; i < nodes_.size(); i++) {
    if (nodes_[i].path == path) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Watts BudgetTree::grant_w(int node) const { return nodes_[static_cast<size_t>(node)].grant_w; }
Watts BudgetTree::measured_w(int node) const {
  return nodes_[static_cast<size_t>(node)].measured_w;
}
Watts BudgetTree::reported_w(int node) const {
  return nodes_[static_cast<size_t>(node)].reported_w;
}
Watts BudgetTree::floor_w(int node) const { return nodes_[static_cast<size_t>(node)].floor_w; }
Watts BudgetTree::ceiling_w(int node) const {
  return nodes_[static_cast<size_t>(node)].ceiling_w;
}
int BudgetTree::stale_streak(int node) const {
  return nodes_[static_cast<size_t>(node)].stale_streak;
}
bool BudgetTree::breaker_tripped(int node) const {
  return nodes_[static_cast<size_t>(node)].breaker;
}

Watts BudgetTree::grant_sum_w(int node) const {
  Watts sum{0.0};
  for (int c : nodes_[static_cast<size_t>(node)].children) {
    sum += nodes_[static_cast<size_t>(c)].grant_w;
  }
  return sum;
}

Watts BudgetTree::max_grant_overrun_w() const {
  Watts worst{0.0};
  for (size_t i = 0; i < nodes_.size(); i++) {
    if (nodes_[i].children.empty()) {
      continue;
    }
    const Watts slack{grant_sum_w(static_cast<int>(i)) - nodes_[i].grant_w};
    worst = std::max(worst, slack);
  }
  return worst;
}

Package& BudgetTree::package(int node) {
  Node& n = nodes_[static_cast<size_t>(node)];
  PAPD_CHECK(n.children.empty()) << " node " << n.path << " is not a leaf";
  MaterializeLeaf(node);  // No-op when already live.
  return n.stack->pkg;
}

SocketStack& BudgetTree::stack(int node) {
  Node& n = nodes_[static_cast<size_t>(node)];
  PAPD_CHECK(n.children.empty()) << " node " << n.path << " is not a leaf";
  MaterializeLeaf(node);  // No-op when already live.
  return *n.stack;
}

void BudgetTree::SetShareBias(const std::vector<double>& bias) {
  PAPD_CHECK_EQ(bias.size(), nodes_.size());
  for (const double b : bias) {
    PAPD_CHECK_GT(b, 0.0);
  }
  share_bias_ = bias;
}

const PowerDaemon& BudgetTree::daemon(int node) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  PAPD_CHECK(n.children.empty()) << " node " << n.path << " is not a leaf";
  // Materializing is a cache fill — replaying the representative's history
  // yields the exact state a live stack would hold — not an observable
  // state change, so the const_cast is sound.
  const_cast<BudgetTree*>(this)->MaterializeLeaf(node);
  return *n.stack->daemon;
}

Seconds BudgetTree::now() const {
  // The first leaf is always live (checked at construction).
  return nodes_[static_cast<size_t>(leaves_.front())].stack->pkg.now();
}

int BudgetTree::num_live_leaves() const {
  int live = 0;
  for (int leaf : leaves_) {
    live += nodes_[static_cast<size_t>(leaf)].stack != nullptr ? 1 : 0;
  }
  return live;
}

double BudgetTree::replica_hit_rate() const {
  if (total_leaf_periods_ == 0) {
    return 0.0;
  }
  return static_cast<double>(memo_leaf_periods_) / static_cast<double>(total_leaf_periods_);
}

void BudgetTree::MaterializeLeaf(int node) {
  Node& n = nodes_[static_cast<size_t>(node)];
  if (n.stack != nullptr) {
    return;
  }
  const int cls_index = node_class_[static_cast<size_t>(node)];
  PAPD_CHECK_GE(cls_index, 0) << " stackless leaf " << n.path << " has no replica class";
  const ReplicaClass& cls = classes_[static_cast<size_t>(cls_index)];
  // Reconstruct the replica by replaying the representative's grant
  // history.  Every completed period of this member ran under a grant that
  // matched the representative's bitwise (else it would have materialized
  // earlier), so a fresh stack constructed under the first logged grant and
  // stepped through the log is bit-identical to one that had been live from
  // construction.
  const Watts initial = cls.grant_log.empty() ? n.grant_w : cls.grant_log.front().grant_w;
  n.stack = std::make_unique<SocketStack>(*n.socket_cfg, config_.control_period_s, config_.tick_s,
                                          initial, config_.obs, static_cast<int16_t>(node),
                                          config_.tick);
  int64_t replayed = 0;
  for (const GrantRun& run : cls.grant_log) {
    for (int64_t p = 0; p < run.periods; p++, replayed++) {
      if (replayed > 0) {
        // Arbitrate() calls SetPowerLimit on every live leaf after every
        // period (even when unchanged); mirror that exactly so RAPL
        // reprogramming and its control-epoch bumps line up.
        n.stack->daemon->SetPowerLimit(run.grant_w);
      }
      n.stack->AdvancePeriod(config_.control_period_s);
    }
  }
  if (replayed > 0) {
    // The grant the last arbitration put in force for the upcoming period.
    n.stack->daemon->SetPowerLimit(n.grant_w);
  }
  for (size_t k = 0; k < leaves_.size(); k++) {
    if (leaves_[k] == node) {
      leaf_live_[k] = 1;
      break;
    }
  }
}

// PAPD_HOT — per period; the log append is amortized O(1) with no heap
// touch while grants hold (the run-length tail just extends).
void BudgetTree::PrepareMemoPeriod() {
  for (ReplicaClass& cls : classes_) {
    const Node& rep = nodes_[static_cast<size_t>(cls.rep)];
    // A member whose grant no longer matches the representative's bitwise
    // stops being a replica: replay the shared history into a live stack
    // before this period advances.
    for (size_t m = 1; m < cls.members.size(); m++) {
      Node& member = nodes_[static_cast<size_t>(cls.members[m])];
      if (member.stack == nullptr && !SameBits(member.grant_w, rep.grant_w)) {
        MaterializeLeaf(cls.members[m]);
      }
    }
    // Record the grant in force for the period about to run.
    if (!cls.grant_log.empty() && SameBits(cls.grant_log.back().grant_w, rep.grant_w)) {
      cls.grant_log.back().periods++;
    } else {
      cls.grant_log.push_back(GrantRun{rep.grant_w, 1});  // PAPD_HOT_ALLOW grant change (resync)
    }
  }
}

void BudgetTree::EnsureShardTeam(int threads) {
  const int want = std::max(1, std::min(threads, static_cast<int>(leaves_.size())));
  if (team_ != nullptr && team_->shards() == want) {
    return;
  }
  team_.reset();
  shards_.assign(static_cast<size_t>(want), ShardArena{});
  const size_t n = leaves_.size();
  for (int s = 0; s < want; s++) {
    // Static contiguous partition: leaves_ is in pre-order, so each shard
    // covers a topology-contiguous run of sockets (subtree locality).
    shards_[static_cast<size_t>(s)].begin = static_cast<int>(n * static_cast<size_t>(s) /
                                                             static_cast<size_t>(want));
    shards_[static_cast<size_t>(s)].end = static_cast<int>(n * (static_cast<size_t>(s) + 1) /
                                                           static_cast<size_t>(want));
  }
  team_ = std::make_unique<ShardTeam>(want, [this](int shard) {
    ShardArena& arena = shards_[static_cast<size_t>(shard)];
    for (int k = arena.begin; k < arena.end; k++) {
      if (leaf_live_[static_cast<size_t>(k)] != 0) {
        nodes_[static_cast<size_t>(leaves_[static_cast<size_t>(k)])].stack->AdvancePeriod(
            config_.control_period_s);
        arena.periods_advanced++;
      }
    }
  });
}

// PAPD_HOT — the steady-state fan-out reuses the persistent team; no tasks
// are enqueued and nothing is allocated.
void BudgetTree::AdvanceLiveLeaves(ThreadPool* pool) {
  const int threads = pool != nullptr ? pool->num_threads() : 1;
  if (threads <= 1 || leaves_.size() <= 1) {
    for (size_t k = 0; k < leaves_.size(); k++) {
      if (leaf_live_[k] != 0) {
        nodes_[static_cast<size_t>(leaves_[k])].stack->AdvancePeriod(config_.control_period_s);
      }
    }
    return;
  }
  EnsureShardTeam(threads);
  team_->RunOnce();
}

Watts BudgetTree::EffectiveCeiling(int node, bool use_demand) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  if (n.breaker) {
    // Breaker tripped: everything above the guaranteed minimums is revoked.
    // Feasible by construction — the floor covers the subtree's floors.
    return n.floor_w;
  }
  Watts ceiling = n.ceiling_w;
  if (use_demand && config_.arbiter == RackArbiterKind::kDemand) {
    // Claim only slightly more than the (ladder-filtered) subtree draw, so
    // idle subtrees release headroom; the +2 W/socket matches what a flat
    // per-rack demand arbiter would claim for the same sockets.
    const Watts demand{n.reported_w * 1.10 + Watts{2.0} * static_cast<double>(n.leaf_count)};
    ceiling = std::clamp(demand, n.floor_w, ceiling);
  }
  return ceiling;
}

// PAPD_HOT — runs at every node of every period; the request and split
// buffers are hoisted members so steady-state arbitration is heap-free.
void BudgetTree::Arbitrate(bool initial) {
  // Root: clamp the cluster budget into the root's effective range.  (A
  // budget below the root floor grants the floor — minimums are honored
  // over the cap, exactly like DistributeProportional's min_sum clamp.)
  const bool use_demand = !initial;
  Node& root = nodes_.front();
  root.grant_w = std::clamp(config_.budget_w, root.floor_w, EffectiveCeiling(0, use_demand));

  // SLO feedback biases proportions only; bounds stay configured, which is
  // why any bias vector preserves the cap invariant below.
  const bool biased = config_.arbiter == RackArbiterKind::kSloFeedback;

  // Pre-order: every parent's grant is final before its children split it.
  for (size_t i = 0; i < nodes_.size(); i++) {
    Node& node = nodes_[i];
    if (!node.children.empty()) {
      scratch_req_.assign(node.children.size(), ShareRequest{});
      for (size_t k = 0; k < node.children.size(); k++) {
        const size_t c = static_cast<size_t>(node.children[k]);
        const Node& child = nodes_[c];
        scratch_req_[k] = ShareRequest{
            .shares = biased ? child.shares * share_bias_[c] : child.shares,
            .minimum = AsResourceUnits(child.floor_w),
            .maximum = AsResourceUnits(EffectiveCeiling(node.children[k], use_demand))};
      }
      const std::vector<ResourceUnits>& split =
          DistributeProportional(AsResourceUnits(node.grant_w), scratch_req_, &scratch_split_);
      for (size_t k = 0; k < node.children.size(); k++) {
        nodes_[static_cast<size_t>(node.children[k])].grant_w = Watts{split[k]};
      }
      if (biased && config_.audit_biased_splits) {
        // PolicyAuditor's split post-conditions (termination + bounds) on
        // the biased split; allocation only on the abort path.
        const auto violations =  // PAPD_HOT_ALLOW: audit-only, empty when clean.
            AuditProportionalSplit(AsResourceUnits(node.grant_w), scratch_req_, split);
        PAPD_CHECK(violations.empty())
            << " biased split violates min-funding invariants at " << node.path << ": "
            << violations.front();
      }
      // The cap invariant, enforced at every level of every arbitration:
      // the split can undershoot the grant (ceilings bind) but never
      // overshoot it (the grant covers the floors, so min_sum can't bind).
      PAPD_CHECK_LE(grant_sum_w(static_cast<int>(i)), node.grant_w + Watts{1e-6})
          << " child grants exceed parent grant at " << node.path;
    }
    if (!initial) {
      if (node.stack != nullptr) {
        node.stack->daemon->SetPowerLimit(node.grant_w);
      }
      if (config_.obs != nullptr) {
        obs::TraceEvent event;
        event.t = now();
        event.type = obs::TraceEventType::kClusterGrant;
        event.shard = static_cast<int16_t>(i);
        event.index = static_cast<int32_t>(i);
        event.code = node.level;
        event.a = obs::ToPayload(node.grant_w);
        event.b = obs::ToPayload(node.reported_w);
        config_.obs->OnEvent(event);
      }
    }
  }
}

// PAPD_HOT — per period; the fault masks live in hoisted member scratch
// (assign() keeps capacity, pre-reserved at construction).
void BudgetTree::RunFaultLadder() {
  // Which nodes are directly faulted this period?
  scratch_stale_here_.assign(nodes_.size(), 0);
  scratch_breaker_here_.assign(nodes_.size(), 0);
  for (size_t f = 0; f < config_.faults.size(); f++) {
    if (!FaultActive(config_.faults[f], period_)) {
      continue;
    }
    const size_t node = static_cast<size_t>(fault_nodes_[f]);
    switch (config_.faults[f].kind) {
      case ClusterFaultKind::kTelemetryStale:
        scratch_stale_here_[node] = 1;
        break;
      case ClusterFaultKind::kBreakerTrip:
        scratch_breaker_here_[node] = 1;
        break;
    }
  }

  // Forward pass (parents first): staleness covers the whole subtree — a
  // dead rack aggregator blinds the arbiter to every socket beneath it.
  for (size_t i = 0; i < nodes_.size(); i++) {
    Node& node = nodes_[i];
    node.breaker = scratch_breaker_here_[i] != 0;
    node.stale = scratch_stale_here_[i] != 0 ||
                 (node.parent >= 0 && nodes_[static_cast<size_t>(node.parent)].stale);
    if (!node.stale) {
      node.stale_streak = 0;
      node.last_good_w = node.measured_w;
      node.reported_w = node.measured_w;
      continue;
    }
    // The daemon's ladder, mirrored: kHold (trust the last-good value for a
    // bounded number of periods), then kFallback (decay geometrically
    // toward the floor, so a frozen sensor cannot hold a high claim).
    node.stale_streak++;
    if (node.stale_streak <= config_.stale_hold_periods) {
      node.reported_w = node.last_good_w;
    } else {
      const double decay =
          std::pow(config_.stale_decay, node.stale_streak - config_.stale_hold_periods);
      node.reported_w = std::max(node.floor_w, node.last_good_w * decay);
    }
  }
}

void BudgetTree::RecordHistory() {
  PeriodRecord record;
  record.end_s = now();
  record.grants_w.reserve(nodes_.size());
  record.measured_w.reserve(nodes_.size());
  record.reported_w.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    record.grants_w.push_back(node.grant_w);
    record.measured_w.push_back(node.measured_w);
    record.reported_w.push_back(node.reported_w);
  }
  history_.push_back(std::move(record));
}

// PAPD_HOT — the 128k-core steady-state step must not touch the heap:
// replicas are served by fan-out, live leaves run on the persistent shard
// team, and the control plane below uses hoisted scratch throughout.
void BudgetTree::Step(ThreadPool* pool) {
  if (!classes_.empty()) {
    PrepareMemoPeriod();
  }
  AdvanceLiveLeaves(pool);
  total_leaf_periods_ += leaves_.size();

  // Everything below is the tree's control plane; time it separately from
  // the (dominant) leaf simulation cost.
  const auto wall_start = std::chrono::steady_clock::now();

  // Measured power aggregates bottom-up (children flattened after parents,
  // so the reverse pass sees leaves first).  A memoized replica reports its
  // representative's measurement — that stack already advanced this period,
  // so last_measured_w is current regardless of traversal order.
  for (size_t k = nodes_.size(); k-- > 0;) {
    Node& node = nodes_[k];
    if (node.children.empty()) {
      if (node.stack != nullptr) {
        node.measured_w = node.stack->last_measured_w;
      } else {
        const ReplicaClass& cls = classes_[static_cast<size_t>(node_class_[k])];
        node.measured_w = nodes_[static_cast<size_t>(cls.rep)].stack->last_measured_w;
        memo_leaf_periods_++;
      }
    } else {
      node.measured_w = Watts{0.0};
      for (int c : node.children) {
        node.measured_w += nodes_[static_cast<size_t>(c)].measured_w;
      }
    }
  }

  RunFaultLadder();

  if (config_.record_history) {
    RecordHistory();
  }

  Arbitrate(/*initial=*/false);
  last_arbitrate_wall_s_ = Seconds{
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count()};
  period_++;
}

BudgetTreeResult RunBudgetTree(const BudgetTreeConfig& config, Seconds warmup_s,
                               Seconds measure_s, ThreadPool* pool) {
  BudgetTree tree(config);
  const auto periods = [&](Seconds span) {
    return static_cast<int>(span / config.control_period_s + 0.5);
  };
  for (int p = 0; p < periods(warmup_s); p++) {
    tree.Step(pool);
  }

  BudgetTreeResult result;
  const int measure_periods = std::max(1, periods(measure_s));
  const Seconds start_s{tree.now()};
  // Grants in force when the window opens, and after every arbitration
  // inside it — including the one closing the final period.
  result.max_grant_overrun_w = tree.max_grant_overrun_w();
  for (int p = 0; p < measure_periods; p++) {
    tree.Step(pool);
    result.max_grant_overrun_w = std::max(result.max_grant_overrun_w, tree.max_grant_overrun_w());
    result.avg_root_w += tree.measured_w(0);
    result.avg_arbiter_wall_s += tree.last_arbitrate_wall_s();
  }
  result.avg_root_w /= measure_periods;
  result.avg_arbiter_wall_s /= measure_periods;
  result.measured_s = tree.now() - start_s;
  return result;
}

BudgetTreeConfig MakeUniformCluster(int rows, int racks_per_row, int sockets_per_rack,
                                    const RackSocketConfig& socket_proto, Watts budget_w,
                                    bool decorrelate_seeds) {
  PAPD_CHECK_GE(rows, 1);
  PAPD_CHECK_GE(racks_per_row, 1);
  PAPD_CHECK_GE(sockets_per_rack, 1);
  BudgetTreeConfig config;
  config.budget_w = budget_w;
  config.root.name = "dc";
  int leaf = 0;
  for (int r = 0; r < rows; r++) {
    BudgetNodeConfig row;
    row.name = "row" + std::to_string(r);
    for (int k = 0; k < racks_per_row; k++) {
      BudgetNodeConfig rack;
      rack.name = "rack" + std::to_string(k);
      for (int s = 0; s < sockets_per_rack; s++) {
        BudgetNodeConfig socket;
        socket.name = "socket" + std::to_string(s);
        socket.socket = socket_proto;
        if (decorrelate_seeds) {
          // Decorrelate the cloned workloads: same mix, different phase.
          socket.socket->seed = socket_proto.seed + 7919ULL * static_cast<uint64_t>(leaf);
        }
        leaf++;
        rack.children.push_back(std::move(socket));
      }
      row.children.push_back(std::move(rack));
    }
    config.root.children.push_back(std::move(row));
  }
  return config;
}

}  // namespace papd
