// Hierarchical power delivery: one budget, recursively split down a tree.
//
// The paper's min-funding share framework stops at a single socket, and the
// Rack layer stops at one flat rack.  Real deployments cap power at every
// level of the physical distribution hierarchy — breaker panels feed rows,
// rows feed racks, racks feed sockets — and FastCap-style cluster managers
// enforce a datacenter cap by re-splitting budgets hierarchically each
// period.  BudgetTree is that generalization: leaf nodes are the per-socket
// stacks a Rack runs (SocketStack), interior nodes (rack, row, datacenter)
// each run the *same* shares/demand min-funding arbiter over their
// children, and each control period
//
//   1. every leaf advances one period of simulated time (fanned out on the
//      ThreadPool; leaves share no mutable state, so parallel results are
//      bit-identical to serial);
//   2. measured power aggregates bottom-up (a node's measurement is the sum
//      of its children's), filtered through the telemetry fault ladder;
//   3. grants flow top-down — the root clamps the cluster budget into its
//      [floor, ceiling], every interior node splits its grant across its
//      children with DistributeProportional, and leaf grants land via the
//      existing PowerDaemon::SetPowerLimit runtime cap-change path.
//
// Cap invariant.  A node's effective floor is max(configured floor, sum of
// child floors) — floors bubble up at construction — so every node's grant
// covers its children's minimums and sum(child grants) <= parent grant at
// every level of every period, enforced by an always-on PAPD_CHECK in the
// arbiter and asserted again by tests/budget_tree_test.cc.
//
// Cluster faults.  Two failure modes from operating real clusters, both
// declared up front (like the MSR FaultPlan) and windowed in control
// periods:
//   - kTelemetryStale: a subtree's power telemetry stops updating.  The
//     arbiter mirrors the daemon's degradation ladder: hold the last-good
//     measurement for stale_hold_periods (kHold), then decay it
//     geometrically toward the subtree floor (kFallback) so a dead sensor
//     cannot pin a generous demand claim forever.
//   - kBreakerTrip: a node's breaker trips; its effective ceiling is
//     slashed to its floor for the fault window, revoking everything above
//     the guaranteed minimums (which stay feasible — floors bubbled up).

#ifndef SRC_CLUSTER_BUDGET_TREE_H_
#define SRC_CLUSTER_BUDGET_TREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cluster/socket_stack.h"
#include "src/common/thread_pool.h"
#include "src/common/units.h"
#include "src/obs/trace.h"
#include "src/policy/min_funding.h"

namespace papd {

// Cluster-level fault kinds.  Every enumerator must have a row in the
// kClusterFaultHandlers table in budget_tree.cc (papd_lint's
// registry-completeness rule enforces this).
enum class ClusterFaultKind : uint8_t {
  kTelemetryStale = 0,  // Subtree telemetry frozen; arbiter runs the ladder.
  kBreakerTrip,         // Node ceiling slashed to its floor.
};

inline constexpr int kNumClusterFaultKinds = 2;

const char* ClusterFaultKindName(ClusterFaultKind kind);

// One declared fault: `kind` applied to the node at `node_path` (see
// BudgetTree::FindNode) for arbitrations closing periods
// [start_period, start_period + periods).
struct ClusterFault {
  ClusterFaultKind kind = ClusterFaultKind::kTelemetryStale;
  std::string node_path;
  int64_t start_period = 0;
  int64_t periods = 1;
};

// One node of the budget tree.  Leaves (empty `children`) run a full
// SocketStack described by `socket`; interior nodes only arbitrate.
// min/max_budget_w of 0 derive bounds: a leaf's from its socket platform
// (SocketFloorW/SocketCeilingW), an interior node's from its children.
// Nonzero values tighten the derived bounds (floors can only rise, ceilings
// only drop); an inverted result aborts at construction.
struct BudgetNodeConfig {
  std::string name;
  // Arbiter share weight in the parent's split.
  double shares = 1.0;
  Watts min_budget_w{0.0};
  Watts max_budget_w{0.0};
  std::vector<BudgetNodeConfig> children;
  // Required for leaves (empty `children`), ignored for interior nodes.
  std::optional<RackSocketConfig> socket;
};

struct BudgetTreeConfig {
  BudgetNodeConfig root;
  // Cluster-wide budget granted to the root each period.
  Watts budget_w{800.0};
  Seconds control_period_s{1.0};
  RackArbiterKind arbiter = RackArbiterKind::kShares;
  Seconds tick_s{0.001};
  // Shared sink: leaf daemons emit shard-tagged per-period events, the
  // arbiter emits one kClusterGrant per node per period.  Shard = flat node
  // index, so every node gets its own track.  Must be thread-safe
  // (TraceRecorder is) when Step() is given a pool.
  ObsSink* obs = nullptr;
  TickOptions tick;
  std::vector<ClusterFault> faults;
  // Telemetry-stale ladder: hold the last-good measurement for this many
  // periods, then decay it by stale_decay per period toward the floor.
  int stale_hold_periods = 3;
  double stale_decay = 0.5;
  // Record a PeriodRecord per Step.  Off for the 100k-core bench: at 10^3+
  // nodes the per-period snapshot dominates the step's allocations.
  bool record_history = true;
  // Under kSloFeedback: post-audit every biased proportional split with
  // AuditProportionalSplit (the PolicyAuditor split checks), aborting on a
  // violation — the structural proof that biasing shares cannot break the
  // cap invariant.
  bool audit_biased_splits = true;
};

class BudgetTree {
 public:
  explicit BudgetTree(BudgetTreeConfig config);
  ~BudgetTree();

  BudgetTree(const BudgetTree&) = delete;
  BudgetTree& operator=(const BudgetTree&) = delete;

  // Advances every leaf one control period (in parallel when `pool` is
  // given, else serially — results bit-identical either way), aggregates
  // measurements up, runs the fault ladder, and re-arbitrates grants down.
  // A non-null pool only contributes its thread *count*: leaves run on a
  // persistent ShardTeam with static, topology-contiguous leaf->thread
  // partitions (built on first parallel Step; rebuilt only when the count
  // changes), so the steady-state step enqueues nothing and allocates
  // nothing.
  void Step(ThreadPool* pool = nullptr);

  // --- Topology (flat pre-order indexing; parent index < child index) ---
  int num_nodes() const;
  int num_leaves() const { return static_cast<int>(leaves_.size()); }
  const std::string& node_path(int node) const;
  int parent(int node) const;
  int level(int node) const;  // Root = 0.
  const std::vector<int>& children(int node) const;
  bool is_leaf(int node) const;
  int num_levels() const { return num_levels_; }
  // Flat index of the node with this '/'-joined path ("dc/row0/rack1"), or
  // -1 when absent.
  int FindNode(const std::string& path) const;

  // --- Per-node state (valid after construction / the last Step) ---
  Watts grant_w(int node) const;
  Watts measured_w(int node) const;  // Raw bottom-up aggregate.
  Watts reported_w(int node) const;  // After the telemetry fault ladder.
  Watts floor_w(int node) const;     // Effective (bubbled-up) floor.
  Watts ceiling_w(int node) const;   // Effective ceiling.
  int stale_streak(int node) const;
  bool breaker_tripped(int node) const;

  Watts grant_sum_w(int node) const;  // Sum of `node`'s children's grants.
  // Largest (sum of child grants) - (parent grant) across interior nodes,
  // floored at zero — the cap-invariant slack; ~0 always.
  Watts max_grant_overrun_w() const;

  // Leaf internals (aborts on interior nodes).  Under replica memoization a
  // memoized leaf is materialized first (its representative's grant history
  // is replayed into a fresh stack), so external mutation through these
  // accessors always touches a live, self-consistent socket.
  Package& package(int node);
  const PowerDaemon& daemon(int node) const;
  // The whole per-socket pipeline (Fleet reads the websearch service and
  // its latency samples through this).
  SocketStack& stack(int node);

  // --- SLO-feedback share biasing (RackArbiterKind::kSloFeedback) -------
  // Per-node multiplicative share bias applied in every proportional split
  // (effective shares = configured shares * bias).  Only proportions move;
  // [floor, ceiling] bounds are untouched, so the cap invariant holds for
  // any bias vector.  Ignored unless the arbiter is kSloFeedback.  The
  // vector is indexed by flat node id and must have num_nodes() entries.
  void SetShareBias(const std::vector<double>& bias);
  double share_bias(int node) const { return share_bias_[static_cast<size_t>(node)]; }

  // --- Replica memoization (config_.tick.memoize_replicas) --------------
  // Leaves are grouped into equivalence classes by HashSocketConfig plus
  // the initial grant bits; only one representative per class is simulated
  // each period, and its measurement fans out to the class.  A member whose
  // grant diverges from its representative's (bitwise) is materialized by
  // replaying the representative's recorded grant run-lengths, then steps
  // independently from that period on.
  int num_replica_classes() const { return static_cast<int>(classes_.size()); }
  // Leaves currently simulated for real (representatives + materialized).
  int num_live_leaves() const;
  // Fraction of leaf-periods so far that were served by fan-out instead of
  // simulation; 0 when memoization is off.
  double replica_hit_rate() const;

  Seconds now() const;
  int64_t periods() const { return period_; }
  // Wall-clock cost of the last aggregate+ladder+arbitrate pass (excludes
  // the leaf simulation itself) — the tree's control-plane overhead.
  Seconds last_arbitrate_wall_s() const { return last_arbitrate_wall_s_; }

  // One row per completed Step(): the grants in force during the period
  // and the (raw / ladder-filtered) power measured over it, indexed by
  // flat node id.
  struct PeriodRecord {
    Seconds end_s{0.0};
    std::vector<Watts> grants_w;
    std::vector<Watts> measured_w;
    std::vector<Watts> reported_w;
  };
  const std::vector<PeriodRecord>& history() const { return history_; }

 private:
  struct Node;

  // One class of identical leaves: the representative is simulated, the
  // rest replay its results until their grants diverge.
  struct GrantRun {
    Watts grant_w{0.0};
    int64_t periods = 0;
  };
  struct ReplicaClass {
    int rep = -1;                     // Flat node index (lowest in class).
    std::vector<int> members;         // Flat node indices, rep first.
    std::vector<GrantRun> grant_log;  // RLE of the rep's per-period grants.
  };

  void Flatten(const BudgetNodeConfig& cfg, int parent, int level);
  void DeriveBounds();
  Watts EffectiveCeiling(int node, bool use_demand) const;
  void Arbitrate(bool initial);
  void RunFaultLadder();
  void BuildReplicaClasses();
  // Divergence checks + grant-log append for the period about to run.
  void PrepareMemoPeriod();
  void MaterializeLeaf(int node);
  void EnsureShardTeam(int threads);
  void AdvanceLiveLeaves(ThreadPool* pool);
  void RecordHistory();

  BudgetTreeConfig config_;
  std::vector<Node> nodes_;
  std::vector<int> leaves_;       // Flat indices of leaf nodes.
  std::vector<int> fault_nodes_;  // Resolved config_.faults[i].node_path.
  int num_levels_ = 0;
  int64_t period_ = 0;
  std::vector<double> share_bias_;  // Per flat node; all 1.0 until set.
  Seconds last_arbitrate_wall_s_{0.0};
  std::vector<PeriodRecord> history_;

  // Replica memoization state (empty when memoize_replicas is off).
  std::vector<ReplicaClass> classes_;
  std::vector<int> node_class_;  // Per flat node: class index, or -1.
  uint64_t memo_leaf_periods_ = 0;
  uint64_t total_leaf_periods_ = 0;

  // Persistent leaf sharding: static contiguous partitions of leaves_
  // (pre-order contiguity keeps each shard inside one subtree) plus a
  // per-shard arena the shard alone touches while the team runs.
  struct ShardArena {
    int begin = 0;  // leaves_ index range [begin, end).
    int end = 0;
    uint64_t periods_advanced = 0;
  };
  std::vector<ShardArena> shards_;
  std::unique_ptr<ShardTeam> team_;
  std::vector<uint8_t> leaf_live_;  // Per leaves_ index: step this period?

  // Hoisted arbitration scratch: the control plane runs every period at
  // every node and must not allocate (PAPD_HOT).
  std::vector<ShareRequest> scratch_req_;
  MinFundingScratch scratch_split_;
  std::vector<uint8_t> scratch_stale_here_;
  std::vector<uint8_t> scratch_breaker_here_;
};

// Summary of a measured window of tree execution.
struct BudgetTreeResult {
  // Average root (whole-cluster) power over the window.
  Watts avg_root_w{0.0};
  // Worst cap-invariant slack seen at any arbitration touching the window,
  // including the one closing the final period (see max_grant_overrun_w).
  Watts max_grant_overrun_w{0.0};
  Seconds measured_s{0.0};
  // Mean control-plane cost per period (see last_arbitrate_wall_s).
  Seconds avg_arbiter_wall_s{0.0};
};

BudgetTreeResult RunBudgetTree(const BudgetTreeConfig& config, Seconds warmup_s,
                               Seconds measure_s, ThreadPool* pool = nullptr);

// A uniform rows x racks x sockets topology ("dc/row{r}/rack{k}/socket{s}")
// with every socket cloned from `socket_proto`.  By default seeds are
// perturbed per leaf so the cloned workloads decorrelate; pass
// decorrelate_seeds = false for a truly homogeneous fleet (every leaf
// bit-identical), the configuration replica memoization collapses to a
// single equivalence class.
BudgetTreeConfig MakeUniformCluster(int rows, int racks_per_row, int sockets_per_rack,
                                    const RackSocketConfig& socket_proto, Watts budget_w,
                                    bool decorrelate_seeds = true);

}  // namespace papd

#endif  // SRC_CLUSTER_BUDGET_TREE_H_
