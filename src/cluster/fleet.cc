#include "src/cluster/fleet.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/common/stats.h"
#include "src/obs/trace.h"

namespace papd {

namespace {

// Latency histogram buckets (seconds): log-spaced around typical websearch
// response times (a few ms fixed latency up to deep-queue seconds under
// throttling).
std::vector<double> LatencyBucketsS() {
  return {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0};
}

}  // namespace

int FleetSockets(const FleetConfig& cfg) {
  return cfg.rows * cfg.racks_per_row * cfg.sockets_per_rack;
}

Fleet::Fleet(FleetConfig cfg) : cfg_(std::move(cfg)), arbiter_(cfg_.slo) {
  PAPD_CHECK_GT(cfg_.rows, 0);
  PAPD_CHECK_GT(cfg_.racks_per_row, 0);
  PAPD_CHECK_GT(cfg_.sockets_per_rack, 0);
  PAPD_CHECK_GT(cfg_.users, 0.0);
  PAPD_CHECK_GT(cfg_.requests_per_user_per_day, 0.0);
  PAPD_CHECK_GE(cfg_.hot_fraction, 0.0);
  PAPD_CHECK_LE(cfg_.hot_fraction, 1.0);
  PAPD_CHECK_GE(cfg_.hot_multiplier, 1.0);
  const int sockets = FleetSockets(cfg_);

  // --- Load balancer: sticky population shards, hot shards first ----------
  int hot_count = static_cast<int>(
      std::lround(cfg_.hot_fraction * static_cast<double>(sockets)));
  hot_count = std::clamp(hot_count, 0, sockets);
  hot_.assign(static_cast<size_t>(sockets), false);
  double weight_sum = 0.0;
  for (int s = 0; s < sockets; ++s) {
    hot_[static_cast<size_t>(s)] = s < hot_count;
    weight_sum += s < hot_count ? cfg_.hot_multiplier : 1.0;
  }

  // --- Topology ------------------------------------------------------------
  // One RackSocketConfig per socket; only the user shard, seed, and (under
  // the priority policy) the share weight differ between sockets.
  RackSocketConfig proto{.platform = cfg_.platform};
  proto.policy = cfg_.socket_policy;
  proto.seed = cfg_.seed;
  proto.audit = cfg_.socket_audit;
  proto.websearch = true;
  proto.with_cpuburn = cfg_.with_cpuburn;
  proto.websearch_params = cfg_.service;
  proto.websearch_params.open_loop.enabled = true;
  proto.websearch_params.open_loop.requests_per_user_per_day =
      cfg_.requests_per_user_per_day;
  proto.websearch_params.open_loop.shape = cfg_.shape;
  proto.websearch_params.open_loop.diurnal_amplitude = cfg_.diurnal_amplitude;
  proto.websearch_params.open_loop.diurnal_period_s = cfg_.diurnal_period_s;
  proto.websearch_params.open_loop.trace = cfg_.trace;
  proto.websearch_params.open_loop.trace_step_s = cfg_.trace_step_s;
  proto.websearch_params.open_loop.record_arrivals = cfg_.record_arrivals;

  BudgetNodeConfig root;
  root.name = "dc";
  int socket_index = 0;
  for (int r = 0; r < cfg_.rows; ++r) {
    BudgetNodeConfig row;
    row.name = "row" + std::to_string(r);
    // Interior shares = sum of descendant shares, so the priority policy's
    // boosted leaves pull weight at every level, not just inside their rack.
    row.shares = 0.0;
    for (int k = 0; k < cfg_.racks_per_row; ++k) {
      BudgetNodeConfig rack;
      rack.name = "rack" + std::to_string(k);
      rack.shares = 0.0;
      for (int j = 0; j < cfg_.sockets_per_rack; ++j, ++socket_index) {
        const bool hot = hot_[static_cast<size_t>(socket_index)];
        BudgetNodeConfig leaf;
        leaf.name = "socket" + std::to_string(j);
        leaf.socket = proto;
        RackSocketConfig& sc = *leaf.socket;
        // Decorrelate arrival/service streams per socket (same prime
        // stride MakeUniformCluster uses).
        sc.seed = cfg_.seed + 7919u * static_cast<uint64_t>(socket_index);
        // Offset each socket's diurnal phase so a fleet-wide shape does
        // not make all shards peak on the same control period edge.
        sc.websearch_params.open_loop.shape_phase_s =
            Seconds{static_cast<double>(socket_index % 97)};
        const double weight = hot ? cfg_.hot_multiplier : 1.0;
        sc.websearch_params.open_loop.users = cfg_.users * weight / weight_sum;
        sc.shares = cfg_.priority_hot && hot ? cfg_.priority_boost : 1.0;
        leaf.shares = sc.shares;
        rack.shares += leaf.shares;
        rack.children.push_back(std::move(leaf));
      }
      row.shares += rack.shares;
      row.children.push_back(std::move(rack));
    }
    root.children.push_back(std::move(row));
  }

  // --- Budget --------------------------------------------------------------
  Watts budget = cfg_.budget_w;
  if (budget <= Watts{0.0}) {
    const Watts floor = SocketFloorW(proto);
    const Watts ceiling = SocketCeilingW(proto);
    budget = (floor + (ceiling - floor) * cfg_.cap_fraction) *
             static_cast<double>(sockets);
  }

  BudgetTreeConfig tree_cfg;
  tree_cfg.root = std::move(root);
  tree_cfg.budget_w = budget;
  tree_cfg.control_period_s = cfg_.control_period_s;
  tree_cfg.arbiter = cfg_.arbiter;
  tree_cfg.tick_s = cfg_.tick_s;
  tree_cfg.obs = cfg_.obs;
  tree_cfg.tick = cfg_.tick;
  // Fleets run many periods over many nodes; the per-period snapshot is the
  // 100k-core lesson (see BudgetTreeConfig::record_history).
  tree_cfg.record_history = false;
  tree_ = std::make_unique<BudgetTree>(std::move(tree_cfg));

  const int nodes = tree_->num_nodes();
  leaf_nodes_.clear();
  for (int n = 0; n < nodes; ++n) {
    if (tree_->is_leaf(n)) {
      leaf_nodes_.push_back(n);
    }
  }
  PAPD_CHECK_EQ(static_cast<int>(leaf_nodes_.size()), sockets);

  arbiter_.Resize(static_cast<size_t>(nodes));
  latency_offset_.assign(static_cast<size_t>(sockets), 0);
  violations_.assign(static_cast<size_t>(sockets), 0);
  measured_periods_.assign(static_cast<size_t>(sockets), 0);
  window_p90_.assign(static_cast<size_t>(sockets), Seconds{0.0});
  window_violated_.assign(static_cast<size_t>(sockets), 0);

  // Leaf counts per subtree (static topology; computed once).  Reverse
  // pre-order guarantees children are folded before their parent.
  leaf_count_.assign(static_cast<size_t>(nodes), 0);
  violating_leaves_.assign(static_cast<size_t>(nodes), 0);
  violation_fraction_.assign(static_cast<size_t>(nodes), 0.0);
  subtree_p90_.assign(static_cast<size_t>(nodes), Seconds{0.0});
  bias_scratch_.assign(static_cast<size_t>(nodes), 1.0);
  for (int n = nodes - 1; n >= 0; --n) {
    if (tree_->is_leaf(n)) {
      leaf_count_[static_cast<size_t>(n)] = 1;
    } else {
      for (int c : tree_->children(n)) {
        leaf_count_[static_cast<size_t>(n)] += leaf_count_[static_cast<size_t>(c)];
      }
    }
  }

  // Per-shard latency histograms, one per socket, keyed by tree path.
  latency_hist_.reserve(static_cast<size_t>(sockets));
  for (int s = 0; s < sockets; ++s) {
    latency_hist_.push_back(metrics_.GetHistogram(
        "fleet." + tree_->node_path(leaf_nodes_[static_cast<size_t>(s)]) +
            ".latency_s",
        LatencyBucketsS()));
  }
}

Fleet::~Fleet() = default;

void Fleet::Step(ThreadPool* pool) {
  tree_->Step(pool);

  // Root power accounting for the period that just closed.
  const Watts root_w = tree_->measured_w(0);
  root_power_sum_w_ += root_w;
  root_power_max_w_ = std::max(root_power_max_w_, root_w);
  max_overrun_w_ = std::max(max_overrun_w_, tree_->max_grant_overrun_w());
  ++window_periods_;

  UpdateWindowStats();
  if (cfg_.arbiter == RackArbiterKind::kSloFeedback) {
    ApplySloFeedback();
  }
}

void Fleet::UpdateWindowStats() {
  // Scratch for the window slice; UpdateWindowStats is control-plane code
  // (once per period), not a hot tick path.
  std::vector<Seconds> window;
  for (int s = 0; s < num_sockets(); ++s) {
    const size_t si = static_cast<size_t>(s);
    WebSearch& ws = *tree_->stack(leaf_nodes_[si]).websearch;
    const std::vector<Seconds>& lat = ws.latencies();
    const size_t begin = std::min(latency_offset_[si], lat.size());
    window.assign(lat.begin() + static_cast<ptrdiff_t>(begin), lat.end());
    latency_offset_[si] = lat.size();

    for (Seconds l : window) {
      latency_hist_[si]->Observe(l);
    }

    window_violated_[si] = 0;
    window_p90_[si] = Seconds{0.0};
    if (window.size() >= cfg_.min_window_samples) {
      ++measured_periods_[si];
      window_p90_[si] = Percentile(std::move(window), 90.0);
      if (window_p90_[si] > cfg_.slo.slo_p90) {
        window_violated_[si] = 1;
        ++violations_[si];
      }
    }
  }
}

void Fleet::ApplySloFeedback() {
  // Bubble violating-leaf counts and worst window p90 up the (pre-order)
  // tree, then let the arbiter move biases.
  const int nodes = tree_->num_nodes();
  std::fill(violating_leaves_.begin(), violating_leaves_.end(), 0);
  std::fill(subtree_p90_.begin(), subtree_p90_.end(), Seconds{0.0});
  for (int s = 0; s < num_sockets(); ++s) {
    const size_t si = static_cast<size_t>(s);
    const size_t node = static_cast<size_t>(leaf_nodes_[si]);
    violating_leaves_[node] = window_violated_[si];
    subtree_p90_[node] = window_p90_[si];
  }
  for (int n = nodes - 1; n > 0; --n) {
    const size_t parent = static_cast<size_t>(tree_->parent(n));
    violating_leaves_[parent] += violating_leaves_[static_cast<size_t>(n)];
    subtree_p90_[parent] =
        std::max(subtree_p90_[parent], subtree_p90_[static_cast<size_t>(n)]);
  }
  for (int n = 0; n < nodes; ++n) {
    const size_t ni = static_cast<size_t>(n);
    violation_fraction_[ni] = static_cast<double>(violating_leaves_[ni]) /
                              static_cast<double>(leaf_count_[ni]);
  }

  bias_scratch_ = arbiter_.biases();
  const int moved = arbiter_.Update(violation_fraction_);
  tree_->SetShareBias(arbiter_.biases());
  if (moved > 0 && cfg_.obs != nullptr) {
    for (int n = 0; n < nodes; ++n) {
      const size_t ni = static_cast<size_t>(n);
      if (arbiter_.bias(ni) == bias_scratch_[ni]) {
        continue;
      }
      obs::TraceEvent e;
      e.t = tree_->now();
      e.type = obs::TraceEventType::kSloShift;
      e.shard = static_cast<int16_t>(n);
      e.index = n;
      e.code = tree_->level(n);
      e.a = obs::ToPayload(arbiter_.bias(ni));
      e.b = obs::ToPayload(subtree_p90_[ni]);
      cfg_.obs->OnEvent(e);
    }
  }
}

void Fleet::ResetStats() {
  for (int s = 0; s < num_sockets(); ++s) {
    const size_t si = static_cast<size_t>(s);
    tree_->stack(leaf_nodes_[si]).websearch->ResetStats();
    latency_offset_[si] = 0;
    violations_[si] = 0;
    measured_periods_[si] = 0;
    window_p90_[si] = Seconds{0.0};
    window_violated_[si] = 0;
  }
  window_periods_ = 0;
  root_power_sum_w_ = Watts{0.0};
  root_power_max_w_ = Watts{0.0};
  max_overrun_w_ = Watts{0.0};
}

size_t Fleet::total_violations() const {
  size_t total = 0;
  for (size_t v : violations_) {
    total += v;
  }
  return total;
}

FleetResult Fleet::Collect() {
  FleetResult result;
  result.periods = window_periods_;
  result.simulated_users = cfg_.users;
  result.requests_per_day = cfg_.users * cfg_.requests_per_user_per_day;
  result.max_grant_overrun_w = max_overrun_w_;

  result.summary.measured_s =
      cfg_.control_period_s * static_cast<double>(window_periods_);
  if (window_periods_ > 0) {
    result.summary.avg_pkg_w =
        root_power_sum_w_ / static_cast<double>(window_periods_);
  }
  result.summary.max_pkg_w = root_power_max_w_;
  result.summary.energy_j = result.summary.avg_pkg_w * result.summary.measured_s;

  std::vector<Seconds> all_latencies;
  result.sockets.reserve(static_cast<size_t>(num_sockets()));
  for (int s = 0; s < num_sockets(); ++s) {
    const size_t si = static_cast<size_t>(s);
    const int node = leaf_nodes_[si];
    SocketStack& stack = tree_->stack(node);
    WebSearch& ws = *stack.websearch;

    FleetSocketResult sr;
    sr.node = node;
    sr.path = tree_->node_path(node);
    sr.hot = hot_[si];
    sr.grant_w = tree_->grant_w(node);
    sr.p50 = ws.LatencyPercentile(50.0);
    sr.p90 = ws.LatencyPercentile(90.0);
    sr.p99 = ws.LatencyPercentile(99.0);
    sr.completed = ws.completed_requests();
    sr.arrivals = ws.arrivals();
    sr.slo_violation_periods = violations_[si];
    sr.measured_periods = measured_periods_[si];
    sr.mean_queue_depth = ws.mean_queue_depth();
    sr.peak_queue_depth = ws.peak_queue_depth();
    result.sockets.push_back(sr);

    result.total_slo_violations += violations_[si];
    result.total_measured_periods += measured_periods_[si];
    result.summary.completed_requests += ws.completed_requests();
    all_latencies.insert(all_latencies.end(), ws.latencies().begin(),
                         ws.latencies().end());
  }

  result.summary.p50_latency = Percentile(all_latencies, 50.0);
  result.summary.p90_latency = Percentile(all_latencies, 90.0);
  result.summary.p99_latency = Percentile(std::move(all_latencies), 99.0);
  result.summary.metrics = metrics_.Export();
  return result;
}

FleetResult RunFleet(const FleetConfig& cfg, Seconds warmup_s, Seconds measure_s,
                     ThreadPool* pool) {
  Fleet fleet(cfg);
  PAPD_CHECK(cfg.control_period_s > Seconds{0.0});
  const int warmup_periods =
      static_cast<int>(std::ceil(warmup_s / cfg.control_period_s));
  const int measure_periods =
      std::max(1, static_cast<int>(std::ceil(measure_s / cfg.control_period_s)));
  for (int p = 0; p < warmup_periods; ++p) {
    fleet.Step(pool);
  }
  fleet.ResetStats();
  for (int p = 0; p < measure_periods; ++p) {
    fleet.Step(pool);
  }
  return fleet.Collect();
}

}  // namespace papd
