// Serving fleet: hundreds of open-loop websearch sockets under one
// BudgetTree, with tail latency fed back into the arbiter.
//
// This is ROADMAP item 2, the "millions of users" demonstration.  A Fleet
// builds a rows x racks x sockets BudgetTree whose leaves are serving
// SocketStacks (RackSocketConfig::websearch): each runs the open-loop
// WebSearch driver — Poisson arrivals, optionally diurnal- or
// trace-shaped, from its shard of a simulated user population.  The load
// balancer is a *sticky population shard*: users are assigned to sockets
// up front (weighted, so hot shards exist), not routed per request.
// Sticky sharding is what real search fleets do (a shard owns its index
// partition), and it keeps sockets share-nothing, so leaf stepping stays
// bit-identical serial vs parallel.
//
// Each control period the fleet:
//   1. steps the BudgetTree (leaves advance, measurements aggregate,
//      grants re-split top-down);
//   2. computes every socket's *windowed* p90 over the requests completed
//      that period, counts SLO violations, and feeds per-shard latency
//      histograms into the metrics registry;
//   3. under RackArbiterKind::kSloFeedback, bubbles violating-leaf
//      fractions up the tree, lets the SloFeedbackArbiter move per-node
//      share biases (bounded step + hysteresis), pushes the biases into
//      the tree for the next arbitration, and emits a kSloShift trace
//      event per moved node.
//
// Head-to-head policies (the fleet bench + sweep API compare these at the
// same cluster cap):
//   - static shares: RackArbiterKind::kShares, uniform socket shares;
//   - priority: kShares with hot shards marked high-priority (their share
//     weight multiplied by priority_boost) — the oracle that knows the
//     skew up front;
//   - SLO feedback: kSloFeedback, uniform shares, biases learned online.

#ifndef SRC_CLUSTER_FLEET_H_
#define SRC_CLUSTER_FLEET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/budget_tree.h"
#include "src/common/thread_pool.h"
#include "src/common/units.h"
#include "src/experiments/harness.h"
#include "src/obs/metrics.h"
#include "src/policy/slo_feedback.h"

namespace papd {

struct FleetConfig {
  // Topology: rows x racks_per_row x sockets_per_rack serving sockets.
  int rows = 4;
  int racks_per_row = 8;
  int sockets_per_rack = 8;
  PlatformSpec platform = SkylakeXeon4114();

  // --- Offered load ----------------------------------------------------------
  // Simulated user population across the fleet; fleet request rate is
  // users * requests_per_user_per_day / 86400 (shape-modulated).  The
  // default is calibrated against the Skylake serving socket, whose
  // measured capacity curve is ~110 rps at 33 W, ~140 at 46 W, ~165 at
  // 59 W (it never draws more than ~56 W): cold shards offer ~81 rps —
  // comfortable at the default per-socket grant — while hot shards offer
  // ~153 rps, which needs ~59 W.  Hot shards are under capacity at high
  // grant but over it at the equal static split, which is exactly the
  // regime where feeding latency back into the split matters.
  double users = 1e8;
  double requests_per_user_per_day = 20.0;
  ArrivalShape shape = ArrivalShape::kConstant;
  double diurnal_amplitude = 0.5;
  Seconds diurnal_period_s{86400.0};
  std::vector<double> trace;  // ArrivalShape::kTrace multipliers.
  Seconds trace_step_s{3600.0};
  // Load skew: the first round(hot_fraction * sockets) sockets (contiguous,
  // so whole racks run hot and tree levels above the leaf matter) carry
  // hot_multiplier x the per-socket user share.
  double hot_fraction = 0.125;
  double hot_multiplier = 1.875;
  // Base service parameters (users/open_loop fields are filled per socket).
  WebSearch::Params service;
  // Record arrival timestamps on every socket (determinism tests only).
  bool record_arrivals = false;

  // --- Power budget ----------------------------------------------------------
  // Explicit cluster budget; 0 derives sockets * (floor + cap_fraction *
  // (ceiling - floor)) from the platform's per-socket bounds.  The default
  // fraction puts the equal static split at ~42 W/socket: enough for cold
  // shards, ~17 W short of what a hot shard needs (see `users`).
  Watts budget_w{0.0};
  double cap_fraction = 0.34;

  // --- Policy ----------------------------------------------------------------
  PolicyKind socket_policy = PolicyKind::kFrequencyShares;
  RackArbiterKind arbiter = RackArbiterKind::kShares;
  // "Priority" fleet policy: multiply hot sockets' arbiter shares by
  // priority_boost (kShares semantics otherwise).
  bool priority_hot = false;
  double priority_boost = 2.0;
  // Fleet SLO: 150 ms p90.  The service-time distribution alone (mean
  // ~40 ms, exponential) puts an unloaded socket's p90 near 110 ms, so
  // anything tighter is unmeetable at any grant; max_bias 2.0 is enough to
  // double a hot shard's proportional slice without starving cold rows.
  SloFeedbackOptions slo{.slo_p90 = Seconds{0.150}, .max_bias = 2.0};
  // A socket-period only counts toward SLO accounting when its window
  // completed at least this many requests (a starved window with two
  // samples is noise, not a measurement).
  size_t min_window_samples = 5;

  // --- Mechanics -------------------------------------------------------------
  Seconds control_period_s{1.0};
  Seconds tick_s{0.001};
  uint64_t seed = 42;
  bool with_cpuburn = false;
  bool socket_audit = false;  // Per-socket daemon auditor (slow at 256+).
  ObsSink* obs = nullptr;
  TickOptions tick;
};

int FleetSockets(const FleetConfig& cfg);

struct FleetSocketResult {
  int node = -1;          // Flat BudgetTree node index.
  std::string path;       // "dc/row{r}/rack{k}/socket{s}".
  bool hot = false;
  Watts grant_w{0.0};
  Seconds p50{0.0};
  Seconds p90{0.0};
  Seconds p99{0.0};
  size_t completed = 0;
  uint64_t arrivals = 0;
  // Periods (with enough samples) whose windowed p90 broke the SLO.
  size_t slo_violation_periods = 0;
  size_t measured_periods = 0;
  double mean_queue_depth = 0.0;
  size_t peak_queue_depth = 0;
};

struct FleetResult {
  // Shared reporting surface: cluster power, fleet-wide latency
  // percentiles, per-shard latency histograms in `metrics`.
  RunSummary summary;
  std::vector<FleetSocketResult> sockets;
  size_t total_slo_violations = 0;
  size_t total_measured_periods = 0;
  Watts max_grant_overrun_w{0.0};
  int64_t periods = 0;
  // Offered load actually configured (for bench schema assertions).
  double simulated_users = 0.0;
  double requests_per_day = 0.0;
};

class Fleet {
 public:
  explicit Fleet(FleetConfig cfg);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // One control period: tree step, per-socket window stats, SLO feedback.
  void Step(ThreadPool* pool = nullptr);

  // Drops latency/violation accounting (call after warmup).
  void ResetStats();

  BudgetTree& tree() { return *tree_; }
  int num_sockets() const { return static_cast<int>(leaf_nodes_.size()); }
  const std::vector<int>& leaf_nodes() const { return leaf_nodes_; }
  bool socket_hot(int socket) const { return hot_[static_cast<size_t>(socket)]; }
  size_t violations(int socket) const {
    return violations_[static_cast<size_t>(socket)];
  }
  size_t total_violations() const;
  double share_bias(int node) const { return tree_->share_bias(node); }
  obs::MetricsRegistry& metrics() { return metrics_; }

  // Summarizes everything accumulated since the last ResetStats.
  FleetResult Collect();

 private:
  void UpdateWindowStats();
  void ApplySloFeedback();

  FleetConfig cfg_;
  std::unique_ptr<BudgetTree> tree_;
  std::vector<int> leaf_nodes_;   // Flat tree node per socket.
  std::vector<bool> hot_;         // Per socket.
  SloFeedbackArbiter arbiter_;

  // Per-socket window bookkeeping (indexes into WebSearch::latencies()).
  std::vector<size_t> latency_offset_;
  std::vector<size_t> violations_;
  std::vector<size_t> measured_periods_;
  std::vector<Seconds> window_p90_;
  std::vector<uint8_t> window_violated_;

  // Per-tree-node scratch for the bottom-up violation aggregation.
  std::vector<int> leaf_count_;
  std::vector<int> violating_leaves_;
  std::vector<double> violation_fraction_;
  std::vector<Seconds> subtree_p90_;
  std::vector<double> bias_scratch_;

  // Cluster power accounting over the collection window.
  int64_t window_periods_ = 0;
  Watts root_power_sum_w_{0.0};
  Watts root_power_max_w_{0.0};
  Watts max_overrun_w_{0.0};

  obs::MetricsRegistry metrics_;
  std::vector<obs::Histogram*> latency_hist_;  // Per socket, milliseconds.
};

// Warmup + measure driver, mirroring RunBudgetTree / RunScenario.
FleetResult RunFleet(const FleetConfig& cfg, Seconds warmup_s, Seconds measure_s,
                     ThreadPool* pool = nullptr);

}  // namespace papd

#endif  // SRC_CLUSTER_FLEET_H_
