#include "src/cluster/rack.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/policy/min_funding.h"

namespace papd {

Rack::Rack(RackConfig config) : config_(std::move(config)) {
  PAPD_CHECK(!config_.sockets.empty());
  const size_t n = config_.sockets.size();
  budgets_w_.assign(n, Watts{0.0});
  measured_w_.assign(n, Watts{0.0});

  // Validate every socket's budget bounds before the initial split: the
  // split (and later Arbitrate) clamps into [floor, ceiling], which is UB
  // when the configured floor exceeds the ceiling.
  for (const RackSocketConfig& cfg : config_.sockets) {
    ValidateSocketBudgetBounds(cfg);
  }

  // Initial split: proportional to shares between each socket's floor and
  // ceiling, before anything has been measured.
  std::vector<ShareRequest> req(n);
  for (size_t i = 0; i < n; i++) {
    req[i] = ShareRequest{.shares = config_.sockets[i].shares,
                          .minimum = AsResourceUnits(SocketFloorW(config_.sockets[i])),
                          .maximum = AsResourceUnits(SocketCeilingW(config_.sockets[i]))};
  }
  AssignBudgets(DistributeProportional(AsResourceUnits(config_.budget_w), req));

  sockets_.reserve(n);
  for (size_t i = 0; i < n; i++) {
    sockets_.push_back(std::make_unique<SocketStack>(config_.sockets[i], config_.control_period_s,
                                                     config_.tick_s, budgets_w_[i], config_.obs,
                                                     static_cast<int16_t>(i), config_.tick));
  }

  // Pre-size the hoisted arbitration scratch so the first Step's split is
  // already heap-free.
  scratch_req_.reserve(n);
  scratch_split_.alloc.reserve(n);
  scratch_split_.pinned.reserve(n);
}

void Rack::EnsureShardTeam(int threads) {
  const int want = std::max(1, std::min(threads, static_cast<int>(sockets_.size())));
  if (team_ != nullptr && team_->shards() == want) {
    return;
  }
  team_.reset();
  shards_.assign(static_cast<size_t>(want), Shard{});
  const size_t n = sockets_.size();
  for (int s = 0; s < want; s++) {
    shards_[static_cast<size_t>(s)].begin =
        static_cast<int>(n * static_cast<size_t>(s) / static_cast<size_t>(want));
    shards_[static_cast<size_t>(s)].end =
        static_cast<int>(n * (static_cast<size_t>(s) + 1) / static_cast<size_t>(want));
  }
  team_ = std::make_unique<ShardTeam>(want, [this](int shard) {
    const Shard& range = shards_[static_cast<size_t>(shard)];
    for (int i = range.begin; i < range.end; i++) {
      sockets_[static_cast<size_t>(i)]->AdvancePeriod(config_.control_period_s);
    }
  });
}

Rack::~Rack() = default;

Seconds Rack::now() const { return sockets_.front()->pkg.now(); }

Watts Rack::budget_sum_w() const {
  Watts sum{0.0};
  for (Watts b : budgets_w_) {
    sum += b;
  }
  return sum;
}

Watts Rack::last_rack_power_w() const {
  Watts sum{0.0};
  for (Watts w : measured_w_) {
    sum += w;
  }
  return sum;
}

Package& Rack::package(int socket) { return sockets_[static_cast<size_t>(socket)]->pkg; }

const PowerDaemon& Rack::daemon(int socket) const {
  return *sockets_[static_cast<size_t>(socket)]->daemon;
}

void Rack::Step(ThreadPool* pool) {
  const size_t n = sockets_.size();
  // Fan the sockets out; the barrier at the end of ShardTeam::RunOnce means
  // the arbiter below always sees a consistent rack state.
  const int threads = pool != nullptr ? pool->num_threads() : 1;
  if (threads > 1 && n > 1) {
    EnsureShardTeam(threads);
    team_->RunOnce();
  } else {
    for (size_t i = 0; i < n; i++) {
      sockets_[i]->AdvancePeriod(config_.control_period_s);
    }
  }
  for (size_t i = 0; i < n; i++) {
    measured_w_[i] = sockets_[i]->last_measured_w;
  }

  history_.push_back(PeriodRecord{.end_s = now(), .budgets_w = budgets_w_, .measured_w = measured_w_});
  Arbitrate();
}

// PAPD_HOT — per period; request and split buffers are hoisted members.
void Rack::Arbitrate() {
  const size_t n = sockets_.size();
  scratch_req_.assign(n, ShareRequest{});
  for (size_t i = 0; i < n; i++) {
    const RackSocketConfig& cfg = config_.sockets[i];
    const Watts floor{SocketFloorW(cfg)};
    Watts ceiling{SocketCeilingW(cfg)};
    if (config_.arbiter == RackArbiterKind::kDemand) {
      // Claim only slightly more than the measured draw, so idle sockets
      // release headroom; min-funding revocation hands it to busy ones.
      const Watts demand{measured_w_[i] * 1.10 + Watts{2.0}};
      ceiling = std::clamp(demand, floor, ceiling);
    }
    scratch_req_[i] = ShareRequest{
        .shares = cfg.shares, .minimum = AsResourceUnits(floor), .maximum = AsResourceUnits(ceiling)};
  }
  AssignBudgets(DistributeProportional(AsResourceUnits(config_.budget_w), scratch_req_,
                                       &scratch_split_));
  for (size_t i = 0; i < n; i++) {
    sockets_[i]->daemon->SetPowerLimit(budgets_w_[i]);
    if (config_.obs != nullptr) {
      obs::TraceEvent event;
      event.t = now();
      event.type = obs::TraceEventType::kRackGrant;
      event.shard = static_cast<int16_t>(i);
      event.index = static_cast<int32_t>(i);
      event.code = static_cast<int32_t>(config_.arbiter);
      event.a = obs::ToPayload(budgets_w_[i]);
      event.b = obs::ToPayload(measured_w_[i]);
      config_.obs->OnEvent(event);
    }
  }
}

RackResult RunRack(const RackConfig& config, Seconds warmup_s, Seconds measure_s,
                   ThreadPool* pool) {
  Rack rack(config);
  const auto periods = [&](Seconds span) {
    return static_cast<int>(span / config.control_period_s + 0.5);
  };
  for (int p = 0; p < periods(warmup_s); p++) {
    rack.Step(pool);
  }

  RackResult result;
  result.socket_avg_w.assign(static_cast<size_t>(rack.num_sockets()), Watts{0.0});
  const int measure_periods = std::max(1, periods(measure_s));
  const Seconds start_s{rack.now()};
  // Grants in force when the window opens...
  result.max_budget_sum_w = rack.budget_sum_w();
  for (int p = 0; p < measure_periods; p++) {
    rack.Step(pool);
    // ...and after every arbitration inside it, including the one that
    // closes the final period — sampling before Step() instead would let
    // the last re-split exceed the rack budget unnoticed.
    result.max_budget_sum_w = std::max(result.max_budget_sum_w, rack.budget_sum_w());
    for (int s = 0; s < rack.num_sockets(); s++) {
      result.socket_avg_w[static_cast<size_t>(s)] += rack.measured_w()[static_cast<size_t>(s)];
    }
  }
  result.measured_s = rack.now() - start_s;
  for (Watts& w : result.socket_avg_w) {
    w /= measure_periods;
    result.avg_rack_w += w;
  }
  return result;
}

}  // namespace papd
