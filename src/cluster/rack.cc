#include "src/cluster/rack.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/policy/min_funding.h"
#include "src/specsim/spec2017.h"

namespace papd {

namespace {

Watts FloorFor(const RackSocketConfig& cfg) {
  if (cfg.min_budget_w > Watts{0.0}) {
    return cfg.min_budget_w;
  }
  return cfg.platform.has_rapl_limit ? cfg.platform.rapl_min_w : cfg.platform.tdp_w / 4.0;
}

Watts CeilingFor(const RackSocketConfig& cfg) {
  if (cfg.max_budget_w > Watts{0.0}) {
    return cfg.max_budget_w;
  }
  return cfg.platform.has_rapl_limit ? cfg.platform.rapl_max_w : cfg.platform.tdp_w;
}

}  // namespace

// The per-socket pipeline, mirroring RunScenario's stack: the package, its
// MSR surface, the pinned processes, the policy daemon, and a simulator
// driving ticks + periodic daemon steps.  Sockets share nothing mutable, so
// the rack can advance them on worker threads without synchronization.
struct Rack::Socket {
  Socket(const RackSocketConfig& cfg, Seconds period_s, Seconds tick_s, Watts initial_budget_w,
         ObsSink* obs_sink, int16_t shard, const TickOptions& tick)
      : config(cfg), pkg(cfg.platform), msr(&pkg), sim(&pkg, tick_s) {
    PAPD_CHECK_LE(static_cast<int>(cfg.apps.size()), cfg.platform.num_cores);
    pkg.SetTickPolicy(tick.policy, tick.max_hold_ticks);
    std::vector<ManagedApp> managed;
    for (size_t i = 0; i < cfg.apps.size(); i++) {
      const AppSetup& setup = cfg.apps[i];
      procs.push_back(
          std::make_unique<Process>(GetProfile(setup.profile), cfg.seed + 1000 * i));
      pkg.AttachWork(static_cast<int>(i), procs.back().get());
      managed.push_back(ManagedApp{
          .name = setup.profile,
          .cpu = static_cast<int>(i),
          .shares = setup.shares,
          .high_priority = setup.high_priority,
          .baseline_ips = cfg.use_baseline_ips
                              ? Standalone(cfg.platform, setup.profile).ips
                              : Ips{0.0},
      });
    }
    for (int c = static_cast<int>(cfg.apps.size()); c < pkg.num_cores(); c++) {
      pkg.SetRequestedMhz(c, cfg.platform.min_mhz);
    }

    DaemonConfig dcfg;
    dcfg.kind = cfg.policy;
    dcfg.power_limit_w = initial_budget_w;
    dcfg.period_s = period_s;
    dcfg.audit = cfg.audit;
    // Shard-tagged events: each socket daemon stamps its own index, so a
    // shared recorder can split the rack back into per-socket tracks.
    dcfg.obs = DaemonObs{.sink = obs_sink, .shard = shard};
    daemon = std::make_unique<PowerDaemon>(&msr, std::move(managed), dcfg);
    daemon->Start();
    sim.AddPeriodic(period_s, [this](Seconds) { daemon->Step(); });
  }

  // Advances one control period and records the average power drawn in it.
  void AdvancePeriod(Seconds period_s) {
    const Joules start_j{pkg.package_energy_j()};
    sim.Run(period_s);
    last_measured_w = (pkg.package_energy_j() - start_j) / period_s;
  }

  RackSocketConfig config;
  Package pkg;
  MsrFile msr;
  std::vector<std::unique_ptr<Process>> procs;
  std::unique_ptr<PowerDaemon> daemon;
  Simulator sim;
  Watts last_measured_w{0.0};
};

Rack::Rack(RackConfig config) : config_(std::move(config)) {
  PAPD_CHECK(!config_.sockets.empty());
  const size_t n = config_.sockets.size();
  budgets_w_.assign(n, Watts{0.0});
  measured_w_.assign(n, Watts{0.0});

  // Initial split: proportional to shares between each socket's floor and
  // ceiling, before anything has been measured.
  std::vector<ShareRequest> req(n);
  for (size_t i = 0; i < n; i++) {
    req[i] = ShareRequest{.shares = config_.sockets[i].shares,
                          .minimum = AsResourceUnits(FloorFor(config_.sockets[i])),
                          .maximum = AsResourceUnits(CeilingFor(config_.sockets[i]))};
  }
  AssignBudgets(DistributeProportional(AsResourceUnits(config_.budget_w), req));

  sockets_.reserve(n);
  for (size_t i = 0; i < n; i++) {
    sockets_.push_back(std::make_unique<Socket>(config_.sockets[i], config_.control_period_s,
                                                config_.tick_s, budgets_w_[i], config_.obs,
                                                static_cast<int16_t>(i), config_.tick));
  }
}

Rack::~Rack() = default;

Seconds Rack::now() const { return sockets_.front()->pkg.now(); }

Watts Rack::budget_sum_w() const {
  Watts sum{0.0};
  for (Watts b : budgets_w_) {
    sum += b;
  }
  return sum;
}

Watts Rack::last_rack_power_w() const {
  Watts sum{0.0};
  for (Watts w : measured_w_) {
    sum += w;
  }
  return sum;
}

Package& Rack::package(int socket) { return sockets_[static_cast<size_t>(socket)]->pkg; }

const PowerDaemon& Rack::daemon(int socket) const {
  return *sockets_[static_cast<size_t>(socket)]->daemon;
}

void Rack::Step(ThreadPool* pool) {
  const size_t n = sockets_.size();
  // Fan the sockets out; the barrier at the end of ParallelFor means the
  // arbiter below always sees a consistent rack state.
  if (pool != nullptr) {
    pool->ParallelFor(n, [this](size_t i) { sockets_[i]->AdvancePeriod(config_.control_period_s); });
  } else {
    for (size_t i = 0; i < n; i++) {
      sockets_[i]->AdvancePeriod(config_.control_period_s);
    }
  }
  for (size_t i = 0; i < n; i++) {
    measured_w_[i] = sockets_[i]->last_measured_w;
  }

  history_.push_back(PeriodRecord{.end_s = now(), .budgets_w = budgets_w_, .measured_w = measured_w_});
  Arbitrate();
}

void Rack::Arbitrate() {
  const size_t n = sockets_.size();
  std::vector<ShareRequest> req(n);
  for (size_t i = 0; i < n; i++) {
    const RackSocketConfig& cfg = config_.sockets[i];
    const Watts floor{FloorFor(cfg)};
    Watts ceiling{CeilingFor(cfg)};
    if (config_.arbiter == RackArbiterKind::kDemand) {
      // Claim only slightly more than the measured draw, so idle sockets
      // release headroom; min-funding revocation hands it to busy ones.
      const Watts demand{measured_w_[i] * 1.10 + Watts{2.0}};
      ceiling = std::clamp(demand, floor, ceiling);
    }
    req[i] = ShareRequest{
        .shares = cfg.shares, .minimum = AsResourceUnits(floor), .maximum = AsResourceUnits(ceiling)};
  }
  AssignBudgets(DistributeProportional(AsResourceUnits(config_.budget_w), req));
  for (size_t i = 0; i < n; i++) {
    sockets_[i]->daemon->SetPowerLimit(budgets_w_[i]);
    if (config_.obs != nullptr) {
      obs::TraceEvent event;
      event.t = now();
      event.type = obs::TraceEventType::kRackGrant;
      event.shard = static_cast<int16_t>(i);
      event.index = static_cast<int32_t>(i);
      event.code = static_cast<int32_t>(config_.arbiter);
      event.a = obs::ToPayload(budgets_w_[i]);
      event.b = obs::ToPayload(measured_w_[i]);
      config_.obs->OnEvent(event);
    }
  }
}

RackResult RunRack(const RackConfig& config, Seconds warmup_s, Seconds measure_s,
                   ThreadPool* pool) {
  Rack rack(config);
  const auto periods = [&](Seconds span) {
    return static_cast<int>(span / config.control_period_s + 0.5);
  };
  for (int p = 0; p < periods(warmup_s); p++) {
    rack.Step(pool);
  }

  RackResult result;
  result.socket_avg_w.assign(static_cast<size_t>(rack.num_sockets()), Watts{0.0});
  const int measure_periods = std::max(1, periods(measure_s));
  const Seconds start_s{rack.now()};
  for (int p = 0; p < measure_periods; p++) {
    result.max_budget_sum_w = std::max(result.max_budget_sum_w, rack.budget_sum_w());
    rack.Step(pool);
    for (int s = 0; s < rack.num_sockets(); s++) {
      result.socket_avg_w[static_cast<size_t>(s)] += rack.measured_w()[static_cast<size_t>(s)];
    }
  }
  result.measured_s = rack.now() - start_s;
  for (Watts& w : result.socket_avg_w) {
    w /= measure_periods;
    result.avg_rack_w += w;
  }
  return result;
}

}  // namespace papd
