// Rack-scale sharded simulation: N packages, one budget.
//
// A Rack runs N independent sockets — each a full SocketStack (Package +
// MsrFile + PowerDaemon + Simulator, exactly the per-socket pipeline the
// experiment harness builds; see src/cluster/socket_stack.h) — and layers a
// rack-level power arbiter on top.  Each control period:
//
//   1. every socket advances one period of simulated time (fanned out on
//      the ThreadPool; sockets share no mutable state, so results are
//      bit-identical to a serial run);
//   2. the arbiter reads each socket's measured power over the period and
//      re-splits the rack budget across sockets with the same min-funding
//      proportional distributor the per-socket policies use
//      (DistributeProportional, paper Section 5.2);
//   3. the new per-socket budgets land via PowerDaemon::SetPowerLimit — the
//      runtime cap-change path cluster managers like Facebook's Dynamo use.
//
// The arbiter guarantees sum(per-socket budgets) <= rack budget whenever
// the budget covers the per-socket floors (see Arbitrate()); rack_test.cc
// asserts this invariant over every period of every run.
//
// The recursive generalization — racks under rows under a datacenter cap,
// the same arbiter at every level — lives in src/cluster/budget_tree.h.

#ifndef SRC_CLUSTER_RACK_H_
#define SRC_CLUSTER_RACK_H_

#include <memory>
#include <vector>

#include "src/cluster/socket_stack.h"
#include "src/common/thread_pool.h"
#include "src/common/units.h"
#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/experiments/harness.h"
#include "src/msr/msr.h"
#include "src/policy/daemon.h"
#include "src/policy/min_funding.h"
#include "src/specsim/workload.h"

namespace papd {

struct RackConfig {
  std::vector<RackSocketConfig> sockets;
  // Rack-level power budget split across sockets each period.
  Watts budget_w{400.0};
  // Arbiter + per-socket daemon control period.
  Seconds control_period_s{1.0};
  RackArbiterKind arbiter = RackArbiterKind::kShares;
  // Simulator tick.
  Seconds tick_s{0.001};
  // Trace-event sink shared by every socket daemon and the arbiter.  Events
  // carry the socket index as their shard, so one Perfetto track per
  // socket; the sink must be thread-safe (TraceRecorder is) because shards
  // record concurrently when Step() is given a pool.
  ObsSink* obs = nullptr;
  // Tick-engine policy applied to every socket's package (see package.h).
  TickOptions tick;
};

class Rack {
 public:
  explicit Rack(RackConfig config);
  ~Rack();

  Rack(const Rack&) = delete;
  Rack& operator=(const Rack&) = delete;

  int num_sockets() const { return static_cast<int>(sockets_.size()); }
  Seconds now() const;

  // Advances every socket one control period — in parallel when `pool` is
  // given, else serially — then re-arbitrates the budget split.  Results
  // are identical either way; the pool only changes wall-clock time.  A
  // non-null pool contributes only its thread count: sockets run on a
  // persistent ShardTeam with static contiguous partitions (rebuilt only
  // when the count changes), so steady-state steps allocate nothing.
  void Step(ThreadPool* pool = nullptr);

  // Current per-socket budget grants (set by the last arbitration).
  const std::vector<Watts>& budgets_w() const { return budgets_w_; }
  Watts budget_sum_w() const;
  // Per-socket average power measured over the last period.
  const std::vector<Watts>& measured_w() const { return measured_w_; }
  // Whole-rack average power over the last period.
  Watts last_rack_power_w() const;

  Package& package(int socket);
  const PowerDaemon& daemon(int socket) const;

  // One row per completed Step(): the grants in force during the period and
  // the power measured over it.
  struct PeriodRecord {
    Seconds end_s{0.0};
    std::vector<Watts> budgets_w;
    std::vector<Watts> measured_w;
  };
  const std::vector<PeriodRecord>& history() const { return history_; }

 private:
  void Arbitrate();
  void EnsureShardTeam(int threads);

  // Adopts a min-funding split (dimensionless resource units) as the
  // per-socket power budgets.  budgets_w_ keeps its capacity, so repeated
  // assignment at a fixed socket count is heap-free.
  void AssignBudgets(const std::vector<ResourceUnits>& split) {
    budgets_w_.clear();
    for (ResourceUnits u : split) {
      budgets_w_.push_back(Watts{u});
    }
  }

  RackConfig config_;
  std::vector<std::unique_ptr<SocketStack>> sockets_;
  std::vector<Watts> budgets_w_;
  std::vector<Watts> measured_w_;
  std::vector<PeriodRecord> history_;

  // Persistent socket sharding (see BudgetTree: same static-partition
  // scheme, one contiguous socket range per team worker).
  struct Shard {
    int begin = 0;
    int end = 0;
  };
  std::vector<Shard> shards_;
  std::unique_ptr<ShardTeam> team_;

  // Hoisted arbitration scratch (PAPD_HOT: the per-period split must not
  // allocate).
  std::vector<ShareRequest> scratch_req_;
  MinFundingScratch scratch_split_;
};

// Summary statistics for a measured window of rack execution.
struct RackResult {
  Watts avg_rack_w{0.0};
  // Largest sum of simultaneous per-socket grants seen at any arbitration
  // touching the window — including the arbitration that closes the final
  // period, so the last re-split is checked against the budget too.
  Watts max_budget_sum_w{0.0};
  std::vector<Watts> socket_avg_w;
  Seconds measured_s{0.0};
};

// Runs warmup + measurement periods and reduces the window to averages.
RackResult RunRack(const RackConfig& config, Seconds warmup_s, Seconds measure_s,
                   ThreadPool* pool = nullptr);

}  // namespace papd

#endif  // SRC_CLUSTER_RACK_H_
