#include "src/cluster/socket_stack.h"

#include <utility>

#include "src/common/check.h"
#include "src/specsim/spec2017.h"

namespace papd {

Watts SocketFloorW(const RackSocketConfig& cfg) {
  if (cfg.min_budget_w > Watts{0.0}) {
    return cfg.min_budget_w;
  }
  return cfg.platform.has_rapl_limit ? cfg.platform.rapl_min_w : cfg.platform.tdp_w / 4.0;
}

Watts SocketCeilingW(const RackSocketConfig& cfg) {
  if (cfg.max_budget_w > Watts{0.0}) {
    return cfg.max_budget_w;
  }
  return cfg.platform.has_rapl_limit ? cfg.platform.rapl_max_w : cfg.platform.tdp_w;
}

void ValidateSocketBudgetBounds(const RackSocketConfig& cfg) {
  PAPD_CHECK_LE(SocketFloorW(cfg), SocketCeilingW(cfg))
      << " socket budget floor above ceiling (platform " << cfg.platform.name
      << "); fix min_budget_w/max_budget_w";
}

SocketStack::SocketStack(const RackSocketConfig& cfg, Seconds period_s, Seconds tick_s,
                         Watts initial_budget_w, ObsSink* obs_sink, int16_t shard,
                         const TickOptions& tick)
    : config(cfg), pkg(cfg.platform), msr(&pkg), sim(&pkg, tick_s) {
  PAPD_CHECK_LE(static_cast<int>(cfg.apps.size()), cfg.platform.num_cores);
  ValidateSocketBudgetBounds(cfg);
  pkg.SetTickPolicy(tick.policy, tick.max_hold_ticks);
  std::vector<ManagedApp> managed;
  for (size_t i = 0; i < cfg.apps.size(); i++) {
    const AppSetup& setup = cfg.apps[i];
    procs.push_back(
        std::make_unique<Process>(GetProfile(setup.profile), cfg.seed + 1000 * i));
    pkg.AttachWork(static_cast<int>(i), procs.back().get());
    managed.push_back(ManagedApp{
        .name = setup.profile,
        .cpu = static_cast<int>(i),
        .shares = setup.shares,
        .high_priority = setup.high_priority,
        .baseline_ips = cfg.use_baseline_ips
                            ? Standalone(cfg.platform, setup.profile).ips
                            : Ips{0.0},
    });
  }
  for (int c = static_cast<int>(cfg.apps.size()); c < pkg.num_cores(); c++) {
    pkg.SetRequestedMhz(c, cfg.platform.min_mhz);
  }

  DaemonConfig dcfg;
  dcfg.kind = cfg.policy;
  dcfg.power_limit_w = initial_budget_w;
  dcfg.period_s = period_s;
  dcfg.audit = cfg.audit;
  // Shard-tagged events: each socket daemon stamps its own index, so a
  // shared recorder can split the rack/cluster back into per-socket tracks.
  dcfg.obs = DaemonObs{.sink = obs_sink, .shard = shard};
  daemon = std::make_unique<PowerDaemon>(&msr, std::move(managed), dcfg);
  daemon->Start();
  sim.AddPeriodic(period_s, [this](Seconds) { daemon->Step(); });
}

void SocketStack::AdvancePeriod(Seconds period_s) {
  const Joules start_j{pkg.package_energy_j()};
  const Seconds start_s{pkg.now()};
  sim.Run(period_s);
  // Divide the energy delta by the time the simulator *actually* advanced:
  // when period_s is not an integer multiple of the tick, Run() overshoots
  // by a fraction of a tick, and dividing by the nominal period would bias
  // every measurement high (feeding a too-hot demand claim to the arbiter).
  const Seconds elapsed_s{pkg.now() - start_s};
  last_measured_w = (pkg.package_energy_j() - start_j) / elapsed_s;
}

}  // namespace papd
