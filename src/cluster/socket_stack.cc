#include "src/cluster/socket_stack.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "src/common/check.h"
#include "src/specsim/spec2017.h"

namespace papd {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void HashBytes(uint64_t* h, const void* data, size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; i++) {
    *h = (*h ^ bytes[i]) * kFnvPrime;
  }
}

void HashDouble(uint64_t* h, double v) { HashBytes(h, &v, sizeof(v)); }
void HashU64(uint64_t* h, uint64_t v) { HashBytes(h, &v, sizeof(v)); }
void HashString(uint64_t* h, const std::string& s) {
  HashU64(h, s.size());
  HashBytes(h, s.data(), s.size());
}

}  // namespace

const char* RackArbiterKindName(RackArbiterKind kind) {
  switch (kind) {
    case RackArbiterKind::kShares:
      return "shares";
    case RackArbiterKind::kDemand:
      return "demand";
    case RackArbiterKind::kSloFeedback:
      return "slo-feedback";
  }
  return "?";
}

uint64_t HashSocketConfig(const RackSocketConfig& cfg) {
  uint64_t h = kFnvOffset;
  const PlatformSpec& p = cfg.platform;
  HashString(&h, p.name);
  HashU64(&h, static_cast<uint64_t>(p.num_cores));
  HashDouble(&h, p.min_mhz.value());
  HashDouble(&h, p.base_max_mhz.value());
  HashDouble(&h, p.turbo_max_mhz.value());
  HashDouble(&h, p.step_mhz.value());
  HashDouble(&h, p.tsc_mhz.value());
  HashDouble(&h, p.tdp_w.value());
  HashU64(&h, p.has_rapl_limit ? 1 : 0);
  HashDouble(&h, p.rapl_min_w.value());
  HashDouble(&h, p.rapl_max_w.value());
  HashU64(&h, static_cast<uint64_t>(p.max_simultaneous_pstates));
  HashU64(&h, p.has_per_core_power ? 1 : 0);
  HashU64(&h, p.turbo_ladder.size());
  for (const TurboStep& step : p.turbo_ladder) {
    HashU64(&h, static_cast<uint64_t>(step.max_active_cores));
    HashDouble(&h, step.mhz.value());
  }
  HashDouble(&h, p.avx_max_mhz_light.value());
  HashDouble(&h, p.avx_max_mhz_heavy.value());
  HashU64(&h, static_cast<uint64_t>(p.avx_light_cores));
  // The voltage curve's interior points are private; its endpoints plus the
  // platform name (presets are the only constructors in practice) pin it.
  HashDouble(&h, p.voltage.min_volts().value());
  HashDouble(&h, p.voltage.max_volts().value());
  HashDouble(&h, p.power.ceff_w_per_v2ghz);
  HashDouble(&h, p.power.leak_ref_w.value());
  HashDouble(&h, p.power.leak_ref_volts.value());
  HashDouble(&h, p.power.clock_gate_w.value());
  HashDouble(&h, p.power.cstate_idle_w.value());
  HashDouble(&h, p.power.uncore_base_w.value());
  HashDouble(&h, p.power.uncore_per_active_w.value());
  HashDouble(&h, p.thermal.ambient_c);
  HashDouble(&h, p.thermal.r_core_c_per_w);
  HashDouble(&h, p.thermal.spread_fraction);
  HashDouble(&h, p.thermal.tau_s.value());
  HashDouble(&h, p.thermal.tj_max_c);
  HashU64(&h, cfg.apps.size());
  for (const AppSetup& app : cfg.apps) {
    HashString(&h, app.profile);
    HashDouble(&h, app.shares);
    HashU64(&h, app.high_priority ? 1 : 0);
  }
  HashU64(&h, static_cast<uint64_t>(cfg.policy));
  HashDouble(&h, cfg.shares);
  HashDouble(&h, cfg.min_budget_w.value());
  HashDouble(&h, cfg.max_budget_w.value());
  HashU64(&h, cfg.seed);
  HashU64(&h, cfg.audit ? 1 : 0);
  HashU64(&h, cfg.use_baseline_ips ? 1 : 0);
  // Serving-socket fields: two sockets differing only in their arrival
  // process must never share a replica class.
  HashU64(&h, cfg.websearch ? 1 : 0);
  if (cfg.websearch) {
    const WebSearch::Params& wp = cfg.websearch_params;
    HashU64(&h, static_cast<uint64_t>(wp.users));
    HashDouble(&h, wp.think_mean_s.value());
    HashDouble(&h, wp.service_mcycles_mean);
    HashDouble(&h, wp.fixed_latency_s.value());
    HashDouble(&h, wp.ipc);
    HashDouble(&h, wp.activity);
    const WebSearch::OpenLoop& ol = wp.open_loop;
    HashU64(&h, ol.enabled ? 1 : 0);
    HashDouble(&h, ol.users);
    HashDouble(&h, ol.requests_per_user_per_day);
    HashU64(&h, static_cast<uint64_t>(ol.shape));
    HashDouble(&h, ol.diurnal_amplitude);
    HashDouble(&h, ol.diurnal_period_s.value());
    HashDouble(&h, ol.shape_phase_s.value());
    HashU64(&h, ol.trace.size());
    for (const double m : ol.trace) {
      HashDouble(&h, m);
    }
    HashDouble(&h, ol.trace_step_s.value());
    HashU64(&h, cfg.with_cpuburn ? 1 : 0);
    HashDouble(&h, cfg.websearch_shares);
    HashDouble(&h, cfg.cpuburn_shares);
  }
  return h;
}

Watts SocketFloorW(const RackSocketConfig& cfg) {
  if (cfg.min_budget_w > Watts{0.0}) {
    return cfg.min_budget_w;
  }
  return cfg.platform.has_rapl_limit ? cfg.platform.rapl_min_w : cfg.platform.tdp_w / 4.0;
}

Watts SocketCeilingW(const RackSocketConfig& cfg) {
  if (cfg.max_budget_w > Watts{0.0}) {
    return cfg.max_budget_w;
  }
  return cfg.platform.has_rapl_limit ? cfg.platform.rapl_max_w : cfg.platform.tdp_w;
}

void ValidateSocketBudgetBounds(const RackSocketConfig& cfg) {
  PAPD_CHECK_LE(SocketFloorW(cfg), SocketCeilingW(cfg))
      << " socket budget floor above ceiling (platform " << cfg.platform.name
      << "); fix min_budget_w/max_budget_w";
}

SocketStack::SocketStack(const RackSocketConfig& cfg, Seconds period_s, Seconds tick_s,
                         Watts initial_budget_w, ObsSink* obs_sink, int16_t shard,
                         const TickOptions& tick)
    : config(cfg), pkg(cfg.platform), msr(&pkg), sim(&pkg, tick_s) {
  PAPD_CHECK_LE(static_cast<int>(cfg.apps.size()), cfg.platform.num_cores);
  ValidateSocketBudgetBounds(cfg);
  pkg.SetTickPolicy(tick.policy, tick.max_hold_ticks);
  std::vector<ManagedApp> managed;
  if (cfg.websearch) {
    // Serving socket: open-loop websearch on all-but-one core, mirroring
    // RunWebsearch's layout (optionally a cpuburn virus on the last core).
    PAPD_CHECK(cfg.apps.empty()) << " websearch sockets take no app mix";
    const int burn_cpu = cfg.platform.num_cores - 1;
    std::vector<int> ws_cores;
    for (int c = 0; c < burn_cpu; c++) {
      ws_cores.push_back(c);
    }
    websearch = std::make_unique<WebSearch>(ws_cores, cfg.websearch_params, cfg.seed);
    pkg.AttachMultiWork(websearch.get());
    const Ips ws_baseline = IpsAtMhz(cfg.platform.turbo_max_mhz, cfg.websearch_params.ipc);
    for (int c : ws_cores) {
      managed.push_back(ManagedApp{.name = "websearch",
                                   .cpu = c,
                                   .shares = cfg.websearch_shares,
                                   .high_priority = true,
                                   .baseline_ips = ws_baseline});
    }
    if (cfg.with_cpuburn) {
      procs.push_back(std::make_unique<Process>(GetProfile("cpuburn"), cfg.seed + 7));
      pkg.AttachWork(burn_cpu, procs.back().get());
      managed.push_back(ManagedApp{
          .name = "cpuburn",
          .cpu = burn_cpu,
          .shares = cfg.cpuburn_shares,
          .high_priority = false,
          .baseline_ips = cfg.use_baseline_ips ? Standalone(cfg.platform, "cpuburn").ips
                                               : ws_baseline,
      });
    } else {
      pkg.SetRequestedMhz(burn_cpu, cfg.platform.min_mhz);
    }
  } else {
    for (size_t i = 0; i < cfg.apps.size(); i++) {
      const AppSetup& setup = cfg.apps[i];
      procs.push_back(
          std::make_unique<Process>(GetProfile(setup.profile), cfg.seed + 1000 * i));
      pkg.AttachWork(static_cast<int>(i), procs.back().get());
      managed.push_back(ManagedApp{
          .name = setup.profile,
          .cpu = static_cast<int>(i),
          .shares = setup.shares,
          .high_priority = setup.high_priority,
          .baseline_ips = cfg.use_baseline_ips
                              ? Standalone(cfg.platform, setup.profile).ips
                              : Ips{0.0},
      });
    }
    for (int c = static_cast<int>(cfg.apps.size()); c < pkg.num_cores(); c++) {
      pkg.SetRequestedMhz(c, cfg.platform.min_mhz);
    }
  }

  DaemonConfig dcfg;
  dcfg.kind = cfg.policy;
  dcfg.power_limit_w = initial_budget_w;
  dcfg.period_s = period_s;
  dcfg.audit = cfg.audit;
  // Shard-tagged events: each socket daemon stamps its own index, so a
  // shared recorder can split the rack/cluster back into per-socket tracks.
  dcfg.obs = DaemonObs{.sink = obs_sink, .shard = shard};
  daemon = std::make_unique<PowerDaemon>(&msr, std::move(managed), dcfg);
  daemon->Start();
  tick_opts_ = tick;
  hold_mode = tick.socket_hold && tick.policy == TickPolicy::kMultiRate;
  if (hold_mode) {
    // The daemon is driven explicitly from AdvancePeriod (so quiescent
    // periods can skip it); nothing is registered with the simulator.
    last_limit_w_ = daemon->config().power_limit_w;
    held_epoch_ = pkg.control_epoch();
  } else {
    sim.AddPeriodic(period_s, [this](Seconds) { daemon->Step(); });
  }
}

// PAPD_HOT
void SocketStack::AdvancePeriod(Seconds period_s) {
  const Joules start_j{pkg.package_energy_j()};
  const Seconds start_s{pkg.now()};
  if (hold_mode) {
    sim.RunCoarse(period_s);
  } else {
    sim.Run(period_s);
  }
  // Divide the energy delta by the time the simulator *actually* advanced:
  // when period_s is not an integer multiple of the tick, Run() overshoots
  // by a fraction of a tick, and dividing by the nominal period would bias
  // every measurement high (feeding a too-hot demand claim to the arbiter).
  const Seconds elapsed_s{pkg.now() - start_s};
  last_measured_w = (pkg.package_energy_j() - start_j) / elapsed_s;
  if (hold_mode) {
    StepDaemonHeld();
  }
}

// PAPD_HOT
void SocketStack::StepDaemonHeld() {
  // The hold predicate, checked against the state captured when the hold
  // engaged: unchanged grant (the arbiter writes config().power_limit_w
  // between periods), no control-plane writes (epoch), degradation ladder
  // nominal, no fault plan armed, and measured power inside the band.
  const bool faults_armed = msr.faults() != nullptr;
  if (daemon_held) {
    const bool state_ok = !faults_armed &&
                          daemon->degradation_state() == DegradationState::kNominal &&
                          daemon->config().power_limit_w == last_limit_w_ &&
                          pkg.control_epoch() == held_epoch_;
    const double band = tick_opts_.hold_power_band;
    const bool in_band =
        std::abs((last_measured_w - held_power_w_).value()) <=
        band * std::abs(held_power_w_.value());
    const bool recheck_due =
        tick_opts_.hold_recheck_periods > 0 &&
        ++held_periods_since_recheck_ >= tick_opts_.hold_recheck_periods;
    if (state_ok && in_band && !recheck_due) {
      daemon_steps_skipped++;
      return;
    }
    daemon_held = false;
    quiet_streak_ = 0;
    if (!state_ok || !in_band) {
      hold_resyncs++;
    }
  }

  // Live step, instrumented for quiescence: a step is quiet when it wrote
  // nothing to the package (the daemon skips unchanged reprogramming, so
  // the epoch only moves on real control actions) and the ladder stayed
  // nominal with the grant unchanged since the previous period.
  const uint64_t pre_epoch = pkg.control_epoch();
  const Watts limit{daemon->config().power_limit_w};
  daemon->Step();
  const bool quiet = !faults_armed && pkg.control_epoch() == pre_epoch &&
                     daemon->degradation_state() == DegradationState::kNominal &&
                     limit == last_limit_w_;
  last_limit_w_ = limit;
  quiet_streak_ = quiet ? quiet_streak_ + 1 : 0;
  if (quiet_streak_ >= kQuietPeriodsToHold) {
    daemon_held = true;
    held_epoch_ = pkg.control_epoch();
    held_power_w_ = last_measured_w;
    held_periods_since_recheck_ = 0;
  }
}

}  // namespace papd
