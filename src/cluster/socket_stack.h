// The per-socket simulation stack shared by the rack arbiter and the
// cluster budget tree.
//
// A SocketStack is one full per-socket pipeline, mirroring RunScenario's
// stack: the package, its MSR surface, the pinned processes, the policy
// daemon, and a simulator driving ticks + periodic daemon steps.  Stacks
// share nothing mutable, so a rack (or a budget tree's leaf set) can
// advance them on worker threads without synchronization and stay
// bit-identical to a serial run.

#ifndef SRC_CLUSTER_SOCKET_STACK_H_
#define SRC_CLUSTER_SOCKET_STACK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/experiments/harness.h"
#include "src/msr/msr.h"
#include "src/policy/daemon.h"
#include "src/specsim/workload.h"

namespace papd {

// How a budget arbiter (rack or tree node) sizes each child's claim before
// distributing.
enum class RackArbiterKind {
  // Pure share-proportional split between each child's floor and ceiling.
  kShares,
  // Demand-following: a child's claim is capped just above its measured
  // draw, so surplus from lightly loaded children flows to busy ones
  // (min-funding revocation does the redistribution).
  kDemand,
};

// One socket of a rack or budget tree: a platform running a fixed app mix
// under its own PowerDaemon.
struct RackSocketConfig {
  PlatformSpec platform;
  std::vector<AppSetup> apps;
  PolicyKind policy = PolicyKind::kFrequencyShares;
  // Arbiter share weight for budget splits.
  double shares = 1.0;
  // Budget floor the arbiter guarantees this socket (>= the socket's idle
  // draw, or the daemon would throttle forever); 0 derives a floor from the
  // platform's RAPL minimum (or 1/4 TDP without RAPL).
  Watts min_budget_w{0.0};
  // Budget ceiling; 0 derives it from rapl_max_w (or TDP without RAPL).
  Watts max_budget_w{0.0};
  uint64_t seed = 42;
  // Run the per-socket daemon's invariant auditor.
  bool audit = true;
  // Use measured standalone baselines (kPerformanceShares needs them; costs
  // one cached standalone simulation per distinct profile).
  bool use_baseline_ips = true;
};

// Budget floor / ceiling an arbiter uses for this socket (explicit config
// value, or derived from the platform).
Watts SocketFloorW(const RackSocketConfig& cfg);
Watts SocketCeilingW(const RackSocketConfig& cfg);

// Aborts when the configured floor exceeds the ceiling.  Arbiters clamp
// demand claims with std::clamp(demand, floor, ceiling), which is UB on an
// inverted range — every arbiter validates its sockets up front instead of
// trusting the config.
void ValidateSocketBudgetBounds(const RackSocketConfig& cfg);

struct SocketStack {
  SocketStack(const RackSocketConfig& cfg, Seconds period_s, Seconds tick_s,
              Watts initial_budget_w, ObsSink* obs_sink, int16_t shard,
              const TickOptions& tick);

  SocketStack(const SocketStack&) = delete;
  SocketStack& operator=(const SocketStack&) = delete;

  // Advances one control period and records the average power drawn in it.
  void AdvancePeriod(Seconds period_s);

  RackSocketConfig config;
  Package pkg;
  MsrFile msr;
  std::vector<std::unique_ptr<Process>> procs;
  std::unique_ptr<PowerDaemon> daemon;
  Simulator sim;
  Watts last_measured_w{0.0};
};

}  // namespace papd

#endif  // SRC_CLUSTER_SOCKET_STACK_H_
