// The per-socket simulation stack shared by the rack arbiter and the
// cluster budget tree.
//
// A SocketStack is one full per-socket pipeline, mirroring RunScenario's
// stack: the package, its MSR surface, the pinned processes, the policy
// daemon, and a simulator driving ticks + periodic daemon steps.  Stacks
// share nothing mutable, so a rack (or a budget tree's leaf set) can
// advance them on worker threads without synchronization and stay
// bit-identical to a serial run.

#ifndef SRC_CLUSTER_SOCKET_STACK_H_
#define SRC_CLUSTER_SOCKET_STACK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/experiments/harness.h"
#include "src/msr/msr.h"
#include "src/policy/daemon.h"
#include "src/specsim/websearch.h"
#include "src/specsim/workload.h"

namespace papd {

// How a budget arbiter (rack or tree node) sizes each child's claim before
// distributing.
enum class RackArbiterKind {
  // Pure share-proportional split between each child's floor and ceiling.
  kShares,
  // Demand-following: a child's claim is capped just above its measured
  // draw, so surplus from lightly loaded children flows to busy ones
  // (min-funding revocation does the redistribution).
  kDemand,
  // Share-proportional like kShares, but each node's shares are multiplied
  // by a per-node bias maintained by an SloFeedbackArbiter
  // (src/policy/slo_feedback.h): watts drift toward latency-violating
  // subtrees, bounded-step with hysteresis.  Bounds are untouched, so the
  // structural cap invariant is unaffected.
  kSloFeedback,
};

inline constexpr int kNumRackArbiterKinds = 3;

// Stable name for bench JSON / sweep plot keys; covered by the papd_lint
// registry-completeness rule like the other registered enums.
const char* RackArbiterKindName(RackArbiterKind kind);

// One socket of a rack or budget tree: a platform running a fixed app mix
// under its own PowerDaemon.
struct RackSocketConfig {
  PlatformSpec platform;
  std::vector<AppSetup> apps;
  PolicyKind policy = PolicyKind::kFrequencyShares;
  // Arbiter share weight for budget splits.
  double shares = 1.0;
  // Budget floor the arbiter guarantees this socket (>= the socket's idle
  // draw, or the daemon would throttle forever); 0 derives a floor from the
  // platform's RAPL minimum (or 1/4 TDP without RAPL).
  Watts min_budget_w{0.0};
  // Budget ceiling; 0 derives it from rapl_max_w (or TDP without RAPL).
  Watts max_budget_w{0.0};
  uint64_t seed = 42;
  // Run the per-socket daemon's invariant auditor.
  bool audit = true;
  // Use measured standalone baselines (kPerformanceShares needs them; costs
  // one cached standalone simulation per distinct profile).
  bool use_baseline_ips = true;

  // --- Serving-socket mode ---------------------------------------------------
  // When set, the socket runs an open-loop websearch service on cores
  // 0..n-2 (optionally a cpuburn power virus on the last core) instead of
  // the `apps` process mix; `apps` must then be empty.  This is how Fleet
  // builds latency-sensitive leaves on top of the same SocketStack the
  // rack and budget tree already drive.
  bool websearch = false;
  WebSearch::Params websearch_params;
  bool with_cpuburn = false;
  double websearch_shares = 90.0;
  double cpuburn_shares = 10.0;
};

// Budget floor / ceiling an arbiter uses for this socket (explicit config
// value, or derived from the platform).
Watts SocketFloorW(const RackSocketConfig& cfg);
Watts SocketCeilingW(const RackSocketConfig& cfg);

// FNV-1a hash over every simulation-relevant field of the config (platform
// spec, app mix, policy, shares, bounds, seed, flags).  Two sockets with
// equal hashes evolve identically under equal grant histories — the replica
// memoization key (BudgetTree groups leaves by this plus the initial grant
// bits).
uint64_t HashSocketConfig(const RackSocketConfig& cfg);

// Aborts when the configured floor exceeds the ceiling.  Arbiters clamp
// demand claims with std::clamp(demand, floor, ceiling), which is UB on an
// inverted range — every arbiter validates its sockets up front instead of
// trusting the config.
void ValidateSocketBudgetBounds(const RackSocketConfig& cfg);

struct SocketStack {
  SocketStack(const RackSocketConfig& cfg, Seconds period_s, Seconds tick_s,
              Watts initial_budget_w, ObsSink* obs_sink, int16_t shard,
              const TickOptions& tick);

  SocketStack(const SocketStack&) = delete;
  SocketStack& operator=(const SocketStack&) = delete;

  // Advances one control period and records the average power drawn in it.
  // Under TickOptions::socket_hold the period advances through
  // AdvanceSteady segments and the daemon step is *skipped* once the daemon
  // has been quiescent for kQuietPeriodsToHold periods; any grant change,
  // control-epoch bump, ladder departure, fault arming, or out-of-band
  // power drift resyncs back to live daemon stepping.
  void AdvancePeriod(Seconds period_s);

  // Consecutive quiescent daemon periods before daemon stepping is held.
  static constexpr int kQuietPeriodsToHold = 3;

  RackSocketConfig config;
  Package pkg;
  MsrFile msr;
  std::vector<std::unique_ptr<Process>> procs;
  // The open-loop service when config.websearch is set; nullptr otherwise.
  std::unique_ptr<WebSearch> websearch;
  std::unique_ptr<PowerDaemon> daemon;
  Simulator sim;
  Watts last_measured_w{0.0};

  // --- Socket-hold state (only used when hold_mode) ------------------------
  bool hold_mode = false;     // socket_hold requested && policy is kMultiRate.
  bool daemon_held = false;   // Daemon steps currently skipped.
  uint64_t daemon_steps_skipped = 0;
  uint64_t hold_resyncs = 0;  // Hold exits forced by a predicate failure.

 private:
  // Runs (or skips) the daemon for the period that just finished and
  // updates the hold state machine.
  void StepDaemonHeld();

  TickOptions tick_opts_;
  int quiet_streak_ = 0;
  // Snapshot when the hold engaged / after the last live step.
  uint64_t held_epoch_ = 0;
  Watts last_limit_w_{0.0};
  Watts held_power_w_{0.0};
  int held_periods_since_recheck_ = 0;
};

}  // namespace papd

#endif  // SRC_CLUSTER_SOCKET_STACK_H_
