// Runtime invariant checking: CHECK / DCHECK macro family.
//
// The policy stack encodes correctness conditions the compiler cannot see
// (budget conservation, revocation termination, the Ryzen 3-P-state limit).
// These macros make violations loud: a failed check prints the failing
// condition, its operands, the source location and any streamed context to
// stderr, then aborts.  Unlike assert(), PAPD_CHECK is active in every
// build type — an invariant violation in a RelWithDebInfo bench run is a
// bug, not an acceptable fast path.  PAPD_DCHECK compiles away under
// NDEBUG like assert() and is meant for hot-loop postconditions.
//
// Usage:
//   PAPD_CHECK(total >= 0.0) << "budget went negative after revocation";
//   PAPD_CHECK_LE(sum_w, limit_w + eps) << "policy " << name;
//   PAPD_DCHECK_EQ(alloc.size(), req.size());

#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace papd {
namespace internal {

// Accumulates the failure message and aborts in the destructor, so callers
// can stream extra context onto a failed check before the process dies.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }
  CheckFailure(const char* file, int line, const char* condition, const std::string& operands) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition << " ("
            << operands << ")";
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Lets the macro form an expression of type void on both branches of the
// ternary (the classic glog voidify trick).
struct Voidify {
  // const& binds both a bare CheckFailure temporary and the lvalue returned
  // by a chain of operator<< calls.
  void operator&(const CheckFailure&) {}
};

template <typename A, typename B>
std::string FormatOperands(const A& a, const B& b) {
  std::ostringstream os;
  os << a << " vs. " << b;
  return os.str();
}

}  // namespace internal
}  // namespace papd

#define PAPD_CHECK(condition)                 \
  (condition) ? (void)0                       \
              : ::papd::internal::Voidify() & \
                    ::papd::internal::CheckFailure(__FILE__, __LINE__, #condition)

#define PAPD_CHECK_OP(op, a, b)                                                 \
  ((a)op(b)) ? (void)0                                                          \
             : ::papd::internal::Voidify() &                                    \
                   ::papd::internal::CheckFailure(                              \
                       __FILE__, __LINE__, #a " " #op " " #b,                   \
                       ::papd::internal::FormatOperands((a), (b)))

#define PAPD_CHECK_EQ(a, b) PAPD_CHECK_OP(==, a, b)
#define PAPD_CHECK_NE(a, b) PAPD_CHECK_OP(!=, a, b)
#define PAPD_CHECK_LT(a, b) PAPD_CHECK_OP(<, a, b)
#define PAPD_CHECK_LE(a, b) PAPD_CHECK_OP(<=, a, b)
#define PAPD_CHECK_GT(a, b) PAPD_CHECK_OP(>, a, b)
#define PAPD_CHECK_GE(a, b) PAPD_CHECK_OP(>=, a, b)

// |a - b| <= tolerance, with the operands in the failure message.
#define PAPD_CHECK_NEAR(a, b, tolerance)                                        \
  (((a) >= (b) ? (a) - (b) : (b) - (a)) <= (tolerance))                         \
      ? (void)0                                                                 \
      : ::papd::internal::Voidify() &                                           \
            ::papd::internal::CheckFailure(                                     \
                __FILE__, __LINE__, "|" #a " - " #b "| <= " #tolerance,         \
                ::papd::internal::FormatOperands((a), (b)))

#ifdef NDEBUG
// Dead-code form: still type-checks the condition and any streamed message,
// but never evaluates either at runtime (same trick glog uses).
#define PAPD_DCHECK(condition) \
  while (false) PAPD_CHECK(condition)
#define PAPD_DCHECK_EQ(a, b) \
  while (false) PAPD_CHECK_EQ(a, b)
#define PAPD_DCHECK_NE(a, b) \
  while (false) PAPD_CHECK_NE(a, b)
#define PAPD_DCHECK_LT(a, b) \
  while (false) PAPD_CHECK_LT(a, b)
#define PAPD_DCHECK_LE(a, b) \
  while (false) PAPD_CHECK_LE(a, b)
#define PAPD_DCHECK_GT(a, b) \
  while (false) PAPD_CHECK_GT(a, b)
#define PAPD_DCHECK_GE(a, b) \
  while (false) PAPD_CHECK_GE(a, b)
#define PAPD_DCHECK_NEAR(a, b, tolerance) \
  while (false) PAPD_CHECK_NEAR(a, b, tolerance)
#else
#define PAPD_DCHECK(condition) PAPD_CHECK(condition)
#define PAPD_DCHECK_EQ(a, b) PAPD_CHECK_EQ(a, b)
#define PAPD_DCHECK_NE(a, b) PAPD_CHECK_NE(a, b)
#define PAPD_DCHECK_LT(a, b) PAPD_CHECK_LT(a, b)
#define PAPD_DCHECK_LE(a, b) PAPD_CHECK_LE(a, b)
#define PAPD_DCHECK_GT(a, b) PAPD_CHECK_GT(a, b)
#define PAPD_DCHECK_GE(a, b) PAPD_CHECK_GE(a, b)
#define PAPD_DCHECK_NEAR(a, b, tolerance) PAPD_CHECK_NEAR(a, b, tolerance)
#endif

#endif  // SRC_COMMON_CHECK_H_
