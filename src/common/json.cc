#include "src/common/json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace papd {
namespace json {

const Value* Value::Find(const std::string& key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const Member& m : object_) {
    if (m.first == key) {
      return &m.second;
    }
  }
  return nullptr;
}

double Value::NumberOr(const std::string& key, double fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsNumber() : fallback;
}

std::string Value::StringOr(const std::string& key, const std::string& fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

Value Value::MakeBool(bool v) {
  Value out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

Value Value::MakeNumber(double v) {
  Value out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

Value Value::MakeString(std::string v) {
  Value out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

Value Value::MakeArray(std::vector<Value> v) {
  Value out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(v);
  return out;
}

Value Value::MakeObject(std::vector<Member> v) {
  Value out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(v);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ParseResult Run() {
    ParseResult result;
    SkipWhitespace();
    if (!ParseValue(&result.value)) {
      result.error = error_;
      return result;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      Fail("trailing characters after document");
      result.error = error_;
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  bool ParseValue(Value* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        return ParseString(out);
      case 't':
      case 'f':
        return ParseBool(out);
      case 'n':
        return ParseNull(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(Value* out) {
    pos_++;  // '{'
    std::vector<Value::Member> members;
    SkipWhitespace();
    if (Peek() == '}') {
      pos_++;
      *out = Value::MakeObject(std::move(members));
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '"') {
        return Fail("expected object key string");
      }
      Value key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWhitespace();
      if (Peek() != ':') {
        return Fail("expected ':' after object key");
      }
      pos_++;
      SkipWhitespace();
      Value value;
      if (!ParseValue(&value)) {
        return false;
      }
      members.emplace_back(key.AsString(), std::move(value));
      SkipWhitespace();
      if (Peek() == ',') {
        pos_++;
        continue;
      }
      if (Peek() == '}') {
        pos_++;
        *out = Value::MakeObject(std::move(members));
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(Value* out) {
    pos_++;  // '['
    std::vector<Value> elements;
    SkipWhitespace();
    if (Peek() == ']') {
      pos_++;
      *out = Value::MakeArray(std::move(elements));
      return true;
    }
    while (true) {
      SkipWhitespace();
      Value element;
      if (!ParseValue(&element)) {
        return false;
      }
      elements.push_back(std::move(element));
      SkipWhitespace();
      if (Peek() == ',') {
        pos_++;
        continue;
      }
      if (Peek() == ']') {
        pos_++;
        *out = Value::MakeArray(std::move(elements));
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(Value* out) {
    pos_++;  // '"'
    std::string s;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        pos_++;
        *out = Value::MakeString(std::move(s));
        return true;
      }
      if (c == '\\') {
        pos_++;
        if (pos_ >= text_.size()) {
          break;
        }
        switch (text_[pos_]) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) {
              return Fail("truncated \\u escape");
            }
            unsigned code = 0;
            for (int k = 1; k <= 4; k++) {
              const char h = text_[pos_ + static_cast<size_t>(k)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad hex digit in \\u escape");
              }
            }
            pos_ += 4;
            // UTF-8 encode (surrogate pairs are not combined — the repo's
            // writers never emit them; a lone surrogate round-trips as its
            // 3-byte encoding, which is good enough for diagnostics).
            if (code < 0x80) {
              s += static_cast<char>(code);
            } else if (code < 0x800) {
              s += static_cast<char>(0xC0 | (code >> 6));
              s += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (code >> 12));
              s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Fail("unknown escape character");
        }
        pos_++;
        continue;
      }
      s += c;
      pos_++;
    }
    return Fail("unterminated string");
  }

  bool ParseBool(Value* out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = Value::MakeBool(true);
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = Value::MakeBool(false);
      return true;
    }
    return Fail("expected 'true' or 'false'");
  }

  bool ParseNull(Value* out) {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      *out = Value::MakeNull();
      return true;
    }
    return Fail("expected 'null'");
  }

  bool ParseNumber(Value* out) {
    // JSON numbers are a strict subset of strtod's grammar; pre-validate
    // the first character so "nan", "+1", ".5" are rejected up front.
    const char first = text_[pos_];
    if (first != '-' && (first < '0' || first > '9')) {
      return Fail("expected a value");
    }
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) {
      return Fail("malformed number");
    }
    pos_ += static_cast<size_t>(end - start);
    *out = Value::MakeNumber(v);
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      pos_++;
    }
  }

  bool Fail(const char* message) {
    size_t line = 1;
    size_t column = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); i++) {
      if (text_[i] == '\n') {
        line++;
        column = 1;
      } else {
        column++;
      }
    }
    char buf[160];
    std::snprintf(buf, sizeof(buf), "line %zu:%zu: %s", line, column, message);
    error_ = buf;
    return false;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

ParseResult Parse(const std::string& text) { return Parser(text).Run(); }

}  // namespace json
}  // namespace papd
