// Minimal JSON reader for tooling that consumes the repo's own artifacts.
//
// The bench harness and the sweep API write JSON with hand-rolled fprintf
// (no third-party serializer, by design); papdctl's `fleet` subcommand
// needs to read those artifacts back.  This is a small recursive-descent
// parser for exactly that job: strict enough for well-formed documents,
// with position-carrying error messages, and nothing else — no SAX
// interface, no mutation, no writer (writers stay fprintf at the
// producers).  Documents it did not produce (NaN/Infinity literals,
// comments, trailing commas) are rejected.

#ifndef SRC_COMMON_JSON_H_
#define SRC_COMMON_JSON_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace papd {
namespace json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  // Object members keep document order (the artifacts are written in a
  // deliberate order; tools echo it back).
  using Member = std::pair<std::string, Value>;

  Value() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; calling the wrong one returns the type's zero value
  // rather than asserting, so lookup chains over partially-missing
  // documents stay linear (check is_*() when the distinction matters).
  bool AsBool() const { return is_bool() ? bool_ : false; }
  double AsNumber() const { return is_number() ? number_ : 0.0; }
  const std::string& AsString() const { return string_; }
  const std::vector<Value>& AsArray() const { return array_; }
  const std::vector<Member>& AsObject() const { return object_; }

  // Object lookup; nullptr when absent or this is not an object.
  const Value* Find(const std::string& key) const;

  // Conveniences for "key, or default" reads on objects.
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key, const std::string& fallback) const;

  // Construction is via Parse(); these are for the parser and tests.
  static Value MakeNull() { return Value(); }
  static Value MakeBool(bool v);
  static Value MakeNumber(double v);
  static Value MakeString(std::string v);
  static Value MakeArray(std::vector<Value> v);
  static Value MakeObject(std::vector<Member> v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> object_;
};

struct ParseResult {
  bool ok = false;
  Value value;
  // On failure: "line L:C: message".
  std::string error;
};

// Parses one complete JSON document (trailing whitespace allowed, trailing
// garbage rejected).
ParseResult Parse(const std::string& text);

}  // namespace json
}  // namespace papd

#endif  // SRC_COMMON_JSON_H_
