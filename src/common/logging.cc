#include "src/common/logging.h"

#include <cstdarg>

namespace papd {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }

void SetLogLevel(LogLevel level) { g_level = level; }

void Logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level) {
    return;
  }
  std::fprintf(stderr, "[papd %s] ", LevelName(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace papd
