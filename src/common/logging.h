// Minimal leveled logging.
//
// The daemon and simulator log sparingly; benches run with warnings only so
// their stdout stays a clean reproduction of the paper's tables.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdio>
#include <string>

namespace papd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Gets/sets the global threshold; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// printf-style logging to stderr.
void Logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define PAPD_LOG_DEBUG(...) ::papd::Logf(::papd::LogLevel::kDebug, __VA_ARGS__)
#define PAPD_LOG_INFO(...) ::papd::Logf(::papd::LogLevel::kInfo, __VA_ARGS__)
#define PAPD_LOG_WARN(...) ::papd::Logf(::papd::LogLevel::kWarning, __VA_ARGS__)
#define PAPD_LOG_ERROR(...) ::papd::Logf(::papd::LogLevel::kError, __VA_ARGS__)

}  // namespace papd

#endif  // SRC_COMMON_LOGGING_H_
