// Annotated mutex primitives: papd::Mutex, papd::MutexLock, papd::CondVar.
//
// Thin zero-overhead wrappers over std::mutex / std::condition_variable
// whose only addition is the Clang capability annotations from
// thread_annotations.h, so -Wthread-safety can prove lock discipline at
// compile time.  All lock users outside src/common use these (papd_lint's
// raw-mutex rule); members they protect are declared PAPD_GUARDED_BY the
// Mutex, and functions that need a lock held are PAPD_REQUIRES it.
//
// Condition-variable waits are written as explicit loops so the predicate
// is evaluated in the caller, where the analysis can see the lock is held:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.Wait(mu_);   // ready_ is PAPD_GUARDED_BY(mu_)
//
// (A predicate-lambda Wait would hide those reads inside a lambda body the
// analysis treats as an unlocked context.)

#ifndef SRC_COMMON_MUTEX_H_
#define SRC_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace papd {

class CondVar;

// A standard exclusive mutex, annotated as a capability.
class PAPD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PAPD_ACQUIRE() { mu_.lock(); }
  void Unlock() PAPD_RELEASE() { mu_.unlock(); }
  bool TryLock() PAPD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock holder (std::lock_guard with annotations).
class PAPD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PAPD_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PAPD_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to papd::Mutex.  Wait() requires the mutex held
// and holds it again on return (it is released while blocked, as always).
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) PAPD_REQUIRES(mu) {
    // Adopt the already-held lock for the wait, then hand ownership back so
    // the caller's MutexLock remains the sole owner.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace papd

#endif  // SRC_COMMON_MUTEX_H_
