#include "src/common/rng.h"

#include <cmath>

namespace papd {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

uint64_t Rng::NextBelow(uint64_t n) {
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::Exponential(double mean) {
  // Inverse CDF; guard against log(0).
  double u = NextDouble();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(1.0 - u);
}

double Rng::Normal(double mean, double stddev) {
  if (have_spare_) {
    have_spare_ = false;
    return mean + stddev * spare_z_;
  }
  // Box-Muller yields two independent variates per uniform pair; keep the
  // sine one for the next call.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_z_ = r * std::sin(theta);
  have_spare_ = true;
  return mean + stddev * r * std::cos(theta);
}

void Rng::Jump() {
  static constexpr uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                       0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  uint64_t s0 = 0;
  uint64_t s1 = 0;
  uint64_t s2 = 0;
  uint64_t s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; b++) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      NextU64();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

Rng Rng::Split() {
  Rng child = *this;
  // Don't let both streams replay the same pending Box-Muller spare.
  child.have_spare_ = false;
  child.Jump();
  // Advance ourselves as well so repeated Split() calls yield distinct streams.
  NextU64();
  return child;
}

}  // namespace papd
