// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (websearch arrivals, workload
// phase jitter, random experiment mixes) draws from a seeded Xoshiro256**
// stream so that benches and tests are reproducible bit-for-bit.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

#include "src/common/units.h"

namespace papd {

// Xoshiro256** by Blackman & Vigna (public domain reference implementation
// re-expressed here).  Seeded through SplitMix64 so that any 64-bit seed
// yields a well-mixed initial state.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform on the full 64-bit range.
  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n).  n must be > 0.
  uint64_t NextBelow(uint64_t n);

  // Exponentially distributed with the given mean (> 0).
  double Exponential(double mean);

  // Unit-typed convenience: an exponentially distributed duration.  The
  // unwrap re-enters the double-based sampler above.
  Seconds Exponential(Seconds mean_s) { return Seconds{Exponential(mean_s.value())}; }  // papd-lint: allow(value-unwrap)

  // Normally distributed (Box-Muller).  Each uniform pair yields two
  // variates; the second is cached and returned by the next call, halving
  // the amortized cost on hot paths (workload jitter draws one per core per
  // tick).
  double Normal(double mean, double stddev);

  // Creates an independent stream: skips the generator ahead by 2^128 draws.
  Rng Split();

 private:
  uint64_t s_[4];
  // Spare standard-normal variate from the last Box-Muller pair.
  bool have_spare_ = false;
  double spare_z_ = 0.0;
  void Jump();
};

}  // namespace papd

#endif  // SRC_COMMON_RNG_H_
