#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace papd {

void Accumulator::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  count_++;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::Merge(const Accumulator& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  if (p <= 0.0) {
    return samples.front();
  }
  if (p >= 100.0) {
    return samples.back();
  }
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) {
    return samples.back();
  }
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

BoxStats Summarize(const std::vector<double>& samples) {
  BoxStats s;
  s.count = samples.size();
  if (samples.empty()) {
    return s;
  }
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  auto pct = [&sorted](double p) {
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size()) {
      return sorted.back();
    }
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
  };
  s.median = pct(50.0);
  s.q1 = pct(25.0);
  s.q3 = pct(75.0);
  s.p1 = pct(1.0);
  s.p99 = pct(99.0);
  double sum = 0.0;
  for (double x : sorted) {
    sum += x;
  }
  s.mean = sum / static_cast<double>(sorted.size());
  return s;
}

}  // namespace papd
