// Summary statistics used by the experiment harness and benches.
//
// The paper reports box plots (median, quartiles, 1st/99th percentiles) for
// the DVFS sweeps and simple means elsewhere; this header provides both.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/common/units.h"

namespace papd {

// Streaming accumulator (Welford) for mean/variance/min/max.
class Accumulator {
 public:
  void Add(double x);
  // Merges another accumulator into this one.
  void Merge(const Accumulator& other);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // Population variance; 0 for < 2 samples.
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Linear-interpolated percentile of a sample set; p in [0, 100].
// Returns 0 for an empty sample set.
double Percentile(std::vector<double> samples, double p);

// Strong-typed overload: identical algorithm over unit-typed samples (the
// interpolation uses only the Quantity-preserving operators).
template <class Tag>
Quantity<Tag> Percentile(std::vector<Quantity<Tag>> samples, double p) {
  if (samples.empty()) {
    return Quantity<Tag>{};
  }
  std::sort(samples.begin(), samples.end());
  if (p <= 0.0) {
    return samples.front();
  }
  if (p >= 100.0) {
    return samples.back();
  }
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) {
    return samples.back();
  }
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

// Box-plot summary matching the paper's figures: median, 1st and 3rd
// quartiles, and 1st/99th percentiles as whiskers.
struct BoxStats {
  double median = 0.0;
  double q1 = 0.0;
  double q3 = 0.0;
  double p1 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  size_t count = 0;
};

BoxStats Summarize(const std::vector<double>& samples);

}  // namespace papd

#endif  // SRC_COMMON_STATS_H_
