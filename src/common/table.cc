#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace papd {

void TextTable::SetHeader(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TextTable::Print(std::ostream& os) const {
  size_t ncols = header_.size();
  for (const auto& row : rows_) {
    ncols = std::max(ncols, row.size());
  }
  std::vector<size_t> width(ncols, 0);
  auto widen = [&width](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); i++) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) {
    widen(row);
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < ncols; i++) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << std::left << std::setw(static_cast<int>(width[i])) << cell;
      if (i + 1 < ncols) {
        os << "  ";
      }
    }
    os << "\n";
  };

  if (!header_.empty()) {
    print_row(header_);
    size_t total = 0;
    for (size_t i = 0; i < ncols; i++) {
      total += width[i] + (i + 1 < ncols ? 2 : 0);
    }
    os << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) {
    print_row(row);
  }
}

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void TextTable::WriteCsv(std::ostream& os) const {
  auto write_row = [&os](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); i++) {
      if (i) {
        os << ',';
      }
      os << CsvEscape(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) {
    write_row(header_);
  }
  for (const auto& row : rows_) {
    write_row(row);
  }
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace papd
