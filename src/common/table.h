// Plain-text table and CSV output for the bench harness.
//
// Every bench binary prints the rows/series the paper's corresponding table
// or figure reports; TextTable renders them with aligned columns so the
// output is directly readable in a terminal, and WriteCsv emits the same
// data for plotting.

#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace papd {

class TextTable {
 public:
  // Sets (replaces) the header row.
  void SetHeader(std::vector<std::string> header);

  // Appends a data row.  Rows may have fewer cells than the header.
  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);

  // Renders with aligned columns, a rule under the header, and two-space
  // column gaps.
  void Print(std::ostream& os) const;

  // Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void WriteCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section banner used between experiment sub-tables.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace papd

#endif  // SRC_COMMON_TABLE_H_
