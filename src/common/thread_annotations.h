// Clang thread-safety (capability) annotation macros.
//
// The concurrency in this tree — the ThreadPool that fans scenarios and
// rack shards out, the TraceRecorder's locked registration path, the
// Standalone() baseline cache — is guarded by a handful of mutexes whose
// locking discipline used to be enforced only by TSan at runtime.  These
// macros attach that discipline to the types themselves so Clang's
// -Wthread-safety analysis proves it at compile time: every access to a
// PAPD_GUARDED_BY member is checked against the set of capabilities
// (mutexes) held at that point in the function, and a violation is a build
// error in the clang CI job (-Wthread-safety -Werror=thread-safety).
//
// Use the papd::Mutex / papd::MutexLock / papd::CondVar wrappers from
// src/common/mutex.h rather than std::mutex — the standard types carry no
// annotations, so the analysis cannot see through them (papd_lint's
// raw-mutex rule enforces this outside src/common).
//
// Under GCC (or any compiler without the attributes) every macro expands to
// nothing; the annotations are zero-cost documentation there.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#ifndef SRC_COMMON_THREAD_ANNOTATIONS_H_
#define SRC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define PAPD_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PAPD_THREAD_ANNOTATION_(x)  // no-op
#endif

// On a class: instances are a capability (a lock) the analysis tracks.
#define PAPD_CAPABILITY(name) PAPD_THREAD_ANNOTATION_(capability(name))

// On a class: RAII object that acquires a capability in its constructor and
// releases it in its destructor (MutexLock).
#define PAPD_SCOPED_CAPABILITY PAPD_THREAD_ANNOTATION_(scoped_lockable)

// On a data member: reads and writes require holding the given mutex.
#define PAPD_GUARDED_BY(x) PAPD_THREAD_ANNOTATION_(guarded_by(x))

// On a pointer member: the *pointed-to* data is guarded by the given mutex.
#define PAPD_PT_GUARDED_BY(x) PAPD_THREAD_ANNOTATION_(pt_guarded_by(x))

// On a function: the caller must hold the given capabilities (exclusively /
// shared) when calling.
#define PAPD_REQUIRES(...) PAPD_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define PAPD_REQUIRES_SHARED(...) \
  PAPD_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// On a function: acquires / releases the given capabilities (no argument:
// `this`, for the capability type's own Lock/Unlock).
#define PAPD_ACQUIRE(...) PAPD_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define PAPD_ACQUIRE_SHARED(...) \
  PAPD_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define PAPD_RELEASE(...) PAPD_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define PAPD_RELEASE_SHARED(...) \
  PAPD_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

// On a function: attempts acquisition; the first argument is the return
// value that means success.
#define PAPD_TRY_ACQUIRE(...) PAPD_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// On a function: the caller must NOT hold the given capabilities (deadlock
// prevention for functions that take the lock themselves).
#define PAPD_EXCLUDES(...) PAPD_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// On a function: asserts the capability is held (runtime-checked designs).
#define PAPD_ASSERT_CAPABILITY(x) PAPD_THREAD_ANNOTATION_(assert_capability(x))

// On a function: returns a reference to the given capability.
#define PAPD_RETURN_CAPABILITY(x) PAPD_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: disables the analysis for one function.  Reserve it for
// code whose safety argument the analysis cannot express (and say why).
#define PAPD_NO_THREAD_SAFETY_ANALYSIS PAPD_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // SRC_COMMON_THREAD_ANNOTATIONS_H_
