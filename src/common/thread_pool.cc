#include "src/common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "src/common/check.h"

namespace papd {
namespace {

// Pool whose workers are currently executing a task on this thread; used to
// reject nested submission (which can deadlock a fixed-size pool).
thread_local const ThreadPool* tls_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = DefaultJobs();
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : workers_) {
    t.join();
  }
}

int ThreadPool::DefaultJobs() {
  // Read once during pool construction, before any worker thread exists, so
  // the mt-unsafe getenv cannot race a setenv from another thread of ours.
  if (const char* env = std::getenv("PAPD_JOBS")) {  // NOLINT(concurrency-mt-unsafe)
    char* end = nullptr;
    const long jobs = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && jobs > 0) {
      return static_cast<int>(jobs);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ThreadPool::WorkerLoop() {
  tls_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) {
        cv_.Wait(mu_);
      }
      if (queue_.empty()) {
        return;  // stopping_ and drained.
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::CheckNotWorker(const char* what) const {
  if (tls_current_pool == this) {
    throw std::logic_error(std::string(what) +
                           " called from a worker of the same ThreadPool "
                           "(nested submission deadlocks a fixed-size pool)");
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  CheckNotWorker("ThreadPool::Submit");
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> result = task->get_future();
  {
    MutexLock lock(mu_);
    queue_.push([task] { (*task)(); });
  }
  cv_.NotifyOne();
  return result;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  CheckNotWorker("ThreadPool::ParallelFor");
  if (n == 0) {
    return;
  }
  if (n == 1 || num_threads() == 1) {
    // Inline serial path: identical results by the no-shared-state
    // contract, and no cross-thread hop for trivial batches.
    for (size_t i = 0; i < n; i++) {
      fn(i);
    }
    return;
  }

  // `state` lives on the caller's stack: workers must never touch it after
  // the caller's wait returns, so the counter is decremented and the
  // completion notified *under* done_mu — the waiter cannot observe
  // remaining == 0 until the last worker has released the mutex.
  struct BatchState {
    std::vector<std::exception_ptr> errors;
    Mutex done_mu;
    CondVar done_cv;
    size_t remaining PAPD_GUARDED_BY(done_mu) = 0;
  };
  BatchState state;
  state.errors.resize(n);
  {
    MutexLock init_lock(state.done_mu);
    state.remaining = n;
  }

  {
    MutexLock lock(mu_);
    for (size_t i = 0; i < n; i++) {
      queue_.push([&state, &fn, i] {
        try {
          fn(i);
        } catch (...) {
          state.errors[i] = std::current_exception();
        }
        MutexLock done_lock(state.done_mu);
        if (--state.remaining == 0) {
          state.done_cv.NotifyOne();
        }
      });
    }
  }
  cv_.NotifyAll();

  {
    MutexLock done_lock(state.done_mu);
    while (state.remaining != 0) {
      state.done_cv.Wait(state.done_mu);
    }
  }

  for (std::exception_ptr& e : state.errors) {
    if (e) {
      std::rethrow_exception(e);
    }
  }
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool pool(ThreadPool::DefaultJobs());
  return pool;
}

ShardTeam::ShardTeam(int shards, std::function<void(int shard)> body)
    : body_(std::move(body)) {
  PAPD_CHECK_GE(shards, 1);
  workers_.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; s++) {
    workers_.emplace_back([this, s] { WorkerLoop(s); });
  }
}

ShardTeam::~ShardTeam() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  start_cv_.NotifyAll();
  for (std::thread& t : workers_) {
    t.join();
  }
}

// PAPD_HOT
void ShardTeam::RunOnce() {
  {
    MutexLock lock(mu_);
    generation_++;
    running_ = shards();
  }
  start_cv_.NotifyAll();
  MutexLock lock(mu_);
  while (running_ != 0) {
    done_cv_.Wait(mu_);
  }
}

void ShardTeam::WorkerLoop(int shard) {
  uint64_t seen = 0;
  for (;;) {
    {
      MutexLock lock(mu_);
      while (!stopping_ && generation_ == seen) {
        start_cv_.Wait(mu_);
      }
      if (stopping_) {
        return;
      }
      seen = generation_;
    }
    body_(shard);
    MutexLock lock(mu_);
    if (--running_ == 0) {
      done_cv_.NotifyOne();
    }
  }
}

}  // namespace papd
