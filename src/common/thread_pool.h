// Fixed-size worker pool for scenario-level parallelism.
//
// The experiment stack replays dozens of *independent* simulated scenarios
// (each owns its Package / Simulator / RNG), so the natural unit of
// parallelism is a whole scenario.  The pool is deliberately minimal: a
// fixed worker count chosen at construction, a task queue, and ParallelFor.
// Determinism is the caller's contract — tasks must not share mutable
// state — and the pool guarantees only scheduling, never ordering.
//
// Worker count resolution (ThreadPool::DefaultJobs): the PAPD_JOBS
// environment variable if set to a positive integer, otherwise
// std::thread::hardware_concurrency().  PAPD_JOBS=1 forces serial
// execution (ParallelFor then runs inline on the caller).
//
// Nested submission is rejected: a task running on a pool worker may not
// submit to (or ParallelFor on) the same pool, because with a fixed worker
// count that deadlocks once all workers block on children.  Submit/
// ParallelFor throw std::logic_error in that case.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace papd {

class ThreadPool {
 public:
  // num_threads <= 0 resolves via DefaultJobs().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // PAPD_JOBS env override if positive, else hardware_concurrency (min 1).
  static int DefaultJobs();

  // Enqueues a task; the future completes when it finishes (exceptions are
  // captured into the future).  Throws std::logic_error when called from a
  // worker of this pool.
  std::future<void> Submit(std::function<void()> fn) PAPD_EXCLUDES(mu_);

  // Runs fn(0..n-1) across the pool and blocks until all complete.  The
  // first exception (by lowest index) is rethrown on the caller.  Runs
  // inline on the caller when n <= 1 or the pool has a single worker —
  // bit-identical to a plain serial loop either way, provided the body only
  // touches state owned by its index.  Throws std::logic_error when called
  // from a worker of this pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) PAPD_EXCLUDES(mu_);

 private:
  void WorkerLoop() PAPD_EXCLUDES(mu_);
  void CheckNotWorker(const char* what) const;

  std::vector<std::thread> workers_;
  mutable Mutex mu_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ PAPD_GUARDED_BY(mu_);
  bool stopping_ PAPD_GUARDED_BY(mu_) = false;
};

// Process-wide pool, constructed on first use with DefaultJobs() workers.
// Intended for the batch experiment APIs; tests build their own pools.
ThreadPool& GlobalThreadPool();

// Persistent fork/join team for repeated identical fan-outs.
//
// ThreadPool::ParallelFor allocates per call (queue nodes, std::function
// closures, a shared batch block) — fine for scenario batches, fatal for a
// steady-state cluster step that must be allocation-free.  A ShardTeam
// fixes the body and the shard count at construction: RunOnce() bumps a
// generation counter, wakes the persistent workers, and blocks until every
// shard reports done, touching no heap at all.  The body runs as
// body(shard) for shard in [0, shards); it must not throw (a PAPD_CHECK
// abort is the only supported failure) and must only touch state owned by
// its shard.  RunOnce() is not reentrant and must always be called from the
// same single controlling thread.
class ShardTeam {
 public:
  ShardTeam(int shards, std::function<void(int shard)> body);
  ~ShardTeam();

  ShardTeam(const ShardTeam&) = delete;
  ShardTeam& operator=(const ShardTeam&) = delete;

  int shards() const { return static_cast<int>(workers_.size()); }

  // Runs body(0..shards-1) once across the persistent workers and blocks
  // until all complete.  Performs no heap allocation.
  void RunOnce() PAPD_EXCLUDES(mu_);

 private:
  void WorkerLoop(int shard) PAPD_EXCLUDES(mu_);

  std::function<void(int)> body_;
  std::vector<std::thread> workers_;
  mutable Mutex mu_;
  CondVar start_cv_;
  CondVar done_cv_;
  uint64_t generation_ PAPD_GUARDED_BY(mu_) = 0;
  int running_ PAPD_GUARDED_BY(mu_) = 0;
  bool stopping_ PAPD_GUARDED_BY(mu_) = false;
};

}  // namespace papd

#endif  // SRC_COMMON_THREAD_POOL_H_
