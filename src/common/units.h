// Unit conventions used throughout the library.
//
// All quantities are carried as doubles with the unit encoded in the name
// (suffix or type alias).  The conventions are:
//   - frequency:   MHz        (e.g. 2200.0 for 2.2 GHz)
//   - power:       watts
//   - energy:      joules
//   - time:        seconds    (simulated time)
//   - performance: instructions per second (IPS)
//
// Keeping plain doubles (rather than strong unit types) matches the style of
// the hardware-facing code this library models: MSR values are raw integers
// with documented unit multipliers, and the translation functions in the
// policy layer deliberately mix units (power deltas into frequency deltas).

#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cmath>

namespace papd {

using Mhz = double;
using Watts = double;
using Joules = double;
using Seconds = double;
using Ips = double;  // Instructions per second.
using Volts = double;

inline constexpr double kMhzPerGhz = 1000.0;
inline constexpr double kHzPerMhz = 1.0e6;
inline constexpr double kNsPerSecond = 1.0e9;

// RAPL energy-status-register granularity: 61 microjoules per tick, the
// value used by Intel when the energy unit field reads 14 (2^-14 J).
inline constexpr double kRaplEnergyUnitJoules = 6.103515625e-05;

inline constexpr Mhz GhzToMhz(double ghz) { return ghz * kMhzPerGhz; }
inline constexpr double MhzToGhz(Mhz mhz) { return mhz / kMhzPerGhz; }

// --- Frequency-grid quantization ---------------------------------------------
//
// Both platforms program frequencies on an evenly spaced grid (Skylake:
// 100 MHz PERF_CTL ratios; Ryzen: 25 MHz P-state definitions) whose
// endpoints are themselves grid multiples, so every quantization in the
// tree reduces to rounding against multiples of the step.  These are the
// single implementation; PStateTable and the translation layers build on
// them.  The small epsilon keeps values an ulp below a grid point (from
// accumulated float error) from being knocked down a whole step.

inline constexpr double kGridSlop = 1e-9;

// Largest multiple of step_mhz that is <= mhz (within kGridSlop).
inline Mhz QuantizeDownToGrid(Mhz mhz, Mhz step_mhz) {
  return std::floor(mhz / step_mhz + kGridSlop) * step_mhz;
}

// Smallest multiple of step_mhz that is >= mhz (within kGridSlop).
inline Mhz QuantizeUpToGrid(Mhz mhz, Mhz step_mhz) {
  return std::ceil(mhz / step_mhz - kGridSlop) * step_mhz;
}

// Closest multiple of step_mhz.
inline Mhz QuantizeNearestToGrid(Mhz mhz, Mhz step_mhz) {
  return std::round(mhz / step_mhz) * step_mhz;
}

// True if mhz is a multiple of step_mhz within floating-point slop.
inline bool OnFrequencyGrid(Mhz mhz, Mhz step_mhz) {
  const double steps = mhz / step_mhz;
  return std::abs(steps - std::round(steps)) < 1e-6;
}

}  // namespace papd

#endif  // SRC_COMMON_UNITS_H_
