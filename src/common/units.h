// Physical units as zero-overhead strong types.
//
// Every quantity in the tree carries its unit in the type:
//   - frequency:   Mhz      (e.g. Mhz{2200.0} for 2.2 GHz)
//   - power:       Watts
//   - energy:      Joules
//   - time:        Seconds  (simulated time)
//   - performance: Ips      (retired instructions per second)
//   - voltage:     Volts
//
// Each is a Quantity<Tag>: a single double with *explicit* construction and
// only the dimensionally meaningful operators defined, so the policy
// layer's deliberate unit mixing (power deltas into frequency deltas) goes
// through named translation functions instead of silent arithmetic — a
// transposed argument or a watts-for-megahertz typo is a compile error, not
// a wrong answer.  The algebra:
//
//   same unit:      Q + Q, Q - Q, -Q, Q * scalar, scalar * Q, Q / scalar
//   ratio:          Q / Q            -> double   (dimensionless)
//   energy/power:   Joules / Seconds -> Watts,   Watts * Seconds -> Joules,
//                   Joules / Watts   -> Seconds
//   work:           Ips * Seconds    -> double   (instructions retired)
//                   double / Seconds -> Ips      (instruction count / time)
//   cycles:         Mhz * Seconds    -> double   (mega-cycles; scale by
//                                                 kHzPerMhz for raw cycles)
//   V^2:            Volts * Volts    -> double   (the analytic power model's
//                                                 C_eff coefficient carries
//                                                 the W / (V^2 * GHz))
//
// The escape hatch is .value(): the raw double, for the boundaries where
// dimensions genuinely end — MSR register encode/decode (raw integers with
// documented unit multipliers), the analytic power/thermal/RAPL firmware
// models whose calibrated coefficients erase dimensions, and printf-style
// formatting.  papd_lint's value-unwrap rule keeps .value() confined to
// those whitelisted boundary files; everywhere else, convert through the
// named helpers below or keep the quantity typed.  Everything is constexpr
// and inline: the wrappers compile to the identical double arithmetic
// (bit-identity is pinned by the FNV-1a golden checksums in
// tests/soa_equivalence_test.cc and the perf baseline in CI).

#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cmath>
#include <ostream>

namespace papd {

// One physical quantity: a double tagged with its dimension.  Tag is an
// incomplete marker type; see the aliases below.
template <class Tag>
class Quantity {
 public:
  constexpr Quantity() = default;  // Zero.
  explicit constexpr Quantity(double v) : v_(v) {}

  // The raw double.  Boundary files only (see the file comment).
  constexpr double value() const { return v_; }

  // --- Same-dimension algebra ------------------------------------------------
  friend constexpr Quantity operator+(Quantity a, Quantity b) { return Quantity(a.v_ + b.v_); }
  friend constexpr Quantity operator-(Quantity a, Quantity b) { return Quantity(a.v_ - b.v_); }
  friend constexpr Quantity operator-(Quantity a) { return Quantity(-a.v_); }
  friend constexpr Quantity operator+(Quantity a) { return a; }
  friend constexpr Quantity operator*(Quantity a, double s) { return Quantity(a.v_ * s); }
  friend constexpr Quantity operator*(double s, Quantity a) { return Quantity(s * a.v_); }
  friend constexpr Quantity operator/(Quantity a, double s) { return Quantity(a.v_ / s); }
  // Dimensionless ratio.
  friend constexpr double operator/(Quantity a, Quantity b) { return a.v_ / b.v_; }

  constexpr Quantity& operator+=(Quantity b) {
    v_ += b.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity b) {
    v_ -= b.v_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    v_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    v_ /= s;
    return *this;
  }

  friend constexpr bool operator==(Quantity a, Quantity b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Quantity a, Quantity b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(Quantity a, Quantity b) { return a.v_ < b.v_; }
  friend constexpr bool operator<=(Quantity a, Quantity b) { return a.v_ <= b.v_; }
  friend constexpr bool operator>(Quantity a, Quantity b) { return a.v_ > b.v_; }
  friend constexpr bool operator>=(Quantity a, Quantity b) { return a.v_ >= b.v_; }

  // Diagnostics (CHECK/assert messages, test failure output): prints the
  // bare magnitude, matching the pre-strong-type formatting.
  friend std::ostream& operator<<(std::ostream& os, Quantity q) { return os << q.v_; }

 private:
  double v_ = 0.0;
};

template <class Tag>
bool IsFinite(Quantity<Tag> q) {
  return std::isfinite(q.value());
}

template <class Tag>
constexpr Quantity<Tag> Abs(Quantity<Tag> q) {
  return q < Quantity<Tag>{} ? -q : q;
}

using Mhz = Quantity<struct MhzTag>;
using Watts = Quantity<struct WattsTag>;
using Joules = Quantity<struct JoulesTag>;
using Seconds = Quantity<struct SecondsTag>;
using Ips = Quantity<struct IpsTag>;  // Retired instructions per second.
using Volts = Quantity<struct VoltsTag>;

// --- Cross-dimension algebra -------------------------------------------------

constexpr Joules operator*(Watts w, Seconds s) { return Joules(w.value() * s.value()); }
constexpr Joules operator*(Seconds s, Watts w) { return Joules(s.value() * w.value()); }
constexpr Watts operator/(Joules j, Seconds s) { return Watts(j.value() / s.value()); }
constexpr Seconds operator/(Joules j, Watts w) { return Seconds(j.value() / w.value()); }

// Instructions retired over an interval (a dimensionless count), and the
// inverse: a count over an interval is a rate.
constexpr double operator*(Ips r, Seconds s) { return r.value() * s.value(); }
constexpr double operator*(Seconds s, Ips r) { return s.value() * r.value(); }
constexpr Ips operator/(double count, Seconds s) { return Ips(count / s.value()); }
constexpr Seconds operator/(double count, Ips r) { return Seconds(count / r.value()); }

// Mega-cycles accumulated over an interval; callers scale by kHzPerMhz when
// they need raw cycle counts (APERF/MPERF accounting).
constexpr double operator*(Mhz f, Seconds s) { return f.value() * s.value(); }
constexpr double operator*(Seconds s, Mhz f) { return s.value() * f.value(); }

// V^2, for the analytic power model (P_dyn ~ C_eff * V^2 * f).
constexpr double operator*(Volts a, Volts b) { return a.value() * b.value(); }

inline constexpr double kMhzPerGhz = 1000.0;
inline constexpr double kHzPerMhz = 1.0e6;
inline constexpr double kNsPerSecond = 1.0e9;

// RAPL energy-status-register granularity: 61 microjoules per tick, the
// value used by Intel when the energy unit field reads 14 (2^-14 J).
inline constexpr double kRaplEnergyUnitJoules = 6.103515625e-05;

constexpr Mhz GhzToMhz(double ghz) { return Mhz(ghz * kMhzPerGhz); }
constexpr double MhzToGhz(Mhz mhz) { return mhz.value() / kMhzPerGhz; }

// Service rate of a core at frequency `f` with the given IPC: the named
// frequency -> performance translation (the only sanctioned Mhz -> Ips
// crossing outside the boundary files).
constexpr Ips IpsAtMhz(Mhz f, double ipc) { return Ips(f.value() * kHzPerMhz * ipc); }

// Time to retire `cycles` at frequency `f`.  Cycle counts stay plain
// doubles (they are dimensionless work, not a physical unit); this is the
// sanctioned cycles -> Seconds crossing for the workload simulators.
constexpr Seconds SecondsForCycles(double cycles, Mhz f) {
  return Seconds(cycles / (f.value() * kHzPerMhz));
}

// Proportional-controller crossing: a gain in MHz-per-watt applied to a
// power error.  Keeps the dimension change explicit and greppable instead
// of scattering .value() through the policy layer.
constexpr Mhz MhzPerWattGain(double mhz_per_watt, Watts error_w) {
  return Mhz(mhz_per_watt * error_w.value());
}

// The min-funding distributor (src/policy/min_funding.h) is unit-agnostic
// by design: callers split watts, megahertz or normalized performance
// through the same code.  This is the sanctioned bridge from a typed
// quantity into that dimensionless resource space (and Mhz{} / Watts{}
// construction is the bridge back).
template <class Tag>
constexpr double AsResourceUnits(Quantity<Tag> q) {
  return q.value();
}

// --- Frequency-grid quantization ---------------------------------------------
//
// Both platforms program frequencies on an evenly spaced grid (Skylake:
// 100 MHz PERF_CTL ratios; Ryzen: 25 MHz P-state definitions) whose
// endpoints are themselves grid multiples, so every quantization in the
// tree reduces to rounding against multiples of the step.  These are the
// single implementation; PStateTable and the translation layers build on
// them.  The small epsilon keeps values an ulp below a grid point (from
// accumulated float error) from being knocked down a whole step.

inline constexpr double kGridSlop = 1e-9;

// Largest multiple of step_mhz that is <= mhz (within kGridSlop).
inline Mhz QuantizeDownToGrid(Mhz mhz, Mhz step_mhz) {
  return std::floor(mhz / step_mhz + kGridSlop) * step_mhz;
}

// Smallest multiple of step_mhz that is >= mhz (within kGridSlop).
inline Mhz QuantizeUpToGrid(Mhz mhz, Mhz step_mhz) {
  return std::ceil(mhz / step_mhz - kGridSlop) * step_mhz;
}

// Closest multiple of step_mhz.
inline Mhz QuantizeNearestToGrid(Mhz mhz, Mhz step_mhz) {
  return std::round(mhz / step_mhz) * step_mhz;
}

// True if mhz is a multiple of step_mhz within floating-point slop.
inline bool OnFrequencyGrid(Mhz mhz, Mhz step_mhz) {
  const double steps = mhz / step_mhz;
  return std::abs(steps - std::round(steps)) < 1e-6;
}

}  // namespace papd

#endif  // SRC_COMMON_UNITS_H_
