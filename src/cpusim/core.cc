#include "src/cpusim/core.h"

// Core is header-only state; this translation unit exists so the class has a
// home object file and the header stays cheap to include.
