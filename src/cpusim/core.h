// One simulated core: DVFS request state, C-state, hardware counters.

#ifndef SRC_CPUSIM_CORE_H_
#define SRC_CPUSIM_CORE_H_

#include "src/common/units.h"
#include "src/specsim/core_work.h"

namespace papd {

class Core {
 public:
  Core(int id, Mhz initial_mhz) : id_(id), requested_mhz_(initial_mhz) {}

  int id() const { return id_; }

  // --- Software-visible control state -------------------------------------
  // Requested (programmed) frequency; the package clamps it by turbo
  // headroom, AVX caps, and the RAPL ceiling to get the effective frequency.
  Mhz requested_mhz() const { return requested_mhz_; }
  void set_requested_mhz(Mhz mhz) { requested_mhz_ = mhz; }

  // Online = C0/C1; offline models a forced deep C-state (core idling,
  // paper Section 2.1): the core does not execute and draws ~milliwatts.
  bool online() const { return online_; }
  void set_online(bool v) { online_ = v; }

  // --- Work attachment -----------------------------------------------------
  // Exactly one of: a single-core work, membership in a multi-core work
  // (tracked by the package), or nothing.
  CoreWork* work() const { return work_; }
  void set_work(CoreWork* work) { work_ = work; }

  // --- Per-tick results (set by Package::Tick) -----------------------------
  Mhz effective_mhz() const { return effective_mhz_; }
  const WorkSlice& last_slice() const { return last_slice_; }
  Watts power_w() const { return power_w_; }

  void SetTickResults(Mhz effective_mhz, const WorkSlice& slice, Watts power_w) {
    effective_mhz_ = effective_mhz;
    last_slice_ = slice;
    power_w_ = power_w;
  }

  // --- Hardware counters (monotonic; read via MsrFile) ---------------------
  double aperf_cycles() const { return aperf_cycles_; }
  double mperf_cycles() const { return mperf_cycles_; }
  double instructions_retired() const { return instructions_retired_; }
  Joules energy_j() const { return energy_j_; }

  void AdvanceCounters(Seconds dt, Mhz tsc_mhz) {
    const double busy = last_slice_.busy_fraction;
    aperf_cycles_ += effective_mhz_ * kHzPerMhz * dt * busy;
    mperf_cycles_ += tsc_mhz * kHzPerMhz * dt * busy;
    instructions_retired_ += last_slice_.instructions;
    energy_j_ += power_w_ * dt;
  }

 private:
  int id_;
  Mhz requested_mhz_;
  bool online_ = true;
  CoreWork* work_ = nullptr;

  Mhz effective_mhz_ = 0.0;
  WorkSlice last_slice_;
  Watts power_w_ = 0.0;

  double aperf_cycles_ = 0.0;
  double mperf_cycles_ = 0.0;
  double instructions_retired_ = 0.0;
  Joules energy_j_ = 0.0;
};

}  // namespace papd

#endif  // SRC_CPUSIM_CORE_H_
