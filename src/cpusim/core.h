// Per-core simulated state, stored structure-of-arrays.
//
// All mutable per-core state (DVFS request, C-state, attached work, per-tick
// results, hardware counters, voltage-curve memo) lives in flat CoreArray
// vectors owned by Package, so the tick engine's passes are branch-light
// loops over contiguous arrays instead of strided walks over fat Core
// objects.  `Core` is a cheap read-only *view* of one lane: `pkg.core(i)`
// returns it by value, and existing `const Core&` callers bind to the
// temporary unchanged.  Mutations go through Package methods
// (SetRequestedMhz, SetOnline, AttachWork, ...), never through the view.

#ifndef SRC_CPUSIM_CORE_H_
#define SRC_CPUSIM_CORE_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"
#include "src/specsim/core_work.h"

namespace papd {

// Flat per-core state; index = core id.  The tick engine indexes the vectors
// directly; everything else reads through the Core view.
struct CoreArray {
  CoreArray(int n, Mhz initial_mhz)
      : requested_mhz(static_cast<size_t>(n), initial_mhz),
        online(static_cast<size_t>(n), 1),
        work(static_cast<size_t>(n), nullptr),
        has_work(static_cast<size_t>(n), 0),
        work_avx(static_cast<size_t>(n), 0),
        effective_mhz(static_cast<size_t>(n), Mhz{0.0}),
        slice(static_cast<size_t>(n)),
        power_w(static_cast<size_t>(n), Watts{0.0}),
        aperf_cycles(static_cast<size_t>(n), 0.0),
        mperf_cycles(static_cast<size_t>(n), 0.0),
        instructions_retired(static_cast<size_t>(n), 0.0),
        energy_j(static_cast<size_t>(n), Joules{0.0}),
        volts_cache_mhz(static_cast<size_t>(n), Mhz{-1.0}),
        volts_cache_v(static_cast<size_t>(n), Volts{0.0}) {}

  size_t size() const { return requested_mhz.size(); }

  // Software-visible control state.
  std::vector<Mhz> requested_mhz;
  std::vector<uint8_t> online;  // Online = C0/C1; offline = forced deep C-state.
  // Work attachment (non-owning); has_work mirrors `work[i] != nullptr` as a
  // byte flag and work_avx caches work->UsesAvx(), both maintained at attach
  // time so the census pass is pure byte-vector arithmetic with no virtual
  // calls or pointer tests.
  std::vector<CoreWork*> work;
  std::vector<uint8_t> has_work;
  std::vector<uint8_t> work_avx;

  // Per-tick results (written by Package::Tick).
  std::vector<Mhz> effective_mhz;
  std::vector<WorkSlice> slice;
  std::vector<Watts> power_w;

  // Hardware counters (monotonic; read via MsrFile).
  std::vector<double> aperf_cycles;
  std::vector<double> mperf_cycles;
  std::vector<double> instructions_retired;
  std::vector<Joules> energy_j;

  // Memoized voltage-curve lookups: effective frequency rarely changes
  // between ticks, so the piecewise-linear interpolation is cached per core.
  std::vector<Mhz> volts_cache_mhz;
  std::vector<Volts> volts_cache_v;
};

// Read-only view of one core's lane in a CoreArray.
class Core {
 public:
  Core(const CoreArray* cores, int id) : cores_(cores), id_(id) {}

  int id() const { return id_; }

  // Requested (programmed) frequency; the package clamps it by turbo
  // headroom, AVX caps, and the RAPL ceiling to get the effective frequency.
  Mhz requested_mhz() const { return cores_->requested_mhz[lane()]; }

  // Online = C0/C1; offline models a forced deep C-state (core idling,
  // paper Section 2.1): the core does not execute and draws ~milliwatts.
  bool online() const { return cores_->online[lane()] != 0; }

  // Exactly one of: a single-core work, membership in a multi-core work
  // (tracked by the package), or nothing.
  CoreWork* work() const { return cores_->work[lane()]; }

  // Per-tick results (set by Package::Tick).
  Mhz effective_mhz() const { return cores_->effective_mhz[lane()]; }
  const WorkSlice& last_slice() const { return cores_->slice[lane()]; }
  Watts power_w() const { return cores_->power_w[lane()]; }

  // Hardware counters (monotonic; read via MsrFile).
  double aperf_cycles() const { return cores_->aperf_cycles[lane()]; }
  double mperf_cycles() const { return cores_->mperf_cycles[lane()]; }
  double instructions_retired() const { return cores_->instructions_retired[lane()]; }
  Joules energy_j() const { return cores_->energy_j[lane()]; }

 private:
  size_t lane() const { return static_cast<size_t>(id_); }

  const CoreArray* cores_;
  int id_;
};

}  // namespace papd

#endif  // SRC_CPUSIM_CORE_H_
