#include "src/cpusim/package.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace papd {

Package::Package(PlatformSpec spec)
    : spec_(std::move(spec)),
      pstates_(spec_.min_mhz, spec_.turbo_max_mhz, spec_.step_mhz),
      power_model_(&spec_),
      rapl_(&spec_),
      thermal_(spec_.thermal, spec_.num_cores),
      cores_(spec_.num_cores, spec_.base_max_mhz) {
  const auto n = static_cast<size_t>(spec_.num_cores);
  multi_member_.assign(n, 0);
  scratch_avx_.assign(n, 0);
  scratch_pstate_marks_.assign(pstates_.size(), 0);
}

void Package::AttachWork(int core, CoreWork* work) {
  const auto i = static_cast<size_t>(core);
  cores_.work[i] = work;
  // UsesAvx is contractually invariant while attached; cache it so the tick
  // census makes no virtual calls.
  cores_.work_avx[i] = (work != nullptr && work->UsesAvx()) ? 1 : 0;
}

void Package::DetachWork(int core) {
  const auto i = static_cast<size_t>(core);
  cores_.work[i] = nullptr;
  cores_.work_avx[i] = 0;
}

void Package::AttachMultiWork(MultiCoreWork* work) {
  MultiWorkEntry entry;
  entry.work = work;
  entry.cores = &work->Cores();
  entry.uses_avx = work->UsesAvx() ? 1 : 0;
  for (int c : *entry.cores) {
    assert(c >= 0 && c < num_cores());
    assert(cores_.work[static_cast<size_t>(c)] == nullptr);
    multi_member_[static_cast<size_t>(c)] = 1;
  }
  multi_works_.push_back(entry);
  const size_t m = entry.cores->size();
  if (scratch_multi_freqs_.size() < m) {
    scratch_multi_freqs_.resize(m);
    scratch_multi_slices_.resize(m);
  }
}

void Package::SetRequestedMhz(int core, Mhz mhz) {
  cores_.requested_mhz[static_cast<size_t>(core)] = pstates_.QuantizeDown(mhz);
}

void Package::SetOnline(int core, bool online) {
  cores_.online[static_cast<size_t>(core)] = online ? 1 : 0;
}

void Package::SetRaplLimit(Watts limit_w) {
  if (!spec_.has_rapl_limit) {
    PAPD_LOG_WARN("platform %s does not support RAPL limiting; ignored", spec_.name.c_str());
    return;
  }
  rapl_.SetLimit(limit_w);
}

void Package::ClearRaplLimit() { rapl_.Disable(); }

int Package::DistinctRequestedFrequencies() const {
  // Requested frequencies always sit on the P-state grid (SetRequestedMhz
  // quantizes), so distinct values are counted by marking grid slots in a
  // reusable bitmap instead of building a std::set per call.
  const size_t n = cores_.size();
  int distinct = 0;
  for (size_t i = 0; i < n; i++) {
    if (!cores_.online[i]) {
      continue;
    }
    const size_t slot = pstates_.IndexOf(cores_.requested_mhz[i]);
    if (!scratch_pstate_marks_[slot]) {
      scratch_pstate_marks_[slot] = 1;
      distinct++;
    }
  }
  for (size_t i = 0; i < n; i++) {
    if (cores_.online[i]) {
      scratch_pstate_marks_[pstates_.IndexOf(cores_.requested_mhz[i])] = 0;
    }
  }
  return distinct;
}

// PAPD_HOT
void Package::Tick(Seconds dt) {
  const size_t n = cores_.size();
  const uint8_t* online = cores_.online.data();
  CoreWork* const* work = cores_.work.data();
  Mhz* effective = cores_.effective_mhz.data();
  WorkSlice* slices = cores_.slice.data();

  // 1. Census: cores counted "active" (C0) for the turbo ladder, and cores
  // running AVX-heavy code for the AVX caps.  AVX flags were cached at
  // attach time, so this pass touches only flat arrays.
  int active = 0;
  int avx_active = 0;
  for (size_t i = 0; i < n; i++) {
    const bool has_work = work[i] != nullptr;
    scratch_avx_[i] = (online[i] && has_work) ? cores_.work_avx[i] : 0;
    if (!online[i] || (!has_work && !multi_member_[i])) {
      continue;
    }
    active++;
    avx_active += scratch_avx_[i];
  }
  for (const MultiWorkEntry& w : multi_works_) {
    if (w.uses_avx) {
      avx_active += static_cast<int>(w.cores->size());
    }
  }

  const Mhz turbo_limit{spec_.TurboLimitMhz(active)};
  const Mhz avx_cap{spec_.AvxCapMhz(avx_active)};
  const bool rapl_on = rapl_.enabled();
  const Mhz rapl_ceiling{rapl_.ceiling_mhz()};

  // 2. Effective frequencies, written straight into the results array
  // (offline cores report 0).
  for (size_t i = 0; i < n; i++) {
    if (!online[i]) {
      effective[i] = Mhz{0.0};
      continue;
    }
    Mhz f{std::min(cores_.requested_mhz[i], turbo_limit)};
    if (rapl_on) {
      f = std::min(f, rapl_ceiling);
    }
    if (scratch_avx_[i]) {
      f = std::min(f, avx_cap);
    }
    if (thermal_.core_temp_c(static_cast<int>(i)) >= spec_.thermal.tj_max_c) {
      // PROCHOT: the core hard-throttles to the floor until it cools.
      f = spec_.min_mhz;
    }
    effective[i] = std::max(f, spec_.min_mhz);
  }

  // 3. Run workloads; slices land in place via the span API (no per-tick
  // vector allocation and no result copies).
  for (size_t i = 0; i < n; i++) {
    if (online[i] && work[i] != nullptr) {
      work[i]->RunBatch(dt, &effective[i], &slices[i], 1);
    } else if (!multi_member_[i]) {
      slices[i] = WorkSlice{};
    }
  }
  for (const MultiWorkEntry& w : multi_works_) {
    const std::vector<int>& members = *w.cores;
    const size_t m = members.size();
    for (size_t j = 0; j < m; j++) {
      // An offlined member core contributes no cycles.
      const auto c = static_cast<size_t>(members[j]);
      scratch_multi_freqs_[j] = online[c] ? effective[c] : Mhz{0.0};
    }
    w.work->RunBatch(dt, scratch_multi_freqs_.data(), scratch_multi_slices_.data(), m);
    for (size_t j = 0; j < m; j++) {
      slices[static_cast<size_t>(members[j])] = scratch_multi_slices_[j];
    }
  }

  // 4. Power, per-tick core results, and hardware counters in one pass over
  // the flat arrays.
  Watts total{0.0};
  int busy_cores = 0;
  for (size_t i = 0; i < n; i++) {
    Watts p;
    if (!online[i]) {
      effective[i] = Mhz{0.0};  // Pass 2 already wrote 0; keep the invariant local.
      p = power_model_.OfflineCorePowerW();
    } else {
      const Mhz f{effective[i]};
      if (f != cores_.volts_cache_mhz[i]) {
        cores_.volts_cache_mhz[i] = f;
        cores_.volts_cache_v[i] = power_model_.VoltsAt(f);
      }
      p = power_model_.CorePowerW(f, slices[i].busy_fraction, slices[i].activity,
                                  cores_.volts_cache_v[i]);
      if (slices[i].busy_fraction > 0.05) {
        busy_cores++;
      }
    }
    cores_.power_w[i] = p;
    // Hardware counters (formerly Core::AdvanceCounters), same expression
    // order so results stay bit-identical.
    const double busy = slices[i].busy_fraction;
    cores_.aperf_cycles[i] += effective[i] * kHzPerMhz * dt * busy;
    cores_.mperf_cycles[i] += spec_.tsc_mhz * kHzPerMhz * dt * busy;
    cores_.instructions_retired[i] += slices[i].instructions;
    cores_.energy_j[i] += p * dt;
    total += p;
  }
  const Watts uncore{power_model_.UncorePowerW(busy_cores)};
  total += uncore;

  // 5. RAPL and the thermal model observe this tick's power.
  rapl_.Update(total, dt);
  thermal_.Update(cores_.power_w, uncore, dt);

  // 6. Bookkeeping.
  last_package_power_w_ = total;
  last_uncore_power_w_ = uncore;
  package_energy_j_ += total * dt;
  now_ += dt;
}

}  // namespace papd
