#include "src/cpusim/package.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "src/common/logging.h"

namespace papd {

Package::Package(PlatformSpec spec)
    : spec_(std::move(spec)),
      pstates_(spec_.min_mhz, spec_.turbo_max_mhz, spec_.step_mhz),
      power_model_(&spec_),
      rapl_(&spec_),
      thermal_(spec_.thermal, spec_.num_cores) {
  const auto n = static_cast<size_t>(spec_.num_cores);
  cores_.reserve(n);
  for (int i = 0; i < spec_.num_cores; i++) {
    cores_.emplace_back(i, spec_.base_max_mhz);
  }
  multi_member_.assign(n, 0);
  scratch_effective_.assign(n, 0.0);
  scratch_slices_.assign(n, WorkSlice{});
  scratch_core_powers_.assign(n, 0.0);
  scratch_avx_.assign(n, 0);
  volts_cache_mhz_.assign(n, -1.0);
  volts_cache_v_.assign(n, 0.0);
}

void Package::AttachWork(int core, CoreWork* work) {
  cores_[static_cast<size_t>(core)].set_work(work);
}

void Package::DetachWork(int core) { cores_[static_cast<size_t>(core)].set_work(nullptr); }

void Package::AttachMultiWork(MultiCoreWork* work) {
  for (int c : work->Cores()) {
    assert(c >= 0 && c < num_cores());
    assert(cores_[static_cast<size_t>(c)].work() == nullptr);
    multi_member_[static_cast<size_t>(c)] = 1;
  }
  multi_works_.push_back(work);
}

void Package::SetRequestedMhz(int core, Mhz mhz) {
  cores_[static_cast<size_t>(core)].set_requested_mhz(pstates_.QuantizeDown(mhz));
}

void Package::SetOnline(int core, bool online) {
  cores_[static_cast<size_t>(core)].set_online(online);
}

void Package::SetRaplLimit(Watts limit_w) {
  if (!spec_.has_rapl_limit) {
    PAPD_LOG_WARN("platform %s does not support RAPL limiting; ignored", spec_.name.c_str());
    return;
  }
  rapl_.SetLimit(limit_w);
}

void Package::ClearRaplLimit() { rapl_.Disable(); }

int Package::DistinctRequestedFrequencies() const {
  std::set<long> distinct;
  for (const Core& c : cores_) {
    if (c.online()) {
      distinct.insert(static_cast<long>(c.requested_mhz()));
    }
  }
  return static_cast<int>(distinct.size());
}

void Package::Tick(Seconds dt) {
  const size_t n = cores_.size();

  // 1. Census: cores counted "active" (C0) for the turbo ladder, and cores
  // running AVX-heavy code for the AVX caps.  The (virtual) UsesAvx query is
  // made once per core here and the answer reused below.
  int active = 0;
  int avx_active = 0;
  for (size_t i = 0; i < n; i++) {
    const Core& c = cores_[i];
    const bool online_with_single = c.online() && c.work() != nullptr;
    scratch_avx_[i] = online_with_single && c.work()->UsesAvx() ? 1 : 0;
    if (!c.online() || (c.work() == nullptr && !multi_member_[i])) {
      continue;
    }
    active++;
    avx_active += scratch_avx_[i];
  }
  for (const MultiCoreWork* w : multi_works_) {
    if (w->UsesAvx()) {
      avx_active += static_cast<int>(w->Cores().size());
    }
  }

  const Mhz turbo_limit = spec_.TurboLimitMhz(active);
  const Mhz avx_cap = spec_.AvxCapMhz(avx_active);
  const bool rapl_on = rapl_.enabled();
  const Mhz rapl_ceiling = rapl_.ceiling_mhz();

  // 2. Effective frequencies.
  for (size_t i = 0; i < n; i++) {
    const Core& c = cores_[i];
    if (!c.online()) {
      scratch_effective_[i] = 0.0;
      continue;
    }
    Mhz f = std::min(c.requested_mhz(), turbo_limit);
    if (rapl_on) {
      f = std::min(f, rapl_ceiling);
    }
    if (scratch_avx_[i]) {
      f = std::min(f, avx_cap);
    }
    if (thermal_.core_temp_c(static_cast<int>(i)) >= spec_.thermal.tj_max_c) {
      // PROCHOT: the core hard-throttles to the floor until it cools.
      f = spec_.min_mhz;
    }
    scratch_effective_[i] = std::max(f, spec_.min_mhz);
  }

  // 3. Run workloads.
  for (size_t i = 0; i < n; i++) {
    Core& c = cores_[i];
    if (c.online() && c.work() != nullptr) {
      scratch_slices_[i] = c.work()->Run(dt, scratch_effective_[i]);
    } else {
      scratch_slices_[i] = WorkSlice{};
    }
  }
  for (MultiCoreWork* w : multi_works_) {
    scratch_multi_freqs_.clear();
    scratch_multi_freqs_.reserve(w->Cores().size());
    for (int c : w->Cores()) {
      // An offlined member core contributes no cycles.
      scratch_multi_freqs_.push_back(
          cores_[static_cast<size_t>(c)].online() ? scratch_effective_[static_cast<size_t>(c)]
                                                  : 0.0);
    }
    std::vector<WorkSlice> work_slices = w->Run(dt, scratch_multi_freqs_);
    assert(work_slices.size() == w->Cores().size());
    for (size_t j = 0; j < w->Cores().size(); j++) {
      scratch_slices_[static_cast<size_t>(w->Cores()[j])] = work_slices[j];
    }
  }

  // 4. Power, per-tick core results, and hardware counters in one pass.
  Watts total = 0.0;
  int busy_cores = 0;
  for (size_t i = 0; i < n; i++) {
    Core& c = cores_[i];
    Watts p;
    if (!c.online()) {
      p = power_model_.OfflineCorePowerW();
    } else {
      const Mhz f = scratch_effective_[i];
      if (f != volts_cache_mhz_[i]) {
        volts_cache_mhz_[i] = f;
        volts_cache_v_[i] = power_model_.VoltsAt(f);
      }
      p = power_model_.CorePowerW(f, scratch_slices_[i].busy_fraction,
                                  scratch_slices_[i].activity, volts_cache_v_[i]);
      if (scratch_slices_[i].busy_fraction > 0.05) {
        busy_cores++;
      }
    }
    c.SetTickResults(c.online() ? scratch_effective_[i] : 0.0, scratch_slices_[i], p);
    c.AdvanceCounters(dt, spec_.tsc_mhz);
    scratch_core_powers_[i] = p;
    total += p;
  }
  const Watts uncore = power_model_.UncorePowerW(busy_cores);
  total += uncore;

  // 5. RAPL and the thermal model observe this tick's power.
  rapl_.Update(total, dt);
  thermal_.Update(scratch_core_powers_, uncore, dt);

  // 6. Bookkeeping.
  last_package_power_w_ = total;
  last_uncore_power_w_ = uncore;
  package_energy_j_ += total * dt;
  now_ += dt;
}

}  // namespace papd
