#include "src/cpusim/package.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace papd {

Package::Package(PlatformSpec spec)
    : spec_(std::move(spec)),
      pstates_(spec_.min_mhz, spec_.turbo_max_mhz, spec_.step_mhz),
      power_model_(&spec_),
      rapl_(&spec_),
      thermal_(spec_.thermal, spec_.num_cores),
      cores_(spec_.num_cores, spec_.base_max_mhz),
      kernels_(&simd::ActiveKernels()) {
  const auto n = static_cast<size_t>(spec_.num_cores);
  multi_member_.assign(n, 0);
  scratch_avx_.assign(n, 0);
  scratch_pstate_marks_.assign(pstates_.size(), 0);
  lane_held_.assign(n, 0);
  scratch_unsteady_.reserve(n);
}

void Package::AttachWork(int core, CoreWork* work) {
  const auto i = static_cast<size_t>(core);
  cores_.work[i] = work;
  cores_.has_work[i] = (work != nullptr) ? 1 : 0;
  // UsesAvx is contractually invariant while attached; cache it so the tick
  // census makes no virtual calls.
  cores_.work_avx[i] = (work != nullptr && work->UsesAvx()) ? 1 : 0;
  control_epoch_++;
}

void Package::DetachWork(int core) {
  const auto i = static_cast<size_t>(core);
  cores_.work[i] = nullptr;
  cores_.has_work[i] = 0;
  cores_.work_avx[i] = 0;
  // The lane idles from the next tick on; zero the slice here once instead
  // of rewriting zeros every tick.
  if (!multi_member_[i]) {
    cores_.slice[i] = WorkSlice{};
  }
  control_epoch_++;
}

void Package::AttachMultiWork(MultiCoreWork* work) {
  MultiWorkEntry entry;
  entry.work = work;
  entry.cores = &work->Cores();
  entry.uses_avx = work->UsesAvx() ? 1 : 0;
  for (int c : *entry.cores) {
    assert(c >= 0 && c < num_cores());
    assert(cores_.work[static_cast<size_t>(c)] == nullptr);
    multi_member_[static_cast<size_t>(c)] = 1;
  }
  multi_works_.push_back(entry);
  const size_t m = entry.cores->size();
  if (scratch_multi_freqs_.size() < m) {
    scratch_multi_freqs_.resize(m);
    scratch_multi_slices_.resize(m);
  }
  control_epoch_++;
}

void Package::SetRequestedMhz(int core, Mhz mhz) {
  cores_.requested_mhz[static_cast<size_t>(core)] = pstates_.QuantizeDown(mhz);
  control_epoch_++;
}

void Package::SetOnline(int core, bool online) {
  const auto i = static_cast<size_t>(core);
  cores_.online[i] = online ? 1 : 0;
  if (!online) {
    // An offline lane's per-tick results are constant; write them once here
    // and the tick passes skip the lane entirely (they used to recompute and
    // rewrite these same values every tick).
    cores_.effective_mhz[i] = Mhz{0.0};
    if (!multi_member_[i]) {
      cores_.slice[i] = WorkSlice{};
    }
    cores_.power_w[i] = power_model_.OfflineCorePowerW();
  }
  control_epoch_++;
}

void Package::SetRaplLimit(Watts limit_w) {
  if (!spec_.has_rapl_limit) {
    PAPD_LOG_WARN("platform %s does not support RAPL limiting; ignored", spec_.name.c_str());
    return;
  }
  rapl_.SetLimit(limit_w);
  control_epoch_++;
}

void Package::ClearRaplLimit() {
  rapl_.Disable();
  control_epoch_++;
}

void Package::SetTickPolicy(TickPolicy policy, int max_hold_ticks) {
  FlushSteadyWork();
  tick_policy_ = policy;
  max_hold_ticks_ = std::max(1, max_hold_ticks);
  plan_valid_ = false;
  hold_remaining_ = 0;
  rebuild_cooldown_ = 0;
  control_epoch_++;
}

int Package::DistinctRequestedFrequencies() const {
  // Requested frequencies always sit on the P-state grid (SetRequestedMhz
  // quantizes), so distinct values are counted by marking grid slots in a
  // reusable bitmap instead of building a std::set per call.
  const size_t n = cores_.size();
  int distinct = 0;
  for (size_t i = 0; i < n; i++) {
    if (!cores_.online[i]) {
      continue;
    }
    const size_t slot = pstates_.IndexOf(cores_.requested_mhz[i]);
    if (!scratch_pstate_marks_[slot]) {
      scratch_pstate_marks_[slot] = 1;
      distinct++;
    }
  }
  for (size_t i = 0; i < n; i++) {
    if (cores_.online[i]) {
      scratch_pstate_marks_[pstates_.IndexOf(cores_.requested_mhz[i])] = 0;
    }
  }
  return distinct;
}

void Package::Tick(Seconds dt) {
  if (tick_policy_ == TickPolicy::kMultiRate) {
    if (CanFastTick(dt)) {
      TickFast(dt);
      return;
    }
    // Resync: catch held works up, take a full reference tick, then replan
    // (or run down the cooldown when the last plan found nothing to hold).
    FlushSteadyWork();
    TickFull(dt);
    if (rebuild_cooldown_ > 0 && plan_epoch_ == control_epoch_ && dt == plan_dt_) {
      rebuild_cooldown_--;
    } else {
      RebuildHoldPlan(dt);
    }
    return;
  }
  TickFull(dt);
}

// PAPD_HOT
int Package::AdvanceSteady(Seconds dt, int max_ticks) {
  if (tick_policy_ != TickPolicy::kMultiRate || max_ticks < 2 || !CanFastTick(dt) ||
      !scratch_unsteady_.empty() || !multi_works_.empty()) {
    return 0;
  }
  const size_t n = cores_.size();
  const int k = std::min(max_ticks - 1, hold_remaining_);

  // --- k held ticks in closed form ----------------------------------------
  // Every lane is held, so each of the k ticks would replay exactly the
  // frozen plan: same slices, effective frequencies, per-core power, and
  // the same package total.  Counters take the per-tick kernel increments
  // (CountersScalar) multiplied out; package energy and time accumulate in
  // the per-tick order so the trajectory stays bit-identical to the
  // equivalent TickFast sequence.
  const double kd = static_cast<double>(k);
  const Mhz* effective = cores_.effective_mhz.data();
  const WorkSlice* slices = cores_.slice.data();
  for (size_t i = 0; i < n; i++) {
    const double busy = slices[i].busy_fraction;
    cores_.aperf_cycles[i] += effective[i] * kHzPerMhz * dt * busy * kd;
    cores_.mperf_cycles[i] += spec_.tsc_mhz * kHzPerMhz * dt * busy * kd;
    cores_.instructions_retired[i] += slices[i].instructions * kd;
    cores_.energy_j[i] += cores_.power_w[i] * dt * kd;
  }
  const Watts uncore_held{power_model_.UncorePowerW(held_busy_cores_)};
  const Watts total_held{held_power_sum_ + uncore_held};
  for (int t = 0; t < k; t++) {
    package_energy_j_ += total_held * dt;
    now_ += dt;
  }
  thermal_.UpdateSteady(cores_.power_w, uncore_held, dt, k);
  last_package_power_w_ = total_held;
  last_uncore_power_w_ = uncore_held;
  hold_remaining_ -= k;
  held_pending_ticks_ += k;
  tick_stats_.batched_ticks += static_cast<uint64_t>(k);
  tick_stats_.hold_segments++;

  // --- catch-up + one refresh tick -----------------------------------------
  // Held works absorb the whole deferred window analytically, then run one
  // real tick so the next plan is built from fresh slices.  The census and
  // clamp passes are safely skipped: their inputs (online/attach flags,
  // requested frequencies, RAPL, PROCHOT within the guard) are all
  // epoch-stable, so the effective frequencies are unchanged.
  FlushSteadyWork();
  const uint8_t* online = cores_.online.data();
  CoreWork* const* work = cores_.work.data();
  Mhz* effective_mut = cores_.effective_mhz.data();
  WorkSlice* slices_mut = cores_.slice.data();
  for (size_t i = 0; i < n; i++) {
    if (online[i] && work[i] != nullptr) {
      work[i]->RunBatch(dt, &effective_mut[i], &slices_mut[i], 1);
    }
  }
  const simd::TickKernels& kern = *kernels_;
  const int busy_cores =
      kern.power(effective_mut, slices_mut, online, power_model_,
                 cores_.volts_cache_mhz.data(), cores_.volts_cache_v.data(),
                 cores_.power_w.data(), n);
  kern.counters(effective_mut, slices_mut, cores_.power_w.data(), spec_.tsc_mhz, dt,
                cores_.aperf_cycles.data(), cores_.mperf_cycles.data(),
                cores_.instructions_retired.data(), cores_.energy_j.data(), n);
  Watts total{0.0};
  const Watts* pw = cores_.power_w.data();
  for (size_t i = 0; i < n; i++) {
    total += pw[i];
  }
  const Watts uncore{power_model_.UncorePowerW(busy_cores)};
  total += uncore;
  thermal_.Update(cores_.power_w, uncore, dt);
  last_package_power_w_ = total;
  last_uncore_power_w_ = uncore;
  package_energy_j_ += total * dt;
  now_ += dt;
  tick_stats_.fast_ticks++;
  RebuildHoldPlan(dt);
  return k + 1;
}

// PAPD_HOT
void Package::RunMultiWorks(Seconds dt) {
  const uint8_t* online = cores_.online.data();
  Mhz* effective = cores_.effective_mhz.data();
  WorkSlice* slices = cores_.slice.data();
  for (const MultiWorkEntry& w : multi_works_) {
    const std::vector<int>& members = *w.cores;
    const size_t m = members.size();
    for (size_t j = 0; j < m; j++) {
      // An offlined member core contributes no cycles.
      const auto c = static_cast<size_t>(members[j]);
      scratch_multi_freqs_[j] = online[c] ? effective[c] : Mhz{0.0};
    }
    w.work->RunBatch(dt, scratch_multi_freqs_.data(), scratch_multi_slices_.data(), m);
    for (size_t j = 0; j < m; j++) {
      slices[static_cast<size_t>(members[j])] = scratch_multi_slices_[j];
    }
  }
}

// PAPD_HOT
void Package::TickFull(Seconds dt) {
  const size_t n = cores_.size();
  const uint8_t* online = cores_.online.data();
  CoreWork* const* work = cores_.work.data();
  Mhz* effective = cores_.effective_mhz.data();
  WorkSlice* slices = cores_.slice.data();
  const simd::TickKernels& k = *kernels_;

  // 1. Census: cores counted "active" (C0) for the turbo ladder, and cores
  // running AVX-heavy code for the AVX caps.  Flags were cached at attach
  // time, so this pass is byte-vector arithmetic over flat arrays.
  int active = 0;
  int avx_active = 0;
  k.census(online, cores_.has_work.data(), cores_.work_avx.data(),
           multi_member_.data(), scratch_avx_.data(), n, &active, &avx_active);
  for (const MultiWorkEntry& w : multi_works_) {
    if (w.uses_avx) {
      avx_active += static_cast<int>(w.cores->size());
    }
  }

  // 2. Effective frequencies, written straight into the results array.
  // Offline lanes were pinned to zero when they went offline and are
  // skipped here.
  simd::ClampParams cp;
  cp.turbo_limit = spec_.TurboLimitMhz(active);
  cp.avx_cap = spec_.AvxCapMhz(avx_active);
  cp.rapl_ceiling = rapl_.ceiling_mhz();
  cp.min_mhz = spec_.min_mhz;
  cp.tj_max_c = spec_.thermal.tj_max_c;
  cp.rapl_on = rapl_.enabled();
  k.clamp(cores_.requested_mhz.data(), online, scratch_avx_.data(),
          thermal_.temps_c().data(), cp, effective, n);

  // 3. Run workloads; slices land in place via the span API (no per-tick
  // vector allocation and no result copies).  Idle and offline lanes keep
  // the zero slice written at detach/offline time.
  for (size_t i = 0; i < n; i++) {
    if (online[i] && work[i] != nullptr) {
      work[i]->RunBatch(dt, &effective[i], &slices[i], 1);
    }
  }
  RunMultiWorks(dt);

  // 4. Voltage memo + per-core power for online lanes, then hardware
  // counters for all lanes — both as dispatched kernels.
  const int busy_cores =
      k.power(effective, slices, online, power_model_,
              cores_.volts_cache_mhz.data(), cores_.volts_cache_v.data(),
              cores_.power_w.data(), n);
  k.counters(effective, slices, cores_.power_w.data(), spec_.tsc_mhz, dt,
             cores_.aperf_cycles.data(), cores_.mperf_cycles.data(),
             cores_.instructions_retired.data(), cores_.energy_j.data(), n);
  // Package power reduces in scalar index order regardless of kernel width:
  // reassociating this sum would break the bit-identity contract.
  Watts total{0.0};
  const Watts* pw = cores_.power_w.data();
  for (size_t i = 0; i < n; i++) {
    total += pw[i];
  }
  const Watts uncore{power_model_.UncorePowerW(busy_cores)};
  total += uncore;

  // 5. RAPL and the thermal model observe this tick's power.
  rapl_.Update(total, dt);
  thermal_.Update(cores_.power_w, uncore, dt);

  // 6. Bookkeeping.
  last_package_power_w_ = total;
  last_uncore_power_w_ = uncore;
  package_energy_j_ += total * dt;
  now_ += dt;
  tick_stats_.full_ticks++;
}

bool Package::CanFastTick(Seconds dt) const {
  return plan_valid_ && hold_remaining_ > 0 && plan_epoch_ == control_epoch_ &&
         dt == plan_dt_ && !rapl_.enabled() &&
         thermal_.max_temp_c() < spec_.thermal.tj_max_c - kThermalHoldGuardC;
}

// PAPD_HOT
void Package::TickFast(Seconds dt) {
  const uint8_t* online = cores_.online.data();
  CoreWork* const* work = cores_.work.data();
  Mhz* effective = cores_.effective_mhz.data();
  WorkSlice* slices = cores_.slice.data();

  // Unsteady lanes run their work and are re-priced; held lanes replay the
  // plan-time slice, effective frequency and power.
  for (int idx : scratch_unsteady_) {
    const auto i = static_cast<size_t>(idx);
    if (online[i] && work[i] != nullptr) {
      work[i]->RunBatch(dt, &effective[i], &slices[i], 1);
    }
  }
  RunMultiWorks(dt);

  Watts total{held_power_sum_};
  int busy_cores = held_busy_cores_;
  for (int idx : scratch_unsteady_) {
    const auto i = static_cast<size_t>(idx);
    if (!online[i]) {
      // Offline members of a multi-core work; constant deep-C-state power.
      total += cores_.power_w[i];
      continue;
    }
    const Mhz f{effective[i]};
    if (f != cores_.volts_cache_mhz[i]) {
      cores_.volts_cache_mhz[i] = f;
      cores_.volts_cache_v[i] = power_model_.VoltsAt(f);
    }
    const Watts p = power_model_.CorePowerW(f, slices[i].busy_fraction,
                                            slices[i].activity,
                                            cores_.volts_cache_v[i]);
    cores_.power_w[i] = p;
    if (slices[i].busy_fraction > 0.05) {
      busy_cores++;
    }
    total += p;
  }

  // Hardware counters advance exactly every tick for every lane: multi-rate
  // defers only workload-internal accounting, never the counters MSR
  // readers and policy daemons observe.
  const size_t n = cores_.size();
  kernels_->counters(effective, slices, cores_.power_w.data(), spec_.tsc_mhz,
                     dt, cores_.aperf_cycles.data(), cores_.mperf_cycles.data(),
                     cores_.instructions_retired.data(), cores_.energy_j.data(),
                     n);
  const Watts uncore{power_model_.UncorePowerW(busy_cores)};
  total += uncore;

  // The RAPL controller is disabled on this path (CanFastTick); the thermal
  // model still integrates every tick so PROCHOT never lags a hold window.
  thermal_.Update(cores_.power_w, uncore, dt);

  last_package_power_w_ = total;
  last_uncore_power_w_ = uncore;
  package_energy_j_ += total * dt;
  now_ += dt;
  hold_remaining_--;
  held_pending_ticks_++;
  tick_stats_.fast_ticks++;
}

// PAPD_HOT
void Package::RebuildHoldPlan(Seconds dt) {
  plan_epoch_ = control_epoch_;
  plan_dt_ = dt;
  held_pending_ticks_ = 0;
  scratch_unsteady_.clear();
  held_power_sum_ = Watts{0.0};
  held_busy_cores_ = 0;
  const size_t n = cores_.size();
  int budget = max_hold_ticks_;
  bool any_held = false;
  for (size_t i = 0; i < n; i++) {
    int steady = 0;
    if (!cores_.online[i]) {
      // Offline lanes are constant by construction.
      steady = max_hold_ticks_;
    } else if (cores_.work[i] != nullptr) {
      steady = cores_.work[i]->SteadyTicks(dt);
    } else if (!multi_member_[i]) {
      // Idle online lane: constant slice and power until the control plane
      // changes (which invalidates the plan).
      steady = max_hold_ticks_;
    }
    // Multi-core work members stay unsteady: their coupled work runs every
    // tick and re-prices its lanes.
    if (steady >= kMinHoldTicks) {
      lane_held_[i] = 1;
      any_held = true;
      budget = std::min(budget, steady);
      held_power_sum_ += cores_.power_w[i];
      if (cores_.online[i] && cores_.slice[i].busy_fraction > 0.05) {
        held_busy_cores_++;
      }
    } else {
      lane_held_[i] = 0;
      scratch_unsteady_.push_back(static_cast<int>(i));
    }
  }
  plan_valid_ = any_held;
  hold_remaining_ = any_held ? budget : 0;
  rebuild_cooldown_ = any_held ? 0 : kMinHoldTicks;
  tick_stats_.plan_rebuilds++;
}

void Package::FlushSteadyWork() {
  if (held_pending_ticks_ == 0) {
    return;
  }
  const int pending = held_pending_ticks_;
  held_pending_ticks_ = 0;
  const size_t n = cores_.size();
  for (size_t i = 0; i < n; i++) {
    if (lane_held_[i] && cores_.online[i] && cores_.work[i] != nullptr) {
      cores_.work[i]->RunSteadyBatch(plan_dt_, pending, cores_.effective_mhz[i],
                                     &cores_.slice[i]);
      tick_stats_.work_syncs++;
    }
  }
}

}  // namespace papd
