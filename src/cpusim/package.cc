#include "src/cpusim/package.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "src/common/logging.h"

namespace papd {

Package::Package(PlatformSpec spec)
    : spec_(std::move(spec)),
      pstates_(spec_.min_mhz, spec_.turbo_max_mhz, spec_.step_mhz),
      power_model_(&spec_),
      rapl_(&spec_),
      thermal_(spec_.thermal, spec_.num_cores) {
  cores_.reserve(static_cast<size_t>(spec_.num_cores));
  for (int i = 0; i < spec_.num_cores; i++) {
    cores_.emplace_back(i, spec_.base_max_mhz);
  }
}

void Package::AttachWork(int core, CoreWork* work) {
  cores_[static_cast<size_t>(core)].set_work(work);
}

void Package::DetachWork(int core) { cores_[static_cast<size_t>(core)].set_work(nullptr); }

void Package::AttachMultiWork(MultiCoreWork* work) {
  for (int c : work->Cores()) {
    (void)c;
    assert(c >= 0 && c < num_cores());
    assert(cores_[static_cast<size_t>(c)].work() == nullptr);
  }
  multi_works_.push_back(work);
}

void Package::SetRequestedMhz(int core, Mhz mhz) {
  cores_[static_cast<size_t>(core)].set_requested_mhz(pstates_.QuantizeDown(mhz));
}

void Package::SetOnline(int core, bool online) {
  cores_[static_cast<size_t>(core)].set_online(online);
}

void Package::SetRaplLimit(Watts limit_w) {
  if (!spec_.has_rapl_limit) {
    PAPD_LOG_WARN("platform %s does not support RAPL limiting; ignored", spec_.name.c_str());
    return;
  }
  rapl_.SetLimit(limit_w);
}

void Package::ClearRaplLimit() { rapl_.Disable(); }

int Package::DistinctRequestedFrequencies() const {
  std::set<long> distinct;
  for (const Core& c : cores_) {
    if (c.online()) {
      distinct.insert(static_cast<long>(c.requested_mhz()));
    }
  }
  return static_cast<int>(distinct.size());
}

namespace {

// True if the core is occupied by any work (single-core or coupled).
bool HasAnyWork(const Core& core, const std::vector<MultiCoreWork*>& multi) {
  if (core.work() != nullptr) {
    return true;
  }
  for (const MultiCoreWork* w : multi) {
    for (int c : w->Cores()) {
      if (c == core.id()) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

void Package::Tick(Seconds dt) {
  // 1. Census: cores counted "active" (C0) for the turbo ladder, and cores
  // running AVX-heavy code for the AVX caps.
  int active = 0;
  int avx_active = 0;
  for (const Core& c : cores_) {
    if (!c.online() || !HasAnyWork(c, multi_works_)) {
      continue;
    }
    active++;
    if (c.work() != nullptr && c.work()->UsesAvx()) {
      avx_active++;
    }
  }
  for (const MultiCoreWork* w : multi_works_) {
    if (w->UsesAvx()) {
      avx_active += static_cast<int>(w->Cores().size());
    }
  }

  const Mhz turbo_limit = spec_.TurboLimitMhz(active);
  const Mhz avx_cap = spec_.AvxCapMhz(avx_active);

  // 2. Effective frequencies.
  std::vector<Mhz> effective(cores_.size(), 0.0);
  for (size_t i = 0; i < cores_.size(); i++) {
    const Core& c = cores_[i];
    if (!c.online()) {
      continue;
    }
    Mhz f = std::min(c.requested_mhz(), turbo_limit);
    if (rapl_.enabled()) {
      f = std::min(f, rapl_.ceiling_mhz());
    }
    if (c.work() != nullptr && c.work()->UsesAvx()) {
      f = std::min(f, avx_cap);
    }
    if (thermal_.core_temp_c(static_cast<int>(i)) >= spec_.thermal.tj_max_c) {
      // PROCHOT: the core hard-throttles to the floor until it cools.
      f = spec_.min_mhz;
    }
    effective[i] = std::max(f, spec_.min_mhz);
  }

  // 3. Run workloads.
  std::vector<WorkSlice> slices(cores_.size());
  for (size_t i = 0; i < cores_.size(); i++) {
    Core& c = cores_[i];
    if (c.online() && c.work() != nullptr) {
      slices[i] = c.work()->Run(dt, effective[i]);
    }
  }
  for (MultiCoreWork* w : multi_works_) {
    std::vector<Mhz> freqs;
    freqs.reserve(w->Cores().size());
    for (int c : w->Cores()) {
      // An offlined member core contributes no cycles.
      freqs.push_back(cores_[static_cast<size_t>(c)].online() ? effective[static_cast<size_t>(c)]
                                                              : 0.0);
    }
    std::vector<WorkSlice> work_slices = w->Run(dt, freqs);
    assert(work_slices.size() == w->Cores().size());
    for (size_t j = 0; j < w->Cores().size(); j++) {
      slices[static_cast<size_t>(w->Cores()[j])] = work_slices[j];
    }
  }

  // 4. Power.
  Watts total = 0.0;
  int busy_cores = 0;
  for (size_t i = 0; i < cores_.size(); i++) {
    Core& c = cores_[i];
    Watts p;
    if (!c.online()) {
      p = power_model_.OfflineCorePowerW();
    } else {
      p = power_model_.CorePowerW(effective[i], slices[i].busy_fraction, slices[i].activity);
      if (slices[i].busy_fraction > 0.05) {
        busy_cores++;
      }
    }
    c.SetTickResults(c.online() ? effective[i] : 0.0, slices[i], p);
    total += p;
  }
  const Watts uncore = power_model_.UncorePowerW(busy_cores);
  total += uncore;

  // 5. RAPL and the thermal model observe this tick's power.
  rapl_.Update(total, dt);
  std::vector<Watts> core_powers;
  core_powers.reserve(cores_.size());
  for (const Core& c : cores_) {
    core_powers.push_back(c.power_w());
  }
  thermal_.Update(core_powers, uncore, dt);

  // 6. Counters and bookkeeping.
  for (Core& c : cores_) {
    c.AdvanceCounters(dt, spec_.tsc_mhz);
  }
  last_package_power_w_ = total;
  last_uncore_power_w_ = uncore;
  package_energy_j_ += total * dt;
  now_ += dt;
}

}  // namespace papd
