// The simulated processor package: cores, turbo, AVX caps, RAPL, power.
//
// Package::Tick advances one time step:
//   1. effective per-core frequency = min(requested, turbo ladder limit,
//      AVX cap if the core runs AVX code, RAPL ceiling);
//   2. workloads run at those frequencies and report slices;
//   3. the power model converts slices to per-core watts; uncore power is
//      added; the RAPL controller observes package power and adjusts its
//      ceiling for the next tick;
//   4. hardware counters (APERF/MPERF, retired instructions, energy)
//      advance.
//
// Per-core state is structure-of-arrays (CoreArray, core.h): each tick pass
// streams over contiguous vectors, workload slices are written in place via
// the RunBatch span API, and the steady-state tick performs no heap
// allocation.

#ifndef SRC_CPUSIM_PACKAGE_H_
#define SRC_CPUSIM_PACKAGE_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"
#include "src/cpusim/core.h"
#include "src/cpusim/power_model.h"
#include "src/cpusim/rapl.h"
#include "src/cpusim/thermal.h"
#include "src/platform/platform_spec.h"
#include "src/specsim/core_work.h"

namespace papd {

class Package {
 public:
  explicit Package(PlatformSpec spec);

  const PlatformSpec& spec() const { return spec_; }
  const PowerModel& power_model() const { return power_model_; }
  const PStateTable& pstates() const { return pstates_; }

  int num_cores() const { return static_cast<int>(cores_.size()); }
  // Read-only view of core i; mutations go through the Set* methods below.
  Core core(int i) const { return Core(&cores_, i); }

  // --- Work attachment (non-owning) ----------------------------------------
  void AttachWork(int core, CoreWork* work);
  void DetachWork(int core);
  // Attaches a coupled multi-core work to the cores it reports.
  void AttachMultiWork(MultiCoreWork* work);

  // --- Software controls ----------------------------------------------------
  // Programs a core's frequency; quantized down to the platform grid.
  void SetRequestedMhz(int core, Mhz mhz);
  // Forces a core into/out of a deep C-state.
  void SetOnline(int core, bool online);
  // Hardware RAPL limiting (Skylake only in the paper's platforms; a no-op
  // guard rejects it when the platform lacks the feature).
  void SetRaplLimit(Watts limit_w);
  void ClearRaplLimit();
  const RaplController& rapl() const { return rapl_; }
  const ThermalModel& thermal() const { return thermal_; }

  // --- Simulation ------------------------------------------------------------
  void Tick(Seconds dt);

  Seconds now() const { return now_; }
  Watts last_package_power_w() const { return last_package_power_w_; }
  Watts last_uncore_power_w() const { return last_uncore_power_w_; }
  Joules package_energy_j() const { return package_energy_j_; }

  // Number of distinct requested frequencies across online cores; the
  // Ryzen MSR front-end keeps this <= 3 (spec.max_simultaneous_pstates).
  int DistinctRequestedFrequencies() const;

 private:
  // One attached MultiCoreWork with its per-attachment caches: the member
  // core list and the AVX flag are virtual calls answered once at attach.
  struct MultiWorkEntry {
    MultiCoreWork* work = nullptr;
    const std::vector<int>* cores = nullptr;
    uint8_t uses_avx = 0;
  };

  PlatformSpec spec_;
  PStateTable pstates_;
  PowerModel power_model_;
  RaplController rapl_;
  ThermalModel thermal_;
  CoreArray cores_;
  std::vector<MultiWorkEntry> multi_works_;
  // multi_member_[i] != 0 iff core i belongs to an attached MultiCoreWork;
  // maintained by AttachMultiWork so Tick never scans the work list.
  std::vector<uint8_t> multi_member_;

  // Per-tick scratch reused every tick — the tick loop must not allocate.
  std::vector<uint8_t> scratch_avx_;  // This tick: online single work using AVX.
  // Gather/scatter staging for multi-core works (sized to the largest
  // attached work's core count at attach time).
  std::vector<Mhz> scratch_multi_freqs_;
  std::vector<WorkSlice> scratch_multi_slices_;
  // DistinctRequestedFrequencies marks P-state grid slots here; cleared
  // after each call (mutable: the query is logically const).
  mutable std::vector<uint8_t> scratch_pstate_marks_;

  Seconds now_{0.0};
  Watts last_package_power_w_{0.0};
  Watts last_uncore_power_w_{0.0};
  Joules package_energy_j_{0.0};
};

}  // namespace papd

#endif  // SRC_CPUSIM_PACKAGE_H_
