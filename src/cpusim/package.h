// The simulated processor package: cores, turbo, AVX caps, RAPL, power.
//
// Package::Tick advances one time step:
//   1. effective per-core frequency = min(requested, turbo ladder limit,
//      AVX cap if the core runs AVX code, RAPL ceiling);
//   2. workloads run at those frequencies and report slices;
//   3. the power model converts slices to per-core watts; uncore power is
//      added; the RAPL controller observes package power and adjusts its
//      ceiling for the next tick;
//   4. hardware counters (APERF/MPERF, retired instructions, energy)
//      advance.
//
// Per-core state is structure-of-arrays (CoreArray, core.h): each tick pass
// streams over contiguous vectors, workload slices are written in place via
// the RunBatch span API, and the steady-state tick performs no heap
// allocation.  The per-core passes themselves are SIMD kernels
// (src/cpusim/simd/), runtime-dispatched between an AVX2 table and the
// bit-exact scalar reference.
//
// Tick policies:
//   kEveryTick   every pass runs every tick (the bit-pinned reference mode);
//   kMultiRate   cores whose workload reports a steady phase (and whose
//                control plane is quiescent) are *held*: their slice, power
//                and effective frequency are replayed for up to K ticks
//                while hardware counters still advance exactly every tick.
//                Any control-plane event — P-state write, RAPL change,
//                online toggle, attach/detach, fault-plan arming — bumps the
//                control epoch and forces a full re-synced tick.  Held
//                workloads catch their internal accounting up analytically
//                (CoreWork::RunSteadyBatch) at each resync, so a steady
//                fleet ticks in O(changed cores).  Multi-rate results are
//                statistically, not bitwise, equivalent to every-tick
//                (tests/multirate_test.cc pins the tolerance).

#ifndef SRC_CPUSIM_PACKAGE_H_
#define SRC_CPUSIM_PACKAGE_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"
#include "src/cpusim/core.h"
#include "src/cpusim/power_model.h"
#include "src/cpusim/rapl.h"
#include "src/cpusim/simd/tick_kernels.h"
#include "src/cpusim/thermal.h"
#include "src/platform/platform_spec.h"
#include "src/specsim/core_work.h"

namespace papd {

enum class TickPolicy {
  kEveryTick,
  kMultiRate,
};

class Package {
 public:
  explicit Package(PlatformSpec spec);

  const PlatformSpec& spec() const { return spec_; }
  const PowerModel& power_model() const { return power_model_; }
  const PStateTable& pstates() const { return pstates_; }

  int num_cores() const { return static_cast<int>(cores_.size()); }
  // Read-only view of core i; mutations go through the Set* methods below.
  Core core(int i) const { return Core(&cores_, i); }

  // --- Work attachment (non-owning) ----------------------------------------
  void AttachWork(int core, CoreWork* work);
  void DetachWork(int core);
  // Attaches a coupled multi-core work to the cores it reports.
  void AttachMultiWork(MultiCoreWork* work);

  // --- Software controls ----------------------------------------------------
  // Programs a core's frequency; quantized down to the platform grid.
  void SetRequestedMhz(int core, Mhz mhz);
  // Forces a core into/out of a deep C-state.
  void SetOnline(int core, bool online);
  // Hardware RAPL limiting (Skylake only in the paper's platforms; a no-op
  // guard rejects it when the platform lacks the feature).
  void SetRaplLimit(Watts limit_w);
  void ClearRaplLimit();
  const RaplController& rapl() const { return rapl_; }
  const ThermalModel& thermal() const { return thermal_; }

  // --- Simulation ------------------------------------------------------------
  void Tick(Seconds dt);

  // Socket-level steady-state hold: advances up to `max_ticks` ticks of
  // length `dt` in one closed-form segment when *every* lane is held under a
  // valid multi-rate plan (quiescent control plane, RAPL off, thermals
  // clear of the PROCHOT guard, no multi-core works, no unsteady lanes).
  // The segment replays the frozen plan for k = min(max_ticks - 1,
  // hold_remaining_) ticks — package energy and simulated time accumulate
  // per tick, bit-identical to the equivalent TickFast sequence; hardware
  // counters advance by the multiplied-out per-tick increments (ulp-level
  // difference only, every per-tick input is frozen) — then catches held
  // works up via RunSteadyBatch and takes one refresh tick that re-runs the
  // works and re-prices power before replanning.  Returns the number of
  // ticks advanced (k + 1), or 0 when the predicate fails and the caller
  // must fall back to Tick().  The thermal guard is evaluated per segment
  // rather than per tick: temperatures advance in closed form, so a segment
  // may overrun the guard by at most max_ticks - 1 ticks before the next
  // predicate check catches it (covered by kThermalHoldGuardC).
  int AdvanceSteady(Seconds dt, int max_ticks);

  // Default and minimum hold horizons for multi-rate ticking: a lane is only
  // held when its steady horizon covers at least kMinHoldTicks (shorter
  // holds don't amortize the resync), and no hold window exceeds the
  // configured maximum.
  static constexpr int kDefaultMaxHoldTicks = 64;
  static constexpr int kMinHoldTicks = 8;
  // Fast ticks are suppressed within this margin of the PROCHOT threshold,
  // so thermal throttling decisions never lag behind a hold window.
  static constexpr double kThermalHoldGuardC = 5.0;

  struct TickStats {
    uint64_t full_ticks = 0;
    uint64_t fast_ticks = 0;
    uint64_t work_syncs = 0;      // RunSteadyBatch catch-up calls.
    uint64_t plan_rebuilds = 0;
    uint64_t hold_segments = 0;   // AdvanceSteady segments taken.
    uint64_t batched_ticks = 0;   // Ticks advanced in closed form (excl. refresh).
  };

  void SetTickPolicy(TickPolicy policy, int max_hold_ticks = kDefaultMaxHoldTicks);
  TickPolicy tick_policy() const { return tick_policy_; }
  const TickStats& tick_stats() const { return tick_stats_; }
  // Kernel table actually driving the tick passes ("scalar" or "avx2").
  const char* tick_kernel_name() const { return kernels_->name; }

  // Control-plane epoch: bumped by every externally visible control action
  // (P-state write, RAPL change, online toggle, attach/detach).  The
  // multi-rate planner re-syncs and replans whenever it changes.
  uint64_t control_epoch() const { return control_epoch_; }
  // Control-plane events with no dedicated setter (e.g. MsrFile arming a
  // fault plan or dropping a P-state write) report themselves here.
  void NotifyControlPlaneEvent() { control_epoch_++; }

  // Catches held workloads' internal accounting up to now() (multi-rate
  // defers it between resyncs).  No-op under kEveryTick; call before reading
  // workload-internal state (Process::instructions_retired etc.) mid-run.
  void FlushSteadyWork();

  Seconds now() const { return now_; }
  Watts last_package_power_w() const { return last_package_power_w_; }
  Watts last_uncore_power_w() const { return last_uncore_power_w_; }
  Joules package_energy_j() const { return package_energy_j_; }

  // Number of distinct requested frequencies across online cores; the
  // Ryzen MSR front-end keeps this <= 3 (spec.max_simultaneous_pstates).
  int DistinctRequestedFrequencies() const;

 private:
  // One attached MultiCoreWork with its per-attachment caches: the member
  // core list and the AVX flag are virtual calls answered once at attach.
  struct MultiWorkEntry {
    MultiCoreWork* work = nullptr;
    const std::vector<int>* cores = nullptr;
    uint8_t uses_avx = 0;
  };

  // Full tick: every pass over every lane (the bit-pinned reference path).
  void TickFull(Seconds dt);
  // Multi-rate fast tick: runs only unsteady lanes' work and power; held
  // lanes replay their plan-time slice.  Counters advance exactly.
  void TickFast(Seconds dt);
  // Classifies lanes held/unsteady after a full tick and sets the window.
  void RebuildHoldPlan(Seconds dt);
  bool CanFastTick(Seconds dt) const;
  // Shared work pass (single-core works + multi-core gather/scatter) of the
  // full tick; TickFast runs the same multi-work loop.
  void RunMultiWorks(Seconds dt);

  PlatformSpec spec_;
  PStateTable pstates_;
  PowerModel power_model_;
  RaplController rapl_;
  ThermalModel thermal_;
  CoreArray cores_;
  std::vector<MultiWorkEntry> multi_works_;
  // multi_member_[i] != 0 iff core i belongs to an attached MultiCoreWork;
  // maintained by AttachMultiWork so Tick never scans the work list.
  std::vector<uint8_t> multi_member_;

  // Per-tick scratch reused every tick — the tick loop must not allocate.
  std::vector<uint8_t> scratch_avx_;  // This tick: online single work using AVX.
  // Gather/scatter staging for multi-core works (sized to the largest
  // attached work's core count at attach time).
  std::vector<Mhz> scratch_multi_freqs_;
  std::vector<WorkSlice> scratch_multi_slices_;
  // DistinctRequestedFrequencies marks P-state grid slots here; cleared
  // after each call (mutable: the query is logically const).
  mutable std::vector<uint8_t> scratch_pstate_marks_;

  // --- Tick engine state -----------------------------------------------------
  // Kernel table chosen at construction (simd::ActiveKernels()).
  const simd::TickKernels* kernels_;
  TickPolicy tick_policy_ = TickPolicy::kEveryTick;
  int max_hold_ticks_ = kDefaultMaxHoldTicks;
  uint64_t control_epoch_ = 0;

  // Multi-rate hold plan, rebuilt after full ticks.  Valid while the control
  // epoch and tick length are unchanged and hold_remaining_ > 0.
  bool plan_valid_ = false;
  uint64_t plan_epoch_ = 0;
  Seconds plan_dt_{-1.0};
  int hold_remaining_ = 0;
  // After a rebuild that found nothing holdable, skip replanning for a few
  // ticks instead of re-scanning steadiness every tick.
  int rebuild_cooldown_ = 0;
  // Fast ticks taken since the held works were last caught up.
  int held_pending_ticks_ = 0;
  // Plan-time aggregates over held lanes (index-order power sum).
  Watts held_power_sum_{0.0};
  int held_busy_cores_ = 0;
  std::vector<uint8_t> lane_held_;
  // Lanes serviced every fast tick; pre-reserved so replanning never
  // allocates.
  std::vector<int> scratch_unsteady_;
  TickStats tick_stats_;

  Seconds now_{0.0};
  Watts last_package_power_w_{0.0};
  Watts last_uncore_power_w_{0.0};
  Joules package_energy_j_{0.0};
};

// Tick-engine knobs plumbed through RunOptions (experiments) and RackConfig
// (cluster): which tick policy drives Package::Tick and the multi-rate hold
// horizon, plus the socket/cluster-granularity extensions (kMultiRate only;
// both are ignored under kEveryTick).
struct TickOptions {
  TickPolicy policy = TickPolicy::kEveryTick;
  int max_hold_ticks = Package::kDefaultMaxHoldTicks;

  // Socket-level steady-state hold: SocketStack advances whole control
  // periods through Package::AdvanceSteady segments, and skips the daemon
  // step entirely once the daemon has been quiescent (no grant change, no
  // control-plane writes, ladder nominal, no fault plan armed) for
  // SocketStack::kQuietPeriodsToHold consecutive periods.  A skipped-daemon
  // period resyncs — falls back to a live daemon step — on any grant
  // change, control-epoch bump, ladder departure, fault arming, or measured
  // power drifting out of hold_power_band.
  bool socket_hold = false;
  // Relative band around the power measured when the daemon hold engaged;
  // leaving it forces a resync (the workload mix changed enough that the
  // daemon must re-observe).
  double hold_power_band = 0.03;
  // > 0: additionally force a live daemon step every this many held
  // periods. 0 (default) trusts the band + epoch predicates alone, which
  // keeps held periods allocation-free.
  int hold_recheck_periods = 0;

  // Replica memoization (BudgetTree): simulate one representative socket
  // per equivalence class (identical RackSocketConfig hash + identical
  // grant history) and fan its measurements out to the replicas.  Replicas
  // are materialized on demand — by grant divergence or a leaf-internals
  // accessor — by replaying the representative's recorded grant run-lengths.
  bool memoize_replicas = false;
};

}  // namespace papd

#endif  // SRC_CPUSIM_PACKAGE_H_
