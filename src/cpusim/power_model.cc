#include "src/cpusim/power_model.h"

#include <algorithm>

namespace papd {

Watts PowerModel::CorePowerW(Mhz freq_mhz, double busy, double activity) const {
  return CorePowerW(freq_mhz, busy, activity, VoltsAt(freq_mhz));
}

Watts PowerModel::CorePowerW(Mhz freq_mhz, double busy, double activity, Volts v) const {
  const PowerModelParams& p = spec_->power;
  const double v_ratio = v / p.leak_ref_volts;
  const Watts leakage{p.leak_ref_w * v_ratio * v_ratio};
  const Watts dynamic{p.ceff_w_per_v2ghz * activity * v * v * MhzToGhz(freq_mhz) * busy};
  const Watts gate{p.clock_gate_w * (1.0 - busy)};
  return leakage + dynamic + gate;
}

Watts PowerModel::UncorePowerW(int busy_cores) const {
  return spec_->power.uncore_base_w + spec_->power.uncore_per_active_w * busy_cores;
}

Mhz PowerModel::FrequencyForCorePowerW(Watts watts, double activity) const {
  // The model is monotone in f (voltage rises with frequency); bisect.
  Mhz lo{spec_->min_mhz};
  Mhz hi{spec_->turbo_max_mhz};
  if (CorePowerW(lo, 1.0, activity) >= watts) {
    return lo;
  }
  if (CorePowerW(hi, 1.0, activity) <= watts) {
    return hi;
  }
  for (int i = 0; i < 48; i++) {
    const Mhz mid{0.5 * (lo + hi)};
    if (CorePowerW(mid, 1.0, activity) < watts) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace papd
