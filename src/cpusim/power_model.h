// Analytic processor power model.
//
// Per-core power follows the standard DVFS relation the paper builds on
// (Section 2.1: P_dyn proportional to V^2 * f):
//
//   P_core = leak_ref_w * (V / V_ref)^2                        (leakage)
//          + ceff * activity * V^2 * f_ghz * busy              (dynamic)
//          + clock_gate_w * (1 - busy)                         (idle C1)
//
// and an offlined (deep C-state) core draws cstate_idle_w.  Uncore power is
// a base plus a small per-active-core term.  Coefficients live in
// PlatformSpec::power and are calibrated per platform (DESIGN.md Section 5).

#ifndef SRC_CPUSIM_POWER_MODEL_H_
#define SRC_CPUSIM_POWER_MODEL_H_

#include "src/common/units.h"
#include "src/platform/platform_spec.h"

namespace papd {

class PowerModel {
 public:
  explicit PowerModel(const PlatformSpec* spec) : spec_(spec) {}

  // Operating voltage at the given frequency.
  Volts VoltsAt(Mhz freq_mhz) const { return spec_->voltage.At(freq_mhz); }

  // The calibrated coefficient block (PlatformSpec::power).  The SIMD power
  // kernel (src/cpusim/simd/) evaluates the same analytic expression
  // vector-wide and needs the raw coefficients.
  const PowerModelParams& params() const { return spec_->power; }

  // Power of one online core running at freq_mhz with the given activity
  // factor for `busy` fraction of the time.
  Watts CorePowerW(Mhz freq_mhz, double busy, double activity) const;

  // Same, with the voltage lookup hoisted out: callers in the per-tick hot
  // path memoize VoltsAt (frequency rarely changes between ticks) and pass
  // the cached value.  `volts` must equal VoltsAt(freq_mhz).
  Watts CorePowerW(Mhz freq_mhz, double busy, double activity, Volts volts) const;

  // Power of an offlined (deep C-state) core.
  Watts OfflineCorePowerW() const { return spec_->power.cstate_idle_w; }

  // Uncore power with the given number of busy cores.
  Watts UncorePowerW(int busy_cores) const;

  // Inverse model used by policy translation functions and tests: the
  // frequency at which an always-busy core with the given activity draws
  // approximately `watts`.  Clamped to the platform frequency range.
  Mhz FrequencyForCorePowerW(Watts watts, double activity) const;

 private:
  const PlatformSpec* spec_;
};

}  // namespace papd

#endif  // SRC_CPUSIM_POWER_MODEL_H_
