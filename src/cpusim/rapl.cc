#include "src/cpusim/rapl.h"

#include <algorithm>
#include <cmath>

namespace papd {

RaplController::RaplController(const PlatformSpec* spec) : spec_(spec) {
  ceiling_mhz_ = spec_->turbo_max_mhz;
}

void RaplController::SetLimit(Watts limit_w) {
  enabled_ = true;
  limit_w_ = std::clamp(limit_w, spec_->rapl_min_w, spec_->rapl_max_w);
  ceiling_mhz_ = spec_->turbo_max_mhz;
  have_avg_ = false;
}

void RaplController::Disable() {
  enabled_ = false;
  ceiling_mhz_ = spec_->turbo_max_mhz;
}

void RaplController::Update(Watts package_w, Seconds dt) {
  if (!enabled_) {
    return;
  }
  if (!have_avg_) {
    avg_w_ = package_w;
    have_avg_ = true;
  } else {
    // dt is the fixed simulator tick in practice; memoize the exp().
    if (dt != alpha_dt_) {
      alpha_dt_ = dt;
      alpha_ = 1.0 - std::exp(-dt / kWindowS);
    }
    avg_w_ += alpha_ * (package_w - avg_w_);
  }
  const Watts error_w{limit_w_ - avg_w_};
  ceiling_mhz_ += Mhz{kGainMhzPerWattSecond * error_w.value() * dt.value()};
  ceiling_mhz_ = std::clamp(ceiling_mhz_, spec_->min_mhz, spec_->turbo_max_mhz);
}

}  // namespace papd
