// Running Average Power Limit (RAPL) controller model.
//
// Intel's RAPL keeps the exponentially weighted running average of package
// power under a programmed limit by adjusting DVFS on fine (millisecond)
// time scales (paper Section 2.2).  We model the firmware control law as an
// integral controller on a *package-wide frequency ceiling*:
//
//   avg    <- EWMA of package power over ~a RAPL time window
//   ceiling <- ceiling + gain * (limit - avg) * dt
//
// Every core's effective frequency is min(requested, ceiling).  This single
// mechanism reproduces both behaviours the paper documents:
//   - with uniform requests (global DVFS) all cores throttle together
//     (Figure 1), and
//   - with heterogeneous per-core requests the ceiling bites the *fastest*
//     cores first while already-throttled cores are untouched (Figure 4:
//     "RAPL only reduces the frequency of the unconstrained core").

#ifndef SRC_CPUSIM_RAPL_H_
#define SRC_CPUSIM_RAPL_H_

#include "src/common/units.h"
#include "src/platform/platform_spec.h"

namespace papd {

class RaplController {
 public:
  explicit RaplController(const PlatformSpec* spec);

  // Programs a limit; clamped to the platform's RAPL range.  Enabling resets
  // the ceiling to the maximum so the controller settles from above, like
  // hardware re-arming after a limit write.
  void SetLimit(Watts limit_w);
  void Disable();

  bool enabled() const { return enabled_; }
  Watts limit_w() const { return limit_w_; }
  Mhz ceiling_mhz() const { return ceiling_mhz_; }
  Watts running_average_w() const { return avg_w_; }

  // Feeds one tick of package power; updates the ceiling.
  void Update(Watts package_w, Seconds dt);

 private:
  const PlatformSpec* spec_;
  bool enabled_ = false;
  Watts limit_w_{0.0};
  Mhz ceiling_mhz_{0.0};
  Watts avg_w_{0.0};
  bool have_avg_ = false;
  // Memoized EWMA coefficient for the (fixed) tick length.
  Seconds alpha_dt_{-1.0};
  double alpha_ = 0.0;

  // EWMA time constant (RAPL window) and integral gain.
  static constexpr Seconds kWindowS{0.010};
  static constexpr double kGainMhzPerWattSecond = 4000.0;
};

}  // namespace papd

#endif  // SRC_CPUSIM_RAPL_H_
