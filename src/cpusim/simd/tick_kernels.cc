// Runtime dispatch for the tick kernel tables.

#include "src/cpusim/simd/tick_kernels.h"

#include <cstdlib>
#include <cstring>

namespace papd {
namespace simd {

#if defined(PAPD_SIMD_AVX2)
extern const TickKernels kAvx2Kernels;  // tick_kernels_avx2.cc
#endif

namespace {

const TickKernels* g_forced = nullptr;

const TickKernels* AutoKernels() {
  // Environment override first (PAPD_SIMD=scalar pins the reference path
  // without rebuilding); otherwise the widest table this CPU supports.
  const char* env = std::getenv("PAPD_SIMD");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    return &kScalarKernels;
  }
#if defined(PAPD_SIMD_AVX2)
  if (__builtin_cpu_supports("avx2")) {
    return &kAvx2Kernels;
  }
#endif
  return &kScalarKernels;
}

}  // namespace

bool Avx2CompiledIn() {
#if defined(PAPD_SIMD_AVX2)
  return true;
#else
  return false;
#endif
}

bool Avx2Available() {
#if defined(PAPD_SIMD_AVX2)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const TickKernels& ActiveKernels() {
  if (g_forced != nullptr) {
    return *g_forced;
  }
  // The CPU probe and environment read happen once per process.
  static const TickKernels* const auto_pick = AutoKernels();
  return *auto_pick;
}

bool ForceKernelsForTest(const char* name_or_null) {
  if (name_or_null == nullptr || std::strcmp(name_or_null, "auto") == 0) {
    g_forced = nullptr;
    return true;
  }
  if (std::strcmp(name_or_null, "scalar") == 0) {
    g_forced = &kScalarKernels;
    return true;
  }
#if defined(PAPD_SIMD_AVX2)
  if (std::strcmp(name_or_null, "avx2") == 0 && Avx2Available()) {
    g_forced = &kAvx2Kernels;
    return true;
  }
#endif
  return false;
}

}  // namespace simd
}  // namespace papd
