// SIMD kernels for the Package::Tick hot passes.
//
// Each per-core pass of the tick engine — the C0/AVX census, the effective-
// frequency clamp (turbo ladder / AVX cap / RAPL ceiling / PROCHOT), the
// voltage-memo + dynamic-power evaluation, and the hardware-counter
// accumulation — is a kernel operating on the flat CoreArray vectors.  Two
// implementations exist behind one function-pointer table:
//
//   kScalarKernels        the bit-exact reference: literal ports of the
//                         original Package::Tick loops (always built);
//   kAvx2Kernels          4-lane AVX2 intrinsics, built when the PAPD_SIMD
//                         CMake option is ON and the compiler takes -mavx2.
//
// Dispatch is at runtime: ActiveKernels() probes the CPU once (plus a
// PAPD_SIMD=scalar environment override and a test-forcing hook) and every
// Package constructed afterwards uses the chosen table.
//
// Bit-identity contract: the AVX2 kernels perform the *same per-lane
// operation sequence* as the scalar reference — same association order,
// division where the scalar path divides, min/max via vminpd/vmaxpd (exact),
// and no FMA contraction (the AVX2 translation unit is compiled with -mavx2
// only, never -mfma).  Cross-lane reductions that would reassociate floating
// point (the package-power total) stay in Package::Tick as a scalar
// index-order sum over the per-core power vector.  The contract is pinned by
// the FNV-1a golden checksums in tests/soa_equivalence_test.cc, which run
// under both kernel tables.

#ifndef SRC_CPUSIM_SIMD_TICK_KERNELS_H_
#define SRC_CPUSIM_SIMD_TICK_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "src/common/units.h"
#include "src/cpusim/power_model.h"
#include "src/specsim/core_work.h"

namespace papd {
namespace simd {

// Inputs of the clamp kernel that are uniform across lanes this tick.
struct ClampParams {
  Mhz turbo_limit{0.0};   // Turbo ladder limit at this tick's active count.
  Mhz avx_cap{0.0};       // AVX frequency cap at this tick's AVX census.
  Mhz rapl_ceiling{0.0};  // Current RAPL controller ceiling (if rapl_on).
  Mhz min_mhz{0.0};       // Platform frequency floor (and PROCHOT target).
  double tj_max_c = 0.0;  // PROCHOT threshold in degrees C.
  bool rapl_on = false;
};

// Census over the per-core byte flags: writes scratch_avx[i] = 1 iff lane i
// is online with an attached AVX-classed single-core work, and counts active
// (online with any work or multi-work membership) and AVX-active lanes.
// Multi-core works are accounted by the caller (their AVX class is cached
// per attachment, not per lane).
using CensusFn = void (*)(const uint8_t* online, const uint8_t* has_work,
                          const uint8_t* work_avx, const uint8_t* multi_member,
                          uint8_t* scratch_avx, size_t n, int* active,
                          int* avx_active);

// Effective-frequency clamp: for every online lane,
//   f = max(min(requested, turbo, [rapl], [avx]), floor), PROCHOT -> floor.
// Offline lanes are skipped — their effective_mhz was pinned to zero when
// they went offline and the tick passes leave their result lanes untouched.
using ClampFn = void (*)(const Mhz* requested_mhz, const uint8_t* online,
                         const uint8_t* avx_lane, const double* temps_c,
                         const ClampParams& p, Mhz* effective_mhz, size_t n);

// Voltage-curve memo refresh + per-core power evaluation for online lanes;
// returns the busy-core count (busy_fraction > 0.05 among online lanes).
// The memo (volts_cache_mhz/volts_cache_v) is consulted vector-wide; misses
// (effective frequency changed since the memo was filled) fall back to the
// model's piecewise-linear VoltsAt per missing lane.  Offline lanes keep the
// constant deep-C-state power written at the online->offline transition.
using PowerFn = int (*)(const Mhz* effective_mhz, const WorkSlice* slices,
                        const uint8_t* online, const PowerModel& model,
                        Mhz* volts_cache_mhz, Volts* volts_cache_v,
                        Watts* power_w, size_t n);

// Hardware-counter accumulation over ALL lanes (offline lanes advance with
// busy == 0 and their constant offline power, exactly as the scalar tick
// always has): APERF/MPERF cycles, retired instructions, per-core energy.
using CountersFn = void (*)(const Mhz* effective_mhz, const WorkSlice* slices,
                            const Watts* power_w, Mhz tsc_mhz, Seconds dt,
                            double* aperf_cycles, double* mperf_cycles,
                            double* instructions_retired, Joules* energy_j,
                            size_t n);

struct TickKernels {
  const char* name;  // "scalar" or "avx2".
  CensusFn census;
  ClampFn clamp;
  PowerFn power;
  CountersFn counters;
};

// The bit-exact reference implementation; always available.
extern const TickKernels kScalarKernels;

// True when the AVX2 kernel TU was compiled in (PAPD_SIMD=ON + -mavx2).
bool Avx2CompiledIn();
// True when the AVX2 kernels are compiled in AND this CPU supports AVX2.
bool Avx2Available();

// The kernel table new Packages should use: the forced table if a test or
// bench forced one, else AVX2 when available (unless the PAPD_SIMD=scalar
// environment override is set), else scalar.
const TickKernels& ActiveKernels();

// Test/bench hook: force "scalar", force "avx2", or restore automatic
// dispatch with nullptr or "auto".  Affects Packages constructed afterwards.
// Returns false (and forces nothing) if the named table is unavailable.
bool ForceKernelsForTest(const char* name_or_null);

}  // namespace simd
}  // namespace papd

#endif  // SRC_CPUSIM_SIMD_TICK_KERNELS_H_
