// AVX2 tick kernels: 4 double lanes (32 byte-flag lanes for the census) per
// iteration over the flat CoreArray vectors, with scalar-kernel tails.
//
// Bit-identity with tick_kernels_scalar.cc is a hard contract (the FNV-1a
// goldens in tests/soa_equivalence_test.cc run under both tables):
//   - every per-lane floating-point expression uses the same association
//     order as the scalar reference, with vdivpd where the scalar path
//     divides (MhzToGhz, the leakage voltage ratio);
//   - vminpd/vmaxpd are exact and match std::min/std::max on the positive,
//     NaN-free values that flow here;
//   - this translation unit is compiled with -mavx2 ONLY — never -mfma —
//     so no mul+add pair is contracted into a differently rounded fused op;
//   - cross-lane reductions that would reassociate floating point are not
//     performed here (Package sums the power vector in scalar index order);
//     the census reduction is integral and therefore order-free.
//
// The byte flags (online, has_work, work_avx, multi_member, scratch_avx)
// are strictly 0/1, which MaskFromBytes exploits (0/1 -> 0/-1 via integer
// negate).  The Quantity<Tag> vectors are loaded through double* — the
// strong types are single-double standard-layout wrappers (static_asserted
// below), and both sides of every access read/write the underlying double.

#if defined(PAPD_SIMD_AVX2)

#include <immintrin.h>

#include <type_traits>

#include "src/cpusim/simd/tick_kernels.h"

namespace papd {
namespace simd {

// Defined below; the extern declaration gives the const table external
// linkage so the dispatcher in tick_kernels.cc can reference it.
extern const TickKernels kAvx2Kernels;

namespace {

static_assert(sizeof(Mhz) == sizeof(double) && std::is_standard_layout_v<Mhz>,
              "SIMD kernels reinterpret Quantity vectors as double arrays");
static_assert(sizeof(Volts) == sizeof(double) && sizeof(Watts) == sizeof(double) &&
                  sizeof(Joules) == sizeof(double),
              "SIMD kernels reinterpret Quantity vectors as double arrays");
static_assert(sizeof(WorkSlice) == 4 * sizeof(double) &&
                  std::is_standard_layout_v<WorkSlice>,
              "WorkSlice field gathers assume a plain 4-double layout");

// 4 flag bytes (each 0 or 1) -> 4 all-zeros/all-ones double lanes.
inline __m256d MaskFromBytes(const uint8_t* b) {
  const uint32_t packed = static_cast<uint32_t>(b[0]) |
                          (static_cast<uint32_t>(b[1]) << 8) |
                          (static_cast<uint32_t>(b[2]) << 16) |
                          (static_cast<uint32_t>(b[3]) << 24);
  const __m128i bytes = _mm_cvtsi32_si128(static_cast<int>(packed));
  const __m256i lanes = _mm256_cvtepu8_epi64(bytes);
  return _mm256_castsi256_pd(_mm256_sub_epi64(_mm256_setzero_si256(), lanes));
}

inline __m256d GatherBusy(const WorkSlice* s) {
  return _mm256_setr_pd(s[0].busy_fraction, s[1].busy_fraction,
                        s[2].busy_fraction, s[3].busy_fraction);
}

inline __m256d GatherActivity(const WorkSlice* s) {
  return _mm256_setr_pd(s[0].activity, s[1].activity, s[2].activity,
                        s[3].activity);
}

inline __m256d GatherInstructions(const WorkSlice* s) {
  return _mm256_setr_pd(s[0].instructions, s[1].instructions, s[2].instructions,
                        s[3].instructions);
}

// PAPD_HOT
void CensusAvx2(const uint8_t* online, const uint8_t* has_work,
                const uint8_t* work_avx, const uint8_t* multi_member,
                uint8_t* scratch_avx, size_t n, int* active, int* avx_active) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i act_acc = zero;
  __m256i avx_acc = zero;
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i on = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(online + i));
    const __m256i hw = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(has_work + i));
    const __m256i mm = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(multi_member + i));
    const __m256i wa = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(work_avx + i));
    // scratch = work_avx where (online && has_work), else 0.
    const __m256i not_on_hw = _mm256_cmpeq_epi8(_mm256_and_si256(on, hw), zero);
    const __m256i scratch = _mm256_andnot_si256(not_on_hw, wa);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(scratch_avx + i), scratch);
    // active = online && (has_work || multi_member); bytes stay 0/1 so the
    // unsigned byte-sum (vpsadbw) cannot saturate.
    const __m256i act = _mm256_and_si256(on, _mm256_or_si256(hw, mm));
    act_acc = _mm256_add_epi64(act_acc, _mm256_sad_epu8(act, zero));
    avx_acc = _mm256_add_epi64(avx_acc, _mm256_sad_epu8(scratch, zero));
  }
  alignas(32) long long lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), act_acc);
  int act = static_cast<int>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), avx_acc);
  int avx = static_cast<int>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  if (i < n) {
    int tail_act = 0;
    int tail_avx = 0;
    kScalarKernels.census(online + i, has_work + i, work_avx + i,
                          multi_member + i, scratch_avx + i, n - i, &tail_act,
                          &tail_avx);
    act += tail_act;
    avx += tail_avx;
  }
  *active = act;
  *avx_active = avx;
}

// PAPD_HOT
void ClampAvx2(const Mhz* requested_mhz, const uint8_t* online,
               const uint8_t* avx_lane, const double* temps_c,
               const ClampParams& p, Mhz* effective_mhz, size_t n) {
  const __m256d turbo = _mm256_set1_pd(p.turbo_limit.value());
  const __m256d avx_cap = _mm256_set1_pd(p.avx_cap.value());
  const __m256d rapl = _mm256_set1_pd(p.rapl_ceiling.value());
  const __m256d floor = _mm256_set1_pd(p.min_mhz.value());
  const __m256d tj = _mm256_set1_pd(p.tj_max_c);
  const double* req = reinterpret_cast<const double*>(requested_mhz);
  double* eff = reinterpret_cast<double*>(effective_mhz);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d f = _mm256_min_pd(_mm256_loadu_pd(req + i), turbo);
    if (p.rapl_on) {
      f = _mm256_min_pd(f, rapl);
    }
    const __m256d avxm = MaskFromBytes(avx_lane + i);
    f = _mm256_blendv_pd(f, _mm256_min_pd(f, avx_cap), avxm);
    const __m256d hot =
        _mm256_cmp_pd(_mm256_loadu_pd(temps_c + i), tj, _CMP_GE_OQ);
    f = _mm256_blendv_pd(f, floor, hot);
    f = _mm256_max_pd(f, floor);
    // Offline lanes keep their pinned zero: blend the old value back.
    const __m256d onm = MaskFromBytes(online + i);
    const __m256d old = _mm256_loadu_pd(eff + i);
    _mm256_storeu_pd(eff + i, _mm256_blendv_pd(old, f, onm));
  }
  if (i < n) {
    kScalarKernels.clamp(requested_mhz + i, online + i, avx_lane + i,
                         temps_c + i, p, effective_mhz + i, n - i);
  }
}

// PAPD_HOT
int PowerAvx2(const Mhz* effective_mhz, const WorkSlice* slices,
              const uint8_t* online, const PowerModel& model,
              Mhz* volts_cache_mhz, Volts* volts_cache_v, Watts* power_w,
              size_t n) {
  const PowerModelParams& pm = model.params();
  const __m256d leak_ref_w = _mm256_set1_pd(pm.leak_ref_w.value());
  const __m256d leak_ref_v = _mm256_set1_pd(pm.leak_ref_volts.value());
  const __m256d ceff = _mm256_set1_pd(pm.ceff_w_per_v2ghz);
  const __m256d gate_w = _mm256_set1_pd(pm.clock_gate_w.value());
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d ghz_div = _mm256_set1_pd(kMhzPerGhz);
  const __m256d busy_thresh = _mm256_set1_pd(0.05);
  const double* eff = reinterpret_cast<const double*>(effective_mhz);
  const double* vc_f = reinterpret_cast<const double*>(volts_cache_mhz);
  const double* vc_v = reinterpret_cast<const double*>(volts_cache_v);
  double* pw = reinterpret_cast<double*>(power_w);
  int busy_cores = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d f = _mm256_loadu_pd(eff + i);
    const __m256d onm = MaskFromBytes(online + i);
    // Voltage-memo refresh: online lanes whose effective frequency moved
    // since the memo was filled re-run the piecewise-linear lookup scalar
    // side (P-states change every ~1000 ticks, so misses are rare).
    const __m256d miss = _mm256_and_pd(
        _mm256_cmp_pd(f, _mm256_loadu_pd(vc_f + i), _CMP_NEQ_UQ), onm);
    int miss_mask = _mm256_movemask_pd(miss);
    if (miss_mask != 0) {
      for (int l = 0; l < 4; ++l) {
        if (miss_mask & (1 << l)) {
          volts_cache_mhz[i + l] = effective_mhz[i + l];
          volts_cache_v[i + l] = model.VoltsAt(effective_mhz[i + l]);
        }
      }
    }
    const __m256d v = _mm256_loadu_pd(vc_v + i);
    const __m256d busy = GatherBusy(slices + i);
    const __m256d act = GatherActivity(slices + i);
    // leakage = (leak_ref_w * (v / v_ref)) * (v / v_ref)
    const __m256d vr = _mm256_div_pd(v, leak_ref_v);
    const __m256d leak = _mm256_mul_pd(_mm256_mul_pd(leak_ref_w, vr), vr);
    // dynamic = ((((ceff * act) * v) * v) * (f / 1000)) * busy — the scalar
    // expression's left-to-right association, with a true division for
    // MhzToGhz.
    __m256d dyn = _mm256_mul_pd(ceff, act);
    dyn = _mm256_mul_pd(dyn, v);
    dyn = _mm256_mul_pd(dyn, v);
    dyn = _mm256_mul_pd(dyn, _mm256_div_pd(f, ghz_div));
    dyn = _mm256_mul_pd(dyn, busy);
    const __m256d gate = _mm256_mul_pd(gate_w, _mm256_sub_pd(one, busy));
    const __m256d p = _mm256_add_pd(_mm256_add_pd(leak, dyn), gate);
    // Offline lanes keep their constant deep-C-state power.
    _mm256_storeu_pd(pw + i, _mm256_blendv_pd(_mm256_loadu_pd(pw + i), p, onm));
    const __m256d isbusy =
        _mm256_and_pd(_mm256_cmp_pd(busy, busy_thresh, _CMP_GT_OQ), onm);
    busy_cores += __builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(isbusy)));
  }
  if (i < n) {
    busy_cores += kScalarKernels.power(effective_mhz + i, slices + i, online + i,
                                       model, volts_cache_mhz + i,
                                       volts_cache_v + i, power_w + i, n - i);
  }
  return busy_cores;
}

// PAPD_HOT
void CountersAvx2(const Mhz* effective_mhz, const WorkSlice* slices,
                  const Watts* power_w, Mhz tsc_mhz, Seconds dt,
                  double* aperf_cycles, double* mperf_cycles,
                  double* instructions_retired, Joules* energy_j, size_t n) {
  const __m256d khz = _mm256_set1_pd(kHzPerMhz);
  const __m256d dts = _mm256_set1_pd(dt.value());
  // The MPERF step is lane-invariant; precompute it with the scalar
  // reference's association: ((tsc * kHz) * dt).
  const __m256d mstep = _mm256_set1_pd(tsc_mhz * kHzPerMhz * dt);
  const double* eff = reinterpret_cast<const double*>(effective_mhz);
  const double* pw = reinterpret_cast<const double*>(power_w);
  double* ej = reinterpret_cast<double*>(energy_j);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d busy = GatherBusy(slices + i);
    // aperf += ((f * kHz) * dt) * busy
    const __m256d f = _mm256_loadu_pd(eff + i);
    const __m256d a =
        _mm256_mul_pd(_mm256_mul_pd(_mm256_mul_pd(f, khz), dts), busy);
    _mm256_storeu_pd(aperf_cycles + i,
                     _mm256_add_pd(_mm256_loadu_pd(aperf_cycles + i), a));
    _mm256_storeu_pd(mperf_cycles + i,
                     _mm256_add_pd(_mm256_loadu_pd(mperf_cycles + i),
                                   _mm256_mul_pd(mstep, busy)));
    _mm256_storeu_pd(instructions_retired + i,
                     _mm256_add_pd(_mm256_loadu_pd(instructions_retired + i),
                                   GatherInstructions(slices + i)));
    _mm256_storeu_pd(ej + i, _mm256_add_pd(_mm256_loadu_pd(ej + i),
                                           _mm256_mul_pd(_mm256_loadu_pd(pw + i),
                                                         dts)));
  }
  if (i < n) {
    kScalarKernels.counters(effective_mhz + i, slices + i, power_w + i, tsc_mhz,
                            dt, aperf_cycles + i, mperf_cycles + i,
                            instructions_retired + i, energy_j + i, n - i);
  }
}

}  // namespace

const TickKernels kAvx2Kernels = {"avx2", &CensusAvx2, &ClampAvx2, &PowerAvx2,
                                  &CountersAvx2};

}  // namespace simd
}  // namespace papd

#endif  // PAPD_SIMD_AVX2
