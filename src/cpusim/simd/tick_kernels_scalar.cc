// Scalar reference tick kernels: literal ports of the original
// Package::Tick loops.  These define the bit-exact semantics the AVX2
// kernels must reproduce (tests/soa_equivalence_test.cc pins both against
// the same FNV-1a golden checksums).

#include <algorithm>

#include "src/cpusim/simd/tick_kernels.h"

namespace papd {
namespace simd {
namespace {

// PAPD_HOT
void CensusScalar(const uint8_t* online, const uint8_t* has_work,
                  const uint8_t* work_avx, const uint8_t* multi_member,
                  uint8_t* scratch_avx, size_t n, int* active, int* avx_active) {
  int act = 0;
  int avx = 0;
  for (size_t i = 0; i < n; i++) {
    scratch_avx[i] = (online[i] && has_work[i]) ? work_avx[i] : 0;
    if (!online[i] || (!has_work[i] && !multi_member[i])) {
      continue;
    }
    act++;
    avx += scratch_avx[i];
  }
  *active = act;
  *avx_active = avx;
}

// PAPD_HOT
void ClampScalar(const Mhz* requested_mhz, const uint8_t* online,
                 const uint8_t* avx_lane, const double* temps_c,
                 const ClampParams& p, Mhz* effective_mhz, size_t n) {
  for (size_t i = 0; i < n; i++) {
    if (!online[i]) {
      // Pinned to zero at the online->offline transition; stays untouched.
      continue;
    }
    Mhz f{std::min(requested_mhz[i], p.turbo_limit)};
    if (p.rapl_on) {
      f = std::min(f, p.rapl_ceiling);
    }
    if (avx_lane[i]) {
      f = std::min(f, p.avx_cap);
    }
    if (temps_c[i] >= p.tj_max_c) {
      // PROCHOT: the core hard-throttles to the floor until it cools.
      f = p.min_mhz;
    }
    effective_mhz[i] = std::max(f, p.min_mhz);
  }
}

// PAPD_HOT
int PowerScalar(const Mhz* effective_mhz, const WorkSlice* slices,
                const uint8_t* online, const PowerModel& model,
                Mhz* volts_cache_mhz, Volts* volts_cache_v, Watts* power_w,
                size_t n) {
  int busy_cores = 0;
  for (size_t i = 0; i < n; i++) {
    if (!online[i]) {
      // power_w holds the constant deep-C-state draw written at the
      // online->offline transition.
      continue;
    }
    const Mhz f{effective_mhz[i]};
    if (f != volts_cache_mhz[i]) {
      volts_cache_mhz[i] = f;
      volts_cache_v[i] = model.VoltsAt(f);
    }
    power_w[i] = model.CorePowerW(f, slices[i].busy_fraction, slices[i].activity,
                                  volts_cache_v[i]);
    if (slices[i].busy_fraction > 0.05) {
      busy_cores++;
    }
  }
  return busy_cores;
}

// PAPD_HOT
void CountersScalar(const Mhz* effective_mhz, const WorkSlice* slices,
                    const Watts* power_w, Mhz tsc_mhz, Seconds dt,
                    double* aperf_cycles, double* mperf_cycles,
                    double* instructions_retired, Joules* energy_j, size_t n) {
  for (size_t i = 0; i < n; i++) {
    // Same expression order as the original fused pass, so counter values
    // stay bit-identical.
    const double busy = slices[i].busy_fraction;
    aperf_cycles[i] += effective_mhz[i] * kHzPerMhz * dt * busy;
    mperf_cycles[i] += tsc_mhz * kHzPerMhz * dt * busy;
    instructions_retired[i] += slices[i].instructions;
    energy_j[i] += power_w[i] * dt;
  }
}

}  // namespace

const TickKernels kScalarKernels = {"scalar", &CensusScalar, &ClampScalar,
                                    &PowerScalar, &CountersScalar};

}  // namespace simd
}  // namespace papd
