#include "src/cpusim/simulator.h"

#include <algorithm>

namespace papd {

void Simulator::AddPeriodic(Seconds period_s, std::function<void(Seconds)> fn,
                            Seconds first_at_s) {
  Periodic p;
  p.period_s = period_s;
  p.next_due_s = first_at_s >= Seconds{0.0} ? first_at_s : package_->now() + period_s;
  p.fn = std::move(fn);
  next_due_s_ = std::min(next_due_s_, p.next_due_s);
  periodics_.push_back(std::move(p));
}

void Simulator::StepOnce() {
  package_->Tick(tick_s_);
  const Seconds now{package_->now()};
  if (now + Seconds{1e-12} >= next_due_s_) {
    FirePeriodics(now);
  }
}

void Simulator::FirePeriodics(Seconds now) {
  Seconds next{kNeverDue};
  for (Periodic& p : periodics_) {
    // A long tick may cross several due times; fire once per crossing so
    // period accounting stays exact.
    while (p.next_due_s <= now + Seconds{1e-12}) {
      p.fn(now);
      p.next_due_s += p.period_s;
    }
    next = std::min(next, p.next_due_s);
  }
  next_due_s_ = next;
}

void Simulator::Run(Seconds duration_s) {
  const Seconds end{package_->now() + duration_s};
  while (package_->now() + Seconds{1e-12} < end) {
    StepOnce();
  }
}

bool Simulator::RunUntil(const std::function<bool()>& done, Seconds max_duration_s,
                         Seconds check_period_s) {
  const Seconds end{package_->now() + max_duration_s};
  Seconds next_check_s{package_->now()};  // Always check before the first tick.
  while (package_->now() + Seconds{1e-12} < end) {
    if (package_->now() + Seconds{1e-12} >= next_check_s) {
      if (done()) {
        return true;
      }
      next_check_s = package_->now() + check_period_s;
    }
    StepOnce();
  }
  return done();
}

}  // namespace papd
