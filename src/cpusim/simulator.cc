#include "src/cpusim/simulator.h"

#include <algorithm>

namespace papd {

void Simulator::AddPeriodic(Seconds period_s, std::function<void(Seconds)> fn,
                            Seconds first_at_s) {
  Periodic p;
  p.period_s = period_s;
  p.next_due_s = first_at_s >= Seconds{0.0} ? first_at_s : package_->now() + period_s;
  p.fn = std::move(fn);
  next_due_s_ = std::min(next_due_s_, p.next_due_s);
  periodics_.push_back(std::move(p));
}

void Simulator::StepOnce() {
  package_->Tick(tick_s_);
  const Seconds now{package_->now()};
  if (now + Seconds{1e-12} >= next_due_s_) {
    FirePeriodics(now);
  }
}

void Simulator::FirePeriodics(Seconds now) {
  Seconds next{kNeverDue};
  for (Periodic& p : periodics_) {
    // A long tick may cross several due times; fire once per crossing so
    // period accounting stays exact.
    while (p.next_due_s <= now + Seconds{1e-12}) {
      p.fn(now);
      p.next_due_s += p.period_s;
    }
    next = std::min(next, p.next_due_s);
  }
  next_due_s_ = next;
}

void Simulator::Run(Seconds duration_s) {
  const Seconds end{package_->now() + duration_s};
  while (package_->now() + Seconds{1e-12} < end) {
    StepOnce();
  }
}

// PAPD_HOT
void Simulator::RunCoarse(Seconds duration_s) {
  const Seconds end{package_->now() + duration_s};
  while (package_->now() + Seconds{1e-12} < end) {
    // A segment may run at most to the window end or the next periodic due
    // time, whichever is sooner; like StepOnce it may overshoot the bound
    // by a fraction of one tick when the bound is tick-misaligned.
    const Seconds bound{std::min(end, next_due_s_)};
    const double remaining_ticks = (bound - package_->now()) / tick_s_;
    const int max_ticks =
        remaining_ticks >= 2.0
            ? static_cast<int>(std::min(remaining_ticks + 0.5,
                                        static_cast<double>(std::numeric_limits<int>::max())))
            : 0;
    int advanced = 0;
    if (max_ticks >= 2) {
      advanced = package_->AdvanceSteady(tick_s_, max_ticks);
    }
    if (advanced == 0) {
      package_->Tick(tick_s_);
    }
    const Seconds now{package_->now()};
    if (now + Seconds{1e-12} >= next_due_s_) {
      FirePeriodics(now);
    }
  }
}

bool Simulator::RunUntil(const std::function<bool()>& done, Seconds max_duration_s,
                         Seconds check_period_s) {
  const Seconds end{package_->now() + max_duration_s};
  Seconds next_check_s{package_->now()};  // Always check before the first tick.
  while (package_->now() + Seconds{1e-12} < end) {
    if (package_->now() + Seconds{1e-12} >= next_check_s) {
      if (done()) {
        return true;
      }
      next_check_s = package_->now() + check_period_s;
    }
    StepOnce();
  }
  return done();
}

}  // namespace papd
