// Discrete-time simulation driver.
//
// Advances a Package in fixed ticks (default 1 ms, the time scale on which
// RAPL firmware acts) and fires registered periodic callbacks — most
// importantly the policy daemon, which the paper runs at a 1-second period.
//
// The tick loop is the hottest path in the repository (a full reproduction
// sweep executes hundreds of millions of ticks), so the periodic-callback
// scan is hoisted behind a precomputed next-due time: a tick that crosses
// no callback deadline costs one comparison, not a walk over the callback
// list with a std::function dispatch check per entry.

#ifndef SRC_CPUSIM_SIMULATOR_H_
#define SRC_CPUSIM_SIMULATOR_H_

#include <functional>
#include <limits>
#include <vector>

#include "src/common/units.h"
#include "src/cpusim/package.h"

namespace papd {

class Simulator {
 public:
  // The simulator borrows the package; the caller keeps ownership.
  explicit Simulator(Package* package, Seconds tick_s = Seconds{0.001})
      : package_(package), tick_s_(tick_s) {}

  Package& package() { return *package_; }
  Seconds now() const { return package_->now(); }
  Seconds tick_s() const { return tick_s_; }

  // Registers a callback fired every `period_s`, first at `first_at_s`
  // (defaults to one period in).  Callbacks run after the tick that crosses
  // their due time, in registration order.
  void AddPeriodic(Seconds period_s, std::function<void(Seconds now)> fn,
                   Seconds first_at_s = Seconds{-1.0});

  // Runs for `duration_s` of simulated time.
  void Run(Seconds duration_s);

  // Like Run(), but advances through Package::AdvanceSteady segments when
  // the package can hold the whole socket, falling back to single ticks
  // otherwise.  Segments never cross a periodic-callback due time, so
  // callbacks fire exactly as they would under Run().  Time/energy advance
  // bit-identically to Run() only while every tick in a segment would have
  // been a fast tick (see AdvanceSteady); callers gate this behind
  // TickOptions::socket_hold.
  void RunCoarse(Seconds duration_s);

  // Runs until the predicate returns true or until `max_duration_s`
  // elapses.  Returns true if the predicate fired.  By default the
  // predicate is evaluated once per tick; a positive `check_period_s`
  // evaluates it only every that much simulated time — coarse predicates
  // ("has the workload finished?") do not need a std::function call per
  // millisecond.  The predicate is always checked before the first tick
  // and once more at the deadline.
  bool RunUntil(const std::function<bool()>& done, Seconds max_duration_s,
                Seconds check_period_s = Seconds{0.0});

 private:
  struct Periodic {
    Seconds period_s;
    Seconds next_due_s;
    std::function<void(Seconds)> fn;
  };

  static constexpr Seconds kNeverDue{Seconds{std::numeric_limits<double>::infinity()}};

  void StepOnce();
  // Fires every periodic whose due time has been crossed and recomputes
  // next_due_s_.  Out of line: StepOnce inlines to tick + one compare.
  void FirePeriodics(Seconds now);

  Package* package_;
  Seconds tick_s_;
  std::vector<Periodic> periodics_;
  // Minimum of periodics_[i].next_due_s; kNeverDue when none registered.
  Seconds next_due_s_{kNeverDue};
};

}  // namespace papd

#endif  // SRC_CPUSIM_SIMULATOR_H_
