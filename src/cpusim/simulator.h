// Discrete-time simulation driver.
//
// Advances a Package in fixed ticks (default 1 ms, the time scale on which
// RAPL firmware acts) and fires registered periodic callbacks — most
// importantly the policy daemon, which the paper runs at a 1-second period.

#ifndef SRC_CPUSIM_SIMULATOR_H_
#define SRC_CPUSIM_SIMULATOR_H_

#include <functional>
#include <vector>

#include "src/common/units.h"
#include "src/cpusim/package.h"

namespace papd {

class Simulator {
 public:
  // The simulator borrows the package; the caller keeps ownership.
  explicit Simulator(Package* package, Seconds tick_s = 0.001)
      : package_(package), tick_s_(tick_s) {}

  Package& package() { return *package_; }
  Seconds now() const { return package_->now(); }
  Seconds tick_s() const { return tick_s_; }

  // Registers a callback fired every `period_s`, first at `first_at_s`
  // (defaults to one period in).  Callbacks run after the tick that crosses
  // their due time, in registration order.
  void AddPeriodic(Seconds period_s, std::function<void(Seconds now)> fn,
                   Seconds first_at_s = -1.0);

  // Runs for `duration_s` of simulated time.
  void Run(Seconds duration_s);

  // Runs until the predicate returns true (checked once per tick) or until
  // `max_duration_s` elapses.  Returns true if the predicate fired.
  bool RunUntil(const std::function<bool()>& done, Seconds max_duration_s);

 private:
  struct Periodic {
    Seconds period_s;
    Seconds next_due_s;
    std::function<void(Seconds)> fn;
  };

  void StepOnce();

  Package* package_;
  Seconds tick_s_;
  std::vector<Periodic> periodics_;
};

}  // namespace papd

#endif  // SRC_CPUSIM_SIMULATOR_H_
