#include "src/cpusim/thermal.h"

#include <algorithm>
#include <cmath>

namespace papd {

ThermalModel::ThermalModel(ThermalParams params, int num_cores)
    : params_(params), temps_(static_cast<size_t>(num_cores), params.ambient_c) {}

void ThermalModel::Update(const std::vector<Watts>& core_w, Watts uncore_w, Seconds dt) {
  Watts total{uncore_w};
  for (Watts w : core_w) {
    total += w;
  }
  // dt is the fixed simulator tick in practice; memoize the exp().
  if (dt != alpha_dt_) {
    alpha_dt_ = dt;
    alpha_ = 1.0 - std::exp(-dt / params_.tau_s);
  }
  const double alpha = alpha_;
  for (size_t i = 0; i < temps_.size(); i++) {
    const Watts own{i < core_w.size() ? core_w[i] : Watts{0.0}};
    const Watts effective{own + params_.spread_fraction * (total - own)};
    const Celsius steady = params_.ambient_c + params_.r_core_c_per_w * effective.value();
    temps_[i] += alpha * (steady - temps_[i]);
  }
}

void ThermalModel::UpdateSteady(const std::vector<Watts>& core_w, Watts uncore_w, Seconds dt,
                                int ticks) {
  Watts total{uncore_w};
  for (Watts w : core_w) {
    total += w;
  }
  if (dt != alpha_dt_) {
    alpha_dt_ = dt;
    alpha_ = 1.0 - std::exp(-dt / params_.tau_s);
  }
  // k ticks of T += alpha * (steady - T) with constant power compound to
  // T = steady + (T - steady) * (1 - alpha)^k.
  const double decay = std::pow(1.0 - alpha_, static_cast<double>(ticks));
  for (size_t i = 0; i < temps_.size(); i++) {
    const Watts own{i < core_w.size() ? core_w[i] : Watts{0.0}};
    const Watts effective{own + params_.spread_fraction * (total - own)};
    const Celsius steady = params_.ambient_c + params_.r_core_c_per_w * effective.value();
    temps_[i] = steady + (temps_[i] - steady) * decay;
  }
}

Celsius ThermalModel::max_temp_c() const {
  Celsius max = params_.ambient_c;
  for (Celsius t : temps_) {
    max = std::max(max, t);
  }
  return max;
}

}  // namespace papd
