// First-order RC thermal model.
//
// Paper Section 2.2 lists Linux's thermald among the mechanisms usable for
// per-application power control: thermal limits can be enforced with
// P-states, RAPL, C-states or clock gating, and "as these mechanisms can be
// both global (RAPL) or local (clock cycle gating, DVFS), they may be
// helpful in building a per-application power delivery system."  To
// exercise that path the package carries a standard lumped RC model:
//
//   dT_i/dt = (T_amb + R * (P_i + spread) - T_i) / tau
//
// per core, where `spread` couples a share of the other cores' and the
// uncore's heat through the heat spreader.  Steady state is
// T = T_amb + R * P_effective; tau sets how fast throttling must react.

#ifndef SRC_CPUSIM_THERMAL_H_
#define SRC_CPUSIM_THERMAL_H_

#include <vector>

#include "src/common/units.h"
#include "src/platform/platform_spec.h"

namespace papd {

using Celsius = double;

// Parameter semantics (fields of PlatformThermal):
//   ambient_c        — heatsink/ambient baseline temperature;
//   r_core_c_per_w   — junction-to-ambient resistance of one core's stack;
//   spread_fraction  — fraction of the *other* heat (remaining cores +
//                      uncore) coupling into each core via the spreader;
//   tau_s            — core thermal time constant;
//   tj_max_c         — junction limit (PROCHOT threshold).
using ThermalParams = PlatformThermal;

class ThermalModel {
 public:
  ThermalModel(ThermalParams params, int num_cores);

  // Advances the model one tick given per-core power and uncore power.
  void Update(const std::vector<Watts>& core_w, Watts uncore_w, Seconds dt);

  // Advances `ticks` ticks of length `dt` under *constant* power in closed
  // form: each core relaxes toward its steady temperature with the per-tick
  // factor (1 - alpha) compounded, so the cost is one pass instead of
  // `ticks` passes.  Equivalent to calling Update() `ticks` times up to
  // floating-point ulps (pow vs repeated multiply); callers that need
  // bit-pinned temperatures must keep ticking per step.
  void UpdateSteady(const std::vector<Watts>& core_w, Watts uncore_w, Seconds dt, int ticks);

  Celsius core_temp_c(int core) const { return temps_[static_cast<size_t>(core)]; }
  // Flat per-core temperature vector; the tick engine's SIMD clamp kernel
  // streams it for the PROCHOT comparison.
  const std::vector<Celsius>& temps_c() const { return temps_; }
  Celsius max_temp_c() const;
  const ThermalParams& params() const { return params_; }

  // True if any core is at/above the junction limit.
  bool OverLimit() const { return max_temp_c() >= params_.tj_max_c; }

 private:
  ThermalParams params_;
  std::vector<Celsius> temps_;
  // Memoized RC coefficient for the (fixed) tick length.
  Seconds alpha_dt_{-1.0};
  double alpha_ = 0.0;
};

}  // namespace papd

#endif  // SRC_CPUSIM_THERMAL_H_
