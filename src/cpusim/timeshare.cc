#include "src/cpusim/timeshare.h"

#include <algorithm>
#include <cassert>

namespace papd {

TimeSharedCore::TimeSharedCore(std::vector<Member> members) : members_(std::move(members)) {
  assert(!members_.empty());
  double total = 0.0;
  for (const Member& m : members_) {
    assert(m.work != nullptr);
    assert(m.residency >= 0.0);
    total += m.residency;
  }
  if (total > 1.0) {
    for (Member& m : members_) {
      m.residency /= total;
    }
  }
  member_instructions_.assign(members_.size(), 0.0);
}

WorkSlice TimeSharedCore::Run(Seconds dt, Mhz freq_mhz) {
  // Run each member for its residency slice of dt.  The scheduler quantum
  // (~ms) is far below the 1 Hz monitoring period, so representing the
  // interleaving as exact fractional residency is accurate for both average
  // power and throughput.
  WorkSlice combined;
  double weighted_activity = 0.0;
  double weighted_avx = 0.0;
  for (size_t i = 0; i < members_.size(); i++) {
    const Member& m = members_[i];
    if (m.residency <= 0.0) {
      continue;
    }
    WorkSlice s = m.work->Run(dt * m.residency, freq_mhz);
    combined.instructions += s.instructions;
    member_instructions_[i] += s.instructions;
    const double busy = s.busy_fraction * m.residency;
    combined.busy_fraction += busy;
    weighted_activity += s.activity * busy;
    weighted_avx += s.avx_fraction * busy;
  }
  if (combined.busy_fraction > 0.0) {
    combined.activity = weighted_activity / combined.busy_fraction;
    combined.avx_fraction = weighted_avx / combined.busy_fraction;
  }
  return combined;
}

void TimeSharedCore::SetResidency(size_t member, double residency) {
  assert(member < members_.size());
  assert(residency >= 0.0);
  members_[member].residency = residency;
}

bool TimeSharedCore::UsesAvx() const {
  for (const Member& m : members_) {
    if (m.work->UsesAvx() && m.residency > 0.0) {
      return true;
    }
  }
  return false;
}

}  // namespace papd
