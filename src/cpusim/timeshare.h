// Single-core time sharing (paper Section 4.3, Figure 6).
//
// When two applications share one core with CPU shares (cgroups/docker in
// the paper), the core's average power is the residency-weighted sum of the
// individual applications' power draws.  TimeSharedCore composes two (or
// more) CoreWorks with residency fractions and presents them to the
// simulator as a single core occupant, which reproduces that result and
// lets the Figure 6 bench sweep share ratios.

#ifndef SRC_CPUSIM_TIMESHARE_H_
#define SRC_CPUSIM_TIMESHARE_H_

#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/specsim/core_work.h"

namespace papd {

class TimeSharedCore : public CoreWork {
 public:
  struct Member {
    CoreWork* work;     // Non-owning.
    double residency;   // Fraction of core time (shares / total); >= 0.
  };

  // Residencies may sum to less than 1 (remainder is idle) but not more;
  // values are clamped if they do.
  explicit TimeSharedCore(std::vector<Member> members);

  WorkSlice Run(Seconds dt, Mhz freq_mhz) override;
  bool UsesAvx() const override;
  std::string Name() const override { return "timeshare"; }

  // Instructions each member retired so far (same order as construction).
  const std::vector<double>& member_instructions() const { return member_instructions_; }

  // Adjusts a member's residency at runtime (the single-core sharing
  // policy's CPU-shares knob).  Values are used as-is; keep the sum <= 1.
  void SetResidency(size_t member, double residency);
  double residency(size_t member) const { return members_[member].residency; }

 private:
  std::vector<Member> members_;
  std::vector<double> member_instructions_;
};

}  // namespace papd

#endif  // SRC_CPUSIM_TIMESHARE_H_
