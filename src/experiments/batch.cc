#include "src/experiments/batch.h"

namespace papd {

std::vector<ScenarioResult> RunScenarios(const std::vector<ScenarioConfig>& configs,
                                         ThreadPool* pool) {
  std::vector<ScenarioResult> results(configs.size());
  ThreadPool& p = pool != nullptr ? *pool : GlobalThreadPool();
  p.ParallelFor(configs.size(),
                [&](size_t i) { results[i] = RunScenario(configs[i]); });
  return results;
}

std::vector<WebsearchResult> RunWebsearches(const std::vector<WebsearchConfig>& configs,
                                            ThreadPool* pool) {
  std::vector<WebsearchResult> results(configs.size());
  ThreadPool& p = pool != nullptr ? *pool : GlobalThreadPool();
  p.ParallelFor(configs.size(),
                [&](size_t i) { results[i] = RunWebsearch(configs[i]); });
  return results;
}

}  // namespace papd
