// Batch scenario execution: fan a list of independent scenario configs out
// across a thread pool and collect results in submission order.
//
// Each scenario owns its Package, Simulator and RNG streams, so scenarios
// never share mutable state and the fan-out is bit-identical to running
// RunScenario / RunWebsearch in a serial loop over the same configs.  The
// only cross-scenario state is the Standalone() baseline cache, which is
// mutex-guarded and deterministic (racing first computations produce
// identical entries).

#ifndef SRC_EXPERIMENTS_BATCH_H_
#define SRC_EXPERIMENTS_BATCH_H_

#include <vector>

#include "src/common/thread_pool.h"
#include "src/experiments/harness.h"

namespace papd {

// Runs every config and returns results[i] == RunScenario(configs[i]).
// With pool == nullptr the shared GlobalThreadPool() is used (worker count
// from PAPD_JOBS or the hardware).  Exceptions thrown by a scenario
// propagate to the caller after the batch drains.
std::vector<ScenarioResult> RunScenarios(const std::vector<ScenarioConfig>& configs,
                                         ThreadPool* pool = nullptr);

// Same contract for websearch experiments.
std::vector<WebsearchResult> RunWebsearches(const std::vector<WebsearchConfig>& configs,
                                            ThreadPool* pool = nullptr);

}  // namespace papd

#endif  // SRC_EXPERIMENTS_BATCH_H_
