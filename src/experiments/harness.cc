#include "src/experiments/harness.h"

#include <algorithm>
#include <map>
#include <memory>

#include "src/common/check.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/msr/msr.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/websearch.h"
#include "src/specsim/workload.h"

namespace papd {
namespace {

// Counter snapshot used to window statistics to [warmup, warmup+measure].
struct CounterWindow {
  std::vector<double> aperf;
  std::vector<double> mperf;
  std::vector<double> instructions;
  std::vector<Joules> core_energy;
  Joules pkg_energy{0.0};
  Seconds t{0.0};

  static CounterWindow Take(const Package& pkg) {
    CounterWindow w;
    const int n = pkg.num_cores();
    w.aperf.reserve(static_cast<size_t>(n));
    w.mperf.reserve(static_cast<size_t>(n));
    w.instructions.reserve(static_cast<size_t>(n));
    w.core_energy.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; i++) {
      const Core& c = pkg.core(i);
      w.aperf.push_back(c.aperf_cycles());
      w.mperf.push_back(c.mperf_cycles());
      w.instructions.push_back(c.instructions_retired());
      w.core_energy.push_back(c.energy_j());
    }
    w.pkg_energy = pkg.package_energy_j();
    w.t = pkg.now();
    return w;
  }
};

}  // namespace

StandaloneBaseline Standalone(const PlatformSpec& platform, const std::string& profile) {
  // The cache is shared across scenario threads (RunScenarios fan-out); the
  // mutex guards lookups and inserts.  Returned by value so no reference to
  // the guarded map escapes the lock scope.
  static Mutex mu;
  static std::map<std::pair<std::string, std::string>, StandaloneBaseline> cache
      PAPD_GUARDED_BY(mu);
  const auto key = std::make_pair(platform.name, profile);
  {
    MutexLock lock(mu);
    auto it = cache.find(key);
    if (it != cache.end()) {
      return it->second;
    }
  }

  // Simulate outside the lock: a baseline costs ~35 simulated seconds, and
  // concurrent first callers should not serialize on it.  The values are
  // deterministic, so racing computations produce identical entries and
  // emplace() lets the first writer win.
  Package pkg(platform);
  Process proc(GetProfile(profile), /*seed=*/1);
  pkg.AttachWork(0, &proc);
  pkg.SetRequestedMhz(0, platform.turbo_max_mhz);
  for (int c = 1; c < pkg.num_cores(); c++) {
    pkg.SetRequestedMhz(c, platform.min_mhz);
  }
  Simulator sim(&pkg);
  sim.Run(Seconds{5.0});  // Warmup.
  const CounterWindow start = CounterWindow::Take(pkg);
  sim.Run(Seconds{30.0});
  const CounterWindow end = CounterWindow::Take(pkg);
  const Seconds dt{end.t - start.t};

  StandaloneBaseline b;
  b.ips = (end.instructions[0] - start.instructions[0]) / dt;
  const double dm = end.mperf[0] - start.mperf[0];
  b.active_mhz = dm > 0.0 ? (end.aperf[0] - start.aperf[0]) / dm * platform.tsc_mhz : Mhz{0.0};
  b.pkg_w = (end.pkg_energy - start.pkg_energy) / dt;
  b.core_w = (end.core_energy[0] - start.core_energy[0]) / dt;
  MutexLock lock(mu);
  return cache.emplace(key, b).first->second;
}

DaemonConfig ToDaemonConfig(const ScenarioConfig& config) {
  const RunOptions& run = config.run;
  DaemonConfig dcfg;
  dcfg.kind = config.policy;
  dcfg.power_limit_w = config.limit_w;
  dcfg.period_s = config.daemon_period_s;
  dcfg.priority = config.priority;
  dcfg.static_mhz = config.static_mhz;
  dcfg.use_hwp_hints = run.daemon.hwp_hints;
  dcfg.audit = run.daemon.audit;
  dcfg.degradation.enabled = run.daemon.degrade;
  // The naive baseline also consumes raw turbostat output, reproducing the
  // pre-hardening daemon end to end.
  dcfg.raw_telemetry = !run.daemon.degrade;
  return dcfg;
}

ScenarioResult RunScenario(const ScenarioConfig& config) {
  PAPD_CHECK_LE(static_cast<int>(config.apps.size()), config.platform.num_cores);
  const RunOptions& run = config.run;

  Package pkg(config.platform);
  pkg.SetTickPolicy(run.tick.policy, run.tick.max_hold_ticks);
  MsrFile msr(&pkg);

  // Instantiate and pin the workloads.
  std::vector<std::unique_ptr<Process>> procs;
  std::vector<ManagedApp> managed;
  for (size_t i = 0; i < config.apps.size(); i++) {
    const AppSetup& setup = config.apps[i];
    procs.push_back(
        std::make_unique<Process>(GetProfile(setup.profile), config.seed + 1000 * i));
    pkg.AttachWork(static_cast<int>(i), procs.back().get());
    managed.push_back(ManagedApp{
        .name = setup.profile,
        .cpu = static_cast<int>(i),
        .shares = setup.shares,
        .high_priority = setup.high_priority,
        .baseline_ips = Standalone(config.platform, setup.profile).ips,
    });
  }
  // Unmanaged (empty) cores idle at the minimum P-state.
  for (int c = static_cast<int>(config.apps.size()); c < pkg.num_cores(); c++) {
    pkg.SetRequestedMhz(c, config.platform.min_mhz);
  }

  if (run.daemon.faults.Any()) {
    msr.EnableFaults(run.daemon.faults);
  }

  // Tracing: an external sink wins; otherwise run.obs.trace spins up an
  // internal recorder whose events come back in the result.
  std::unique_ptr<obs::TraceRecorder> recorder;
  ObsSink* sink = run.obs.sink;
  if (run.obs.trace && sink == nullptr) {
    recorder = std::make_unique<obs::TraceRecorder>(run.obs.ring_capacity);
    sink = recorder.get();
  }

  DaemonConfig dcfg = ToDaemonConfig(config);
  dcfg.obs.sink = sink;
  PowerDaemon daemon(&msr, managed, dcfg);
  daemon.Start();

  Simulator sim(&pkg);
  if (config.policy != PolicyKind::kStatic) {
    sim.AddPeriodic(config.daemon_period_s, [&daemon](Seconds) { daemon.Step(); });
  }
  // Ground-truth worst-1-second package power, read straight from the
  // package energy counter so corrupted telemetry cannot hide overshoot.
  Watts max_pkg_w{0.0};
  Joules prev_energy_j{0.0};
  Seconds prev_energy_t{0.0};
  sim.AddPeriodic(Seconds{1.0}, [&](Seconds now) {
    const Joules e{pkg.package_energy_j()};
    const Watts w{(e - prev_energy_j) / (now - prev_energy_t)};
    if (now > config.warmup_s) {
      max_pkg_w = std::max(max_pkg_w, w);
    }
    prev_energy_j = e;
    prev_energy_t = now;
  });

  sim.Run(config.warmup_s);
  const CounterWindow start = CounterWindow::Take(pkg);
  sim.Run(config.measure_s);
  // Multi-rate runs defer workload-internal accounting; catch it up before
  // anything below reads Process state.  (Counter windows are exact either
  // way — hardware counters advance every tick.)
  pkg.FlushSteadyWork();
  const CounterWindow end = CounterWindow::Take(pkg);
  const Seconds dt{end.t - start.t};

  ScenarioResult result;
  result.measured_s = dt;
  result.energy_j = end.pkg_energy - start.pkg_energy;
  result.avg_pkg_w = result.energy_j / dt;
  result.max_pkg_w = max_pkg_w;
  result.fault_stats = daemon.fault_stats();
  if (msr.faults() != nullptr) {
    result.fault_counts = msr.faults()->counts();
  }
  result.metrics = daemon.metrics().Export();
  if (recorder != nullptr) {
    result.trace_events = recorder->Drain();
  }
  if (!run.obs.chrome_trace_path.empty()) {
    obs::WriteFile(run.obs.chrome_trace_path, obs::ChromeTraceJson(result.trace_events));
  }
  if (!run.obs.metrics_csv_path.empty()) {
    obs::WriteFile(run.obs.metrics_csv_path, obs::MetricsCsv(daemon.metrics()));
  }
  for (size_t i = 0; i < config.apps.size(); i++) {
    const ManagedApp& app = managed[i];
    AppResult r;
    r.name = app.name;
    r.cpu = app.cpu;
    r.high_priority = app.high_priority;
    r.shares = app.shares;
    r.avg_ips = (end.instructions[i] - start.instructions[i]) / dt;
    r.norm_perf = app.baseline_ips > Ips{0.0} ? r.avg_ips / app.baseline_ips : 0.0;
    const double dm = end.mperf[i] - start.mperf[i];
    r.avg_active_mhz =
        dm > 0.0 ? (end.aperf[i] - start.aperf[i]) / dm * config.platform.tsc_mhz : Mhz{0.0};
    r.avg_busy = dm / (config.platform.tsc_mhz * kHzPerMhz * dt);
    r.avg_core_w = (end.core_energy[i] - start.core_energy[i]) / dt;
    r.starved = r.avg_busy < 0.01;
    result.apps.push_back(r);
  }
  return result;
}

void AddResourceShares(ScenarioResult* result) {
  Mhz total_freq{0.0};
  double total_perf = 0.0;
  Watts total_power{0.0};
  for (const AppResult& app : result->apps) {
    total_freq += app.avg_active_mhz;
    total_perf += app.norm_perf;
    total_power += app.avg_core_w;
  }
  for (AppResult& app : result->apps) {
    app.share_of_freq = total_freq > Mhz{0.0} ? app.avg_active_mhz / total_freq : 0.0;
    app.share_of_perf = total_perf > 0.0 ? app.norm_perf / total_perf : 0.0;
    app.share_of_power = total_power > Watts{0.0} ? app.avg_core_w / total_power : 0.0;
  }
}

WebsearchResult RunWebsearch(const WebsearchConfig& config) {
  Package pkg(config.platform);
  pkg.SetTickPolicy(config.run.tick.policy, config.run.tick.max_hold_ticks);
  MsrFile msr(&pkg);

  const int n = config.platform.num_cores;
  const int burn_cpu = n - 1;
  std::vector<int> ws_cores;
  for (int c = 0; c < burn_cpu; c++) {
    ws_cores.push_back(c);
  }

  WebSearch::Params params;
  params.users = config.users;
  params.open_loop = config.open_loop;
  WebSearch websearch(ws_cores, params, config.seed);
  pkg.AttachMultiWork(&websearch);

  std::unique_ptr<Process> burn;
  if (config.with_cpuburn) {
    burn = std::make_unique<Process>(GetProfile("cpuburn"), config.seed + 7);
    pkg.AttachWork(burn_cpu, burn.get());
  } else {
    pkg.SetRequestedMhz(burn_cpu, config.platform.min_mhz);
  }

  // Managed-app list: one entry per websearch worker core (high shares,
  // high priority) and one for the power virus.
  std::vector<ManagedApp> managed;
  // Baseline per-core IPS: websearch is open-ended, so use the per-core
  // service capacity at max frequency as the normalization (only the
  // performance-share policy consumes this).
  const Ips ws_baseline = IpsAtMhz(config.platform.turbo_max_mhz, params.ipc);
  for (int c : ws_cores) {
    managed.push_back(ManagedApp{.name = "websearch",
                                 .cpu = c,
                                 .shares = config.websearch_shares,
                                 .high_priority = true,
                                 .baseline_ips = ws_baseline});
  }
  if (config.with_cpuburn) {
    managed.push_back(ManagedApp{.name = "cpuburn",
                                 .cpu = burn_cpu,
                                 .shares = config.cpuburn_shares,
                                 .high_priority = false,
                                 .baseline_ips = Standalone(config.platform, "cpuburn").ips});
  }

  const RunOptions& run = config.run;
  std::unique_ptr<obs::TraceRecorder> recorder;
  ObsSink* sink = run.obs.sink;
  if (run.obs.trace && sink == nullptr) {
    recorder = std::make_unique<obs::TraceRecorder>(run.obs.ring_capacity);
    sink = recorder.get();
  }

  DaemonConfig dcfg;
  dcfg.kind = config.policy;
  dcfg.power_limit_w = config.limit_w;
  dcfg.audit = run.daemon.audit;
  dcfg.use_hwp_hints = run.daemon.hwp_hints;
  dcfg.obs.sink = sink;
  PowerDaemon daemon(&msr, managed, dcfg);
  daemon.Start();

  Simulator sim(&pkg);
  if (config.policy != PolicyKind::kStatic) {
    sim.AddPeriodic(dcfg.period_s, [&daemon](Seconds) { daemon.Step(); });
  }

  sim.Run(config.warmup_s);
  websearch.ResetStats();
  const CounterWindow start = CounterWindow::Take(pkg);
  if (config.target_requests > 0) {
    // Early exit once enough transactions completed; the predicate is
    // evaluated coarsely so it stays off the per-tick fast path.
    sim.RunUntil(
        [&websearch, &config] { return websearch.completed_requests() >= config.target_requests; },
        config.measure_s, /*check_period_s=*/Seconds{0.25});
  } else {
    sim.Run(config.measure_s);
  }
  pkg.FlushSteadyWork();
  const CounterWindow end = CounterWindow::Take(pkg);
  const Seconds dt{end.t - start.t};

  WebsearchResult result;
  result.p50_latency = websearch.LatencyPercentile(50.0);
  result.p90_latency = websearch.LatencyPercentile(90.0);
  result.p99_latency = websearch.LatencyPercentile(99.0);
  result.completed_requests = websearch.completed_requests();
  result.measured_s = dt;
  result.energy_j = end.pkg_energy - start.pkg_energy;
  result.avg_pkg_w = result.energy_j / dt;
  result.fault_stats = daemon.fault_stats();
  result.metrics = daemon.metrics().Export();

  Mhz ws_mhz{0.0};
  for (int c : ws_cores) {
    const auto i = static_cast<size_t>(c);
    const double dm = end.mperf[i] - start.mperf[i];
    ws_mhz += dm > 0.0 ? (end.aperf[i] - start.aperf[i]) / dm * config.platform.tsc_mhz
                       : Mhz{0.0};
  }
  result.websearch_avg_mhz = ws_mhz / static_cast<double>(ws_cores.size());
  {
    const auto i = static_cast<size_t>(burn_cpu);
    const double dm = end.mperf[i] - start.mperf[i];
    result.cpuburn_avg_mhz =
        dm > 0.0 ? (end.aperf[i] - start.aperf[i]) / dm * config.platform.tsc_mhz : Mhz{0.0};
  }
  if (recorder != nullptr) {
    result.trace_events = recorder->Drain();
  }
  if (!run.obs.chrome_trace_path.empty() && recorder != nullptr) {
    obs::WriteFile(run.obs.chrome_trace_path, obs::ChromeTraceJson(result.trace_events));
  }
  if (!run.obs.metrics_csv_path.empty()) {
    obs::WriteFile(run.obs.metrics_csv_path, obs::MetricsCsv(daemon.metrics()));
  }
  return result;
}

}  // namespace papd
