// Experiment harness: builds a platform, pins workloads, runs a policy (or
// bare RAPL), and reduces the run to the statistics the paper reports.
//
// Every bench binary is a thin driver over RunScenario / RunWebsearch plus
// table formatting; keeping the execution logic here guarantees all
// experiments measure the same way (identical warmup handling, counter
// windows, and normalization baselines).

#ifndef SRC_EXPERIMENTS_HARNESS_H_
#define SRC_EXPERIMENTS_HARNESS_H_

#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/cpusim/package.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/platform/platform_spec.h"
#include "src/policy/daemon.h"
#include "src/specsim/websearch.h"

namespace papd {

// One application slot in a scenario; pinned to cores 0..n-1 in order.
struct AppSetup {
  std::string profile;
  double shares = 1.0;
  bool high_priority = false;
};

// Daemon-facing behavior knobs, grouped (these used to be loose flags
// scattered across ScenarioConfig).
struct DaemonOptions {
  // Run the daemon's invariant auditor (DaemonConfig::audit).
  bool audit = true;
  // HWP-style highest-useful-frequency hints (DaemonConfig::use_hwp_hints).
  bool hwp_hints = false;
  // Daemon degradation ladder.  false = the naive pre-hardening daemon (raw
  // telemetry, unconditional rewrites) — the fault ablation's baseline.
  bool degrade = true;
  // Telemetry/write fault schedule (MsrFile::EnableFaults); inactive when
  // no probability is set.
  FaultPlan faults;
};

// Observability for one run (src/obs).
struct ObsOptions {
  // Record trace events.  With no external `sink` the run creates its own
  // TraceRecorder and returns the events in ScenarioResult::trace_events.
  bool trace = false;
  // Per-thread ring capacity of the internal recorder.
  size_t ring_capacity = obs::kDefaultRingCapacity;
  // External sink; when set, events go here instead of the internal
  // recorder (tests assert on emitted events through this).
  ObsSink* sink = nullptr;
  // When non-empty, the run writes a Chrome trace_event JSON (internal
  // recorder only) / metrics CSV to this path before returning.
  std::string chrome_trace_path;
  std::string metrics_csv_path;
};

// The grouped per-run options every experiment entry point takes.
struct RunOptions {
  DaemonOptions daemon;
  ObsOptions obs;
  // Tick-engine policy (Package::SetTickPolicy).  kMultiRate trades bitwise
  // reproducibility for speed on steady fleets; results stay within the
  // statistical tolerance pinned by tests/multirate_test.cc.
  TickOptions tick;
};

struct ScenarioConfig {
  PlatformSpec platform;
  std::vector<AppSetup> apps;
  PolicyKind policy = PolicyKind::kRaplOnly;
  Watts limit_w{85.0};
  // Statistics are collected over [warmup_s, warmup_s + measure_s].
  Seconds warmup_s{20.0};
  Seconds measure_s{120.0};
  Seconds daemon_period_s{1.0};
  Mhz static_mhz{0.0};  // PolicyKind::kStatic.
  PriorityPolicy::Options priority;
  uint64_t seed = 42;
  // Grouped daemon + observability options.  (The flat hwp_hints / audit /
  // faults / degrade fields and their EffectiveRun() shim are gone; set
  // run.daemon.* directly.)
  RunOptions run;
};

// The one place ScenarioConfig maps onto the daemon's configuration
// (callers that build their own PowerDaemon use this instead of copying
// fields by hand).  The trace sink is left unset; RunScenario wires it.
DaemonConfig ToDaemonConfig(const ScenarioConfig& config);

struct AppResult {
  std::string name;
  int cpu = 0;
  bool high_priority = false;
  double shares = 1.0;
  Ips avg_ips{0.0};
  // Performance normalized to the app running alone, unconstrained, at the
  // maximum P-state (the paper's "standalone at 85 W" baseline).
  double norm_perf = 0.0;
  Mhz avg_active_mhz{0.0};
  double avg_busy = 0.0;
  Watts avg_core_w{0.0};
  bool starved = false;
  // Fraction of the scenario total each app used; see AddResourceShares.
  double share_of_freq = 0.0;
  double share_of_perf = 0.0;
  double share_of_power = 0.0;
};

// The reporting surface every experiment kind shares: scenario runs,
// websearch runs, and fleet runs all reduce to one RunSummary, so sweep
// serialization (sweep.cc) is written once.  Concrete result types derive
// from this and add only their kind-specific fields.
struct RunSummary {
  Watts avg_pkg_w{0.0};
  // Worst 1-second average package power inside the measurement window,
  // computed from ground-truth energy counters (not daemon telemetry) so
  // fault runs report the real overshoot even when samples are corrupted.
  Watts max_pkg_w{0.0};
  Seconds measured_s{0.0};
  // Package energy over the measurement window (avg_pkg_w * measured_s).
  Joules energy_j{0.0};
  // Per-app performance breakdown; empty for runs without per-app counters.
  std::vector<AppResult> apps;
  // Response-latency percentiles; zero for runs with no latency-sensitive
  // work.
  Seconds p50_latency{0.0};
  Seconds p90_latency{0.0};
  Seconds p99_latency{0.0};
  size_t completed_requests = 0;
  // Degradation bookkeeping from the daemon and injection counts from the
  // fault plan (all zero for clean runs).
  DaemonFaultStats fault_stats;
  FaultCounts fault_counts;
  // End-of-run snapshot of the run's metrics registry (counters, gauges,
  // histograms).
  obs::MetricsSnapshot metrics;
  // Every trace event recorded, time-sorted.  Filled only when
  // run.obs.trace is set without an external sink.
  std::vector<obs::TraceEvent> trace_events;
};

// Thin typed wrapper: everything a scenario reports is the shared summary.
struct ScenarioResult : RunSummary {};

// Runs a scenario to steady state and reports per-app averages over the
// measurement window.
ScenarioResult RunScenario(const ScenarioConfig& config);

// Fills share_of_* from the scenario totals (the paper's "percent of total
// resource used" visualization, Figures 10-11).
void AddResourceShares(ScenarioResult* result);

// Standalone baseline: the app alone on core 0 of the platform,
// unconstrained, requesting the maximum P-state.  Cached per
// (platform, profile); returned by value so the cache's lock discipline
// stays internal.
struct StandaloneBaseline {
  Ips ips;
  Mhz active_mhz;
  Watts pkg_w;
  Watts core_w;
};
StandaloneBaseline Standalone(const PlatformSpec& platform, const std::string& profile);

// --- Latency-sensitive experiments (Figures 5, 12, 13) ----------------------

struct WebsearchConfig {
  PlatformSpec platform;
  PolicyKind policy = PolicyKind::kRaplOnly;
  Watts limit_w{85.0};
  bool with_cpuburn = true;
  double websearch_shares = 90.0;
  double cpuburn_shares = 10.0;
  int users = 300;
  Seconds warmup_s{30.0};
  Seconds measure_s{600.0};  // The paper's 600 s transaction window.
  // When > 0 the measurement window ends as soon as this many requests have
  // completed (checked at a coarse period), with measure_s as the deadline.
  // Lets quick runs stop early without changing per-tick results.
  size_t target_requests = 0;
  uint64_t seed = 42;
  // Open-loop arrival process forwarded to WebSearch::Params; the default
  // (disabled) keeps the paper's closed-loop 300-user client population.
  WebSearch::OpenLoop open_loop;
  // Grouped daemon + observability options.
  RunOptions run;
};

// Thin typed wrapper over the shared summary (latency percentiles and
// completed_requests live in RunSummary).
struct WebsearchResult : RunSummary {
  Mhz websearch_avg_mhz{0.0};
  Mhz cpuburn_avg_mhz{0.0};
};

// Websearch on all-but-one core (high priority / high shares), optionally a
// cpuburn power virus on the last core, under the given policy and limit.
WebsearchResult RunWebsearch(const WebsearchConfig& config);

}  // namespace papd

#endif  // SRC_EXPERIMENTS_HARNESS_H_
