#include "src/experiments/scenarios.h"

namespace papd {
namespace {

AppSetup Hp(const std::string& profile) {
  return AppSetup{.profile = profile, .shares = 1.0, .high_priority = true};
}

AppSetup Lp(const std::string& profile) {
  return AppSetup{.profile = profile, .shares = 1.0, .high_priority = false};
}

void Repeat(std::vector<AppSetup>* out, const AppSetup& app, int count) {
  for (int i = 0; i < count; i++) {
    out->push_back(app);
  }
}

}  // namespace

std::vector<WorkloadMix> SkylakePriorityMixes() {
  // Table 2 exactly: columns are cactusBSSN-HP, leela-HP, cactusBSSN-LP,
  // leela-LP.
  std::vector<WorkloadMix> mixes;
  auto make = [](const std::string& label, int chp, int lhp, int clp, int llp) {
    WorkloadMix mix;
    mix.label = label;
    Repeat(&mix.apps, Hp("cactusBSSN"), chp);
    Repeat(&mix.apps, Hp("leela"), lhp);
    Repeat(&mix.apps, Lp("cactusBSSN"), clp);
    Repeat(&mix.apps, Lp("leela"), llp);
    return mix;
  };
  mixes.push_back(make("10H0L", 5, 5, 0, 0));
  mixes.push_back(make("7H3L", 4, 3, 1, 2));
  mixes.push_back(make("5H5L", 5, 0, 0, 5));
  mixes.push_back(make("3H7L", 2, 1, 3, 4));
  mixes.push_back(make("1H9L", 1, 0, 4, 5));
  return mixes;
}

std::vector<WorkloadMix> RyzenPriorityMixes() {
  std::vector<WorkloadMix> mixes;
  auto make = [](const std::string& label, int chp, int lhp, int clp, int llp) {
    WorkloadMix mix;
    mix.label = label;
    Repeat(&mix.apps, Hp("cactusBSSN"), chp);
    Repeat(&mix.apps, Hp("leela"), lhp);
    Repeat(&mix.apps, Lp("cactusBSSN"), clp);
    Repeat(&mix.apps, Lp("leela"), llp);
    return mix;
  };
  // Figure 8: similar-demand HP (8H, 4H4L with all-HD HP) and mixed-demand
  // HP (6H2L, 2H6L) variations; HD/LD counts stay balanced overall.
  mixes.push_back(make("8H0L", 4, 4, 0, 0));
  mixes.push_back(make("6H2L", 3, 3, 1, 1));
  mixes.push_back(make("4H4L", 4, 0, 0, 4));
  mixes.push_back(make("2H6L", 1, 1, 3, 3));
  return mixes;
}

WorkloadMix ShareSplitMix(int num_cores, double ld_shares, double hd_shares) {
  WorkloadMix mix;
  mix.label = std::to_string(static_cast<int>(ld_shares)) + "/" +
              std::to_string(static_cast<int>(hd_shares));
  const int half = num_cores / 2;
  Repeat(&mix.apps, AppSetup{.profile = "leela", .shares = ld_shares}, half);
  Repeat(&mix.apps, AppSetup{.profile = "cactusBSSN", .shares = hd_shares}, half);
  return mix;
}

std::vector<RandomSet> RandomSets() {
  return {
      RandomSet{.label = "A",
                .apps = {"deepsjeng", "perlbench", "cactusBSSN", "exchange2", "gcc"}},
      RandomSet{.label = "B", .apps = {"deepsjeng", "omnetpp", "perlbench", "cam4", "lbm"}},
  };
}

std::vector<AppSetup> RandomSetApps(const RandomSet& set) {
  // Share levels {20, 40, 60, 80, 100} by application index, two copies of
  // each application, both copies at the same level.
  std::vector<AppSetup> apps;
  for (size_t i = 0; i < set.apps.size(); i++) {
    const double shares = 20.0 * static_cast<double>(i + 1);
    for (int copy = 0; copy < 2; copy++) {
      apps.push_back(AppSetup{.profile = set.apps[i], .shares = shares});
    }
  }
  return apps;
}

std::vector<WorkloadMix> ManyCorePriorityMixes(int num_cores) {
  // The paper's Table 2 shapes at 10 cores, generalized: each mix places
  // `hp` high-priority apps (half cactusBSSN/half leela, HD/LD balanced)
  // and fills the rest with low-priority apps of the same balance.
  std::vector<WorkloadMix> mixes;
  auto make = [num_cores](const std::string& label, int hp) {
    WorkloadMix mix;
    mix.label = label;
    const int lp = num_cores - hp;
    Repeat(&mix.apps, Hp("cactusBSSN"), hp - hp / 2);
    Repeat(&mix.apps, Hp("leela"), hp / 2);
    Repeat(&mix.apps, Lp("cactusBSSN"), lp - lp / 2);
    Repeat(&mix.apps, Lp("leela"), lp / 2);
    return mix;
  };
  const int n = num_cores;
  mixes.push_back(make("allH", n));
  mixes.push_back(make("3of4H", 3 * n / 4));
  mixes.push_back(make("halfH", n / 2));
  mixes.push_back(make("1of4H", n / 4));
  return mixes;
}

WorkloadMix ManyCoreSpreadMix(int num_cores, int rotate) {
  // The Table 3 pool (sets A and B merged, duplicates removed), cycled
  // across the cores with the standard share ladder.
  static const char* kPool[] = {"deepsjeng", "perlbench", "cactusBSSN", "exchange2",
                                "gcc",       "omnetpp",   "cam4",       "lbm"};
  constexpr int kPoolSize = static_cast<int>(sizeof(kPool) / sizeof(kPool[0]));
  WorkloadMix mix;
  mix.label = "spread-r" + std::to_string(rotate);
  for (int i = 0; i < num_cores; i++) {
    const int app = (i + rotate) % kPoolSize;
    const double shares = 20.0 * static_cast<double>(app % 5 + 1);
    mix.apps.push_back(AppSetup{.profile = kPool[app], .shares = shares});
  }
  return mix;
}

std::vector<FaultScenario> FaultSchedules(Seconds start_s, Seconds end_s, uint64_t seed) {
  auto plan = [&](uint64_t salt) {
    FaultPlan p;
    p.seed = seed + salt;
    p.start_s = start_s;
    p.end_s = end_s;
    return p;
  };
  std::vector<FaultScenario> schedules;
  {
    // Telemetry mostly dark: the daemon must hold, then fall back.
    FaultPlan p = plan(1);
    p.stale_sample_p = 0.7;
    schedules.push_back(FaultScenario{.label = "stale-burst", .plan = p});
  }
  {
    FaultPlan p = plan(2);
    p.counter_reset_p = 0.25;
    schedules.push_back(FaultScenario{.label = "counter-reset", .plan = p});
  }
  {
    FaultPlan p = plan(3);
    p.energy_wrap_p = 0.5;
    schedules.push_back(FaultScenario{.label = "wrap-storm", .plan = p});
  }
  {
    FaultPlan p = plan(4);
    p.read_spike_p = 0.2;
    schedules.push_back(FaultScenario{.label = "read-spikes", .plan = p});
  }
  {
    FaultPlan p = plan(5);
    p.write_fail_p = 0.6;
    schedules.push_back(FaultScenario{.label = "write-fail", .plan = p});
  }
  {
    FaultPlan p = plan(6);
    p.stale_sample_p = 0.3;
    p.counter_reset_p = 0.1;
    p.energy_wrap_p = 0.2;
    p.read_spike_p = 0.1;
    p.write_fail_p = 0.3;
    schedules.push_back(FaultScenario{.label = "mixed-storm", .plan = p});
  }
  return schedules;
}

}  // namespace papd
