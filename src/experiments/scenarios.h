// Standard workload mixes from the paper's evaluation.
//
// Table 2 (Skylake priority mixes), the Ryzen priority mixes of Figure 8,
// the leela/cactusBSSN share splits of Figures 9-10, and the random
// application sets of Table 3 / Figure 11.

#ifndef SRC_EXPERIMENTS_SCENARIOS_H_
#define SRC_EXPERIMENTS_SCENARIOS_H_

#include <string>
#include <vector>

#include "src/experiments/harness.h"

namespace papd {

struct WorkloadMix {
  std::string label;
  std::vector<AppSetup> apps;
};

// Table 2: the five Skylake priority mixes (10H0L ... 1H9L) built from
// cactusBSSN (HD) and leela (LD).
std::vector<WorkloadMix> SkylakePriorityMixes();

// Figure 8: the four Ryzen priority mixes (8H0L, 6H2L, 4H4L, 2H6L).
std::vector<WorkloadMix> RyzenPriorityMixes();

// Figures 9-10: half the cores run leela (LD) at `ld_shares`, half run
// cactusBSSN (HD) at `hd_shares`.
WorkloadMix ShareSplitMix(int num_cores, double ld_shares, double hd_shares);

// Table 3: the random application sets A and B (five apps each; the
// scenario runs two copies of each app on the ten Skylake cores).  Share
// levels are per the paper: {20, 40, 60, 80, 100} by app index.
struct RandomSet {
  std::string label;
  std::vector<std::string> apps;  // apps[i] is application #i.
};
std::vector<RandomSet> RandomSets();

// Builds the ten-app scenario for a random set: two copies of each app,
// both copies at the same share level.
std::vector<AppSetup> RandomSetApps(const RandomSet& set);

// --- Many-core scenarios (EXPERIMENTS.md A10) --------------------------------
// Table-2-style priority mixes scaled to an arbitrary core count (for the
// 64/128-core presets): all-HP, 3/4-HP, half-HP, and 1/4-HP splits with the
// HD/LD (cactusBSSN/leela) balance of the paper's mixes.
std::vector<WorkloadMix> ManyCorePriorityMixes(int num_cores);

// A heterogeneous rack-socket mix: cycles the Table 3 application pool
// across `num_cores` cores with share levels {20, 40, 60, 80, 100} by app
// index; `rotate` offsets the pool so different sockets get different mixes.
WorkloadMix ManyCoreSpreadMix(int num_cores, int rotate);

// --- Fault schedules ---------------------------------------------------------
// Standard telemetry/write fault schedules for the fault-tolerance ablation
// and its regression tests.  Each schedule exercises one fault class hard
// (plus one mixed storm) inside [start_s, end_s); `seed` keeps the injected
// sequence reproducible per scenario.
struct FaultScenario {
  std::string label;
  FaultPlan plan;
};
std::vector<FaultScenario> FaultSchedules(Seconds start_s, Seconds end_s, uint64_t seed);

}  // namespace papd

#endif  // SRC_EXPERIMENTS_SCENARIOS_H_
