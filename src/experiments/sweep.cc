#include "src/experiments/sweep.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <utility>

#include "src/common/check.h"
#include "src/experiments/batch.h"
#include "src/policy/policy_registry.h"

namespace papd {

namespace {

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf, static_cast<size_t>(n) < sizeof(buf) ? static_cast<size_t>(n)
                                                        : sizeof(buf) - 1);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Compact axis-value formatting: "2e+08" style for populations, plain for
// watts; shared by names and plotgroups so the two always agree.
std::string FormatDouble(double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

struct AxisValues {
  double users = 0.0;
  bool has_users = false;
  Watts cap_w{0.0};
  bool has_cap = false;
  ArrivalShape shape = ArrivalShape::kConstant;
  bool has_shape = false;
  std::string policy;
};

std::string PointName(const SweepSpec& spec, const AxisValues& v) {
  std::string name = spec.name;
  if (v.has_users) {
    name += "/users=" + FormatDouble(v.users);
  }
  if (v.has_cap) {
    name += "/cap=" + FormatDouble(v.cap_w.value()) + "w";
  }
  if (v.has_shape) {
    name += std::string("/shape=") + ArrivalShapeName(v.shape);
  }
  name += "/policy=" + v.policy;
  return name;
}

std::string PlotGroup(const AxisValues& v) {
  std::string group;
  auto add = [&group](const std::string& kv) {
    if (!group.empty()) {
      group += ",";
    }
    group += kv;
  };
  if (v.has_users) {
    add("users=" + FormatDouble(v.users));
  }
  if (v.has_cap) {
    add("cap=" + FormatDouble(v.cap_w.value()) + "w");
  }
  if (v.has_shape) {
    add(std::string("shape=") + ArrivalShapeName(v.shape));
  }
  return group;
}

void AppendSummaryJson(const RunSummary& s, std::string* out) {
  Appendf(out,
          "{\"avg_pkg_w\":%.4f,\"max_pkg_w\":%.4f,\"measured_s\":%.3f,"
          "\"energy_j\":%.2f,\"p50_latency_s\":%.6f,\"p90_latency_s\":%.6f,"
          "\"p99_latency_s\":%.6f,\"completed_requests\":%zu",
          s.avg_pkg_w.value(), s.max_pkg_w.value(), s.measured_s.value(),
          s.energy_j.value(), s.p50_latency.value(), s.p90_latency.value(),
          s.p99_latency.value(), s.completed_requests);
  if (!s.apps.empty()) {
    out->append(",\"apps\":[");
    for (size_t i = 0; i < s.apps.size(); ++i) {
      const AppResult& a = s.apps[i];
      Appendf(out,
              "%s{\"name\":\"%s\",\"cpu\":%d,\"norm_perf\":%.4f,"
              "\"avg_active_mhz\":%.1f}",
              i == 0 ? "" : ",", JsonEscape(a.name).c_str(), a.cpu, a.norm_perf,
              a.avg_active_mhz.value());
    }
    out->append("]");
  }
  out->append("}");
}

}  // namespace

const char* SweepTargetName(SweepTarget target) {
  switch (target) {
    case SweepTarget::kScenario:
      return "scenario";
    case SweepTarget::kFleet:
      return "fleet";
  }
  return "unknown";
}

FleetPolicy FleetPolicyStatic() {
  return FleetPolicy{"static", RackArbiterKind::kShares, false};
}

FleetPolicy FleetPolicyPriority() {
  return FleetPolicy{"priority", RackArbiterKind::kShares, true};
}

FleetPolicy FleetPolicySloFeedback() {
  return FleetPolicy{"slo-feedback", RackArbiterKind::kSloFeedback, false};
}

std::vector<SweepPoint> ExpandSweep(const SweepSpec& spec) {
  PAPD_CHECK(!spec.name.empty()) << " sweeps must be named (plot labels)";
  std::vector<SweepPoint> points;

  // Empty axes contribute exactly the base config's value; sentinel lists
  // keep the loop structure uniform.
  const bool has_users = !spec.axes.users.empty();
  const std::vector<double> users =
      has_users ? spec.axes.users : std::vector<double>{0.0};
  const bool has_cap = !spec.axes.caps_w.empty();
  const std::vector<Watts> caps =
      has_cap ? spec.axes.caps_w : std::vector<Watts>{Watts{0.0}};
  const bool has_shape = !spec.axes.shapes.empty();
  const std::vector<ArrivalShape> shapes =
      has_shape ? spec.axes.shapes : std::vector<ArrivalShape>{ArrivalShape::kConstant};

  for (double u : users) {
    for (Watts cap : caps) {
      for (ArrivalShape shape : shapes) {
        AxisValues v;
        v.has_users = has_users;
        v.has_cap = has_cap;
        v.has_shape = has_shape;
        v.cap_w = cap;
        v.shape = shape;

        if (spec.target == SweepTarget::kScenario) {
          const std::vector<PolicyKind> policies =
              spec.axes.policies.empty()
                  ? std::vector<PolicyKind>{spec.scenario_base.policy}
                  : spec.axes.policies;
          for (PolicyKind policy : policies) {
            SweepPoint p;
            p.scenario = spec.scenario_base;
            p.scenario.policy = policy;
            if (has_cap) {
              p.scenario.limit_w = cap;
            }
            v.users = 0.0;
            v.policy = PolicyKindName(policy);
            p.users = 0.0;
            p.cap_w = has_cap ? cap : p.scenario.limit_w;
            p.shape = shape;
            p.policy = v.policy;
            p.name = PointName(spec, v);
            p.plotgroup = PlotGroup(v);
            p.plotkey = v.policy;
            points.push_back(std::move(p));
          }
        } else {
          const std::vector<FleetPolicy> policies =
              spec.axes.fleet_policies.empty()
                  ? std::vector<FleetPolicy>{FleetPolicyStatic()}
                  : spec.axes.fleet_policies;
          for (const FleetPolicy& policy : policies) {
            SweepPoint p;
            p.fleet = spec.fleet_base;
            p.fleet.arbiter = policy.arbiter;
            p.fleet.priority_hot = policy.priority_hot;
            if (has_users) {
              p.fleet.users = u;
            }
            if (has_cap) {
              p.fleet.budget_w = cap;
            }
            if (has_shape) {
              p.fleet.shape = shape;
            }
            v.users = p.fleet.users;
            v.policy = policy.name;
            p.users = p.fleet.users;
            p.cap_w = has_cap ? cap : p.fleet.budget_w;
            p.shape = p.fleet.shape;
            p.policy = policy.name;
            p.name = PointName(spec, v);
            p.plotgroup = PlotGroup(v);
            p.plotkey = policy.name;
            points.push_back(std::move(p));
          }
        }
      }
    }
  }
  return points;
}

SweepResult RunSweep(const SweepSpec& spec, ThreadPool* pool) {
  SweepResult result;
  result.name = spec.name;
  result.target = spec.target;
  std::vector<SweepPoint> points = ExpandSweep(spec);
  result.points.reserve(points.size());

  if (spec.target == SweepTarget::kScenario) {
    // Scenario points are independent single-socket runs; the batch engine
    // fans the whole cross-product out at once.
    std::vector<ScenarioConfig> configs;
    configs.reserve(points.size());
    for (const SweepPoint& p : points) {
      configs.push_back(p.scenario);
    }
    std::vector<ScenarioResult> runs = RunScenarios(configs, pool);
    for (size_t i = 0; i < points.size(); ++i) {
      SweepPointResult pr;
      pr.point = std::move(points[i]);
      pr.summary = std::move(runs[i]);
      result.points.push_back(std::move(pr));
    }
    return result;
  }

  // Fleet points each saturate the pool internally (hundreds of leaves), so
  // they run one after another.
  for (SweepPoint& p : points) {
    FleetResult run = RunFleet(p.fleet, spec.fleet_warmup_s, spec.fleet_measure_s, pool);
    SweepPointResult pr;
    pr.point = std::move(p);
    pr.summary = std::move(run.summary);
    pr.sockets = std::move(run.sockets);
    pr.total_slo_violations = run.total_slo_violations;
    pr.total_measured_periods = run.total_measured_periods;
    pr.max_grant_overrun_w = run.max_grant_overrun_w;
    result.points.push_back(std::move(pr));
  }
  return result;
}

std::string SweepResultToJson(const SweepResult& result) {
  std::string out;
  Appendf(&out, "{\n\"sweep\": \"%s\",\n\"target\": \"%s\",\n\"points\": [\n",
          JsonEscape(result.name).c_str(), SweepTargetName(result.target));
  for (size_t i = 0; i < result.points.size(); ++i) {
    const SweepPointResult& pr = result.points[i];
    Appendf(&out,
            "{\"name\":\"%s\",\"plotgroup\":\"%s\",\"plotkey\":\"%s\","
            "\"users\":%g,\"cap_w\":%.4f,\"shape\":\"%s\",\"policy\":\"%s\","
            "\"summary\":",
            JsonEscape(pr.point.name).c_str(), JsonEscape(pr.point.plotgroup).c_str(),
            JsonEscape(pr.point.plotkey).c_str(), pr.point.users,
            pr.point.cap_w.value(), ArrivalShapeName(pr.point.shape),
            JsonEscape(pr.point.policy).c_str());
    AppendSummaryJson(pr.summary, &out);
    if (result.target == SweepTarget::kFleet) {
      Appendf(&out,
              ",\"total_slo_violations\":%zu,\"total_measured_periods\":%zu,"
              "\"max_grant_overrun_w\":%.9f,\"sockets\":[",
              pr.total_slo_violations, pr.total_measured_periods,
              pr.max_grant_overrun_w.value());
      for (size_t s = 0; s < pr.sockets.size(); ++s) {
        const FleetSocketResult& sr = pr.sockets[s];
        Appendf(&out,
                "%s{\"path\":\"%s\",\"hot\":%s,\"grant_w\":%.3f,"
                "\"p50_s\":%.6f,\"p90_s\":%.6f,\"p99_s\":%.6f,"
                "\"completed\":%zu,\"arrivals\":%" PRIu64
                ",\"slo_violation_periods\":%zu,\"measured_periods\":%zu,"
                "\"mean_queue_depth\":%.3f,\"peak_queue_depth\":%zu}",
                s == 0 ? "" : ",\n", JsonEscape(sr.path).c_str(),
                sr.hot ? "true" : "false", sr.grant_w.value(), sr.p50.value(),
                sr.p90.value(), sr.p99.value(), sr.completed, sr.arrivals,
                sr.slo_violation_periods, sr.measured_periods,
                sr.mean_queue_depth, sr.peak_queue_depth);
      }
      out += "]";
    }
    out += i + 1 < result.points.size() ? "},\n" : "}\n";
  }
  out += "]\n}\n";
  return out;
}

void WriteSweepJson(const SweepResult& result, const std::string& path) {
  FILE* f = fopen(path.c_str(), "w");
  PAPD_CHECK(f != nullptr) << " cannot open " << path;
  const std::string json = SweepResultToJson(result);
  fwrite(json.data(), 1, json.size(), f);
  fclose(f);
}

}  // namespace papd
