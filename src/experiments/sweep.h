// Declarative experiment sweeps: axes in, config cross-products out.
//
// Every figure in the paper is a sweep — a base configuration crossed with
// one or two axes (cap watts, policy, user population, arrival shape) —
// and before this API every bench binary re-wrote the same nested loops
// with its own ad-hoc labels.  SweepSpec is the declarative replacement,
// modeled on pequod's experiments.py definitions: a spec names its axes
// once, ExpandSweep() produces the exact cross-product as a golden-testable
// list of SweepPoints, and each point carries
//
//   - plotgroup: the axis values that select which plot the point lands on
//     (everything except the policy axis), and
//   - plotkey:   the curve within that plot (the policy axis),
//
// so downstream plotting never re-derives grouping from config diffs.
// RunSweep() executes scenario points through the existing RunScenarios
// batch engine and fleet points through RunFleet, and serializes every
// result through the one shared RunSummary surface (WriteSweepJson).

#ifndef SRC_EXPERIMENTS_SWEEP_H_
#define SRC_EXPERIMENTS_SWEEP_H_

#include <string>
#include <vector>

#include "src/cluster/fleet.h"
#include "src/common/thread_pool.h"
#include "src/experiments/harness.h"

namespace papd {

// What kind of run each expanded point performs.
enum class SweepTarget : uint8_t {
  kScenario = 0,  // RunScenario over ScenarioConfig (throughput mixes).
  kFleet,         // RunFleet over FleetConfig (serving fleet).
};

const char* SweepTargetName(SweepTarget target);

// One named fleet-level policy variant (the policy axis for kFleet).
struct FleetPolicy {
  std::string name;  // Plot key: "static", "priority", "slo-feedback".
  RackArbiterKind arbiter = RackArbiterKind::kShares;
  bool priority_hot = false;
};

FleetPolicy FleetPolicyStatic();
FleetPolicy FleetPolicyPriority();
FleetPolicy FleetPolicySloFeedback();

// The axes of the cross-product.  An empty axis contributes the base
// config's value (one implicit point on that axis).
struct SweepAxes {
  // Simulated user population (fleet) / closed-loop user count rounded to
  // int (scenario-target websearch is not swept here; fleets own users).
  std::vector<double> users;
  // Power cap: ScenarioConfig::limit_w or FleetConfig::budget_w.
  std::vector<Watts> caps_w;
  // Scenario policy axis (SweepTarget::kScenario).
  std::vector<PolicyKind> policies;
  // Fleet policy axis (SweepTarget::kFleet).
  std::vector<FleetPolicy> fleet_policies;
  // Open-loop arrival shape (fleet only).
  std::vector<ArrivalShape> shapes;
};

struct SweepSpec {
  std::string name;
  SweepTarget target = SweepTarget::kFleet;
  SweepAxes axes;
  // Template configs; axis values overwrite the swept fields.
  ScenarioConfig scenario_base{.platform = SkylakeXeon4114()};
  FleetConfig fleet_base;
  // Fleet execution window (scenario windows live in ScenarioConfig).
  Seconds fleet_warmup_s{10.0};
  Seconds fleet_measure_s{30.0};
};

// One expanded point: the concrete config plus its labels and the axis
// values that produced it.
struct SweepPoint {
  std::string name;       // "<sweep>/<k=v>/<k=v>/..." — unique in the sweep.
  std::string plotgroup;  // Non-policy axis values, "k=v,k=v".
  std::string plotkey;    // Policy axis value.
  double users = 0.0;
  Watts cap_w{0.0};
  std::string policy;
  ArrivalShape shape = ArrivalShape::kConstant;
  // Exactly one is meaningful, per the spec's target.
  ScenarioConfig scenario{.platform = SkylakeXeon4114()};
  FleetConfig fleet;
};

// The deterministic cross-product (axes iterate in declaration order:
// users, cap, shape, policy innermost); golden-tested.
std::vector<SweepPoint> ExpandSweep(const SweepSpec& spec);

struct SweepPointResult {
  SweepPoint point;
  // Shared reporting surface — written once for every target kind.
  RunSummary summary;
  // Fleet targets only.
  std::vector<FleetSocketResult> sockets;
  size_t total_slo_violations = 0;
  size_t total_measured_periods = 0;
  Watts max_grant_overrun_w{0.0};
};

struct SweepResult {
  std::string name;
  SweepTarget target = SweepTarget::kFleet;
  std::vector<SweepPointResult> points;
};

// Expands and executes the sweep.  Scenario points fan out through
// RunScenarios; fleet points run sequentially, each fanning its leaves out
// on the pool (nullptr = GlobalThreadPool()).
SweepResult RunSweep(const SweepSpec& spec, ThreadPool* pool = nullptr);

// JSON artifact: {"sweep": name, "target": ..., "points": [{labels, axis
// values, summary, per-socket rows}]}.  This is the file `papdctl fleet`
// reads back.
std::string SweepResultToJson(const SweepResult& result);
void WriteSweepJson(const SweepResult& result, const std::string& path);

}  // namespace papd

#endif  // SRC_EXPERIMENTS_SWEEP_H_
