#include "src/governor/governor.h"

#include <algorithm>
#include <cmath>

namespace papd {
namespace {

Mhz Quantize(Mhz mhz, const GovernorLimits& limits) {
  const double steps = std::round((mhz - limits.min_mhz) / limits.step_mhz);
  return std::clamp(limits.min_mhz + steps * limits.step_mhz, limits.min_mhz, limits.max_mhz);
}

}  // namespace

Mhz PerformanceGovernor::Decide(double utilization, Mhz current_mhz) {
  (void)utilization;
  (void)current_mhz;
  return limits_.max_mhz;
}

Mhz PowersaveGovernor::Decide(double utilization, Mhz current_mhz) {
  (void)utilization;
  (void)current_mhz;
  return limits_.min_mhz;
}

Mhz UserspaceGovernor::Decide(double utilization, Mhz current_mhz) {
  (void)utilization;
  (void)current_mhz;
  return Quantize(target_mhz_, limits_);
}

OndemandGovernor::OndemandGovernor(GovernorLimits limits)
    : OndemandGovernor(limits, Params()) {}

Mhz OndemandGovernor::Decide(double utilization, Mhz current_mhz) {
  (void)current_mhz;
  if (utilization >= params_.up_threshold) {
    return limits_.max_mhz;
  }
  return Quantize(utilization * limits_.max_mhz / params_.headroom, limits_);
}

ConservativeGovernor::ConservativeGovernor(GovernorLimits limits)
    : ConservativeGovernor(limits, Params()) {}

Mhz ConservativeGovernor::Decide(double utilization, Mhz current_mhz) {
  const Mhz step =
      std::max(limits_.step_mhz, params_.freq_step * (limits_.max_mhz - limits_.min_mhz));
  if (utilization >= params_.up_threshold) {
    return Quantize(current_mhz + step, limits_);
  }
  if (utilization <= params_.down_threshold) {
    return Quantize(current_mhz - step, limits_);
  }
  return Quantize(current_mhz, limits_);
}

const char* GovernorKindName(GovernorKind kind) {
  switch (kind) {
    case GovernorKind::kPerformance:
      return "performance";
    case GovernorKind::kPowersave:
      return "powersave";
    case GovernorKind::kUserspace:
      return "userspace";
    case GovernorKind::kOndemand:
      return "ondemand";
    case GovernorKind::kConservative:
      return "conservative";
  }
  return "?";
}

std::unique_ptr<FreqGovernor> MakeGovernor(GovernorKind kind, GovernorLimits limits) {
  switch (kind) {
    case GovernorKind::kPerformance:
      return std::make_unique<PerformanceGovernor>(limits);
    case GovernorKind::kPowersave:
      return std::make_unique<PowersaveGovernor>(limits);
    case GovernorKind::kUserspace:
      return std::make_unique<UserspaceGovernor>(limits, limits.max_mhz);
    case GovernorKind::kOndemand:
      return std::make_unique<OndemandGovernor>(limits);
    case GovernorKind::kConservative:
      return std::make_unique<ConservativeGovernor>(limits);
  }
  return nullptr;
}

}  // namespace papd
