// OS frequency governors (paper Section 2.2).
//
// Before per-application power policies, the standard software consumers of
// DVFS were per-core utilization-driven governors: Linux cpufreq's
// `performance`, `powersave`, `userspace`, `ondemand` and `conservative`.
// The paper's experiments use the userspace governor so the daemon can set
// P-states directly; the others are implemented here both as substrate
// (they are the incumbent mechanism the policies replace) and as baselines
// for the governor-comparison bench: a utilization governor has no notion
// of shares or priority, so it cannot provide differential power delivery.
//
// Each governor is a pure decision function from the previous decision and
// the core's measured C0 utilization to the next frequency request.

#ifndef SRC_GOVERNOR_GOVERNOR_H_
#define SRC_GOVERNOR_GOVERNOR_H_

#include <memory>
#include <string>

#include "src/common/units.h"

namespace papd {

struct GovernorLimits {
  Mhz min_mhz{800};
  Mhz max_mhz{3000};
  Mhz step_mhz{100};
};

class FreqGovernor {
 public:
  virtual ~FreqGovernor() = default;

  virtual std::string Name() const = 0;

  // Next frequency request given the core's utilization (C0 fraction, 0..1)
  // over the last sample period and the current request.
  virtual Mhz Decide(double utilization, Mhz current_mhz) = 0;
};

// Always the maximum frequency.
class PerformanceGovernor : public FreqGovernor {
 public:
  explicit PerformanceGovernor(GovernorLimits limits) : limits_(limits) {}
  std::string Name() const override { return "performance"; }
  Mhz Decide(double utilization, Mhz current_mhz) override;

 private:
  GovernorLimits limits_;
};

// Always the minimum frequency.
class PowersaveGovernor : public FreqGovernor {
 public:
  explicit PowersaveGovernor(GovernorLimits limits) : limits_(limits) {}
  std::string Name() const override { return "powersave"; }
  Mhz Decide(double utilization, Mhz current_mhz) override;

 private:
  GovernorLimits limits_;
};

// Holds whatever frequency was programmed through set_mhz (the governor the
// paper's daemon uses on real hardware).
class UserspaceGovernor : public FreqGovernor {
 public:
  UserspaceGovernor(GovernorLimits limits, Mhz initial_mhz)
      : limits_(limits), target_mhz_(initial_mhz) {}
  std::string Name() const override { return "userspace"; }
  Mhz Decide(double utilization, Mhz current_mhz) override;
  void set_mhz(Mhz mhz) { target_mhz_ = mhz; }

 private:
  GovernorLimits limits_;
  Mhz target_mhz_;
};

// Linux ondemand: jump to max above the up-threshold, otherwise request
// proportional-to-utilization with headroom.
class OndemandGovernor : public FreqGovernor {
 public:
  struct Params {
    double up_threshold = 0.80;
    // Proportional target = util * max / this factor, i.e. keep some
    // headroom so bursts don't immediately saturate.
    double headroom = 0.80;
  };
  explicit OndemandGovernor(GovernorLimits limits);
  OndemandGovernor(GovernorLimits limits, Params params)
      : limits_(limits), params_(params) {}
  std::string Name() const override { return "ondemand"; }
  Mhz Decide(double utilization, Mhz current_mhz) override;

 private:
  GovernorLimits limits_;
  Params params_;
};

// Linux conservative: like ondemand but moves in steps instead of jumping.
class ConservativeGovernor : public FreqGovernor {
 public:
  struct Params {
    double up_threshold = 0.80;
    double down_threshold = 0.20;
    // Step per decision as a fraction of the frequency range.
    double freq_step = 0.05;
  };
  explicit ConservativeGovernor(GovernorLimits limits);
  ConservativeGovernor(GovernorLimits limits, Params params)
      : limits_(limits), params_(params) {}
  std::string Name() const override { return "conservative"; }
  Mhz Decide(double utilization, Mhz current_mhz) override;

 private:
  GovernorLimits limits_;
  Params params_;
};

enum class GovernorKind { kPerformance, kPowersave, kUserspace, kOndemand, kConservative };

const char* GovernorKindName(GovernorKind kind);

// Factory; userspace starts at max_mhz.
std::unique_ptr<FreqGovernor> MakeGovernor(GovernorKind kind, GovernorLimits limits);

}  // namespace papd

#endif  // SRC_GOVERNOR_GOVERNOR_H_
