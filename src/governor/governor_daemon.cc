#include "src/governor/governor_daemon.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/units.h"

namespace papd {

GovernorDaemon::GovernorDaemon(MsrFile* msr, GovernorKind kind, bool audit)
    : msr_(msr), turbostat_(msr), audit_(audit) {
  const PlatformSpec& spec = msr->spec();
  const GovernorLimits limits{
      .min_mhz = spec.min_mhz, .max_mhz = spec.turbo_max_mhz, .step_mhz = spec.step_mhz};
  for (int c = 0; c < msr->num_cores(); c++) {
    governors_.push_back(MakeGovernor(kind, limits));
    requests_.push_back(spec.base_max_mhz);
  }
}

void GovernorDaemon::Emit(obs::TraceEventType type, int32_t index, int32_t code, double a,
                          double b) const {
  if (obs_sink_ == nullptr) {
    return;
  }
  obs::TraceEvent event;
  event.t = last_sample_t_;
  event.type = type;
  event.shard = obs_shard_;
  event.index = index;
  event.code = code;
  event.a = a;
  event.b = b;
  obs_sink_->OnEvent(event);
}

void GovernorDaemon::Step() {
  const TelemetrySample sample = turbostat_.Sample();
  last_sample_t_ = sample.t;
  const int period = period_;
  period_++;
  // Governor ladder has two rungs: nominal (0) and fallback (2).
  const auto ladder = [this] { return in_fallback() ? 2 : 0; };
  Emit(obs::TraceEventType::kPeriodBegin, period, ladder(), sample.pkg_w, 0.0);
  if (!sample.valid || sample.dt <= Seconds{0.0}) {
    invalid_streak_++;
    if (invalid_streak_ == kFallbackAfter && msr_->spec().max_simultaneous_pstates == 0) {
      // Telemetry has been dark long enough: a utilization governor flying
      // blind must not keep cores at a possibly-stale high request.
      Emit(obs::TraceEventType::kLadderTransition, 0, 2, invalid_streak_, 0.0);
      for (int c = 0; c < msr_->num_cores(); c++) {
        const auto i = static_cast<size_t>(c);
        requests_[i] = msr_->spec().min_mhz;
        msr_->WritePerfTargetMhz(c, requests_[i]);
      }
      Emit(obs::TraceEventType::kPstateWrite, msr_->num_cores(), 1, msr_->spec().min_mhz,
           msr_->spec().min_mhz);
    }
    Emit(obs::TraceEventType::kPeriodEnd, period, ladder(), 0.0, 0.0);
    return;
  }
  if (in_fallback()) {
    Emit(obs::TraceEventType::kLadderTransition, 2, 0, invalid_streak_, 0.0);
  }
  invalid_streak_ = 0;
  for (int c = 0; c < msr_->num_cores(); c++) {
    const auto i = static_cast<size_t>(c);
    if (!sample.cores[i].online) {
      continue;
    }
    if (!sample.cores[i].plausible) {
      continue;  // Hold this core; its busy reading is last period's.
    }
    requests_[i] = governors_[i]->Decide(sample.cores[i].busy, requests_[i]);
    if (audit_) {
      const PlatformSpec& spec = msr_->spec();
      PAPD_CHECK(IsFinite(requests_[i]))
          << " governor decision for core " << c << " is non-finite";
      PAPD_CHECK_GE(requests_[i], spec.min_mhz) << " governor decision for core " << c;
      PAPD_CHECK_LE(requests_[i], spec.turbo_max_mhz) << " governor decision for core " << c;
      PAPD_CHECK(OnFrequencyGrid(requests_[i] - spec.min_mhz, spec.step_mhz))
          << " governor decision " << requests_[i] << " MHz for core " << c << " off the "
          << spec.step_mhz << " MHz grid";
    }
    if (msr_->spec().max_simultaneous_pstates == 0) {
      msr_->WritePerfTargetMhz(c, requests_[i]);
    }
    // On a 3-P-state platform a per-core governor cannot program arbitrary
    // per-core values; the bench only runs governors on Skylake.  (A Ryzen
    // governor would need the daemon's selector; Linux's acpi-cpufreq has
    // the same restriction on these parts.)
  }
  if (obs_sink_ != nullptr && !requests_.empty()) {
    const auto [lo, hi] = std::minmax_element(requests_.begin(), requests_.end());
    Emit(obs::TraceEventType::kPstateWrite, static_cast<int32_t>(requests_.size()), 1, *hi, *lo);
  }
  Emit(obs::TraceEventType::kPeriodEnd, period, 0, 0.0, 0.0);
}

}  // namespace papd
