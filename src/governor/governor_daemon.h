// Per-core governor loop: the cpufreq-style counterpart of PowerDaemon.
//
// Samples per-core utilization through turbostat and lets one governor
// instance per core pick the next P-state request.  Used by the governor
// baseline bench to show that utilization-driven DVFS, even combined with a
// RAPL cap, provides no differential power delivery: a power virus is 100%
// utilized and therefore always asks for (and receives) the maximum
// frequency.

#ifndef SRC_GOVERNOR_GOVERNOR_DAEMON_H_
#define SRC_GOVERNOR_GOVERNOR_DAEMON_H_

#include <memory>
#include <vector>

#include "src/governor/governor.h"
#include "src/msr/msr.h"
#include "src/msr/turbostat.h"
#include "src/obs/trace.h"

namespace papd {

class GovernorDaemon {
 public:
  // One governor of `kind` per core; limits default to the platform range.
  // With `audit` (the default) every decision is checked against the
  // platform envelope and frequency grid before it is programmed; a
  // violation aborts with a formatted CHECK failure.
  GovernorDaemon(MsrFile* msr, GovernorKind kind, bool audit = true);

  // One sampling + decision iteration; call once per period (Linux cpufreq
  // uses tens of milliseconds; the bench uses 100 ms).
  //
  // Degrades gracefully on bad telemetry: an invalid sample holds the
  // current requests; kFallbackAfter consecutive invalid samples drop every
  // core to the platform minimum until telemetry recovers.  Cores whose
  // rates individually failed plausibility (CoreTelemetry::plausible) are
  // held even within a valid sample.
  void Step();

  // Consecutive invalid samples before falling back to the minimum.
  static constexpr int kFallbackAfter = 3;

  // Last decisions, per core.
  const std::vector<Mhz>& requests() const { return requests_; }

  FreqGovernor& governor(int cpu) { return *governors_[static_cast<size_t>(cpu)]; }

  // Current run of consecutive invalid samples (0 = telemetry healthy).
  int invalid_streak() const { return invalid_streak_; }
  bool in_fallback() const { return invalid_streak_ >= kFallbackAfter; }

  // Routes per-period trace events (period begin/end, fallback transitions,
  // P-state writes) to `sink`, stamped with `shard`; null disables tracing.
  void BindObs(ObsSink* sink, int16_t shard = 0) {
    obs_sink_ = sink;
    obs_shard_ = shard;
  }

 private:
  void Emit(obs::TraceEventType type, int32_t index, int32_t code, double a, double b) const;
  // a/b accept any payload obs::ToPayload handles (doubles or quantities).
  template <class A, class B>
  void Emit(obs::TraceEventType type, int32_t index, int32_t code, A a, B b) const {
    Emit(type, index, code, obs::ToPayload(a), obs::ToPayload(b));
  }

  MsrFile* msr_;
  Turbostat turbostat_;
  bool audit_;
  std::vector<std::unique_ptr<FreqGovernor>> governors_;
  std::vector<Mhz> requests_;
  int invalid_streak_ = 0;
  ObsSink* obs_sink_ = nullptr;
  int16_t obs_shard_ = 0;
  int period_ = 0;
  Seconds last_sample_t_{0.0};
};

}  // namespace papd

#endif  // SRC_GOVERNOR_GOVERNOR_DAEMON_H_
