#include "src/governor/thermald.h"

#include <algorithm>

namespace papd {

ThermalDaemon::ThermalDaemon(MsrFile* msr, Config config)
    : msr_(msr), config_(config), turbostat_(msr), rapl_limit_w_(msr->spec().rapl_max_w) {}

void ThermalDaemon::Step() {
  const TelemetrySample sample = turbostat_.Sample();
  if (sample.dt <= Seconds{0.0}) {
    return;
  }
  const PlatformSpec& spec = msr_->spec();

  if (config_.mode == Mode::kPerCoreDvfs) {
    for (const CoreTelemetry& core : sample.cores) {
      if (!core.online) {
        continue;
      }
      const Mhz current{
          static_cast<double>((msr_->Read(kMsrIa32PerfCtl, core.cpu) >> 8) & 0xFF) * 100.0};
      if (core.temp_c > config_.limit_c) {
        msr_->WritePerfTargetMhz(core.cpu,
                                 std::max(spec.min_mhz, current - spec.step_mhz));
      } else if (core.temp_c < config_.limit_c - config_.hysteresis_c &&
                 current < spec.turbo_max_mhz) {
        msr_->WritePerfTargetMhz(core.cpu,
                                 std::min(spec.turbo_max_mhz, current + spec.step_mhz));
      }
    }
    return;
  }

  // Global RAPL mode: the hottest core dictates the package limit.
  Celsius max_temp = 0.0;
  for (const CoreTelemetry& core : sample.cores) {
    max_temp = std::max(max_temp, core.temp_c);
  }
  if (max_temp > config_.limit_c) {
    rapl_limit_w_ = std::max(spec.rapl_min_w, rapl_limit_w_ - config_.rapl_step_w);
    msr_->WriteRaplLimitW(rapl_limit_w_);
  } else if (max_temp < config_.limit_c - config_.hysteresis_c &&
             rapl_limit_w_ < spec.rapl_max_w) {
    rapl_limit_w_ = std::min(spec.rapl_max_w, rapl_limit_w_ + config_.rapl_step_w);
    msr_->WriteRaplLimitW(rapl_limit_w_);
  }
}

}  // namespace papd
