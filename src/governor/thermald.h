// Thermal daemon (paper Section 2.2's thermald).
//
// Enforces a temperature limit using one of two mechanisms the paper
// contrasts: *local* per-core DVFS (step down only the cores that are hot,
// leaving cool neighbours untouched — the behaviour that makes thermal
// management compatible with per-application power delivery) or *global*
// RAPL (lower the package power limit until the hottest core cools, which
// throttles every core like the Figure 1 scenario).

#ifndef SRC_GOVERNOR_THERMALD_H_
#define SRC_GOVERNOR_THERMALD_H_

#include <vector>

#include "src/cpusim/thermal.h"
#include "src/msr/msr.h"
#include "src/msr/turbostat.h"

namespace papd {

class ThermalDaemon {
 public:
  enum class Mode {
    kPerCoreDvfs,  // Local: one P-state step on each hot core per period.
    kGlobalRapl,   // Global: walk the package RAPL limit down/up.
  };

  struct Config {
    Celsius limit_c = 85.0;
    Mode mode = Mode::kPerCoreDvfs;
    // Release throttling only below limit - hysteresis (avoids flapping at
    // the threshold).
    Celsius hysteresis_c = 3.0;
    // kGlobalRapl: watts moved per period.
    Watts rapl_step_w{2.0};
  };

  ThermalDaemon(MsrFile* msr, Config config);

  // One monitoring iteration (thermald polls at seconds granularity).
  void Step();

  // kGlobalRapl: the currently programmed package limit.
  Watts current_rapl_limit_w() const { return rapl_limit_w_; }

 private:
  MsrFile* msr_;
  Config config_;
  Turbostat turbostat_;
  Watts rapl_limit_w_;
};

}  // namespace papd

#endif  // SRC_GOVERNOR_THERMALD_H_
