#include "src/msr/fault_plan.h"

namespace papd {
namespace {

// Backward jump injected into a wrapping 32-bit energy counter: half the
// range, so both the faulted delta and the first post-fault delta are
// implausibly large (the second read's delta spans the other half).
constexpr uint64_t kEnergyWrapJump = 1ULL << 31;

// A reset counter restarts near zero; keep a small remainder so deltas
// after the reset stay exact.
uint64_t ResetOffset(uint64_t raw) { return raw - (raw % 977); }

void ApplyOffset(std::vector<uint64_t>* values, std::vector<uint64_t>* offsets) {
  offsets->resize(values->size(), 0);
  for (size_t i = 0; i < values->size(); i++) {
    const uint64_t off = (*offsets)[i];
    (*values)[i] = (*values)[i] > off ? (*values)[i] - off : 0;
  }
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), sample_rng_(plan.seed), write_rng_(plan.seed) {
  write_rng_ = sample_rng_.Split();
}

FaultInjector::SampleFaults FaultInjector::CorruptSnapshot(
    Seconds now_s, std::vector<uint64_t>* aperf, std::vector<uint64_t>* mperf,
    std::vector<uint64_t>* instructions, uint64_t* pkg_energy,
    std::vector<uint64_t>* core_energy) {
  SampleFaults out;

  // Offsets from earlier resets apply even outside the fault window: a
  // counter that reset stays reset.
  ApplyOffset(aperf, &aperf_off_);
  ApplyOffset(mperf, &mperf_off_);
  ApplyOffset(instructions, &instr_off_);
  if (!core_energy->empty()) {
    ApplyOffset(core_energy, &core_energy_off_);
  }
  *pkg_energy = (*pkg_energy - pkg_energy_off_) & 0xFFFFFFFFULL;
  if (!core_energy->empty()) {
    for (uint64_t& e : *core_energy) {
      e &= 0xFFFFFFFFULL;
    }
  }

  if (!Active(now_s)) {
    return out;
  }

  if (plan_.stale_sample_p > 0.0 && sample_rng_.NextDouble() < plan_.stale_sample_p) {
    out.stale = true;
    counts_.stale_samples++;
    return out;  // The snapshot is discarded; nothing else to corrupt.
  }

  if (plan_.energy_wrap_p > 0.0 && sample_rng_.NextDouble() < plan_.energy_wrap_p) {
    out.energy_wrap = true;
    counts_.energy_wraps++;
    pkg_energy_off_ = (pkg_energy_off_ + kEnergyWrapJump) & 0xFFFFFFFFULL;
    *pkg_energy = (*pkg_energy - kEnergyWrapJump) & 0xFFFFFFFFULL;
    for (size_t i = 0; i < core_energy->size(); i++) {
      core_energy_off_[i] = (core_energy_off_[i] + kEnergyWrapJump) & 0xFFFFFFFFULL;
      (*core_energy)[i] = ((*core_energy)[i] - kEnergyWrapJump) & 0xFFFFFFFFULL;
    }
  }

  for (size_t i = 0; i < instructions->size(); i++) {
    if (plan_.counter_reset_p > 0.0 && sample_rng_.NextDouble() < plan_.counter_reset_p) {
      out.counter_resets++;
      counts_.counter_resets++;
      aperf_off_[i] += ResetOffset((*aperf)[i]);
      mperf_off_[i] += ResetOffset((*mperf)[i]);
      instr_off_[i] += ResetOffset((*instructions)[i]);
      (*aperf)[i] %= 977;
      (*mperf)[i] %= 977;
      (*instructions)[i] %= 977;
    }
    if (plan_.read_spike_p > 0.0 && sample_rng_.NextDouble() < plan_.read_spike_p) {
      out.read_spikes++;
      counts_.read_spikes++;
      // Transient garbage: this read alone returns an absurd value.  The
      // snapshot is stored as-is, so the following sample sees a backward
      // jump — exactly what a real one-shot misread produces.
      (*instructions)[i] += 1ULL << 50;
    }
  }
  return out;
}

bool FaultInjector::DropPstateWrite(Seconds now_s) {
  if (!Active(now_s) || plan_.write_fail_p <= 0.0) {
    return false;
  }
  if (write_rng_.NextDouble() < plan_.write_fail_p) {
    counts_.dropped_writes++;
    return true;
  }
  return false;
}

}  // namespace papd
