// Deterministic MSR telemetry fault injection.
//
// Real /dev/cpu/*/msr telemetry is noisy in ways the paper's daemon never
// sees in a clean simulation: energy counters wrap or reset, fixed counters
// jump backward across hotplug transitions, reads return transient garbage,
// and P-state writes are occasionally dropped by firmware.  FaultPlan
// describes a schedule of such faults; FaultInjector realizes it
// deterministically from the plan's seed so every scenario (and its
// regression tests) replays the exact same fault sequence.
//
// Injection happens at the boundary the faults occur on real hardware:
//   - Turbostat::Sample() asks the injector to corrupt each raw counter
//     snapshot (stale samples, counter resets, energy wraps, read spikes);
//   - MsrFile::Write() asks it whether a P-state write is silently dropped.

#ifndef SRC_MSR_FAULT_PLAN_H_
#define SRC_MSR_FAULT_PLAN_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace papd {

struct FaultPlan {
  uint64_t seed = 1;
  // Faults are only injected while the simulated clock is inside
  // [start_s, end_s); outside the window telemetry and writes are clean.
  Seconds start_s{0.0};
  Seconds end_s{Seconds{std::numeric_limits<double>::infinity()}};

  // Per-sample probability that the whole snapshot is stale: the reader
  // sees the previous sample again (zero dt, repeated counters).
  double stale_sample_p = 0.0;
  // Per-core per-sample probability that the fixed counters (instructions,
  // APERF, MPERF) reset to near zero, as across a hotplug transition.
  double counter_reset_p = 0.0;
  // Per-sample probability that the package (and per-core) energy counters
  // jump backward by half the 32-bit range — a wrap storm: the naive
  // wrapping delta explodes to ~2^32 RAPL units.
  double energy_wrap_p = 0.0;
  // Per-core per-sample probability of a transient garbage read on the
  // instruction counter (a huge forward spike that vanishes next read).
  double read_spike_p = 0.0;
  // Per-write probability that a P-state MSR write (PERF_CTL, P-state
  // definition, P-state selector) is silently ignored.
  double write_fail_p = 0.0;

  bool Any() const {
    return stale_sample_p > 0.0 || counter_reset_p > 0.0 || energy_wrap_p > 0.0 ||
           read_spike_p > 0.0 || write_fail_p > 0.0;
  }
};

// Injection counts, for tests and bench reporting.
struct FaultCounts {
  int stale_samples = 0;
  int counter_resets = 0;
  int energy_wraps = 0;
  int read_spikes = 0;
  int dropped_writes = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  // Outcome of corrupting one snapshot (all false/zero when clean).
  struct SampleFaults {
    bool stale = false;
    bool energy_wrap = false;
    int counter_resets = 0;
    int read_spikes = 0;
  };

  // Draws this sample's faults and applies them in place to the raw counter
  // snapshot.  Counter resets persist (the counter restarts near zero and
  // keeps counting, modeled as a constant offset on later reads); energy
  // wraps persist the same way; read spikes corrupt only this snapshot's
  // values — the *next* read returns sane values again, so the consumer
  // sees one backward jump.  When `stale` is returned the caller should
  // discard the snapshot and re-serve the previous sample.
  SampleFaults CorruptSnapshot(Seconds now_s, std::vector<uint64_t>* aperf,
                               std::vector<uint64_t>* mperf,
                               std::vector<uint64_t>* instructions, uint64_t* pkg_energy,
                               std::vector<uint64_t>* core_energy);

  // Whether the P-state write issued at `now_s` is silently dropped.
  bool DropPstateWrite(Seconds now_s);

  const FaultPlan& plan() const { return plan_; }
  const FaultCounts& counts() const { return counts_; }

 private:
  bool Active(Seconds now_s) const {
    return now_s >= plan_.start_s && now_s < plan_.end_s;
  }

  FaultPlan plan_;
  // Independent streams so the number of P-state writes (which depends on
  // daemon behavior) cannot shift the sampling fault sequence.
  Rng sample_rng_;
  Rng write_rng_;
  FaultCounts counts_;
  // Persistent post-reset offsets: observed counter = raw - offset.
  std::vector<uint64_t> aperf_off_;
  std::vector<uint64_t> mperf_off_;
  std::vector<uint64_t> instr_off_;
  std::vector<uint64_t> core_energy_off_;
  uint64_t pkg_energy_off_ = 0;
};

}  // namespace papd

#endif  // SRC_MSR_FAULT_PLAN_H_
