#include "src/msr/msr.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

#include "src/common/logging.h"

namespace papd {
namespace {

// 32-bit wrapping energy counter in RAPL units, as turbostat would read it.
uint64_t EnergyToRaplCounter(Joules j) {
  const double units = j.value() / kRaplEnergyUnitJoules;
  return static_cast<uint64_t>(std::llround(units)) & 0xFFFFFFFFULL;
}

[[noreturn]] void GeneralProtectionFault(uint32_t reg) {
  PAPD_LOG_ERROR("#GP: access to unsupported MSR 0x%x", reg);
  std::abort();
}

}  // namespace

MsrFile::MsrFile(Package* package) : package_(package) {
  // Power-on defaults: all slots at the base max frequency, all cores on
  // slot 0.
  pstate_def_mhz_.fill(spec().base_max_mhz);
  pstate_select_.assign(static_cast<size_t>(num_cores()), 0);
}

uint64_t MsrFile::Read(uint32_t reg, int cpu) const {
  switch (reg) {
    case kMsrIa32Mperf:
      return static_cast<uint64_t>(package_->core(cpu).mperf_cycles());
    case kMsrIa32Aperf:
      return static_cast<uint64_t>(package_->core(cpu).aperf_cycles());
    case kMsrFixedCtr0:
      return static_cast<uint64_t>(package_->core(cpu).instructions_retired());
    case kMsrPkgEnergyStatus:
      return EnergyToRaplCounter(package_->package_energy_j());
    case kMsrPkgPowerLimit: {
      if (!spec().has_rapl_limit) {
        GeneralProtectionFault(reg);
      }
      const RaplController& rapl = package_->rapl();
      // Power in 1/8 W units (power-unit field value 3), enable in bit 15.
      uint64_t v = static_cast<uint64_t>(std::llround(rapl.limit_w().value() * 8.0)) & 0x7FFF;
      if (rapl.enabled()) {
        v |= 1ULL << 15;
      }
      return v;
    }
    case kMsrIa32PerfCtl: {
      const Mhz mhz{package_->core(cpu).requested_mhz()};
      return (static_cast<uint64_t>(std::llround(mhz.value() / 100.0)) & 0xFF) << 8;
    }
    case kMsrIa32ThermStatus: {
      // Digital readout in bits [22:16]: degrees below the junction limit.
      const double below =
          package_->spec().thermal.tj_max_c - package_->thermal().core_temp_c(cpu);
      const uint64_t readout =
          static_cast<uint64_t>(std::llround(std::max(0.0, below))) & 0x7F;
      return readout << 16;
    }
    case kMsrAmdCoreEnergy:
      if (!spec().has_per_core_power) {
        GeneralProtectionFault(reg);
      }
      return EnergyToRaplCounter(package_->core(cpu).energy_j());
    case kMsrAmdPstateCtl:
      if (spec().max_simultaneous_pstates == 0) {
        GeneralProtectionFault(reg);
      }
      return static_cast<uint64_t>(pstate_select_[static_cast<size_t>(cpu)]);
    default:
      if (reg >= kMsrAmdPstateDef0 && reg < kMsrAmdPstateDef0 + 3) {
        if (spec().max_simultaneous_pstates == 0) {
          GeneralProtectionFault(reg);
        }
        // Frequency in 25 MHz units.
        return static_cast<uint64_t>(
            std::llround(pstate_def_mhz_[reg - kMsrAmdPstateDef0].value() / 25.0));
      }
      GeneralProtectionFault(reg);
  }
}

void MsrFile::Write(uint32_t reg, int cpu, uint64_t value) {
  write_count_++;
  switch (reg) {
    case kMsrIa32PerfCtl: {
      if (spec().max_simultaneous_pstates != 0) {
        // Ryzen path must use P-state definitions, not per-core ratios.
        GeneralProtectionFault(reg);
      }
      if (faults_ != nullptr && faults_->DropPstateWrite(NowSeconds())) {
        // Silently ignored; the register keeps its old value.  Still a
        // control-plane event: the multi-rate planner must not keep holding
        // through a tick where software believes it reprogrammed a core.
        package_->NotifyControlPlaneEvent();
        return;
      }
      const Mhz mhz{static_cast<double>((value >> 8) & 0xFF) * 100.0};
      package_->SetRequestedMhz(cpu, mhz);
      return;
    }
    case kMsrPkgPowerLimit: {
      if (!spec().has_rapl_limit) {
        GeneralProtectionFault(reg);
      }
      const Watts limit{static_cast<double>(value & 0x7FFF) / 8.0};
      if (value & (1ULL << 15)) {
        package_->SetRaplLimit(limit);
      } else {
        package_->ClearRaplLimit();
      }
      return;
    }
    case kMsrAmdPstateCtl: {
      if (spec().max_simultaneous_pstates == 0) {
        GeneralProtectionFault(reg);
      }
      if (faults_ != nullptr && faults_->DropPstateWrite(NowSeconds())) {
        package_->NotifyControlPlaneEvent();
        return;
      }
      const int slot = static_cast<int>(value & 0x7);
      assert(slot >= 0 && slot < 3);
      pstate_select_[static_cast<size_t>(cpu)] = slot;
      package_->SetRequestedMhz(cpu, pstate_def_mhz_[static_cast<size_t>(slot)]);
      return;
    }
    default:
      if (reg >= kMsrAmdPstateDef0 && reg < kMsrAmdPstateDef0 + 3) {
        if (spec().max_simultaneous_pstates == 0) {
          GeneralProtectionFault(reg);
        }
        if (faults_ != nullptr && faults_->DropPstateWrite(NowSeconds())) {
          package_->NotifyControlPlaneEvent();
          return;
        }
        const size_t slot = reg - kMsrAmdPstateDef0;
        pstate_def_mhz_[slot] = Mhz{static_cast<double>(value) * 25.0};
        // Redefining a slot retargets every core currently selecting it,
        // as on real Ryzen where the definition is live.
        for (int c = 0; c < num_cores(); c++) {
          if (pstate_select_[static_cast<size_t>(c)] == static_cast<int>(slot)) {
            package_->SetRequestedMhz(c, pstate_def_mhz_[slot]);
          }
        }
        return;
      }
      GeneralProtectionFault(reg);
  }
}

void MsrFile::WritePerfTargetMhz(int cpu, Mhz mhz) {
  Write(kMsrIa32PerfCtl, cpu, (static_cast<uint64_t>(std::llround(mhz.value() / 100.0)) & 0xFF) << 8);
}

void MsrFile::WritePstateDefMhz(int slot, Mhz mhz) {
  assert(slot >= 0 && slot < 3);
  Write(kMsrAmdPstateDef0 + static_cast<uint32_t>(slot), /*cpu=*/0,
        static_cast<uint64_t>(std::llround(mhz.value() / 25.0)));
}

void MsrFile::SelectPstate(int cpu, int slot) {
  Write(kMsrAmdPstateCtl, cpu, static_cast<uint64_t>(slot));
}

Mhz MsrFile::ReadPstateDefMhz(int slot) const {
  return Mhz{static_cast<double>(Read(kMsrAmdPstateDef0 + static_cast<uint32_t>(slot), 0)) * 25.0};
}

void MsrFile::WriteRaplLimitW(Watts limit_w) {
  Write(kMsrPkgPowerLimit, 0,
        (static_cast<uint64_t>(std::llround(limit_w.value() * 8.0)) & 0x7FFF) | (1ULL << 15));
}

void MsrFile::DisableRaplLimit() { Write(kMsrPkgPowerLimit, 0, 0); }

void MsrFile::SetCoreOnline(int cpu, bool online) { package_->SetOnline(cpu, online); }

void MsrFile::EnableFaults(const FaultPlan& plan) {
  faults_ = std::make_unique<FaultInjector>(plan);
  // Arming a fault plan changes what the control plane may observe/do from
  // now on; force the multi-rate engine to resync.
  package_->NotifyControlPlaneEvent();
}

}  // namespace papd
