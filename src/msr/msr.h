// Model-specific-register front end of the simulated package.
//
// The paper's daemon controls hardware exclusively through MSRs (Intel
// PERF_CTL P-state requests, AMD P-state definition registers) and the
// /dev/cpu/*/msr energy/performance counters read by turbostat.  MsrFile
// reproduces that surface over the simulated Package:
//
//   - raw Read/Write of numbered registers with realistic encodings
//     (ratio fields, 32-bit wrapping energy counters in RAPL units), and
//   - typed helpers the rest of the code uses.
//
// Platform differences are enforced here, exactly where real hardware
// enforces them: Skylake programs per-core PERF_CTL ratios in 100 MHz
// units; Ryzen programs at most three P-state *definitions* (25 MHz units)
// and a per-core selector; per-core energy counters exist only on Ryzen;
// RAPL limit registers exist only on Skylake.

#ifndef SRC_MSR_MSR_H_
#define SRC_MSR_MSR_H_

#include <array>
#include <cstdint>
#include <memory>

#include "src/common/units.h"
#include "src/cpusim/package.h"
#include "src/msr/fault_plan.h"

namespace papd {

// Register numbers (matching the real parts where practical).
inline constexpr uint32_t kMsrIa32Mperf = 0xE7;
inline constexpr uint32_t kMsrIa32Aperf = 0xE8;
inline constexpr uint32_t kMsrIa32PerfCtl = 0x199;
inline constexpr uint32_t kMsrFixedCtr0 = 0x309;       // Retired instructions.
inline constexpr uint32_t kMsrIa32ThermStatus = 0x19C;  // Digital thermometer.
inline constexpr uint32_t kMsrPkgPowerLimit = 0x610;
inline constexpr uint32_t kMsrPkgEnergyStatus = 0x611;
inline constexpr uint32_t kMsrAmdPstateDef0 = 0xC0010064;  // Slots 0..2 consecutive.
inline constexpr uint32_t kMsrAmdPstateCtl = 0xC0010062;   // Per-core slot select.
inline constexpr uint32_t kMsrAmdCoreEnergy = 0xC001029A;

class MsrFile {
 public:
  // Borrows the package.
  explicit MsrFile(Package* package);

  const PlatformSpec& spec() const { return package_->spec(); }
  int num_cores() const { return package_->num_cores(); }

  // --- Raw register interface ----------------------------------------------
  // cpu is ignored for package-scope registers.  Unknown registers or
  // feature-gated registers on the wrong platform abort (matching the #GP a
  // real part raises).
  uint64_t Read(uint32_t reg, int cpu) const;
  void Write(uint32_t reg, int cpu, uint64_t value);

  // --- Typed helpers ---------------------------------------------------------
  // Intel-style direct P-state request; only valid when the platform has no
  // simultaneous-P-state restriction.
  void WritePerfTargetMhz(int cpu, Mhz mhz);

  // AMD-style: redefine P-state slot (0..2) and point cores at slots.
  void WritePstateDefMhz(int slot, Mhz mhz);
  void SelectPstate(int cpu, int slot);
  Mhz ReadPstateDefMhz(int slot) const;

  // RAPL package limit (Skylake only).
  void WriteRaplLimitW(Watts limit_w);
  void DisableRaplLimit();

  // OS-level core idling (sysfs hotplug / forced deep C-state in the paper).
  void SetCoreOnline(int cpu, bool online);
  bool CoreOnline(int cpu) const { return package_->core(cpu).online(); }

  // Wall clock, as a TSC read would provide.
  Seconds NowSeconds() const { return package_->now(); }

  // --- Fault injection --------------------------------------------------------
  // Attaches a deterministic fault schedule: telemetry reads get corrupted
  // through Turbostat and P-state writes inside the plan's window may be
  // silently dropped (the register keeps its old value, as firmware-NAKed
  // writes do on real parts).  Replaces any previously enabled plan.
  void EnableFaults(const FaultPlan& plan);
  FaultInjector* faults() const { return faults_.get(); }

  // Total Write() calls issued (dropped or not); lets tests assert the
  // daemon does not rewrite P-state registers when targets are unchanged.
  int write_count() const { return write_count_; }

 private:
  Package* package_;
  std::array<Mhz, 3> pstate_def_mhz_;
  // Which slot each core currently selects (Ryzen path).
  std::vector<int> pstate_select_;
  std::unique_ptr<FaultInjector> faults_;
  int write_count_ = 0;
};

}  // namespace papd

#endif  // SRC_MSR_MSR_H_
