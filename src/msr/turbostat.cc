#include "src/msr/turbostat.h"

#include <algorithm>

#include "src/msr/fault_plan.h"

namespace papd {

uint64_t WrappingDelta32(uint64_t now, uint64_t before) {
  return (now - before) & 0xFFFFFFFFULL;
}

Turbostat::Turbostat(MsrFile* msr) : msr_(msr) {
  prev_ = Take();
  const PlatformSpec& spec = msr_->spec();
  // Generous physical ceilings: anything beyond them is a measurement
  // fault (wrap storm, reset, garbage read), not a hot package.
  max_plausible_pkg_w_ = 4.0 * spec.tdp_w + Watts{25.0};
  max_plausible_core_w_ = 2.0 * spec.tdp_w;
  max_plausible_mhz_ = 1.5 * spec.turbo_max_mhz;
  max_plausible_ips_ = IpsAtMhz(spec.turbo_max_mhz, 32.0);  // IPC far above any core.
}

Turbostat::Snapshot Turbostat::Take() const {
  Snapshot s;
  s.t = msr_->NowSeconds();
  s.pkg_energy = msr_->Read(kMsrPkgEnergyStatus, 0);
  const int n = msr_->num_cores();
  s.aperf.resize(static_cast<size_t>(n));
  s.mperf.resize(static_cast<size_t>(n));
  s.instructions.resize(static_cast<size_t>(n));
  if (msr_->spec().has_per_core_power) {
    s.core_energy.resize(static_cast<size_t>(n));
  }
  for (int c = 0; c < n; c++) {
    const auto i = static_cast<size_t>(c);
    s.aperf[i] = msr_->Read(kMsrIa32Aperf, c);
    s.mperf[i] = msr_->Read(kMsrIa32Mperf, c);
    s.instructions[i] = msr_->Read(kMsrFixedCtr0, c);
    if (msr_->spec().has_per_core_power) {
      s.core_energy[i] = msr_->Read(kMsrAmdCoreEnergy, c);
    }
  }
  return s;
}

double Turbostat::ClampedDelta(uint64_t now, uint64_t before, bool* regressed) {
  if (now < before) {
    *regressed = true;
    return 0.0;
  }
  return static_cast<double>(now - before);
}

TelemetrySample Turbostat::RawSample(const Snapshot& now) {
  // Pre-hardening semantics, kept verbatim for the naive-daemon baseline:
  // zero dt produces an all-zero (but "valid") sample and counter deltas
  // wrap unsigned.
  TelemetrySample sample;
  sample.t = now.t;
  sample.dt = now.t - prev_.t;
  sample.cores.resize(now.aperf.size());
  if (sample.dt <= Seconds{0.0}) {
    prev_ = now;
    return sample;
  }
  sample.pkg_w =
      Joules{static_cast<double>(WrappingDelta32(now.pkg_energy, prev_.pkg_energy)) *
             kRaplEnergyUnitJoules} / sample.dt;
  const Mhz tsc_mhz{msr_->spec().tsc_mhz};
  for (size_t i = 0; i < now.aperf.size(); i++) {
    CoreTelemetry& ct = sample.cores[i];
    ct.cpu = static_cast<int>(i);
    ct.online = msr_->CoreOnline(static_cast<int>(i));
    const double da = static_cast<double>(now.aperf[i] - prev_.aperf[i]);
    const double dm = static_cast<double>(now.mperf[i] - prev_.mperf[i]);
    ct.active_mhz = dm > 0.0 ? da / dm * tsc_mhz : Mhz{0.0};
    ct.busy = dm / (tsc_mhz * kHzPerMhz * sample.dt);
    ct.ips = static_cast<double>(now.instructions[i] - prev_.instructions[i]) / sample.dt;
    const uint64_t readout =
        (msr_->Read(kMsrIa32ThermStatus, static_cast<int>(i)) >> 16) & 0x7F;
    ct.temp_c = msr_->spec().thermal.tj_max_c - static_cast<double>(readout);
    if (!now.core_energy.empty()) {
      ct.core_w = Joules{static_cast<double>(
                            WrappingDelta32(now.core_energy[i], prev_.core_energy[i])) *
                        kRaplEnergyUnitJoules} / sample.dt;
    }
  }
  prev_ = now;
  return sample;
}

TelemetrySample Turbostat::StaleSample() {
  TelemetrySample sample;
  sample.t = prev_.t;
  sample.dt = Seconds{0.0};
  sample.valid = false;
  sample.fault_flags = kSampleStale;
  invalid_counter_->Increment();
  if (has_last_good_) {
    // Re-serve the last good rates so consumers that ignore `valid` see a
    // plausible world instead of "zero power" (which the priority policy
    // would read as limit_w of headroom and ramp every core to maximum).
    sample.pkg_w = last_good_.pkg_w;
    sample.cores = last_good_.cores;
    for (CoreTelemetry& ct : sample.cores) {
      ct.plausible = false;
    }
  } else {
    sample.cores.resize(static_cast<size_t>(msr_->num_cores()));
    for (size_t i = 0; i < sample.cores.size(); i++) {
      sample.cores[i].cpu = static_cast<int>(i);
      sample.cores[i].online = msr_->CoreOnline(static_cast<int>(i));
      sample.cores[i].plausible = false;
    }
  }
  return sample;
}

TelemetrySample Turbostat::Sample() {
  Snapshot now = Take();
  FaultInjector* injector = msr_->faults();
  FaultInjector::SampleFaults injected;
  if (injector != nullptr) {
    injected = injector->CorruptSnapshot(now.t, &now.aperf, &now.mperf, &now.instructions,
                                         &now.pkg_energy, &now.core_energy);
  }
  if (!validate_) {
    // Naive mode still honors an injected stale read (the reader got the
    // old data again — with the old timestamp, hence dt == 0).
    if (injected.stale) {
      Snapshot repeat = prev_;
      return RawSample(repeat);
    }
    return RawSample(now);
  }

  if (injected.stale) {
    // Dropped read: prev_ is kept, so the next good sample covers the gap.
    return StaleSample();
  }

  TelemetrySample sample;
  sample.t = now.t;
  sample.dt = now.t - prev_.t;
  if (sample.dt <= Seconds{0.0}) {
    return StaleSample();
  }

  sample.cores.resize(now.aperf.size());
  sample.pkg_w =
      Joules{static_cast<double>(WrappingDelta32(now.pkg_energy, prev_.pkg_energy)) *
             kRaplEnergyUnitJoules} / sample.dt;
  if (sample.pkg_w > max_plausible_pkg_w_) {
    // Energy counter reset/wrap storm: the 32-bit delta is garbage, and
    // with it the package-power ground the control loops stand on.
    sample.fault_flags |= kSampleEnergyImplausible;
    sample.pkg_w = has_last_good_ ? last_good_.pkg_w : Watts{0.0};
  }

  const Mhz tsc_mhz{msr_->spec().tsc_mhz};
  for (size_t i = 0; i < now.aperf.size(); i++) {
    CoreTelemetry& ct = sample.cores[i];
    ct.cpu = static_cast<int>(i);
    ct.online = msr_->CoreOnline(static_cast<int>(i));
    bool regressed = false;
    const double da = ClampedDelta(now.aperf[i], prev_.aperf[i], &regressed);
    const double dm = ClampedDelta(now.mperf[i], prev_.mperf[i], &regressed);
    const double di = ClampedDelta(now.instructions[i], prev_.instructions[i], &regressed);
    ct.active_mhz = dm > 0.0 ? da / dm * tsc_mhz : Mhz{0.0};
    ct.busy = dm / (tsc_mhz * kHzPerMhz * sample.dt);
    ct.ips = di / sample.dt;
    const uint64_t readout =
        (msr_->Read(kMsrIa32ThermStatus, static_cast<int>(i)) >> 16) & 0x7F;
    ct.temp_c = msr_->spec().thermal.tj_max_c - static_cast<double>(readout);
    if (!now.core_energy.empty()) {
      ct.core_w = Joules{static_cast<double>(
                            WrappingDelta32(now.core_energy[i], prev_.core_energy[i])) *
                        kRaplEnergyUnitJoules} / sample.dt;
      if (*ct.core_w > max_plausible_core_w_) {
        // Core-scope fault: flagged as a rate problem, not an energy one —
        // package power (what the budget check runs on) is still sound.
        sample.fault_flags |= kSampleRateImplausible;
        ct.plausible = false;
        ct.core_w = has_last_good_ && i < last_good_.cores.size()
                        ? last_good_.cores[i].core_w
                        : std::optional<Watts>(Watts{0.0});
      }
    }
    if (regressed) {
      sample.fault_flags |= kSampleCounterReset;
      ct.plausible = false;
    }
    if (ct.busy > 1.1 || ct.active_mhz > max_plausible_mhz_ || ct.ips > max_plausible_ips_) {
      sample.fault_flags |= kSampleRateImplausible;
      ct.plausible = false;
    }
    if (!ct.plausible && has_last_good_ && i < last_good_.cores.size()) {
      const CoreTelemetry& good = last_good_.cores[i];
      ct.active_mhz = good.active_mhz;
      ct.busy = good.busy;
      ct.ips = good.ips;
      if (good.core_w.has_value()) {
        ct.core_w = good.core_w;
      }
    }
  }

  prev_ = now;
  // Core-scope faults (counter reset, rate/core-power implausibility) have
  // their rates substituted with last-good values and the affected cores
  // marked implausible; package power is still trustworthy, so the sample
  // remains safe to control on.  Only package-scope faults — a stale read
  // or garbage package energy — make the whole sample invalid.
  sample.valid = (sample.fault_flags & (kSampleStale | kSampleEnergyImplausible)) == 0;
  if (sample.fault_flags == 0) {
    last_good_ = sample;
    has_last_good_ = true;
  }
  if (!sample.valid) {
    invalid_counter_->Increment();
  }
  return sample;
}

}  // namespace papd
