#include "src/msr/turbostat.h"

namespace papd {

uint64_t WrappingDelta32(uint64_t now, uint64_t before) {
  return (now - before) & 0xFFFFFFFFULL;
}

Turbostat::Turbostat(MsrFile* msr) : msr_(msr) { prev_ = Take(); }

Turbostat::Snapshot Turbostat::Take() const {
  Snapshot s;
  s.t = msr_->NowSeconds();
  s.pkg_energy = msr_->Read(kMsrPkgEnergyStatus, 0);
  const int n = msr_->num_cores();
  s.aperf.resize(static_cast<size_t>(n));
  s.mperf.resize(static_cast<size_t>(n));
  s.instructions.resize(static_cast<size_t>(n));
  if (msr_->spec().has_per_core_power) {
    s.core_energy.resize(static_cast<size_t>(n));
  }
  for (int c = 0; c < n; c++) {
    const auto i = static_cast<size_t>(c);
    s.aperf[i] = msr_->Read(kMsrIa32Aperf, c);
    s.mperf[i] = msr_->Read(kMsrIa32Mperf, c);
    s.instructions[i] = msr_->Read(kMsrFixedCtr0, c);
    if (msr_->spec().has_per_core_power) {
      s.core_energy[i] = msr_->Read(kMsrAmdCoreEnergy, c);
    }
  }
  return s;
}

TelemetrySample Turbostat::Sample() {
  const Snapshot now = Take();
  TelemetrySample sample;
  sample.t = now.t;
  sample.dt = now.t - prev_.t;
  sample.cores.resize(now.aperf.size());
  if (sample.dt <= 0.0) {
    prev_ = now;
    return sample;
  }

  sample.pkg_w =
      static_cast<double>(WrappingDelta32(now.pkg_energy, prev_.pkg_energy)) *
      kRaplEnergyUnitJoules / sample.dt;

  const Mhz tsc_mhz = msr_->spec().tsc_mhz;
  for (size_t i = 0; i < now.aperf.size(); i++) {
    CoreTelemetry& ct = sample.cores[i];
    ct.cpu = static_cast<int>(i);
    ct.online = msr_->CoreOnline(static_cast<int>(i));
    const double da = static_cast<double>(now.aperf[i] - prev_.aperf[i]);
    const double dm = static_cast<double>(now.mperf[i] - prev_.mperf[i]);
    // Active (C0) frequency: APERF/MPERF scaled by the TSC rate.
    ct.active_mhz = dm > 0.0 ? da / dm * tsc_mhz : 0.0;
    ct.busy = dm / (tsc_mhz * kHzPerMhz * sample.dt);
    ct.ips = static_cast<double>(now.instructions[i] - prev_.instructions[i]) / sample.dt;
    const uint64_t readout =
        (msr_->Read(kMsrIa32ThermStatus, static_cast<int>(i)) >> 16) & 0x7F;
    ct.temp_c = msr_->spec().thermal.tj_max_c - static_cast<double>(readout);
    if (!now.core_energy.empty()) {
      ct.core_w = static_cast<double>(WrappingDelta32(now.core_energy[i], prev_.core_energy[i])) *
                  kRaplEnergyUnitJoules / sample.dt;
    }
  }
  prev_ = now;
  return sample;
}

}  // namespace papd
