// Turbostat-like telemetry sampler.
//
// The paper's daemon collects per-second statistics with a modified
// turbostat: package power (RAPL energy counter deltas), per-core power on
// Ryzen, active frequency (APERF/MPERF), and performance (retired
// instructions per second).  Turbostat reproduces that: it snapshots the
// MSR counters and turns successive snapshots into rates, including the
// 32-bit wrap handling real RAPL energy counters require.
//
// Real MSR telemetry is noisy, so Sample() also *validates*: a sample with
// no elapsed time, a counter that jumped backward (reset), or a rate beyond
// physical plausibility (energy-counter wrap storm, transient read spike)
// is flagged invalid, its fault bits recorded, and the affected rates are
// replaced with the last known-good values so naive consumers never see
// "zero power = infinite headroom" or 1.8e19 instructions per second.
// Consumers that can degrade gracefully (PowerDaemon, GovernorDaemon) key
// off TelemetrySample::valid instead of the substituted rates.

#ifndef SRC_MSR_TURBOSTAT_H_
#define SRC_MSR_TURBOSTAT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/units.h"
#include "src/msr/msr.h"
#include "src/obs/metrics.h"

namespace papd {

// TelemetrySample::fault_flags bits.  The first two are package-scope and
// invalidate the sample; the last two are core-scope — the affected cores
// are marked implausible and their rates substituted, but the sample stays
// valid (package power is still sound).
inline constexpr uint32_t kSampleStale = 1u << 0;             // No time elapsed / repeat.
inline constexpr uint32_t kSampleEnergyImplausible = 1u << 1; // Pkg energy wrap/reset storm.
inline constexpr uint32_t kSampleCounterReset = 1u << 2;      // Fixed counter went backward.
inline constexpr uint32_t kSampleRateImplausible = 1u << 3;   // Core rate/power implausible.

struct CoreTelemetry {
  int cpu = 0;
  bool online = true;
  // False when this core's counters regressed or its rates failed the
  // plausibility checks this period (rates below are then the last good
  // readings, not this period's garbage).
  bool plausible = true;
  // Average frequency while in C0 ("active frequency" in the paper).
  Mhz active_mhz{0.0};
  // C0 residency fraction.
  double busy = 0.0;
  // Retired instructions per second.
  Ips ips{0.0};
  // Per-core power; present only on platforms with per-core telemetry.
  std::optional<Watts> core_w;
  // Junction temperature from the digital thermometer.
  double temp_c = 0.0;
};

struct TelemetrySample {
  Seconds t{0.0};   // Sample timestamp.
  Seconds dt{0.0};  // Interval covered.
  Watts pkg_w{0.0};
  // False when a package-scope validity check failed (stale read, garbage
  // package energy); fault_flags says which.  Control loops must not treat
  // an invalid sample as fresh truth.
  bool valid = true;
  uint32_t fault_flags = 0;
  std::vector<CoreTelemetry> cores;
};

class Turbostat {
 public:
  // Borrows the MSR file; takes the initial counter snapshot.
  explicit Turbostat(MsrFile* msr);

  // Produces rates over the interval since the previous Sample() (or since
  // construction), validated and flagged as described above.  With
  // validation disabled (set_validation(false)) the raw pre-hardening
  // behavior is reproduced: zero elapsed time yields an all-zero sample
  // marked valid and counter deltas wrap unsigned — the mode the fault-
  // tolerance ablation uses as its "naive daemon" baseline.
  TelemetrySample Sample();

  void set_validation(bool on) { validate_ = on; }
  bool validation() const { return validate_; }

  // Samples rejected by validation since construction.
  int invalid_samples() const { return static_cast<int>(invalid_counter_->value()); }

  // Redirects the invalid-sample count into `counter` (typically a
  // metrics-registry counter owned by the consuming daemon), making it the
  // single source of truth for both sides.  Call before the first Sample();
  // any count already accumulated on the previous counter is carried over.
  void BindInvalidSampleCounter(obs::Counter* counter) {
    counter->Increment(invalid_counter_->value());
    invalid_counter_ = counter;
  }

 private:
  struct Snapshot {
    Seconds t{0.0};
    uint64_t pkg_energy = 0;
    std::vector<uint64_t> aperf;
    std::vector<uint64_t> mperf;
    std::vector<uint64_t> instructions;
    std::vector<uint64_t> core_energy;
  };

  Snapshot Take() const;
  TelemetrySample RawSample(const Snapshot& now);
  // Serves a stale/zero-dt sample: invalid, rates re-served from the last
  // known-good sample.
  TelemetrySample StaleSample();

  // Signed counter delta clamped at zero: a backward jump (counter reset)
  // must not wrap to ~1.8e19.  Sets *regressed when clamping happened.
  static double ClampedDelta(uint64_t now, uint64_t before, bool* regressed);

  MsrFile* msr_;
  Snapshot prev_;
  bool validate_ = true;
  // Validation rejections; counts into own_invalid_counter_ until a
  // consumer rebinds it (BindInvalidSampleCounter).
  obs::Counter own_invalid_counter_;
  obs::Counter* invalid_counter_ = &own_invalid_counter_;
  // Plausibility ceilings, derived from the platform spec.
  Watts max_plausible_pkg_w_{0.0};
  Watts max_plausible_core_w_{0.0};
  Ips max_plausible_ips_{0.0};
  Mhz max_plausible_mhz_{0.0};
  // Last sample that passed validation, re-served while telemetry is bad.
  TelemetrySample last_good_;
  bool has_last_good_ = false;
};

// Delta of a 32-bit wrapping counter.
uint64_t WrappingDelta32(uint64_t now, uint64_t before);

}  // namespace papd

#endif  // SRC_MSR_TURBOSTAT_H_
