// Turbostat-like telemetry sampler.
//
// The paper's daemon collects per-second statistics with a modified
// turbostat: package power (RAPL energy counter deltas), per-core power on
// Ryzen, active frequency (APERF/MPERF), and performance (retired
// instructions per second).  Turbostat reproduces that: it snapshots the
// MSR counters and turns successive snapshots into rates, including the
// 32-bit wrap handling real RAPL energy counters require.

#ifndef SRC_MSR_TURBOSTAT_H_
#define SRC_MSR_TURBOSTAT_H_

#include <optional>
#include <vector>

#include "src/common/units.h"
#include "src/msr/msr.h"

namespace papd {

struct CoreTelemetry {
  int cpu = 0;
  bool online = true;
  // Average frequency while in C0 ("active frequency" in the paper).
  Mhz active_mhz = 0.0;
  // C0 residency fraction.
  double busy = 0.0;
  // Retired instructions per second.
  Ips ips = 0.0;
  // Per-core power; present only on platforms with per-core telemetry.
  std::optional<Watts> core_w;
  // Junction temperature from the digital thermometer.
  double temp_c = 0.0;
};

struct TelemetrySample {
  Seconds t = 0.0;   // Sample timestamp.
  Seconds dt = 0.0;  // Interval covered.
  Watts pkg_w = 0.0;
  std::vector<CoreTelemetry> cores;
};

class Turbostat {
 public:
  // Borrows the MSR file; takes the initial counter snapshot.
  explicit Turbostat(MsrFile* msr);

  // Produces rates over the interval since the previous Sample() (or since
  // construction).  Returns an all-zero sample if no time has passed.
  TelemetrySample Sample();

 private:
  struct Snapshot {
    Seconds t = 0.0;
    uint64_t pkg_energy = 0;
    std::vector<uint64_t> aperf;
    std::vector<uint64_t> mperf;
    std::vector<uint64_t> instructions;
    std::vector<uint64_t> core_energy;
  };

  Snapshot Take() const;

  MsrFile* msr_;
  Snapshot prev_;
};

// Delta of a 32-bit wrapping counter.
uint64_t WrappingDelta32(uint64_t now, uint64_t before);

}  // namespace papd

#endif  // SRC_MSR_TURBOSTAT_H_
