#include "src/obs/export.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "src/common/logging.h"

namespace papd {
namespace obs {
namespace {

// Ladder-state labels for TraceEvent code values (matching the
// DegradationState enum order; daemon.cc static_asserts the mapping).
const char* LadderName(int32_t code) {
  switch (code) {
    case 0:
      return "nominal";
    case 1:
      return "hold";
    case 2:
      return "fallback";
    default:
      return "?";
  }
}

void Appendf(std::string* out, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

// One trace_event JSON object (no trailing comma).
void AppendEvent(std::string* out, const TraceEvent& e) {
  const double ts_us = e.t.value() * 1e6;
  const int pid = e.shard;
  switch (e.type) {
    case TraceEventType::kPeriodBegin:
      Appendf(out,
              "{\"name\":\"daemon period\",\"cat\":\"daemon\",\"ph\":\"B\",\"ts\":%.3f,"
              "\"pid\":%d,\"tid\":0,\"args\":{\"period\":%d,\"state\":\"%s\","
              "\"pkg_w\":%.3f,\"limit_w\":%.3f}}",
              ts_us, pid, e.index, LadderName(e.code), e.a, e.b);
      break;
    case TraceEventType::kPeriodEnd:
      Appendf(out,
              "{\"name\":\"daemon period\",\"cat\":\"daemon\",\"ph\":\"E\",\"ts\":%.3f,"
              "\"pid\":%d,\"tid\":0,\"args\":{\"state\":\"%s\",\"latency_us\":%.3f}}",
              ts_us, pid, LadderName(e.code), e.a);
      break;
    case TraceEventType::kRedistribute:
      Appendf(out,
              "{\"name\":\"redistribute\",\"cat\":\"policy\",\"ph\":\"i\",\"s\":\"t\","
              "\"ts\":%.3f,\"pid\":%d,\"tid\":0,\"args\":{\"apps\":%d,\"changed\":%d,"
              "\"delta_w\":%.3f}}",
              ts_us, pid, e.index, e.code, e.a);
      break;
    case TraceEventType::kAppTarget:
      Appendf(out,
              "{\"name\":\"app%d target_mhz\",\"cat\":\"policy\",\"ph\":\"C\",\"ts\":%.3f,"
              "\"pid\":%d,\"args\":{\"mhz\":%.1f}}",
              e.index, ts_us, pid, e.b);
      break;
    case TraceEventType::kMinFundingRevoke:
      Appendf(out,
              "{\"name\":\"min-funding revoke\",\"cat\":\"policy\",\"ph\":\"i\",\"s\":\"t\","
              "\"ts\":%.3f,\"pid\":%d,\"tid\":0,\"args\":{\"entry\":%d,\"bound\":\"%s\","
              "\"value\":%.3f}}",
              ts_us, pid, e.index, e.code != 0 ? "max" : "min", e.a);
      break;
    case TraceEventType::kLadderTransition:
      Appendf(out,
              "{\"name\":\"ladder %s -> %s\",\"cat\":\"daemon\",\"ph\":\"i\",\"s\":\"t\","
              "\"ts\":%.3f,\"pid\":%d,\"tid\":0,\"args\":{\"from\":\"%s\",\"to\":\"%s\","
              "\"bad_streak\":%.0f}}",
              LadderName(e.index), LadderName(e.code), ts_us, pid, LadderName(e.index),
              LadderName(e.code), e.a);
      break;
    case TraceEventType::kPstateWrite:
      Appendf(out,
              "{\"name\":\"pstate write\",\"cat\":\"msr\",\"ph\":\"i\",\"s\":\"t\","
              "\"ts\":%.3f,\"pid\":%d,\"tid\":0,\"args\":{\"apps\":%d,\"verified\":%s,"
              "\"max_mhz\":%.1f,\"min_mhz\":%.1f}}",
              ts_us, pid, e.index, e.code != 0 ? "true" : "false", e.a, e.b);
      break;
    case TraceEventType::kRackGrant:
      Appendf(out,
              "{\"name\":\"socket%d budget_w\",\"cat\":\"rack\",\"ph\":\"C\",\"ts\":%.3f,"
              "\"pid\":%d,\"args\":{\"grant_w\":%.3f,\"measured_w\":%.3f}}",
              e.index, ts_us, pid, e.a, e.b);
      break;
    case TraceEventType::kClusterGrant:
      Appendf(out,
              "{\"name\":\"node%d level%d grant_w\",\"cat\":\"cluster\",\"ph\":\"C\",\"ts\":%.3f,"
              "\"pid\":%d,\"args\":{\"grant_w\":%.3f,\"reported_w\":%.3f}}",
              e.index, e.code, ts_us, pid, e.a, e.b);
      break;
    case TraceEventType::kSloShift:
      Appendf(out,
              "{\"name\":\"node%d level%d slo_bias\",\"cat\":\"cluster\",\"ph\":\"C\",\"ts\":%.3f,"
              "\"pid\":%d,\"args\":{\"bias\":%.4f,\"p90_s\":%.6f}}",
              e.index, e.code, ts_us, pid, e.a, e.b);
      break;
  }
}

}  // namespace

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[\n";
  for (size_t i = 0; i < events.size(); i++) {
    AppendEvent(&out, events[i]);
    out.append(i + 1 < events.size() ? ",\n" : "\n");
  }
  out.append("],\"displayTimeUnit\":\"ms\"}\n");
  return out;
}

std::string MetricsCsv(const MetricsRegistry& registry) {
  std::string out = "t_s";
  for (const std::string& name : registry.scalar_names()) {
    out.push_back(',');
    out.append(name);
  }
  out.push_back('\n');
  const size_t columns = registry.scalar_names().size();
  for (const MetricsRegistry::Row& row : registry.rows()) {
    Appendf(&out, "%.3f", row.t);
    for (size_t c = 0; c < columns; c++) {
      // Rows snapshotted before a metric existed are padded with 0.
      Appendf(&out, ",%g", c < row.values.size() ? row.values[c] : 0.0);
    }
    out.push_back('\n');
  }
  return out;
}

std::string MetricsJson(const MetricsSnapshot& metrics) {
  std::string out = "{";
  bool first = true;
  for (const MetricValue& m : metrics) {
    if (!first) {
      out.append(", ");
    }
    first = false;
    if (m.kind == MetricValue::Kind::kHistogram) {
      Appendf(&out, "\"%s\": {\"count\": %llu, \"sum\": %g, \"buckets\": [", m.name.c_str(),
              static_cast<unsigned long long>(m.count), m.value);
      for (size_t b = 0; b < m.bucket_counts.size(); b++) {
        out.append(b > 0 ? ", [" : "[");
        if (b < m.upper_bounds.size()) {
          Appendf(&out, "%g", m.upper_bounds[b]);
        } else {
          out.append("null");  // Implicit +inf overflow bucket.
        }
        Appendf(&out, ", %llu]", static_cast<unsigned long long>(m.bucket_counts[b]));
      }
      out.append("]}");
    } else {
      Appendf(&out, "\"%s\": %g", m.name.c_str(), m.value);
    }
  }
  out.append("}");
  return out;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    PAPD_LOG_ERROR("obs: cannot open %s for writing", path.c_str());
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (written != content.size()) {
    PAPD_LOG_ERROR("obs: short write to %s", path.c_str());
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace papd
