// Exporters for trace events and metrics.
//
// Three formats:
//   - Chrome trace_event JSON: load the file in ui.perfetto.dev (or
//     chrome://tracing).  Period begin/end become duration slices, one
//     track per rack shard; decisions become instants; per-app targets and
//     rack grants become counter tracks Perfetto plots as time series.
//   - CSV: the metrics registry's per-period snapshot rows, one column per
//     scalar metric — the spreadsheet-side view of a run.
//   - Metrics JSON: a flat JSON object for the perf_harness output block
//     (validated by tools/check_bench_json.py).

#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace papd {
namespace obs {

// Chrome trace_event JSON ("traceEvents" array form) for the given events.
// Timestamps are simulated microseconds; pid = shard, so Perfetto shows one
// process track per rack socket.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

// CSV time series of the registry's per-period snapshots: header row of
// "t_s" + scalar metric names, one data row per Snapshot() call.  Rows
// taken before a metric was registered are padded with 0.
std::string MetricsCsv(const MetricsRegistry& registry);

// Flat JSON object: scalar metrics as numbers, histograms as
// {"count": N, "sum": S, "buckets": [[upper_bound, count], ...]}.
std::string MetricsJson(const MetricsSnapshot& metrics);

// Writes `content` to `path`; returns false (and logs) on failure.
bool WriteFile(const std::string& path, const std::string& content);

}  // namespace obs
}  // namespace papd

#endif  // SRC_OBS_EXPORT_H_
