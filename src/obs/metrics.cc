#include "src/obs/metrics.h"

#include <algorithm>

#include "src/common/check.h"

namespace papd {
namespace obs {

Histogram::Histogram(std::vector<double> upper_bounds) : upper_bounds_(std::move(upper_bounds)) {
  PAPD_CHECK(!upper_bounds_.empty());
  PAPD_CHECK(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()))
      << " histogram bucket bounds must be ascending";
  counts_.assign(upper_bounds_.size() + 1, 0);
}

void Histogram::Observe(double v) {
  size_t b = 0;
  while (b < upper_bounds_.size() && v > upper_bounds_[b]) {
    b++;
  }
  counts_[b]++;
  total_++;
  sum_ += v;
}

MetricsRegistry::Scalar* MetricsRegistry::FindScalar(const std::string& name) {
  for (Scalar& s : scalars_) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

const MetricsRegistry::Scalar* MetricsRegistry::FindScalar(const std::string& name) const {
  for (const Scalar& s : scalars_) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  if (Scalar* s = FindScalar(name)) {
    PAPD_CHECK(s->counter != nullptr) << " metric '" << name << "' already registered as gauge";
    return s->counter.get();
  }
  scalars_.push_back(Scalar{.name = name, .counter = std::make_unique<Counter>()});
  scalar_names_.push_back(name);
  return scalars_.back().counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  if (Scalar* s = FindScalar(name)) {
    PAPD_CHECK(s->gauge != nullptr) << " metric '" << name << "' already registered as counter";
    return s->gauge.get();
  }
  scalars_.push_back(Scalar{.name = name, .gauge = std::make_unique<Gauge>()});
  scalar_names_.push_back(name);
  return scalars_.back().gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  for (NamedHistogram& h : histograms_) {
    if (h.name == name) {
      return h.histogram.get();
    }
  }
  histograms_.push_back(
      NamedHistogram{name, std::make_unique<Histogram>(std::move(upper_bounds))});
  return histograms_.back().histogram.get();
}

void MetricsRegistry::Snapshot(Seconds t) {
  Row row;
  row.t = t;
  row.values.reserve(scalars_.size());
  for (const Scalar& s : scalars_) {
    row.values.push_back(s.value());
  }
  rows_.push_back(std::move(row));
}

MetricsSnapshot MetricsRegistry::Export() const {
  MetricsSnapshot out;
  out.reserve(scalars_.size() + histograms_.size());
  for (const Scalar& s : scalars_) {
    MetricValue v;
    v.name = s.name;
    v.kind = s.counter != nullptr ? MetricValue::Kind::kCounter : MetricValue::Kind::kGauge;
    v.value = s.value();
    out.push_back(std::move(v));
  }
  for (const NamedHistogram& h : histograms_) {
    MetricValue v;
    v.name = h.name;
    v.kind = MetricValue::Kind::kHistogram;
    v.value = h.histogram->sum();
    v.count = h.histogram->total();
    v.upper_bounds = h.histogram->upper_bounds();
    v.bucket_counts = h.histogram->counts();
    out.push_back(std::move(v));
  }
  return out;
}

double MetricsRegistry::ScalarValue(const std::string& name, double fallback) const {
  const Scalar* s = FindScalar(name);
  return s != nullptr ? s->value() : fallback;
}

}  // namespace obs
}  // namespace papd
