// Metrics registry: named counters, gauges and fixed-bucket histograms,
// snapshotted into a per-period time series.
//
// The registry is the one source of truth for operational counters — the
// daemon's degradation bookkeeping and turbostat's telemetry-validation
// counts both live here, so the two can never disagree (they used to be
// tracked separately and drift).  Metrics are registered lazily by name;
// Get* returns a stable pointer the owner caches and bumps on the hot path
// (one add/store, no map lookup).
//
// Snapshot(t) appends the current value of every scalar metric (counters
// and gauges) as one time-series row; the daemon calls it once per control
// period, which is what the CSV exporter turns into a per-period trace.
// Histograms are not part of the row (they are distributions, not
// time-points) and are exported whole.
//
// A registry belongs to one component (one PowerDaemon); it is not
// thread-safe.  Rack shards each own their daemon's registry, so parallel
// racks never share one.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace papd {
namespace obs {

class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  // Metrics are unit-erased doubles by design (one exporter schema); this
  // is the sanctioned bridge for typed quantities, mirroring
  // obs::ToPayload for trace events.
  template <class Tag>
  void Set(Quantity<Tag> q) {
    Set(q.value());
  }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Fixed upper-bound buckets plus an implicit +inf overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);
  // Unit-erasing bridge; see Gauge::Set.
  template <class Tag>
  void Observe(Quantity<Tag> q) {
    Observe(q.value());
  }

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  // counts().size() == upper_bounds().size() + 1 (last = overflow).
  const std::vector<uint64_t>& counts() const { return counts_; }
  uint64_t total() const { return total_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> upper_bounds_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  double sum_ = 0.0;
};

// One exported metric, by value (safe to keep after the registry dies —
// ScenarioResult carries these out of the run).
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  // Counter/gauge: the value.  Histogram: the sum of observations.
  double value = 0.0;
  // Histogram only.
  uint64_t count = 0;
  std::vector<double> upper_bounds;
  std::vector<uint64_t> bucket_counts;
};

using MetricsSnapshot = std::vector<MetricValue>;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Lazily registers; returns a stable pointer.  Registering the same name
  // twice returns the same metric; a name registered as one kind must not
  // be re-requested as another.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name, std::vector<double> upper_bounds);

  // Appends one time-series row with the current value of every scalar
  // metric, in registration order.  Metrics registered after the first
  // snapshot extend later rows; the CSV exporter pads earlier rows.
  void Snapshot(Seconds t);

  struct Row {
    Seconds t{0.0};
    std::vector<double> values;  // Parallel to scalar_names() at snapshot time.
  };
  const std::vector<Row>& rows() const { return rows_; }
  // Scalar (counter + gauge) metric names, registration order.
  const std::vector<std::string>& scalar_names() const { return scalar_names_; }

  // Everything, by value.
  MetricsSnapshot Export() const;

  // The scalar metric's current value, or `fallback` when not registered.
  double ScalarValue(const std::string& name, double fallback = 0.0) const;

 private:
  struct Scalar {
    std::string name;
    std::unique_ptr<Counter> counter;  // Exactly one of the two is set.
    std::unique_ptr<Gauge> gauge;
    double value() const {
      return counter != nullptr ? static_cast<double>(counter->value()) : gauge->value();
    }
  };
  struct NamedHistogram {
    std::string name;
    std::unique_ptr<Histogram> histogram;
  };

  Scalar* FindScalar(const std::string& name);
  const Scalar* FindScalar(const std::string& name) const;

  std::vector<Scalar> scalars_;
  std::vector<std::string> scalar_names_;
  std::vector<NamedHistogram> histograms_;
  std::vector<Row> rows_;
};

}  // namespace obs
}  // namespace papd

#endif  // SRC_OBS_METRICS_H_
