#include "src/obs/trace.h"

#include <algorithm>
#include <atomic>

#include "src/common/check.h"

namespace papd {
namespace obs {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kPeriodBegin:
      return "period-begin";
    case TraceEventType::kPeriodEnd:
      return "period-end";
    case TraceEventType::kRedistribute:
      return "redistribute";
    case TraceEventType::kAppTarget:
      return "app-target";
    case TraceEventType::kMinFundingRevoke:
      return "min-funding-revoke";
    case TraceEventType::kLadderTransition:
      return "ladder-transition";
    case TraceEventType::kPstateWrite:
      return "pstate-write";
    case TraceEventType::kRackGrant:
      return "rack-grant";
    case TraceEventType::kClusterGrant:
      return "cluster-grant";
    case TraceEventType::kSloShift:
      return "slo-shift";
  }
  return "?";
}

ThreadTraceContext& ThreadTrace() {
  thread_local ThreadTraceContext ctx;
  return ctx;
}

namespace {

std::atomic<uint64_t> g_next_recorder_id{1};

// Per-thread cache of (recorder id -> ring).  Keyed by the process-unique
// recorder id, never the pointer: a destroyed recorder's id is never
// reused, so a stale entry can never match (and its dangling ring pointer
// is never dereferenced).  Entries accumulate per recorder ever used on
// this thread — bounded by test/recorder churn, a few dozen at most.
struct ThreadRingCache {
  std::vector<std::pair<uint64_t, void*>> entries;
};

ThreadRingCache& RingCache() {
  thread_local ThreadRingCache cache;
  return cache;
}

}  // namespace

TraceRecorder::TraceRecorder(size_t ring_capacity)
    : id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(ring_capacity) {
  PAPD_CHECK_GE(capacity_, 1u);
}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::Ring* TraceRecorder::ThreadRing() {
  ThreadRingCache& cache = RingCache();
  for (const auto& [id, ring] : cache.entries) {
    if (id == id_) {
      return static_cast<Ring*>(ring);
    }
  }
  // First event from this thread: register a fresh ring.  This is the only
  // locked step; every later event from the thread hits the cache above.
  auto ring = std::make_unique<Ring>(capacity_);
  Ring* raw = ring.get();
  {
    MutexLock lock(mu_);
    rings_.push_back(std::move(ring));
  }
  cache.entries.emplace_back(id_, raw);
  return raw;
}

void TraceRecorder::OnEvent(const TraceEvent& event) {
  Ring* ring = ThreadRing();
  ring->buf[ring->head % capacity_] = event;
  ring->head++;
}

std::vector<TraceEvent> TraceRecorder::Drain() const {
  MutexLock lock(mu_);
  std::vector<TraceEvent> out;
  for (const auto& ring : rings_) {
    const uint64_t kept = std::min<uint64_t>(ring->head, capacity_);
    // Oldest retained event first.
    for (uint64_t k = 0; k < kept; k++) {
      out.push_back(ring->buf[(ring->head - kept + k) % capacity_]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& x, const TraceEvent& y) { return x.t < y.t; });
  return out;
}

uint64_t TraceRecorder::recorded() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->head;
  }
  return total;
}

uint64_t TraceRecorder::dropped() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    if (ring->head > capacity_) {
      total += ring->head - capacity_;
    }
  }
  return total;
}

int TraceRecorder::num_threads() const {
  MutexLock lock(mu_);
  return static_cast<int>(rings_.size());
}

}  // namespace obs
}  // namespace papd
