// Per-period tracing: typed events, the ObsSink interface, and a
// lock-free-per-thread ring-buffer recorder.
//
// The daemon is a 1 Hz feedback controller; diagnosing a power-capping
// policy needs per-decision time-series visibility (which app lost budget
// in which period, when the degradation ladder moved, whether a P-state
// write verified), not just end-of-run aggregates.  Every decision point
// emits a fixed-size typed TraceEvent into an ObsSink:
//
//   kPeriodBegin/kPeriodEnd   one daemon control period (B/E pair)
//   kRedistribute             policy redistribution ran (power delta, #apps)
//   kAppTarget                per-app target before/after a redistribution
//   kMinFundingRevoke         an entry was pinned at a bound and revoked
//   kLadderTransition         degradation-ladder state change
//   kPstateWrite              P-state program + read-back verification
//   kRackGrant                rack arbiter budget grant to one socket
//   kClusterGrant             budget-tree arbiter grant to one tree node
//   kSloShift                 SLO-feedback arbiter moved a node's share bias
//
// Emission has two paths:
//   - components holding an ObsSink* (PowerDaemon, GovernorDaemon, Rack)
//     call OnEvent directly, guarded by a null check;
//   - deep library code (min-funding revocation) uses the PAPD_TRACE_*
//     macros, which read a thread-local context installed by whoever drives
//     the thread (ScopedThreadTrace).  With no sink installed the macros
//     compile to a thread-local load plus a branch-on-null — cheap enough
//     that tracing support costs nothing when disabled.
//
// TraceRecorder is the standard sink: each recording thread gets its own
// fixed-capacity ring buffer (registered once under a mutex, then written
// lock-free), so concurrent rack shards trace safely without serializing.
// Drain() merges the rings; it must only run while no thread is recording
// (after a ThreadPool barrier or join).

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"

namespace papd {
namespace obs {

enum class TraceEventType : uint8_t {
  kPeriodBegin = 0,
  kPeriodEnd,
  kRedistribute,
  kAppTarget,
  kMinFundingRevoke,
  kLadderTransition,
  kPstateWrite,
  kRackGrant,
  kClusterGrant,
  kSloShift,
};

inline constexpr int kNumTraceEventTypes = 10;

const char* TraceEventTypeName(TraceEventType type);

// Event-specific payload value: the unit depends on the event type (see the
// table below) — watts, MHz, microseconds, or a count.  Payloads are raw
// doubles by design (one fixed-size event struct for every event type);
// ToPayload is the sanctioned unit-erasing bridge, so emission sites can
// pass typed quantities without unwrapping them locally.
using TracePayload = double;

constexpr TracePayload ToPayload(double v) { return v; }
template <class Tag>
constexpr TracePayload ToPayload(Quantity<Tag> q) {
  return q.value();
}

// One fixed-size typed event.  The payload fields are event-specific:
//
//   type              index          code                 a            b
//   kPeriodBegin      period #       ladder state         pkg_w        limit_w
//   kPeriodEnd        period #       ladder state         latency_us   -
//   kRedistribute     app count      1 = targets changed  pkg_w-limit  -
//   kAppTarget        app index      1 = changed          before MHz   after MHz
//   kMinFundingRevoke entry index    0 = min, 1 = max     pinned value -
//   kLadderTransition old state      new state            bad streak   -
//   kPstateWrite      app count      1 = verified ok      max MHz      min MHz
//   kRackGrant        socket index   arbiter kind         grant W      measured W
//   kClusterGrant     node index     tree level           grant W      reported W
//   kSloShift         node index     tree level           bias after   p90 seconds
struct TraceEvent {
  Seconds t;  // Simulated time the event belongs to.
  TraceEventType type = TraceEventType::kPeriodBegin;
  int16_t shard = 0;  // Rack socket (0 for single-socket runs).
  int32_t index = -1;
  int32_t code = 0;
  TracePayload a = 0.0;
  TracePayload b = 0.0;
};

// Receiver of trace events.  Tests implement this to assert on emitted
// events; TraceRecorder is the standard ring-buffer implementation.
// OnEvent may be called concurrently from multiple threads (rack shards);
// implementations must be thread-safe.
class ObsSink {
 public:
  virtual ~ObsSink() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
};

// --- Thread-local trace context (PAPD_TRACE_* macros) ------------------------

// The context deep library code records through.  Installed by the
// component driving the thread (PowerDaemon::Step, GovernorDaemon::Step),
// which also stamps the current simulated time and shard.
struct ThreadTraceContext {
  ObsSink* sink = nullptr;
  Seconds t;
  int16_t shard = 0;
};

ThreadTraceContext& ThreadTrace();

// RAII installer; restores the previous context on destruction so nested
// scopes (rack arbiter driving per-socket daemons) compose.
class ScopedThreadTrace {
 public:
  ScopedThreadTrace(ObsSink* sink, Seconds t, int16_t shard) : saved_(ThreadTrace()) {
    ThreadTrace() = ThreadTraceContext{sink, t, shard};
  }
  ~ScopedThreadTrace() { ThreadTrace() = saved_; }

  ScopedThreadTrace(const ScopedThreadTrace&) = delete;
  ScopedThreadTrace& operator=(const ScopedThreadTrace&) = delete;

 private:
  ThreadTraceContext saved_;
};

// Generic emission through the thread context: one TLS load and a
// branch-on-null when tracing is disabled.  Arguments are not evaluated
// when no sink is installed.
#define PAPD_TRACE_EVENT(type_, index_, code_, a_, b_)                              \
  do {                                                                              \
    ::papd::obs::ThreadTraceContext& papd_trace_ctx_ = ::papd::obs::ThreadTrace();  \
    if (papd_trace_ctx_.sink != nullptr) {                                          \
      ::papd::obs::TraceEvent papd_trace_ev_;                                       \
      papd_trace_ev_.t = papd_trace_ctx_.t;                                         \
      papd_trace_ev_.type = (type_);                                                \
      papd_trace_ev_.shard = papd_trace_ctx_.shard;                                 \
      papd_trace_ev_.index = static_cast<int32_t>(index_);                          \
      papd_trace_ev_.code = static_cast<int32_t>(code_);                            \
      papd_trace_ev_.a = ::papd::obs::ToPayload(a_);                                \
      papd_trace_ev_.b = ::papd::obs::ToPayload(b_);                                \
      papd_trace_ctx_.sink->OnEvent(papd_trace_ev_);                                \
    }                                                                               \
  } while (0)

// Min-funding revocation: `entry` pinned at its minimum (at_max == false)
// or maximum (at_max == true) bound with `value` resource units.
#define PAPD_TRACE_REVOKE(entry_, value_, at_max_) \
  PAPD_TRACE_EVENT(::papd::obs::TraceEventType::kMinFundingRevoke, entry_, (at_max_) ? 1 : 0, value_, 0.0)

// --- Ring-buffer recorder ----------------------------------------------------

inline constexpr size_t kDefaultRingCapacity = 1 << 16;

// The standard sink: per-thread fixed rings, oldest events overwritten on
// wrap.  Ring registration (first event from a new thread) takes a mutex;
// every later event is a plain array store — no atomics, no locks — so
// concurrent shards never contend.  Drain()/recorded()/dropped() must only
// be called while recording threads are quiescent (joined or past a
// ThreadPool barrier).
class TraceRecorder : public ObsSink {
 public:
  explicit TraceRecorder(size_t ring_capacity = kDefaultRingCapacity);
  ~TraceRecorder() override;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void OnEvent(const TraceEvent& event) override PAPD_EXCLUDES(mu_);

  // All retained events, merged across threads and sorted by time (stable:
  // same-time events keep per-thread order).
  std::vector<TraceEvent> Drain() const PAPD_EXCLUDES(mu_);

  // Total events accepted / overwritten by ring wrap, across all threads.
  uint64_t recorded() const PAPD_EXCLUDES(mu_);
  uint64_t dropped() const PAPD_EXCLUDES(mu_);

  size_t ring_capacity() const { return capacity_; }
  int num_threads() const PAPD_EXCLUDES(mu_);

 private:
  struct Ring {
    explicit Ring(size_t capacity) : buf(capacity) {}
    std::vector<TraceEvent> buf;
    uint64_t head = 0;  // Total writes; slot = head % capacity.
  };

  Ring* ThreadRing() PAPD_EXCLUDES(mu_);

  const uint64_t id_;  // Process-unique; keys the thread-local ring cache.
  const size_t capacity_;
  // Guards the rings_ *vector* (registration and the Drain walk).  The Ring
  // contents are written lock-free by their owning thread; the quiescence
  // contract above is what makes Drain's reads safe.
  mutable Mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_ PAPD_GUARDED_BY(mu_);
};

}  // namespace obs

// Components take a papd::ObsSink*; the implementation lives in obs::.
using ObsSink = obs::ObsSink;

}  // namespace papd

#endif  // SRC_OBS_TRACE_H_
