#include "src/platform/platform_spec.h"

namespace papd {

Mhz PlatformSpec::TurboLimitMhz(int active_cores) const {
  for (const TurboStep& step : turbo_ladder) {
    if (active_cores <= step.max_active_cores) {
      return step.mhz;
    }
  }
  // More active cores than the ladder covers: all-core limit.
  return turbo_ladder.empty() ? base_max_mhz : turbo_ladder.back().mhz;
}

Mhz PlatformSpec::AvxCapMhz(int avx_active_cores) const {
  if (avx_active_cores <= 0) {
    return turbo_max_mhz;
  }
  return avx_active_cores <= avx_light_cores ? avx_max_mhz_light : avx_max_mhz_heavy;
}

PlatformSpec SkylakeXeon4114() {
  PlatformSpec spec{
      .name = "Skylake (Xeon SP 4114)",
      .num_cores = 10,
      .min_mhz = Mhz{800},
      .base_max_mhz = Mhz{2200},
      .step_mhz = Mhz{100},
      .turbo_max_mhz = Mhz{3000},
      // Single/dual core turbo 3.0 GHz, stepping down to the 2.6 GHz
      // all-core limit (the paper's Figure 4 observes ~2.5-2.65 GHz with all
      // ten cores active).
      .turbo_ladder = {{2, Mhz{3000}}, {4, Mhz{2900}}, {8, Mhz{2800}}, {10, Mhz{2600}}},
      .avx_max_mhz_light = Mhz{1900},
      .avx_max_mhz_heavy = Mhz{1700},
      .avx_light_cores = 2,
      .tdp_w = Watts{85},
      .rapl_min_w = Watts{20},
      .rapl_max_w = Watts{85},
      .has_rapl_limit = true,
      .has_per_core_power = false,
      .max_simultaneous_pstates = 0,
      .voltage = VoltageCurve({{Mhz{800}, Volts{0.65}}, {Mhz{2200}, Volts{1.00}}, {Mhz{3000}, Volts{1.15}}}),
      .power =
          {
              .ceff_w_per_v2ghz = 2.2,
              .leak_ref_w = Watts{1.0},
              .leak_ref_volts = Volts{1.0},
              .clock_gate_w = Watts{0.30},
              .cstate_idle_w = Watts{0.05},
              .uncore_base_w = Watts{7.0},
              .uncore_per_active_w = Watts{0.30},
          },
      .tsc_mhz = Mhz{2200},
      .thermal = {.ambient_c = 40.0,
                  .r_core_c_per_w = 2.2,
                  .spread_fraction = 0.08,
                  .tau_s = Seconds{3.0},
                  .tj_max_c = 95.0},
  };
  return spec;
}

PlatformSpec Ryzen1700X() {
  PlatformSpec spec{
      .name = "Ryzen 1700X",
      .num_cores = 8,
      .min_mhz = Mhz{800},
      .base_max_mhz = Mhz{3400},
      .step_mhz = Mhz{25},
      .turbo_max_mhz = Mhz{3800},
      // Precision Boost to 3.8 GHz (XFR) on up to two cores, 3.5 GHz on
      // four, 3.4 GHz all-core.
      .turbo_ladder = {{2, Mhz{3800}}, {4, Mhz{3500}}, {8, Mhz{3400}}},
      .avx_max_mhz_light = Mhz{3400},
      .avx_max_mhz_heavy = Mhz{3200},
      .avx_light_cores = 2,
      .tdp_w = Watts{95},
      .rapl_min_w = Watts{0},
      .rapl_max_w = Watts{0},
      .has_rapl_limit = false,
      .has_per_core_power = true,
      .max_simultaneous_pstates = 3,
      .voltage = VoltageCurve({{Mhz{800}, Volts{0.75}}, {Mhz{2200}, Volts{1.00}}, {Mhz{3400}, Volts{1.35}}, {Mhz{3800}, Volts{1.45}}}),
      .power =
          {
              .ceff_w_per_v2ghz = 1.5,
              .leak_ref_w = Watts{1.2},
              .leak_ref_volts = Volts{1.35},
              .clock_gate_w = Watts{0.25},
              .cstate_idle_w = Watts{0.04},
              .uncore_base_w = Watts{6.0},
              .uncore_per_active_w = Watts{0.20},
          },
      .tsc_mhz = Mhz{3400},
      .thermal = {.ambient_c = 40.0,
                  .r_core_c_per_w = 2.0,
                  .spread_fraction = 0.10,
                  .tau_s = Seconds{2.5},
                  .tj_max_c = 95.0},
  };
  return spec;
}

PlatformSpec ManyCoreXeon64() {
  PlatformSpec spec{
      .name = "ManyCore Xeon 64",
      .num_cores = 64,
      .min_mhz = Mhz{800},
      .base_max_mhz = Mhz{2600},
      .step_mhz = Mhz{100},
      .turbo_max_mhz = Mhz{3700},
      // Ladder extrapolated from the Skylake shape: a few hot cores reach
      // 3.7 GHz, the all-core limit settles at 2.7 GHz.
      .turbo_ladder = {{2, Mhz{3700}}, {4, Mhz{3500}}, {8, Mhz{3300}}, {16, Mhz{3100}}, {32, Mhz{2900}}, {64, Mhz{2700}}},
      .avx_max_mhz_light = Mhz{2400},
      .avx_max_mhz_heavy = Mhz{2000},
      .avx_light_cores = 8,
      .tdp_w = Watts{270},
      .rapl_min_w = Watts{90},
      .rapl_max_w = Watts{350},
      .has_rapl_limit = true,
      .has_per_core_power = false,
      .max_simultaneous_pstates = 0,
      .voltage = VoltageCurve({{Mhz{800}, Volts{0.65}}, {Mhz{2600}, Volts{1.00}}, {Mhz{3700}, Volts{1.20}}}),
      .power =
          {
              .ceff_w_per_v2ghz = 2.0,
              .leak_ref_w = Watts{0.9},
              .leak_ref_volts = Volts{1.0},
              .clock_gate_w = Watts{0.25},
              .cstate_idle_w = Watts{0.05},
              // Mesh + memory controllers; grows noticeably with load.
              .uncore_base_w = Watts{25.0},
              .uncore_per_active_w = Watts{0.15},
          },
      .tsc_mhz = Mhz{2600},
      .thermal = {.ambient_c = 40.0,
                  .r_core_c_per_w = 1.8,
                  .spread_fraction = 0.04,
                  .tau_s = Seconds{4.0},
                  .tj_max_c = 95.0},
  };
  return spec;
}

PlatformSpec ManyCoreEpyc128() {
  PlatformSpec spec{
      .name = "ManyCore EPYC 128",
      .num_cores = 128,
      .min_mhz = Mhz{800},
      .base_max_mhz = Mhz{2400},
      .step_mhz = Mhz{25},
      .turbo_max_mhz = Mhz{3500},
      .turbo_ladder = {{8, Mhz{3500}}, {16, Mhz{3300}}, {32, Mhz{3100}}, {64, Mhz{2900}}, {128, Mhz{2600}}},
      .avx_max_mhz_light = Mhz{2600},
      .avx_max_mhz_heavy = Mhz{2200},
      .avx_light_cores = 16,
      .tdp_w = Watts{360},
      .rapl_min_w = Watts{120},
      .rapl_max_w = Watts{450},
      // Modern AMD parts support package power limiting and per-core energy
      // telemetry, without the Zen-1 three-P-state front-end restriction.
      .has_rapl_limit = true,
      .has_per_core_power = true,
      .max_simultaneous_pstates = 0,
      .voltage = VoltageCurve({{Mhz{800}, Volts{0.70}}, {Mhz{2400}, Volts{0.95}}, {Mhz{3500}, Volts{1.30}}}),
      .power =
          {
              .ceff_w_per_v2ghz = 1.2,
              .leak_ref_w = Watts{0.8},
              .leak_ref_volts = Volts{1.30},
              .clock_gate_w = Watts{0.20},
              .cstate_idle_w = Watts{0.04},
              // The IO die dominates idle power on chiplet parts.
              .uncore_base_w = Watts{40.0},
              .uncore_per_active_w = Watts{0.10},
          },
      .tsc_mhz = Mhz{2400},
      .thermal = {.ambient_c = 40.0,
                  .r_core_c_per_w = 1.5,
                  .spread_fraction = 0.03,
                  .tau_s = Seconds{5.0},
                  .tj_max_c = 95.0},
  };
  return spec;
}

}  // namespace papd
