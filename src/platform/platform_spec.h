// Platform descriptors for the two processors the paper evaluates
// (Table 1): Intel Xeon SP 4114 "Skylake" and AMD Ryzen 1700X.
//
// A PlatformSpec captures everything the simulator and the policies need to
// know about a part: the programmable frequency grid, the opportunistic
// (turbo) frequency ladder, the AVX frequency caps, the voltage curve, the
// analytic power-model coefficients, and the feature flags that decide which
// policies are implementable (per-core power telemetry, RAPL limiting, the
// Ryzen three-simultaneous-P-state restriction).

#ifndef SRC_PLATFORM_PLATFORM_SPEC_H_
#define SRC_PLATFORM_PLATFORM_SPEC_H_

#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/platform/pstate.h"
#include "src/platform/voltage_curve.h"

namespace papd {

// One rung of the opportunistic-scaling ladder: with at most
// `max_active_cores` cores in C0, frequencies up to `mhz` are reachable.
// Entries are sorted by increasing max_active_cores; the last entry covers
// all cores and equals the all-core turbo limit.
struct TurboStep {
  int max_active_cores;
  Mhz mhz;
};

// Coefficients of the analytic power model (see src/cpusim/power_model.h):
//   P_core = leakage(V) + ceff * activity * V^2 * f_ghz * busy
//            + clock_gate_w * (1 - busy)            [while in C0]
//   P_core = cstate_idle_w                          [while offline / deep C]
//   P_uncore = uncore_base_w + uncore_per_active_w * active_cores
struct PowerModelParams {
  // Effective switched capacitance in W / (V^2 * GHz) for activity 1.0.
  double ceff_w_per_v2ghz;
  // Leakage at leak_ref_volts; scales with (V / leak_ref_volts)^2.
  Watts leak_ref_w;
  Volts leak_ref_volts;
  // Residual clock/idle power of an online but idle core.
  Watts clock_gate_w;
  // Deep C-state (offlined core) power.
  Watts cstate_idle_w;
  Watts uncore_base_w;
  Watts uncore_per_active_w;
};

// Lumped RC thermal parameters (see src/cpusim/thermal.h).
struct PlatformThermal {
  double ambient_c = 40.0;
  double r_core_c_per_w = 2.2;
  double spread_fraction = 0.08;
  Seconds tau_s{3.0};
  double tj_max_c = 95.0;
};

struct PlatformSpec {
  std::string name;
  int num_cores;

  // Programmable grid (non-turbo region).
  Mhz min_mhz;
  Mhz base_max_mhz;
  Mhz step_mhz;
  // Absolute maximum (single-core turbo / XFR).
  Mhz turbo_max_mhz;
  std::vector<TurboStep> turbo_ladder;

  // AVX-heavy code is limited to lower frequencies (paper Figures 1-2).
  // Two-level model: a cap with few AVX-active cores and a lower cap when
  // more than avx_light_cores cores run AVX code simultaneously.
  Mhz avx_max_mhz_light;
  Mhz avx_max_mhz_heavy;
  int avx_light_cores;

  Watts tdp_w;
  // RAPL-programmable limit range (Skylake: 20-85 W).
  Watts rapl_min_w;
  Watts rapl_max_w;

  // Feature flags (paper Table 1).
  bool has_rapl_limit;       // Hardware power capping available.
  bool has_per_core_power;   // Per-core energy telemetry (Ryzen only).
  // Maximum number of distinct simultaneous frequencies; 0 = unlimited
  // (Skylake), 3 on Ryzen.
  int max_simultaneous_pstates;

  VoltageCurve voltage;
  PowerModelParams power;

  // TSC / MPERF reference frequency.
  Mhz tsc_mhz;

  PlatformThermal thermal;

  // The grid covering min..turbo_max (software can always request turbo
  // frequencies; hardware grants them only when the ladder allows).
  PStateTable PStates() const { return PStateTable(min_mhz, turbo_max_mhz, step_mhz); }

  // Highest frequency grantable with `active_cores` cores in C0.
  Mhz TurboLimitMhz(int active_cores) const;

  // AVX frequency cap given the number of AVX-active cores.
  Mhz AvxCapMhz(int avx_active_cores) const;
};

// Intel Xeon SP 4114 (one socket of the paper's two-socket machine):
// 10 cores, 0.8-2.2 GHz base grid in 100 MHz steps, 3.0 GHz max turbo,
// RAPL capping 20-85 W, no per-core power telemetry.
PlatformSpec SkylakeXeon4114();

// AMD Ryzen 1700X: 8 cores, 0.8-3.4 GHz grid in 25 MHz steps, 3.8 GHz XFR,
// per-core power telemetry, no RAPL limiting, only 3 simultaneous P-states.
PlatformSpec Ryzen1700X();

// Projected 64-core server part extrapolating the Skylake model to modern
// core counts (Ice Lake-SP / Sapphire Rapids class): deeper turbo ladder,
// wider RAPL range, larger uncore.  Not from the paper's Table 1; used for
// the many-core and rack scaling studies (EXPERIMENTS.md A10).
PlatformSpec ManyCoreXeon64();

// Projected 128-core chiplet server part (EPYC class): 25 MHz grid,
// per-core power telemetry, package-level power capping, big IO-die uncore.
PlatformSpec ManyCoreEpyc128();

}  // namespace papd

#endif  // SRC_PLATFORM_PLATFORM_SPEC_H_
