#include "src/platform/pstate.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace papd {

PStateTable::PStateTable(Mhz min_mhz, Mhz max_mhz, Mhz step_mhz) : step_mhz_(step_mhz) {
  assert(step_mhz > Mhz{0.0});
  assert(min_mhz > Mhz{0.0});
  assert(max_mhz >= min_mhz);
  // Build descending so index 0 == P0 == fastest.
  const int steps = static_cast<int>(std::round((max_mhz - min_mhz) / step_mhz));
  for (int i = steps; i >= 0; i--) {
    freqs_.push_back(min_mhz + step_mhz * i);
  }
}

// The table's grid is anchored at min_mhz, so quantization delegates to the
// zero-anchored helpers in src/common/units.h on the offset from min_mhz.

Mhz PStateTable::QuantizeDown(Mhz mhz) const {
  if (mhz <= min_mhz()) {
    return min_mhz();
  }
  if (mhz >= max_mhz()) {
    return max_mhz();
  }
  return min_mhz() + QuantizeDownToGrid(mhz - min_mhz(), step_mhz_);
}

Mhz PStateTable::QuantizeUp(Mhz mhz) const {
  if (mhz <= min_mhz()) {
    return min_mhz();
  }
  if (mhz >= max_mhz()) {
    return max_mhz();
  }
  return min_mhz() + QuantizeUpToGrid(mhz - min_mhz(), step_mhz_);
}

Mhz PStateTable::QuantizeNearest(Mhz mhz) const {
  if (mhz <= min_mhz()) {
    return min_mhz();
  }
  if (mhz >= max_mhz()) {
    return max_mhz();
  }
  return min_mhz() + QuantizeNearestToGrid(mhz - min_mhz(), step_mhz_);
}

size_t PStateTable::IndexOf(Mhz mhz) const {
  const Mhz q{QuantizeNearest(mhz)};
  const double from_top = (max_mhz() - q) / step_mhz_;
  return static_cast<size_t>(std::round(from_top));
}

bool PStateTable::OnGrid(Mhz mhz) const {
  if (mhz < min_mhz() - Mhz{1e-6} || mhz > max_mhz() + Mhz{1e-6}) {
    return false;
  }
  return OnFrequencyGrid(mhz - min_mhz(), step_mhz_);
}

}  // namespace papd
