// P-state tables: the discrete frequency grid software can program.
//
// Modeled after the two interfaces the paper uses (Section 2.1): Intel
// exposes 100 MHz frequency steps through PERF_CTL ratios, AMD Ryzen exposes
// 25 MHz steps through its P-state definition MSRs.

#ifndef SRC_PLATFORM_PSTATE_H_
#define SRC_PLATFORM_PSTATE_H_

#include <cstddef>
#include <vector>

#include "src/common/units.h"

namespace papd {

// A discrete, evenly spaced frequency grid from min_mhz to max_mhz
// (inclusive) in step_mhz increments.  Index 0 is the *highest* frequency,
// matching ACPI P-state numbering where P0 is the fastest state.
class PStateTable {
 public:
  PStateTable(Mhz min_mhz, Mhz max_mhz, Mhz step_mhz);

  size_t size() const { return freqs_.size(); }
  // Frequency of P-state `index`; index 0 is the fastest.
  Mhz FrequencyOf(size_t index) const { return freqs_[index]; }

  Mhz min_mhz() const { return freqs_.back(); }
  Mhz max_mhz() const { return freqs_.front(); }
  Mhz step_mhz() const { return step_mhz_; }

  // Largest grid frequency <= mhz; returns min_mhz when mhz is below range.
  Mhz QuantizeDown(Mhz mhz) const;

  // Smallest grid frequency >= mhz; returns max_mhz when mhz is above range.
  Mhz QuantizeUp(Mhz mhz) const;

  // Closest grid frequency.
  Mhz QuantizeNearest(Mhz mhz) const;

  // P-state index whose frequency is QuantizeNearest(mhz).
  size_t IndexOf(Mhz mhz) const;

  // True if mhz lies exactly on the grid (within floating-point slop).
  bool OnGrid(Mhz mhz) const;

 private:
  std::vector<Mhz> freqs_;  // Descending.
  Mhz step_mhz_;
};

}  // namespace papd

#endif  // SRC_PLATFORM_PSTATE_H_
