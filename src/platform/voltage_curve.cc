#include "src/platform/voltage_curve.h"

#include <cassert>
#include <cstddef>

namespace papd {

VoltageCurve::VoltageCurve(std::vector<Point> points) : points_(std::move(points)) {
  assert(!points_.empty());
  for (size_t i = 1; i < points_.size(); i++) {
    assert(points_[i].mhz > points_[i - 1].mhz);
  }
}

Volts VoltageCurve::At(Mhz mhz) const {
  if (mhz <= points_.front().mhz) {
    return points_.front().volts;
  }
  if (mhz >= points_.back().mhz) {
    return points_.back().volts;
  }
  for (size_t i = 1; i < points_.size(); i++) {
    if (mhz <= points_[i].mhz) {
      const Point& a = points_[i - 1];
      const Point& b = points_[i];
      const double t = (mhz - a.mhz) / (b.mhz - a.mhz);
      return a.volts + t * (b.volts - a.volts);
    }
  }
  return points_.back().volts;
}

}  // namespace papd
