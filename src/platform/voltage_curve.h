// Voltage/frequency operating curve.
//
// DVFS power scaling (paper Section 2.1: P_dyn proportional to V^2 * f)
// requires a voltage for every programmable frequency.  Real parts encode
// this in fused VID tables; we model it as a piecewise-linear curve through
// a small set of published operating points.

#ifndef SRC_PLATFORM_VOLTAGE_CURVE_H_
#define SRC_PLATFORM_VOLTAGE_CURVE_H_

#include <vector>

#include "src/common/units.h"

namespace papd {

class VoltageCurve {
 public:
  struct Point {
    Mhz mhz;
    Volts volts;
  };

  // Points must be strictly increasing in frequency; at least one required.
  explicit VoltageCurve(std::vector<Point> points);

  // Linear interpolation between points; clamped at the ends.
  Volts At(Mhz mhz) const;

  Volts min_volts() const { return points_.front().volts; }
  Volts max_volts() const { return points_.back().volts; }

 private:
  std::vector<Point> points_;
};

}  // namespace papd

#endif  // SRC_PLATFORM_VOLTAGE_CURVE_H_
