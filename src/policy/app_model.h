// Configuration inputs to the power-delivery policies.
//
// The paper's daemon "takes a list of programs as input with their priority
// and shares" (Section 5).  ManagedApp is one entry of that list; the
// policies additionally need the coarse platform constants used by the
// translation functions (frequency range, TDP).

#ifndef SRC_POLICY_APP_MODEL_H_
#define SRC_POLICY_APP_MODEL_H_

#include <string>
#include <vector>

#include "src/common/units.h"

namespace papd {

struct ManagedApp {
  std::string name;
  // Core the app is pinned to.
  int cpu = 0;
  // Proportional shares (share policies).
  double shares = 1.0;
  // Two-level priority (priority policy): true = high priority.
  bool high_priority = false;
  // Standalone performance at maximum frequency, measured offline; the
  // baseline the performance-share policy normalizes IPS against.
  Ips baseline_ips{0.0};
  // "Highest useful frequency" (paper Section 4.4): above this point the
  // app gains no performance (AVX frequency caps, memory-bound
  // saturation), so policies should not allocate beyond it.  0 = unknown /
  // no cap.  Maintained at runtime by the HWP-style SaturationDetector
  // when DaemonConfig::use_hwp_hints is set.
  Mhz max_useful_mhz{0.0};
};


// Platform constants the policies' translation functions use.  Only coarse
// public facts appear here — no power-model internals — matching what the
// paper's daemon knows about real hardware.
struct PolicyPlatform {
  Mhz min_mhz{800};
  Mhz max_mhz{3000};
  Mhz step_mhz{100};
  int num_cores = 10;
  // "MaxPower" in the paper's alpha formula; the TDP.
  Watts max_power_w{85};
  // Rough non-core power floor used when converting a package limit into a
  // per-core budget (power shares).
  Watts uncore_estimate_w{8.0};
  // Rough per-core power range endpoints for the initial linear
  // power-to-frequency model (power shares).  Deliberately crude: the
  // control loop corrects model error with feedback (paper Section 5.2:
  // "modeling errors do not affect steady state behavior").
  Watts core_min_w{1.0};
  Watts core_max_w{9.0};
};

// Effective frequency ceiling for an app: the platform maximum, tightened
// by the app's known highest useful frequency (never below the platform
// minimum).
inline Mhz AppMaxMhz(const ManagedApp& app, const PolicyPlatform& platform) {
  if (app.max_useful_mhz <= Mhz{0.0}) {
    return platform.max_mhz;
  }
  const Mhz capped = app.max_useful_mhz < platform.max_mhz ? app.max_useful_mhz
                                                           : platform.max_mhz;
  return capped > platform.min_mhz ? capped : platform.min_mhz;
}

}  // namespace papd

#endif  // SRC_POLICY_APP_MODEL_H_
