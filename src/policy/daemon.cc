#include "src/policy/daemon.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/policy/frequency_shares.h"
#include "src/policy/invariants.h"
#include "src/policy/performance_shares.h"
#include "src/policy/power_shares.h"
#include "src/policy/pstate_selector.h"

namespace papd {

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRaplOnly:
      return "rapl";
    case PolicyKind::kStatic:
      return "static";
    case PolicyKind::kPriority:
      return "priority";
    case PolicyKind::kFrequencyShares:
      return "freq-shares";
    case PolicyKind::kPerformanceShares:
      return "perf-shares";
    case PolicyKind::kPowerShares:
      return "power-shares";
  }
  return "?";
}

PolicyPlatform MakePolicyPlatform(const PlatformSpec& spec) {
  PolicyPlatform p;
  p.min_mhz = spec.min_mhz;
  p.max_mhz = spec.turbo_max_mhz;
  p.step_mhz = spec.step_mhz;
  p.num_cores = spec.num_cores;
  p.max_power_w = spec.tdp_w;
  // Datasheet-grade estimates; the feedback loops absorb the error.
  p.uncore_estimate_w = spec.power.uncore_base_w + 1.0;
  p.core_min_w = 1.0;
  p.core_max_w = std::max(2.0, (spec.tdp_w - p.uncore_estimate_w) / spec.num_cores * 1.3);
  return p;
}

PowerDaemon::PowerDaemon(MsrFile* msr, std::vector<ManagedApp> apps, DaemonConfig config)
    : msr_(msr),
      apps_(std::move(apps)),
      config_(config),
      platform_(MakePolicyPlatform(msr->spec())),
      turbostat_(msr) {
  switch (config_.kind) {
    case PolicyKind::kFrequencyShares:
      share_policy_ = std::make_unique<FrequencyShares>(platform_);
      break;
    case PolicyKind::kPerformanceShares:
      share_policy_ = std::make_unique<PerformanceShares>(platform_);
      break;
    case PolicyKind::kPowerShares:
      PAPD_CHECK(msr_->spec().has_per_core_power)
          << " power shares require per-core power telemetry";
      share_policy_ = std::make_unique<PowerShares>(platform_);
      break;
    case PolicyKind::kPriority:
      priority_policy_ = std::make_unique<PriorityPolicy>(platform_, config_.priority);
      break;
    case PolicyKind::kRaplOnly:
    case PolicyKind::kStatic:
      break;
  }
  if (config_.audit) {
    auditor_ = std::make_unique<PolicyAuditor>(platform_, msr_->spec().max_simultaneous_pstates);
    if (share_policy_ != nullptr) {
      share_policy_ = std::make_unique<AuditedPolicy>(std::move(share_policy_), auditor_.get());
    }
  }
}

PowerDaemon::PowerDaemon(MsrFile* msr, std::vector<ManagedApp> apps, DaemonConfig config,
                         std::unique_ptr<ShareResource> custom_policy)
    : msr_(msr),
      apps_(std::move(apps)),
      config_(config),
      platform_(MakePolicyPlatform(msr->spec())),
      turbostat_(msr),
      share_policy_(std::move(custom_policy)) {
  PAPD_CHECK(share_policy_ != nullptr);
  // Route the Start/Step dispatch through the share-policy path.
  if (config_.kind == PolicyKind::kRaplOnly || config_.kind == PolicyKind::kStatic ||
      config_.kind == PolicyKind::kPriority) {
    config_.kind = PolicyKind::kFrequencyShares;
  }
  if (config_.audit) {
    auditor_ = std::make_unique<PolicyAuditor>(platform_, msr_->spec().max_simultaneous_pstates);
    share_policy_ = std::make_unique<AuditedPolicy>(std::move(share_policy_), auditor_.get());
  }
}

PowerDaemon::~PowerDaemon() = default;

void PowerDaemon::SetPowerLimit(Watts limit_w) {
  config_.power_limit_w = limit_w;
  if (config_.program_rapl || config_.kind == PolicyKind::kRaplOnly) {
    msr_->WriteRaplLimitW(limit_w);
  }
}

void PowerDaemon::Start() {
  if (config_.program_rapl || config_.kind == PolicyKind::kRaplOnly) {
    msr_->WriteRaplLimitW(config_.power_limit_w);
  }
  switch (config_.kind) {
    case PolicyKind::kRaplOnly:
      // All cores request the maximum; RAPL alone throttles.
      targets_.assign(apps_.size(), platform_.max_mhz);
      break;
    case PolicyKind::kStatic:
      targets_.assign(apps_.size(),
                      config_.static_mhz > 0.0 ? config_.static_mhz : platform_.max_mhz);
      break;
    case PolicyKind::kPriority:
      targets_ = priority_policy_->InitialDistribution(apps_, config_.power_limit_w);
      if (auditor_ != nullptr) {
        auditor_->CheckPriorityInitialDistribution(config_.priority, apps_,
                                                   config_.power_limit_w, targets_);
      }
      break;
    default:
      targets_ = share_policy_->InitialDistribution(apps_, config_.power_limit_w);
      break;
  }
  ProgramTargets();
}

void PowerDaemon::Step() {
  TelemetrySample sample = turbostat_.Sample();
  if (config_.use_hwp_hints) {
    if (!saturation_) {
      saturation_ = std::make_unique<SaturationDetector>(platform_, apps_.size());
    }
    saturation_->Observe(apps_, sample, targets_);
    for (size_t i = 0; i < apps_.size(); i++) {
      apps_[i].max_useful_mhz = saturation_->UsefulMaxMhz(i);
    }
  }
  switch (config_.kind) {
    case PolicyKind::kRaplOnly:
    case PolicyKind::kStatic:
      break;  // Monitoring only.
    case PolicyKind::kPriority:
      targets_ = priority_policy_->Redistribute(apps_, sample, config_.power_limit_w);
      if (auditor_ != nullptr) {
        auditor_->CheckPriorityRedistribution(config_.priority, apps_, sample,
                                              config_.power_limit_w, targets_);
      }
      break;
    default:
      targets_ = share_policy_->Redistribute(apps_, sample, config_.power_limit_w);
      break;
  }
  if (saturation_ != nullptr) {
    // HWP-style exploration: occasionally run one app a notch slower for a
    // period to map its IPS-vs-frequency response.
    targets_ = saturation_->ApplyProbes(apps_, targets_);
  }
  ProgramTargets();
  history_.push_back(Record{.sample = std::move(sample), .targets = targets_});
}

void PowerDaemon::ProgramTargets() {
  const PlatformSpec& spec = msr_->spec();
  const PStateTable grid(spec.min_mhz, spec.turbo_max_mhz, spec.step_mhz);

  // Core online/offline transitions first (stopped apps release power).
  for (size_t i = 0; i < apps_.size(); i++) {
    const bool want_online = targets_[i] != PriorityPolicy::kStopped;
    if (msr_->CoreOnline(apps_[i].cpu) != want_online) {
      msr_->SetCoreOnline(apps_[i].cpu, want_online);
    }
  }

  // Frequencies actually written to hardware this period, for the
  // translation audit (grid alignment, simultaneous-P-state limit).
  std::vector<Mhz> programmed;

  if (spec.max_simultaneous_pstates > 0) {
    // Ryzen path: reduce running apps' targets to <= 3 levels.
    std::vector<Mhz> running_targets;
    std::vector<size_t> running_apps;
    for (size_t i = 0; i < apps_.size(); i++) {
      if (targets_[i] != PriorityPolicy::kStopped) {
        running_targets.push_back(grid.QuantizeDown(targets_[i]));
        running_apps.push_back(i);
      }
    }
    if (!running_targets.empty()) {
      const PStateSelection sel =
          SelectPStates(running_targets, spec.max_simultaneous_pstates, spec.step_mhz);
      std::vector<Mhz> slot_mhz(sel.levels.size());
      for (size_t s = 0; s < sel.levels.size(); s++) {
        slot_mhz[s] = std::clamp(sel.levels[s], spec.min_mhz, spec.turbo_max_mhz);
        msr_->WritePstateDefMhz(static_cast<int>(s), slot_mhz[s]);
      }
      for (size_t j = 0; j < running_apps.size(); j++) {
        msr_->SelectPstate(apps_[running_apps[j]].cpu, sel.assignment[j]);
        programmed.push_back(slot_mhz[static_cast<size_t>(sel.assignment[j])]);
      }
    }
  } else {
    // Skylake path: per-core ratios.
    for (size_t i = 0; i < apps_.size(); i++) {
      if (targets_[i] == PriorityPolicy::kStopped) {
        continue;
      }
      const Mhz quantized = grid.QuantizeDown(targets_[i]);
      msr_->WritePerfTargetMhz(apps_[i].cpu, quantized);
      programmed.push_back(quantized);
    }
  }

  if (auditor_ != nullptr) {
    auditor_->CheckTranslation(programmed);
  }
}

}  // namespace papd
