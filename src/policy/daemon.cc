#include "src/policy/daemon.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/policy/frequency_shares.h"
#include "src/policy/invariants.h"
#include "src/policy/performance_shares.h"
#include "src/policy/power_shares.h"
#include "src/policy/pstate_selector.h"

namespace papd {

const char* DegradationStateName(DegradationState state) {
  switch (state) {
    case DegradationState::kNominal:
      return "nominal";
    case DegradationState::kHold:
      return "hold";
    case DegradationState::kFallback:
      return "fallback";
  }
  return "?";
}

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRaplOnly:
      return "rapl";
    case PolicyKind::kStatic:
      return "static";
    case PolicyKind::kPriority:
      return "priority";
    case PolicyKind::kFrequencyShares:
      return "freq-shares";
    case PolicyKind::kPerformanceShares:
      return "perf-shares";
    case PolicyKind::kPowerShares:
      return "power-shares";
  }
  return "?";
}

PolicyPlatform MakePolicyPlatform(const PlatformSpec& spec) {
  PolicyPlatform p;
  p.min_mhz = spec.min_mhz;
  p.max_mhz = spec.turbo_max_mhz;
  p.step_mhz = spec.step_mhz;
  p.num_cores = spec.num_cores;
  p.max_power_w = spec.tdp_w;
  // Datasheet-grade estimates; the feedback loops absorb the error.
  p.uncore_estimate_w = spec.power.uncore_base_w + 1.0;
  p.core_min_w = 1.0;
  p.core_max_w = std::max(2.0, (spec.tdp_w - p.uncore_estimate_w) / spec.num_cores * 1.3);
  return p;
}

PowerDaemon::PowerDaemon(MsrFile* msr, std::vector<ManagedApp> apps, DaemonConfig config)
    : msr_(msr),
      apps_(std::move(apps)),
      config_(config),
      platform_(MakePolicyPlatform(msr->spec())),
      turbostat_(msr) {
  switch (config_.kind) {
    case PolicyKind::kFrequencyShares:
      share_policy_ = std::make_unique<FrequencyShares>(platform_);
      break;
    case PolicyKind::kPerformanceShares:
      share_policy_ = std::make_unique<PerformanceShares>(platform_);
      break;
    case PolicyKind::kPowerShares:
      PAPD_CHECK(msr_->spec().has_per_core_power)
          << " power shares require per-core power telemetry";
      share_policy_ = std::make_unique<PowerShares>(platform_);
      break;
    case PolicyKind::kPriority:
      priority_policy_ = std::make_unique<PriorityPolicy>(platform_, config_.priority);
      break;
    case PolicyKind::kRaplOnly:
    case PolicyKind::kStatic:
      break;
  }
  if (config_.audit) {
    auditor_ = std::make_unique<PolicyAuditor>(platform_, msr_->spec().max_simultaneous_pstates);
    if (share_policy_ != nullptr) {
      share_policy_ = std::make_unique<AuditedPolicy>(std::move(share_policy_), auditor_.get());
    }
  }
  if (config_.raw_telemetry) {
    turbostat_.set_validation(false);
  }
}

PowerDaemon::PowerDaemon(MsrFile* msr, std::vector<ManagedApp> apps, DaemonConfig config,
                         std::unique_ptr<ShareResource> custom_policy)
    : msr_(msr),
      apps_(std::move(apps)),
      config_(config),
      platform_(MakePolicyPlatform(msr->spec())),
      turbostat_(msr),
      share_policy_(std::move(custom_policy)) {
  PAPD_CHECK(share_policy_ != nullptr);
  // Route the Start/Step dispatch through the share-policy path.
  if (config_.kind == PolicyKind::kRaplOnly || config_.kind == PolicyKind::kStatic ||
      config_.kind == PolicyKind::kPriority) {
    config_.kind = PolicyKind::kFrequencyShares;
  }
  if (config_.audit) {
    auditor_ = std::make_unique<PolicyAuditor>(platform_, msr_->spec().max_simultaneous_pstates);
    share_policy_ = std::make_unique<AuditedPolicy>(std::move(share_policy_), auditor_.get());
  }
  if (config_.raw_telemetry) {
    turbostat_.set_validation(false);
  }
}

PowerDaemon::~PowerDaemon() = default;

void PowerDaemon::SetPowerLimit(Watts limit_w) {
  config_.power_limit_w = limit_w;
  if (config_.program_rapl || config_.kind == PolicyKind::kRaplOnly) {
    msr_->WriteRaplLimitW(limit_w);
  }
}

void PowerDaemon::Start() {
  if (config_.program_rapl || config_.kind == PolicyKind::kRaplOnly) {
    msr_->WriteRaplLimitW(config_.power_limit_w);
  }
  switch (config_.kind) {
    case PolicyKind::kRaplOnly:
      // All cores request the maximum; RAPL alone throttles.
      targets_.assign(apps_.size(), platform_.max_mhz);
      break;
    case PolicyKind::kStatic:
      targets_.assign(apps_.size(),
                      config_.static_mhz > 0.0 ? config_.static_mhz : platform_.max_mhz);
      break;
    case PolicyKind::kPriority:
      targets_ = priority_policy_->InitialDistribution(apps_, config_.power_limit_w);
      if (auditor_ != nullptr) {
        auditor_->CheckPriorityInitialDistribution(config_.priority, apps_,
                                                   config_.power_limit_w, targets_);
      }
      break;
    default:
      targets_ = share_policy_->InitialDistribution(apps_, config_.power_limit_w);
      break;
  }
  Program(targets_);
}

void PowerDaemon::Step() {
  TelemetrySample sample = turbostat_.Sample();

  if (config_.degradation.enabled && !sample.valid) {
    // Degradation ladder, invalid rung: the policy's internal state is
    // deliberately frozen — no Redistribute call — so the first valid
    // sample resumes from the pre-fault targets.
    fault_stats_.invalid_samples++;
    bad_sample_streak_++;
    if (bad_sample_streak_ >= config_.degradation.fallback_after) {
      if (state_ != DegradationState::kFallback) {
        PAPD_LOG_INFO("daemon: %d consecutive invalid samples, entering fallback",
                      bad_sample_streak_);
        state_ = DegradationState::kFallback;
        if (config_.degradation.rapl_safety_net) {
          ArmRaplSafetyNet();
        }
      }
      fault_stats_.fallback_periods++;
      Program(FallbackTargets());
    } else {
      state_ = DegradationState::kHold;
      fault_stats_.held_periods++;
      // Hold: last-known-good targets stay programmed; touch nothing.
    }
    history_.push_back(Record{.sample = std::move(sample), .targets = targets_, .state = state_});
    return;
  }

  if (state_ != DegradationState::kNominal) {
    // Recovery, resync period: restore the frozen nominal targets but do
    // not redistribute yet — this first sample is smeared over the outage
    // (stale gaps, a fallback interval at the floor), and controlling on
    // its averaged-down power would over-grant for a period.  The next
    // sample covers one clean period at nominal targets.
    PAPD_LOG_INFO("daemon: telemetry recovered after %d bad periods (%s)", bad_sample_streak_,
                  DegradationStateName(state_));
    state_ = DegradationState::kNominal;
    bad_sample_streak_ = 0;
    Program(targets_);
    history_.push_back(Record{.sample = std::move(sample), .targets = targets_, .state = state_});
    return;
  }
  bad_sample_streak_ = 0;

  if (config_.degradation.enabled && !last_program_ok_ && !last_programmed_want_.empty()) {
    // The last program never verified: hardware is not in the state the
    // policy believes it commanded, so this sample describes an
    // un-actuated world.  Feeding it to the policy would mistake a dropped
    // ramp-down for headroom (or a dropped ramp-up for saturation).
    // Retry the pending program (subject to backoff) and control resumes
    // once a read-back confirms it landed.
    Program(last_programmed_want_);
    history_.push_back(Record{.sample = std::move(sample), .targets = targets_, .state = state_});
    return;
  }

  if (config_.use_hwp_hints) {
    if (!saturation_) {
      saturation_ = std::make_unique<SaturationDetector>(platform_, apps_.size());
    }
    saturation_->Observe(apps_, sample, targets_);
    for (size_t i = 0; i < apps_.size(); i++) {
      apps_[i].max_useful_mhz = saturation_->UsefulMaxMhz(i);
    }
  }
  switch (config_.kind) {
    case PolicyKind::kRaplOnly:
    case PolicyKind::kStatic:
      break;  // Monitoring only.
    case PolicyKind::kPriority:
      targets_ = priority_policy_->Redistribute(apps_, sample, config_.power_limit_w);
      if (auditor_ != nullptr) {
        auditor_->CheckPriorityRedistribution(config_.priority, apps_, sample,
                                              config_.power_limit_w, targets_);
      }
      break;
    default:
      targets_ = share_policy_->Redistribute(apps_, sample, config_.power_limit_w);
      break;
  }
  if (saturation_ != nullptr) {
    // HWP-style exploration: occasionally run one app a notch slower for a
    // period to map its IPS-vs-frequency response.
    targets_ = saturation_->ApplyProbes(apps_, targets_);
  }
  Program(targets_);
  if (auditor_ != nullptr && ActivelyControlling()) {
    auditor_->CheckPowerCeiling(sample, config_.power_limit_w, targets_);
  }
  history_.push_back(Record{.sample = std::move(sample), .targets = targets_, .state = state_});
}

bool PowerDaemon::ActivelyControlling() const {
  return config_.kind != PolicyKind::kRaplOnly && config_.kind != PolicyKind::kStatic;
}

std::vector<Mhz> PowerDaemon::FallbackTargets() const {
  const Mhz floor_mhz =
      config_.degradation.floor_mhz > 0.0 ? config_.degradation.floor_mhz : platform_.min_mhz;
  std::vector<Mhz> want = targets_;
  for (Mhz& t : want) {
    if (t != PriorityPolicy::kStopped) {
      t = floor_mhz;
    }
  }
  return want;
}

void PowerDaemon::ArmRaplSafetyNet() {
  if (rapl_net_armed_ || !msr_->spec().has_rapl_limit) {
    return;
  }
  msr_->WriteRaplLimitW(config_.power_limit_w);
  rapl_net_armed_ = true;
}

void PowerDaemon::DisarmRaplSafetyNet() {
  if (!rapl_net_armed_) {
    return;
  }
  // Never turn off a limit the configuration itself asked for.
  if (!config_.program_rapl && config_.kind != PolicyKind::kRaplOnly) {
    msr_->DisableRaplLimit();
  }
  rapl_net_armed_ = false;
}

bool PowerDaemon::VerifyProgrammed(const std::vector<Mhz>& want) const {
  const bool ryzen = msr_->spec().max_simultaneous_pstates > 0;
  for (size_t i = 0; i < apps_.size(); i++) {
    if (i >= last_expected_mhz_.size() || want[i] == PriorityPolicy::kStopped) {
      continue;
    }
    Mhz readback_mhz;
    if (ryzen) {
      const int slot = static_cast<int>(msr_->Read(kMsrAmdPstateCtl, apps_[i].cpu));
      readback_mhz = msr_->ReadPstateDefMhz(slot);
    } else {
      readback_mhz =
          static_cast<double>((msr_->Read(kMsrIa32PerfCtl, apps_[i].cpu) >> 8) & 0xFF) * 100.0;
    }
    if (readback_mhz != last_expected_mhz_[i]) {
      return false;
    }
  }
  return true;
}

void PowerDaemon::Program(const std::vector<Mhz>& want) {
  if (!config_.degradation.enabled) {
    // Naive baseline: rewrite every period, never look back.
    ProgramTargets(want);
    return;
  }
  if (last_program_ok_ && want == last_programmed_want_) {
    // Identical state already verified in hardware: skip the rewrite.
    // This is what keeps monitoring-only policies (kRaplOnly, kStatic)
    // from reprogramming untouched registers every period.
    fault_stats_.reprogram_skips++;
    return;
  }
  if (retry_wait_ > 0 && want == last_programmed_want_) {
    // Still backing off after a failed attempt at this same state.
    retry_wait_--;
    fault_stats_.backoff_skips++;
    return;
  }
  ProgramTargets(want);
  last_programmed_want_ = want;
  last_program_ok_ = VerifyProgrammed(want);
  if (last_program_ok_) {
    write_fail_streak_ = 0;
    backoff_ = 1;
    retry_wait_ = 0;
    if (state_ == DegradationState::kNominal) {
      DisarmRaplSafetyNet();
    }
  } else {
    fault_stats_.failed_programs++;
    write_fail_streak_++;
    retry_wait_ = backoff_;
    backoff_ = std::min(backoff_ * 2, config_.degradation.max_backoff_periods);
    PAPD_LOG_INFO("daemon: P-state program failed read-back (streak %d), backing off %d periods",
                  write_fail_streak_, retry_wait_);
    if (write_fail_streak_ >= config_.degradation.write_retry_limit &&
        config_.degradation.rapl_safety_net) {
      ArmRaplSafetyNet();
    }
  }
}

void PowerDaemon::ProgramTargets(const std::vector<Mhz>& want) {
  const PlatformSpec& spec = msr_->spec();
  const PStateTable grid(spec.min_mhz, spec.turbo_max_mhz, spec.step_mhz);

  // Core online/offline transitions first (stopped apps release power).
  for (size_t i = 0; i < apps_.size(); i++) {
    const bool want_online = want[i] != PriorityPolicy::kStopped;
    if (msr_->CoreOnline(apps_[i].cpu) != want_online) {
      msr_->SetCoreOnline(apps_[i].cpu, want_online);
    }
  }

  // Frequencies actually written to hardware this period, for the
  // translation audit (grid alignment, simultaneous-P-state limit) and for
  // the read-back verification in Program().
  std::vector<Mhz> programmed;
  last_expected_mhz_.assign(apps_.size(), PriorityPolicy::kStopped);

  if (spec.max_simultaneous_pstates > 0) {
    // Ryzen path: reduce running apps' targets to <= 3 levels.
    std::vector<Mhz> running_targets;
    std::vector<size_t> running_apps;
    for (size_t i = 0; i < apps_.size(); i++) {
      if (want[i] != PriorityPolicy::kStopped) {
        running_targets.push_back(grid.QuantizeDown(want[i]));
        running_apps.push_back(i);
      }
    }
    if (!running_targets.empty()) {
      const PStateSelection sel =
          SelectPStates(running_targets, spec.max_simultaneous_pstates, spec.step_mhz);
      std::vector<Mhz> slot_mhz(sel.levels.size());
      for (size_t s = 0; s < sel.levels.size(); s++) {
        slot_mhz[s] = std::clamp(sel.levels[s], spec.min_mhz, spec.turbo_max_mhz);
        msr_->WritePstateDefMhz(static_cast<int>(s), slot_mhz[s]);
      }
      for (size_t j = 0; j < running_apps.size(); j++) {
        msr_->SelectPstate(apps_[running_apps[j]].cpu, sel.assignment[j]);
        programmed.push_back(slot_mhz[static_cast<size_t>(sel.assignment[j])]);
        last_expected_mhz_[running_apps[j]] = programmed.back();
      }
    }
  } else {
    // Skylake path: per-core ratios.
    for (size_t i = 0; i < apps_.size(); i++) {
      if (want[i] == PriorityPolicy::kStopped) {
        continue;
      }
      const Mhz quantized = grid.QuantizeDown(want[i]);
      msr_->WritePerfTargetMhz(apps_[i].cpu, quantized);
      programmed.push_back(quantized);
      last_expected_mhz_[i] = quantized;
    }
  }

  if (auditor_ != nullptr) {
    auditor_->CheckTranslation(programmed);
  }
}

}  // namespace papd
