#include "src/policy/daemon.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/policy/invariants.h"
#include "src/policy/pstate_selector.h"

namespace papd {

// The Chrome-trace exporter renders TraceEvent ladder codes by this order.
static_assert(static_cast<int>(DegradationState::kNominal) == 0 &&
                  static_cast<int>(DegradationState::kHold) == 1 &&
                  static_cast<int>(DegradationState::kFallback) == 2,
              "obs exporter ladder-state names depend on this enum order");

const char* DegradationStateName(DegradationState state) {
  switch (state) {
    case DegradationState::kNominal:
      return "nominal";
    case DegradationState::kHold:
      return "hold";
    case DegradationState::kFallback:
      return "fallback";
  }
  return "?";
}

PolicyPlatform MakePolicyPlatform(const PlatformSpec& spec) {
  PolicyPlatform p;
  p.min_mhz = spec.min_mhz;
  p.max_mhz = spec.turbo_max_mhz;
  p.step_mhz = spec.step_mhz;
  p.num_cores = spec.num_cores;
  p.max_power_w = spec.tdp_w;
  // Datasheet-grade estimates; the feedback loops absorb the error.
  p.uncore_estimate_w = spec.power.uncore_base_w + Watts{1.0};
  p.core_min_w = Watts{1.0};
  p.core_max_w = std::max(Watts{2.0}, (spec.tdp_w - p.uncore_estimate_w) / spec.num_cores * 1.3);
  return p;
}

PowerDaemon::PowerDaemon(MsrFile* msr, std::vector<ManagedApp> apps, DaemonConfig config)
    : msr_(msr),
      apps_(std::move(apps)),
      config_(config),
      platform_(MakePolicyPlatform(msr->spec())),
      turbostat_(msr) {
  const PolicyInfo& info = GetPolicyInfo(config_.kind);
  if (info.needs_per_core_power) {
    PAPD_CHECK(msr_->spec().has_per_core_power)
        << " " << info.name << " requires per-core power telemetry";
  }
  share_policy_ = MakePolicy(config_.kind, platform_);
  if (info.is_priority) {
    priority_policy_ = std::make_unique<PriorityPolicy>(platform_, config_.priority);
  }
  if (config_.audit) {
    auditor_ = std::make_unique<PolicyAuditor>(platform_, msr_->spec().max_simultaneous_pstates);
    if (share_policy_ != nullptr) {
      share_policy_ = std::make_unique<AuditedPolicy>(std::move(share_policy_), auditor_.get());
    }
  }
  if (config_.raw_telemetry) {
    turbostat_.set_validation(false);
  }
  InitObs();
}

PowerDaemon::PowerDaemon(MsrFile* msr, std::vector<ManagedApp> apps, DaemonConfig config,
                         std::unique_ptr<ShareResource> custom_policy)
    : msr_(msr),
      apps_(std::move(apps)),
      config_(config),
      platform_(MakePolicyPlatform(msr->spec())),
      turbostat_(msr),
      share_policy_(std::move(custom_policy)) {
  PAPD_CHECK(share_policy_ != nullptr);
  // Route the Start/Step dispatch through the share-policy path.
  if (config_.kind == PolicyKind::kRaplOnly || config_.kind == PolicyKind::kStatic ||
      config_.kind == PolicyKind::kPriority) {
    config_.kind = PolicyKind::kFrequencyShares;
  }
  if (config_.audit) {
    auditor_ = std::make_unique<PolicyAuditor>(platform_, msr_->spec().max_simultaneous_pstates);
    share_policy_ = std::make_unique<AuditedPolicy>(std::move(share_policy_), auditor_.get());
  }
  if (config_.raw_telemetry) {
    turbostat_.set_validation(false);
  }
  InitObs();
}

PowerDaemon::~PowerDaemon() = default;

void PowerDaemon::InitObs() {
  // Turbostat's validation rejections land directly in this registry —
  // the one count both fault_stats() and the metrics exporters report.
  turbostat_.BindInvalidSampleCounter(metrics_.GetCounter("telemetry.invalid_samples"));
  c_held_periods_ = metrics_.GetCounter("daemon.held_periods");
  c_fallback_periods_ = metrics_.GetCounter("daemon.fallback_periods");
  c_failed_programs_ = metrics_.GetCounter("daemon.failed_programs");
  c_backoff_skips_ = metrics_.GetCounter("daemon.backoff_skips");
  c_reprogram_skips_ = metrics_.GetCounter("daemon.reprogram_skips");
  g_pkg_w_ = metrics_.GetGauge("daemon.pkg_w");
  g_ladder_ = metrics_.GetGauge("daemon.ladder_state");
  h_redistribute_us_ = metrics_.GetHistogram("daemon.redistribute_latency_us",
                                             {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 1000.0});
  h_overshoot_w_ = metrics_.GetHistogram("daemon.overshoot_w",
                                         {0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0});
}

DaemonFaultStats PowerDaemon::fault_stats() const {
  DaemonFaultStats stats;
  stats.invalid_samples = turbostat_.invalid_samples();
  stats.held_periods = static_cast<int>(c_held_periods_->value());
  stats.fallback_periods = static_cast<int>(c_fallback_periods_->value());
  stats.failed_programs = static_cast<int>(c_failed_programs_->value());
  stats.backoff_skips = static_cast<int>(c_backoff_skips_->value());
  stats.reprogram_skips = static_cast<int>(c_reprogram_skips_->value());
  return stats;
}

void PowerDaemon::Emit(obs::TraceEventType type, int32_t index, int32_t code,
                       obs::TracePayload a, obs::TracePayload b) const {
  if (config_.obs.sink == nullptr) {
    return;
  }
  obs::TraceEvent event;
  event.t = last_sample_t_;
  event.type = type;
  event.shard = config_.obs.shard;
  event.index = index;
  event.code = code;
  event.a = a;
  event.b = b;
  config_.obs.sink->OnEvent(event);
}

void PowerDaemon::TransitionLadder(DegradationState to) {
  if (state_ != to) {
    Emit(obs::TraceEventType::kLadderTransition, static_cast<int32_t>(state_),
         static_cast<int32_t>(to), bad_sample_streak_, 0.0);
    state_ = to;
  }
  g_ladder_->Set(static_cast<double>(to));
}

void PowerDaemon::SetPowerLimit(Watts limit_w) {
  config_.power_limit_w = limit_w;
  if (config_.program_rapl || config_.kind == PolicyKind::kRaplOnly) {
    msr_->WriteRaplLimitW(limit_w);
  }
}

void PowerDaemon::Start() {
  if (config_.program_rapl || config_.kind == PolicyKind::kRaplOnly) {
    msr_->WriteRaplLimitW(config_.power_limit_w);
  }
  if (priority_policy_ != nullptr) {
    targets_ = priority_policy_->InitialDistribution(apps_, config_.power_limit_w);
    if (auditor_ != nullptr) {
      auditor_->CheckPriorityInitialDistribution(config_.priority, apps_, config_.power_limit_w,
                                                 targets_);
    }
  } else if (share_policy_ != nullptr) {
    targets_ = share_policy_->InitialDistribution(apps_, config_.power_limit_w);
  } else if (config_.kind == PolicyKind::kStatic) {
    targets_.assign(apps_.size(),
                    config_.static_mhz > Mhz{0.0} ? config_.static_mhz : platform_.max_mhz);
  } else {
    // kRaplOnly: all cores request the maximum; RAPL alone throttles.
    targets_.assign(apps_.size(), platform_.max_mhz);
  }
  Program(targets_);
}

void PowerDaemon::Step() {
  const auto wall_start = std::chrono::steady_clock::now();
  TelemetrySample sample = turbostat_.Sample();
  last_sample_t_ = sample.t;
  const int period = period_;
  period_++;
  g_pkg_w_->Set(sample.pkg_w);
  h_overshoot_w_->Observe(std::max(Watts{0.0}, sample.pkg_w - config_.power_limit_w));
  Emit(obs::TraceEventType::kPeriodBegin, period, static_cast<int32_t>(state_), sample.pkg_w,
       config_.power_limit_w);
  {
    // Deep library code (min-funding revocation) traces through the
    // thread-local context for the duration of the control body.
    obs::ScopedThreadTrace trace_scope(config_.obs.sink, sample.t, config_.obs.shard);
    StepWithSample(std::move(sample));
  }
  const double latency_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - wall_start)
          .count();
  h_redistribute_us_->Observe(latency_us);
  metrics_.Snapshot(last_sample_t_);
  Emit(obs::TraceEventType::kPeriodEnd, period, static_cast<int32_t>(state_), latency_us, 0.0);
}

void PowerDaemon::StepWithSample(TelemetrySample sample) {
  if (config_.degradation.enabled && !sample.valid) {
    // Degradation ladder, invalid rung: the policy's internal state is
    // deliberately frozen — no Redistribute call — so the first valid
    // sample resumes from the pre-fault targets.  (Turbostat already
    // counted the rejection in the metrics registry.)
    bad_sample_streak_++;
    if (bad_sample_streak_ >= config_.degradation.fallback_after) {
      if (state_ != DegradationState::kFallback) {
        PAPD_LOG_INFO("daemon: %d consecutive invalid samples, entering fallback",
                      bad_sample_streak_);
        TransitionLadder(DegradationState::kFallback);
        if (config_.degradation.rapl_safety_net) {
          ArmRaplSafetyNet();
        }
      }
      c_fallback_periods_->Increment();
      Program(FallbackTargets());
    } else {
      TransitionLadder(DegradationState::kHold);
      c_held_periods_->Increment();
      // Hold: last-known-good targets stay programmed; touch nothing.
    }
    history_.push_back(Record{.sample = std::move(sample), .targets = targets_, .state = state_});
    return;
  }

  if (state_ != DegradationState::kNominal) {
    // Recovery, resync period: restore the frozen nominal targets but do
    // not redistribute yet — this first sample is smeared over the outage
    // (stale gaps, a fallback interval at the floor), and controlling on
    // its averaged-down power would over-grant for a period.  The next
    // sample covers one clean period at nominal targets.
    PAPD_LOG_INFO("daemon: telemetry recovered after %d bad periods (%s)", bad_sample_streak_,
                  DegradationStateName(state_));
    TransitionLadder(DegradationState::kNominal);
    bad_sample_streak_ = 0;
    Program(targets_);
    history_.push_back(Record{.sample = std::move(sample), .targets = targets_, .state = state_});
    return;
  }
  bad_sample_streak_ = 0;

  if (config_.degradation.enabled && !last_program_ok_ && !last_programmed_want_.empty()) {
    // The last program never verified: hardware is not in the state the
    // policy believes it commanded, so this sample describes an
    // un-actuated world.  Feeding it to the policy would mistake a dropped
    // ramp-down for headroom (or a dropped ramp-up for saturation).
    // Retry the pending program (subject to backoff) and control resumes
    // once a read-back confirms it landed.
    Program(last_programmed_want_);
    history_.push_back(Record{.sample = std::move(sample), .targets = targets_, .state = state_});
    return;
  }

  if (config_.use_hwp_hints) {
    if (!saturation_) {
      saturation_ = std::make_unique<SaturationDetector>(platform_, apps_.size());
    }
    saturation_->Observe(apps_, sample, targets_);
    for (size_t i = 0; i < apps_.size(); i++) {
      apps_[i].max_useful_mhz = saturation_->UsefulMaxMhz(i);
    }
  }
  const bool tracing = config_.obs.sink != nullptr;
  std::vector<Mhz> before_targets;
  if (tracing) {
    before_targets = targets_;
  }
  if (priority_policy_ != nullptr) {
    targets_ = priority_policy_->Redistribute(apps_, sample, config_.power_limit_w);
    if (auditor_ != nullptr) {
      auditor_->CheckPriorityRedistribution(config_.priority, apps_, sample,
                                            config_.power_limit_w, targets_);
    }
  } else if (share_policy_ != nullptr) {
    targets_ = share_policy_->Redistribute(apps_, sample, config_.power_limit_w);
  }
  // kRaplOnly/kStatic: monitoring only, targets untouched.
  if (saturation_ != nullptr) {
    // HWP-style exploration: occasionally run one app a notch slower for a
    // period to map its IPS-vs-frequency response.
    targets_ = saturation_->ApplyProbes(apps_, targets_);
  }
  if (tracing && ActivelyControlling()) {
    int32_t changed = 0;
    for (size_t i = 0; i < targets_.size(); i++) {
      if (i >= before_targets.size() || targets_[i] != before_targets[i]) {
        changed++;
      }
    }
    Emit(obs::TraceEventType::kRedistribute, static_cast<int32_t>(apps_.size()), changed,
         sample.pkg_w - config_.power_limit_w, 0.0);
    for (size_t i = 0; i < targets_.size(); i++) {
      const Mhz before_i{i < before_targets.size() ? before_targets[i] : Mhz{0.0}};
      Emit(obs::TraceEventType::kAppTarget, static_cast<int32_t>(i),
           targets_[i] != before_i ? 1 : 0, before_i, targets_[i]);
    }
  }
  Program(targets_);
  if (auditor_ != nullptr && ActivelyControlling()) {
    auditor_->CheckPowerCeiling(sample, config_.power_limit_w, targets_);
  }
  history_.push_back(Record{.sample = std::move(sample), .targets = targets_, .state = state_});
}

bool PowerDaemon::ActivelyControlling() const { return GetPolicyInfo(config_.kind).controls; }

std::vector<Mhz> PowerDaemon::FallbackTargets() const {
  const Mhz floor_mhz =
      config_.degradation.floor_mhz > Mhz{0.0} ? config_.degradation.floor_mhz : platform_.min_mhz;
  std::vector<Mhz> want = targets_;
  for (Mhz& t : want) {
    if (t != PriorityPolicy::kStopped) {
      t = floor_mhz;
    }
  }
  return want;
}

void PowerDaemon::ArmRaplSafetyNet() {
  if (rapl_net_armed_ || !msr_->spec().has_rapl_limit) {
    return;
  }
  msr_->WriteRaplLimitW(config_.power_limit_w);
  rapl_net_armed_ = true;
}

void PowerDaemon::DisarmRaplSafetyNet() {
  if (!rapl_net_armed_) {
    return;
  }
  // Never turn off a limit the configuration itself asked for.
  if (!config_.program_rapl && config_.kind != PolicyKind::kRaplOnly) {
    msr_->DisableRaplLimit();
  }
  rapl_net_armed_ = false;
}

bool PowerDaemon::VerifyProgrammed(const std::vector<Mhz>& want) const {
  const bool ryzen = msr_->spec().max_simultaneous_pstates > 0;
  for (size_t i = 0; i < apps_.size(); i++) {
    if (i >= last_expected_mhz_.size() || want[i] == PriorityPolicy::kStopped) {
      continue;
    }
    Mhz readback_mhz;
    if (ryzen) {
      const int slot = static_cast<int>(msr_->Read(kMsrAmdPstateCtl, apps_[i].cpu));
      readback_mhz = msr_->ReadPstateDefMhz(slot);
    } else {
      readback_mhz =
          Mhz{static_cast<double>((msr_->Read(kMsrIa32PerfCtl, apps_[i].cpu) >> 8) & 0xFF) * 100.0};
    }
    if (readback_mhz != last_expected_mhz_[i]) {
      return false;
    }
  }
  return true;
}

void PowerDaemon::Program(const std::vector<Mhz>& want) {
  if (!config_.degradation.enabled) {
    // Naive baseline: rewrite every period, never look back (and never
    // verify — the trace reports the write as unverified success).
    ProgramTargets(want);
    EmitPstateWrite(want, /*verified_ok=*/true);
    return;
  }
  if (last_program_ok_ && want == last_programmed_want_) {
    // Identical state already verified in hardware: skip the rewrite.
    // This is what keeps monitoring-only policies (kRaplOnly, kStatic)
    // from reprogramming untouched registers every period.
    c_reprogram_skips_->Increment();
    return;
  }
  if (retry_wait_ > 0 && want == last_programmed_want_) {
    // Still backing off after a failed attempt at this same state.
    retry_wait_--;
    c_backoff_skips_->Increment();
    return;
  }
  ProgramTargets(want);
  last_programmed_want_ = want;
  last_program_ok_ = VerifyProgrammed(want);
  EmitPstateWrite(want, last_program_ok_);
  if (last_program_ok_) {
    write_fail_streak_ = 0;
    backoff_ = 1;
    retry_wait_ = 0;
    if (state_ == DegradationState::kNominal) {
      DisarmRaplSafetyNet();
    }
  } else {
    c_failed_programs_->Increment();
    write_fail_streak_++;
    retry_wait_ = backoff_;
    backoff_ = std::min(backoff_ * 2, config_.degradation.max_backoff_periods);
    PAPD_LOG_INFO("daemon: P-state program failed read-back (streak %d), backing off %d periods",
                  write_fail_streak_, retry_wait_);
    if (write_fail_streak_ >= config_.degradation.write_retry_limit &&
        config_.degradation.rapl_safety_net) {
      ArmRaplSafetyNet();
    }
  }
}

void PowerDaemon::EmitPstateWrite(const std::vector<Mhz>& want, bool verified_ok) const {
  if (config_.obs.sink == nullptr) {
    return;
  }
  int32_t running = 0;
  Mhz hi{0.0};
  Mhz lo{0.0};
  for (size_t i = 0; i < want.size() && i < last_expected_mhz_.size(); i++) {
    if (want[i] == PriorityPolicy::kStopped) {
      continue;
    }
    const Mhz programmed{last_expected_mhz_[i]};
    hi = running == 0 ? programmed : std::max(hi, programmed);
    lo = running == 0 ? programmed : std::min(lo, programmed);
    running++;
  }
  Emit(obs::TraceEventType::kPstateWrite, running, verified_ok ? 1 : 0, hi, lo);
}

void PowerDaemon::ProgramTargets(const std::vector<Mhz>& want) {
  const PlatformSpec& spec = msr_->spec();
  const PStateTable grid(spec.min_mhz, spec.turbo_max_mhz, spec.step_mhz);

  // Core online/offline transitions first (stopped apps release power).
  for (size_t i = 0; i < apps_.size(); i++) {
    const bool want_online = want[i] != PriorityPolicy::kStopped;
    if (msr_->CoreOnline(apps_[i].cpu) != want_online) {
      msr_->SetCoreOnline(apps_[i].cpu, want_online);
    }
  }

  // Frequencies actually written to hardware this period, for the
  // translation audit (grid alignment, simultaneous-P-state limit) and for
  // the read-back verification in Program().
  std::vector<Mhz> programmed;
  last_expected_mhz_.assign(apps_.size(), PriorityPolicy::kStopped);

  if (spec.max_simultaneous_pstates > 0) {
    // Ryzen path: reduce running apps' targets to <= 3 levels.
    std::vector<Mhz> running_targets;
    std::vector<size_t> running_apps;
    for (size_t i = 0; i < apps_.size(); i++) {
      if (want[i] != PriorityPolicy::kStopped) {
        running_targets.push_back(grid.QuantizeDown(want[i]));
        running_apps.push_back(i);
      }
    }
    if (!running_targets.empty()) {
      const PStateSelection sel =
          SelectPStates(running_targets, spec.max_simultaneous_pstates, spec.step_mhz);
      std::vector<Mhz> slot_mhz(sel.levels.size());
      for (size_t s = 0; s < sel.levels.size(); s++) {
        slot_mhz[s] = std::clamp(sel.levels[s], spec.min_mhz, spec.turbo_max_mhz);
        msr_->WritePstateDefMhz(static_cast<int>(s), slot_mhz[s]);
      }
      for (size_t j = 0; j < running_apps.size(); j++) {
        msr_->SelectPstate(apps_[running_apps[j]].cpu, sel.assignment[j]);
        programmed.push_back(slot_mhz[static_cast<size_t>(sel.assignment[j])]);
        last_expected_mhz_[running_apps[j]] = programmed.back();
      }
    }
  } else {
    // Skylake path: per-core ratios.
    for (size_t i = 0; i < apps_.size(); i++) {
      if (want[i] == PriorityPolicy::kStopped) {
        continue;
      }
      const Mhz quantized{grid.QuantizeDown(want[i])};
      msr_->WritePerfTargetMhz(apps_[i].cpu, quantized);
      programmed.push_back(quantized);
      last_expected_mhz_[i] = quantized;
    }
  }

  if (auditor_ != nullptr) {
    auditor_->CheckTranslation(programmed);
  }
}

}  // namespace papd
