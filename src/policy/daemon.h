// The userspace power-delivery daemon (paper Section 5).
//
// The daemon pins applications to cores, selects their initial P-states
// from the configured policy, then runs a monitoring loop (1 second in the
// paper and by default here): read processor statistics through turbostat,
// let the policy redistribute the managed resource, and translate the new
// targets into hardware P-state writes.
//
// Translation is platform specific and lives in the daemon:
//   - Skylake: quantize each target down to the 100 MHz grid and write the
//     per-core PERF_CTL ratio;
//   - Ryzen: reduce the targets to at most three levels with the
//     three-P-state selector, program the P-state definition MSRs, and
//     point each core at its slot (25 MHz grid).
// Stopped apps (priority policy starvation) have their cores put into a
// deep C-state.

#ifndef SRC_POLICY_DAEMON_H_
#define SRC_POLICY_DAEMON_H_

#include <memory>
#include <vector>

#include "src/msr/msr.h"
#include "src/msr/turbostat.h"
#include "src/policy/app_model.h"
#include "src/policy/hwp.h"
#include "src/policy/priority_policy.h"
#include "src/policy/share_policy.h"

namespace papd {

enum class PolicyKind {
  // No daemon control: hardware RAPL capping alone (the paper's baseline).
  kRaplOnly,
  // Fixed frequencies programmed once at start; no control loop.
  kStatic,
  kPriority,
  kFrequencyShares,
  kPerformanceShares,
  kPowerShares,
};

const char* PolicyKindName(PolicyKind kind);

struct DaemonConfig {
  PolicyKind kind = PolicyKind::kFrequencyShares;
  Watts power_limit_w = 85.0;
  Seconds period_s = 1.0;
  PriorityPolicy::Options priority;
  // kStatic: the frequency every managed core is pinned to.
  Mhz static_mhz = 0.0;
  // When true (kRaplOnly or on request), the hardware RAPL limit register
  // is programmed with power_limit_w.
  bool program_rapl = false;
  // Enable HWP-style saturation hints (paper Section 4.4): the daemon
  // detects each app's highest useful frequency at runtime and the policies
  // stop allocating beyond it, redistributing the excess.
  bool use_hwp_hints = false;
  // Audit every initial-distribution, redistribution and translation step
  // with the PolicyAuditor (src/policy/invariants.h): budget conservation,
  // share monotonicity, grid alignment, the simultaneous-P-state limit.  A
  // violation aborts with a formatted CHECK failure.
  bool audit = true;
};

class PolicyAuditor;

class PowerDaemon {
 public:
  // Borrows the MSR file (and with it the platform).
  PowerDaemon(MsrFile* msr, std::vector<ManagedApp> apps, DaemonConfig config);

  // Runs a caller-provided share policy instead of one of the built-in
  // kinds (config.kind is ignored for policy selection but still controls
  // RAPL programming).  This is the extension point for custom policies;
  // see examples/custom_policy.cc.
  PowerDaemon(MsrFile* msr, std::vector<ManagedApp> apps, DaemonConfig config,
              std::unique_ptr<ShareResource> custom_policy);

  ~PowerDaemon();

  PowerDaemon(const PowerDaemon&) = delete;
  PowerDaemon& operator=(const PowerDaemon&) = delete;

  // Programs the initial distribution (and the RAPL register if requested).
  void Start();

  // One control iteration; call once per period.
  void Step();

  // Changes the power limit at runtime (cluster managers adjust node caps
  // while jobs run, e.g. Facebook's Dynamo cited in the paper).  Takes
  // effect at the next Step(); reprograms the RAPL register immediately
  // when hardware capping is in use.
  void SetPowerLimit(Watts limit_w);

  // Per-app frequency targets after the last iteration;
  // PriorityPolicy::kStopped for starved apps.
  const std::vector<Mhz>& targets() const { return targets_; }
  const std::vector<ManagedApp>& apps() const { return apps_; }
  const DaemonConfig& config() const { return config_; }

  struct Record {
    TelemetrySample sample;
    std::vector<Mhz> targets;
  };
  const std::vector<Record>& history() const { return history_; }

  // Platform constants handed to the policies (exposed for tests).
  const PolicyPlatform& policy_platform() const { return platform_; }

  // The invariant auditor, or nullptr when config.audit is false.
  PolicyAuditor* auditor() { return auditor_.get(); }

 private:
  void ProgramTargets();

  MsrFile* msr_;
  std::vector<ManagedApp> apps_;
  DaemonConfig config_;
  PolicyPlatform platform_;
  Turbostat turbostat_;

  std::unique_ptr<ShareResource> share_policy_;
  std::unique_ptr<PriorityPolicy> priority_policy_;
  std::unique_ptr<SaturationDetector> saturation_;
  std::unique_ptr<PolicyAuditor> auditor_;

  std::vector<Mhz> targets_;
  std::vector<Record> history_;
};

// Derives the policy-visible platform constants from a platform spec (the
// datasheet facts an operator would configure the daemon with).
PolicyPlatform MakePolicyPlatform(const PlatformSpec& spec);

}  // namespace papd

#endif  // SRC_POLICY_DAEMON_H_
