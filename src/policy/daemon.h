// The userspace power-delivery daemon (paper Section 5).
//
// The daemon pins applications to cores, selects their initial P-states
// from the configured policy, then runs a monitoring loop (1 second in the
// paper and by default here): read processor statistics through turbostat,
// let the policy redistribute the managed resource, and translate the new
// targets into hardware P-state writes.
//
// Translation is platform specific and lives in the daemon:
//   - Skylake: quantize each target down to the 100 MHz grid and write the
//     per-core PERF_CTL ratio;
//   - Ryzen: reduce the targets to at most three levels with the
//     three-P-state selector, program the P-state definition MSRs, and
//     point each core at its slot (25 MHz grid).
// Stopped apps (priority policy starvation) have their cores put into a
// deep C-state.
//
// Telemetry is not trusted blindly.  Turbostat validates every sample, and
// the daemon walks a degradation ladder on bad input:
//
//   nominal   valid sample: redistribute, translate, program (skipping the
//             hardware writes entirely when the programmed state would not
//             change — monitoring-only policies never rewrite registers);
//   hold      invalid sample: keep the last-known-good targets, touch
//             nothing, wait for telemetry to come back;
//   fallback  `fallback_after` consecutive invalid samples: program every
//             running core to a conservative static floor (the platform
//             minimum by default) and, where the platform has one, arm the
//             hardware RAPL limit — power can no longer exceed the budget
//             no matter how long telemetry stays dark.
//
// Recovery is immediate: the first valid sample returns the daemon to
// nominal, and because the policy's internal state was frozen during the
// fault the next redistribution resumes from the pre-fault targets.
// P-state writes are verified by read-back; failed programming is retried
// with bounded exponential backoff, and `write_retry_limit` consecutive
// failures arm the same RAPL safety net.

#ifndef SRC_POLICY_DAEMON_H_
#define SRC_POLICY_DAEMON_H_

#include <memory>
#include <vector>

#include "src/msr/msr.h"
#include "src/msr/turbostat.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/policy/app_model.h"
#include "src/policy/hwp.h"
#include "src/policy/policy_registry.h"
#include "src/policy/priority_policy.h"
#include "src/policy/share_policy.h"

namespace papd {

// Where the daemon currently sits on the degradation ladder.
enum class DegradationState {
  kNominal,   // Valid telemetry; normal control loop.
  kHold,      // Invalid sample(s); last-known-good targets held.
  kFallback,  // Too many bad periods; conservative static/RAPL floor.
};

const char* DegradationStateName(DegradationState state);

struct DegradationConfig {
  // Master switch.  Off reproduces the pre-hardening daemon (raw telemetry
  // consumed as-is, unconditional reprogramming, no write verification) —
  // the fault-tolerance ablation's "naive" baseline.
  bool enabled = true;
  // Consecutive invalid samples before falling back to the static floor.
  int fallback_after = 3;
  // Consecutive failed (verification mismatch) programming attempts before
  // the RAPL safety net is armed.
  int write_retry_limit = 3;
  // Exponential backoff cap, in control periods, between programming
  // retries while writes keep failing.
  int max_backoff_periods = 4;
  // Static floor programmed in fallback; 0 = the platform minimum.
  Mhz floor_mhz{0.0};
  // Arm the hardware RAPL limit (platforms that have one) while in
  // fallback or under persistent write failure; disarmed on recovery.
  bool rapl_safety_net = true;
};

// Degradation/fault bookkeeping, exposed for tests and benches.  This is a
// view assembled from the daemon's metrics registry — the registry counters
// are the single source of truth (invalid_samples in particular is counted
// by Turbostat itself, so the daemon can never disagree with its sampler).
struct DaemonFaultStats {
  int invalid_samples = 0;   // Samples rejected by telemetry validation.
  int held_periods = 0;      // Periods spent holding last-known-good targets.
  int fallback_periods = 0;  // Periods spent at the conservative floor.
  int failed_programs = 0;   // Programming attempts whose read-back mismatched.
  int backoff_skips = 0;     // Periods skipped while backing off after failure.
  int reprogram_skips = 0;   // Rewrites skipped because targets were unchanged.
};

// Observability hookup for one daemon (see src/obs/trace.h).
struct DaemonObs {
  // Receives one TraceEvent per decision point; null disables tracing (the
  // emission sites then cost one branch each).
  ObsSink* sink = nullptr;
  // Rack shard id stamped on every event (0 for single-socket runs).
  int16_t shard = 0;
};

struct DaemonConfig {
  PolicyKind kind = PolicyKind::kFrequencyShares;
  Watts power_limit_w{85.0};
  Seconds period_s{1.0};
  PriorityPolicy::Options priority;
  // kStatic: the frequency every managed core is pinned to.
  Mhz static_mhz{0.0};
  // When true (kRaplOnly or on request), the hardware RAPL limit register
  // is programmed with power_limit_w.
  bool program_rapl = false;
  // Enable HWP-style saturation hints (paper Section 4.4): the daemon
  // detects each app's highest useful frequency at runtime and the policies
  // stop allocating beyond it, redistributing the excess.
  bool use_hwp_hints = false;
  // Audit every initial-distribution, redistribution and translation step
  // with the PolicyAuditor (src/policy/invariants.h): budget conservation,
  // share monotonicity, grid alignment, the simultaneous-P-state limit —
  // and, for controlling policies, the power ceiling (package power never
  // exceeds the limit plus slack once converged).  A violation aborts with
  // a formatted CHECK failure.
  bool audit = true;
  // Graceful-degradation ladder (see the file comment).
  DegradationConfig degradation;
  // Consume raw, unvalidated telemetry (Turbostat::set_validation(false)).
  // Only the fault-tolerance ablation's naive baseline sets this.
  bool raw_telemetry = false;
  // Trace-event sink and shard tag (appended last: existing designated
  // initializers keep working).
  DaemonObs obs;
};

class PolicyAuditor;

class PowerDaemon {
 public:
  // Borrows the MSR file (and with it the platform).
  PowerDaemon(MsrFile* msr, std::vector<ManagedApp> apps, DaemonConfig config);

  // Runs a caller-provided share policy instead of one of the built-in
  // kinds (config.kind is ignored for policy selection but still controls
  // RAPL programming).  This is the extension point for custom policies;
  // see examples/custom_policy.cc.
  PowerDaemon(MsrFile* msr, std::vector<ManagedApp> apps, DaemonConfig config,
              std::unique_ptr<ShareResource> custom_policy);

  ~PowerDaemon();

  PowerDaemon(const PowerDaemon&) = delete;
  PowerDaemon& operator=(const PowerDaemon&) = delete;

  // Programs the initial distribution (and the RAPL register if requested).
  void Start();

  // One control iteration; call once per period.
  void Step();

  // Changes the power limit at runtime (cluster managers adjust node caps
  // while jobs run, e.g. Facebook's Dynamo cited in the paper).  Takes
  // effect at the next Step(); reprograms the RAPL register immediately
  // when hardware capping is in use.
  void SetPowerLimit(Watts limit_w);

  // Per-app frequency targets after the last iteration;
  // PriorityPolicy::kStopped for starved apps.
  const std::vector<Mhz>& targets() const { return targets_; }
  const std::vector<ManagedApp>& apps() const { return apps_; }
  const DaemonConfig& config() const { return config_; }

  struct Record {
    TelemetrySample sample;
    std::vector<Mhz> targets;
    DegradationState state = DegradationState::kNominal;
  };
  const std::vector<Record>& history() const { return history_; }

  // Platform constants handed to the policies (exposed for tests).
  const PolicyPlatform& policy_platform() const { return platform_; }

  // The invariant auditor, or nullptr when config.audit is false.
  PolicyAuditor* auditor() { return auditor_.get(); }

  // --- Degradation introspection ---------------------------------------------
  DegradationState degradation_state() const { return state_; }
  // Assembled from the metrics registry (see DaemonFaultStats).
  DaemonFaultStats fault_stats() const;
  int bad_sample_streak() const { return bad_sample_streak_; }
  int write_fail_streak() const { return write_fail_streak_; }

  // --- Observability ----------------------------------------------------------
  // The daemon's metrics registry: fault counters, per-period gauges
  // (package power, overshoot), redistribute-latency histogram.  One row is
  // snapshotted per Step(); export with obs::MetricsCsv / obs::MetricsJson.
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::MetricsRegistry& metrics() { return metrics_; }

 private:
  // The control-loop body; Step() wraps it with period begin/end tracing,
  // the latency measurement and the per-period metrics snapshot.
  void StepWithSample(TelemetrySample sample);
  // Translates `want` into hardware writes (online transitions, Ryzen slot
  // selection or Skylake per-core ratios) and runs the translation audit.
  void ProgramTargets(const std::vector<Mhz>& want);
  // ProgramTargets plus the hardening wrapper: skip when nothing changed,
  // verify by read-back, back off exponentially on persistent failure and
  // arm the RAPL safety net past the retry limit.
  void Program(const std::vector<Mhz>& want);
  // Reads back the effective per-app request and compares against `want`.
  bool VerifyProgrammed(const std::vector<Mhz>& want) const;
  // kPstateWrite trace event summarizing what translation just wrote.
  void EmitPstateWrite(const std::vector<Mhz>& want, bool verified_ok) const;
  // Per-app conservative floor used in fallback.
  std::vector<Mhz> FallbackTargets() const;
  void ArmRaplSafetyNet();
  void DisarmRaplSafetyNet();
  // True for kinds that actively control P-states every period (the power
  // ceiling audit only makes sense for them).
  bool ActivelyControlling() const;
  // Registers the fault counters/gauges and binds turbostat's
  // invalid-sample counter into the registry (called from both ctors).
  void InitObs();
  // Emits through config_.obs.sink when one is installed.  a/b accept any
  // payload obs::ToPayload handles (doubles or typed quantities).
  void Emit(obs::TraceEventType type, int32_t index, int32_t code, obs::TracePayload a,
            obs::TracePayload b) const;
  template <class A, class B>
  void Emit(obs::TraceEventType type, int32_t index, int32_t code, A a, B b) const {
    Emit(type, index, code, obs::ToPayload(a), obs::ToPayload(b));
  }
  // Degradation-ladder move with trace event + gauge update.
  void TransitionLadder(DegradationState to);

  MsrFile* msr_;
  std::vector<ManagedApp> apps_;
  DaemonConfig config_;
  PolicyPlatform platform_;
  Turbostat turbostat_;

  std::unique_ptr<ShareResource> share_policy_;
  std::unique_ptr<PriorityPolicy> priority_policy_;
  std::unique_ptr<SaturationDetector> saturation_;
  std::unique_ptr<PolicyAuditor> auditor_;

  std::vector<Mhz> targets_;
  std::vector<Record> history_;

  // --- Observability state ----------------------------------------------------
  obs::MetricsRegistry metrics_;
  // Cached registry pointers bumped on the hot path (no name lookups).
  obs::Counter* c_held_periods_ = nullptr;
  obs::Counter* c_fallback_periods_ = nullptr;
  obs::Counter* c_failed_programs_ = nullptr;
  obs::Counter* c_backoff_skips_ = nullptr;
  obs::Counter* c_reprogram_skips_ = nullptr;
  obs::Gauge* g_pkg_w_ = nullptr;
  obs::Gauge* g_ladder_ = nullptr;
  obs::Histogram* h_redistribute_us_ = nullptr;
  obs::Histogram* h_overshoot_w_ = nullptr;
  // Control periods completed (trace-event index) and the simulated time of
  // the last telemetry sample (trace-event timestamp).
  int period_ = 0;
  Seconds last_sample_t_{0.0};

  // --- Degradation-ladder state ----------------------------------------------
  DegradationState state_ = DegradationState::kNominal;
  int bad_sample_streak_ = 0;
  int write_fail_streak_ = 0;
  // Periods left to wait before the next programming retry, and the current
  // backoff width it was reset from.
  int retry_wait_ = 0;
  int backoff_ = 1;
  // Last target vector handed to ProgramTargets, and whether its read-back
  // verified; rewrites are skipped only when the last program stuck.
  std::vector<Mhz> last_programmed_want_;
  // What translation actually wrote per app (post-quantization, post-slot
  // reduction; PriorityPolicy::kStopped for stopped apps) — the expectation
  // VerifyProgrammed reads hardware back against.
  std::vector<Mhz> last_expected_mhz_;
  bool last_program_ok_ = false;
  bool rapl_net_armed_ = false;
};

// Derives the policy-visible platform constants from a platform spec (the
// datasheet facts an operator would configure the daemon with).
PolicyPlatform MakePolicyPlatform(const PlatformSpec& spec);

}  // namespace papd

#endif  // SRC_POLICY_DAEMON_H_
