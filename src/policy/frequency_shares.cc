#include "src/policy/frequency_shares.h"

#include <algorithm>
#include <cmath>

#include "src/policy/min_funding.h"

namespace papd {

std::vector<Mhz> FrequencyShares::InitialDistribution(const std::vector<ManagedApp>& apps,
                                                      Watts limit_w) {
  (void)limit_w;  // The control loop pulls power to the limit from here.
  double max_share = 0.0;
  for (const ManagedApp& app : apps) {
    max_share = std::max(max_share, app.shares);
  }
  targets_.clear();
  targets_.reserve(apps.size());
  for (const ManagedApp& app : apps) {
    const Mhz f{platform_.max_mhz * (max_share > 0.0 ? app.shares / max_share : 1.0)};
    targets_.push_back(std::clamp(f, platform_.min_mhz, AppMaxMhz(app, platform_)));
  }
  return targets_;
}

std::vector<Mhz> FrequencyShares::Redistribute(const std::vector<ManagedApp>& apps,
                                               const TelemetrySample& sample, Watts limit_w) {
  const Watts power_delta{limit_w - sample.pkg_w};
  if (Abs(power_delta) <= kPowerToleranceW) {
    return targets_;
  }
  const double alpha = AlphaOf(power_delta, platform_.max_power_w);
  const Mhz freq_delta{alpha * platform_.max_mhz * static_cast<double>(apps.size())};

  // Redistribution re-runs the (initial-style) proportional split over the
  // adjusted total frequency budget, with min-funding revocation at the
  // platform range ends: saturated apps are pinned there and the remainder
  // re-spread — trading strict proportionality for utilization exactly as
  // the paper chooses (Section 5.2).  Re-solving from the total (rather
  // than accumulating deltas) keeps the ratios exact across periods even
  // when saturation makes individual deltas asymmetric.
  ResourceUnits total = AsResourceUnits(freq_delta);
  for (Mhz f : targets_) {
    total += AsResourceUnits(f);
  }
  std::vector<ShareRequest> req;
  req.reserve(apps.size());
  for (const ManagedApp& app : apps) {
    req.push_back(ShareRequest{
        .shares = app.shares,
        .minimum = AsResourceUnits(platform_.min_mhz),
        // Never allocate past the app's highest useful frequency (HWP
        // hints, paper Section 4.4); min-funding revocation hands the
        // excess to apps that can still use it.
        .maximum = AsResourceUnits(AppMaxMhz(app, platform_)),
    });
  }
  const std::vector<ResourceUnits> split = DistributeProportional(total, req);
  targets_.clear();
  for (ResourceUnits u : split) {
    targets_.push_back(Mhz{u});
  }
  return targets_;
}

}  // namespace papd
