// Frequency shares (paper Section 5.2).
//
// Applications' frequencies are kept proportional to their shares.  Only
// package power measurements and per-core DVFS are required, which makes
// this the least demanding policy — and, per the paper's results, the most
// stable one, since frequency does not drift with program phase.

#ifndef SRC_POLICY_FREQUENCY_SHARES_H_
#define SRC_POLICY_FREQUENCY_SHARES_H_

#include "src/policy/share_policy.h"

namespace papd {

class FrequencyShares : public ShareResource {
 public:
  explicit FrequencyShares(PolicyPlatform platform) : platform_(platform) {}

  std::string Name() const override { return "frequency-shares"; }

  // Initial distribution: the highest-share application gets the maximum
  // frequency; others get their share-proportional fraction of it, clamped
  // to the platform minimum.
  std::vector<Mhz> InitialDistribution(const std::vector<ManagedApp>& apps,
                                       Watts limit_w) override;

  // Redistribution: PowerDelta -> FrequencyDelta via alpha, distributed
  // over non-saturated apps proportionally to shares (min-funding
  // revocation at the frequency range ends).
  std::vector<Mhz> Redistribute(const std::vector<ManagedApp>& apps,
                                const TelemetrySample& sample, Watts limit_w) override;

  const std::vector<Mhz>& targets() const { return targets_; }

 private:
  PolicyPlatform platform_;
  std::vector<Mhz> targets_;
};

}  // namespace papd

#endif  // SRC_POLICY_FREQUENCY_SHARES_H_
