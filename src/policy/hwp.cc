#include "src/policy/hwp.h"

#include <algorithm>
#include <cmath>

namespace papd {

SaturationDetector::SaturationDetector(PolicyPlatform platform, size_t num_apps)
    : SaturationDetector(platform, num_apps, Params()) {}

SaturationDetector::SaturationDetector(PolicyPlatform platform, size_t num_apps, Params params)
    : platform_(platform), params_(params), apps_(num_apps) {}

int SaturationDetector::BucketOf(Mhz mhz) const {
  return static_cast<int>(std::lround(mhz / params_.bucket_mhz));
}

void SaturationDetector::UpdatePerfCap(AppState* state) {
  // Anchor: the best IPS observed at any frequency.
  Ips best_ips{0.0};
  Mhz best_mhz{0.0};
  for (const auto& [bucket, ips] : state->ips_by_bucket) {
    if (ips > best_ips) {
      best_ips = ips;
      best_mhz = bucket * params_.bucket_mhz;
    }
  }
  if (best_ips <= Ips{0.0}) {
    state->perf_cap_mhz = Mhz{0.0};
    return;
  }
  // Useful max: the lowest observed frequency keeping (1 - budget) of the
  // anchor IPS.
  const Ips floor_ips{(1.0 - params_.perf_loss_budget) * best_ips};
  Mhz cap{best_mhz};
  for (const auto& [bucket, ips] : state->ips_by_bucket) {
    const Mhz f{bucket * params_.bucket_mhz};
    if (f < cap && ips >= floor_ips) {
      cap = f;
    }
  }
  Mhz candidate{0.0};
  // Only worth declaring if it saves a meaningful slice of frequency.
  if (best_mhz - cap >= params_.min_saving_mhz) {
    candidate = std::max(cap, platform_.min_mhz);
  }
  // Hysteresis: once capped, the app runs *at* the cap, so only the cap
  // bucket's EWMA refreshes and phase noise can push it just under the
  // floor.  Keep an established cap while its bucket stays within the
  // relaxed floor.
  if (state->perf_cap_mhz > Mhz{0.0} && (candidate == Mhz{0.0} || candidate > state->perf_cap_mhz)) {
    const auto it = state->ips_by_bucket.find(BucketOf(state->perf_cap_mhz));
    const Ips keep_floor{(1.0 - params_.perf_loss_budget - params_.clear_hysteresis) * best_ips};
    if (it != state->ips_by_bucket.end() && it->second >= keep_floor) {
      return;  // Keep the existing cap.
    }
  }
  state->perf_cap_mhz = candidate;
}

void SaturationDetector::Observe(const std::vector<ManagedApp>& apps,
                                 const TelemetrySample& sample,
                                 const std::vector<Mhz>& requested) {
  periods_++;
  // Package-wide clamps (RAPL, turbo ladder) depress every core's
  // active/requested ratio at once; an app-specific refusal shows as a gap
  // much deeper than the best ratio achieved by anyone this period.
  double best_ratio = 0.0;
  for (size_t i = 0; i < apps.size(); i++) {
    const auto& core = sample.cores[static_cast<size_t>(apps[i].cpu)];
    if (i < requested.size() && requested[i] > Mhz{0.0} && core.busy > 0.5) {
      best_ratio = std::max(best_ratio, core.active_mhz / requested[i]);
    }
  }

  for (size_t i = 0; i < apps.size(); i++) {
    AppState& state = apps_[i];
    const auto& core = sample.cores[static_cast<size_t>(apps[i].cpu)];
    if (i >= requested.size() || requested[i] <= Mhz{0.0} || core.busy <= 0.5) {
      state.gap_streak = 0;
      continue;
    }

    state.last_active_mhz = core.active_mhz;

    // --- Rule 1: refused frequency grants -----------------------------
    // Compare against the best ratio achieved by anyone: package-wide
    // clamps (turbo ladder, RAPL) depress every ratio together, while an
    // app-specific refusal (AVX cap) leaves this app well below its peers.
    const double ratio = core.active_mhz / requested[i];
    const bool app_specific_gap =
        best_ratio > 0.0 && ratio < params_.grant_ratio * best_ratio;
    if (app_specific_gap) {
      state.gap_streak++;
      if (state.gap_streak >= params_.grant_periods) {
        // Round up to the grid so the cap never under-grants.
        const double steps = std::ceil(core.active_mhz / platform_.step_mhz - 1e-9);
        state.gap_cap_mhz = std::min(platform_.max_mhz, steps * platform_.step_mhz);
      }
    } else {
      state.gap_streak = 0;
      // If the app now achieves frequencies above a rule-1 cap, the cap was
      // stale (e.g. the AVX phase ended): clear it.
      if (state.gap_cap_mhz > Mhz{0.0} &&
          core.active_mhz > state.gap_cap_mhz + platform_.step_mhz) {
        state.gap_cap_mhz = Mhz{0.0};
      }
    }

    // --- Rule 2: lowest frequency preserving near-peak IPS --------------
    const int bucket = BucketOf(core.active_mhz);
    auto [it, inserted] = state.ips_by_bucket.emplace(bucket, core.ips);
    if (!inserted) {
      it->second += params_.ewma_alpha * (core.ips - it->second);
    }
    UpdatePerfCap(&state);
  }
}

std::vector<Mhz> SaturationDetector::ApplyProbes(const std::vector<ManagedApp>& apps,
                                                 const std::vector<Mhz>& targets) {
  probe_app_ = -1;
  if (params_.probe_interval <= 0 || periods_ % params_.probe_interval != 0) {
    return targets;
  }
  // Round-robin over apps; probe the first with unexplored curve below its
  // operating point.  Exploration walks downward from the lowest mapped
  // bucket and stops once a bucket falls outside the performance budget —
  // at that point the useful-max estimate is bounded on both sides.
  std::vector<Mhz> out = targets;
  const size_t n = apps.size();
  for (size_t k = 0; k < n; k++) {
    const size_t i = (static_cast<size_t>(periods_) / params_.probe_interval + k) % n;
    if (i >= targets.size() || targets[i] <= Mhz{0.0}) {
      continue;  // Stopped app.
    }
    const AppState& state = apps_[i];
    // Probe below the achieved operating point (the target may be
    // unreachable under package-wide clamps).
    const Mhz base = state.last_active_mhz > Mhz{0.0}
                         ? std::min(targets[i], state.last_active_mhz)
                         : targets[i];
    Mhz probe;
    if (state.ips_by_bucket.empty()) {
      probe = base - params_.probe_step_mhz;
    } else {
      Ips best_ips{0.0};
      for (const auto& [bucket, ips] : state.ips_by_bucket) {
        best_ips = std::max(best_ips, ips);
      }
      const auto lowest = state.ips_by_bucket.begin();
      if (lowest->second < (1.0 - params_.perf_loss_budget) * best_ips) {
        continue;  // Curve mapped past the knee; nothing left to learn.
      }
      probe = lowest->first * params_.bucket_mhz - params_.probe_step_mhz;
    }
    if (probe < platform_.min_mhz || probe >= base ||
        state.ips_by_bucket.count(BucketOf(probe)) != 0) {
      continue;
    }
    out[i] = probe;
    probe_app_ = static_cast<int>(i);
    break;
  }
  return out;
}

Mhz SaturationDetector::UsefulMaxMhz(size_t app_index) const {
  const AppState& state = apps_[app_index];
  if (state.gap_cap_mhz > Mhz{0.0} && state.perf_cap_mhz > Mhz{0.0}) {
    return std::min(state.gap_cap_mhz, state.perf_cap_mhz);
  }
  return std::max(state.gap_cap_mhz, state.perf_cap_mhz);
}

}  // namespace papd
