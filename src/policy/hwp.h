// HWP-style saturation detection: the "highest useful frequency".
//
// Paper Section 4.4: "both priority and proportional-share policies can be
// modified to try to run applications at the highest useful frequency
// rather than the highest possible frequency.  Hardware support such as
// Intel's HWP can help identify this point."  Intel's HWP/CPPC does this in
// firmware with an abstract performance metric; we implement the software
// equivalent over the telemetry the daemon already samples.
//
// Two saturation signatures are detected, per app:
//
//  1. Refused frequency grants (AVX caps).  The core persistently runs
//     below its requested frequency while other cores achieve theirs — the
//     silicon is refusing the request (AVX frequency limits), so requesting
//     more is pointless.  Useful max := the achieved frequency.
//
//  2. Performance saturation (memory-bound codes).  The detector maintains
//     per-frequency-bucket EWMAs of measured IPS and defines the useful
//     max as the *lowest* observed frequency that still delivers at least
//     (1 - epsilon) of the best observed IPS — i.e. "how slow can this app
//     run while keeping 1-epsilon of its peak performance?".  Anchoring the
//     criterion to the globally best bucket (rather than comparing adjacent
//     points) keeps repeated local comparisons from ratcheting the cap to
//     the floor of a smoothly saturating curve.  A cap is only declared if
//     it saves a meaningful amount of frequency, so linear-scaling apps are
//     never capped.
//
// Steady-state control provides no frequency diversity, so signature 2
// needs *probing*, exactly as HWP autonomously explores performance
// levels: every few periods the detector asks the daemon to run one
// not-yet-mapped app one notch below its current frequency for a single
// period.  The probe costs that app a few hundred MHz for one period out
// of many — negligible — and fills in the IPS-vs-frequency curve.

#ifndef SRC_POLICY_HWP_H_
#define SRC_POLICY_HWP_H_

#include <map>
#include <vector>

#include "src/msr/turbostat.h"
#include "src/policy/app_model.h"

namespace papd {

class SaturationDetector {
 public:
  struct Params {
    // Rule 1: an app whose active/requested ratio falls below this
    // fraction of the *best* ratio any app achieves has an app-specific
    // refusal.  Turbo-ladder gaps are shallow (~0.93 of best); AVX caps are
    // deep (~0.6), so 0.85 separates them.
    double grant_ratio = 0.85;
    // ...for this many consecutive periods.
    int grant_periods = 3;
    // Rule 2: allowed performance loss at the useful max.
    double perf_loss_budget = 0.08;
    // Rule 2: extra loss tolerated before an established cap is dropped
    // (phase noise moves bucket EWMAs by a few percent).
    double clear_hysteresis = 0.04;
    // Rule 2: minimum frequency saving for a cap to be worth declaring.
    Mhz min_saving_mhz{400.0};
    // IPS EWMA smoothing per bucket.
    double ewma_alpha = 0.30;
    // Frequency bucket width.
    Mhz bucket_mhz{200.0};
    // Probe one app every this many Observe() calls.
    int probe_interval = 4;
    // Probe this far below the app's current operating frequency.
    Mhz probe_step_mhz{500.0};
  };

  SaturationDetector(PolicyPlatform platform, size_t num_apps);
  SaturationDetector(PolicyPlatform platform, size_t num_apps, Params params);

  // Feeds one control period's telemetry.  `requested` is the frequency the
  // daemon actually programmed for each app this period (including any
  // probe override).
  void Observe(const std::vector<ManagedApp>& apps, const TelemetrySample& sample,
               const std::vector<Mhz>& requested);

  // Applies at most one probe override to the policy's targets; returns the
  // (possibly modified) targets to program this period.  Call after
  // Observe() each period when probing is desired.
  std::vector<Mhz> ApplyProbes(const std::vector<ManagedApp>& apps,
                               const std::vector<Mhz>& targets);

  // Current estimate of the app's highest useful frequency; 0 = no
  // saturation detected.
  Mhz UsefulMaxMhz(size_t app_index) const;

  // True if the given app is being probed this period (test/debug hook).
  bool ProbingApp(size_t app_index) const { return probe_app_ == static_cast<int>(app_index); }

 private:
  struct AppState {
    int gap_streak = 0;
    Mhz gap_cap_mhz{0.0};     // Rule-1 cap; 0 = none.
    std::map<int, Ips> ips_by_bucket;
    Mhz perf_cap_mhz{0.0};    // Rule-2 cap; 0 = none.
    Mhz last_active_mhz{0.0};  // Most recent achieved frequency.
  };

  int BucketOf(Mhz mhz) const;
  void UpdatePerfCap(AppState* state);

  PolicyPlatform platform_;
  Params params_;
  std::vector<AppState> apps_;
  int periods_ = 0;
  int probe_app_ = -1;  // App probed this period; -1 = none.
};

}  // namespace papd

#endif  // SRC_POLICY_HWP_H_
