#include "src/policy/invariants.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string_view>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/policy/frequency_shares.h"
#include "src/policy/performance_shares.h"
#include "src/policy/power_shares.h"

namespace papd {
namespace {

// An app with a detected highest-useful-frequency cap (HWP hints, paper
// Section 4.4) legitimately breaks pairwise ordering: min-funding
// revocation hands its excess to apps that can still use it.
bool HasUsefulMaxCap(const ManagedApp& app) { return app.max_useful_mhz > Mhz{0.0}; }

bool IsStopped(Mhz target) { return target == PriorityPolicy::kStopped; }

Mhz RunningSum(const std::vector<Mhz>& targets) {
  Mhz sum{0.0};
  for (Mhz t : targets) {
    if (!IsStopped(t)) {
      sum += t;
    }
  }
  return sum;
}

}  // namespace

PolicyAuditor::PolicyAuditor(PolicyPlatform platform, int max_simultaneous_pstates,
                             AuditOptions options)
    : platform_(platform),
      max_simultaneous_pstates_(max_simultaneous_pstates),
      options_(options) {}

void PolicyAuditor::Fail(const char* stage, const std::string& message) {
  if (options_.fatal) {
    PAPD_CHECK(false) << "policy invariant violated [" << stage << "]:" << message;
  }
  PAPD_LOG_ERROR("policy invariant violated [%s]: %s", stage, message.c_str());
  violations_.push_back(Violation{stage, message});
}

PolicyAuditor::NativeView PolicyAuditor::NativeTargets(const ShareResource* policy) const {
  NativeView view;
  if (const auto* freq = dynamic_cast<const FrequencyShares*>(policy)) {
    view.domain = "frequency";
    for (Mhz f : freq->targets()) {
      view.values.push_back(AsResourceUnits(f));
    }
    view.scale = AsResourceUnits(platform_.max_mhz);
  } else if (const auto* perf = dynamic_cast<const PerformanceShares*>(policy)) {
    view.domain = "performance";
    view.values = perf->performance_targets();
    view.scale = 1.0;
  } else if (const auto* power = dynamic_cast<const PowerShares*>(policy)) {
    view.domain = "power";
    for (Watts w : power->power_targets()) {
      view.values.push_back(AsResourceUnits(w));
    }
    view.scale = AsResourceUnits(platform_.core_max_w);
  }
  return view;
}

void PolicyAuditor::CheckTargetsWellFormed(const char* stage,
                                           const std::vector<ManagedApp>& apps,
                                           const std::vector<Mhz>& targets,
                                           bool allow_stopped) {
  if (targets.size() != apps.size()) {
    std::ostringstream os;
    os << " produced " << targets.size() << " targets for " << apps.size() << " apps";
    Fail(stage, os.str());
    return;
  }
  const Mhz tol = options_.epsilon * platform_.max_mhz;
  for (size_t i = 0; i < targets.size(); i++) {
    const Mhz t{targets[i]};
    if (allow_stopped && IsStopped(t)) {
      continue;
    }
    if (!IsFinite(t)) {
      std::ostringstream os;
      os << " non-finite target for app " << i << " (" << apps[i].name << ")";
      Fail(stage, os.str());
      continue;
    }
    if (t < platform_.min_mhz - tol) {
      std::ostringstream os;
      os << " target " << t << " MHz for app " << i << " (" << apps[i].name
         << ") below platform minimum " << platform_.min_mhz << " MHz";
      Fail(stage, os.str());
    }
    const Mhz ceiling{AppMaxMhz(apps[i], platform_)};
    if (t > ceiling + tol) {
      std::ostringstream os;
      os << " target " << t << " MHz for app " << i << " (" << apps[i].name
         << ") above its ceiling " << ceiling << " MHz";
      Fail(stage, os.str());
    }
  }
}

void PolicyAuditor::CheckShareMonotonicity(const char* stage,
                                           const std::vector<ManagedApp>& apps,
                                           const NativeView& view) {
  if (view.domain == nullptr || view.values.size() != apps.size()) {
    return;
  }
  const double tol = options_.epsilon * std::max(1.0, view.scale);
  for (size_t i = 0; i < apps.size(); i++) {
    if (HasUsefulMaxCap(apps[i])) {
      continue;
    }
    for (size_t j = i + 1; j < apps.size(); j++) {
      if (HasUsefulMaxCap(apps[j])) {
        continue;
      }
      const bool i_dominates = apps[i].shares > apps[j].shares;
      const size_t hi = i_dominates ? i : j;
      const size_t lo = i_dominates ? j : i;
      if (apps[hi].shares > apps[lo].shares && view.values[hi] < view.values[lo] - tol) {
        std::ostringstream os;
        os << " share monotonicity broken in the " << view.domain << " domain: app " << hi
           << " (" << apps[hi].name << ", " << apps[hi].shares << " shares) got "
           << view.values[hi] << " but app " << lo << " (" << apps[lo].name << ", "
           << apps[lo].shares << " shares) got " << view.values[lo];
        Fail(stage, os.str());
      }
    }
  }
}

void PolicyAuditor::CheckInitialDistribution(const ShareResource* policy,
                                             const std::vector<ManagedApp>& apps,
                                             Watts limit_w,
                                             const std::vector<Mhz>& targets) {
  CheckTargetsWellFormed("initial", apps, targets, /*allow_stopped=*/false);
  const NativeView view = NativeTargets(policy);
  CheckShareMonotonicity("initial", apps, view);

  // Power shares is the one policy whose initial native allocation is an
  // explicit budget split, so Σ targets must conserve the core budget:
  // limit minus the uncore estimate, floored at every core's minimum.
  if (view.domain != nullptr && std::string_view(view.domain) == "power") {
    const double budget =
        AsResourceUnits(std::max(limit_w - platform_.uncore_estimate_w,
                                 platform_.core_min_w * static_cast<double>(apps.size())));
    double sum = 0.0;
    for (double w : view.values) {
      sum += w;
    }
    if (sum > budget + options_.epsilon * std::max(1.0, budget)) {
      std::ostringstream os;
      os << " power conservation broken: initial power targets sum to " << sum
         << " W but the core budget under the " << limit_w << " W limit is " << budget
         << " W";
      Fail("initial", os.str());
    }
  }

  prev_native_ = view.values;
  prev_native_scale_ = view.scale;
  prev_priority_.clear();
}

void PolicyAuditor::CheckRedistribution(const ShareResource* policy,
                                        const std::vector<ManagedApp>& apps,
                                        const TelemetrySample& sample, Watts limit_w,
                                        const std::vector<Mhz>& targets) {
  CheckTargetsWellFormed("redistribute", apps, targets, /*allow_stopped=*/false);
  const NativeView view = NativeTargets(policy);
  CheckShareMonotonicity("redistribute", apps, view);

  // Directional budget conservation: while package power is over the limit
  // (beyond the control deadband), a redistribution may only shrink the
  // total native allocation — growing it would push power further past the
  // limit and the control loop would diverge.
  if (view.domain != nullptr && prev_native_.size() == view.values.size() &&
      sample.pkg_w > limit_w + options_.conservation_deadband_w) {
    double prev_sum = 0.0;
    double new_sum = 0.0;
    for (size_t i = 0; i < view.values.size(); i++) {
      prev_sum += prev_native_[i];
      new_sum += view.values[i];
    }
    const double tol =
        options_.epsilon * std::max(1.0, prev_native_scale_) *
        static_cast<double>(view.values.size());
    if (new_sum > prev_sum + tol) {
      std::ostringstream os;
      os << " budget conservation broken in the " << view.domain
         << " domain: package power " << sample.pkg_w << " W exceeds the limit " << limit_w
         << " W but the total allocation grew from " << prev_sum << " to " << new_sum;
      Fail("redistribute", os.str());
    }
  }
  if (view.domain != nullptr) {
    prev_native_ = view.values;
    prev_native_scale_ = view.scale;
  }
}

void PolicyAuditor::CheckPriorityInitialDistribution(const PriorityPolicy::Options& options,
                                                     const std::vector<ManagedApp>& apps,
                                                     Watts limit_w,
                                                     const std::vector<Mhz>& targets) {
  (void)limit_w;  // The priority policy starts from the class defaults and
                  // lets the control loop pull power to the limit.
  CheckTargetsWellFormed("initial", apps, targets, /*allow_stopped=*/true);
  if (targets.size() != apps.size()) {
    return;
  }
  const Mhz tol = options_.epsilon * platform_.max_mhz;
  for (size_t i = 0; i < apps.size(); i++) {
    if (apps[i].high_priority) {
      const Mhz ceiling{AppMaxMhz(apps[i], platform_)};
      if (Abs(targets[i] - ceiling) > tol) {
        std::ostringstream os;
        os << " HP app " << i << " (" << apps[i].name << ") must start at its ceiling "
           << ceiling << " MHz, got " << targets[i];
        Fail("initial", os.str());
      }
    } else if (options.starve_lp) {
      if (!IsStopped(targets[i])) {
        std::ostringstream os;
        os << " LP app " << i << " (" << apps[i].name
           << ") must start stopped in starvation mode, got " << targets[i] << " MHz";
        Fail("initial", os.str());
      }
    } else if (Abs(targets[i] - platform_.min_mhz) > tol) {
      std::ostringstream os;
      os << " LP app " << i << " (" << apps[i].name
         << ") must start at the minimum P-state with starvation disabled, got "
         << targets[i] << " MHz";
      Fail("initial", os.str());
    }
  }
  prev_priority_ = targets;
  prev_native_.clear();
}

void PolicyAuditor::CheckPriorityRedistribution(const PriorityPolicy::Options& options,
                                                const std::vector<ManagedApp>& apps,
                                                const TelemetrySample& sample, Watts limit_w,
                                                const std::vector<Mhz>& targets) {
  CheckTargetsWellFormed("redistribute", apps, targets, /*allow_stopped=*/true);
  if (targets.size() != apps.size()) {
    return;
  }
  const Mhz tol = options_.epsilon * platform_.max_mhz;
  for (size_t i = 0; i < apps.size(); i++) {
    if (!IsStopped(targets[i])) {
      continue;
    }
    if (apps[i].high_priority) {
      std::ostringstream os;
      os << " HP app " << i << " (" << apps[i].name << ") was stopped; only LP apps starve";
      Fail("redistribute", os.str());
    } else if (!options.starve_lp) {
      std::ostringstream os;
      os << " LP app " << i << " (" << apps[i].name
         << ") was stopped although starvation is disabled";
      Fail("redistribute", os.str());
    }
  }

  // Two-level ordering: every running HP app runs at least as fast as every
  // running LP app (LP receives only residual power).  Apps with a
  // highest-useful-frequency cap are exempt — an HP app capped at 1.5 GHz
  // legitimately hands headroom to an uncapped LP app.
  for (size_t hp = 0; hp < apps.size(); hp++) {
    if (!apps[hp].high_priority || IsStopped(targets[hp]) || HasUsefulMaxCap(apps[hp])) {
      continue;
    }
    for (size_t lp = 0; lp < apps.size(); lp++) {
      if (apps[lp].high_priority || IsStopped(targets[lp]) || HasUsefulMaxCap(apps[lp])) {
        continue;
      }
      if (targets[hp] < targets[lp] - tol) {
        std::ostringstream os;
        os << " priority inversion: HP app " << hp << " (" << apps[hp].name << ") at "
           << targets[hp] << " MHz below LP app " << lp << " (" << apps[lp].name << ") at "
           << targets[lp] << " MHz";
        Fail("redistribute", os.str());
      }
    }
  }

  // Directional budget conservation, counting only running apps.
  if (prev_priority_.size() == targets.size() &&
      sample.pkg_w > limit_w + options_.conservation_deadband_w) {
    const Mhz prev_sum{RunningSum(prev_priority_)};
    const Mhz new_sum{RunningSum(targets)};
    const Mhz stage_tol{tol * static_cast<double>(targets.size())};
    if (new_sum > prev_sum + stage_tol) {
      std::ostringstream os;
      os << " budget conservation broken: package power " << sample.pkg_w
         << " W exceeds the limit " << limit_w << " W but the total running allocation grew"
         << " from " << prev_sum << " to " << new_sum << " MHz";
      Fail("redistribute", os.str());
    }
  }
  prev_priority_ = targets;
}

void PolicyAuditor::CheckTranslation(const std::vector<Mhz>& programmed_mhz) {
  const Mhz tol = options_.epsilon * platform_.max_mhz;
  std::vector<long> distinct;
  for (size_t i = 0; i < programmed_mhz.size(); i++) {
    const Mhz f{programmed_mhz[i]};
    if (!IsFinite(f)) {
      std::ostringstream os;
      os << " non-finite programmed frequency for slot " << i;
      Fail("translate", os.str());
      continue;
    }
    if (f < platform_.min_mhz - tol || f > platform_.max_mhz + tol) {
      std::ostringstream os;
      os << " programmed frequency " << f << " MHz outside the platform range ["
         << platform_.min_mhz << ", " << platform_.max_mhz << "]";
      Fail("translate", os.str());
      continue;
    }
    if (!OnFrequencyGrid(f - platform_.min_mhz, platform_.step_mhz)) {
      std::ostringstream os;
      os << " programmed frequency " << f << " MHz off the " << platform_.step_mhz
         << " MHz platform grid";
      Fail("translate", os.str());
      continue;
    }
    const long key = std::lround((f - platform_.min_mhz) / platform_.step_mhz);
    if (std::find(distinct.begin(), distinct.end(), key) == distinct.end()) {
      distinct.push_back(key);
    }
  }
  if (max_simultaneous_pstates_ > 0 &&
      static_cast<int>(distinct.size()) > max_simultaneous_pstates_) {
    std::ostringstream os;
    os << " " << distinct.size() << " distinct simultaneous frequencies programmed; the"
       << " platform supports at most " << max_simultaneous_pstates_;
    Fail("translate", os.str());
  }
}

void PolicyAuditor::CheckPowerCeiling(const TelemetrySample& sample, Watts limit_w,
                                      const std::vector<Mhz>& targets) {
  if (limit_w != ceiling_limit_w_) {
    // New (or first) budget: restart the convergence grace window.
    ceiling_limit_w_ = limit_w;
    ceiling_grace_left_ = options_.power_ceiling_grace_periods;
    ceiling_over_streak_ = 0;
  }
  if (ceiling_grace_left_ > 0) {
    ceiling_grace_left_--;
    return;
  }
  const Watts ceiling_w{limit_w + options_.power_ceiling_slack_w};
  if (sample.pkg_w <= ceiling_w) {
    ceiling_over_streak_ = 0;
    return;
  }
  // Floor saturation: every running core already at the platform minimum
  // means the limit is unreachable for this workload; frequency scaling has
  // no correction left to apply, so over-limit power is not a policy bug.
  const Mhz tol = options_.epsilon * platform_.max_mhz;
  bool all_at_floor = true;
  for (Mhz t : targets) {
    if (!IsStopped(t) && t > platform_.min_mhz + tol) {
      all_at_floor = false;
      break;
    }
  }
  if (all_at_floor) {
    return;
  }
  ceiling_over_streak_++;
  if (ceiling_over_streak_ >= options_.power_ceiling_patience) {
    std::ostringstream os;
    os << " package power " << sample.pkg_w << " W above the ceiling " << ceiling_w
       << " W (limit " << limit_w << " W + slack " << options_.power_ceiling_slack_w
       << " W) for " << ceiling_over_streak_ << " consecutive periods";
    Fail("power-ceiling", os.str());
    ceiling_over_streak_ = 0;
  }
}

AuditedPolicy::AuditedPolicy(std::unique_ptr<ShareResource> inner, PolicyAuditor* auditor)
    : inner_(std::move(inner)), auditor_(auditor) {
  PAPD_CHECK(inner_ != nullptr);
  PAPD_CHECK(auditor_ != nullptr);
}

std::string AuditedPolicy::Name() const { return inner_->Name() + "+audited"; }

std::vector<Mhz> AuditedPolicy::InitialDistribution(const std::vector<ManagedApp>& apps,
                                                    Watts limit_w) {
  std::vector<Mhz> targets = inner_->InitialDistribution(apps, limit_w);
  auditor_->CheckInitialDistribution(inner_.get(), apps, limit_w, targets);
  return targets;
}

std::vector<Mhz> AuditedPolicy::Redistribute(const std::vector<ManagedApp>& apps,
                                             const TelemetrySample& sample, Watts limit_w) {
  std::vector<Mhz> targets = inner_->Redistribute(apps, sample, limit_w);
  auditor_->CheckRedistribution(inner_.get(), apps, sample, limit_w, targets);
  return targets;
}

namespace {

double BoundTolerance(const ShareRequest& req) {
  return 1e-6 * std::max({1.0, std::abs(req.minimum), std::abs(req.maximum)});
}

// A zero-share entry cannot absorb resource beyond its minimum, so it never
// excuses or explains a termination shortfall.
bool HasShares(const ShareRequest& req) { return req.shares > 1e-12; }

}  // namespace

std::vector<std::string> AuditProportionalSplit(ResourceUnits total,
                                                const std::vector<ShareRequest>& req,
                                                const std::vector<ResourceUnits>& alloc) {
  std::vector<std::string> violations;
  if (alloc.size() != req.size()) {
    std::ostringstream os;
    os << alloc.size() << " allocations for " << req.size() << " requests";
    violations.push_back(os.str());
    return violations;
  }
  double min_sum = 0.0;
  double max_sum = 0.0;
  double alloc_sum = 0.0;
  for (size_t i = 0; i < req.size(); i++) {
    min_sum += req[i].minimum;
    max_sum += req[i].maximum;
    alloc_sum += alloc[i];
    const double tol = BoundTolerance(req[i]);
    if (!std::isfinite(alloc[i])) {
      std::ostringstream os;
      os << "allocation " << i << " is non-finite";
      violations.push_back(os.str());
      continue;
    }
    if (alloc[i] < req[i].minimum - tol || alloc[i] > req[i].maximum + tol) {
      std::ostringstream os;
      os << "allocation " << i << " = " << alloc[i] << " outside its bounds ["
         << req[i].minimum << ", " << req[i].maximum << "]";
      violations.push_back(os.str());
    }
  }
  // Termination: a clean run distributes exactly the clamped total; a split
  // that stopped early leaves resource unassigned (or over-assigns it).  A
  // mismatch is excused only when every positive-share entry is already
  // pinned at the bound in the mismatch direction (zero-share entries can
  // never soak up the difference).
  const double clamped = std::clamp(total, min_sum, max_sum);
  const double sum_tol =
      1e-6 * std::max(1.0, std::abs(clamped)) * static_cast<double>(std::max<size_t>(req.size(), 1));
  const double miss = alloc_sum - clamped;
  if (std::abs(miss) > sum_tol) {
    bool excused = true;
    for (size_t i = 0; i < req.size(); i++) {
      if (!HasShares(req[i])) {
        continue;
      }
      const double tol = BoundTolerance(req[i]);
      if ((miss < 0.0 && alloc[i] < req[i].maximum - tol) ||
          (miss > 0.0 && alloc[i] > req[i].minimum + tol)) {
        excused = false;
        break;
      }
    }
    if (!excused) {
      std::ostringstream os;
      os << "allocations sum to " << alloc_sum << " but the clamped total is " << clamped;
      violations.push_back(os.str());
    }
  }
  return violations;
}

std::vector<std::string> AuditDeltaSplit(ResourceUnits delta,
                                         const std::vector<ResourceUnits>& current,
                                         const std::vector<ShareRequest>& req,
                                         const std::vector<ResourceUnits>& alloc) {
  std::vector<std::string> violations;
  if (alloc.size() != req.size() || current.size() != req.size()) {
    std::ostringstream os;
    os << alloc.size() << " allocations / " << current.size() << " current for "
       << req.size() << " requests";
    violations.push_back(os.str());
    return violations;
  }
  const bool adding = delta > 0.0;
  double absorbed = 0.0;
  bool all_saturated = true;
  for (size_t i = 0; i < req.size(); i++) {
    const double tol = BoundTolerance(req[i]);
    if (!std::isfinite(alloc[i])) {
      std::ostringstream os;
      os << "allocation " << i << " is non-finite";
      violations.push_back(os.str());
      continue;
    }
    if (alloc[i] < req[i].minimum - tol || alloc[i] > req[i].maximum + tol) {
      std::ostringstream os;
      os << "allocation " << i << " = " << alloc[i] << " outside its bounds ["
         << req[i].minimum << ", " << req[i].maximum << "]";
      violations.push_back(os.str());
    }
    const double start = std::clamp(current[i], req[i].minimum, req[i].maximum);
    const double moved = alloc[i] - start;
    // The delta may only move entries in its own direction.
    if ((adding && moved < -tol) || (!adding && moved > tol)) {
      std::ostringstream os;
      os << "allocation " << i << " moved by " << moved << " against a delta of " << delta;
      violations.push_back(os.str());
    }
    absorbed += moved;
    const double target_bound = adding ? req[i].maximum : req[i].minimum;
    if (HasShares(req[i]) && std::abs(alloc[i] - target_bound) > tol) {
      all_saturated = false;
    }
  }
  // Termination: either the whole delta was absorbed or every entry is
  // pinned at the bound the delta pushes toward (min-funding exhausted).
  const double sum_tol =
      1e-6 * std::max(1.0, std::abs(delta)) * static_cast<double>(std::max<size_t>(req.size(), 1));
  if (std::abs(absorbed - delta) > sum_tol && !all_saturated) {
    std::ostringstream os;
    os << "delta " << delta << " only absorbed " << absorbed
       << " with unsaturated entries remaining";
    violations.push_back(os.str());
  }
  return violations;
}

}  // namespace papd
