// Invariant auditing for the power-delivery policy stack.
//
// The paper's correctness claims rest on properties the policies never
// check explicitly:
//
//   * budget conservation — when package power exceeds the limit, a
//     redistribution step must never grow the total allocation (paper
//     Section 5.2's control loop converges only because corrections point
//     toward the limit);
//   * share monotonicity — an application holding more shares never
//     receives a smaller allocation of the policy's native resource
//     (Section 4.2's definition of proportional delivery);
//   * min-funding revocation termination and non-negativity — every
//     allocation lands inside its [minimum, maximum] bounds and the split
//     sums to the (clamped) total (Waldspurger's algorithm, Section 5.2);
//   * grid alignment — translation only emits frequencies the platform can
//     program (100 MHz Skylake, 25 MHz Ryzen; Section 2.1);
//   * the Ryzen P-state constraint — never more than three distinct
//     simultaneous frequencies (Sections 2.1 and 5);
//   * the power ceiling — once converged, package power never sits above
//     the configured limit plus slack while the policy still has downward
//     actuation left (the safety property the fault-injection suite
//     stresses: no fault schedule may defeat the budget).
//
// PolicyAuditor verifies all of these on every initial-distribution,
// redistribution and translation step.  The daemon owns one behind
// DaemonConfig::audit; AuditedPolicy wraps any ShareResource (including
// user-provided custom policies) with the same checks.  In fatal mode a
// violation aborts through PAPD_CHECK; in non-fatal mode violations are
// recorded and logged so tests can assert on them.

#ifndef SRC_POLICY_INVARIANTS_H_
#define SRC_POLICY_INVARIANTS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/msr/turbostat.h"
#include "src/policy/app_model.h"
#include "src/policy/min_funding.h"
#include "src/policy/priority_policy.h"
#include "src/policy/share_policy.h"

namespace papd {

struct AuditOptions {
  // Fatal: a violation aborts with a formatted CHECK failure.  Non-fatal:
  // violations are recorded (and logged as errors) for later inspection —
  // the mode negative tests use.
  bool fatal = true;
  // Package power must be beyond the limit by more than this before the
  // directional budget-conservation check applies; must exceed the
  // policies' own control deadband (kPowerToleranceW) or legitimate
  // within-deadband no-ops would be flagged.
  Watts conservation_deadband_w{1.0};
  // Relative slack for floating-point comparisons.
  double epsilon = 1e-6;
  // --- Power ceiling (CheckPowerCeiling) -------------------------------------
  // Package power may exceed the limit by at most this much once converged.
  // Covers RAPL quantization, EWMA smoothing and the sim's power-model
  // transients; fault schedules that defeat degradation blow well past it.
  Watts power_ceiling_slack_w{8.0};
  // Control periods ignored after Start()/SetPowerLimit before the ceiling
  // is enforced — the control loop needs time to converge on a new budget.
  int power_ceiling_grace_periods = 20;
  // Consecutive over-ceiling periods (past grace) before failing; a single
  // workload-phase spike the controller corrects is not a violation.
  int power_ceiling_patience = 6;
};

class PolicyAuditor {
 public:
  struct Violation {
    std::string stage;    // "initial" | "redistribute" | "translate".
    std::string message;
  };

  // `max_simultaneous_pstates` as in PlatformSpec: 0 = unlimited (Skylake),
  // 3 on Ryzen.
  PolicyAuditor(PolicyPlatform platform, int max_simultaneous_pstates,
                AuditOptions options = {});

  // --- Share policies --------------------------------------------------------
  // `policy` identifies the concrete policy (dynamic_cast) so allocations
  // can be audited in the policy's *native* resource domain: frequency
  // shares in MHz, performance shares in normalized IPS, power shares in
  // watts.  Unknown (custom) policies get the generic target checks only.
  void CheckInitialDistribution(const ShareResource* policy,
                                const std::vector<ManagedApp>& apps, Watts limit_w,
                                const std::vector<Mhz>& targets);
  void CheckRedistribution(const ShareResource* policy, const std::vector<ManagedApp>& apps,
                           const TelemetrySample& sample, Watts limit_w,
                           const std::vector<Mhz>& targets);

  // --- Priority policy -------------------------------------------------------
  void CheckPriorityInitialDistribution(const PriorityPolicy::Options& options,
                                        const std::vector<ManagedApp>& apps, Watts limit_w,
                                        const std::vector<Mhz>& targets);
  void CheckPriorityRedistribution(const PriorityPolicy::Options& options,
                                   const std::vector<ManagedApp>& apps,
                                   const TelemetrySample& sample, Watts limit_w,
                                   const std::vector<Mhz>& targets);

  // --- Power ceiling ---------------------------------------------------------
  // Called by the daemon once per valid-sample control period for actively
  // controlling policies: package power must not sit above
  // limit_w + power_ceiling_slack_w for power_ceiling_patience consecutive
  // periods once power_ceiling_grace_periods have elapsed since the limit
  // was (re)set.  Escape hatch: when every running target is already at the
  // platform floor the policy has no actuation left (the limit is simply
  // unreachable) and the period is not counted.  Invalid samples must not
  // be passed in (their substituted rates are not this period's truth).
  void CheckPowerCeiling(const TelemetrySample& sample, Watts limit_w,
                         const std::vector<Mhz>& targets);

  // --- Translation -----------------------------------------------------------
  // `programmed_mhz` holds the frequency actually written to hardware for
  // each running app this period.  Verifies grid alignment (relative to
  // the platform minimum) and the simultaneous-P-state constraint.
  void CheckTranslation(const std::vector<Mhz>& programmed_mhz);

  const std::vector<Violation>& violations() const { return violations_; }
  int violation_count() const { return static_cast<int>(violations_.size()); }
  void ClearViolations() { violations_.clear(); }

  const PolicyPlatform& platform() const { return platform_; }

 private:
  // Per-app allocation in the policy's native resource domain, extracted
  // via dynamic_cast; monotonicity and conservation are only meaningful
  // there (translation feedback makes the *frequency* outputs of the
  // performance/power policies legitimately non-monotone).
  struct NativeView {
    const char* domain = nullptr;  // nullptr = unknown policy.
    std::vector<double> values;
    double scale = 1.0;  // Magnitude used for relative epsilon.
  };
  NativeView NativeTargets(const ShareResource* policy) const;

  void CheckTargetsWellFormed(const char* stage, const std::vector<ManagedApp>& apps,
                              const std::vector<Mhz>& targets, bool allow_stopped);
  void CheckShareMonotonicity(const char* stage, const std::vector<ManagedApp>& apps,
                              const NativeView& view);
  void Fail(const char* stage, const std::string& message);

  PolicyPlatform platform_;
  int max_simultaneous_pstates_;
  AuditOptions options_;
  std::vector<Violation> violations_;

  // Last native-domain allocation, for the directional conservation check
  // (reset by every initial distribution).
  std::vector<double> prev_native_;
  double prev_native_scale_ = 1.0;
  std::vector<Mhz> prev_priority_;

  // Power-ceiling state: the limit last seen (a change restarts grace),
  // grace periods left, and the current over-ceiling streak.
  Watts ceiling_limit_w_{-1.0};
  int ceiling_grace_left_ = 0;
  int ceiling_over_streak_ = 0;
};

// Decorator: audits a wrapped ShareResource on every call.  This is how
// the daemon attaches the auditor to built-in and custom policies alike;
// tests wrap deliberately broken policies in one to prove violations are
// caught.  Borrows the auditor.
class AuditedPolicy : public ShareResource {
 public:
  AuditedPolicy(std::unique_ptr<ShareResource> inner, PolicyAuditor* auditor);

  std::string Name() const override;
  std::vector<Mhz> InitialDistribution(const std::vector<ManagedApp>& apps,
                                       Watts limit_w) override;
  std::vector<Mhz> Redistribute(const std::vector<ManagedApp>& apps,
                                const TelemetrySample& sample, Watts limit_w) override;

  ShareResource* inner() { return inner_.get(); }

 private:
  std::unique_ptr<ShareResource> inner_;
  PolicyAuditor* auditor_;
};

// Post-condition audit of one proportional split (DistributeProportional):
// termination (the split is complete: allocations sum to the total clamped
// into [sum of minimums, sum of maximums]) and bounds (every allocation
// within its [minimum, maximum], hence non-negative for non-negative
// minimums).  Returns human-readable violation messages; empty = clean.
std::vector<std::string> AuditProportionalSplit(ResourceUnits total,
                                                const std::vector<ShareRequest>& req,
                                                const std::vector<ResourceUnits>& alloc);

// Same for a delta application (DistributeDelta): bounds hold, and the
// delta is either fully absorbed or the leftover is explained by every
// entry sitting saturated at the bound the delta pushes toward.
std::vector<std::string> AuditDeltaSplit(ResourceUnits delta,
                                         const std::vector<ResourceUnits>& current,
                                         const std::vector<ShareRequest>& req,
                                         const std::vector<ResourceUnits>& alloc);

}  // namespace papd

#endif  // SRC_POLICY_INVARIANTS_H_
