#include "src/policy/min_funding.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/obs/trace.h"
#include "src/policy/invariants.h"

namespace papd {
namespace {

constexpr double kEps = 1e-9;

std::vector<double> DistributeDeltaImpl(double delta, const std::vector<double>& current,
                                        const std::vector<ShareRequest>& req);

// Core of DistributeProportional, writing into caller-owned buffers so hot
// arbitration paths can reuse them (assign() keeps capacity, so repeated
// calls at a stable request count never touch the heap).
// PAPD_HOT
void DistributeProportionalInto(double total, const std::vector<ShareRequest>& req,
                                std::vector<double>* alloc_out,
                                std::vector<int>* pinned_scratch) {
  // Pure proportionality with clamping: the target is alloc_i proportional
  // to shares_i (paper Section 4.2: 3 shares next to 1 share means 3/4ths
  // of the resource).  Entries whose proportional grant violates a bound
  // are pinned there ("saturated") and the remaining total is re-split
  // across the rest — min-funding revocation.  Terminates in <= n rounds
  // because each round pins at least one entry.
  const size_t n = req.size();
  std::vector<double>& alloc = *alloc_out;
  alloc.assign(n, 0.0);
  if (n == 0) {
    return;
  }
  double min_sum = 0.0;
  double max_sum = 0.0;
  for (size_t i = 0; i < n; i++) {
    PAPD_DCHECK_GE(req[i].maximum, req[i].minimum) << " for request " << i;
    min_sum += req[i].minimum;
    max_sum += req[i].maximum;
  }
  total = std::clamp(total, min_sum, max_sum);

  std::vector<int>& pinned = *pinned_scratch;  // 0 = active, 1 = pinned at a bound.
  pinned.assign(n, 0);
  double remaining = total;
  for (size_t round = 0; round < n + 1; round++) {
    double active_shares = 0.0;
    for (size_t i = 0; i < n; i++) {
      if (!pinned[i]) {
        active_shares += req[i].shares;
      }
    }
    if (active_shares <= kEps) {
      break;
    }
    bool pinned_any = false;
    for (size_t i = 0; i < n; i++) {
      if (pinned[i]) {
        continue;
      }
      const double prop = remaining * req[i].shares / active_shares;
      if (prop < req[i].minimum - kEps) {
        alloc[i] = req[i].minimum;
        pinned[i] = 1;
        remaining -= alloc[i];
        pinned_any = true;
        PAPD_TRACE_REVOKE(i, alloc[i], /*at_max=*/false);
      } else if (prop > req[i].maximum + kEps) {
        alloc[i] = req[i].maximum;
        pinned[i] = 1;
        remaining -= alloc[i];
        pinned_any = true;
        PAPD_TRACE_REVOKE(i, alloc[i], /*at_max=*/true);
      }
    }
    if (!pinned_any) {
      // No violations: the proportional split stands for all active entries.
      for (size_t i = 0; i < n; i++) {
        if (!pinned[i]) {
          alloc[i] = remaining * req[i].shares / active_shares;
        }
      }
      return;
    }
  }
  // Every entry pinned.  Pin decisions within one round share a stale
  // `remaining`, so the pinned sum may miss `total`; repair by spreading
  // the leftover across entries with headroom.  This path allocates (the
  // delta distributor builds its own result) but only fires when every
  // entry saturated in the same round — never in steady-state arbitration.
  double leftover = total;
  for (double a : alloc) {
    leftover -= a;
  }
  if (std::abs(leftover) > kEps) {
    alloc = DistributeDeltaImpl(leftover, alloc, req);  // PAPD_HOT_ALLOW rare repair
  }
}

std::vector<double> DistributeDeltaImpl(double delta, const std::vector<double>& current,
                                        const std::vector<ShareRequest>& req) {
  PAPD_CHECK_EQ(current.size(), req.size());
  const size_t n = req.size();
  std::vector<double> alloc = current;
  // Clamp starting point into bounds so a drifted measurement cannot wedge
  // the algorithm.
  for (size_t i = 0; i < n; i++) {
    alloc[i] = std::clamp(alloc[i], req[i].minimum, req[i].maximum);
  }
  if (n == 0 || std::abs(delta) <= kEps) {
    return alloc;
  }

  const bool adding = delta > 0.0;
  double remaining = std::abs(delta);
  std::vector<bool> saturated(n, false);
  for (int round = 0; round < static_cast<int>(n) + 1 && remaining > kEps; round++) {
    double active_shares = 0.0;
    for (size_t i = 0; i < n; i++) {
      const double headroom = adding ? req[i].maximum - alloc[i] : alloc[i] - req[i].minimum;
      if (headroom <= kEps) {
        saturated[i] = true;
      }
      if (!saturated[i]) {
        active_shares += req[i].shares;
      }
    }
    if (active_shares <= kEps) {
      break;
    }
    double leftover = 0.0;
    for (size_t i = 0; i < n; i++) {
      if (saturated[i]) {
        continue;
      }
      const double grant = remaining * req[i].shares / active_shares;
      const double headroom = adding ? req[i].maximum - alloc[i] : alloc[i] - req[i].minimum;
      if (grant >= headroom - kEps) {
        alloc[i] = adding ? req[i].maximum : req[i].minimum;
        leftover += grant - headroom;
        saturated[i] = true;
        PAPD_TRACE_REVOKE(i, alloc[i], /*at_max=*/adding);
      } else {
        alloc[i] += adding ? grant : -grant;
      }
    }
    remaining = leftover;
  }
  return alloc;
}

}  // namespace

// The public entry points run the invariant audit from
// src/policy/invariants.h as an always-on postcondition: bounds respected,
// termination reached (min-funding revocation pinned every saturated entry
// and distributed the rest).  Both audits are allocation-free when clean.

std::vector<ResourceUnits> DistributeProportional(ResourceUnits total,
                                                  const std::vector<ShareRequest>& req) {
  std::vector<ResourceUnits> alloc;
  std::vector<int> pinned;
  DistributeProportionalInto(total, req, &alloc, &pinned);
  const std::vector<std::string> audit = AuditProportionalSplit(total, req, alloc);
  PAPD_CHECK(audit.empty()) << "min-funding proportional-split postcondition: "
                            << audit.front();
  return alloc;
}

// PAPD_HOT
const std::vector<ResourceUnits>& DistributeProportional(ResourceUnits total,
                                                         const std::vector<ShareRequest>& req,
                                                         MinFundingScratch* scratch) {
  DistributeProportionalInto(total, req, &scratch->alloc, &scratch->pinned);
  const std::vector<std::string> audit =  // PAPD_HOT_ALLOW empty (heap-free) when clean
      AuditProportionalSplit(total, req, scratch->alloc);
  PAPD_CHECK(audit.empty()) << "min-funding proportional-split postcondition: "
                            << audit.front();
  return scratch->alloc;
}

std::vector<ResourceUnits> DistributeDelta(ResourceUnits delta,
                                           const std::vector<ResourceUnits>& current,
                                           const std::vector<ShareRequest>& req) {
  std::vector<ResourceUnits> alloc = DistributeDeltaImpl(delta, current, req);
  const std::vector<std::string> audit = AuditDeltaSplit(delta, current, req, alloc);
  PAPD_CHECK(audit.empty()) << "min-funding delta-split postcondition: " << audit.front();
  return alloc;
}

}  // namespace papd
