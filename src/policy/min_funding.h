// Proportional distribution with min-funding revocation.
//
// Waldspurger's min-funding revocation (paper Section 5.2): when a
// proportional distribution would push some recipient past its minimum or
// maximum, that recipient is pinned at the bound ("saturated"), removed
// from the mix, and the remainder is re-distributed across the rest — the
// paper applies this whenever power/frequency/performance is redistributed
// and some cores have hit the top or bottom of their range.

#ifndef SRC_POLICY_MIN_FUNDING_H_
#define SRC_POLICY_MIN_FUNDING_H_

#include <vector>

namespace papd {

// The distributor is unit-agnostic: callers split watts, megahertz or
// normalized performance through the same code.  The alias marks every
// quantity measured in the caller's resource unit.
using ResourceUnits = double;

struct ShareRequest {
  double shares = 1.0;
  ResourceUnits minimum = 0.0;
  ResourceUnits maximum = 0.0;
};

// Splits `total` across the entries proportionally to shares, subject to
// per-entry [minimum, maximum] bounds.  If total is below the sum of
// minimums every entry gets its minimum; above the sum of maximums every
// entry gets its maximum.  Otherwise the result sums to `total` (within
// floating-point tolerance).
std::vector<ResourceUnits> DistributeProportional(ResourceUnits total,
                                                  const std::vector<ShareRequest>& req);

// Reusable working memory for the allocation-free DistributeProportional
// overload.  Buffers grow to the largest request count seen and are then
// reused; a scratch owned by a hot caller makes repeated splits heap-free.
struct MinFundingScratch {
  std::vector<ResourceUnits> alloc;
  std::vector<int> pinned;
};

// Allocation-free variant for hot arbitration paths: identical results to
// the vector-returning overload, with the split written into
// scratch->alloc.  Heap-free once the scratch has grown to the largest
// request count (the rare all-pinned repair path may still allocate; see
// the implementation note).  Returns scratch->alloc for convenience.
const std::vector<ResourceUnits>& DistributeProportional(ResourceUnits total,
                                                         const std::vector<ShareRequest>& req,
                                                         MinFundingScratch* scratch);

// Applies a (possibly negative) delta to existing allocations,
// proportionally to shares, respecting bounds.  Entries that saturate are
// pinned and the leftover delta is re-distributed across the rest
// (min-funding revocation).  Returns the new allocations.
std::vector<ResourceUnits> DistributeDelta(ResourceUnits delta,
                                           const std::vector<ResourceUnits>& current,
                                           const std::vector<ShareRequest>& req);

}  // namespace papd

#endif  // SRC_POLICY_MIN_FUNDING_H_
