#include "src/policy/performance_shares.h"

#include <algorithm>
#include <cmath>

#include "src/policy/min_funding.h"

namespace papd {

std::vector<Mhz> PerformanceShares::InitialDistribution(const std::vector<ManagedApp>& apps,
                                                        Watts limit_w) {
  // Total normalized performance the limit can fund, by the naive linear
  // model: alpha of maximum power buys alpha of maximum performance on
  // every core.
  const double alpha = AlphaOf(limit_w, platform_.max_power_w);
  const double total_perf =
      std::min(alpha, 1.0) * 1.0 * static_cast<double>(apps.size());

  std::vector<ShareRequest> req;
  req.reserve(apps.size());
  for (const ManagedApp& app : apps) {
    // An app saturated at f* cannot exceed roughly f*/f_max of its
    // baseline performance (HWP hints, paper Section 4.4).
    const double max_perf = AppMaxMhz(app, platform_) / platform_.max_mhz;
    req.push_back(
        ShareRequest{.shares = app.shares, .minimum = MinPerf(), .maximum = max_perf});
  }
  perf_targets_ = DistributeProportional(total_perf, req);

  // Initial translation: performance ~ frequency.
  freq_targets_.clear();
  freq_targets_.reserve(apps.size());
  for (size_t i = 0; i < apps.size(); i++) {
    freq_targets_.push_back(std::clamp(perf_targets_[i] * platform_.max_mhz,
                                       platform_.min_mhz, AppMaxMhz(apps[i], platform_)));
  }
  return freq_targets_;
}

std::vector<Mhz> PerformanceShares::Redistribute(const std::vector<ManagedApp>& apps,
                                                 const TelemetrySample& sample, Watts limit_w) {
  const Watts power_delta{limit_w - sample.pkg_w};

  if (Abs(power_delta) > kPowerToleranceW) {
    // PerformanceDelta = alpha * MaxPerformance * NumAvailableCores; the
    // redistribution re-solves the proportional split over the adjusted
    // total (min-funding revocation at the performance range ends).
    const double alpha = AlphaOf(power_delta, platform_.max_power_w);
    double total = alpha * 1.0 * static_cast<double>(apps.size());
    for (double p : perf_targets_) {
      total += p;
    }
    std::vector<ShareRequest> req;
    req.reserve(apps.size());
    for (const ManagedApp& app : apps) {
      const double max_perf = AppMaxMhz(app, platform_) / platform_.max_mhz;
      req.push_back(
          ShareRequest{.shares = app.shares, .minimum = MinPerf(), .maximum = max_perf});
    }
    perf_targets_ = DistributeProportional(total, req);
  }

  // Translation with feedback: nudge each core's frequency by the ratio of
  // target to measured normalized performance.  The correction is damped to
  // one third per period — measured IPS is noisy (phases), and an undamped
  // multiplicative update rings.
  for (size_t i = 0; i < apps.size(); i++) {
    const ManagedApp& app = apps[i];
    if (app.baseline_ips <= Ips{0.0}) {
      continue;
    }
    const auto& ct = sample.cores[static_cast<size_t>(app.cpu)];
    const double measured = ct.ips / app.baseline_ips;
    if (measured <= 1e-6) {
      continue;
    }
    const double ratio = std::clamp(perf_targets_[i] / measured, 0.5, 2.0);
    const double damped = 1.0 + (ratio - 1.0) / 3.0;
    freq_targets_[i] = std::clamp(freq_targets_[i] * damped, platform_.min_mhz,
                                  AppMaxMhz(app, platform_));
  }
  return freq_targets_;
}

}  // namespace papd
