// Performance shares (paper Section 5.2).
//
// Applications' *performance* — instructions per second normalized to the
// application's standalone run at maximum frequency, measured offline — is
// kept proportional to shares.  This controls the quantity operators
// actually care about, but requires per-app performance telemetry and an
// offline baseline, and (as the paper observes) inherits the noise of the
// IPS signal: program phases shift measured performance at a fixed
// frequency, so the controller keeps rebalancing where frequency shares
// would sit still.

#ifndef SRC_POLICY_PERFORMANCE_SHARES_H_
#define SRC_POLICY_PERFORMANCE_SHARES_H_

#include "src/policy/share_policy.h"

namespace papd {

class PerformanceShares : public ShareResource {
 public:
  explicit PerformanceShares(PolicyPlatform platform) : platform_(platform) {}

  std::string Name() const override { return "performance-shares"; }

  // Initial distribution: the power limit is converted to a total
  // normalized-performance budget (alpha * MaxPerformance * cores), split
  // proportionally; the initial translation assumes performance tracks
  // frequency linearly.
  std::vector<Mhz> InitialDistribution(const std::vector<ManagedApp>& apps,
                                       Watts limit_w) override;

  // Redistribution: PowerDelta -> PerformanceDelta via alpha, distributed
  // over non-saturated apps; translation corrects each core's frequency
  // multiplicatively by target/measured performance.
  std::vector<Mhz> Redistribute(const std::vector<ManagedApp>& apps,
                                const TelemetrySample& sample, Watts limit_w) override;

  const std::vector<double>& performance_targets() const { return perf_targets_; }

 private:
  // Minimum achievable normalized performance, approximated by the
  // frequency dynamic range (an app at f_min retires at least
  // f_min / f_max of its baseline, more if memory-bound).
  double MinPerf() const { return platform_.min_mhz / platform_.max_mhz; }

  PolicyPlatform platform_;
  std::vector<double> perf_targets_;  // Normalized (1.0 = baseline).
  std::vector<Mhz> freq_targets_;
};

}  // namespace papd

#endif  // SRC_POLICY_PERFORMANCE_SHARES_H_
