#include "src/policy/policy_registry.h"

#include "src/common/check.h"
#include "src/policy/frequency_shares.h"
#include "src/policy/performance_shares.h"
#include "src/policy/power_shares.h"

namespace papd {
namespace {

template <typename Policy>
std::unique_ptr<ShareResource> Make(const PolicyPlatform& platform) {
  return std::make_unique<Policy>(platform);
}

constexpr PolicyInfo kRegistry[] = {
    {.kind = PolicyKind::kRaplOnly, .name = "rapl"},
    {.kind = PolicyKind::kStatic, .name = "static"},
    {.kind = PolicyKind::kPriority, .name = "priority", .controls = true, .is_priority = true},
    {.kind = PolicyKind::kFrequencyShares,
     .name = "freq-shares",
     .controls = true,
     .make = &Make<FrequencyShares>},
    {.kind = PolicyKind::kPerformanceShares,
     .name = "perf-shares",
     .controls = true,
     .make = &Make<PerformanceShares>},
    {.kind = PolicyKind::kPowerShares,
     .name = "power-shares",
     .controls = true,
     .needs_per_core_power = true,
     .make = &Make<PowerShares>},
};

}  // namespace

const PolicyInfo& GetPolicyInfo(PolicyKind kind) {
  for (const PolicyInfo& info : kRegistry) {
    if (info.kind == kind) {
      return info;
    }
  }
  PAPD_CHECK(false) << " PolicyKind " << static_cast<int>(kind) << " not registered";
  return kRegistry[0];
}

std::unique_ptr<ShareResource> MakePolicy(PolicyKind kind, const PolicyPlatform& platform) {
  const PolicyInfo& info = GetPolicyInfo(kind);
  return info.make != nullptr ? info.make(platform) : nullptr;
}

const char* PolicyKindName(PolicyKind kind) { return GetPolicyInfo(kind).name; }

const PolicyInfo* FindPolicyByName(const std::string& name) {
  for (const PolicyInfo& info : kRegistry) {
    if (name == info.name) {
      return &info;
    }
  }
  return nullptr;
}

const std::vector<PolicyKind>& AllPolicyKinds() {
  static const std::vector<PolicyKind>* kinds = [] {
    auto* v = new std::vector<PolicyKind>;
    for (const PolicyInfo& info : kRegistry) {
      v->push_back(info.kind);
    }
    return v;
  }();
  return *kinds;
}

}  // namespace papd
