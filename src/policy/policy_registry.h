// Policy registry: the one table describing every PolicyKind.
//
// The daemon, the experiment harness and papdctl all used to carry their
// own switch over PolicyKind — one to construct the policy, one to name
// it, one to parse a CLI string, one to decide whether the kind runs a
// control loop.  Adding a policy meant finding every switch.  The registry
// collapses them: each kind has one PolicyInfo row with its canonical
// name, its behavioral traits and (for share-based kinds) a factory, and
// everything else derives from the row.

#ifndef SRC_POLICY_POLICY_REGISTRY_H_
#define SRC_POLICY_POLICY_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/policy/share_policy.h"

namespace papd {

enum class PolicyKind {
  // No daemon control: hardware RAPL capping alone (the paper's baseline).
  kRaplOnly,
  // Fixed frequencies programmed once at start; no control loop.
  kStatic,
  kPriority,
  kFrequencyShares,
  kPerformanceShares,
  kPowerShares,
};

struct PolicyInfo {
  PolicyKind kind = PolicyKind::kRaplOnly;
  // Canonical name, used by papdctl --policy, reports and bench JSON.
  const char* name = "";
  // True for kinds that actively redistribute every control period (false
  // for the monitoring-only kRaplOnly and kStatic).
  bool controls = false;
  // True when the policy requires per-core power telemetry (kPowerShares).
  bool needs_per_core_power = false;
  // True for the priority policy, which the daemon constructs itself with
  // PriorityPolicy::Options (it is not a ShareResource).
  bool is_priority = false;
  // Factory for share-based kinds; null for the others.
  std::unique_ptr<ShareResource> (*make)(const PolicyPlatform& platform) = nullptr;
};

// The registry row for `kind`; every PolicyKind has one.
const PolicyInfo& GetPolicyInfo(PolicyKind kind);

// Constructs the share policy for `kind`, or nullptr for kinds without one
// (kRaplOnly, kStatic, kPriority).
std::unique_ptr<ShareResource> MakePolicy(PolicyKind kind, const PolicyPlatform& platform);

// The canonical name ("freq-shares", ...).
const char* PolicyKindName(PolicyKind kind);

// Looks a kind up by its canonical name; nullptr when unknown.
const PolicyInfo* FindPolicyByName(const std::string& name);

// All registered kinds, registry order.
const std::vector<PolicyKind>& AllPolicyKinds();

}  // namespace papd

#endif  // SRC_POLICY_POLICY_REGISTRY_H_
