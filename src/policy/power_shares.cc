#include "src/policy/power_shares.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/policy/min_funding.h"

namespace papd {

Mhz PowerShares::LinearPowerToFrequency(Watts w) const {
  const double t =
      (w - platform_.core_min_w) / (platform_.core_max_w - platform_.core_min_w);
  return std::clamp(platform_.min_mhz + t * (platform_.max_mhz - platform_.min_mhz),
                    platform_.min_mhz, platform_.max_mhz);
}

std::vector<Mhz> PowerShares::InitialDistribution(const std::vector<ManagedApp>& apps,
                                                  Watts limit_w) {
  const Watts core_budget =
      std::max(limit_w - platform_.uncore_estimate_w,
               platform_.core_min_w * static_cast<double>(apps.size()));

  std::vector<ShareRequest> req;
  req.reserve(apps.size());
  for (const ManagedApp& app : apps) {
    req.push_back(ShareRequest{
        .shares = app.shares,
        .minimum = AsResourceUnits(platform_.core_min_w),
        .maximum = AsResourceUnits(platform_.core_max_w),
    });
  }
  AssignTargets(DistributeProportional(AsResourceUnits(core_budget), req));

  freq_targets_.clear();
  freq_targets_.reserve(apps.size());
  for (Watts w : power_targets_) {
    freq_targets_.push_back(LinearPowerToFrequency(w));
  }
  return freq_targets_;
}

std::vector<Mhz> PowerShares::Redistribute(const std::vector<ManagedApp>& apps,
                                           const TelemetrySample& sample, Watts limit_w) {
  const Watts power_delta{limit_w - sample.pkg_w};
  if (Abs(power_delta) > kPowerToleranceW) {
    // Re-solve the proportional split over the adjusted core power budget
    // (min-funding revocation at the per-core power range ends).
    ResourceUnits total = AsResourceUnits(power_delta);
    for (Watts w : power_targets_) {
      total += AsResourceUnits(w);
    }
    std::vector<ShareRequest> req;
    req.reserve(apps.size());
    for (const ManagedApp& app : apps) {
      req.push_back(ShareRequest{
          .shares = app.shares,
          .minimum = AsResourceUnits(platform_.core_min_w),
          .maximum = AsResourceUnits(platform_.core_max_w),
      });
    }
    AssignTargets(DistributeProportional(total, req));
  }

  // Translation with feedback: step every core's frequency toward its
  // power target using the measured per-core watts.
  for (size_t i = 0; i < apps.size(); i++) {
    const ManagedApp& app = apps[i];
    const auto& ct = sample.cores[static_cast<size_t>(app.cpu)];
    if (!ct.core_w.has_value()) {
      PAPD_LOG_WARN("power shares require per-core power telemetry; cpu %d lacks it", app.cpu);
      continue;
    }
    const Watts error{power_targets_[i] - *ct.core_w};
    freq_targets_[i] = std::clamp(freq_targets_[i] + MhzPerWattGain(kGainMhzPerWatt, error),
                                  platform_.min_mhz, AppMaxMhz(app, platform_));
  }
  return freq_targets_;
}

}  // namespace papd
