// Power shares (paper Section 5.2).
//
// Applications' measured core power is kept proportional to shares.  This
// is the conceptually purest policy — the managed resource *is* the shared
// resource — but it requires per-core power telemetry (only the Ryzen
// platform provides it) and, as the paper finds, it gives the worst
// performance isolation: equal power buys very different performance for
// high- and low-demand applications.

#ifndef SRC_POLICY_POWER_SHARES_H_
#define SRC_POLICY_POWER_SHARES_H_

#include "src/policy/min_funding.h"
#include "src/policy/share_policy.h"

namespace papd {

class PowerShares : public ShareResource {
 public:
  explicit PowerShares(PolicyPlatform platform) : platform_(platform) {}

  std::string Name() const override { return "power-shares"; }

  // Initial distribution: the per-core share of the (limit minus estimated
  // uncore) budget; translated to frequencies with a crude linear
  // power-to-frequency model whose error the feedback loop later erases.
  std::vector<Mhz> InitialDistribution(const std::vector<ManagedApp>& apps,
                                       Watts limit_w) override;

  // Redistribution: the package-power error is spread over non-saturated
  // apps proportionally to shares; translation steps each core's frequency
  // by a fixed gain times its per-core power error.
  std::vector<Mhz> Redistribute(const std::vector<ManagedApp>& apps,
                                const TelemetrySample& sample, Watts limit_w) override;

  const std::vector<Watts>& power_targets() const { return power_targets_; }

 private:
  Mhz LinearPowerToFrequency(Watts w) const;

  // Adopts a min-funding split (dimensionless resource units) as the
  // per-core power targets.
  void AssignTargets(const std::vector<ResourceUnits>& split) {
    power_targets_.clear();
    for (ResourceUnits u : split) {
      power_targets_.push_back(Watts{u});
    }
  }

  PolicyPlatform platform_;
  std::vector<Watts> power_targets_;
  std::vector<Mhz> freq_targets_;

  // Translation feedback gain.
  static constexpr double kGainMhzPerWatt = 180.0;
};

}  // namespace papd

#endif  // SRC_POLICY_POWER_SHARES_H_
