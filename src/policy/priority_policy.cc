#include "src/policy/priority_policy.h"

#include <algorithm>
#include <cmath>

#include "src/policy/min_funding.h"
#include "src/policy/share_policy.h"

namespace papd {

std::vector<Mhz> PriorityPolicy::InitialDistribution(const std::vector<ManagedApp>& apps,
                                                     Watts limit_w) {
  (void)limit_w;
  targets_.clear();
  targets_.reserve(apps.size());
  for (const ManagedApp& app : apps) {
    if (app.high_priority) {
      targets_.push_back(AppMaxMhz(app, platform_));
    } else {
      targets_.push_back(options_.starve_lp ? kStopped : platform_.min_mhz);
    }
  }
  return targets_;
}

bool PriorityPolicy::AnyRunning(const std::vector<ManagedApp>& apps, bool high_priority) const {
  for (size_t i = 0; i < apps.size(); i++) {
    if (apps[i].high_priority == high_priority && targets_[i] != kStopped) {
      return true;
    }
  }
  return false;
}

bool PriorityPolicy::AnyRunningAbove(const std::vector<ManagedApp>& apps, bool high_priority,
                                     Mhz threshold) const {
  for (size_t i = 0; i < apps.size(); i++) {
    if (apps[i].high_priority == high_priority && targets_[i] != kStopped &&
        targets_[i] > threshold + Mhz{1e-9}) {
      return true;
    }
  }
  return false;
}

bool PriorityPolicy::AnyRunningBelow(const std::vector<ManagedApp>& apps, bool high_priority,
                                     Mhz threshold) const {
  for (size_t i = 0; i < apps.size(); i++) {
    if (apps[i].high_priority == high_priority && targets_[i] != kStopped &&
        targets_[i] < threshold - Mhz{1e-9}) {
      return true;
    }
  }
  return false;
}

bool PriorityPolicy::AnyBelowCeiling(const std::vector<ManagedApp>& apps,
                                     bool high_priority) const {
  for (size_t i = 0; i < apps.size(); i++) {
    if (apps[i].high_priority == high_priority && targets_[i] != kStopped &&
        targets_[i] < AppMaxMhz(apps[i], platform_) - Mhz{1e-9}) {
      return true;
    }
  }
  return false;
}

void PriorityPolicy::ApplyDeltaToClass(const std::vector<ManagedApp>& apps, bool high_priority,
                                       Mhz freq_delta) {
  std::vector<size_t> members;
  std::vector<ResourceUnits> current;
  std::vector<ShareRequest> req;
  for (size_t i = 0; i < apps.size(); i++) {
    if (apps[i].high_priority != high_priority || targets_[i] == kStopped) {
      continue;
    }
    members.push_back(i);
    current.push_back(AsResourceUnits(targets_[i]));
    req.push_back(ShareRequest{
        .shares = 1.0,  // Equal P-states within a class.
        .minimum = AsResourceUnits(platform_.min_mhz),
        .maximum = AsResourceUnits(AppMaxMhz(apps[i], platform_)),
    });
  }
  if (members.empty()) {
    return;
  }
  const std::vector<ResourceUnits> updated =
      DistributeDelta(AsResourceUnits(freq_delta), current, req);
  for (size_t m = 0; m < members.size(); m++) {
    targets_[members[m]] = Mhz{updated[m]};
  }
}

std::vector<Mhz> PriorityPolicy::Redistribute(const std::vector<ManagedApp>& apps,
                                              const TelemetrySample& sample, Watts limit_w) {
  const Watts power_delta{limit_w - sample.pkg_w};
  const double alpha = AlphaOf(power_delta, platform_.max_power_w);

  if (power_delta < -kToleranceW) {
    // Over budget.  Revoke from LP first (paper: LP apps receive only
    // residual power), then stop LP apps, and only then slow HP apps.
    if (AnyRunningAbove(apps, /*high_priority=*/false, platform_.min_mhz)) {
      int lp_running = 0;
      for (size_t i = 0; i < apps.size(); i++) {
        if (!apps[i].high_priority && targets_[i] != kStopped) {
          lp_running++;
        }
      }
      const Mhz delta{alpha * platform_.max_mhz * lp_running};  // Negative.
      ApplyDeltaToClass(apps, /*high_priority=*/false, delta);
      return targets_;
    }
    if (options_.starve_lp && power_delta < -kStopDeficitW &&
        AnyRunning(apps, /*high_priority=*/false)) {
      // Stop the most recently admitted LP app (highest index still
      // running), freeing its minimum-P-state power and a turbo slot.
      for (size_t i = apps.size(); i-- > 0;) {
        if (!apps[i].high_priority && targets_[i] != kStopped) {
          targets_[i] = kStopped;
          return targets_;
        }
      }
    }
    int hp_running = 0;
    for (size_t i = 0; i < apps.size(); i++) {
      if (apps[i].high_priority && targets_[i] != kStopped) {
        hp_running++;
      }
    }
    if (hp_running > 0) {
      const Mhz delta{alpha * platform_.max_mhz * hp_running};  // Negative.
      ApplyDeltaToClass(apps, /*high_priority=*/true, delta);
    }
    return targets_;
  }

  if (power_delta > kToleranceW) {
    // Headroom.  Raise HP to maximum (or highest useful frequency) first.
    if (AnyBelowCeiling(apps, /*high_priority=*/true)) {
      int hp_running = 0;
      for (size_t i = 0; i < apps.size(); i++) {
        if (apps[i].high_priority && targets_[i] != kStopped) {
          hp_running++;
        }
      }
      const Mhz delta{alpha * platform_.max_mhz * hp_running};
      ApplyDeltaToClass(apps, /*high_priority=*/true, delta);
      return targets_;
    }
    // HP saturated: admit one stopped LP app per period (so its measured
    // power lands in the next sample before further admissions), lowest
    // index first.
    if (power_delta > kStartHeadroomW) {
      for (size_t i = 0; i < apps.size(); i++) {
        if (!apps[i].high_priority && targets_[i] == kStopped) {
          targets_[i] = platform_.min_mhz;
          return targets_;
        }
      }
    }
    // All LP apps running: raise them with the remaining headroom.
    if (AnyBelowCeiling(apps, /*high_priority=*/false)) {
      int lp_running = 0;
      for (size_t i = 0; i < apps.size(); i++) {
        if (!apps[i].high_priority && targets_[i] != kStopped) {
          lp_running++;
        }
      }
      const Mhz delta{alpha * platform_.max_mhz * lp_running};
      ApplyDeltaToClass(apps, /*high_priority=*/false, delta);
    }
    return targets_;
  }

  return targets_;
}

}  // namespace papd
