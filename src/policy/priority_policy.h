// Two-level priority policy (paper Sections 4.1 and 5.1).
//
// High-priority (HP) applications run at the highest P-state the power
// limit allows; low-priority (LP) applications receive only residual
// power.  The daemon starts HP apps at the maximum P-state and throttles
// them (equally) if the budget is exceeded; with headroom left after HP
// apps saturate, LP apps are started at the slowest P-state and raised.
//
// Starvation: following the paper's implementation choice, when there is
// not enough residual power to run every LP app at the minimum P-state the
// remaining LP apps are not started at all (their cores are put in a deep
// C-state), which both saves their idle power and frees turbo headroom for
// the HP apps — the effect behind Figure 7's "HP runs faster at 40 W than
// at 85 W" observation.  The alternative the paper discusses (throttle HP
// so every LP can run at minimum speed) is available as an option and
// evaluated by the ablation bench.

#ifndef SRC_POLICY_PRIORITY_POLICY_H_
#define SRC_POLICY_PRIORITY_POLICY_H_

#include <vector>

#include "src/msr/turbostat.h"
#include "src/policy/app_model.h"

namespace papd {

class PriorityPolicy {
 public:
  struct Options {
    // True (paper default): LP apps may be left stopped / be stopped when
    // power is short.  False: every app is guaranteed the minimum P-state
    // and only HP throttling reclaims power.
    bool starve_lp = true;
  };

  // Target value meaning "app not running; core offlined".
  static constexpr Mhz kStopped{-1.0};

  PriorityPolicy(PolicyPlatform platform, Options options)
      : platform_(platform), options_(options) {}

  // HP apps at the maximum P-state; LP apps stopped (starvation mode) or at
  // the minimum P-state.  The control loop starts LP apps as measured
  // headroom allows.
  std::vector<Mhz> InitialDistribution(const std::vector<ManagedApp>& apps, Watts limit_w);

  // One control iteration.
  std::vector<Mhz> Redistribute(const std::vector<ManagedApp>& apps,
                                const TelemetrySample& sample, Watts limit_w);

  const std::vector<Mhz>& targets() const { return targets_; }

 private:
  // Applies a frequency delta across the running apps selected by `pick`,
  // equally weighted (within a priority class all apps run at the same
  // P-state absent a separate share policy), bounded by the platform range.
  void ApplyDeltaToClass(const std::vector<ManagedApp>& apps, bool high_priority,
                         Mhz freq_delta);

  bool AnyRunning(const std::vector<ManagedApp>& apps, bool high_priority) const;
  bool AnyRunningAbove(const std::vector<ManagedApp>& apps, bool high_priority,
                       Mhz threshold) const;
  bool AnyRunningBelow(const std::vector<ManagedApp>& apps, bool high_priority,
                       Mhz threshold) const;
  // True if any running app in the class sits below its own frequency
  // ceiling (platform max tightened by HWP hints).
  bool AnyBelowCeiling(const std::vector<ManagedApp>& apps, bool high_priority) const;

  PolicyPlatform platform_;
  Options options_;
  std::vector<Mhz> targets_;

  // Hysteresis thresholds: starting an LP app costs roughly one
  // minimum-P-state core (~1.5 W), so demand slightly more headroom than
  // that before starting, and a real deficit before stopping.
  static constexpr Watts kStartHeadroomW{1.6};
  static constexpr Watts kStopDeficitW{1.5};
  static constexpr Watts kToleranceW{0.75};
};

}  // namespace papd

#endif  // SRC_POLICY_PRIORITY_POLICY_H_
