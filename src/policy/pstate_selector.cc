#include "src/policy/pstate_selector.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace papd {

PStateSelection SelectPStates(const std::vector<Mhz>& targets, int k, Mhz step_mhz) {
  PStateSelection out;
  const size_t n = targets.size();
  if (n == 0) {
    return out;
  }
  assert(k >= 1);

  // Sort indices by target.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&targets](size_t a, size_t b) { return targets[a] < targets[b]; });
  std::vector<double> x(n);
  for (size_t i = 0; i < n; i++) {
    x[i] = AsResourceUnits(targets[order[i]]);
  }

  // Prefix sums for O(1) segment cost: SSE of x[i..j] around its mean.
  std::vector<double> ps(n + 1, 0.0);
  std::vector<double> ps2(n + 1, 0.0);
  for (size_t i = 0; i < n; i++) {
    ps[i + 1] = ps[i] + x[i];
    ps2[i + 1] = ps2[i] + x[i] * x[i];
  }
  auto seg_cost = [&](size_t i, size_t j) {  // Inclusive range [i, j].
    const double cnt = static_cast<double>(j - i + 1);
    const double sum = ps[j + 1] - ps[i];
    const double sum2 = ps2[j + 1] - ps2[i];
    return sum2 - sum * sum / cnt;
  };

  // dp[c][j]: min cost of clustering x[0..j] into c clusters.
  const int kk = std::min<int>(k, static_cast<int>(n));
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(static_cast<size_t>(kk) + 1,
                                      std::vector<double>(n, kInf));
  std::vector<std::vector<size_t>> cut(static_cast<size_t>(kk) + 1, std::vector<size_t>(n, 0));
  for (size_t j = 0; j < n; j++) {
    dp[1][j] = seg_cost(0, j);
  }
  for (int c = 2; c <= kk; c++) {
    for (size_t j = static_cast<size_t>(c) - 1; j < n; j++) {
      for (size_t i = static_cast<size_t>(c) - 1; i <= j; i++) {
        const double cost = dp[static_cast<size_t>(c) - 1][i - 1] + seg_cost(i, j);
        if (cost < dp[static_cast<size_t>(c)][j]) {
          dp[static_cast<size_t>(c)][j] = cost;
          cut[static_cast<size_t>(c)][j] = i;
        }
      }
    }
  }

  // Fewer clusters can never cost less, but ties are possible (e.g. fewer
  // distinct values than k); prefer the smallest cluster count at equal
  // cost.
  int best_c = kk;
  for (int c = 1; c <= kk; c++) {
    if (dp[static_cast<size_t>(c)][n - 1] <= dp[static_cast<size_t>(best_c)][n - 1] + 1e-9) {
      best_c = c;
      break;
    }
  }

  // Recover boundaries.
  std::vector<std::pair<size_t, size_t>> segments;
  size_t j = n - 1;
  for (int c = best_c; c >= 1; c--) {
    const size_t i = c == 1 ? 0 : cut[static_cast<size_t>(c)][j];
    segments.emplace_back(i, j);
    if (i == 0) {
      break;
    }
    j = i - 1;
  }
  std::reverse(segments.begin(), segments.end());

  // Levels: segment means rounded to the grid; sorted high-to-low like a
  // P-state table (slot 0 fastest).
  std::vector<Mhz> levels;
  std::vector<int> seg_level(segments.size());
  for (size_t s = 0; s < segments.size(); s++) {
    const auto [i, jj] = segments[s];
    const double mean = (ps[jj + 1] - ps[i]) / static_cast<double>(jj - i + 1);
    levels.push_back(QuantizeNearestToGrid(Mhz{mean}, step_mhz));
  }
  // Merge duplicate grid-rounded levels.
  std::vector<Mhz> unique_levels;
  for (size_t s = 0; s < segments.size(); s++) {
    auto it = std::find(unique_levels.begin(), unique_levels.end(), levels[s]);
    if (it == unique_levels.end()) {
      unique_levels.push_back(levels[s]);
      seg_level[s] = static_cast<int>(unique_levels.size()) - 1;
    } else {
      seg_level[s] = static_cast<int>(it - unique_levels.begin());
    }
  }
  // Sort descending and remap.
  std::vector<Mhz> sorted_levels = unique_levels;
  std::sort(sorted_levels.begin(), sorted_levels.end(), std::greater<>());
  auto remap = [&](int old_idx) {
    const Mhz v{unique_levels[static_cast<size_t>(old_idx)]};
    return static_cast<int>(std::find(sorted_levels.begin(), sorted_levels.end(), v) -
                            sorted_levels.begin());
  };

  out.levels = sorted_levels;
  out.assignment.assign(n, 0);
  double sse = 0.0;
  for (size_t s = 0; s < segments.size(); s++) {
    const auto [i, jj] = segments[s];
    const int level_idx = remap(seg_level[s]);
    const double level = AsResourceUnits(sorted_levels[static_cast<size_t>(level_idx)]);
    for (size_t t = i; t <= jj; t++) {
      out.assignment[order[t]] = level_idx;
      sse += (x[t] - level) * (x[t] - level);
    }
  }
  out.sse = sse;
  return out;
}

PStateSelection SelectPStatesNaive(const std::vector<Mhz>& targets, int k, Mhz step_mhz) {
  PStateSelection out;
  const size_t n = targets.size();
  if (n == 0) {
    return out;
  }
  const auto [lo_it, hi_it] = std::minmax_element(targets.begin(), targets.end());
  const Mhz lo{*lo_it};
  const Mhz hi{*hi_it};
  const Mhz band = std::max((hi - lo) / k, Mhz{1e-9});

  std::vector<Mhz> band_level(static_cast<size_t>(k));
  for (int b = 0; b < k; b++) {
    band_level[static_cast<size_t>(b)] = QuantizeNearestToGrid(lo + band * (b + 0.5), step_mhz);
  }

  // Deduplicate levels, keep descending order for slot semantics.
  std::vector<Mhz> levels = band_level;
  std::sort(levels.begin(), levels.end(), std::greater<>());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());

  out.levels = levels;
  out.assignment.assign(n, 0);
  for (size_t i = 0; i < n; i++) {
    int b = static_cast<int>((targets[i] - lo) / band);
    b = std::clamp(b, 0, k - 1);
    const Mhz level{band_level[static_cast<size_t>(b)]};
    const auto it = std::find(levels.begin(), levels.end(), level);
    out.assignment[i] = static_cast<int>(it - levels.begin());
    const double dev = AsResourceUnits(targets[i] - level);
    out.sse += dev * dev;
  }
  return out;
}

}  // namespace papd
