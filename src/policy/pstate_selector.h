// Three-P-state selection for Ryzen.
//
// The Ryzen 1700X supports only three simultaneous voltage/frequency
// combinations across its eight cores (paper Sections 2.1 and 5: "we built
// an additional selection utility that dynamically reduces the target
// frequencies to three valid P-states").  Given per-core frequency targets,
// SelectPStates picks at most k levels and an assignment of each core to a
// level, minimizing the total squared frequency error.
//
// Because the targets are scalar, the optimal clustering uses contiguous
// ranges of the sorted targets, so an O(n^2 * k) dynamic program finds the
// exact optimum (n = 8, k = 3 here).  Levels are then rounded to the
// platform's frequency grid.  A naive alternative (quantize to
// low/mid/high thirds of the range) is provided for the ablation bench.

#ifndef SRC_POLICY_PSTATE_SELECTOR_H_
#define SRC_POLICY_PSTATE_SELECTOR_H_

#include <vector>

#include "src/common/units.h"

namespace papd {

struct PStateSelection {
  // Distinct levels, highest first; size <= k (fewer when fewer distinct
  // targets exist).
  std::vector<Mhz> levels;
  // Index into `levels` for each input target.
  std::vector<int> assignment;
  // Sum of squared (target - level) errors.
  double sse = 0.0;
};

// Optimal (min-SSE) selection of at most `k` levels.
PStateSelection SelectPStates(const std::vector<Mhz>& targets, int k, Mhz step_mhz);

// Naive baseline: splits [min_target, max_target] into k equal bands and
// uses each band's midpoint (grid-rounded) as its level.
PStateSelection SelectPStatesNaive(const std::vector<Mhz>& targets, int k, Mhz step_mhz);

}  // namespace papd

#endif  // SRC_POLICY_PSTATE_SELECTOR_H_
