// Common interface of the proportional-share policies.
//
// Paper Section 5.2: every share mechanism is implemented with three
// functions — an *initial distribution* run when applications start, a
// *redistribution* run whenever package power deviates from the limit
// (applying min-funding revocation to skip saturated cores), and a
// *translation* that converts resource units into programmable
// frequencies.  ShareResource captures the first two; translation to
// quantized per-core (or three-slot, on Ryzen) frequencies is done by the
// daemon's frequency programmer, identically for all policies.
//
// Every implementation consumes only telemetry a real platform provides
// (package watts, per-core active MHz / IPS / watts) and produces per-app
// frequency targets.

#ifndef SRC_POLICY_SHARE_POLICY_H_
#define SRC_POLICY_SHARE_POLICY_H_

#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/msr/turbostat.h"
#include "src/policy/app_model.h"

namespace papd {

class ShareResource {
 public:
  virtual ~ShareResource() = default;

  virtual std::string Name() const = 0;

  // Computes initial per-app frequency targets (same order as `apps`).
  virtual std::vector<Mhz> InitialDistribution(const std::vector<ManagedApp>& apps,
                                               Watts limit_w) = 0;

  // One control iteration: given fresh telemetry, returns updated per-app
  // frequency targets.
  virtual std::vector<Mhz> Redistribute(const std::vector<ManagedApp>& apps,
                                        const TelemetrySample& sample, Watts limit_w) = 0;
};

// The paper's naive power-to-frequency conversion factor (Section 5.2):
//   alpha          = PowerDelta / MaxPower
//   FrequencyDelta = alpha * MaxFrequency * NumAvailableCores
// Positive when there is headroom (power below the limit).
inline double AlphaOf(Watts power_delta_w, Watts max_power_w) {
  return power_delta_w / max_power_w;
}

// Control deadband: redistribution is skipped while package power is within
// this distance of the limit, which keeps the daemon from dithering between
// adjacent P-states every period.
inline constexpr Watts kPowerToleranceW{0.75};

}  // namespace papd

#endif  // SRC_POLICY_SHARE_POLICY_H_
