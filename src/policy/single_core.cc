#include "src/policy/single_core.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace papd {

SingleCoreSharing::SingleCoreSharing(PolicyPlatform platform, std::vector<Member> members)
    : platform_(platform), members_(std::move(members)), freq_mhz_(platform_.max_mhz) {
  assert(!members_.empty());
}

SingleCoreSharing::Scenario SingleCoreSharing::ClassifyScenario() const {
  double min_demand = members_[0].demand;
  double max_demand = members_[0].demand;
  bool mixed_priority = false;
  for (const Member& m : members_) {
    min_demand = std::min(min_demand, m.demand);
    max_demand = std::max(max_demand, m.demand);
    if (m.high_priority != members_[0].high_priority) {
      mixed_priority = true;
    }
  }
  const bool mixed_demand = max_demand > kDemandTolerance * min_demand;
  if (!mixed_demand) {
    return Scenario::kEqualDemand;
  }
  return mixed_priority ? Scenario::kMixedDemandMixedPriority
                        : Scenario::kMixedDemandEqualPriority;
}

SingleCoreSharing::Decision SingleCoreSharing::Recompute() {
  Decision d;
  d.freq_mhz = std::clamp(freq_mhz_, platform_.min_mhz, platform_.max_mhz);

  const double total_shares =
      std::accumulate(members_.begin(), members_.end(), 0.0,
                      [](double acc, const Member& m) { return acc + m.shares; });
  std::vector<double> residencies(members_.size());
  for (size_t i = 0; i < members_.size(); i++) {
    residencies[i] = total_shares > 0.0 ? members_[i].shares / total_shares : 0.0;
  }

  switch (ClassifyScenario()) {
    case Scenario::kEqualDemand:
      // Scenario 1: shares map directly onto residency; frequency is the
      // only power knob.
      break;

    case Scenario::kMixedDemandEqualPriority: {
      // Scenario 2: compensate low-demand members for frequency throttling
      // with extra runtime.  A member's throughput is ~ residency x f, so
      // scaling the low-demand member's residency by f_max / f restores its
      // share of work; the scaled residencies are renormalized so the core
      // stays fully subscribed and high-demand members absorb the loss.
      double mean_demand = 0.0;
      for (const Member& m : members_) {
        mean_demand += m.demand / static_cast<double>(members_.size());
      }
      const double boost = std::min(3.0, platform_.max_mhz / d.freq_mhz);
      double sum = 0.0;
      for (size_t i = 0; i < members_.size(); i++) {
        if (members_[i].demand < mean_demand) {
          residencies[i] *= boost;
        }
        sum += residencies[i];
      }
      for (double& r : residencies) {
        r /= sum;
      }
      break;
    }

    case Scenario::kMixedDemandMixedPriority: {
      // Scenario 3.  Find the HP member; the core's frequency serves it.
      size_t hp = 0;
      for (size_t i = 0; i < members_.size(); i++) {
        if (members_[i].high_priority) {
          hp = i;
          break;
        }
      }
      double max_hp_demand = 0.0;
      double max_lp_demand = 0.0;
      for (const Member& m : members_) {
        (m.high_priority ? max_hp_demand : max_lp_demand) =
            std::max(m.high_priority ? max_hp_demand : max_lp_demand, m.demand);
      }
      if (max_lp_demand > kDemandTolerance * members_[hp].demand &&
          d.freq_mhz < platform_.max_mhz - platform_.step_mhz) {
        // LDHP + HDLP and the power feedback could not hold the maximum
        // frequency: the high-demand LP members are the reason.  Evict them
        // so the HP app gets its full frequency (paper: "the HDLP
        // application does not run at all").
        double sum = 0.0;
        for (size_t i = 0; i < members_.size(); i++) {
          if (!members_[i].high_priority &&
              members_[i].demand > kDemandTolerance * members_[hp].demand) {
            residencies[i] = 0.0;
          }
          sum += residencies[i];
        }
        if (sum > 0.0) {
          for (double& r : residencies) {
            r /= sum;
          }
        }
      }
      // HDHP (or compatible demands): everyone shares the core at the HP
      // app's frequency — the LDLP member simply runs slower than alone.
      break;
    }
  }

  d.residencies = std::move(residencies);
  decision_ = d;
  return decision_;
}

SingleCoreSharing::Decision SingleCoreSharing::Initial(Watts core_limit_w) {
  // Crude linear power-to-frequency start; feedback refines it.
  const double t = std::clamp(
      (core_limit_w - platform_.core_min_w) / (platform_.core_max_w - platform_.core_min_w),
      0.0, 1.0);
  freq_mhz_ = platform_.min_mhz + t * (platform_.max_mhz - platform_.min_mhz);
  return Recompute();
}

SingleCoreSharing::Decision SingleCoreSharing::Step(Watts core_limit_w,
                                                    Watts measured_core_w) {
  freq_mhz_ = std::clamp(freq_mhz_ + MhzPerWattGain(kGainMhzPerWatt, core_limit_w - measured_core_w),
                         platform_.min_mhz, platform_.max_mhz);
  return Recompute();
}

}  // namespace papd
