// Single-core sharing policy (paper Section 4.3).
//
// When applications time-share one core, the power mechanism has two knobs:
// the core's P-state and the applications' CPU shares (cgroups cpusets /
// docker --cpu-shares in the paper).  The paper enumerates three scenarios;
// this policy implements all of them behind one control interface:
//
//  1. Equal demands: power is the same whichever app runs, so set the
//     P-state to the highest level that fits the limit and split residency
//     by shares.
//  2. Mixed demands, equal shares: a power limit forces a frequency chosen
//     for the high-demand app, which unnecessarily throttles the low-demand
//     app; the scheduler compensates by growing the low-demand app's
//     residency in proportion to the throttling (its throughput is
//     residency x frequency).
//  3. Mixed demands, mixed priorities: the core runs at the highest
//     frequency the HP app can use within the limit.  If the HP app is the
//     high-demand one, the LP app simply rides along at the same frequency;
//     if the HP app is low-demand, the high-demand LP app is evicted
//     (residency 0) whenever its presence would force the core below the
//     HP app's attainable frequency.
//
// Control model: the caller owns a TimeSharedCore-style mechanism and a
// per-core power reading; each period it feeds the measured core power and
// receives a frequency target plus per-app residencies.

#ifndef SRC_POLICY_SINGLE_CORE_H_
#define SRC_POLICY_SINGLE_CORE_H_

#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/policy/app_model.h"

namespace papd {

class SingleCoreSharing {
 public:
  struct Member {
    std::string name;
    double shares = 1.0;
    bool high_priority = false;
    // Relative power demand (activity factor); the HD/LD classification
    // uses the ratio between members.
    double demand = 1.0;
  };

  struct Decision {
    Mhz freq_mhz{0.0};
    // Residency fraction per member, summing to <= 1.  Zero = evicted.
    std::vector<double> residencies;
  };

  SingleCoreSharing(PolicyPlatform platform, std::vector<Member> members);

  // Initial decision for a given per-core power budget.
  Decision Initial(Watts core_limit_w);

  // One control iteration: measured core power versus the budget adjusts
  // the frequency (integral control); residencies are recomputed for the
  // new frequency.
  Decision Step(Watts core_limit_w, Watts measured_core_w);

  // Scenario classification (exposed for tests/benches).
  enum class Scenario { kEqualDemand, kMixedDemandEqualPriority, kMixedDemandMixedPriority };
  Scenario ClassifyScenario() const;

  const Decision& decision() const { return decision_; }

 private:
  Decision Recompute();

  // Members are considered equal-demand when within this ratio.
  static constexpr double kDemandTolerance = 1.15;
  // Frequency adjustment per watt of power error, per period.
  static constexpr double kGainMhzPerWatt = 250.0;

  PolicyPlatform platform_;
  std::vector<Member> members_;
  Mhz freq_mhz_;
  Decision decision_;
};

}  // namespace papd

#endif  // SRC_POLICY_SINGLE_CORE_H_
