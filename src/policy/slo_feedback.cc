#include "src/policy/slo_feedback.h"

#include <algorithm>

#include "src/common/check.h"

namespace papd {

SloFeedbackArbiter::SloFeedbackArbiter(SloFeedbackOptions options) : options_(options) {
  PAPD_CHECK_GT(options_.step, 0.0);
  PAPD_CHECK_GT(options_.decay, 0.0);
  PAPD_CHECK_GT(options_.min_bias, 0.0);
  PAPD_CHECK_LE(options_.min_bias, 1.0);
  PAPD_CHECK_GE(options_.max_bias, 1.0);
  PAPD_CHECK_GE(options_.enter_fraction, options_.exit_fraction);
}

void SloFeedbackArbiter::Resize(size_t nodes) { bias_.assign(nodes, 1.0); }

int SloFeedbackArbiter::Update(const std::vector<double>& violation_fraction) {
  PAPD_CHECK_EQ(violation_fraction.size(), bias_.size());
  const double up = 1.0 + options_.step;
  const double down = 1.0 + options_.decay;
  int moved = 0;
  for (size_t i = 0; i < bias_.size(); i++) {
    const double frac = violation_fraction[i];
    const double before = bias_[i];
    if (frac >= options_.enter_fraction) {
      bias_[i] = std::min(before * up, options_.max_bias);
    } else if (frac <= options_.exit_fraction) {
      // Decay toward neutral from either side; land exactly on 1.0 so a
      // recovered shard's shares return to their configured value.
      if (before > 1.0) {
        bias_[i] = std::max(before / down, 1.0);
      } else if (before < 1.0) {
        bias_[i] = std::min(before * down, 1.0);
      }
    }
    // Inside (exit_fraction, enter_fraction): hold — the hysteresis band.
    if (bias_[i] != before) {
      moved++;
    }
  }
  return moved;
}

}  // namespace papd
