// SLO-feedback share arbiter: closes the loop the paper left open.
//
// Per-Application Power Delivery divides a socket's power by static shares;
// the BudgetTree (PR 8) runs the same min-funding arbiter at every cluster
// level, still with static shares.  Neither reacts to what the watts buy.
// For a latency-sensitive serving fleet the thing that matters is tail
// latency against an SLO, and FastCap (arxiv 1603.01313) makes the case
// that a cap should be divided by per-application performance need, not
// configuration alone.
//
// SloFeedbackArbiter maintains one multiplicative *bias* per budget-tree
// node.  Each control period the fleet reports, per node, the fraction of
// subtree leaves whose windowed p90 latency violated the SLO; the arbiter
// nudges the node's bias by a bounded multiplicative step:
//
//   - fraction >= enter_fraction : bias *= (1 + step)   (boost, up to max)
//   - fraction <= exit_fraction  : bias decays toward 1 by (1 + decay)
//   - in between                 : bias holds (hysteresis dead band)
//
// The attack/release asymmetry (decay < step) matters at the leaves, where
// the violating fraction is binary and the dead band can never hold: a
// shard that recovers only because its bias boosted it would, under
// symmetric decay, shed the boost as fast as it gained it and flap between
// violating and recovered.  A slow release keeps the watts parked long
// enough to drain the queue backlog the violation built up.
//
// The effective min-funding shares at every tree level are
// base_shares * bias.  Because shares only set *proportions* — each node's
// [floor, ceiling] bounds are untouched — the BudgetTree's structural cap
// invariant (sum of child grants <= parent grant) holds under any bias
// vector; AuditProportionalSplit re-checks every biased split when
// auditing is on.
//
// Bounded step + hysteresis give the loop its stability properties: a
// persistent violator converges to max_bias in O(log(max_bias)/step)
// periods and stays; a recovered shard decays back to exactly 1.0 and
// stays; a shard oscillating inside the dead band does not flap.

#ifndef SRC_POLICY_SLO_FEEDBACK_H_
#define SRC_POLICY_SLO_FEEDBACK_H_

#include <cstddef>
#include <vector>

#include "src/common/units.h"

namespace papd {

struct SloFeedbackOptions {
  // The p90 response-time SLO each shard is held to.
  Seconds slo_p90{0.050};
  // Multiplicative step per control period; bounds how fast shares move.
  double step = 0.25;
  // Release rate once a subtree is back under the SLO (see header note on
  // why the release must be slower than the attack).
  double decay = 0.0625;
  // Bias clamp range.  min_bias < 1 lets chronically idle subtrees shed
  // proportion; 1.0 means biases only ever boost.
  double min_bias = 1.0;
  double max_bias = 4.0;
  // Hysteresis thresholds on the subtree violating-leaf fraction.
  double enter_fraction = 0.5;
  double exit_fraction = 0.25;
};

class SloFeedbackArbiter {
 public:
  explicit SloFeedbackArbiter(SloFeedbackOptions options = {});

  // One tracked bias per budget-tree node, all starting at 1.0.
  void Resize(size_t nodes);

  // One control-period update.  `violation_fraction[i]` is the fraction of
  // node i's subtree leaves whose windowed p90 exceeded the SLO.  Returns
  // the number of nodes whose bias moved this period.
  int Update(const std::vector<double>& violation_fraction);

  double bias(size_t node) const { return bias_[node]; }
  const std::vector<double>& biases() const { return bias_; }
  size_t size() const { return bias_.size(); }
  const SloFeedbackOptions& options() const { return options_; }

 private:
  SloFeedbackOptions options_;
  std::vector<double> bias_;
};

}  // namespace papd

#endif  // SRC_POLICY_SLO_FEEDBACK_H_
