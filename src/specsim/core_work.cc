#include "src/specsim/core_work.h"

#include <algorithm>

namespace papd {

// Run and RunBatch are mutual defaults: a subclass overrides at least one
// (see the header contract).  Neither default is marked PAPD_HOT — a work
// that reaches the allocating bridge has opted out of the zero-alloc tick.

WorkSlice CoreWork::Run(Seconds dt, Mhz freq_mhz) {
  WorkSlice slice;
  RunBatch(dt, &freq_mhz, &slice, 1);
  return slice;
}

void CoreWork::RunBatch(Seconds dt, const Mhz* freqs_mhz, WorkSlice* out_slices,
                        int n) {
  for (int k = 0; k < n; ++k) {
    out_slices[k] = Run(dt, freqs_mhz[k]);
  }
}

int CoreWork::SteadyTicks(Seconds /*dt*/) const { return 0; }

void CoreWork::RunSteadyBatch(Seconds dt, int k, Mhz freq_mhz,
                              WorkSlice* last_slice) {
  for (int step = 0; step < k; ++step) {
    RunBatch(dt, &freq_mhz, last_slice, 1);
  }
}

std::vector<WorkSlice> MultiCoreWork::Run(Seconds dt,
                                          const std::vector<Mhz>& freqs_mhz) {
  std::vector<WorkSlice> slices(freqs_mhz.size());
  RunBatch(dt, freqs_mhz.data(), slices.data(), freqs_mhz.size());
  return slices;
}

void MultiCoreWork::RunBatch(Seconds dt, const Mhz* freqs_mhz,
                             WorkSlice* out_slices, size_t n) {
  shim_freqs_.assign(freqs_mhz, freqs_mhz + n);
  std::vector<WorkSlice> slices = Run(dt, shim_freqs_);
  std::copy(slices.begin(), slices.end(), out_slices);
}

}  // namespace papd
