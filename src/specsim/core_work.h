// Interfaces between workloads and the processor simulator.
//
// A CoreWork occupies one core; the simulator asks it to run for a time
// slice at the core's current effective frequency and it reports what it
// did: instructions retired, the fraction of the slice the core was busy
// (C0), and the power-relevant characteristics of the executed instruction
// mix (activity factor, AVX fraction).
//
// A MultiCoreWork spans several cores whose behaviour is coupled (the
// websearch queueing model: a request queued on one core affects latency
// seen by all); the simulator advances it once per tick with the effective
// frequencies of all its cores.

#ifndef SRC_SPECSIM_CORE_WORK_H_
#define SRC_SPECSIM_CORE_WORK_H_

#include <string>
#include <vector>

#include "src/common/units.h"

namespace papd {

// What a workload did during one simulation slice on one core.
struct WorkSlice {
  // Instructions retired during the slice.
  double instructions = 0.0;
  // Fraction of the slice the core spent in C0 (0..1).
  double busy_fraction = 0.0;
  // Dynamic-power activity factor of the executed mix (1.0 = the reference
  // integer workload; AVX-heavy code is higher).
  double activity = 0.0;
  // Fraction of instructions that are AVX; drives AVX frequency caps.
  double avx_fraction = 0.0;
};

class CoreWork {
 public:
  virtual ~CoreWork() = default;

  // Advances the workload by dt seconds with the core running at freq_mhz.
  virtual WorkSlice Run(Seconds dt, Mhz freq_mhz) = 0;

  // True if the workload executes enough AVX code to be subject to the
  // platform's AVX frequency caps.
  virtual bool UsesAvx() const = 0;

  virtual std::string Name() const = 0;
};

class MultiCoreWork {
 public:
  virtual ~MultiCoreWork() = default;

  // Core ids (package-local) this work occupies; fixed for its lifetime.
  virtual const std::vector<int>& Cores() const = 0;

  // Advances by dt with freqs_mhz[i] the effective frequency of Cores()[i].
  // Returns one slice per core, in Cores() order.
  virtual std::vector<WorkSlice> Run(Seconds dt, const std::vector<Mhz>& freqs_mhz) = 0;

  virtual bool UsesAvx() const = 0;

  virtual std::string Name() const = 0;
};

}  // namespace papd

#endif  // SRC_SPECSIM_CORE_WORK_H_
