// Interfaces between workloads and the processor simulator.
//
// A CoreWork occupies one core; the simulator asks it to run for a time
// slice at the core's current effective frequency and it reports what it
// did: instructions retired, the fraction of the slice the core was busy
// (C0), and the power-relevant characteristics of the executed instruction
// mix (activity factor, AVX fraction).
//
// A MultiCoreWork spans several cores whose behaviour is coupled (the
// websearch queueing model: a request queued on one core affects latency
// seen by all); the simulator advances it once per tick with the effective
// frequencies of all its cores.
//
// Both interfaces offer two entry points: the legacy per-call `Run` and the
// span-based `RunBatch` used by the package tick engine.  Each has a default
// implementation in terms of the other, so subclasses override whichever is
// natural — but MUST override at least one or the pair recurses forever
// (same contract as std::streambuf's overflow/xsputn pairing).  In-tree
// workloads override RunBatch so the steady-state tick is allocation-free;
// out-of-tree subclasses that only override Run keep compiling and working.

#ifndef SRC_SPECSIM_CORE_WORK_H_
#define SRC_SPECSIM_CORE_WORK_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace papd {

// What a workload did during one simulation slice on one core.
struct WorkSlice {
  // Instructions retired during the slice.
  double instructions = 0.0;
  // Fraction of the slice the core spent in C0 (0..1).
  double busy_fraction = 0.0;
  // Dynamic-power activity factor of the executed mix (1.0 = the reference
  // integer workload; AVX-heavy code is higher).
  double activity = 0.0;
  // Fraction of instructions that are AVX; drives AVX frequency caps.
  double avx_fraction = 0.0;
};

class CoreWork {
 public:
  virtual ~CoreWork() = default;

  // Advances the workload by dt seconds with the core running at freq_mhz.
  // Default implementation forwards to RunBatch with n == 1.
  virtual WorkSlice Run(Seconds dt, Mhz freq_mhz);

  // Advances the workload through n consecutive slices of dt seconds each;
  // freqs_mhz[k] is the core's effective frequency during slice k and
  // out_slices[k] receives that slice's results.  The package tick engine
  // issues n == 1 calls on this path; larger spans let offline drivers batch
  // ticks between control actions.  Default implementation loops Run.
  virtual void RunBatch(Seconds dt, const Mhz* freqs_mhz, WorkSlice* out_slices,
                        int n);

  // True if the workload executes enough AVX code to be subject to the
  // platform's AVX frequency caps.  Must be invariant while the work is
  // attached to a Package: the tick engine caches the value at attach time.
  virtual bool UsesAvx() const = 0;

  // Multi-rate tick support.  SteadyTicks reports how many upcoming dt-ticks
  // the work guarantees to produce (statistically) the same slice it produced
  // on the last Run/RunBatch call, assuming the effective frequency stays
  // fixed.  0 (the default) means "not steady": the tick engine then runs the
  // work every tick.  A work returning k > 0 must accept a later
  // RunSteadyBatch(dt, k', ...) catch-up for any k' <= k.
  virtual int SteadyTicks(Seconds dt) const;

  // Catches internal accounting up over k held ticks of length dt at a fixed
  // frequency, without being Run tick-by-tick; *last_slice is the slice the
  // tick engine replayed during the hold (the work's own last reported slice)
  // and may be updated to reflect the post-hold state.  The default
  // implementation replays RunBatch k times — correct for any work, O(k).
  // Works that report SteadyTicks > 0 should override with an O(1)
  // closed-form update.
  virtual void RunSteadyBatch(Seconds dt, int k, Mhz freq_mhz,
                              WorkSlice* last_slice);

  virtual std::string Name() const = 0;
};

class MultiCoreWork {
 public:
  virtual ~MultiCoreWork() = default;

  // Core ids (package-local) this work occupies; fixed for its lifetime.
  virtual const std::vector<int>& Cores() const = 0;

  // Advances by dt with freqs_mhz[i] the effective frequency of Cores()[i].
  // Returns one slice per core, in Cores() order.  Default implementation
  // forwards to RunBatch (allocating the return vector; the tick engine
  // never takes this path for works that override RunBatch).
  virtual std::vector<WorkSlice> Run(Seconds dt,
                                     const std::vector<Mhz>& freqs_mhz);

  // Span form of Run: freqs_mhz[i] / out_slices[i] correspond to Cores()[i]
  // and n must equal Cores().size().  Default implementation copies the
  // span into scratch and forwards to the legacy Run (allocating only for
  // out-of-tree subclasses that haven't overridden this).
  virtual void RunBatch(Seconds dt, const Mhz* freqs_mhz, WorkSlice* out_slices,
                        size_t n);

  // Must be invariant while attached to a Package (cached at attach time).
  virtual bool UsesAvx() const = 0;

  virtual std::string Name() const = 0;

 private:
  // Scratch for the default RunBatch -> Run bridge; unused when RunBatch is
  // overridden.
  std::vector<Mhz> shim_freqs_;
};

}  // namespace papd

#endif  // SRC_SPECSIM_CORE_WORK_H_
