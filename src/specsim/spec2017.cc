#include "src/specsim/spec2017.h"

#include <cstdlib>
#include <map>

#include "src/common/logging.h"

namespace papd {
namespace {

// Calibration notes (DESIGN.md Section 5):
//  - activity: dynamic-power demand relative to gcc.  AVX users (lbm,
//    imagick, cam4) and cactusBSSN are the paper's high-demand apps; leela
//    and gcc its low-demand exemplars.
//  - mem_ns_per_instr: frequency-insensitive stall time.  omnetpp and lbm
//    are the memory-bound outliers whose performance saturates with
//    frequency (Figures 2-3).
//  - phase_amplitude/jitter: drives the performance-share instability the
//    paper reports (Section 6.2); gcc and perlbench are phase-heavy.
std::map<std::string, WorkloadProfile> BuildRegistry() {
  std::map<std::string, WorkloadProfile> reg;
  auto add = [&reg](WorkloadProfile p) { reg[p.name] = std::move(p); };

  add({.name = "lbm",
       .cpi = 0.80,
       .mem_ns_per_instr = 0.55,
       .activity = 1.65,
       .avx_fraction = 0.60,
       .phase_amplitude = 0.02,
       .phase_period_s = Seconds{25.0},
       .jitter = 0.004,
       .total_ginstr = 250.0});
  add({.name = "cactusBSSN",
       .cpi = 0.90,
       .mem_ns_per_instr = 0.12,
       .activity = 1.40,
       .avx_fraction = 0.10,
       .phase_amplitude = 0.02,
       .phase_period_s = Seconds{40.0},
       .jitter = 0.004,
       .total_ginstr = 300.0});
  add({.name = "povray",
       .cpi = 1.05,
       .mem_ns_per_instr = 0.04,
       .activity = 1.15,
       .avx_fraction = 0.05,
       .phase_amplitude = 0.01,
       .phase_period_s = Seconds{30.0},
       .jitter = 0.003,
       .total_ginstr = 320.0});
  add({.name = "imagick",
       .cpi = 0.70,
       .mem_ns_per_instr = 0.03,
       .activity = 1.70,
       .avx_fraction = 0.70,
       .phase_amplitude = 0.02,
       .phase_period_s = Seconds{20.0},
       .jitter = 0.004,
       .total_ginstr = 350.0});
  add({.name = "cam4",
       .cpi = 0.90,
       .mem_ns_per_instr = 0.10,
       .activity = 1.60,
       .avx_fraction = 0.60,
       .phase_amplitude = 0.04,
       .phase_period_s = Seconds{35.0},
       .jitter = 0.005,
       .total_ginstr = 300.0});
  add({.name = "gcc",
       .cpi = 1.00,
       .mem_ns_per_instr = 0.20,
       .activity = 1.00,
       .avx_fraction = 0.00,
       .phase_amplitude = 0.10,
       .phase_period_s = Seconds{12.0},
       .jitter = 0.010,
       .total_ginstr = 280.0});
  add({.name = "exchange2",
       .cpi = 0.85,
       .mem_ns_per_instr = 0.00,
       .activity = 0.95,
       .avx_fraction = 0.00,
       .phase_amplitude = 0.01,
       .phase_period_s = Seconds{50.0},
       .jitter = 0.002,
       .total_ginstr = 380.0});
  add({.name = "deepsjeng",
       .cpi = 1.00,
       .mem_ns_per_instr = 0.10,
       .activity = 1.05,
       .avx_fraction = 0.00,
       .phase_amplitude = 0.02,
       .phase_period_s = Seconds{30.0},
       .jitter = 0.004,
       .total_ginstr = 320.0});
  add({.name = "leela",
       .cpi = 1.05,
       .mem_ns_per_instr = 0.06,
       .activity = 0.90,
       .avx_fraction = 0.00,
       .phase_amplitude = 0.015,
       .phase_period_s = Seconds{45.0},
       .jitter = 0.003,
       .total_ginstr = 340.0});
  add({.name = "perlbench",
       .cpi = 0.95,
       .mem_ns_per_instr = 0.30,
       .activity = 1.05,
       .avx_fraction = 0.00,
       .phase_amplitude = 0.08,
       .phase_period_s = Seconds{25.0},
       .jitter = 0.008,
       .total_ginstr = 300.0});
  add({.name = "omnetpp",
       .cpi = 1.10,
       .mem_ns_per_instr = 0.85,
       .activity = 0.95,
       .avx_fraction = 0.00,
       .phase_amplitude = 0.05,
       .phase_period_s = Seconds{15.0},
       .jitter = 0.006,
       .total_ginstr = 220.0});

  // Power virus (Section 3, "unfair throttling"): maximal switching
  // activity.  The paper measures ~32 W on a single boosted core *at
  // 3 GHz*, so cpuburn is power-dense without tripping the AVX frequency
  // caps (avx_fraction below WorkloadProfile::kAvxThreshold).
  add({.name = "cpuburn",
       .cpi = 0.50,
       .mem_ns_per_instr = 0.00,
       .activity = 3.20,
       .avx_fraction = 0.20,
       .phase_amplitude = 0.00,
       .phase_period_s = Seconds{1.0},
       .jitter = 0.000,
       .total_ginstr = 1.0e6});  // Effectively infinite.

  return reg;
}

const std::map<std::string, WorkloadProfile>& Registry() {
  static const std::map<std::string, WorkloadProfile> kRegistry = BuildRegistry();
  return kRegistry;
}

}  // namespace

const WorkloadProfile& GetProfile(const std::string& name) {
  const auto& reg = Registry();
  auto it = reg.find(name);
  if (it == reg.end()) {
    PAPD_LOG_ERROR("unknown workload profile: %s", name.c_str());
    std::abort();
  }
  return it->second;
}

bool HasProfile(const std::string& name) { return Registry().count(name) != 0; }

const std::vector<std::string>& SpecBenchmarkNames() {
  static const std::vector<std::string> kNames = {
      "lbm",  "cactusBSSN", "povray", "imagick",   "cam4",    "gcc",
      "exchange2", "deepsjeng",  "leela",  "perlbench", "omnetpp",
  };
  return kNames;
}

bool IsHighDemand(const WorkloadProfile& profile) { return profile.activity > 1.2; }

}  // namespace papd
