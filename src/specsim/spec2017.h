// Profile registry for the paper's benchmark set.
//
// The paper evaluates a recommended subset of 11 SPEC CPU2017 benchmarks
// (lbm, cactusBSSN, povray, imagick, cam4, gcc, exchange2, deepsjeng, leela,
// perlbench, omnetpp), the cpuburn power virus, and CloudSuite websearch.
// The profile parameters below are calibrated against the paper's Figures
// 2-3 (DVFS response spread, AVX power outliers, HD/LD demand split); see
// DESIGN.md Section 5.

#ifndef SRC_SPECSIM_SPEC2017_H_
#define SRC_SPECSIM_SPEC2017_H_

#include <string>
#include <vector>

#include "src/specsim/workload.h"

namespace papd {

// Looks up a profile by benchmark name ("gcc", "cam4", "cpuburn", ...).
// Aborts on unknown names (these are compiled-in experiment inputs).
const WorkloadProfile& GetProfile(const std::string& name);

// True if `name` is a known profile.
bool HasProfile(const std::string& name);

// The 11 SPEC CPU2017 benchmarks used in the paper's evaluation, in the
// order the paper lists them.
const std::vector<std::string>& SpecBenchmarkNames();

// High-demand / low-demand classification used by the paper: a benchmark is
// high demand (HD) if it draws more power than the median benchmark at a
// given P-state (activity factor above 1.2 in our calibration).
bool IsHighDemand(const WorkloadProfile& profile);

}  // namespace papd

#endif  // SRC_SPECSIM_SPEC2017_H_
