#include "src/specsim/spinlock.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace papd {

SpinLockWork::SpinLockWork(std::vector<int> cores, Params params)
    : cores_(std::move(cores)), params_(params) {
  assert(!cores_.empty());
  threads_.resize(cores_.size());
  iterations_.assign(cores_.size(), 0.0);
  wait_ring_.assign(cores_.size(), 0);
  scratch_work_cycles_.assign(cores_.size(), 0.0);
  scratch_spin_cycles_.assign(cores_.size(), 0.0);
  for (Thread& t : threads_) {
    t.phase = Phase::kLocal;
    t.remaining_cycles = params_.local_cycles;
  }
}

void SpinLockWork::WaitQueuePush(size_t thread) {
  assert(wait_count_ < wait_ring_.size());
  wait_ring_[(wait_head_ + wait_count_) % wait_ring_.size()] = thread;
  wait_count_++;
}

size_t SpinLockWork::WaitQueuePop() {
  assert(wait_count_ > 0);
  const size_t thread = wait_ring_[wait_head_];
  wait_head_ = (wait_head_ + 1) % wait_ring_.size();
  wait_count_--;
  return thread;
}

// PAPD_HOT
void SpinLockWork::RunBatch(Seconds dt, const Mhz* freqs_mhz,
                            WorkSlice* out_slices, size_t n) {
  assert(n == cores_.size());

  // Per-slice accounting.
  double* work_cycles = scratch_work_cycles_.data();
  double* spin_cycles = scratch_spin_cycles_.data();
  std::fill(scratch_work_cycles_.begin(), scratch_work_cycles_.end(), 0.0);
  std::fill(scratch_spin_cycles_.begin(), scratch_spin_cycles_.end(), 0.0);

  // Event-driven: repeatedly advance to the next phase completion.  A
  // thread in kLocal or kCritical finishes after remaining/f seconds; a
  // waiting thread spins until the lock reaches it.
  Seconds remaining_s{dt};
  for (int guard = 0; guard < 100000 && remaining_s > Seconds{1e-12}; guard++) {
    // Next completion among running threads.
    Seconds next{remaining_s};
    for (size_t i = 0; i < n; i++) {
      const Thread& t = threads_[i];
      if (t.phase == Phase::kWaiting || freqs_mhz[i] <= Mhz{0.0}) {
        continue;
      }
      next = std::min(next, SecondsForCycles(t.remaining_cycles, freqs_mhz[i]));
    }

    // Advance all threads by `next` seconds.
    for (size_t i = 0; i < n; i++) {
      Thread& t = threads_[i];
      const double cycles = freqs_mhz[i] * kHzPerMhz * next;
      switch (t.phase) {
        case Phase::kWaiting:
          spin_cycles[i] += cycles;
          break;
        case Phase::kLocal:
        case Phase::kCritical:
          work_cycles[i] += std::min(cycles, t.remaining_cycles);
          t.remaining_cycles -= cycles;
          break;
      }
    }
    remaining_s -= next;

    // Process completions (remaining <= 0).
    for (size_t i = 0; i < n; i++) {
      Thread& t = threads_[i];
      if (t.phase == Phase::kLocal && t.remaining_cycles <= 1e-9) {
        t.phase = Phase::kWaiting;
        WaitQueuePush(i);
      } else if (t.phase == Phase::kCritical && t.remaining_cycles <= 1e-9) {
        t.phase = Phase::kLocal;
        t.remaining_cycles = params_.local_cycles;
        iterations_[i] += 1.0;
        holder_ = -1;
      }
    }
    // FIFO lock handoff.
    if (holder_ < 0 && wait_count_ > 0) {
      const size_t next_holder = WaitQueuePop();
      holder_ = static_cast<int>(next_holder);
      threads_[next_holder].phase = Phase::kCritical;
      threads_[next_holder].remaining_cycles = params_.critical_cycles;
    }
  }

  for (size_t i = 0; i < n; i++) {
    const double total = work_cycles[i] + spin_cycles[i];
    const double capacity = freqs_mhz[i] * kHzPerMhz * dt;
    WorkSlice& s = out_slices[i];
    s.instructions = work_cycles[i] * params_.ipc + spin_cycles[i] * params_.spin_ipc;
    s.busy_fraction = capacity > 0.0 ? std::min(1.0, total / capacity) : 0.0;
    s.activity = 0.0;
    if (total > 0.0) {
      s.activity = (params_.activity * work_cycles[i] + params_.spin_activity * spin_cycles[i]) /
                   total;
    }
    s.avx_fraction = 0.0;
  }
}

double SpinLockWork::total_iterations() const {
  double sum = 0.0;
  for (double it : iterations_) {
    sum += it;
  }
  return sum;
}

}  // namespace papd
