// Lock-contended multithreaded workload.
//
// Paper Section 5.2 warns that IPS is only a usable performance proxy for
// single-threaded workloads: "for multithreaded workloads with lock
// contention, where spinlocks may artificially inflate instruction counts,
// hardware mechanisms such as Intel's HWP with its abstract performance
// metric may be a better choice."  SpinLockWork makes that failure mode
// concrete: k threads on k cores iterate
//
//     local work (w cycles)  ->  acquire global lock  ->
//     critical section (h cycles)  ->  release  ->  ...
//
// with FIFO handoff and *spin waiting* — a waiting core burns cycles
// retiring spin-loop instructions at full rate.  Two properties follow:
//
//   - Convoy effect: throttling one core stretches every critical section
//     it executes, so the *system* iteration rate falls far more than the
//     one core's frequency share would suggest.
//   - IPS inflation: the other cores' retired-instruction counters stay
//     high (they spin), so an IPS-driven policy sees healthy "performance"
//     on exactly the cores whose useful work is collapsing.
//
// Useful progress is exposed separately as completed iterations.

#ifndef SRC_SPECSIM_SPINLOCK_H_
#define SRC_SPECSIM_SPINLOCK_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/specsim/core_work.h"

namespace papd {

class SpinLockWork : public MultiCoreWork {
 public:
  struct Params {
    // Cycles of uncontended local work per iteration.
    double local_cycles = 40000.0;
    // Cycles holding the global lock per iteration.
    double critical_cycles = 20000.0;
    // Retired instructions per cycle in local/critical code.
    double ipc = 1.0;
    // Retired instructions per cycle while spin-waiting (pause loops retire
    // fast).
    double spin_ipc = 1.0;
    // Dynamic-power activity while working / spinning.
    double activity = 1.0;
    double spin_activity = 0.8;
  };

  SpinLockWork(std::vector<int> cores, Params params);

  const std::vector<int>& Cores() const override { return cores_; }
  void RunBatch(Seconds dt, const Mhz* freqs_mhz, WorkSlice* out_slices,
                size_t n) override;
  bool UsesAvx() const override { return false; }
  std::string Name() const override { return "spinlock"; }

  // Completed iterations per thread (useful progress).
  const std::vector<double>& iterations() const { return iterations_; }
  double total_iterations() const;

 private:
  enum class Phase { kLocal, kWaiting, kCritical };
  struct Thread {
    Phase phase = Phase::kLocal;
    double remaining_cycles = 0.0;  // In the current local/critical stretch.
  };

  // FIFO of threads waiting for the lock, as a fixed ring over the thread
  // count (a deque reallocates block-by-block as entries cycle through it,
  // which would break the zero-alloc steady-state tick).
  void WaitQueuePush(size_t thread);
  size_t WaitQueuePop();

  std::vector<int> cores_;
  Params params_;
  std::vector<Thread> threads_;
  std::vector<size_t> wait_ring_;  // Capacity == thread count.
  size_t wait_head_ = 0;
  size_t wait_count_ = 0;
  int holder_ = -1;  // Thread index holding the lock; -1 free.
  std::vector<double> iterations_;
  // Per-slice accounting scratch, sized once in the constructor.
  std::vector<double> scratch_work_cycles_;
  std::vector<double> scratch_spin_cycles_;
};

}  // namespace papd

#endif  // SRC_SPECSIM_SPINLOCK_H_
