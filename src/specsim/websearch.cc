#include "src/specsim/websearch.h"

#include <algorithm>
#include <cassert>

#include "src/common/stats.h"

namespace papd {

WebSearch::WebSearch(std::vector<int> cores, Params params, uint64_t seed)
    : cores_(std::move(cores)), params_(params), rng_(seed) {
  assert(!cores_.empty());
  queues_.resize(cores_.size());
  backlog_cycles_.assign(cores_.size(), 0.0);
  // Users start thinking with independent phases so load ramps smoothly.
  for (int u = 0; u < params_.users; u++) {
    think_expiry_.push(rng_.Exponential(params_.think_mean_s));
  }
}

void WebSearch::Dispatch(Seconds t) {
  // Join-shortest-backlog (cycles, not queue length, so one long request
  // does not attract more work).
  size_t best = 0;
  for (size_t i = 1; i < queues_.size(); i++) {
    if (backlog_cycles_[i] < backlog_cycles_[best]) {
      best = i;
    }
  }
  const double demand = rng_.Exponential(params_.service_mcycles_mean) * 1e6;
  queues_[best].push_back(Request{.submit_time = t, .remaining_cycles = demand});
  backlog_cycles_[best] += demand;
}

// PAPD_HOT — request bookkeeping (latency samples, think timers) grows
// amortized containers; those lines carry PAPD_HOT_ALLOW.
void WebSearch::RunBatch(Seconds dt, const Mhz* freqs_mhz,
                         WorkSlice* out_slices, size_t n) {
  assert(n == cores_.size());
  (void)n;
  const Seconds end{now_ + dt};

  // Admit every request whose think timer expires in this slice.  Arrival
  // times are preserved exactly; service begins at tick granularity, which
  // is fine for dt (1 ms) << mean service time (~15 ms).
  while (!think_expiry_.empty() && think_expiry_.top() <= end) {
    const Seconds t{think_expiry_.top()};
    think_expiry_.pop();
    Dispatch(t);
  }

  double util_sum = 0.0;
  for (size_t i = 0; i < cores_.size(); i++) {
    double available = freqs_mhz[i] * kHzPerMhz * dt;  // Cycles this slice.
    const double budget = available;
    auto& queue = queues_[i];
    double used = 0.0;

    while (!queue.empty() && available > 0.0) {
      Request& req = queue.front();
      const double consumed = std::min(req.remaining_cycles, available);
      req.remaining_cycles -= consumed;
      available -= consumed;
      used += consumed;
      backlog_cycles_[i] -= consumed;
      if (req.remaining_cycles <= 0.0) {
        // Completion at the exact fractional point of the slice.
        const Seconds finish{now_ + SecondsForCycles(budget - available, freqs_mhz[i])};
        const Seconds latency{(finish - req.submit_time) + params_.fixed_latency_s};
        latencies_.push_back(latency);  // PAPD_HOT_ALLOW: amortized stats log.
        completed_++;
        // The user sees the response, then thinks before the next request.
        think_expiry_.push(finish + params_.fixed_latency_s +  // PAPD_HOT_ALLOW
                           rng_.Exponential(params_.think_mean_s));
        queue.pop_front();
      }
    }

    const double busy = budget > 0.0 ? used / budget : 0.0;
    util_sum += busy;
    out_slices[i] = WorkSlice{
        .instructions = used * params_.ipc,
        .busy_fraction = busy,
        .activity = busy > 0.0 ? params_.activity : 0.0,
        .avx_fraction = 0.0,
    };
  }
  last_mean_util_ = util_sum / static_cast<double>(cores_.size());
  now_ = end;
}

void WebSearch::ResetStats() {
  latencies_.clear();
  completed_ = 0;
}

Seconds WebSearch::LatencyPercentile(double p) const { return Percentile(latencies_, p); }

}  // namespace papd
