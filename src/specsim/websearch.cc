#include "src/specsim/websearch.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/stats.h"

namespace papd {

const char* ArrivalShapeName(ArrivalShape shape) {
  switch (shape) {
    case ArrivalShape::kConstant:
      return "constant";
    case ArrivalShape::kDiurnal:
      return "diurnal";
    case ArrivalShape::kTrace:
      return "trace";
  }
  return "?";
}

WebSearch::WebSearch(std::vector<int> cores, Params params, uint64_t seed)
    : cores_(std::move(cores)), params_(params), rng_(seed) {
  assert(!cores_.empty());
  queues_.resize(cores_.size());
  backlog_cycles_.assign(cores_.size(), 0.0);
  if (params_.open_loop.enabled) {
    // First exogenous arrival; later gaps are sampled as each arrival is
    // admitted, so the sequence depends only on the seed and the shape.
    const double rate = ArrivalRateAt(Seconds{0.0});
    next_arrival_ = rng_.Exponential(Seconds{1.0 / rate});
  } else {
    // Users start thinking with independent phases so load ramps smoothly.
    for (int u = 0; u < params_.users; u++) {
      think_expiry_.push(rng_.Exponential(params_.think_mean_s));
    }
  }
}

void WebSearch::Dispatch(Seconds t) {
  // Join-shortest-backlog (cycles, not queue length, so one long request
  // does not attract more work).
  size_t best = 0;
  for (size_t i = 1; i < queues_.size(); i++) {
    if (backlog_cycles_[i] < backlog_cycles_[best]) {
      best = i;
    }
  }
  const double demand = rng_.Exponential(params_.service_mcycles_mean) * 1e6;
  queues_[best].push_back(Request{.submit_time = t, .remaining_cycles = demand});
  backlog_cycles_[best] += demand;
  arrivals_++;
  outstanding_++;
  peak_queue_depth_ = std::max(peak_queue_depth_, outstanding_);
}

double WebSearch::ArrivalRateAt(Seconds t) const {
  const OpenLoop& ol = params_.open_loop;
  if (!ol.enabled) {
    return 0.0;
  }
  const double mean = ol.users * ol.requests_per_user_per_day / 86400.0;
  double multiplier = 1.0;
  switch (ol.shape) {
    case ArrivalShape::kConstant:
      break;
    case ArrivalShape::kDiurnal: {
      const double phase = (t + ol.shape_phase_s) / ol.diurnal_period_s;
      multiplier = 1.0 + ol.diurnal_amplitude * std::sin(2.0 * M_PI * phase);
      break;
    }
    case ArrivalShape::kTrace: {
      if (!ol.trace.empty()) {
        const auto step = static_cast<size_t>((t + ol.shape_phase_s) / ol.trace_step_s);
        multiplier = ol.trace[step % ol.trace.size()];
      }
      break;
    }
  }
  // Floor keeps the Poisson gap sampler finite through rate troughs
  // (amplitude >= 1, zero trace multipliers).
  return std::max(mean * multiplier, 1e-9);
}

void WebSearch::AdmitOpenLoopArrivals(Seconds end) {
  while (next_arrival_ <= end) {
    const Seconds t{next_arrival_};
    Dispatch(t);
    if (params_.open_loop.record_arrivals) {
      arrival_log_.push_back(t);  // PAPD_HOT_ALLOW: test-only arrival log.
    }
    // The rate is evaluated at the arrival being extended; the shape varies
    // over hours while gaps are milliseconds, so piecewise-exponential gaps
    // track the modulated rate closely.
    next_arrival_ = t + rng_.Exponential(Seconds{1.0 / ArrivalRateAt(t)});
  }
}

// PAPD_HOT — request bookkeeping (latency samples, think timers) grows
// amortized containers; those lines carry PAPD_HOT_ALLOW.
void WebSearch::RunBatch(Seconds dt, const Mhz* freqs_mhz,
                         WorkSlice* out_slices, size_t n) {
  assert(n == cores_.size());
  (void)n;
  const Seconds end{now_ + dt};

  // Admit every request arriving in this slice.  Arrival times are
  // preserved exactly; service begins at tick granularity, which is fine
  // for dt (1 ms) << mean service time (~15 ms).
  if (params_.open_loop.enabled) {
    AdmitOpenLoopArrivals(end);
  } else {
    while (!think_expiry_.empty() && think_expiry_.top() <= end) {
      const Seconds t{think_expiry_.top()};
      think_expiry_.pop();
      Dispatch(t);
    }
  }

  double util_sum = 0.0;
  for (size_t i = 0; i < cores_.size(); i++) {
    double available = freqs_mhz[i] * kHzPerMhz * dt;  // Cycles this slice.
    const double budget = available;
    auto& queue = queues_[i];
    double used = 0.0;

    while (!queue.empty() && available > 0.0) {
      Request& req = queue.front();
      const double consumed = std::min(req.remaining_cycles, available);
      req.remaining_cycles -= consumed;
      available -= consumed;
      used += consumed;
      backlog_cycles_[i] -= consumed;
      if (req.remaining_cycles <= 0.0) {
        // Completion at the exact fractional point of the slice.
        const Seconds finish{now_ + SecondsForCycles(budget - available, freqs_mhz[i])};
        const Seconds latency{(finish - req.submit_time) + params_.fixed_latency_s};
        latencies_.push_back(latency);  // PAPD_HOT_ALLOW: amortized stats log.
        completed_++;
        if (outstanding_ > 0) {
          outstanding_--;
        }
        if (!params_.open_loop.enabled) {
          // The user sees the response, then thinks before the next request.
          think_expiry_.push(finish + params_.fixed_latency_s +  // PAPD_HOT_ALLOW
                             rng_.Exponential(params_.think_mean_s));
        }
        queue.pop_front();
      }
    }

    const double busy = budget > 0.0 ? used / budget : 0.0;
    util_sum += busy;
    out_slices[i] = WorkSlice{
        .instructions = used * params_.ipc,
        .busy_fraction = busy,
        .activity = busy > 0.0 ? params_.activity : 0.0,
        .avx_fraction = 0.0,
    };
  }
  last_mean_util_ = util_sum / static_cast<double>(cores_.size());
  // Queue depth sampled at slice end, weighted by slice length: the
  // time-weighted mean over any window of uniform slices.
  depth_integral_s_ += dt * static_cast<double>(outstanding_);
  depth_window_ += dt;
  now_ = end;
}

void WebSearch::ResetStats() {
  latencies_.clear();
  arrival_log_.clear();
  completed_ = 0;
  peak_queue_depth_ = outstanding_;
  depth_integral_s_ = Seconds{0.0};
  depth_window_ = Seconds{0.0};
}

double WebSearch::mean_queue_depth() const {
  return depth_window_ > Seconds{0.0} ? depth_integral_s_ / depth_window_ : 0.0;
}

Seconds WebSearch::LatencyPercentile(double p) const { return Percentile(latencies_, p); }

}  // namespace papd
