// CloudSuite-websearch-like latency-sensitive workload.
//
// The paper's unfair-throttling and latency experiments (Figures 5, 12, 13)
// run CloudSuite websearch with 300 users on 9 cores next to a cpuburn
// power virus.  We model websearch as a closed-loop queueing system:
//
//   - `users` clients cycle between thinking (exponential think time) and
//     waiting for a search request to complete;
//   - each request carries an exponentially distributed service demand in
//     *cycles*, so its service time scales inversely with core frequency;
//   - requests are dispatched to the worker core with the least backlog and
//     served FCFS; a frequency-independent fixed latency (network, IO) is
//     added to the response time;
//   - the 90th percentile of response latencies is the reported metric.
//
// Because cycles are the unit of demand, throttling the worker cores (by
// RAPL or by a policy) directly inflates service times and, once the
// per-core service rate approaches the closed-loop arrival rate, p90
// latency grows dramatically — the behaviour Figure 5 documents.

#ifndef SRC_SPECSIM_WEBSEARCH_H_
#define SRC_SPECSIM_WEBSEARCH_H_

#include <deque>
#include <queue>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/specsim/core_work.h"

namespace papd {

// Shape of the open-loop arrival-rate modulation over simulated time.
enum class ArrivalShape : uint8_t {
  kConstant = 0,  // Flat Poisson rate.
  kDiurnal,       // Sinusoidal day/night swing around the mean rate.
  kTrace,         // Piecewise-constant multipliers replayed from a trace.
};

const char* ArrivalShapeName(ArrivalShape shape);

class WebSearch : public MultiCoreWork {
 public:
  // Exogenous (open-loop) arrival process.  When enabled, users no longer
  // wait for responses before issuing the next request: requests arrive
  // from a Poisson process at `users * requests_per_user_per_day / 86400`
  // requests/s, modulated by `shape`.  The closed-loop think-time cycle is
  // disabled, so queue depth is unbounded when arrivals outrun service —
  // exactly the overload behaviour a fleet under a power cap must surface.
  struct OpenLoop {
    bool enabled = false;
    double users = 1e6;
    double requests_per_user_per_day = 20.0;
    ArrivalShape shape = ArrivalShape::kConstant;
    // kDiurnal: rate = mean * (1 + amplitude * sin(2*pi*(t + phase)/period)).
    double diurnal_amplitude = 0.5;
    Seconds diurnal_period_s{86400.0};
    Seconds shape_phase_s{0.0};
    // kTrace: rate multipliers, one per `trace_step_s`, replayed cyclically.
    std::vector<double> trace;
    Seconds trace_step_s{3600.0};
    // Keep the exact arrival timestamps (tests assert bit-identical
    // sequences across thread counts); off by default — fleets run long.
    bool record_arrivals = false;
  };

  struct Params {
    int users = 300;
    Seconds think_mean_s{2.0};
    // Mean service demand per request, in millions of cycles.  Calibrated
    // so the 300-user load runs the 9 worker cores at ~70-75% utilization
    // at full frequency (the paper's websearch draws 44 W on 9 cores at
    // 3 GHz, i.e. it is close to capacity) — which is what makes p90
    // latency collapse once a power cap throttles the workers.
    double service_mcycles_mean = 120.0;
    // Frequency-independent part of the response time.
    Seconds fixed_latency_s{0.003};
    // Instructions retired per cycle while serving.
    double ipc = 1.0;
    // Dynamic-power activity factor while serving.
    double activity = 0.65;
    OpenLoop open_loop;
  };

  WebSearch(std::vector<int> cores, Params params, uint64_t seed);

  const std::vector<int>& Cores() const override { return cores_; }
  void RunBatch(Seconds dt, const Mhz* freqs_mhz, WorkSlice* out_slices,
                size_t n) override;
  bool UsesAvx() const override { return false; }
  std::string Name() const override { return "websearch"; }

  // Drops all recorded latency samples (e.g. after warmup).
  void ResetStats();

  // Response-time percentile in seconds over the recorded window; p in
  // [0, 100].  Returns 0 with no completed requests.
  Seconds LatencyPercentile(double p) const;

  size_t completed_requests() const { return completed_; }
  const std::vector<Seconds>& latencies() const { return latencies_; }

  // Mean per-core busy fraction over the last Run() call.
  double last_mean_utilization() const { return last_mean_util_; }

  // --- Open-loop telemetry ---------------------------------------------------
  // Requests admitted since construction (open loop) or think-timer
  // expiries (closed loop).
  uint64_t arrivals() const { return arrivals_; }
  // Requests currently queued or in service across all worker cores.
  size_t queue_depth() const { return outstanding_; }
  size_t peak_queue_depth() const { return peak_queue_depth_; }
  // Time-weighted mean queue depth over the recorded window.
  double mean_queue_depth() const;
  // Exact arrival timestamps; only populated with open_loop.record_arrivals.
  const std::vector<Seconds>& arrival_log() const { return arrival_log_; }

  // Instantaneous open-loop arrival rate at simulated time `t` (requests/s,
  // after shape modulation); 0 in closed-loop mode.  Exposed so sweeps can
  // report the offered load they actually generated.
  double ArrivalRateAt(Seconds t) const;

 private:
  struct Request {
    Seconds submit_time;
    double remaining_cycles;
  };

  // Dispatches a request submitted at `t` to the least-backlogged core.
  void Dispatch(Seconds t);

  // Admits every open-loop arrival with timestamp <= `end`.
  void AdmitOpenLoopArrivals(Seconds end);

  std::vector<int> cores_;
  Params params_;
  Rng rng_;
  Seconds now_{0.0};

  // Min-heap of times at which thinking users submit their next request.
  std::priority_queue<Seconds, std::vector<Seconds>, std::greater<>> think_expiry_;
  std::vector<std::deque<Request>> queues_;  // Per core, FCFS.
  std::vector<double> backlog_cycles_;       // Per core.

  // Next exogenous arrival time (open loop only).
  Seconds next_arrival_{0.0};

  std::vector<Seconds> latencies_;
  std::vector<Seconds> arrival_log_;
  size_t completed_ = 0;
  uint64_t arrivals_ = 0;
  size_t outstanding_ = 0;
  size_t peak_queue_depth_ = 0;
  // Integral of (dimensionless) queue depth over time, and the window it
  // covers, for the time-weighted mean (reset with the other stats).
  Seconds depth_integral_s_{0.0};
  Seconds depth_window_{0.0};
  double last_mean_util_ = 0.0;
};

}  // namespace papd

#endif  // SRC_SPECSIM_WEBSEARCH_H_
