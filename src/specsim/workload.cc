#include "src/specsim/workload.h"

#include <algorithm>
#include <cmath>

namespace papd {

Ips WorkloadProfile::NominalIps(Mhz freq_mhz) const {
  const Seconds core_s{SecondsForCycles(cpi, freq_mhz)};
  const Seconds mem_s{mem_ns_per_instr / kNsPerSecond};
  return 1.0 / (core_s + mem_s);
}

bool WorkloadProfile::UsesAvx() const { return avx_fraction >= kAvxThreshold; }

Process::Process(WorkloadProfile profile, uint64_t seed)
    : profile_(std::move(profile)), rng_(seed) {}

WorkSlice Process::Run(Seconds dt, Mhz freq_mhz) { return RunOne(dt, freq_mhz); }

// PAPD_HOT
void Process::RunBatch(Seconds dt, const Mhz* freqs_mhz, WorkSlice* out_slices,
                       int n) {
  for (int k = 0; k < n; ++k) {
    out_slices[k] = RunOne(dt, freqs_mhz[k]);
  }
}

int Process::SteadyTicks(Seconds dt) const {
  constexpr int kUnbounded = 1 << 20;  // The engine caps holds far below this.
  if (dt <= Seconds{0.0}) {
    return 0;
  }
  if (run_to_completion_ && finished_) {
    // Idle after completion: the slice is exactly constant.
    return kUnbounded;
  }
  double horizon = kUnbounded;
  if (profile_.phase_amplitude > 0.0 && profile_.phase_period_s > Seconds{0.0}) {
    // The phase multiplier moves at most amplitude * w * dt per tick; hold
    // until the worst-case accumulated drift reaches the tolerance.
    const Ips w = 2.0 * M_PI / profile_.phase_period_s;
    const double drift_per_tick = profile_.phase_amplitude * (w * dt);
    if (drift_per_tick > 0.0) {
      horizon = std::min(horizon, kPhaseSteadyTolerance / drift_per_tick);
    }
  }
  if (run_to_completion_) {
    if (!(ips_cache_mhz_ > Mhz{0.0})) {
      return 0;  // Never run yet; no slice to replay.
    }
    // Keep well clear of the completion point so the post-hold resync ticks
    // still see the finish-within-a-slice path.
    const double remaining = profile_.total_ginstr * 1e9 - instructions_retired_;
    const double per_tick = ips_cache_ips_ * dt;
    if (per_tick <= 0.0) {
      return 0;
    }
    horizon = std::min(horizon, remaining / (2.0 * per_tick) - 1.0);
  }
  if (horizon < 0.0) {
    return 0;
  }
  return static_cast<int>(std::min(horizon, static_cast<double>(kUnbounded)));
}

void Process::RunSteadyBatch(Seconds dt, int k, Mhz /*freq_mhz*/,
                             WorkSlice* last_slice) {
  if (k <= 0) {
    return;
  }
  if (run_to_completion_ && finished_) {
    wall_time_ += static_cast<double>(k) * dt;
    return;
  }
  // The tick engine replayed *last_slice for k ticks; fold the same totals
  // into the internal accounting in closed form.
  instructions_retired_ += static_cast<double>(k) * last_slice->instructions;
  cpu_time_ += static_cast<double>(k) * last_slice->busy_fraction * dt;
  wall_time_ += static_cast<double>(k) * dt;
  // Advance the phase oscillator by k steps with one memoized rotation, so
  // the post-hold phase is where tick-by-tick execution would have put it.
  if (profile_.phase_amplitude > 0.0 && profile_.phase_period_s > Seconds{0.0}) {
    if (dt == phase_dt_) {
      if (k != steady_rot_k_) {
        steady_rot_k_ = k;
        const Ips w = 2.0 * M_PI / profile_.phase_period_s;
        const double angle = (w * dt) * static_cast<double>(k);
        steady_rot_sin_ = std::sin(angle);
        steady_rot_cos_ = std::cos(angle);
      }
      const double s = phase_sin_ * steady_rot_cos_ + phase_cos_ * steady_rot_sin_;
      const double c = phase_cos_ * steady_rot_cos_ - phase_sin_ * steady_rot_sin_;
      phase_sin_ = s;
      phase_cos_ = c;
    } else {
      phase_dt_ = Seconds{-1.0};  // Reseed from wall_time_ on the next run.
    }
  }
}

// PAPD_HOT
WorkSlice Process::RunOne(Seconds dt, Mhz freq_mhz) {
  WorkSlice slice;
  slice.activity = profile_.activity;
  slice.avx_fraction = profile_.avx_fraction;
  if (finished_ && run_to_completion_) {
    wall_time_ += dt;
    slice.busy_fraction = 0.0;
    slice.activity = 0.0;
    slice.avx_fraction = 0.0;
    return slice;
  }

  // Phase modulation: CPI swings sinusoidally around its mean, so IPS (and
  // thus measured "performance") drifts even at fixed frequency.
  double phase_mult = 1.0;
  if (profile_.phase_amplitude > 0.0 && profile_.phase_period_s > Seconds{0.0}) {
    if (dt != phase_dt_) {
      // (Re)seed the oscillator at the current wall time; dt is the fixed
      // simulator tick in practice so this runs once per process.
      phase_dt_ = dt;
      // Angular frequency in rad/s; Ips doubles as the generic 1/s rate, and
      // rate * Seconds below yields the dimensionless phase angle.
      const Ips w = 2.0 * M_PI / profile_.phase_period_s;
      rot_sin_ = std::sin(w * dt);
      rot_cos_ = std::cos(w * dt);
      phase_sin_ = std::sin(w * wall_time_);
      phase_cos_ = std::cos(w * wall_time_);
    }
    phase_mult += profile_.phase_amplitude * phase_sin_;
    const double s = phase_sin_ * rot_cos_ + phase_cos_ * rot_sin_;
    const double c = phase_cos_ * rot_cos_ - phase_sin_ * rot_sin_;
    phase_sin_ = s;
    phase_cos_ = c;
  }
  double jitter_mult = 1.0;
  if (profile_.jitter > 0.0) {
    jitter_mult = std::max(0.5, rng_.Normal(1.0, profile_.jitter));
  }

  if (freq_mhz != ips_cache_mhz_) {
    ips_cache_mhz_ = freq_mhz;
    ips_cache_ips_ = profile_.NominalIps(freq_mhz);
  }
  const Ips ips{ips_cache_ips_ / phase_mult * jitter_mult};
  double instr = ips * dt;
  double busy = 1.0;
  Seconds used{dt};

  if (run_to_completion_) {
    const double remaining = profile_.total_ginstr * 1e9 - instructions_retired_;
    if (instr >= remaining) {
      // Finishes within this slice.
      used = remaining / ips;
      instr = remaining;
      busy = used / dt;
      finished_ = true;
      completion_time_ = wall_time_ + used;
    }
  }

  instructions_retired_ += instr;
  cpu_time_ += used;
  wall_time_ += dt;

  slice.instructions = instr;
  slice.busy_fraction = busy;
  return slice;
}

}  // namespace papd
