// Analytic workload profiles and the Process execution model.
//
// Each profile is a compact frequency-response model of one benchmark:
//
//   IPS(f) = 1 / (cpi / (f_mhz * 1e6) + mem_ns_per_instr * 1e-9)
//
// The first term is core time (scales with frequency), the second is
// memory-stall time (does not).  Compute-bound codes (leela, exchange2)
// have mem_ns ~ 0 and scale linearly with frequency; memory-bound codes
// (omnetpp, lbm) saturate — exactly the spread the paper's Figures 2-3 show
// across SPEC CPU2017.
//
// `activity` is the dynamic-power activity factor relative to the reference
// integer workload (gcc = 1.0): the "high demand" (HD) vs "low demand" (LD)
// axis of the paper's policy analysis.  `avx_fraction` marks the AVX-heavy
// outliers (lbm, imagick, cam4) that draw extra power and are frequency
// capped.
//
// Phases: real benchmarks drift between program phases, which is what makes
// performance shares noisier than frequency shares (paper Section 6.2).  A
// profile modulates its CPI sinusoidally with amplitude `phase_amplitude`
// and period `phase_period_s`, plus seeded per-slice jitter.

#ifndef SRC_SPECSIM_WORKLOAD_H_
#define SRC_SPECSIM_WORKLOAD_H_

#include <string>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/specsim/core_work.h"

namespace papd {

struct WorkloadProfile {
  std::string name;
  // Cycles per instruction of the core-bound part.
  double cpi = 1.0;
  // Frequency-independent stall time per instruction (memory/IO).
  double mem_ns_per_instr = 0.0;
  // Dynamic-power activity factor (gcc = 1.0).
  double activity = 1.0;
  // Fraction of AVX instructions (>= kAvxThreshold => AVX-capped).
  double avx_fraction = 0.0;
  // Phase behaviour.
  double phase_amplitude = 0.0;  // Fractional CPI modulation (0..~0.2).
  Seconds phase_period_s{30.0};
  double jitter = 0.0;  // Per-slice multiplicative IPS noise (stddev).
  // Total instruction count of one complete run (in billions), used when a
  // benchmark is run to completion (DVFS sweep experiments).
  double total_ginstr = 1000.0;

  // Instructions per second at the given frequency, without phase effects.
  Ips NominalIps(Mhz freq_mhz) const;

  // True if subject to AVX frequency caps.
  bool UsesAvx() const;

  static constexpr double kAvxThreshold = 0.25;
};

// A running instance of a profile pinned to one core.  Loops forever by
// default (co-location experiments measure steady-state rates); in
// run-to-completion mode it goes idle after retiring total_ginstr * 1e9
// instructions.
class Process : public CoreWork {
 public:
  // `seed` makes phase jitter deterministic per process.
  Process(WorkloadProfile profile, uint64_t seed);

  // When enabled the process stops (busy 0) after one complete run.
  void set_run_to_completion(bool v) { run_to_completion_ = v; }

  WorkSlice Run(Seconds dt, Mhz freq_mhz) override;
  void RunBatch(Seconds dt, const Mhz* freqs_mhz, WorkSlice* out_slices,
                int n) override;
  // Multi-rate support: the hold horizon is bounded by phase drift (the
  // replayed slice's phase multiplier must stay within
  // kPhaseSteadyTolerance of the true oscillator) and, in run-to-completion
  // mode, by half the remaining instructions.  Jitter is zero-mean noise and
  // does not bound the horizon (the multi-rate contract is statistical).
  int SteadyTicks(Seconds dt) const override;
  // O(1) catch-up: one memoized k-step phase rotation plus closed-form
  // accounting from the replayed slice; no RNG draws for held ticks.
  void RunSteadyBatch(Seconds dt, int k, Mhz freq_mhz,
                      WorkSlice* last_slice) override;
  bool UsesAvx() const override { return profile_.UsesAvx(); }
  std::string Name() const override { return profile_.name; }

  // Maximum tolerated drift of the phase multiplier while a slice is held.
  static constexpr double kPhaseSteadyTolerance = 0.002;

  const WorkloadProfile& profile() const { return profile_; }
  double instructions_retired() const { return instructions_retired_; }
  Seconds cpu_time() const { return cpu_time_; }
  bool finished() const { return finished_; }
  // Wall-clock seconds at which the first complete run finished (valid when
  // finished() is true and run_to_completion was set).
  Seconds completion_time() const { return completion_time_; }

 private:
  // Shared body of Run / RunBatch; non-virtual so RunBatch inlines it.
  WorkSlice RunOne(Seconds dt, Mhz freq_mhz);

  WorkloadProfile profile_;
  Rng rng_;
  // NominalIps memo: frequency only changes when a policy daemon acts
  // (every ~1000 ticks), so cache the last translation.
  Mhz ips_cache_mhz_{-1.0};
  Ips ips_cache_ips_{0.0};
  // Phase oscillator: sin(w * wall_time_) advanced by a fixed per-tick
  // rotation instead of a libm call per tick.  Multiplicative drift is
  // ~1 ulp per step, i.e. ~1e-11 relative over a 140 s run.
  Seconds phase_dt_{-1.0};
  double phase_sin_ = 0.0;
  double phase_cos_ = 1.0;
  double rot_sin_ = 0.0;
  double rot_cos_ = 1.0;
  // Memoized k-step rotation for RunSteadyBatch (one sin/cos pair per
  // distinct hold length).
  int steady_rot_k_ = -1;
  double steady_rot_sin_ = 0.0;
  double steady_rot_cos_ = 1.0;
  bool run_to_completion_ = false;
  bool finished_ = false;
  double instructions_retired_ = 0.0;
  Seconds cpu_time_{0.0};   // Total busy time.
  Seconds wall_time_{0.0};  // Total time including idle-after-finish.
  Seconds completion_time_{0.0};
};

}  // namespace papd

#endif  // SRC_SPECSIM_WORKLOAD_H_
