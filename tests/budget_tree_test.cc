// Budget-tree tests.
//
// The load-bearing invariant: at EVERY tree level, on EVERY period of EVERY
// run — including under cluster faults — the sum of a node's children's
// grants never exceeds the node's own grant, and the root never exceeds the
// cluster budget (whenever the budget covers the root floor).  Also covers
// the fault ladder (telemetry hold/decay, breaker revocation + recovery),
// bit-identical parallel/serial execution, derived bound bubbling, and the
// per-level kClusterGrant trace stream.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "src/cluster/budget_tree.h"
#include "src/common/thread_pool.h"
#include "src/experiments/scenarios.h"
#include "src/obs/trace.h"
#include "src/platform/platform_spec.h"
#include "src/specsim/workload.h"

namespace papd {
namespace {

RackSocketConfig MakeSocket(int rotate, uint64_t seed) {
  RackSocketConfig cfg{.platform = SkylakeXeon4114()};
  cfg.apps = ManyCoreSpreadMix(cfg.platform.num_cores, rotate).apps;
  cfg.policy = PolicyKind::kFrequencyShares;
  cfg.seed = seed;
  cfg.use_baseline_ips = false;
  return cfg;
}

// 2 rows x 2 racks x 2 sockets = 8 leaves, 15 nodes, 4 levels.
BudgetTreeConfig MakeCluster(Watts budget_w) {
  BudgetTreeConfig cfg =
      MakeUniformCluster(/*rows=*/2, /*racks_per_row=*/2, /*sockets_per_rack=*/2,
                         MakeSocket(/*rotate=*/0, /*seed=*/42), budget_w);
  return cfg;
}

// Asserts the cap invariant at every node of the tree's current state.
void ExpectCapInvariant(const BudgetTree& tree, Watts budget_w, const char* context) {
  if (budget_w >= tree.floor_w(0)) {
    EXPECT_LE(tree.grant_w(0), budget_w + Watts{1e-9}) << context;
  }
  for (int n = 0; n < tree.num_nodes(); n++) {
    EXPECT_GE(tree.grant_w(n), tree.floor_w(n) - Watts{1e-9}) << context << " node " << n;
    if (!tree.is_leaf(n)) {
      EXPECT_LE(tree.grant_sum_w(n), tree.grant_w(n) + Watts{1e-9})
          << context << " node " << tree.node_path(n);
    }
  }
  EXPECT_LE(tree.max_grant_overrun_w(), Watts{1e-9}) << context;
}

TEST(BudgetTree, TopologyAndFindNode) {
  BudgetTree tree(MakeCluster(Watts{400.0}));
  EXPECT_EQ(tree.num_nodes(), 15);
  EXPECT_EQ(tree.num_leaves(), 8);
  EXPECT_EQ(tree.num_levels(), 4);
  const int leaf = tree.FindNode("dc/row1/rack0/socket1");
  ASSERT_GE(leaf, 0);
  EXPECT_TRUE(tree.is_leaf(leaf));
  EXPECT_EQ(tree.level(leaf), 3);
  const int rack = tree.parent(leaf);
  EXPECT_EQ(tree.node_path(rack), "dc/row1/rack0");
  EXPECT_EQ(tree.level(rack), 2);
  EXPECT_EQ(tree.parent(tree.parent(rack)), 0);  // row1 -> dc.
  EXPECT_EQ(tree.FindNode("dc"), 0);
  EXPECT_EQ(tree.FindNode("dc/row9"), -1);
  // Pre-order flattening: every child index follows its parent's.
  for (int n = 1; n < tree.num_nodes(); n++) {
    EXPECT_LT(tree.parent(n), n);
  }
}

TEST(BudgetTree, CapInvariantAtEveryLevelEveryPeriod) {
  for (const RackArbiterKind kind : {RackArbiterKind::kShares, RackArbiterKind::kDemand}) {
    BudgetTreeConfig cfg = MakeCluster(Watts{320.0});
    cfg.arbiter = kind;
    BudgetTree tree(cfg);
    ASSERT_GE(cfg.budget_w, tree.floor_w(0));
    // Initial split (before any period) already obeys the invariant.
    ExpectCapInvariant(tree, cfg.budget_w, "initial");
    for (int period = 0; period < 10; period++) {
      tree.Step();
      ExpectCapInvariant(tree, cfg.budget_w,
                         kind == RackArbiterKind::kShares ? "shares" : "demand");
    }
    EXPECT_EQ(tree.history().size(), 10u);
    EXPECT_EQ(tree.periods(), 10);
  }
}

TEST(BudgetTree, CapInvariantHoldsUnderFaults) {
  BudgetTreeConfig cfg = MakeCluster(Watts{320.0});
  cfg.arbiter = RackArbiterKind::kDemand;
  cfg.faults = {
      {ClusterFaultKind::kTelemetryStale, "dc/row0/rack0", /*start_period=*/1, /*periods=*/6},
      {ClusterFaultKind::kBreakerTrip, "dc/row1", /*start_period=*/3, /*periods=*/3},
      {ClusterFaultKind::kTelemetryStale, "dc/row1/rack1/socket0", /*start_period=*/4,
       /*periods=*/2},
  };
  BudgetTree tree(cfg);
  for (int period = 0; period < 12; period++) {
    tree.Step();
    ExpectCapInvariant(tree, cfg.budget_w, "faulted");
  }
}

TEST(BudgetTree, BreakerTripRevokesToFloorThenRecovers) {
  BudgetTreeConfig cfg = MakeCluster(Watts{400.0});
  cfg.faults = {{ClusterFaultKind::kBreakerTrip, "dc/row0", /*start_period=*/2, /*periods=*/3}};
  BudgetTree tree(cfg);
  const int row = tree.FindNode("dc/row0");
  ASSERT_GE(row, 0);

  tree.Step();  // Period 0: no fault; a 400 W budget leaves headroom.
  EXPECT_FALSE(tree.breaker_tripped(row));
  EXPECT_GT(tree.grant_w(row), tree.floor_w(row) + Watts{5.0});

  tree.Step();  // Period 1.
  tree.Step();  // Period 2: breaker trips; grant slashed to the floor.
  EXPECT_TRUE(tree.breaker_tripped(row));
  EXPECT_NEAR(tree.grant_w(row).value(), tree.floor_w(row).value(), 1e-6);
  // The subtree stays internally consistent at the reduced cap.
  EXPECT_LE(tree.grant_sum_w(row), tree.grant_w(row) + Watts{1e-9});

  tree.Step();  // Period 3: still tripped.
  EXPECT_TRUE(tree.breaker_tripped(row));
  tree.Step();  // Period 4: last tripped period.
  tree.Step();  // Period 5: recovered; headroom returns.
  EXPECT_FALSE(tree.breaker_tripped(row));
  EXPECT_GT(tree.grant_w(row), tree.floor_w(row) + Watts{5.0});
}

TEST(BudgetTree, StaleTelemetryHoldsThenDecaysThenRecovers) {
  BudgetTreeConfig cfg = MakeCluster(Watts{320.0});
  cfg.stale_hold_periods = 2;
  cfg.stale_decay = 0.5;
  const int kStart = 3;
  cfg.faults = {
      {ClusterFaultKind::kTelemetryStale, "dc/row0/rack0", kStart, /*periods=*/6}};
  BudgetTree tree(cfg);
  const int rack = tree.FindNode("dc/row0/rack0");
  ASSERT_GE(rack, 0);

  for (int period = 0; period < kStart; period++) {
    tree.Step();
    EXPECT_EQ(tree.stale_streak(rack), 0);
    EXPECT_DOUBLE_EQ(tree.reported_w(rack).value(), tree.measured_w(rack).value());
  }
  // Last-good value frozen at the stale onset.
  const Watts last_good = tree.reported_w(rack);

  // Hold rungs: the arbiter trusts the frozen measurement.
  tree.Step();
  EXPECT_EQ(tree.stale_streak(rack), 1);
  EXPECT_DOUBLE_EQ(tree.reported_w(rack).value(), last_good.value());
  // Staleness covers the whole subtree, not just the faulted node.
  for (int child : tree.children(rack)) {
    EXPECT_EQ(tree.stale_streak(child), 1);
  }
  tree.Step();
  EXPECT_EQ(tree.stale_streak(rack), 2);
  EXPECT_DOUBLE_EQ(tree.reported_w(rack).value(), last_good.value());

  // Decay rungs: geometric slide toward the floor.
  tree.Step();
  EXPECT_EQ(tree.stale_streak(rack), 3);
  EXPECT_DOUBLE_EQ(tree.reported_w(rack).value(),
                   std::max(tree.floor_w(rack), last_good * 0.5).value());
  tree.Step();
  EXPECT_DOUBLE_EQ(tree.reported_w(rack).value(),
                   std::max(tree.floor_w(rack), last_good * 0.25).value());

  // Fault window ends after period kStart+5; fresh telemetry resumes.
  tree.Step();  // Streak 5.
  tree.Step();  // Streak 6 (last stale period).
  tree.Step();
  EXPECT_EQ(tree.stale_streak(rack), 0);
  EXPECT_DOUBLE_EQ(tree.reported_w(rack).value(), tree.measured_w(rack).value());
}

// FNV-1a over the full per-period state; any bitwise divergence between the
// serial and pooled runs changes the hash.
uint64_t HistoryChecksum(const BudgetTree& tree) {
  uint64_t hash = 1469598103934665603ULL;
  const auto mix = [&hash](Watts w) {
    uint64_t bits = 0;
    const double v = w.value();
    std::memcpy(&bits, &v, sizeof(bits));
    for (int b = 0; b < 8; b++) {
      hash ^= (bits >> (8 * b)) & 0xffu;
      hash *= 1099511628211ULL;
    }
  };
  for (const BudgetTree::PeriodRecord& rec : tree.history()) {
    mix(Watts{rec.end_s.value()});
    for (Watts w : rec.grants_w) mix(w);
    for (Watts w : rec.measured_w) mix(w);
    for (Watts w : rec.reported_w) mix(w);
  }
  return hash;
}

TEST(BudgetTree, ParallelStepIsBitIdenticalToSerial) {
  BudgetTreeConfig cfg = MakeCluster(Watts{320.0});
  cfg.arbiter = RackArbiterKind::kDemand;
  BudgetTree serial(cfg);
  BudgetTreeConfig pcfg = MakeCluster(Watts{320.0});
  pcfg.arbiter = RackArbiterKind::kDemand;
  BudgetTree pooled(pcfg);
  ThreadPool pool(3);
  for (int period = 0; period < 6; period++) {
    serial.Step(nullptr);
    pooled.Step(&pool);
  }
  EXPECT_EQ(HistoryChecksum(serial), HistoryChecksum(pooled));
  for (int n = 0; n < serial.num_nodes(); n++) {
    EXPECT_DOUBLE_EQ(serial.grant_w(n).value(), pooled.grant_w(n).value());
    EXPECT_DOUBLE_EQ(serial.measured_w(n).value(), pooled.measured_w(n).value());
  }
}

TEST(BudgetTree, SingleLeafDegenerateTree) {
  BudgetTreeConfig cfg;
  cfg.root.name = "solo";
  cfg.root.socket = MakeSocket(/*rotate=*/0, /*seed=*/7);
  cfg.budget_w = Watts{100.0};
  BudgetTree tree(cfg);
  EXPECT_EQ(tree.num_nodes(), 1);
  EXPECT_EQ(tree.num_leaves(), 1);
  EXPECT_EQ(tree.num_levels(), 1);
  for (int period = 0; period < 3; period++) {
    tree.Step();
    // Childless root: grant = budget clamped into [floor, ceiling].
    EXPECT_GE(tree.grant_w(0), tree.floor_w(0) - Watts{1e-9});
    EXPECT_LE(tree.grant_w(0), tree.ceiling_w(0) + Watts{1e-9});
    EXPECT_GT(tree.measured_w(0), Watts{0.0});
  }
}

// A pure chain — every interior node has exactly one child — is the
// degenerate split: each arbitration hands the whole (clamped) grant down,
// so grants are equal along the chain and the cap invariant is tight.
TEST(BudgetTree, OneChildInteriorChain) {
  BudgetTreeConfig cfg;
  cfg.root.name = "dc";
  cfg.root.children.emplace_back();
  cfg.root.children[0].name = "row0";
  cfg.root.children[0].children.emplace_back();
  cfg.root.children[0].children[0].name = "rack0";
  cfg.root.children[0].children[0].children.emplace_back();
  BudgetNodeConfig& leaf = cfg.root.children[0].children[0].children[0];
  leaf.name = "socket0";
  leaf.socket = MakeSocket(/*rotate=*/0, /*seed=*/11);
  cfg.budget_w = Watts{120.0};
  BudgetTree tree(cfg);
  EXPECT_EQ(tree.num_nodes(), 4);
  EXPECT_EQ(tree.num_leaves(), 1);
  EXPECT_EQ(tree.num_levels(), 4);
  // Bounds bubble unchanged through single-child interiors.
  for (int n = 0; n + 1 < tree.num_nodes(); n++) {
    EXPECT_DOUBLE_EQ(tree.floor_w(n).value(), tree.floor_w(n + 1).value());
    EXPECT_DOUBLE_EQ(tree.ceiling_w(n).value(), tree.ceiling_w(n + 1).value());
  }
  for (int period = 0; period < 4; period++) {
    tree.Step();
    ExpectCapInvariant(tree, cfg.budget_w, "chain");
    for (int n = 0; n + 1 < tree.num_nodes(); n++) {
      EXPECT_DOUBLE_EQ(tree.grant_w(n).value(), tree.grant_w(n + 1).value())
          << "grant changed between " << tree.node_path(n) << " and its only child";
    }
    EXPECT_DOUBLE_EQ(tree.measured_w(0).value(), tree.measured_w(3).value());
  }
}

// Every socket its own rack: interior fan-out of one at the rack level,
// with the row doing the real 8-way split.
TEST(BudgetTree, EverySocketItsOwnRack) {
  for (const RackArbiterKind kind : {RackArbiterKind::kShares, RackArbiterKind::kDemand}) {
    BudgetTreeConfig cfg =
        MakeUniformCluster(/*rows=*/1, /*racks_per_row=*/8, /*sockets_per_rack=*/1,
                           MakeSocket(/*rotate=*/0, /*seed=*/42), Watts{320.0});
    cfg.arbiter = kind;
    BudgetTree tree(cfg);
    EXPECT_EQ(tree.num_nodes(), 18);  // dc + row0 + 8 racks + 8 sockets.
    EXPECT_EQ(tree.num_leaves(), 8);
    EXPECT_EQ(tree.num_levels(), 4);
    for (int period = 0; period < 5; period++) {
      tree.Step();
      ExpectCapInvariant(tree, cfg.budget_w,
                         kind == RackArbiterKind::kShares ? "1-socket racks shares"
                                                          : "1-socket racks demand");
      // Each single-socket rack passes its grant straight through.
      for (int n = 0; n < tree.num_nodes(); n++) {
        if (tree.is_leaf(n)) {
          EXPECT_DOUBLE_EQ(tree.grant_w(tree.parent(n)).value(), tree.grant_w(n).value())
              << tree.node_path(n);
        }
      }
    }
  }
}

TEST(BudgetTree, DerivedBoundsBubbleUp) {
  BudgetTreeConfig cfg = MakeCluster(Watts{400.0});
  BudgetTree tree(cfg);
  // Every interior node's derived bounds are its children's sums.
  for (int n = 0; n < tree.num_nodes(); n++) {
    if (tree.is_leaf(n)) continue;
    Watts floor_sum{0.0};
    Watts ceiling_sum{0.0};
    for (int c : tree.children(n)) {
      floor_sum += tree.floor_w(c);
      ceiling_sum += tree.ceiling_w(c);
    }
    EXPECT_DOUBLE_EQ(tree.floor_w(n).value(), floor_sum.value()) << tree.node_path(n);
    EXPECT_DOUBLE_EQ(tree.ceiling_w(n).value(), ceiling_sum.value()) << tree.node_path(n);
  }
  // A configured interior floor only raises the derived one.
  BudgetTreeConfig raised = MakeCluster(Watts{400.0});
  const Watts derived_row_floor = tree.floor_w(tree.FindNode("dc/row0"));
  raised.root.children[0].min_budget_w = derived_row_floor + Watts{10.0};
  BudgetTree raised_tree(raised);
  EXPECT_DOUBLE_EQ(raised_tree.floor_w(raised_tree.FindNode("dc/row0")).value(),
                   (derived_row_floor + Watts{10.0}).value());
}

TEST(BudgetTreeDeathTest, InvertedInteriorBoundsAbort) {
  BudgetTreeConfig cfg = MakeCluster(Watts{400.0});
  // Rack ceiling below the sum of its sockets' floors: infeasible.
  cfg.root.children[0].children[0].max_budget_w = Watts{1.0};
  EXPECT_DEATH({ BudgetTree tree(cfg); }, "bounds inverted");
}

TEST(BudgetTreeDeathTest, LeafWithoutSocketAborts) {
  BudgetTreeConfig cfg;
  cfg.root.name = "dc";
  cfg.root.children.emplace_back();
  cfg.root.children[0].name = "empty-rack";
  EXPECT_DEATH({ BudgetTree tree(cfg); }, "no socket config");
}

TEST(BudgetTreeDeathTest, FaultOnUnknownNodeAborts) {
  BudgetTreeConfig cfg = MakeCluster(Watts{400.0});
  cfg.faults = {{ClusterFaultKind::kBreakerTrip, "dc/row7", 0, 1}};
  EXPECT_DEATH({ BudgetTree tree(cfg); }, "unknown node");
}

TEST(BudgetTree, LeafGrantsLandOnDaemons) {
  BudgetTreeConfig cfg = MakeCluster(Watts{320.0});
  BudgetTree tree(cfg);
  tree.Step();
  for (int n = 0; n < tree.num_nodes(); n++) {
    if (!tree.is_leaf(n)) continue;
    EXPECT_DOUBLE_EQ(tree.daemon(n).config().power_limit_w.value(), tree.grant_w(n).value())
        << tree.node_path(n);
  }
}

TEST(BudgetTree, ClusterGrantTraceCoversEveryLevel) {
  obs::TraceRecorder recorder;
  BudgetTreeConfig cfg = MakeCluster(Watts{320.0});
  cfg.obs = &recorder;
  BudgetTree tree(cfg);
  const int kPeriods = 3;
  for (int period = 0; period < kPeriods; period++) {
    tree.Step();
  }
  std::set<int> levels_seen;
  int cluster_grants = 0;
  for (const obs::TraceEvent& e : recorder.Drain()) {
    if (e.type != obs::TraceEventType::kClusterGrant) continue;
    cluster_grants++;
    levels_seen.insert(e.code);
    EXPECT_EQ(e.shard, static_cast<int16_t>(e.index));  // One track per node.
    EXPECT_EQ(e.code, tree.level(e.index));
    EXPECT_GT(e.a, 0.0);  // Grant watts.
  }
  // One event per node per period, spanning every tree level.
  EXPECT_EQ(cluster_grants, tree.num_nodes() * kPeriods);
  EXPECT_EQ(static_cast<int>(levels_seen.size()), tree.num_levels());
}

TEST(BudgetTree, RunBudgetTreeReportsWindow) {
  BudgetTreeConfig cfg = MakeCluster(Watts{320.0});
  cfg.arbiter = RackArbiterKind::kDemand;
  BudgetTreeResult result =
      RunBudgetTree(cfg, /*warmup_s=*/Seconds{2.0}, /*measure_s=*/Seconds{3.0});
  EXPECT_GT(result.avg_root_w, Watts{0.0});
  EXPECT_LE(result.max_grant_overrun_w, Watts{1e-9});
  EXPECT_NEAR(result.measured_s.value(), 3.0, 0.1);
  EXPECT_GE(result.avg_arbiter_wall_s, Seconds{0.0});
}

}  // namespace
}  // namespace papd
