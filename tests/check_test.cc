// Tests for the PAPD_CHECK / PAPD_DCHECK macro family.

#include "src/common/check.h"

#include <gtest/gtest.h>

namespace papd {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  PAPD_CHECK(1 + 1 == 2);
  PAPD_CHECK(true) << "never evaluated";
  PAPD_CHECK_EQ(4, 4);
  PAPD_CHECK_NE(4, 5);
  PAPD_CHECK_LT(1, 2);
  PAPD_CHECK_LE(2, 2);
  PAPD_CHECK_GT(2, 1);
  PAPD_CHECK_GE(2, 2);
  PAPD_CHECK_NEAR(1.0, 1.0 + 1e-9, 1e-6);
  PAPD_DCHECK(true);
  PAPD_DCHECK_EQ(7, 7);
  PAPD_DCHECK_NEAR(2.0, 2.0, 0.0);
  SUCCEED();
}

TEST(CheckTest, ChecksAreUsableInBranches) {
  // The voidify/ternary expansion must parse as a single statement.
  if (true)
    PAPD_CHECK(true);
  else
    PAPD_CHECK(true);
  for (int i = 0; i < 2; i++) PAPD_CHECK_GE(i, 0);
  SUCCEED();
}

TEST(CheckDeathTest, FailedCheckPrintsConditionAndContext) {
  EXPECT_DEATH(PAPD_CHECK(2 + 2 == 5) << "arithmetic drift " << 42,
               "CHECK failed at .*check_test.*: 2 \\+ 2 == 5.*arithmetic drift.*42");
}

TEST(CheckDeathTest, FailedCheckOpPrintsOperands) {
  const int lhs = 1;
  const int rhs = 2;
  EXPECT_DEATH(PAPD_CHECK_EQ(lhs, rhs), "lhs == rhs.*1 vs\\. 2");
}

TEST(CheckDeathTest, FailedCheckNearPrintsOperands) {
  EXPECT_DEATH(PAPD_CHECK_NEAR(1.0, 2.0, 0.5), "1 vs\\. 2");
}

#ifndef NDEBUG
TEST(CheckDeathTest, DcheckActiveInDebugBuilds) {
  EXPECT_DEATH(PAPD_DCHECK_LT(3, 2), "3 vs\\. 2");
}
#else
TEST(CheckTest, DcheckCompiledOutUnderNdebug) {
  // Operands must not be evaluated in the dead-code form.
  int evaluations = 0;
  auto count = [&evaluations]() { return ++evaluations; };
  PAPD_DCHECK_GT(count(), 100);
  EXPECT_EQ(evaluations, 0);
}
#endif

}  // namespace
}  // namespace papd
