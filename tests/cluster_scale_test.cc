// Cluster-scale fast-path tests: socket-level steady-state hold, replica
// memoization, and the closed-form AdvanceSteady machinery they ride on.
//
// Correctness contracts, mirroring the multi-rate test suite one level up:
//
//   1. Exactness where promised: a memoized tree's full per-period history
//      (grants, measured, reported, at every node) is BITWISE identical to
//      the same tree simulating every leaf — including through a breaker
//      fault that forces replica materialization mid-run — and a package
//      advanced through AdvanceSteady segments reproduces the equivalent
//      multi-rate Tick loop's energy and clock to the bit.
//
//   2. Resync coverage: each event kind that invalidates a socket hold
//      (grant change, fault-plan arming, work attachment) forces a live
//      daemon step on the very next period.  A twin held replica that sees
//      no event is the counterfactual: it keeps skipping, so a hold that
//      happened to lapse on its own can't produce a false pass.
//
//   3. Statistical equivalence where the hold is approximate: a held socket
//      lands within the multi-rate tolerances (1.5% package energy, 2%
//      per-core instructions) of the same socket stepping its daemon live.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "src/cluster/budget_tree.h"
#include "src/cluster/socket_stack.h"
#include "src/experiments/scenarios.h"
#include "src/msr/fault_plan.h"
#include "src/platform/platform_spec.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/workload.h"

namespace papd {
namespace {

constexpr Seconds kPeriod{1.0};
constexpr Seconds kTick{0.001};

RackSocketConfig MakeSocket(uint64_t seed) {
  RackSocketConfig cfg{.platform = SkylakeXeon4114()};
  cfg.apps = ManyCoreSpreadMix(cfg.platform.num_cores, /*rotate=*/0).apps;
  cfg.policy = PolicyKind::kFrequencyShares;
  cfg.seed = seed;
  cfg.use_baseline_ips = false;
  return cfg;
}

// The hold tests need a socket whose daemon actually quiesces: on the
// many-core EPYC the share targets converge within ~6 periods at a 180 W
// grant and stay put (the 100k-core bench's leaf config).  The small
// Skylake mix keeps hunting across its coarser P-state grid and never
// clears the quiet streak, which is correct hold behavior but useless for
// exercising the held path.
RackSocketConfig MakeHoldSocket() {
  RackSocketConfig cfg{.platform = ManyCoreEpyc128()};
  cfg.apps = ManyCoreSpreadMix(cfg.platform.num_cores, /*rotate=*/0).apps;
  cfg.policy = PolicyKind::kFrequencyShares;
  cfg.seed = 42;
  cfg.use_baseline_ips = false;
  return cfg;
}

constexpr Watts kHoldGrantW{180.0};

// A truly homogeneous 2x2x2 fleet: every leaf bit-identical, so replica
// memoization collapses it to one equivalence class.
BudgetTreeConfig MakeHomogeneousCluster(Watts budget_w, const TickOptions& tick) {
  BudgetTreeConfig cfg =
      MakeUniformCluster(/*rows=*/2, /*racks_per_row=*/2, /*sockets_per_rack=*/2,
                         MakeSocket(/*seed=*/42), budget_w,
                         /*decorrelate_seeds=*/false);
  cfg.tick = tick;
  return cfg;
}

// FNV-1a over the full per-period state (same digest budget_tree_test.cc
// uses for serial-vs-pooled): any bitwise divergence between the memoized
// and fully simulated runs changes the hash.
uint64_t HistoryChecksum(const BudgetTree& tree) {
  uint64_t hash = 1469598103934665603ULL;
  const auto mix = [&hash](Watts w) {
    uint64_t bits = 0;
    const double v = w.value();
    std::memcpy(&bits, &v, sizeof(bits));
    for (int b = 0; b < 8; b++) {
      hash ^= (bits >> (8 * b)) & 0xffu;
      hash *= 1099511628211ULL;
    }
  };
  for (const BudgetTree::PeriodRecord& rec : tree.history()) {
    mix(Watts{rec.end_s.value()});
    for (Watts w : rec.grants_w) mix(w);
    for (Watts w : rec.measured_w) mix(w);
    for (Watts w : rec.reported_w) mix(w);
  }
  return hash;
}

void ExpectCapInvariant(const BudgetTree& tree, Watts budget_w, const char* context) {
  if (budget_w >= tree.floor_w(0)) {
    EXPECT_LE(tree.grant_w(0), budget_w + Watts{1e-9}) << context;
  }
  for (int n = 0; n < tree.num_nodes(); n++) {
    if (!tree.is_leaf(n)) {
      EXPECT_LE(tree.grant_sum_w(n), tree.grant_w(n) + Watts{1e-9})
          << context << " node " << tree.node_path(n);
    }
  }
  EXPECT_LE(tree.max_grant_overrun_w(), Watts{1e-9}) << context;
}

// --- Replica memoization: bitwise golden ------------------------------------

// Runs the homogeneous cluster twice — once with memoization, once
// simulating every leaf — and compares the full history digests.
void ExpectMemoizationBitIdentical(const TickOptions& base_tick, const char* context) {
  const Watts kBudget{320.0};
  TickOptions memo_tick = base_tick;
  memo_tick.memoize_replicas = true;
  BudgetTree memo(MakeHomogeneousCluster(kBudget, memo_tick));
  BudgetTree full(MakeHomogeneousCluster(kBudget, base_tick));

  // The homogeneous fleet collapses to a single class of 8 replicas.
  EXPECT_EQ(memo.num_replica_classes(), 1) << context;
  EXPECT_EQ(memo.num_live_leaves(), 1) << context;
  EXPECT_EQ(full.num_replica_classes(), 0) << context;

  for (int period = 0; period < 8; period++) {
    memo.Step();
    full.Step();
    ExpectCapInvariant(memo, kBudget, context);
  }
  EXPECT_EQ(HistoryChecksum(memo), HistoryChecksum(full))
      << context << ": memoized history diverged from full simulation";
  EXPECT_GT(memo.replica_hit_rate(), 0.8) << context;
  EXPECT_DOUBLE_EQ(full.replica_hit_rate(), 0.0) << context;
}

TEST(ReplicaMemoization, BitIdenticalToFullSimulation) {
  ExpectMemoizationBitIdentical(TickOptions{}, "every-tick");
}

TEST(ReplicaMemoization, BitIdenticalUnderMultiRateSocketHold) {
  TickOptions tick;
  tick.policy = TickPolicy::kMultiRate;
  tick.socket_hold = true;
  ExpectMemoizationBitIdentical(tick, "multi-rate + hold");
}

// A breaker trip on one rack skews grants across the class: the affected
// members' grants diverge from the representative's, forcing
// materialization (grant-log replay) mid-run.  The materialized leaves must
// continue bit-identically to the fully simulated twin.
TEST(ReplicaMemoization, BreakerFaultMaterializesDivergedReplicasExactly) {
  const Watts kBudget{320.0};
  const ClusterFault kFault{ClusterFaultKind::kBreakerTrip, "dc/row0/rack0",
                            /*start_period=*/3, /*periods=*/3};
  TickOptions memo_tick;
  memo_tick.memoize_replicas = true;
  BudgetTreeConfig memo_cfg = MakeHomogeneousCluster(kBudget, memo_tick);
  memo_cfg.faults = {kFault};
  BudgetTree memo(memo_cfg);
  BudgetTreeConfig full_cfg = MakeHomogeneousCluster(kBudget, TickOptions{});
  full_cfg.faults = {kFault};
  BudgetTree full(full_cfg);

  ASSERT_EQ(memo.num_live_leaves(), 1);
  for (int period = 0; period < 10; period++) {
    memo.Step();
    full.Step();
    ExpectCapInvariant(memo, kBudget, "faulted memo");
  }
  // The trip revoked the faulted rack's headroom, splitting the class.
  EXPECT_GT(memo.num_live_leaves(), 1) << "fault never forced materialization";
  EXPECT_LE(memo.num_live_leaves(), memo.num_leaves());
  EXPECT_GT(memo.replica_hit_rate(), 0.0);
  EXPECT_EQ(HistoryChecksum(memo), HistoryChecksum(full))
      << "materialized replicas diverged from full simulation";
}

// A leaf-internals accessor on a memoized replica materializes it on
// demand, so external mutation never touches a fanned-out ghost.
TEST(ReplicaMemoization, AccessorMaterializesOnDemand) {
  TickOptions tick;
  tick.memoize_replicas = true;
  BudgetTree tree(MakeHomogeneousCluster(Watts{320.0}, tick));
  tree.Step();
  ASSERT_EQ(tree.num_live_leaves(), 1);
  const int leaf = tree.FindNode("dc/row1/rack1/socket1");
  ASSERT_GE(leaf, 0);
  const PowerDaemon& daemon = tree.daemon(leaf);
  EXPECT_DOUBLE_EQ(daemon.config().power_limit_w.value(), tree.grant_w(leaf).value());
  EXPECT_EQ(tree.num_live_leaves(), 2);
  tree.Step();  // The materialized leaf keeps stepping independently.
  EXPECT_EQ(tree.num_live_leaves(), 2);
}

// --- AdvanceSteady: closed-form golden --------------------------------------

// An idle multi-rate package advanced through AdvanceSteady segments must
// reproduce the plain Tick loop's package energy and clock to the bit (the
// segment accumulates both per tick by contract).
TEST(AdvanceSteady, IdlePackageMatchesTickLoopBitwise) {
  Package steady(SkylakeXeon4114());
  Package ticked(SkylakeXeon4114());
  steady.SetTickPolicy(TickPolicy::kMultiRate);
  ticked.SetTickPolicy(TickPolicy::kMultiRate);

  const int kWarmup = 100;
  const int kTicks = 2000;
  for (int t = 0; t < kWarmup; t++) {
    steady.Tick(kTick);
    ticked.Tick(kTick);
  }
  for (int t = 0; t < kTicks;) {
    const int max_ticks = std::min(Package::kDefaultMaxHoldTicks, kTicks - t);
    int advanced = steady.AdvanceSteady(kTick, max_ticks);
    if (advanced == 0) {
      steady.Tick(kTick);
      advanced = 1;
    }
    t += advanced;
  }
  for (int t = 0; t < kTicks; t++) {
    ticked.Tick(kTick);
  }

  // The closed form must actually have engaged — an idle package is the
  // easiest possible hold.
  EXPECT_GT(steady.tick_stats().hold_segments, 0u);
  EXPECT_GT(steady.tick_stats().batched_ticks, 0u);

  uint64_t steady_bits = 0;
  uint64_t ticked_bits = 0;
  double v = steady.package_energy_j().value();
  std::memcpy(&steady_bits, &v, sizeof(v));
  v = ticked.package_energy_j().value();
  std::memcpy(&ticked_bits, &v, sizeof(v));
  EXPECT_EQ(steady_bits, ticked_bits) << "package energy bits diverged";
  EXPECT_DOUBLE_EQ(steady.now().value(), ticked.now().value());
}

// --- Socket hold: resync coverage -------------------------------------------

struct HeldTwin {
  explicit HeldTwin(Watts budget_w) {
    TickOptions tick;
    tick.policy = TickPolicy::kMultiRate;
    tick.socket_hold = true;
    stack = std::make_unique<SocketStack>(MakeHoldSocket(), kPeriod, kTick,
                                          budget_w, /*obs_sink=*/nullptr,
                                          /*shard=*/0, tick);
  }
  std::unique_ptr<SocketStack> stack;
};

class SocketHoldResyncTest : public ::testing::Test {
 protected:
  // Warms both twins until the daemon hold is engaged and actively
  // skipping (the daemon converges its P-state targets, then the quiet
  // streak must clear SocketStack::kQuietPeriodsToHold).
  void WarmUntilHeld() {
    for (int p = 0; p < 20; p++) {
      event_.stack->AdvancePeriod(kPeriod);
      control_.stack->AdvancePeriod(kPeriod);
    }
    ASSERT_TRUE(event_.stack->daemon_held) << "hold never engaged in warmup";
    ASSERT_TRUE(control_.stack->daemon_held);
    ASSERT_GT(event_.stack->daemon_steps_skipped, 0u);
  }

  // Applies `fire` to the event twin only, advances both one period, and
  // asserts the event twin took a live daemon step while the control twin
  // kept skipping (so a hold lapsing on its own can't fake a pass).
  template <typename Fn>
  void ExpectResyncOn(Fn fire, const char* context) {
    WarmUntilHeld();
    const uint64_t event_skipped = event_.stack->daemon_steps_skipped;
    const uint64_t event_resyncs = event_.stack->hold_resyncs;
    const uint64_t control_skipped = control_.stack->daemon_steps_skipped;
    fire(*event_.stack);
    event_.stack->AdvancePeriod(kPeriod);
    control_.stack->AdvancePeriod(kPeriod);
    EXPECT_EQ(event_.stack->daemon_steps_skipped, event_skipped)
        << context << ": event twin skipped through the event";
    EXPECT_EQ(event_.stack->hold_resyncs, event_resyncs + 1)
        << context << ": event twin never resynced";
    EXPECT_EQ(control_.stack->daemon_steps_skipped, control_skipped + 1)
        << context << ": control twin stopped skipping on its own";
  }

  HeldTwin event_{kHoldGrantW};
  HeldTwin control_{kHoldGrantW};
};

TEST_F(SocketHoldResyncTest, GrantChangeResyncs) {
  ExpectResyncOn([](SocketStack& s) { s.daemon->SetPowerLimit(Watts{170.0}); },
                 "grant change");
}

TEST_F(SocketHoldResyncTest, FaultArmingResyncs) {
  ExpectResyncOn(
      [](SocketStack& s) {
        FaultPlan plan;
        plan.write_fail_p = 1.0;
        s.msr.EnableFaults(plan);
      },
      "fault arming");
}

TEST_F(SocketHoldResyncTest, WorkAttachResyncs) {
  auto spare = std::make_unique<Process>(GetProfile("leela"), /*seed=*/99);
  ExpectResyncOn([&spare](SocketStack& s) { s.pkg.AttachWork(0, spare.get()); },
                 "work attach");
}

// --- Socket hold: statistical equivalence -----------------------------------

struct HoldRunResult {
  Joules energy{0.0};
  std::vector<double> instructions;
  uint64_t skipped = 0;
};

HoldRunResult RunLoadedSocket(bool socket_hold) {
  TickOptions tick;
  tick.policy = TickPolicy::kMultiRate;
  tick.socket_hold = socket_hold;
  SocketStack stack(MakeHoldSocket(), kPeriod, kTick, kHoldGrantW,
                    /*obs_sink=*/nullptr, /*shard=*/0, tick);
  for (int p = 0; p < 30; p++) {
    stack.AdvancePeriod(kPeriod);
  }
  stack.pkg.FlushSteadyWork();
  HoldRunResult r;
  r.energy = stack.pkg.package_energy_j();
  for (int i = 0; i < stack.pkg.num_cores(); i++) {
    r.instructions.push_back(stack.pkg.core(i).instructions_retired());
  }
  r.skipped = stack.daemon_steps_skipped;
  return r;
}

TEST(SocketHoldEquivalence, LoadedSocketWithinMultiRateTolerances) {
  const HoldRunResult ref = RunLoadedSocket(/*socket_hold=*/false);
  const HoldRunResult held = RunLoadedSocket(/*socket_hold=*/true);

  // The point of the hold: daemon steps must actually be skipped.
  EXPECT_EQ(ref.skipped, 0u);
  EXPECT_GT(held.skipped, 10u) << "hold never engaged on the loaded socket";

  ASSERT_GT(ref.energy, Joules{0.0});
  EXPECT_NEAR(held.energy.value() / ref.energy.value(), 1.0, 0.015)
      << "held package energy drifted beyond tolerance";

  ASSERT_EQ(held.instructions.size(), ref.instructions.size());
  for (size_t i = 0; i < ref.instructions.size(); i++) {
    ASSERT_GT(ref.instructions[i], 0.0);
    EXPECT_NEAR(held.instructions[i] / ref.instructions[i], 1.0, 0.02)
        << "core " << i << " instruction total drifted beyond tolerance";
  }
}

}  // namespace
}  // namespace papd
