// Unit tests for src/common: RNG, statistics, tables, JSON reader.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/units.h"

namespace papd {
namespace {

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(GhzToMhz(2.2).value(), 2200.0);
  EXPECT_DOUBLE_EQ(MhzToGhz(Mhz{800.0}), 0.8);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; i++) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) {
    if (a.NextU64() == b.NextU64()) {
      same++;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; i++) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; i++) {
    const double x = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, NextBelowBoundsAndCoverage) {
  Rng rng(11);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 10000; i++) {
    const uint64_t x = rng.NextBelow(10);
    ASSERT_LT(x, 10u);
    histogram[static_cast<size_t>(x)]++;
  }
  for (int count : histogram) {
    EXPECT_GT(count, 800);  // ~1000 expected per bucket.
    EXPECT_LT(count, 1200);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; i++) {
    const double x = rng.Exponential(2.5);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 2.5, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  Accumulator acc;
  for (int i = 0; i < 100000; i++) {
    acc.Add(rng.Normal(10.0, 3.0));
  }
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 3.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Split();
  // The two streams should not be identical.
  int same = 0;
  for (int i = 0; i < 100; i++) {
    if (a.NextU64() == child.NextU64()) {
      same++;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    acc.Add(x);
  }
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 1.25);  // Population variance.
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
}

TEST(Accumulator, EmptyIsSafe) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Rng rng(3);
  Accumulator all;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 1000; i++) {
    const double x = rng.Uniform(-5, 20);
    all.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a;
  a.Add(1.0);
  a.Add(3.0);
  Accumulator empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentile, KnownValues) {
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 90), 9.1);
}

TEST(Percentile, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 50), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 99), 7.0);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(Percentile({5, 1, 3, 2, 4}, 50), 3.0);
}

TEST(BoxStats, MatchesPercentiles) {
  std::vector<double> v;
  for (int i = 1; i <= 101; i++) {
    v.push_back(i);
  }
  const BoxStats s = Summarize(v);
  EXPECT_EQ(s.count, 101u);
  EXPECT_DOUBLE_EQ(s.median, 51.0);
  EXPECT_DOUBLE_EQ(s.q1, 26.0);
  EXPECT_DOUBLE_EQ(s.q3, 76.0);
  EXPECT_DOUBLE_EQ(s.p1, 2.0);
  EXPECT_DOUBLE_EQ(s.p99, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 51.0);
}

TEST(BoxStats, Empty) {
  const BoxStats s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
}

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.SetHeader({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(3.0, 0), "3");
}

TEST(TextTable, CsvEscaping) {
  TextTable t;
  t.SetHeader({"a", "b"});
  t.AddRow({"plain", "with,comma"});
  t.AddRow({"with\"quote", "x"});
  std::ostringstream os;
  t.WriteCsv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TextTable, ShortRowsTolerated) {
  TextTable t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"only-one"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

// --- JSON reader -------------------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json::Parse("null").value.is_null());
  EXPECT_TRUE(json::Parse("true").value.AsBool());
  EXPECT_FALSE(json::Parse("false").value.AsBool());
  EXPECT_DOUBLE_EQ(json::Parse("-12.5e2").value.AsNumber(), -1250.0);
  EXPECT_DOUBLE_EQ(json::Parse("0").value.AsNumber(), 0.0);
  EXPECT_EQ(json::Parse("\"hi\"").value.AsString(), "hi");
}

TEST(Json, ParsesNestedDocument) {
  const json::ParseResult r = json::Parse(
      R"({"a": [1, 2.5, {"b": "x"}], "c": {"d": true}, "empty": [], "eo": {}})");
  ASSERT_TRUE(r.ok) << r.error;
  const json::Value* a = r.value.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(a->AsArray()[1].AsNumber(), 2.5);
  EXPECT_EQ(a->AsArray()[2].StringOr("b", ""), "x");
  const json::Value* c = r.value.Find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->Find("d")->AsBool());
  EXPECT_TRUE(r.value.Find("empty")->AsArray().empty());
  EXPECT_TRUE(r.value.Find("eo")->AsObject().empty());
}

TEST(Json, DecodesStringEscapes) {
  const json::ParseResult r = json::Parse(R"("q\"s\\n\n tab\t u\u00e9")");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.AsString(), "q\"s\\n\n tab\t u\xc3\xa9");
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_FALSE(json::Parse("").ok);
  EXPECT_FALSE(json::Parse("{").ok);
  EXPECT_FALSE(json::Parse("[1,]").ok);
  EXPECT_FALSE(json::Parse("{\"a\" 1}").ok);
  EXPECT_FALSE(json::Parse("nan").ok);
  EXPECT_FALSE(json::Parse("+1").ok);
  EXPECT_FALSE(json::Parse("\"open").ok);
  EXPECT_FALSE(json::Parse("1 trailing").ok);
  // Errors carry a position.
  EXPECT_NE(json::Parse("{\n  \"a\": oops\n}").error.find("line 2"), std::string::npos);
}

TEST(Json, LookupHelpersDefaultOnMissingOrWrongType) {
  const json::Value doc = json::Parse(R"({"n": 4, "s": "v"})").value;
  EXPECT_DOUBLE_EQ(doc.NumberOr("n", -1.0), 4.0);
  EXPECT_DOUBLE_EQ(doc.NumberOr("missing", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(doc.NumberOr("s", -1.0), -1.0);
  EXPECT_EQ(doc.StringOr("s", "d"), "v");
  EXPECT_EQ(doc.StringOr("n", "d"), "d");
  EXPECT_EQ(doc.Find("missing"), nullptr);
  // Non-objects have no members.
  EXPECT_EQ(json::Parse("[1]").value.Find("k"), nullptr);
}

}  // namespace
}  // namespace papd
