// Positive twin for thread_requires_violation.cc: disciplined locking must
// compile cleanly under Clang -Wthread-safety -Werror=thread-safety (and
// everywhere else).  Exercises PAPD_REQUIRES, PAPD_GUARDED_BY, the scoped
// MutexLock, and a CondVar wait loop — the idioms used across the tree.

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Add(int n) PAPD_REQUIRES(mu_) { total_ += n; }

  void AddLocked(int n) {
    papd::MutexLock lock(mu_);
    Add(n);
    ready_ = true;
    cv_.NotifyAll();
  }

  int WaitForTotal() {
    papd::MutexLock lock(mu_);
    while (!ready_) {
      cv_.Wait(mu_);
    }
    return total_;
  }

  papd::Mutex mu_;

 private:
  papd::CondVar cv_;
  bool ready_ PAPD_GUARDED_BY(mu_) = false;
  int total_ PAPD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.AddLocked(2);
  return c.WaitForTotal() == 2 ? 0 : 1;
}
