// MUST NOT COMPILE under Clang -Wthread-safety -Werror=thread-safety:
// calling a PAPD_REQUIRES-annotated method, and touching a PAPD_GUARDED_BY
// member, without holding the lock.
//
// Registered as a WILL_FAIL compile test only when the configured compiler
// is Clang; GCC expands the annotations to nothing, so there this file
// (correctly) compiles and the harness skips it.

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Add(int n) PAPD_REQUIRES(mu_) { total_ += n; }
  int TotalLocked() {
    papd::MutexLock lock(mu_);
    return total_;
  }

  papd::Mutex mu_;

 private:
  int total_ PAPD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);  // -Wthread-safety: calling Add() requires holding c.mu_
  return c.TotalLocked();
}
