// MUST NOT COMPILE: adding quantities of different dimensions.
//
// The strong unit types in src/common/units.h only define operator+ for
// same-dimension operands; Watts + Mhz has no meaning and must be rejected
// at compile time.  The compile_fail ctest harness runs this file with
// -fsyntax-only and asserts the compiler errors out (WILL_FAIL).

#include "src/common/units.h"

int main() {
  papd::Watts w{45.0};
  papd::Mhz f{2200.0};
  auto nonsense = w + f;  // dimension mismatch: no such operator
  (void)nonsense;
  return 0;
}
