// MUST NOT COMPILE: implicit conversion between raw double and a unit type.
//
// Quantity's constructor is explicit and there is no implicit conversion
// back to double, so a bare numeric literal cannot silently become a Watts
// (and a Watts cannot silently feed a double API).  This is the whole point
// of the migration off the old `using Watts = double;` aliases.

#include "src/common/units.h"

double Sink(double raw) { return raw * 2.0; }

int main() {
  papd::Watts limit = 45.0;  // implicit double -> Watts: must be rejected
  double leaked = Sink(limit);  // implicit Watts -> double: must be rejected
  (void)leaked;
  return 0;
}
