// Positive twin for the units compile-fail cases: the sanctioned algebra
// must keep compiling.  If this file breaks, the negative tests prove
// nothing (a harness that cannot compile anything "fails" everything).

#include "src/common/units.h"

using papd::Ips;
using papd::Joules;
using papd::Mhz;
using papd::Seconds;
using papd::Volts;
using papd::Watts;

int main() {
  // Same-dimension arithmetic and comparisons.
  const Watts total = Watts{30.0} + Watts{15.0};
  const Watts head = total - Watts{5.0};
  const bool over = head > Watts{38.0};

  // Cross-dimension physics: energy/time, power*time, V^2, cycle counts.
  const Joules e = Watts{10.0} * Seconds{2.0};
  const Watts p = e / Seconds{2.0};
  const double v2 = Volts{1.1} * Volts{1.1};
  const double megacycles = Mhz{2200.0} * Seconds{0.5};
  const Ips rate = papd::IpsAtMhz(Mhz{3000.0}, /*ipc=*/1.5);
  const double instructions = rate * Seconds{1.0};

  // Dimensionless ratios and scalar scaling.
  const double ratio = head / total;
  const Mhz scaled = Mhz{2000.0} * 1.1;

  // Explicit escape hatch for printf/encode boundaries.
  const double raw = p.value();

  return (over && ratio > 0.0 && v2 > 0.0 && megacycles > 0.0 &&
          instructions > 0.0 && scaled > Mhz{0.0} && raw > 0.0)
             ? 0
             : 1;
}
