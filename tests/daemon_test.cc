// Unit tests for the PowerDaemon: MSR programming, Ryzen 3-P-state
// invariant, closed-loop convergence.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/msr/msr.h"
#include "src/policy/daemon.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/workload.h"

namespace papd {
namespace {

struct Rig {
  explicit Rig(PlatformSpec spec) : pkg(std::move(spec)), msr(&pkg) {}

  void AddApp(const std::string& profile, double shares, bool hp = false) {
    const int cpu = static_cast<int>(procs.size());
    procs.push_back(std::make_unique<Process>(GetProfile(profile), 100 + cpu));
    pkg.AttachWork(cpu, procs.back().get());
    apps.push_back(ManagedApp{.name = profile,
                              .cpu = cpu,
                              .shares = shares,
                              .high_priority = hp,
                              .baseline_ips = GetProfile(profile).NominalIps(Mhz{3000})});
  }

  // Runs the daemon closed-loop for `seconds`.
  void Run(PowerDaemon* daemon, Seconds seconds) {
    Simulator sim(&pkg);
    sim.AddPeriodic(daemon->config().period_s, [daemon](Seconds) { daemon->Step(); });
    sim.Run(seconds);
  }

  Package pkg;
  MsrFile msr;
  std::vector<std::unique_ptr<Process>> procs;
  std::vector<ManagedApp> apps;
};

TEST(DaemonSkylake, StartProgramsInitialDistribution) {
  Rig rig(SkylakeXeon4114());
  rig.AddApp("leela", 100);
  rig.AddApp("cactusBSSN", 50);
  PowerDaemon daemon(&rig.msr, rig.apps, {.kind = PolicyKind::kFrequencyShares,
                                          .power_limit_w = Watts{50}});
  daemon.Start();
  EXPECT_DOUBLE_EQ(rig.pkg.core(0).requested_mhz().value(), 3000.0);
  EXPECT_DOUBLE_EQ(rig.pkg.core(1).requested_mhz().value(), 1500.0);
}

TEST(DaemonSkylake, ConvergesToPowerLimit) {
  Rig rig(SkylakeXeon4114());
  for (int i = 0; i < 10; i++) {
    rig.AddApp(i % 2 ? "leela" : "cactusBSSN", 1.0);
  }
  PowerDaemon daemon(&rig.msr, rig.apps, {.kind = PolicyKind::kFrequencyShares,
                                          .power_limit_w = Watts{45}});
  daemon.Start();
  rig.Run(&daemon, Seconds{60.0});
  // Average package power over the last samples near the limit.
  Watts avg{0.0};
  int n = 0;
  for (size_t i = daemon.history().size() - 10; i < daemon.history().size(); i++) {
    avg += daemon.history()[i].sample.pkg_w;
    n++;
  }
  avg /= n;
  EXPECT_NEAR(avg.value(), 45.0, 2.0);
}

TEST(DaemonSkylake, RaplOnlyProgramsLimitRegister) {
  Rig rig(SkylakeXeon4114());
  rig.AddApp("gcc", 1.0);
  PowerDaemon daemon(&rig.msr, rig.apps, {.kind = PolicyKind::kRaplOnly, .power_limit_w = Watts{40}});
  daemon.Start();
  EXPECT_TRUE(rig.pkg.rapl().enabled());
  EXPECT_DOUBLE_EQ(rig.pkg.rapl().limit_w().value(), 40.0);
  // Cores request maximum; RAPL does the throttling.
  EXPECT_DOUBLE_EQ(rig.pkg.core(0).requested_mhz().value(), 3000.0);
}

TEST(DaemonSkylake, StaticPinsFrequencies) {
  Rig rig(SkylakeXeon4114());
  rig.AddApp("gcc", 1.0);
  rig.AddApp("gcc", 1.0);
  PowerDaemon daemon(&rig.msr, rig.apps,
                     {.kind = PolicyKind::kStatic, .static_mhz = Mhz{1300}});
  daemon.Start();
  EXPECT_DOUBLE_EQ(rig.pkg.core(0).requested_mhz().value(), 1300.0);
  EXPECT_DOUBLE_EQ(rig.pkg.core(1).requested_mhz().value(), 1300.0);
}

TEST(DaemonSkylake, PriorityStarvationOfflinesCores) {
  Rig rig(SkylakeXeon4114());
  for (int i = 0; i < 5; i++) {
    rig.AddApp("cactusBSSN", 1.0, /*hp=*/true);
  }
  for (int i = 0; i < 5; i++) {
    rig.AddApp("cactusBSSN", 1.0, /*hp=*/false);
  }
  PowerDaemon daemon(&rig.msr, rig.apps, {.kind = PolicyKind::kPriority, .power_limit_w = Watts{40}});
  daemon.Start();
  // LP cores start offline (starvation mode).
  for (int i = 5; i < 10; i++) {
    EXPECT_FALSE(rig.msr.CoreOnline(i));
  }
  rig.Run(&daemon, Seconds{30.0});
  // 5 HD HP apps cannot leave room for all LP apps at 40 W: at least some
  // LP cores remain offline.
  int offline = 0;
  for (int i = 5; i < 10; i++) {
    offline += rig.msr.CoreOnline(i) ? 0 : 1;
  }
  EXPECT_GT(offline, 0);
}

TEST(DaemonSkylake, HistoryRecordsSamplesAndTargets) {
  Rig rig(SkylakeXeon4114());
  rig.AddApp("gcc", 1.0);
  PowerDaemon daemon(&rig.msr, rig.apps, {.kind = PolicyKind::kFrequencyShares,
                                          .power_limit_w = Watts{40}});
  daemon.Start();
  rig.Run(&daemon, Seconds{5.0});
  ASSERT_EQ(daemon.history().size(), 5u);
  for (const auto& rec : daemon.history()) {
    EXPECT_GT(rec.sample.pkg_w, Watts{0.0});
    EXPECT_EQ(rec.targets.size(), 1u);
  }
}

TEST(DaemonRyzen, ThreePstateInvariantHolds) {
  Rig rig(Ryzen1700X());
  // Eight apps at eight different share levels want eight frequencies; the
  // selector must keep the hardware at <= 3 distinct values every period.
  for (int i = 0; i < 8; i++) {
    rig.AddApp(i % 2 ? "leela" : "cactusBSSN", 10.0 + 12.0 * i);
  }
  PowerDaemon daemon(&rig.msr, rig.apps, {.kind = PolicyKind::kFrequencyShares,
                                          .power_limit_w = Watts{45}});
  daemon.Start();
  EXPECT_LE(rig.pkg.DistinctRequestedFrequencies(), 3);
  Simulator sim(&rig.pkg);
  sim.AddPeriodic(Seconds{1.0}, [&daemon, &rig](Seconds) {
    daemon.Step();
    ASSERT_LE(rig.pkg.DistinctRequestedFrequencies(), 3);
  });
  sim.Run(Seconds{40.0});
}

TEST(DaemonRyzen, PowerSharesConvergesToLimit) {
  Rig rig(Ryzen1700X());
  for (int i = 0; i < 8; i++) {
    rig.AddApp(i % 2 ? "leela" : "cactusBSSN", 1.0);
  }
  PowerDaemon daemon(&rig.msr, rig.apps, {.kind = PolicyKind::kPowerShares,
                                          .power_limit_w = Watts{40}});
  daemon.Start();
  rig.Run(&daemon, Seconds{60.0});
  Watts avg{0.0};
  for (size_t i = daemon.history().size() - 10; i < daemon.history().size(); i++) {
    avg += daemon.history()[i].sample.pkg_w;
  }
  avg /= 10.0;
  EXPECT_NEAR(avg.value(), 40.0, 2.5);
}

TEST(DaemonRyzen, PowerSharesProportionalCorePower) {
  Rig rig(Ryzen1700X());
  rig.AddApp("leela", 75.0);
  rig.AddApp("leela", 25.0);
  PowerDaemon daemon(&rig.msr, rig.apps, {.kind = PolicyKind::kPowerShares,
                                          .power_limit_w = Watts{22}});
  daemon.Start();
  rig.Run(&daemon, Seconds{90.0});
  // Compare measured per-core power over the last sample.
  const auto& rec = daemon.history().back();
  ASSERT_TRUE(rec.sample.cores[0].core_w.has_value());
  const Watts w0 = *rec.sample.cores[0].core_w;
  const Watts w1 = *rec.sample.cores[1].core_w;
  // 3:1 power split, within the tolerance the frequency floor allows.
  EXPECT_GT(w0 / w1, 1.8);
}

TEST(DaemonSkylake, SetPowerLimitTakesEffect) {
  Rig rig(SkylakeXeon4114());
  for (int i = 0; i < 10; i++) {
    rig.AddApp("cactusBSSN", 1.0);
  }
  PowerDaemon daemon(&rig.msr, rig.apps,
                     {.kind = PolicyKind::kFrequencyShares, .power_limit_w = Watts{60}});
  daemon.Start();
  rig.Run(&daemon, Seconds{30.0});
  EXPECT_NEAR(daemon.history().back().sample.pkg_w.value(), 60.0, 4.0);
  daemon.SetPowerLimit(Watts{40.0});
  rig.Run(&daemon, Seconds{30.0});
  EXPECT_NEAR(daemon.history().back().sample.pkg_w.value(), 40.0, 3.0);
}

TEST(DaemonSkylake, SetPowerLimitReprogramsRaplRegister) {
  Rig rig(SkylakeXeon4114());
  rig.AddApp("gcc", 1.0);
  PowerDaemon daemon(&rig.msr, rig.apps, {.kind = PolicyKind::kRaplOnly, .power_limit_w = Watts{60}});
  daemon.Start();
  EXPECT_DOUBLE_EQ(rig.pkg.rapl().limit_w().value(), 60.0);
  daemon.SetPowerLimit(Watts{45.0});
  EXPECT_DOUBLE_EQ(rig.pkg.rapl().limit_w().value(), 45.0);
}

TEST(DaemonSkylake, FallbackUsesConfiguredFloor) {
  Rig rig(SkylakeXeon4114());
  rig.AddApp("gcc", 1.0);
  rig.AddApp("leela", 1.0);
  DaemonConfig cfg;
  cfg.kind = PolicyKind::kFrequencyShares;
  cfg.power_limit_w = Watts{40.0};
  cfg.degradation.floor_mhz = Mhz{1200.0};
  PowerDaemon daemon(&rig.msr, rig.apps, cfg);
  daemon.Start();
  rig.Run(&daemon, Seconds{5.0});
  FaultPlan storm;
  storm.stale_sample_p = 1.0;
  rig.msr.EnableFaults(storm);
  rig.Run(&daemon, Seconds{5.0});
  ASSERT_EQ(daemon.degradation_state(), DegradationState::kFallback);
  EXPECT_DOUBLE_EQ(rig.pkg.core(0).requested_mhz().value(), 1200.0);
  EXPECT_DOUBLE_EQ(rig.pkg.core(1).requested_mhz().value(), 1200.0);
}

TEST(DaemonRyzen, DroppedWriteDetectedByReadBack) {
  // Ryzen programming goes through P-state definitions and per-core
  // selectors; verification must read those back (there is no RAPL register
  // to fall back on, so the net stays unarmed — no crash, just retries).
  Rig rig(Ryzen1700X());
  for (int i = 0; i < 4; i++) {
    rig.AddApp(i % 2 ? "leela" : "cactusBSSN", 1.0);
  }
  PowerDaemon daemon(&rig.msr, rig.apps,
                     {.kind = PolicyKind::kFrequencyShares, .power_limit_w = Watts{40}});
  daemon.Start();
  rig.Run(&daemon, Seconds{10.0});
  FaultPlan drops;
  drops.write_fail_p = 1.0;
  rig.msr.EnableFaults(drops);
  daemon.SetPowerLimit(Watts{30.0});
  rig.Run(&daemon, Seconds{10.0});
  EXPECT_GE(daemon.fault_stats().failed_programs, 2);
  EXPECT_GE(daemon.write_fail_streak(), 1);
  rig.msr.EnableFaults(FaultPlan{});
  rig.Run(&daemon, Seconds{10.0});
  EXPECT_EQ(daemon.write_fail_streak(), 0);
  EXPECT_EQ(daemon.degradation_state(), DegradationState::kNominal);
}

// A trivial custom policy: always request the same frequency everywhere.
class FixedPolicy : public ShareResource {
 public:
  explicit FixedPolicy(Mhz mhz) : mhz_(mhz) {}
  std::string Name() const override { return "fixed"; }
  std::vector<Mhz> InitialDistribution(const std::vector<ManagedApp>& apps, Watts) override {
    return std::vector<Mhz>(apps.size(), mhz_);
  }
  std::vector<Mhz> Redistribute(const std::vector<ManagedApp>& apps, const TelemetrySample&,
                                Watts) override {
    return std::vector<Mhz>(apps.size(), mhz_);
  }

 private:
  Mhz mhz_;
};

TEST(DaemonCustomPolicy, CustomShareResourceDrivesTargets) {
  Rig rig(SkylakeXeon4114());
  rig.AddApp("gcc", 1.0);
  rig.AddApp("leela", 1.0);
  DaemonConfig dcfg;
  dcfg.power_limit_w = Watts{50.0};
  PowerDaemon daemon(&rig.msr, rig.apps, dcfg, std::make_unique<FixedPolicy>(Mhz{1500.0}));
  daemon.Start();
  rig.Run(&daemon, Seconds{5.0});
  EXPECT_DOUBLE_EQ(rig.pkg.core(0).requested_mhz().value(), 1500.0);
  EXPECT_DOUBLE_EQ(rig.pkg.core(1).requested_mhz().value(), 1500.0);
}

TEST(DaemonCustomPolicy, WorksOnRyzenThroughSelector) {
  Rig rig(Ryzen1700X());
  rig.AddApp("gcc", 1.0);
  DaemonConfig dcfg;
  dcfg.power_limit_w = Watts{40.0};
  PowerDaemon daemon(&rig.msr, rig.apps, dcfg, std::make_unique<FixedPolicy>(Mhz{2000.0}));
  daemon.Start();
  rig.Run(&daemon, Seconds{5.0});
  EXPECT_DOUBLE_EQ(rig.pkg.core(0).requested_mhz().value(), 2000.0);
  EXPECT_LE(rig.pkg.DistinctRequestedFrequencies(), 3);
}

TEST(DaemonConfig, PolicyKindNames) {
  EXPECT_STREQ(PolicyKindName(PolicyKind::kRaplOnly), "rapl");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kPriority), "priority");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kFrequencyShares), "freq-shares");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kPerformanceShares), "perf-shares");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kPowerShares), "power-shares");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kStatic), "static");
}

TEST(MakePolicyPlatformTest, DerivesDatasheetFacts) {
  const PolicyPlatform p = MakePolicyPlatform(SkylakeXeon4114());
  EXPECT_DOUBLE_EQ(p.min_mhz.value(), 800.0);
  EXPECT_DOUBLE_EQ(p.max_mhz.value(), 3000.0);
  EXPECT_DOUBLE_EQ(p.max_power_w.value(), 85.0);
  EXPECT_EQ(p.num_cores, 10);
  EXPECT_GT(p.core_max_w, p.core_min_w);
}

}  // namespace
}  // namespace papd
