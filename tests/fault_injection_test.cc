// Integration tests for telemetry fault injection and the daemon's
// graceful-degradation ladder: deterministic replay, hold/fallback/recovery,
// the naive-baseline regression (stale telemetry must not read as free
// headroom), write-failure retry with backoff and the RAPL safety net, the
// governor's fallback, and the acceptance sweep over every standard fault
// schedule.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/experiments/harness.h"
#include "src/experiments/scenarios.h"
#include "src/governor/governor_daemon.h"
#include "src/msr/fault_plan.h"
#include "src/msr/msr.h"
#include "src/policy/daemon.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/workload.h"

namespace papd {
namespace {

// Same closed-loop rig as daemon_test.cc.
struct Rig {
  explicit Rig(PlatformSpec spec) : pkg(std::move(spec)), msr(&pkg) {}

  void AddApp(const std::string& profile, double shares, bool hp = false) {
    const int cpu = static_cast<int>(procs.size());
    procs.push_back(std::make_unique<Process>(GetProfile(profile), 100 + cpu));
    pkg.AttachWork(cpu, procs.back().get());
    apps.push_back(ManagedApp{.name = profile,
                              .cpu = cpu,
                              .shares = shares,
                              .high_priority = hp,
                              .baseline_ips = GetProfile(profile).NominalIps(Mhz{3000})});
  }

  void Run(PowerDaemon* daemon, Seconds seconds) {
    Simulator sim(&pkg);
    sim.AddPeriodic(daemon->config().period_s, [daemon](Seconds) { daemon->Step(); });
    sim.Run(seconds);
  }

  Package pkg;
  MsrFile msr;
  std::vector<std::unique_ptr<Process>> procs;
  std::vector<ManagedApp> apps;
};

// The naive pre-hardening daemon: raw telemetry, no degradation ladder.  The
// auditor is off because this configuration violates the power ceiling by
// design — that is the bug being demonstrated.
DaemonConfig NaiveConfig(PolicyKind kind, Watts limit_w) {
  DaemonConfig cfg;
  cfg.kind = kind;
  cfg.power_limit_w = limit_w;
  cfg.degradation.enabled = false;
  cfg.raw_telemetry = true;
  cfg.audit = false;
  return cfg;
}

FaultPlan StaleStorm() {
  FaultPlan plan;
  plan.seed = 11;
  plan.stale_sample_p = 1.0;
  return plan;
}

// --- Deterministic replay ----------------------------------------------------

TEST(FaultInjection, ScenarioReplayIsBitIdentical) {
  ScenarioConfig c{.platform = SkylakeXeon4114()};
  c.apps = {{"cactusBSSN", 2.0}, {"leela", 1.0}, {"gcc", 1.0}, {"omnetpp", 1.0}};
  c.policy = PolicyKind::kFrequencyShares;
  c.limit_w = Watts{45.0};
  c.warmup_s = Seconds{5.0};
  c.measure_s = Seconds{25.0};
  c.run.daemon.faults.seed = 99;
  c.run.daemon.faults.start_s = Seconds{8.0};
  c.run.daemon.faults.end_s = Seconds{24.0};
  c.run.daemon.faults.stale_sample_p = 0.3;
  c.run.daemon.faults.counter_reset_p = 0.1;
  c.run.daemon.faults.energy_wrap_p = 0.2;
  c.run.daemon.faults.write_fail_p = 0.3;

  const ScenarioResult a = RunScenario(c);
  const ScenarioResult b = RunScenario(c);
  EXPECT_DOUBLE_EQ(a.avg_pkg_w.value(), b.avg_pkg_w.value());
  EXPECT_DOUBLE_EQ(a.max_pkg_w.value(), b.max_pkg_w.value());
  EXPECT_EQ(a.fault_counts.stale_samples, b.fault_counts.stale_samples);
  EXPECT_EQ(a.fault_counts.counter_resets, b.fault_counts.counter_resets);
  EXPECT_EQ(a.fault_counts.energy_wraps, b.fault_counts.energy_wraps);
  EXPECT_EQ(a.fault_counts.dropped_writes, b.fault_counts.dropped_writes);
  EXPECT_EQ(a.fault_stats.invalid_samples, b.fault_stats.invalid_samples);
  EXPECT_EQ(a.fault_stats.fallback_periods, b.fault_stats.fallback_periods);
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (size_t i = 0; i < a.apps.size(); i++) {
    EXPECT_DOUBLE_EQ(a.apps[i].avg_ips.value(), b.apps[i].avg_ips.value());
  }
  // The schedule injected something; otherwise the test is vacuous.
  EXPECT_GT(a.fault_counts.stale_samples, 0);
  EXPECT_GT(a.fault_stats.invalid_samples, 0);
}

// --- Degradation ladder: hold, fallback, recovery ----------------------------

TEST(FaultInjection, StaleStormHoldsThenFallsBackThenRecovers) {
  Rig rig(SkylakeXeon4114());
  for (int i = 0; i < 6; i++) {
    rig.AddApp(i % 2 ? "leela" : "cactusBSSN", 1.0);
  }
  PowerDaemon daemon(&rig.msr, rig.apps,
                     {.kind = PolicyKind::kFrequencyShares, .power_limit_w = Watts{45}});
  daemon.Start();
  rig.Run(&daemon, Seconds{20.0});
  ASSERT_EQ(daemon.degradation_state(), DegradationState::kNominal);
  const std::vector<Mhz> pre_fault = daemon.targets();
  std::vector<Mhz> pre_requested;
  for (int i = 0; i < 6; i++) {
    pre_requested.push_back(rig.pkg.core(i).requested_mhz());
  }

  rig.msr.EnableFaults(StaleStorm());
  // Two invalid periods: hold — targets and hardware untouched.
  rig.Run(&daemon, Seconds{2.0});
  EXPECT_EQ(daemon.degradation_state(), DegradationState::kHold);
  EXPECT_EQ(daemon.bad_sample_streak(), 2);
  EXPECT_EQ(daemon.fault_stats().held_periods, 2);
  EXPECT_EQ(daemon.targets(), pre_fault);
  for (int i = 0; i < 6; i++) {
    EXPECT_DOUBLE_EQ(rig.pkg.core(i).requested_mhz().value(), pre_requested[i].value());
  }

  // Third consecutive invalid period: fallback — every running core at the
  // platform floor, RAPL safety net armed.
  rig.Run(&daemon, Seconds{3.0});
  EXPECT_EQ(daemon.degradation_state(), DegradationState::kFallback);
  EXPECT_GE(daemon.fault_stats().fallback_periods, 1);
  for (int i = 0; i < 6; i++) {
    EXPECT_DOUBLE_EQ(rig.pkg.core(i).requested_mhz().value(), 800.0);
  }
  EXPECT_TRUE(rig.pkg.rapl().enabled());
  EXPECT_DOUBLE_EQ(rig.pkg.rapl().limit_w().value(), 45.0);
  // The policy's view of the targets is frozen, not floored.
  EXPECT_EQ(daemon.targets(), pre_fault);

  // Telemetry returns: nominal targets must be restored within 3 periods,
  // and the safety net (which the daemon armed, not the operator) disarmed.
  rig.msr.EnableFaults(FaultPlan{});
  rig.Run(&daemon, Seconds{3.0});
  EXPECT_EQ(daemon.degradation_state(), DegradationState::kNominal);
  EXPECT_EQ(daemon.bad_sample_streak(), 0);
  for (int i = 0; i < 6; i++) {
    EXPECT_DOUBLE_EQ(rig.pkg.core(i).requested_mhz().value(), pre_requested[i].value());
  }
  EXPECT_FALSE(rig.pkg.rapl().enabled());
}

TEST(FaultInjection, HistoryRecordsLadderStates) {
  Rig rig(SkylakeXeon4114());
  rig.AddApp("gcc", 1.0);
  rig.AddApp("leela", 1.0);
  PowerDaemon daemon(&rig.msr, rig.apps,
                     {.kind = PolicyKind::kFrequencyShares, .power_limit_w = Watts{40}});
  daemon.Start();
  rig.Run(&daemon, Seconds{5.0});
  rig.msr.EnableFaults(StaleStorm());
  rig.Run(&daemon, Seconds{5.0});
  const auto& h = daemon.history();
  ASSERT_EQ(h.size(), 10u);
  EXPECT_EQ(h[4].state, DegradationState::kNominal);
  EXPECT_EQ(h[5].state, DegradationState::kHold);
  EXPECT_EQ(h[6].state, DegradationState::kHold);
  for (size_t i = 7; i < 10; i++) {
    EXPECT_EQ(h[i].state, DegradationState::kFallback);
  }
}

// --- The seed bug, demonstrated and fixed ------------------------------------

// Pre-hardening, a stale read produced a *valid* all-zero sample; the policy
// read zero package power as limit_w of free headroom and ramped everything
// to the maximum — exactly while it was blind.  The hardened daemon must
// never raise a request on invalid telemetry.
TEST(FaultInjection, NaiveDaemonRampsOnStaleTelemetryHardenedHolds) {
  Rig naive_rig(SkylakeXeon4114());
  Rig hard_rig(SkylakeXeon4114());
  for (int i = 0; i < 10; i++) {
    naive_rig.AddApp(i % 2 ? "leela" : "cactusBSSN", 1.0);
    hard_rig.AddApp(i % 2 ? "leela" : "cactusBSSN", 1.0);
  }
  PowerDaemon naive(&naive_rig.msr, naive_rig.apps,
                    NaiveConfig(PolicyKind::kFrequencyShares, Watts{45.0}));
  DaemonConfig hcfg;
  hcfg.kind = PolicyKind::kFrequencyShares;
  hcfg.power_limit_w = Watts{45.0};
  PowerDaemon hardened(&hard_rig.msr, hard_rig.apps, hcfg);
  naive.Start();
  hardened.Start();
  naive_rig.Run(&naive, Seconds{30.0});
  hard_rig.Run(&hardened, Seconds{30.0});

  // Converged well below the maximum P-state at 45 W over 10 cores.
  const Mhz naive_pre{naive_rig.pkg.core(0).requested_mhz()};
  const Mhz hard_pre{hard_rig.pkg.core(0).requested_mhz()};
  ASSERT_LT(naive_pre, Mhz{2500.0});
  ASSERT_LT(hard_pre, Mhz{2500.0});

  naive_rig.msr.EnableFaults(StaleStorm());
  hard_rig.msr.EnableFaults(StaleStorm());
  naive_rig.Run(&naive, Seconds{10.0});
  hard_rig.Run(&hardened, Seconds{10.0});

  // Naive: zero-power samples look like headroom; requests climb to max.
  EXPECT_DOUBLE_EQ(naive_rig.pkg.core(0).requested_mhz().value(), 3000.0);
  // Hardened: requests never rise while blind (hold, then the 800 floor).
  for (int i = 0; i < 10; i++) {
    EXPECT_LE(hard_rig.pkg.core(i).requested_mhz(), hard_pre + Mhz{1.0});
  }
  EXPECT_EQ(hardened.degradation_state(), DegradationState::kFallback);
}

TEST(FaultInjection, PriorityPolicyDoesNotUnstarveOnStaleTelemetry) {
  // Same bug through the priority policy: zero power would un-starve
  // low-priority cores while telemetry is dark.  Hardened must keep the
  // starved set exactly as it was.
  Rig rig(SkylakeXeon4114());
  for (int i = 0; i < 5; i++) {
    rig.AddApp("cactusBSSN", 1.0, /*hp=*/true);
  }
  for (int i = 0; i < 5; i++) {
    rig.AddApp("cactusBSSN", 1.0, /*hp=*/false);
  }
  PowerDaemon daemon(&rig.msr, rig.apps,
                     {.kind = PolicyKind::kPriority, .power_limit_w = Watts{40}});
  daemon.Start();
  rig.Run(&daemon, Seconds{30.0});
  std::vector<bool> pre_online;
  for (int i = 0; i < 10; i++) {
    pre_online.push_back(rig.msr.CoreOnline(i));
  }
  int pre_offline = 0;
  for (int i = 5; i < 10; i++) {
    pre_offline += rig.msr.CoreOnline(i) ? 0 : 1;
  }
  ASSERT_GT(pre_offline, 0);

  rig.msr.EnableFaults(StaleStorm());
  rig.Run(&daemon, Seconds{10.0});
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(rig.msr.CoreOnline(i), pre_online[i]) << "core " << i;
  }
}

// --- Write verification, backoff, RAPL safety net ----------------------------

TEST(FaultInjection, DroppedWritesRetryWithBackoffAndArmSafetyNet) {
  Rig rig(SkylakeXeon4114());
  for (int i = 0; i < 6; i++) {
    rig.AddApp(i % 2 ? "leela" : "cactusBSSN", 1.0);
  }
  PowerDaemon daemon(&rig.msr, rig.apps,
                     {.kind = PolicyKind::kFrequencyShares, .power_limit_w = Watts{50}});
  daemon.Start();
  rig.Run(&daemon, Seconds{20.0});
  ASSERT_FALSE(rig.pkg.rapl().enabled());

  // Every P-state write is now dropped; a limit change forces the daemon to
  // reprogram into the failure.
  FaultPlan drops;
  drops.seed = 3;
  drops.write_fail_p = 1.0;
  rig.msr.EnableFaults(drops);
  daemon.SetPowerLimit(Watts{40.0});
  rig.Run(&daemon, Seconds{15.0});

  const DaemonFaultStats& stats = daemon.fault_stats();
  EXPECT_GE(stats.failed_programs, 3);
  EXPECT_GE(stats.backoff_skips, 3);  // Exponential backoff between retries.
  EXPECT_GE(daemon.write_fail_streak(), 3);
  // write_retry_limit consecutive failures: hardware takes over.
  EXPECT_TRUE(rig.pkg.rapl().enabled());
  EXPECT_DOUBLE_EQ(rig.pkg.rapl().limit_w().value(), 40.0);

  // Writes work again: the pending program lands, the streak clears, and
  // the daemon-armed net is disarmed.
  rig.msr.EnableFaults(FaultPlan{});
  rig.Run(&daemon, Seconds{10.0});
  EXPECT_EQ(daemon.write_fail_streak(), 0);
  EXPECT_EQ(daemon.degradation_state(), DegradationState::kNominal);
  EXPECT_FALSE(rig.pkg.rapl().enabled());
}

TEST(FaultInjection, MonitoringPoliciesStopRewritingUnchangedTargets) {
  // kRaplOnly and kStatic program once at Start; with targets never
  // changing, the hardened daemon must not touch the registers again.
  for (const PolicyKind kind : {PolicyKind::kRaplOnly, PolicyKind::kStatic}) {
    Rig rig(SkylakeXeon4114());
    rig.AddApp("gcc", 1.0);
    rig.AddApp("leela", 1.0);
    DaemonConfig cfg;
    cfg.kind = kind;
    cfg.power_limit_w = Watts{45.0};
    cfg.static_mhz = Mhz{1800.0};
    PowerDaemon daemon(&rig.msr, rig.apps, cfg);
    daemon.Start();
    const int writes_after_start = rig.msr.write_count();
    rig.Run(&daemon, Seconds{10.0});
    EXPECT_EQ(rig.msr.write_count(), writes_after_start)
        << PolicyKindName(kind) << " kept rewriting unchanged targets";
    EXPECT_EQ(daemon.fault_stats().reprogram_skips, 10);
  }
}

// --- Governor degradation ----------------------------------------------------

TEST(FaultInjection, GovernorHoldsThenFallsBackToMinimum) {
  Package pkg(SkylakeXeon4114());
  MsrFile msr(&pkg);
  Process proc(GetProfile("cpuburn"), 1);
  pkg.AttachWork(0, &proc);
  GovernorDaemon daemon(&msr, GovernorKind::kOndemand);

  Simulator sim(&pkg);
  sim.AddPeriodic(Seconds{0.1}, [&daemon](Seconds) { daemon.Step(); });
  sim.Run(Seconds{2.0});
  ASSERT_DOUBLE_EQ(pkg.core(0).requested_mhz().value(), 3000.0);  // 100% util.
  ASSERT_EQ(daemon.invalid_streak(), 0);

  msr.EnableFaults(StaleStorm());
  sim.Run(Seconds{0.2});  // Two invalid samples: hold.
  EXPECT_EQ(daemon.invalid_streak(), 2);
  EXPECT_FALSE(daemon.in_fallback());
  EXPECT_DOUBLE_EQ(pkg.core(0).requested_mhz().value(), 3000.0);

  sim.Run(Seconds{0.2});  // Third invalid sample: everything to the platform minimum.
  EXPECT_TRUE(daemon.in_fallback());
  for (int i = 0; i < pkg.num_cores(); i++) {
    EXPECT_DOUBLE_EQ(pkg.core(i).requested_mhz().value(), 800.0);
  }

  msr.EnableFaults(FaultPlan{});
  sim.Run(Seconds{1.0});  // Telemetry back: the busy core ramps again.
  EXPECT_EQ(daemon.invalid_streak(), 0);
  EXPECT_DOUBLE_EQ(pkg.core(0).requested_mhz().value(), 3000.0);
}

// --- Acceptance sweep --------------------------------------------------------

// Under every standard fault schedule the hardened, audited daemon keeps the
// ground-truth package power within the configured slack of the limit.  The
// auditor itself (power-ceiling invariant) aborts the test on a daemon-
// visible violation; max_pkg_w checks the energy-counter truth the daemon
// cannot see.
TEST(FaultInjection, HardenedDaemonHoldsCeilingUnderEverySchedule) {
  for (const FaultScenario& fs : FaultSchedules(Seconds{20.0}, Seconds{50.0}, /*seed=*/5)) {
    ScenarioConfig c{.platform = SkylakeXeon4114()};
    c.apps = {{"cactusBSSN", 2.0}, {"leela", 1.0},     {"gcc", 1.0},
              {"deepsjeng", 1.0},  {"exchange2", 1.0}, {"omnetpp", 1.0}};
    c.policy = PolicyKind::kFrequencyShares;
    c.limit_w = Watts{50.0};
    c.warmup_s = Seconds{10.0};
    c.measure_s = Seconds{60.0};
    c.run.daemon.audit = true;
    c.run.daemon.faults = fs.plan;
    c.run.daemon.degrade = true;
    const ScenarioResult r = RunScenario(c);
    EXPECT_LE(r.max_pkg_w, c.limit_w + Watts{8.0}) << fs.label;
    EXPECT_GT(r.avg_pkg_w, Watts{0.0}) << fs.label;
  }
}

}  // namespace
}  // namespace papd
