// Serving-fleet tests: open-loop arrival determinism across thread counts,
// SloFeedbackArbiter convergence/hysteresis, and the cap invariant as a
// property over a full feedback run.
//
// The fleets here are miniatures (4-16 sockets, seconds of simulated time)
// of the 256-socket bench regime; the knobs scale the offered load so the
// per-socket physics match the calibrated defaults (see FleetConfig).

#include "src/cluster/fleet.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/policy/slo_feedback.h"

namespace papd {
namespace {

// 16 sockets with the same per-socket offered load as the 256-socket bench
// default (users scale linearly with the weighted socket count).
FleetConfig MiniatureFleet() {
  FleetConfig cfg;
  cfg.rows = 2;
  cfg.racks_per_row = 2;
  cfg.sockets_per_rack = 4;
  cfg.users = 6.13e6;
  cfg.seed = 7;
  return cfg;
}

// --- Open-loop arrival determinism -------------------------------------------

// The sticky population shard keeps sockets share-nothing, so the arrival
// process on every socket must be bit-identical no matter how leaf stepping
// is scheduled: serial, or racing across any number of pool threads.
TEST(FleetDeterminism, ArrivalsIdenticalAcrossThreadCounts) {
  constexpr int kSteps = 6;

  auto run = [](ThreadPool* pool) {
    FleetConfig cfg = MiniatureFleet();
    cfg.record_arrivals = true;
    Fleet fleet(cfg);
    for (int i = 0; i < kSteps; i++) {
      fleet.Step(pool);
    }
    std::vector<std::vector<Seconds>> arrivals;
    std::vector<std::vector<Seconds>> latencies;
    for (int node : fleet.leaf_nodes()) {
      SocketStack& stack = fleet.tree().stack(node);
      EXPECT_NE(stack.websearch, nullptr);
      arrivals.push_back(stack.websearch->arrival_log());
      latencies.push_back(stack.websearch->latencies());
    }
    return std::make_pair(arrivals, latencies);
  };

  const auto serial = run(nullptr);
  ThreadPool pool2(2);
  const auto threaded2 = run(&pool2);
  ThreadPool pool8(8);
  const auto threaded8 = run(&pool8);

  ASSERT_EQ(serial.first.size(), threaded2.first.size());
  for (size_t s = 0; s < serial.first.size(); s++) {
    // Bitwise equality, not approximate: the RNG stream is per-socket and
    // the simulation must not depend on scheduling.
    EXPECT_EQ(serial.first[s], threaded2.first[s]) << "socket " << s;
    EXPECT_EQ(serial.first[s], threaded8.first[s]) << "socket " << s;
    EXPECT_EQ(serial.second[s], threaded2.second[s]) << "socket " << s;
    EXPECT_EQ(serial.second[s], threaded8.second[s]) << "socket " << s;
  }
}

TEST(FleetDeterminism, SeedChangesArrivals) {
  FleetConfig cfg = MiniatureFleet();
  cfg.record_arrivals = true;
  Fleet a(cfg);
  cfg.seed = cfg.seed + 1;
  Fleet b(cfg);
  for (int i = 0; i < 3; i++) {
    a.Step();
    b.Step();
  }
  SocketStack& sa = a.tree().stack(a.leaf_nodes()[0]);
  SocketStack& sb = b.tree().stack(b.leaf_nodes()[0]);
  EXPECT_NE(sa.websearch->arrival_log(), sb.websearch->arrival_log());
}

// The open-loop process must deliver the configured rate: users *
// requests_per_user_per_day / 86400, within Poisson noise.
TEST(FleetOpenLoop, ArrivalRateMatchesConfiguredLoad) {
  FleetConfig cfg = MiniatureFleet();
  cfg.hot_fraction = 0.0;  // Uniform: every socket offers the same rate.
  Fleet fleet(cfg);
  constexpr int kSteps = 20;
  for (int i = 0; i < kSteps; i++) {
    fleet.Step();
  }
  const double per_socket_rps =
      cfg.users / 16.0 * cfg.requests_per_user_per_day / 86400.0;
  uint64_t total = 0;
  for (int node : fleet.leaf_nodes()) {
    total += fleet.tree().stack(node).websearch->arrivals();
  }
  const double expected = per_socket_rps * 16.0 * kSteps;
  // 16 sockets x 20 s of Poisson arrivals: 5 sigma is well under 2%.
  EXPECT_NEAR(static_cast<double>(total), expected, 0.02 * expected);
}

TEST(FleetOpenLoop, DiurnalShapeModulatesArrivals) {
  FleetConfig cfg = MiniatureFleet();
  cfg.rows = 1;
  cfg.racks_per_row = 1;
  cfg.sockets_per_rack = 2;
  cfg.users = 6.13e6 / 8.0;
  cfg.hot_fraction = 0.0;
  cfg.shape = ArrivalShape::kDiurnal;
  cfg.diurnal_amplitude = 0.9;
  cfg.diurnal_period_s = Seconds{20.0};  // Compressed day: peak at t=5, trough at t=15.
  Fleet fleet(cfg);

  uint64_t before = 0;
  auto arrivals_now = [&fleet]() {
    uint64_t total = 0;
    for (int node : fleet.leaf_nodes()) {
      total += fleet.tree().stack(node).websearch->arrivals();
    }
    return total;
  };
  uint64_t peak_half = 0;
  uint64_t trough_half = 0;
  for (int i = 0; i < 20; i++) {
    fleet.Step();
    const uint64_t now = arrivals_now();
    if (i < 10) {
      peak_half += now - before;
    } else {
      trough_half += now - before;
    }
    before = now;
  }
  // With amplitude 0.9 the first half-period carries several times the
  // arrivals of the second.
  EXPECT_GT(static_cast<double>(peak_half), 1.5 * static_cast<double>(trough_half));
}

// --- SloFeedbackArbiter dynamics ---------------------------------------------

TEST(SloFeedbackArbiter, ConvergesToMaxBiasUnderPersistentViolation) {
  SloFeedbackOptions opt;
  opt.step = 0.25;
  opt.max_bias = 4.0;
  SloFeedbackArbiter arbiter(opt);
  arbiter.Resize(1);

  // log(4) / log(1.25) = 6.2: the bias must saturate on the 7th update.
  const int expected_periods =
      static_cast<int>(std::ceil(std::log(opt.max_bias) / std::log(1.0 + opt.step)));
  std::vector<double> violating{1.0};
  for (int i = 0; i < expected_periods; i++) {
    EXPECT_LT(arbiter.bias(0), opt.max_bias);
    arbiter.Update(violating);
  }
  EXPECT_DOUBLE_EQ(arbiter.bias(0), opt.max_bias);
  // Saturated: further violation reports are no-ops.
  EXPECT_EQ(arbiter.Update(violating), 0);
  EXPECT_DOUBLE_EQ(arbiter.bias(0), opt.max_bias);
}

TEST(SloFeedbackArbiter, DecaysToExactlyOneAfterRecovery) {
  SloFeedbackArbiter arbiter;
  arbiter.Resize(1);
  std::vector<double> violating{1.0};
  std::vector<double> recovered{0.0};
  for (int i = 0; i < 10; i++) {
    arbiter.Update(violating);
  }
  EXPECT_GT(arbiter.bias(0), 1.0);
  for (int i = 0; i < 200; i++) {
    arbiter.Update(recovered);
  }
  // Lands exactly on 1.0 (not asymptotically close): recovered shards get
  // their configured shares back verbatim.
  EXPECT_EQ(arbiter.bias(0), 1.0);
  EXPECT_EQ(arbiter.Update(recovered), 0);
}

TEST(SloFeedbackArbiter, ReleaseIsSlowerThanAttack) {
  SloFeedbackArbiter arbiter;  // Defaults: step 0.25, decay 0.0625.
  arbiter.Resize(1);
  std::vector<double> violating{1.0};
  std::vector<double> recovered{0.0};
  int up_periods = 0;
  while (arbiter.Update(violating) > 0) {
    up_periods++;
  }
  int down_periods = 0;
  while (arbiter.Update(recovered) > 0) {
    down_periods++;
  }
  EXPECT_GT(down_periods, 2 * up_periods);
}

TEST(SloFeedbackArbiter, HysteresisBandHolds) {
  SloFeedbackOptions opt;
  opt.enter_fraction = 0.5;
  opt.exit_fraction = 0.25;
  SloFeedbackArbiter arbiter(opt);
  arbiter.Resize(1);
  arbiter.Update({1.0});
  const double boosted = arbiter.bias(0);
  EXPECT_GT(boosted, 1.0);
  // Fractions inside (exit, enter) neither boost nor decay, however long
  // they persist — this is what keeps interior tree nodes from flapping.
  for (int i = 0; i < 50; i++) {
    EXPECT_EQ(arbiter.Update({0.4}), 0);
  }
  EXPECT_DOUBLE_EQ(arbiter.bias(0), boosted);
}

TEST(SloFeedbackArbiter, BiasesStayWithinConfiguredBounds) {
  SloFeedbackOptions opt;
  opt.min_bias = 0.5;
  opt.max_bias = 3.0;
  SloFeedbackArbiter arbiter(opt);
  arbiter.Resize(3);
  // Deterministic pseudo-random violation fractions.
  uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 40) / static_cast<double>(1 << 24);
  };
  for (int i = 0; i < 500; i++) {
    arbiter.Update({next(), next(), next()});
    for (size_t n = 0; n < arbiter.size(); n++) {
      EXPECT_GE(arbiter.bias(n), opt.min_bias);
      EXPECT_LE(arbiter.bias(n), opt.max_bias);
    }
  }
}

// --- Feedback fleet properties -----------------------------------------------

// The cap invariant must hold *structurally* under feedback: however the
// biases move the proportions, no arbitration may hand children more than
// their parent's grant.  Checked per step, not just at collection.
TEST(FleetSloFeedback, CapInvariantHoldsUnderBiasedSplits) {
  FleetConfig cfg = MiniatureFleet();
  cfg.arbiter = RackArbiterKind::kSloFeedback;
  Fleet fleet(cfg);
  for (int i = 0; i < 12; i++) {
    fleet.Step();
    EXPECT_LE(fleet.tree().max_grant_overrun_w().value(), 1e-6) << "step " << i;
    for (int n = 0; n < fleet.tree().num_nodes(); n++) {
      EXPECT_GE(fleet.share_bias(n), cfg.slo.min_bias);
      EXPECT_LE(fleet.share_bias(n), cfg.slo.max_bias);
    }
  }
  const FleetResult result = fleet.Collect();
  EXPECT_LE(result.max_grant_overrun_w.value(), 1e-6);
}

// Hot shards violate, so their biases must rise above neutral while a
// fully-satisfied cold subtree stays at 1.0.
TEST(FleetSloFeedback, BiasMovesTowardViolatingShards) {
  FleetConfig cfg = MiniatureFleet();
  cfg.arbiter = RackArbiterKind::kSloFeedback;
  Fleet fleet(cfg);
  for (int i = 0; i < 8; i++) {
    fleet.Step();
  }
  double hot_max_bias = 1.0;
  double cold_max_bias = 1.0;
  for (int s = 0; s < fleet.num_sockets(); s++) {
    const double b = fleet.share_bias(fleet.leaf_nodes()[static_cast<size_t>(s)]);
    if (fleet.socket_hot(s)) {
      hot_max_bias = std::max(hot_max_bias, b);
    } else {
      cold_max_bias = std::max(cold_max_bias, b);
    }
  }
  EXPECT_GT(hot_max_bias, 1.0);
  EXPECT_GE(hot_max_bias, cold_max_bias);
}

// The headline, in miniature: at the same cluster cap, closing the loop
// strictly reduces violating socket-periods vs static shares.  Seeded
// simulation, so this is exact, not statistical.
TEST(FleetSloFeedback, BeatsStaticSharesAtSameCap) {
  auto violations = [](RackArbiterKind arbiter) {
    FleetConfig cfg = MiniatureFleet();
    cfg.arbiter = arbiter;
    const FleetResult r = RunFleet(cfg, Seconds{4.0}, Seconds{10.0});
    return r.total_slo_violations;
  };
  const size_t with_static = violations(RackArbiterKind::kShares);
  const size_t with_feedback = violations(RackArbiterKind::kSloFeedback);
  EXPECT_LT(with_feedback, with_static);
  EXPECT_GT(with_static, 0u);  // The regime must actually stress the cap.
}

TEST(FleetResultReporting, CollectsPerSocketDetail) {
  FleetConfig cfg = MiniatureFleet();
  const FleetResult r = RunFleet(cfg, Seconds{2.0}, Seconds{4.0});
  ASSERT_EQ(r.sockets.size(), 16u);
  EXPECT_EQ(r.simulated_users, cfg.users);
  EXPECT_GT(r.summary.completed_requests, 0u);
  EXPECT_GT(r.summary.avg_pkg_w.value(), 0.0);
  EXPECT_GT(r.summary.p90_latency, Seconds{0.0});
  size_t hot_seen = 0;
  for (const FleetSocketResult& s : r.sockets) {
    EXPECT_FALSE(s.path.empty());
    EXPECT_GT(s.grant_w.value(), 0.0);
    EXPECT_GT(s.completed, 0u);
    hot_seen += s.hot ? 1u : 0u;
  }
  EXPECT_EQ(hot_seen, 2u);  // round(0.125 * 16).
}

}  // namespace
}  // namespace papd
