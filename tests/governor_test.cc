// Unit tests for the OS frequency governors and the per-core governor loop.

#include <gtest/gtest.h>

#include <memory>

#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/governor/governor.h"
#include "src/governor/governor_daemon.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/workload.h"

namespace papd {
namespace {

GovernorLimits Limits() { return GovernorLimits{.min_mhz = Mhz{800}, .max_mhz = Mhz{3000}, .step_mhz = Mhz{100}}; }

TEST(Governors, PerformanceAlwaysMax) {
  PerformanceGovernor g(Limits());
  EXPECT_DOUBLE_EQ(g.Decide(0.0, Mhz{1500}).value(), 3000.0);
  EXPECT_DOUBLE_EQ(g.Decide(1.0, Mhz{800}).value(), 3000.0);
}

TEST(Governors, PowersaveAlwaysMin) {
  PowersaveGovernor g(Limits());
  EXPECT_DOUBLE_EQ(g.Decide(1.0, Mhz{3000}).value(), 800.0);
}

TEST(Governors, UserspaceHoldsProgrammedValue) {
  UserspaceGovernor g(Limits(), Mhz{2200});
  EXPECT_DOUBLE_EQ(g.Decide(0.5, Mhz{1000}).value(), 2200.0);
  g.set_mhz(Mhz{1550});  // Off-grid: quantized to nearest step.
  const Mhz f{g.Decide(0.5, Mhz{1000})};
  EXPECT_TRUE(f == Mhz{1500.0} || f == Mhz{1600.0});
}

TEST(Governors, OndemandJumpsToMaxWhenBusy) {
  OndemandGovernor g(Limits());
  EXPECT_DOUBLE_EQ(g.Decide(0.95, Mhz{800}).value(), 3000.0);
}

TEST(Governors, OndemandProportionalWhenIdle) {
  OndemandGovernor g(Limits());
  const Mhz f{g.Decide(0.40, Mhz{3000})};
  EXPECT_LT(f, Mhz{3000.0});
  EXPECT_GE(f, Mhz{800.0});
  // ~ util * max / headroom = 0.4 * 3000 / 0.8 = 1500.
  EXPECT_NEAR(f.value(), 1500.0, 100.0);
}

TEST(Governors, ConservativeStepsGradually) {
  ConservativeGovernor g(Limits());
  const Mhz up{g.Decide(0.95, Mhz{1500})};
  EXPECT_GT(up, Mhz{1500.0});
  EXPECT_LT(up, Mhz{3000.0});  // One step, not a jump.
  const Mhz down{g.Decide(0.05, Mhz{1500})};
  EXPECT_LT(down, Mhz{1500.0});
  EXPECT_GT(down, Mhz{800.0});
  const Mhz hold{g.Decide(0.50, Mhz{1500})};
  EXPECT_DOUBLE_EQ(hold.value(), 1500.0);
}

TEST(Governors, ConservativeClampsAtRangeEnds) {
  ConservativeGovernor g(Limits());
  EXPECT_DOUBLE_EQ(g.Decide(0.99, Mhz{3000}).value(), 3000.0);
  EXPECT_DOUBLE_EQ(g.Decide(0.01, Mhz{800}).value(), 800.0);
}

TEST(Governors, FactoryProducesAllKinds) {
  for (GovernorKind kind :
       {GovernorKind::kPerformance, GovernorKind::kPowersave, GovernorKind::kUserspace,
        GovernorKind::kOndemand, GovernorKind::kConservative}) {
    auto g = MakeGovernor(kind, Limits());
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->Name(), GovernorKindName(kind));
  }
}

TEST(GovernorDaemon, OndemandRampsBusyCoreAndParksIdleCore) {
  Package pkg(SkylakeXeon4114());
  MsrFile msr(&pkg);
  Process proc(GetProfile("gcc"), 1);
  pkg.AttachWork(0, &proc);  // Core 0 busy; others idle.
  GovernorDaemon daemon(&msr, GovernorKind::kOndemand);

  Simulator sim(&pkg);
  sim.AddPeriodic(Seconds{0.1}, [&daemon](Seconds) { daemon.Step(); });
  sim.Run(Seconds{2.0});

  EXPECT_DOUBLE_EQ(pkg.core(0).requested_mhz().value(), 3000.0);  // 100% util -> max.
  EXPECT_DOUBLE_EQ(pkg.core(1).requested_mhz().value(), 800.0);   // Idle -> min.
}

TEST(GovernorDaemon, ConservativeConvergesOverTime) {
  Package pkg(SkylakeXeon4114());
  MsrFile msr(&pkg);
  Process proc(GetProfile("gcc"), 1);
  pkg.AttachWork(0, &proc);
  pkg.SetRequestedMhz(0, Mhz{800});
  GovernorDaemon daemon(&msr, GovernorKind::kConservative);

  Simulator sim(&pkg);
  sim.AddPeriodic(Seconds{0.1}, [&daemon](Seconds) { daemon.Step(); });
  sim.Run(Seconds{0.5});
  const Mhz early{pkg.core(0).requested_mhz()};
  sim.Run(Seconds{5.0});
  const Mhz late{pkg.core(0).requested_mhz()};
  EXPECT_GT(late, early);       // Ramps up under sustained load...
  EXPECT_DOUBLE_EQ(late.value(), 3000.0);  // ...eventually reaching max.
}

TEST(GovernorDaemon, UtilizationGovernorIgnoresPriorities) {
  // The motivating deficiency: a power virus is 100% utilized, so ondemand
  // gives it the maximum frequency — identical treatment to a high-priority
  // app.  Differential power delivery is impossible.
  Package pkg(SkylakeXeon4114());
  MsrFile msr(&pkg);
  Process burn(GetProfile("cpuburn"), 1);
  Process service(GetProfile("leela"), 2);
  pkg.AttachWork(0, &burn);
  pkg.AttachWork(1, &service);
  GovernorDaemon daemon(&msr, GovernorKind::kOndemand);

  Simulator sim(&pkg);
  sim.AddPeriodic(Seconds{0.1}, [&daemon](Seconds) { daemon.Step(); });
  sim.Run(Seconds{2.0});
  EXPECT_DOUBLE_EQ(pkg.core(0).requested_mhz().value(), pkg.core(1).requested_mhz().value());
}

}  // namespace
}  // namespace papd
