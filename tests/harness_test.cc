// Unit tests for the experiment harness and scenario builders.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/experiments/harness.h"
#include "src/experiments/scenarios.h"

namespace papd {
namespace {

TEST(Standalone, BaselinesAreSane) {
  const auto& gcc = Standalone(SkylakeXeon4114(), "gcc");
  EXPECT_GT(gcc.ips, Ips{1e9});
  EXPECT_GT(gcc.active_mhz, Mhz{2500.0});  // Single core turbos.
  EXPECT_GT(gcc.pkg_w, Watts{10.0});
  EXPECT_LT(gcc.pkg_w, Watts{85.0});
}

TEST(Standalone, CachedResultsStable) {
  // Standalone() returns by value so no reference to the lock-guarded cache
  // escapes; stability means the cache-hit call yields identical bits.
  const auto a = Standalone(SkylakeXeon4114(), "leela");
  const auto b = Standalone(SkylakeXeon4114(), "leela");
  EXPECT_DOUBLE_EQ(a.ips.value(), b.ips.value());
  EXPECT_DOUBLE_EQ(a.active_mhz.value(), b.active_mhz.value());
  EXPECT_DOUBLE_EQ(a.pkg_w.value(), b.pkg_w.value());
  EXPECT_DOUBLE_EQ(a.core_w.value(), b.core_w.value());
}

// Regression test for the Standalone() cache data race: concurrent callers
// (as issued by RunScenarios worker threads) must be safe, both when racing
// to fill the same key and when inserting different keys.  The sanitizer
// matrix runs this under TSan, which is what actually checks the locking.
TEST(Standalone, ConcurrentCallsAreSafe) {
  const std::vector<std::string> profiles = {"gcc", "leela", "cactusBSSN", "omnetpp"};
  std::vector<std::thread> threads;
  std::vector<StandaloneBaseline> seen(8);
  for (size_t t = 0; t < seen.size(); t++) {
    threads.emplace_back([t, &profiles, &seen] {
      // Every thread hits every key; pairs of threads share a first key so
      // the fill race itself is exercised too.
      for (size_t i = 0; i < profiles.size(); i++) {
        seen[t] = Standalone(SkylakeXeon4114(), profiles[(t / 2 + i) % profiles.size()]);
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  // All threads ended on a key from the same rotation; whatever the
  // interleaving, each baseline must match a fresh lookup.
  for (size_t t = 0; t < seen.size(); t++) {
    const std::string& last = profiles[(t / 2 + profiles.size() - 1) % profiles.size()];
    EXPECT_EQ(seen[t].ips, Standalone(SkylakeXeon4114(), last).ips);
  }
}

TEST(Standalone, AvxAppCappedBelowTurbo) {
  const auto& cam4 = Standalone(SkylakeXeon4114(), "cam4");
  EXPECT_LE(cam4.active_mhz, SkylakeXeon4114().avx_max_mhz_light + Mhz{1.0});
}

TEST(RunScenario, BasicStaticRun) {
  ScenarioConfig c{.platform = SkylakeXeon4114()};
  c.apps = {{.profile = "gcc"}, {.profile = "leela"}};
  c.policy = PolicyKind::kStatic;
  c.static_mhz = Mhz{2000};
  c.warmup_s = Seconds{2};
  c.measure_s = Seconds{10};
  const ScenarioResult r = RunScenario(c);
  ASSERT_EQ(r.apps.size(), 2u);
  EXPECT_NEAR(r.apps[0].avg_active_mhz.value(), 2000.0, 5.0);
  EXPECT_NEAR(r.apps[1].avg_active_mhz.value(), 2000.0, 5.0);
  EXPECT_GT(r.apps[0].avg_ips, Ips{0.0});
  EXPECT_GT(r.avg_pkg_w, Watts{10.0});
  EXPECT_FALSE(r.apps[0].starved);
  EXPECT_NEAR(r.measured_s.value(), 10.0, 0.01);  // Tick-quantized window.
}

TEST(RunScenario, NormalizedPerformanceAgainstStandalone) {
  ScenarioConfig c{.platform = SkylakeXeon4114()};
  c.apps = {{.profile = "leela"}};
  c.policy = PolicyKind::kStatic;
  c.static_mhz = Mhz{3000};
  c.warmup_s = Seconds{2};
  c.measure_s = Seconds{10};
  const ScenarioResult r = RunScenario(c);
  // Alone at max request == the standalone baseline. Normalized perf ~ 1.
  EXPECT_NEAR(r.apps[0].norm_perf, 1.0, 0.03);
}

TEST(RunScenario, RaplLimitEnforced) {
  ScenarioConfig c{.platform = SkylakeXeon4114()};
  for (int i = 0; i < 10; i++) {
    c.apps.push_back({.profile = "cactusBSSN"});
  }
  c.policy = PolicyKind::kRaplOnly;
  c.limit_w = Watts{40};
  c.warmup_s = Seconds{5};
  c.measure_s = Seconds{20};
  const ScenarioResult r = RunScenario(c);
  EXPECT_NEAR(r.avg_pkg_w.value(), 40.0, 1.5);
}

TEST(RunScenario, DeterministicForSameSeed) {
  ScenarioConfig c{.platform = SkylakeXeon4114()};
  c.apps = {{.profile = "gcc"}, {.profile = "cam4"}};
  c.policy = PolicyKind::kRaplOnly;
  c.limit_w = Watts{30};
  c.warmup_s = Seconds{2};
  c.measure_s = Seconds{10};
  const ScenarioResult a = RunScenario(c);
  const ScenarioResult b = RunScenario(c);
  EXPECT_DOUBLE_EQ(a.avg_pkg_w.value(), b.avg_pkg_w.value());
  EXPECT_DOUBLE_EQ(a.apps[0].avg_ips.value(), b.apps[0].avg_ips.value());
}

TEST(AddResourceShares, SharesSumToOne) {
  ScenarioConfig c{.platform = SkylakeXeon4114()};
  c.apps = {{.profile = "gcc"}, {.profile = "leela"}, {.profile = "cactusBSSN"}};
  c.policy = PolicyKind::kStatic;
  c.static_mhz = Mhz{1800};
  c.warmup_s = Seconds{2};
  c.measure_s = Seconds{10};
  ScenarioResult r = RunScenario(c);
  AddResourceShares(&r);
  double f = 0.0;
  double p = 0.0;
  double w = 0.0;
  for (const AppResult& app : r.apps) {
    f += app.share_of_freq;
    p += app.share_of_perf;
    w += app.share_of_power;
  }
  EXPECT_NEAR(f, 1.0, 1e-9);
  EXPECT_NEAR(p, 1.0, 1e-9);
  EXPECT_NEAR(w, 1.0, 1e-9);
}

TEST(RunWebsearch, BaselineRunsCleanly) {
  WebsearchConfig c{.platform = SkylakeXeon4114()};
  c.policy = PolicyKind::kRaplOnly;
  c.limit_w = Watts{85};
  c.with_cpuburn = false;
  c.warmup_s = Seconds{10};
  c.measure_s = Seconds{60};
  const WebsearchResult r = RunWebsearch(c);
  EXPECT_GT(r.completed_requests, 3000u);
  EXPECT_GT(r.p90_latency, Seconds{0.0});
  EXPECT_GE(r.p99_latency, r.p90_latency);
  EXPECT_GE(r.p90_latency, r.p50_latency);
  EXPECT_GT(r.websearch_avg_mhz, Mhz{2000.0});
}

TEST(RunWebsearch, CpuburnUnderRaplHurtsLatency) {
  WebsearchConfig alone{.platform = SkylakeXeon4114()};
  alone.policy = PolicyKind::kRaplOnly;
  alone.limit_w = Watts{40};
  alone.with_cpuburn = false;
  alone.warmup_s = Seconds{10};
  alone.measure_s = Seconds{90};
  WebsearchConfig burdened = alone;
  burdened.with_cpuburn = true;
  const WebsearchResult a = RunWebsearch(alone);
  const WebsearchResult b = RunWebsearch(burdened);
  EXPECT_GT(b.p90_latency, 1.5 * a.p90_latency);
}

TEST(Scenarios, Table2MixesMatchPaper) {
  const auto mixes = SkylakePriorityMixes();
  ASSERT_EQ(mixes.size(), 5u);
  EXPECT_EQ(mixes[0].label, "10H0L");
  EXPECT_EQ(mixes[0].apps.size(), 10u);
  // Table 2 row "7H3L": 4 cactus-HP, 3 leela-HP, 1 cactus-LP, 2 leela-LP.
  const auto& m7 = mixes[1];
  int chp = 0;
  int lhp = 0;
  int clp = 0;
  int llp = 0;
  for (const AppSetup& a : m7.apps) {
    if (a.profile == "cactusBSSN") {
      (a.high_priority ? chp : clp)++;
    } else {
      (a.high_priority ? lhp : llp)++;
    }
  }
  EXPECT_EQ(chp, 4);
  EXPECT_EQ(lhp, 3);
  EXPECT_EQ(clp, 1);
  EXPECT_EQ(llp, 2);
  for (const auto& mix : mixes) {
    EXPECT_EQ(mix.apps.size(), 10u) << mix.label;
  }
}

TEST(Scenarios, RyzenMixesFillAllCores) {
  for (const auto& mix : RyzenPriorityMixes()) {
    EXPECT_EQ(mix.apps.size(), 8u) << mix.label;
  }
}

TEST(Scenarios, ShareSplitMix) {
  const WorkloadMix mix = ShareSplitMix(10, 90, 10);
  ASSERT_EQ(mix.apps.size(), 10u);
  EXPECT_EQ(mix.apps[0].profile, "leela");
  EXPECT_DOUBLE_EQ(mix.apps[0].shares, 90.0);
  EXPECT_EQ(mix.apps[5].profile, "cactusBSSN");
  EXPECT_DOUBLE_EQ(mix.apps[5].shares, 10.0);
}

TEST(Scenarios, RandomSetsMatchTable3) {
  const auto sets = RandomSets();
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].apps[2], "cactusBSSN");
  EXPECT_EQ(sets[1].apps[4], "lbm");
  const auto apps = RandomSetApps(sets[0]);
  ASSERT_EQ(apps.size(), 10u);
  // Two copies of each, same share; shares rise with app index.
  EXPECT_EQ(apps[0].profile, apps[1].profile);
  EXPECT_DOUBLE_EQ(apps[0].shares, apps[1].shares);
  EXPECT_DOUBLE_EQ(apps[0].shares, 20.0);
  EXPECT_DOUBLE_EQ(apps[8].shares, 100.0);
}

}  // namespace
}  // namespace papd
