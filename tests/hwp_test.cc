// Unit and integration tests for HWP-style saturation detection
// ("highest useful frequency", paper Section 4.4).

#include <gtest/gtest.h>

#include <memory>

#include "src/cpusim/package.h"
#include "src/cpusim/simulator.h"
#include "src/msr/msr.h"
#include "src/policy/daemon.h"
#include "src/policy/hwp.h"
#include "src/specsim/spec2017.h"
#include "src/specsim/workload.h"

namespace papd {
namespace {

PolicyPlatform SkylakeLike() {
  PolicyPlatform p;
  p.min_mhz = Mhz{800};
  p.max_mhz = Mhz{3000};
  p.step_mhz = Mhz{100};
  p.num_cores = 10;
  p.max_power_w = Watts{85};
  return p;
}

std::vector<ManagedApp> TwoApps() {
  return {ManagedApp{.name = "a", .cpu = 0, .baseline_ips = Ips{2e9}},
          ManagedApp{.name = "b", .cpu = 1, .baseline_ips = Ips{2e9}}};
}

TelemetrySample Sample(Mhz mhz0, Ips ips0, Mhz mhz1, Ips ips1) {
  TelemetrySample s;
  s.t = Seconds{1.0};
  s.dt = Seconds{1.0};
  s.pkg_w = Watts{40.0};
  CoreTelemetry c0{.cpu = 0, .active_mhz = mhz0, .busy = 1.0, .ips = ips0};
  CoreTelemetry c1{.cpu = 1, .active_mhz = mhz1, .busy = 1.0, .ips = ips1};
  s.cores = {c0, c1};
  return s;
}

TEST(AppMaxMhzHelper, TightensAndClamps) {
  const PolicyPlatform p = SkylakeLike();
  ManagedApp app;
  EXPECT_DOUBLE_EQ(AppMaxMhz(app, p).value(), 3000.0);  // No hint.
  app.max_useful_mhz = Mhz{1900};
  EXPECT_DOUBLE_EQ(AppMaxMhz(app, p).value(), 1900.0);
  app.max_useful_mhz = Mhz{5000};  // Above platform max.
  EXPECT_DOUBLE_EQ(AppMaxMhz(app, p).value(), 3000.0);
  app.max_useful_mhz = Mhz{100};  // Below platform min.
  EXPECT_DOUBLE_EQ(AppMaxMhz(app, p).value(), 800.0);
}

TEST(SaturationDetector, DetectsRefusedGrantAfterStreak) {
  SaturationDetector det(SkylakeLike(), 2);
  const auto apps = TwoApps();
  // App 0 requests 3000 but achieves 1900 (AVX cap) while app 1 achieves
  // its request — an app-specific refusal.
  for (int i = 0; i < 2; i++) {
    det.Observe(apps, Sample(Mhz{1900}, Ips{2e9}, Mhz{2800}, Ips{2e9}), {Mhz{3000}, Mhz{2800}});
    EXPECT_DOUBLE_EQ(det.UsefulMaxMhz(0).value(), 0.0);  // Not yet (hysteresis).
  }
  det.Observe(apps, Sample(Mhz{1900}, Ips{2e9}, Mhz{2800}, Ips{2e9}), {Mhz{3000}, Mhz{2800}});
  EXPECT_DOUBLE_EQ(det.UsefulMaxMhz(0).value(), 1900.0);
  EXPECT_DOUBLE_EQ(det.UsefulMaxMhz(1).value(), 0.0);
}

TEST(SaturationDetector, PackageWideClampIsNotSaturation) {
  // Both cores run below request (RAPL ceiling): nobody achieves their
  // request, so no app-specific refusal may be inferred.
  SaturationDetector det(SkylakeLike(), 2);
  const auto apps = TwoApps();
  for (int i = 0; i < 10; i++) {
    det.Observe(apps, Sample(Mhz{1500}, Ips{2e9}, Mhz{1500}, Ips{2e9}), {Mhz{3000}, Mhz{3000}});
  }
  EXPECT_DOUBLE_EQ(det.UsefulMaxMhz(0).value(), 0.0);
  EXPECT_DOUBLE_EQ(det.UsefulMaxMhz(1).value(), 0.0);
}

TEST(SaturationDetector, GrantCapClearsWhenFrequencyRecovers) {
  SaturationDetector det(SkylakeLike(), 2);
  const auto apps = TwoApps();
  for (int i = 0; i < 3; i++) {
    det.Observe(apps, Sample(Mhz{1900}, Ips{2e9}, Mhz{2800}, Ips{2e9}), {Mhz{3000}, Mhz{2800}});
  }
  EXPECT_DOUBLE_EQ(det.UsefulMaxMhz(0).value(), 1900.0);
  // AVX phase ends; the core reaches its request again.
  det.Observe(apps, Sample(Mhz{3000}, Ips{3e9}, Mhz{2800}, Ips{2e9}), {Mhz{3000}, Mhz{2800}});
  EXPECT_DOUBLE_EQ(det.UsefulMaxMhz(0).value(), 0.0);
}

TEST(SaturationDetector, DetectsFlatIpsResponse) {
  SaturationDetector det(SkylakeLike(), 2);
  const auto apps = TwoApps();
  // App 0's IPS is flat between 1400 and 2800 MHz (memory-bound); app 1
  // scales linearly.
  for (int i = 0; i < 5; i++) {
    det.Observe(apps, Sample(Mhz{1400}, Ips{1.0e9}, Mhz{1400}, Ips{1.0e9}), {Mhz{1400}, Mhz{1400}});
    det.Observe(apps, Sample(Mhz{2800}, Ips{1.05e9}, Mhz{2800}, Ips{2.0e9}), {Mhz{2800}, Mhz{2800}});
  }
  EXPECT_NEAR(det.UsefulMaxMhz(0).value(), 1400.0, 200.0);
  EXPECT_DOUBLE_EQ(det.UsefulMaxMhz(1).value(), 0.0);
}

TEST(SaturationDetector, IdleCoresIgnored) {
  SaturationDetector det(SkylakeLike(), 2);
  auto apps = TwoApps();
  TelemetrySample s = Sample(Mhz{1900}, Ips{2e9}, Mhz{2800}, Ips{2e9});
  s.cores[0].busy = 0.1;  // Mostly idle: active-frequency data unreliable.
  for (int i = 0; i < 10; i++) {
    det.Observe(apps, s, {Mhz{3000}, Mhz{2800}});
  }
  EXPECT_DOUBLE_EQ(det.UsefulMaxMhz(0).value(), 0.0);
}

// ---- End-to-end through the daemon -----------------------------------

TEST(HwpHintsEndToEnd, AvxAppCapDetectedAndExcessRedistributed) {
  // cam4 (AVX, capped ~1700 with many AVX-active cores... here 1 AVX core
  // -> 1900) next to leela under frequency shares with hints on: the
  // detector should find cam4's cap and the policy should stop allocating
  // beyond it.
  Package pkg(SkylakeXeon4114());
  MsrFile msr(&pkg);
  Process cam4(GetProfile("cam4"), 1);
  Process leela(GetProfile("leela"), 2);
  pkg.AttachWork(0, &cam4);
  pkg.AttachWork(1, &leela);
  std::vector<ManagedApp> apps = {
      {.name = "cam4", .cpu = 0, .shares = 50.0, .baseline_ips = Ips{2e9}},
      {.name = "leela", .cpu = 1, .shares = 50.0, .baseline_ips = Ips{2e9}},
  };
  PowerDaemon daemon(&msr, apps,
                     {.kind = PolicyKind::kFrequencyShares,
                      .power_limit_w = Watts{30.0},
                      .use_hwp_hints = true});
  daemon.Start();
  Simulator sim(&pkg);
  sim.AddPeriodic(Seconds{1.0}, [&daemon](Seconds) { daemon.Step(); });
  sim.Run(Seconds{30.0});

  // The daemon's app copy now carries cam4's useful max near the AVX cap.
  EXPECT_GT(daemon.apps()[0].max_useful_mhz, Mhz{0.0});
  EXPECT_LE(daemon.apps()[0].max_useful_mhz, Mhz{2000.0});
  // And the programmed target respects it.
  EXPECT_LE(daemon.targets()[0], daemon.apps()[0].max_useful_mhz + Mhz{1.0});
}

TEST(HwpHintsEndToEnd, HintsOffLeavesUsefulMaxUnset) {
  Package pkg(SkylakeXeon4114());
  MsrFile msr(&pkg);
  Process cam4(GetProfile("cam4"), 1);
  pkg.AttachWork(0, &cam4);
  std::vector<ManagedApp> apps = {{.name = "cam4", .cpu = 0, .shares = 1.0}};
  PowerDaemon daemon(&msr, apps,
                     {.kind = PolicyKind::kFrequencyShares, .power_limit_w = Watts{30.0}});
  daemon.Start();
  Simulator sim(&pkg);
  sim.AddPeriodic(Seconds{1.0}, [&daemon](Seconds) { daemon.Step(); });
  sim.Run(Seconds{10.0});
  EXPECT_DOUBLE_EQ(daemon.apps()[0].max_useful_mhz.value(), 0.0);
}

}  // namespace
}  // namespace papd
